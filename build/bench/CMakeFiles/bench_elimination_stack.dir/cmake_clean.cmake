file(REMOVE_RECURSE
  "CMakeFiles/bench_elimination_stack.dir/bench_elimination_stack.cpp.o"
  "CMakeFiles/bench_elimination_stack.dir/bench_elimination_stack.cpp.o.d"
  "bench_elimination_stack"
  "bench_elimination_stack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_elimination_stack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
