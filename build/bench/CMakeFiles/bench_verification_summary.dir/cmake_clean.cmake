file(REMOVE_RECURSE
  "CMakeFiles/bench_verification_summary.dir/bench_verification_summary.cpp.o"
  "CMakeFiles/bench_verification_summary.dir/bench_verification_summary.cpp.o.d"
  "bench_verification_summary"
  "bench_verification_summary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_verification_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
