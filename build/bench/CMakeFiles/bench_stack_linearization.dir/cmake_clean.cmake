file(REMOVE_RECURSE
  "CMakeFiles/bench_stack_linearization.dir/bench_stack_linearization.cpp.o"
  "CMakeFiles/bench_stack_linearization.dir/bench_stack_linearization.cpp.o.d"
  "bench_stack_linearization"
  "bench_stack_linearization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_stack_linearization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
