# Empty dependencies file for bench_queue_consistency.
# This may be replaced when dependencies are built.
