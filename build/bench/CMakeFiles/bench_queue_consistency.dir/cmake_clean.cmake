file(REMOVE_RECURSE
  "CMakeFiles/bench_queue_consistency.dir/bench_queue_consistency.cpp.o"
  "CMakeFiles/bench_queue_consistency.dir/bench_queue_consistency.cpp.o.d"
  "bench_queue_consistency"
  "bench_queue_consistency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_queue_consistency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
