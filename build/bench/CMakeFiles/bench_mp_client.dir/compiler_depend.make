# Empty compiler generated dependencies file for bench_mp_client.
# This may be replaced when dependencies are built.
