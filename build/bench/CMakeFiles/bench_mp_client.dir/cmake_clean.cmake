file(REMOVE_RECURSE
  "CMakeFiles/bench_mp_client.dir/bench_mp_client.cpp.o"
  "CMakeFiles/bench_mp_client.dir/bench_mp_client.cpp.o.d"
  "bench_mp_client"
  "bench_mp_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mp_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
