
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_mp_client.cpp" "bench/CMakeFiles/bench_mp_client.dir/bench_mp_client.cpp.o" "gcc" "bench/CMakeFiles/bench_mp_client.dir/bench_mp_client.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/clients/CMakeFiles/compass_clients.dir/DependInfo.cmake"
  "/root/repo/build/src/lib/CMakeFiles/compass_lib.dir/DependInfo.cmake"
  "/root/repo/build/src/spec/CMakeFiles/compass_spec.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/compass_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/compass_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/rmc/CMakeFiles/compass_rmc.dir/DependInfo.cmake"
  "/root/repo/build/src/native/CMakeFiles/compass_native.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/compass_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
