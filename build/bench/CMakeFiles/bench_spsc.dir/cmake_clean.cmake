file(REMOVE_RECURSE
  "CMakeFiles/bench_spsc.dir/bench_spsc.cpp.o"
  "CMakeFiles/bench_spsc.dir/bench_spsc.cpp.o.d"
  "bench_spsc"
  "bench_spsc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_spsc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
