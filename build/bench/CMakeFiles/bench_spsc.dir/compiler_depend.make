# Empty compiler generated dependencies file for bench_spsc.
# This may be replaced when dependencies are built.
