file(REMOVE_RECURSE
  "CMakeFiles/bench_native_stacks.dir/bench_native_stacks.cpp.o"
  "CMakeFiles/bench_native_stacks.dir/bench_native_stacks.cpp.o.d"
  "bench_native_stacks"
  "bench_native_stacks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_native_stacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
