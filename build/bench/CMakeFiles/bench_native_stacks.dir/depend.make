# Empty dependencies file for bench_native_stacks.
# This may be replaced when dependencies are built.
