file(REMOVE_RECURSE
  "CMakeFiles/bench_native_queues.dir/bench_native_queues.cpp.o"
  "CMakeFiles/bench_native_queues.dir/bench_native_queues.cpp.o.d"
  "bench_native_queues"
  "bench_native_queues.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_native_queues.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
