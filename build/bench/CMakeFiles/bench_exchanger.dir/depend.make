# Empty dependencies file for bench_exchanger.
# This may be replaced when dependencies are built.
