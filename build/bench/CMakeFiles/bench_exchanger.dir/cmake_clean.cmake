file(REMOVE_RECURSE
  "CMakeFiles/bench_exchanger.dir/bench_exchanger.cpp.o"
  "CMakeFiles/bench_exchanger.dir/bench_exchanger.cpp.o.d"
  "bench_exchanger"
  "bench_exchanger.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_exchanger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
