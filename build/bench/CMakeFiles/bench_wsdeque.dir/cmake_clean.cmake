file(REMOVE_RECURSE
  "CMakeFiles/bench_wsdeque.dir/bench_wsdeque.cpp.o"
  "CMakeFiles/bench_wsdeque.dir/bench_wsdeque.cpp.o.d"
  "bench_wsdeque"
  "bench_wsdeque.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_wsdeque.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
