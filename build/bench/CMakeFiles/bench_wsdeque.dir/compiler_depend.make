# Empty compiler generated dependencies file for bench_wsdeque.
# This may be replaced when dependencies are built.
