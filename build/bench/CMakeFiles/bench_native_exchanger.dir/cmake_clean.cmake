file(REMOVE_RECURSE
  "CMakeFiles/bench_native_exchanger.dir/bench_native_exchanger.cpp.o"
  "CMakeFiles/bench_native_exchanger.dir/bench_native_exchanger.cpp.o.d"
  "bench_native_exchanger"
  "bench_native_exchanger.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_native_exchanger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
