# Empty compiler generated dependencies file for bench_native_exchanger.
# This may be replaced when dependencies are built.
