file(REMOVE_RECURSE
  "CMakeFiles/test_clients.dir/ClientTest.cpp.o"
  "CMakeFiles/test_clients.dir/ClientTest.cpp.o.d"
  "test_clients"
  "test_clients.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_clients.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
