# Empty compiler generated dependencies file for test_clients.
# This may be replaced when dependencies are built.
