file(REMOVE_RECURSE
  "CMakeFiles/test_exchanger.dir/ExchangerTest.cpp.o"
  "CMakeFiles/test_exchanger.dir/ExchangerTest.cpp.o.d"
  "test_exchanger"
  "test_exchanger.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_exchanger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
