# Empty dependencies file for test_elimstack.
# This may be replaced when dependencies are built.
