file(REMOVE_RECURSE
  "CMakeFiles/test_elimstack.dir/ElimStackTest.cpp.o"
  "CMakeFiles/test_elimstack.dir/ElimStackTest.cpp.o.d"
  "test_elimstack"
  "test_elimstack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_elimstack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
