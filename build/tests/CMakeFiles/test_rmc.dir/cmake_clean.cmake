file(REMOVE_RECURSE
  "CMakeFiles/test_rmc.dir/RmcTest.cpp.o"
  "CMakeFiles/test_rmc.dir/RmcTest.cpp.o.d"
  "test_rmc"
  "test_rmc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rmc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
