# Empty compiler generated dependencies file for test_rmc.
# This may be replaced when dependencies are built.
