file(REMOVE_RECURSE
  "CMakeFiles/test_litmus_extra.dir/LitmusExtraTest.cpp.o"
  "CMakeFiles/test_litmus_extra.dir/LitmusExtraTest.cpp.o.d"
  "test_litmus_extra"
  "test_litmus_extra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_litmus_extra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
