# Empty dependencies file for test_litmus_extra.
# This may be replaced when dependencies are built.
