file(REMOVE_RECURSE
  "CMakeFiles/test_spsc_ring.dir/SpscRingTest.cpp.o"
  "CMakeFiles/test_spsc_ring.dir/SpscRingTest.cpp.o.d"
  "test_spsc_ring"
  "test_spsc_ring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spsc_ring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
