# Empty dependencies file for test_lib_queue.
# This may be replaced when dependencies are built.
