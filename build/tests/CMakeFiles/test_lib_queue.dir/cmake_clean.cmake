file(REMOVE_RECURSE
  "CMakeFiles/test_lib_queue.dir/LibQueueTest.cpp.o"
  "CMakeFiles/test_lib_queue.dir/LibQueueTest.cpp.o.d"
  "test_lib_queue"
  "test_lib_queue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lib_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
