file(REMOVE_RECURSE
  "CMakeFiles/test_lib_stack.dir/LibStackTest.cpp.o"
  "CMakeFiles/test_lib_stack.dir/LibStackTest.cpp.o.d"
  "test_lib_stack"
  "test_lib_stack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lib_stack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
