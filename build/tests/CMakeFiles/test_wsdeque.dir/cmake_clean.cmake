file(REMOVE_RECURSE
  "CMakeFiles/test_wsdeque.dir/WsDequeTest.cpp.o"
  "CMakeFiles/test_wsdeque.dir/WsDequeTest.cpp.o.d"
  "test_wsdeque"
  "test_wsdeque.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wsdeque.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
