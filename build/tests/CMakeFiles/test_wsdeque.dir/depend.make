# Empty dependencies file for test_wsdeque.
# This may be replaced when dependencies are built.
