file(REMOVE_RECURSE
  "CMakeFiles/mp_messaging.dir/mp_messaging.cpp.o"
  "CMakeFiles/mp_messaging.dir/mp_messaging.cpp.o.d"
  "mp_messaging"
  "mp_messaging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp_messaging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
