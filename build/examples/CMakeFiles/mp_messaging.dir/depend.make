# Empty dependencies file for mp_messaging.
# This may be replaced when dependencies are built.
