file(REMOVE_RECURSE
  "CMakeFiles/elimination_showdown.dir/elimination_showdown.cpp.o"
  "CMakeFiles/elimination_showdown.dir/elimination_showdown.cpp.o.d"
  "elimination_showdown"
  "elimination_showdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elimination_showdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
