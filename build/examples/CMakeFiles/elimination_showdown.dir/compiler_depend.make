# Empty compiler generated dependencies file for elimination_showdown.
# This may be replaced when dependencies are built.
