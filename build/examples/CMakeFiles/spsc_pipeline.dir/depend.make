# Empty dependencies file for spsc_pipeline.
# This may be replaced when dependencies are built.
