file(REMOVE_RECURSE
  "CMakeFiles/spsc_pipeline.dir/spsc_pipeline.cpp.o"
  "CMakeFiles/spsc_pipeline.dir/spsc_pipeline.cpp.o.d"
  "spsc_pipeline"
  "spsc_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spsc_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
