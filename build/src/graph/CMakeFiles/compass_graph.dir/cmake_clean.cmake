file(REMOVE_RECURSE
  "CMakeFiles/compass_graph.dir/Event.cpp.o"
  "CMakeFiles/compass_graph.dir/Event.cpp.o.d"
  "CMakeFiles/compass_graph.dir/EventGraph.cpp.o"
  "CMakeFiles/compass_graph.dir/EventGraph.cpp.o.d"
  "libcompass_graph.a"
  "libcompass_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compass_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
