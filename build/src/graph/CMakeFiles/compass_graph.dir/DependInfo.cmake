
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/Event.cpp" "src/graph/CMakeFiles/compass_graph.dir/Event.cpp.o" "gcc" "src/graph/CMakeFiles/compass_graph.dir/Event.cpp.o.d"
  "/root/repo/src/graph/EventGraph.cpp" "src/graph/CMakeFiles/compass_graph.dir/EventGraph.cpp.o" "gcc" "src/graph/CMakeFiles/compass_graph.dir/EventGraph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rmc/CMakeFiles/compass_rmc.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/compass_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
