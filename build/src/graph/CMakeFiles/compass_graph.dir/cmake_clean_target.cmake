file(REMOVE_RECURSE
  "libcompass_graph.a"
)
