# Empty compiler generated dependencies file for compass_graph.
# This may be replaced when dependencies are built.
