# Empty dependencies file for compass_clients.
# This may be replaced when dependencies are built.
