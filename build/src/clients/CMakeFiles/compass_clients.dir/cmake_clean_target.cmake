file(REMOVE_RECURSE
  "libcompass_clients.a"
)
