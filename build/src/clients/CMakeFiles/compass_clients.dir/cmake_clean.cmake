file(REMOVE_RECURSE
  "CMakeFiles/compass_clients.dir/MpClient.cpp.o"
  "CMakeFiles/compass_clients.dir/MpClient.cpp.o.d"
  "CMakeFiles/compass_clients.dir/Pipeline.cpp.o"
  "CMakeFiles/compass_clients.dir/Pipeline.cpp.o.d"
  "CMakeFiles/compass_clients.dir/ResourceExchange.cpp.o"
  "CMakeFiles/compass_clients.dir/ResourceExchange.cpp.o.d"
  "CMakeFiles/compass_clients.dir/Spsc.cpp.o"
  "CMakeFiles/compass_clients.dir/Spsc.cpp.o.d"
  "libcompass_clients.a"
  "libcompass_clients.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compass_clients.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
