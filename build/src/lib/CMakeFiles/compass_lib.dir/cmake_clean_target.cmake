file(REMOVE_RECURSE
  "libcompass_lib.a"
)
