
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lib/Container.cpp" "src/lib/CMakeFiles/compass_lib.dir/Container.cpp.o" "gcc" "src/lib/CMakeFiles/compass_lib.dir/Container.cpp.o.d"
  "/root/repo/src/lib/ElimStack.cpp" "src/lib/CMakeFiles/compass_lib.dir/ElimStack.cpp.o" "gcc" "src/lib/CMakeFiles/compass_lib.dir/ElimStack.cpp.o.d"
  "/root/repo/src/lib/Exchanger.cpp" "src/lib/CMakeFiles/compass_lib.dir/Exchanger.cpp.o" "gcc" "src/lib/CMakeFiles/compass_lib.dir/Exchanger.cpp.o.d"
  "/root/repo/src/lib/HwQueue.cpp" "src/lib/CMakeFiles/compass_lib.dir/HwQueue.cpp.o" "gcc" "src/lib/CMakeFiles/compass_lib.dir/HwQueue.cpp.o.d"
  "/root/repo/src/lib/Locked.cpp" "src/lib/CMakeFiles/compass_lib.dir/Locked.cpp.o" "gcc" "src/lib/CMakeFiles/compass_lib.dir/Locked.cpp.o.d"
  "/root/repo/src/lib/MsQueue.cpp" "src/lib/CMakeFiles/compass_lib.dir/MsQueue.cpp.o" "gcc" "src/lib/CMakeFiles/compass_lib.dir/MsQueue.cpp.o.d"
  "/root/repo/src/lib/SpscRing.cpp" "src/lib/CMakeFiles/compass_lib.dir/SpscRing.cpp.o" "gcc" "src/lib/CMakeFiles/compass_lib.dir/SpscRing.cpp.o.d"
  "/root/repo/src/lib/TreiberStack.cpp" "src/lib/CMakeFiles/compass_lib.dir/TreiberStack.cpp.o" "gcc" "src/lib/CMakeFiles/compass_lib.dir/TreiberStack.cpp.o.d"
  "/root/repo/src/lib/WsDeque.cpp" "src/lib/CMakeFiles/compass_lib.dir/WsDeque.cpp.o" "gcc" "src/lib/CMakeFiles/compass_lib.dir/WsDeque.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/compass_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/spec/CMakeFiles/compass_spec.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/compass_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/rmc/CMakeFiles/compass_rmc.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/compass_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
