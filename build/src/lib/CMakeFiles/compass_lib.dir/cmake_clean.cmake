file(REMOVE_RECURSE
  "CMakeFiles/compass_lib.dir/Container.cpp.o"
  "CMakeFiles/compass_lib.dir/Container.cpp.o.d"
  "CMakeFiles/compass_lib.dir/ElimStack.cpp.o"
  "CMakeFiles/compass_lib.dir/ElimStack.cpp.o.d"
  "CMakeFiles/compass_lib.dir/Exchanger.cpp.o"
  "CMakeFiles/compass_lib.dir/Exchanger.cpp.o.d"
  "CMakeFiles/compass_lib.dir/HwQueue.cpp.o"
  "CMakeFiles/compass_lib.dir/HwQueue.cpp.o.d"
  "CMakeFiles/compass_lib.dir/Locked.cpp.o"
  "CMakeFiles/compass_lib.dir/Locked.cpp.o.d"
  "CMakeFiles/compass_lib.dir/MsQueue.cpp.o"
  "CMakeFiles/compass_lib.dir/MsQueue.cpp.o.d"
  "CMakeFiles/compass_lib.dir/SpscRing.cpp.o"
  "CMakeFiles/compass_lib.dir/SpscRing.cpp.o.d"
  "CMakeFiles/compass_lib.dir/TreiberStack.cpp.o"
  "CMakeFiles/compass_lib.dir/TreiberStack.cpp.o.d"
  "CMakeFiles/compass_lib.dir/WsDeque.cpp.o"
  "CMakeFiles/compass_lib.dir/WsDeque.cpp.o.d"
  "libcompass_lib.a"
  "libcompass_lib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compass_lib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
