# Empty dependencies file for compass_lib.
# This may be replaced when dependencies are built.
