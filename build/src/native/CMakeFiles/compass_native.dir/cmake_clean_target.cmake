file(REMOVE_RECURSE
  "libcompass_native.a"
)
