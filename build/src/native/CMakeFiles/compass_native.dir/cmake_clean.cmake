file(REMOVE_RECURSE
  "CMakeFiles/compass_native.dir/Native.cpp.o"
  "CMakeFiles/compass_native.dir/Native.cpp.o.d"
  "libcompass_native.a"
  "libcompass_native.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compass_native.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
