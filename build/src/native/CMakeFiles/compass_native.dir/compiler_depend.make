# Empty compiler generated dependencies file for compass_native.
# This may be replaced when dependencies are built.
