src/native/CMakeFiles/compass_native.dir/Native.cpp.o: \
 /root/repo/src/native/Native.cpp /usr/include/stdc-predef.h
