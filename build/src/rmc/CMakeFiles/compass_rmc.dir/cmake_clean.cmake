file(REMOVE_RECURSE
  "CMakeFiles/compass_rmc.dir/Machine.cpp.o"
  "CMakeFiles/compass_rmc.dir/Machine.cpp.o.d"
  "CMakeFiles/compass_rmc.dir/Memory.cpp.o"
  "CMakeFiles/compass_rmc.dir/Memory.cpp.o.d"
  "CMakeFiles/compass_rmc.dir/View.cpp.o"
  "CMakeFiles/compass_rmc.dir/View.cpp.o.d"
  "libcompass_rmc.a"
  "libcompass_rmc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compass_rmc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
