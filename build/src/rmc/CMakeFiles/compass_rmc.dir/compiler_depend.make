# Empty compiler generated dependencies file for compass_rmc.
# This may be replaced when dependencies are built.
