file(REMOVE_RECURSE
  "libcompass_rmc.a"
)
