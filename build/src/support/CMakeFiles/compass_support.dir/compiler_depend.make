# Empty compiler generated dependencies file for compass_support.
# This may be replaced when dependencies are built.
