file(REMOVE_RECURSE
  "CMakeFiles/compass_support.dir/Choice.cpp.o"
  "CMakeFiles/compass_support.dir/Choice.cpp.o.d"
  "CMakeFiles/compass_support.dir/Error.cpp.o"
  "CMakeFiles/compass_support.dir/Error.cpp.o.d"
  "CMakeFiles/compass_support.dir/Rng.cpp.o"
  "CMakeFiles/compass_support.dir/Rng.cpp.o.d"
  "libcompass_support.a"
  "libcompass_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compass_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
