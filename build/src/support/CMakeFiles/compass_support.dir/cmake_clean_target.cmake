file(REMOVE_RECURSE
  "libcompass_support.a"
)
