
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/Explorer.cpp" "src/sim/CMakeFiles/compass_sim.dir/Explorer.cpp.o" "gcc" "src/sim/CMakeFiles/compass_sim.dir/Explorer.cpp.o.d"
  "/root/repo/src/sim/Scheduler.cpp" "src/sim/CMakeFiles/compass_sim.dir/Scheduler.cpp.o" "gcc" "src/sim/CMakeFiles/compass_sim.dir/Scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rmc/CMakeFiles/compass_rmc.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/compass_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
