file(REMOVE_RECURSE
  "CMakeFiles/compass_sim.dir/Explorer.cpp.o"
  "CMakeFiles/compass_sim.dir/Explorer.cpp.o.d"
  "CMakeFiles/compass_sim.dir/Scheduler.cpp.o"
  "CMakeFiles/compass_sim.dir/Scheduler.cpp.o.d"
  "libcompass_sim.a"
  "libcompass_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compass_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
