# Empty compiler generated dependencies file for compass_spec.
# This may be replaced when dependencies are built.
