file(REMOVE_RECURSE
  "libcompass_spec.a"
)
