file(REMOVE_RECURSE
  "CMakeFiles/compass_spec.dir/Composition.cpp.o"
  "CMakeFiles/compass_spec.dir/Composition.cpp.o.d"
  "CMakeFiles/compass_spec.dir/Consistency.cpp.o"
  "CMakeFiles/compass_spec.dir/Consistency.cpp.o.d"
  "CMakeFiles/compass_spec.dir/Linearization.cpp.o"
  "CMakeFiles/compass_spec.dir/Linearization.cpp.o.d"
  "CMakeFiles/compass_spec.dir/SpecMonitor.cpp.o"
  "CMakeFiles/compass_spec.dir/SpecMonitor.cpp.o.d"
  "libcompass_spec.a"
  "libcompass_spec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compass_spec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
