//===-- examples/quickstart.cpp - Five-minute tour ---------------------====//
//
// The shortest useful tour of compass-cxx's two halves:
//
//  1. the *native* library: production concurrent containers on
//     std::atomic (use these in your application);
//  2. the *verification* stack: the same algorithms on the simulated RC11
//     machine, model-checked against the paper's event-graph specs (use
//     this to check your own variants).
//
// Build & run:  ./build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "lib/MsQueue.h"
#include "native/MsQueue.h"
#include "sim/Explorer.h"
#include "spec/Consistency.h"

#include <cstdio>
#include <thread>
#include <vector>

using namespace compass;

namespace {

/// Part 1: the native queue, as an application would use it.
void nativeQuickstart() {
  std::printf("== native: MPMC Michael-Scott queue on std::atomic ==\n");
  native::MsQueue<uint64_t> Q;

  std::vector<std::thread> Producers;
  for (unsigned P = 0; P != 2; ++P)
    Producers.emplace_back([&Q, P] {
      for (uint64_t I = 1; I <= 3; ++I)
        Q.enqueue(P * 100 + I);
    });
  for (auto &T : Producers)
    T.join();

  uint64_t Sum = 0, N = 0;
  while (auto V = Q.dequeue()) {
    Sum += *V;
    ++N;
  }
  std::printf("dequeued %llu items, sum %llu\n\n", (unsigned long long)N,
              (unsigned long long)Sum);
}

/// Part 2's simulated threads: a producer and a consumer on the RC11
/// machine. `co_await` marks every memory access — the points where the
/// model checker interleaves threads and picks which write a load reads.
sim::Task<void> producer(sim::Env &E, lib::MsQueue &Q) {
  for (rmc::Value V : {1, 2}) {
    auto T = Q.enqueue(E, V);
    co_await T;
  }
}

sim::Task<void> consumer(sim::Env &E, lib::MsQueue &Q, rmc::Value *Out) {
  auto T = Q.dequeue(E);
  *Out = co_await T; // May be graph::EmptyVal: the queue looked empty.
}

void verifiedQuickstart() {
  std::printf("== verification: the same algorithm, model-checked ==\n");

  sim::Explorer::Options Opts; // Defaults: exhaustive DFS.
  rmc::Value Got = 0;
  uint64_t Violations = 0;

  std::unique_ptr<spec::SpecMonitor> Mon;
  std::unique_ptr<lib::MsQueue> Q;
  auto Summary = sim::explore(
      Opts,
      [&](rmc::Machine &M, sim::Scheduler &S) {
        Mon = std::make_unique<spec::SpecMonitor>();
        Q = std::make_unique<lib::MsQueue>(M, *Mon, "q");
        sim::Env &E0 = S.newThread();
        S.start(E0, producer(E0, *Q));
        sim::Env &E1 = S.newThread();
        S.start(E1, consumer(E1, *Q, &Got));
      },
      [&](rmc::Machine &, sim::Scheduler &, sim::Scheduler::RunResult R) {
        if (R != sim::Scheduler::RunResult::Done)
          return;
        // The paper's QueueConsistent (Figure 2): FIFO, MATCHES,
        // EMPDEQ... checked on the event graph of this execution.
        if (!spec::checkQueueConsistent(Mon->graph(), Q->objId()).ok())
          ++Violations;
      });

  std::printf("explored %llu executions (%s), consistency violations: "
              "%llu\n",
              (unsigned long long)Summary.Executions,
              Summary.Exhausted ? "exhaustive" : "truncated",
              (unsigned long long)Violations);
  std::printf("every interleaving and every stale-read choice of the RC11 "
              "model was covered.\n");
}

} // namespace

int main() {
  nativeQuickstart();
  verifiedQuickstart();
  return 0;
}
