//===-- examples/spsc_pipeline.cpp - Section 3.2's SPSC client ------------===//
//
// The single-producer single-consumer pipeline of Section 3.2, both ways:
//
//  * model-checked: every execution of the simulated pipeline moves the
//    producer's array to the consumer unchanged (FIFO end-to-end);
//  * natively: the same pipeline on std::atomic moving a larger batch.
//
// Build & run:  ./build/examples/spsc_pipeline
//
//===----------------------------------------------------------------------===//

#include "clients/Spsc.h"
#include "native/MsQueue.h"
#include "sim/Explorer.h"

#include <cstdio>
#include <thread>

using namespace compass;

namespace {

bool verifiedPipeline() {
  std::printf("== model-checked SPSC pipeline (3 items, all executions) "
              "==\n");
  sim::Explorer::Options Opts;
  Opts.PreemptionBound = 3;
  Opts.MaxExecutions = 200'000;

  std::vector<rmc::Value> Items = {7, 8, 9};
  std::unique_ptr<spec::SpecMonitor> Mon;
  std::unique_ptr<lib::MsQueue> Q;
  clients::SpscOutcome Out;
  uint64_t Violations = 0;

  auto Sum = sim::explore(
      Opts,
      [&](rmc::Machine &M, sim::Scheduler &S) {
        Mon = std::make_unique<spec::SpecMonitor>();
        Q = std::make_unique<lib::MsQueue>(M, *Mon, "q");
        Out = clients::SpscOutcome();
        clients::setupSpsc(M, S, *Q, Items, Out);
      },
      [&](rmc::Machine &, sim::Scheduler &, sim::Scheduler::RunResult R) {
        if (R == sim::Scheduler::RunResult::Done && Out.Consumed != Items)
          ++Violations;
      });
  std::printf("executions=%llu order-violations=%llu\n\n",
              (unsigned long long)Sum.Executions,
              (unsigned long long)Violations);
  return Violations == 0;
}

bool nativePipeline() {
  std::printf("== native SPSC pipeline (100000 items) ==\n");
  native::MsQueue<uint64_t> Q;
  constexpr uint64_t N = 100'000;
  std::vector<uint64_t> Received;
  Received.reserve(N);

  std::thread Producer([&] {
    for (uint64_t I = 1; I <= N; ++I)
      Q.enqueue(I);
  });
  std::thread Consumer([&] {
    while (Received.size() < N)
      if (auto V = Q.dequeue())
        Received.push_back(*V);
  });
  Producer.join();
  Consumer.join();

  bool InOrder = true;
  for (uint64_t I = 0; I != N; ++I)
    InOrder &= Received[I] == I + 1;
  std::printf("moved %llu items, order preserved: %s\n\n",
              (unsigned long long)N, InOrder ? "yes" : "NO");
  return InOrder;
}

} // namespace

int main() {
  bool Ok = verifiedPipeline();
  Ok &= nativePipeline();
  std::printf("Section 3.2's claim holds in both worlds: %s\n",
              Ok ? "a_c == a_p" : "BROKEN");
  return Ok ? 0 : 1;
}
