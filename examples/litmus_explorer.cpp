//===-- examples/litmus_explorer.cpp - RC11 litmus tests, exhaustively ----===//
//
// Uses the framework's memory-model machine and model checker directly:
// classic litmus tests (Message Passing, Store Buffering, CoRR) explored
// over every interleaving *and* every reads-from choice, printing the set
// of final outcomes per access-mode configuration — a miniature of the
// "allowed/forbidden behaviours" tables of the RC11 literature the paper
// builds on.
//
// Build & run:  ./build/examples/litmus_explorer
//
//===----------------------------------------------------------------------===//

#include "sim/Explorer.h"

#include <cstdio>
#include <map>

using namespace compass;
using namespace compass::rmc;
using namespace compass::sim;

namespace {

Task<void> mpWriter(Env &E, Loc X, Loc F, MemOrder O) {
  co_await E.store(X, 1, MemOrder::Relaxed);
  co_await E.store(F, 1, O);
}

Task<void> mpReader(Env &E, Loc X, Loc F, MemOrder O, Value *Rf,
                    Value *Rx) {
  *Rf = co_await E.load(F, O);
  *Rx = co_await E.load(X, MemOrder::Relaxed);
}

Task<void> sbThread(Env &E, Loc Mine, Loc Theirs, bool Fence, Value *R) {
  co_await E.store(Mine, 1, MemOrder::Relaxed);
  if (Fence)
    co_await E.fence(MemOrder::SeqCst);
  *R = co_await E.load(Theirs, MemOrder::Relaxed);
}

using Outcomes = std::map<std::pair<Value, Value>, uint64_t>;

void printOutcomes(const char *Name, const char *Vars, const Outcomes &O,
                   std::pair<Value, Value> Interesting,
                   bool InterestingAllowed) {
  std::printf("%s   outcomes %s:", Name, Vars);
  for (auto &[K, N] : O)
    std::printf("  (%llu,%llu)x%llu", (unsigned long long)K.first,
                (unsigned long long)K.second, (unsigned long long)N);
  bool Seen = O.count(Interesting) > 0;
  std::printf("\n  -> weak outcome (%llu,%llu) %s, RC11 says %s\n\n",
              (unsigned long long)Interesting.first,
              (unsigned long long)Interesting.second,
              Seen ? "OBSERVED" : "absent",
              InterestingAllowed ? "allowed" : "forbidden");
}

Outcomes runMp(MemOrder StoreO, MemOrder LoadO) {
  Outcomes O;
  Value Rf = 0, Rx = 0;
  explore(
      Explorer::Options{},
      [&](Machine &M, Scheduler &S) {
        Rf = Rx = 0;
        Loc X = M.alloc("x"), F = M.alloc("f");
        Env &E0 = S.newThread();
        S.start(E0, mpWriter(E0, X, F, StoreO));
        Env &E1 = S.newThread();
        S.start(E1, mpReader(E1, X, F, LoadO, &Rf, &Rx));
      },
      [&](Machine &, Scheduler &, Scheduler::RunResult) {
        ++O[{Rf, Rx}];
      });
  return O;
}

Outcomes runSb(bool Fences) {
  Outcomes O;
  Value R0 = 0, R1 = 0;
  explore(
      Explorer::Options{},
      [&](Machine &M, Scheduler &S) {
        R0 = R1 = 0;
        Loc X = M.alloc("x"), Y = M.alloc("y");
        Env &E0 = S.newThread();
        S.start(E0, sbThread(E0, X, Y, Fences, &R0));
        Env &E1 = S.newThread();
        S.start(E1, sbThread(E1, Y, X, Fences, &R1));
      },
      [&](Machine &, Scheduler &, Scheduler::RunResult) {
        ++O[{R0, R1}];
      });
  return O;
}

} // namespace

int main() {
  std::printf("RC11 litmus outcomes under exhaustive exploration "
              "(count = executions)\n\n");

  printOutcomes("MP rel/acq ", "(r_flag, r_x)",
                runMp(MemOrder::Release, MemOrder::Acquire), {1, 0},
                false);
  printOutcomes("MP rlx/rlx ", "(r_flag, r_x)",
                runMp(MemOrder::Relaxed, MemOrder::Relaxed), {1, 0}, true);
  printOutcomes("SB rlx     ", "(r0, r1)     ", runSb(false), {0, 0},
                true);
  printOutcomes("SB sc-fence", "(r0, r1)     ", runSb(true), {0, 0},
                false);

  std::printf("the machine realizes exactly the view semantics of the "
              "paper's Section 2.3:\nrelease writes carry views, acquire "
              "reads join them, SC fences join the global\nview — and "
              "logical (event) views ride along the same edges.\n");
  return 0;
}
