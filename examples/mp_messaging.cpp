//===-- examples/mp_messaging.cpp - The paper's Figure 1, live -----------===//
//
// Walks through the paper's motivating Message-Passing client:
//
//     enq(q, 41);          |           |  while (*acq flag == 0) {};
//     enq(q, 42);          |  deq(q)   |  deq(q)
//     flag :=rel 1         |           |  // returns 41 or 42, never empty
//
// First the verified configuration (release/acquire flag): exhaustive
// exploration confirms the right thread never sees an empty queue. Then
// the ablation (relaxed flag): the tool finds a counterexample execution
// and prints its full memory trace — the kind of behaviour the Cosmo spec
// cannot exclude and the paper's LAT_hb spec proves impossible.
//
// Build & run:  ./build/examples/mp_messaging
//
//===----------------------------------------------------------------------===//

#include "clients/MpClient.h"
#include "lib/MsQueue.h"
#include "sim/Explorer.h"

#include <cstdio>

using namespace compass;
using namespace compass::clients;

namespace {

struct MpRun {
  uint64_t Executions = 0;
  uint64_t RightEmpty = 0;
  std::vector<std::string> CounterexampleTrace;
  rmc::Value CexMiddle = 0;
};

MpRun runMp(rmc::MemOrder FlagStore, rmc::MemOrder FlagRead) {
  sim::Explorer::Options Opts;
  Opts.PreemptionBound = 2;
  Opts.MaxExecutions = 200'000;
  sim::Explorer Ex(Opts);

  MpRun Out;
  MpConfig Cfg;
  Cfg.FlagStore = FlagStore;
  Cfg.FlagRead = FlagRead;

  while (Ex.beginExecution()) {
    rmc::Machine M(Ex);
    M.enableTrace(true);
    sim::Scheduler S(M, Ex);
    S.setPreemptionBound(Opts.PreemptionBound);
    spec::SpecMonitor Mon;
    lib::MsQueue Q(M, Mon, "q");
    MpOutcome Res;
    setupMpClient(M, S, Q, Cfg, Res);
    auto R = S.run(Opts.MaxStepsPerExec);
    ++Out.Executions;
    if (R == sim::Scheduler::RunResult::Done &&
        Res.Right == graph::EmptyVal) {
      ++Out.RightEmpty;
      if (Out.CounterexampleTrace.empty()) {
        Out.CounterexampleTrace = M.trace();
        Out.CexMiddle = Res.Middle;
      }
    }
    Ex.endExecution(R);
  }
  return Out;
}

const char *valueStr(rmc::Value V) {
  static char Buf[32];
  if (V == graph::EmptyVal)
    return "empty";
  std::snprintf(Buf, sizeof(Buf), "%llu", (unsigned long long)V);
  return Buf;
}

} // namespace

int main() {
  std::printf("Figure 1: Message Passing with queues "
              "(Michael-Scott implementation)\n\n");

  std::printf("--- verified configuration: flag written with release, "
              "spun on with acquire ---\n");
  MpRun Good = runMp(rmc::MemOrder::Release, rmc::MemOrder::Acquire);
  std::printf("explored %llu executions: right thread saw empty %llu "
              "times\n",
              (unsigned long long)Good.Executions,
              (unsigned long long)Good.RightEmpty);
  std::printf("=> as the paper proves (Figure 3): the dequeue after the "
              "flag is NEVER empty.\n\n");

  std::printf("--- ablation: flag accesses relaxed (no external "
              "synchronization) ---\n");
  MpRun Bad = runMp(rmc::MemOrder::Relaxed, rmc::MemOrder::Relaxed);
  std::printf("explored %llu executions: right thread saw empty %llu "
              "times\n",
              (unsigned long long)Bad.Executions,
              (unsigned long long)Bad.RightEmpty);
  if (!Bad.CounterexampleTrace.empty()) {
    std::printf("\nfirst counterexample (middle dequeued %s); full memory "
                "trace:\n",
                valueStr(Bad.CexMiddle));
    for (const std::string &Line : Bad.CounterexampleTrace)
      std::printf("  %s\n", Line.c_str());
    std::printf("\nthe right thread read flag=1 without acquiring the "
                "left thread's view, so its\ndequeue searched a stale "
                "queue — exactly the behaviour the release/acquire flag\n"
                "and the LAT_hb spec's logical views rule out.\n");
  }
  return Good.RightEmpty == 0 && Bad.RightEmpty > 0 ? 0 : 1;
}
