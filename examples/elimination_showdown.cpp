//===-- examples/elimination_showdown.cpp - Section 4, end to end ---------===//
//
// The elimination stack from both sides:
//
//  1. compositional verification (Section 4.1): model-check a contended
//     workload, derive the ES event graph from the base stack's and
//     exchanger's graphs, check StackConsistent — and print one derived
//     graph in which an elimination actually happened;
//  2. the native elimination stack under a real push/pop storm, with the
//     retire-list statistics showing deferred reclamation at work.
//
// Build & run:  ./build/examples/elimination_showdown
//
//===----------------------------------------------------------------------===//

#include "lib/ElimStack.h"
#include "native/ElimStack.h"
#include "sim/Explorer.h"
#include "spec/Composition.h"
#include "spec/Consistency.h"

#include <cstdio>
#include <thread>

using namespace compass;

namespace {

sim::Task<void> pusher(sim::Env &E, lib::ElimStack &S) {
  for (rmc::Value V : {1, 2}) {
    auto T = S.push(E, V, 3);
    co_await T;
  }
}

sim::Task<void> popper(sim::Env &E, lib::ElimStack &S) {
  auto T = S.pop(E, 3);
  co_await T;
}

bool verifiedShowdown() {
  std::printf("== Section 4.1: compositional verification ==\n");
  sim::Explorer::Options Opts;
  Opts.PreemptionBound = 2;
  Opts.MaxExecutions = 150'000;
  sim::Explorer Ex(Opts);

  uint64_t Executions = 0, Violations = 0, WithElimination = 0;
  std::string SampleGraph;

  while (Ex.beginExecution()) {
    rmc::Machine M(Ex);
    sim::Scheduler S(M, Ex);
    S.setPreemptionBound(Opts.PreemptionBound);
    spec::SpecMonitor Mon;
    lib::ElimStack St(M, Mon, "es");
    sim::Env &E0 = S.newThread();
    S.start(E0, pusher(E0, St));
    sim::Env &E1 = S.newThread();
    S.start(E1, popper(E1, St));
    sim::Env &E2 = S.newThread();
    S.start(E2, popper(E2, St));
    auto R = S.run(Opts.MaxStepsPerExec);
    if (R == sim::Scheduler::RunResult::Done) {
      ++Executions;
      graph::EventGraph Es = spec::buildElimStackGraph(
          Mon.graph(), St.baseObjId(), St.exchangerObjId(), 100);
      bool Eliminated = false;
      for (graph::EventId Id : Es.objectEvents(100))
        Eliminated |= Mon.graph().isCommitted(Id) &&
                      Mon.graph().event(Id).Kind == graph::OpKind::Exchange;
      if (Eliminated) {
        ++WithElimination;
        if (SampleGraph.empty())
          SampleGraph = Es.str();
      }
      if (!spec::checkStackConsistent(Es, 100).ok())
        ++Violations;
    }
    Ex.endExecution(R);
  }

  std::printf("executions=%llu with-elimination=%llu violations=%llu\n",
              (unsigned long long)Executions,
              (unsigned long long)WithElimination,
              (unsigned long long)Violations);
  if (!SampleGraph.empty())
    std::printf("\na derived ES graph where a push/pop pair eliminated "
                "through the exchanger\n(adjacent commit indices = the "
                "atomic paired commit of Section 4.2):\n%s\n",
                SampleGraph.c_str());
  return Violations == 0 && WithElimination > 0;
}

void nativeShowdown() {
  std::printf("== native elimination stack under a push/pop storm ==\n");
  native::ElimStack<uint64_t> S;
  constexpr unsigned Threads = 4;
  constexpr uint64_t OpsPerThread = 20'000;

  std::vector<std::thread> Workers;
  std::atomic<uint64_t> Popped{0};
  for (unsigned W = 0; W != Threads; ++W)
    Workers.emplace_back([&, W] {
      for (uint64_t I = 1; I <= OpsPerThread; ++I) {
        S.push((uint64_t(W) << 32) | I);
        if (S.pop())
          Popped.fetch_add(1, std::memory_order_relaxed);
      }
    });
  for (auto &T : Workers)
    T.join();

  uint64_t Remaining = 0;
  while (S.pop())
    ++Remaining;
  std::printf("pushed %llu, popped %llu inline + %llu drained — "
              "conserved: %s\n",
              (unsigned long long)(Threads * OpsPerThread),
              (unsigned long long)Popped.load(),
              (unsigned long long)Remaining,
              Popped.load() + Remaining == Threads * OpsPerThread
                  ? "yes"
                  : "NO");
}

} // namespace

int main() {
  bool Ok = verifiedShowdown();
  std::printf("\n");
  nativeShowdown();
  return Ok ? 0 : 1;
}
