//===-- tests/CheckpointTest.cpp - Checkpoint/resume exactness -------------===//
//
// The crash-resilience suite (DESIGN.md Section 9). Three layers:
//
//  * text round-trips: ExplorationSnapshot and SweepCheckpoint survive
//    serialize -> parse bit-exactly, and malformed inputs are rejected
//    with a diagnostic instead of a crash or a silently-wrong resume;
//  * exploration resume: interrupting a workload mid-search (by execution
//    tripwire) and resuming the snapshot — at any worker count, across
//    multiple interrupt/resume segments — reproduces the bit-identical
//    Summary core of an uninterrupted run;
//  * sweep resume: an interrupted runSweepResumable, resumed (possibly
//    repeatedly, at different worker counts), ends with the bit-identical
//    SweepReport fingerprint of an uninterrupted sweep.
//
//===----------------------------------------------------------------------===//

#include "SimTestUtil.h"
#include "check/Checkpoint.h"
#include "check/Harness.h"
#include "check/ScenarioGen.h"
#include "lib/MsQueue.h"
#include "sim/Checkpoint.h"
#include "sim/ParallelExplorer.h"
#include "spec/Consistency.h"
#include "spec/SpecMonitor.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <sstream>
#include <vector>

using namespace compass;
using namespace compass::rmc;
using namespace compass::sim;

namespace {

/// The E2 MS-queue configuration (the same shape ParallelTest uses): big
/// enough to interrupt mid-flight, small enough to exhaust quickly.
Workload msQueueWorkload(unsigned Workers, ReductionMode Red) {
  Explorer::Options Opts;
  Opts.Workers = Workers;
  Opts.PreemptionBound = 2;
  Opts.MaxExecutions = 500'000;
  Opts.Reduction = Red;
  return Workload(Opts, []() -> Workload::Body {
    struct State {
      std::unique_ptr<spec::SpecMonitor> Mon;
      std::unique_ptr<lib::MsQueue> Q;
      std::vector<Value> Got0, Got1;
    };
    auto St = std::make_shared<State>();
    return {
        [St](Machine &M, Scheduler &S) {
          St->Mon = std::make_unique<spec::SpecMonitor>();
          St->Q = std::make_unique<lib::MsQueue>(M, *St->Mon, "q");
          St->Got0.clear();
          St->Got1.clear();
          Env &E0 = S.newThread();
          S.start(E0, test::enqueuerThread(E0, *St->Q, {1, 2}));
          Env &E1 = S.newThread();
          S.start(E1, test::dequeuerThread(E1, *St->Q, 1, &St->Got0));
          Env &E2 = S.newThread();
          S.start(E2, test::dequeuerThread(E2, *St->Q, 1, &St->Got1));
        },
        [St](Machine &, Scheduler &, Scheduler::RunResult R) {
          if (R != Scheduler::RunResult::Done)
            return false;
          return spec::checkQueueConsistent(St->Mon->graph(),
                                            St->Q->objId())
              .ok();
        }};
  });
}

bool prefixEquals(const DecisionTree::Prefix &A,
                  const DecisionTree::Prefix &B) {
  if (A.Path.size() != B.Path.size() || A.HasSleep != B.HasSleep ||
      A.SleepOrdinal != B.SleepOrdinal || A.Sleep != B.Sleep)
    return false;
  for (size_t I = 0; I != A.Path.size(); ++I) {
    const DecisionTree::Decision &X = A.Path[I], &Y = B.Path[I];
    if (X.Chosen != Y.Chosen || X.Limit != Y.Limit || X.Count != Y.Count)
      return false;
    // Tags are interned on parse; compare by *content* (the parsed side
    // must print identically, pointer identity is not required).
    if (std::string_view(X.Tag ? X.Tag : "") !=
        std::string_view(Y.Tag ? Y.Tag : ""))
      return false;
  }
  return true;
}

/// Interrupts \p W after ~InterruptAt executions; returns the segment.
ExploreResult interruptAt(Workload W, uint64_t InterruptAt,
                          const ExplorationSnapshot *Resume = nullptr) {
  ExploreControl Ctl;
  Ctl.InterruptAtExecs = InterruptAt;
  return exploreResumable(W, Ctl, Resume);
}

} // namespace

//===----------------------------------------------------------------------===//
// Snapshot text round-trips
//===----------------------------------------------------------------------===//

TEST(SnapshotFormat, RoundTripsInterruptedExploration) {
  // Interrupt a real exploration (with sleep reduction so prefixes carry
  // sleep snapshots) and round-trip the resulting snapshot.
  auto R = interruptAt(msQueueWorkload(2, ReductionMode::SleepSet), 400);
  ASSERT_TRUE(R.Interrupted);
  ASSERT_FALSE(R.Snapshot.empty());

  std::string Text = serializeSnapshot(R.Snapshot);
  ExplorationSnapshot Back;
  std::string Err;
  ASSERT_TRUE(parseSnapshot(Text, Back, Err)) << Err;

  EXPECT_TRUE(Back.Partial.coreEquals(R.Snapshot.Partial))
      << "saved:  " << R.Snapshot.Partial.str()
      << "\nparsed: " << Back.Partial.str();
  ASSERT_EQ(Back.Frontier.size(), R.Snapshot.Frontier.size());
  for (size_t I = 0; I != Back.Frontier.size(); ++I)
    EXPECT_TRUE(prefixEquals(Back.Frontier[I], R.Snapshot.Frontier[I]))
        << "frontier prefix " << I;

  // Serialization is deterministic: a second round trip is bit-identical.
  EXPECT_EQ(serializeSnapshot(Back), Text);
}

TEST(SnapshotFormat, RoundTripsSourceModeState) {
  // Source-set snapshots carry the per-sleeper Atomic flag and reads-from
  // watermark plus the three source-set counters ("snapshot v2" fields) —
  // all of it must survive the text round trip bit-exactly.
  auto R = interruptAt(msQueueWorkload(2, ReductionMode::SourceSet), 200);
  ASSERT_TRUE(R.Interrupted);
  ASSERT_FALSE(R.Snapshot.empty());

  std::string Text = serializeSnapshot(R.Snapshot);
  EXPECT_EQ(Text.rfind("snapshot v2", 0), 0u)
      << "writer must emit the v2 header";
  ExplorationSnapshot Back;
  std::string Err;
  ASSERT_TRUE(parseSnapshot(Text, Back, Err)) << Err;
  EXPECT_TRUE(Back.Partial.coreEquals(R.Snapshot.Partial))
      << "saved:  " << R.Snapshot.Partial.str()
      << "\nparsed: " << Back.Partial.str();
  ASSERT_EQ(Back.Frontier.size(), R.Snapshot.Frontier.size());
  for (size_t I = 0; I != Back.Frontier.size(); ++I)
    EXPECT_TRUE(prefixEquals(Back.Frontier[I], R.Snapshot.Frontier[I]))
        << "frontier prefix " << I;
  EXPECT_EQ(serializeSnapshot(Back), Text);
}

TEST(SnapshotFormat, AcceptsV1Snapshots) {
  // Pre-source-set checkpoints on disk must keep resuming: downgrade a
  // sleep-mode snapshot to the v1 grammar (no source counters, 4-field
  // sleep records) and parse it. Sleep mode never *consults* the missing
  // fields (the Atomic flag and rf watermark only drive source-set
  // refinement), so the downgrade is lossless for resume purposes.
  auto R = interruptAt(msQueueWorkload(1, ReductionMode::SleepSet), 200);
  ASSERT_TRUE(R.Interrupted);
  std::string V2 = serializeSnapshot(R.Snapshot);

  std::string V1;
  std::istringstream In(V2);
  std::string Line;
  while (std::getline(In, Line)) {
    if (Line == "snapshot v2") {
      Line = "snapshot v1";
    } else if (Line.rfind("summary ", 0) == 0) {
      // Drop fields 8-10 (RfPruned SourcePruned CacheHits) of 14.
      std::istringstream F(Line.substr(8));
      std::vector<std::string> W;
      for (std::string T; F >> T;)
        W.push_back(T);
      ASSERT_EQ(W.size(), 14u) << Line;
      W.erase(W.begin() + 7, W.begin() + 10);
      Line = "summary";
      for (const std::string &T : W)
        Line += " " + T;
    } else if (Line.rfind("s ", 0) == 0) {
      // Drop the trailing <Atomic> <Ver> pair.
      size_t E = Line.find_last_of(' ');
      ASSERT_NE(E, std::string::npos);
      E = Line.find_last_of(' ', E - 1);
      ASSERT_NE(E, std::string::npos);
      Line.resize(E);
    }
    V1 += Line + "\n";
  }

  ExplorationSnapshot Back;
  std::string Err;
  ASSERT_TRUE(parseSnapshot(V1, Back, Err)) << Err;
  EXPECT_TRUE(Back.Partial.coreEquals(R.Snapshot.Partial))
      << "saved:  " << R.Snapshot.Partial.str()
      << "\nparsed: " << Back.Partial.str();
  ASSERT_EQ(Back.Frontier.size(), R.Snapshot.Frontier.size());
  // Footprint equality deliberately ignores the Atomic flag (stale
  // snapshots remain comparable), so the stripped sleep records still
  // match move-for-move.
  for (size_t I = 0; I != Back.Frontier.size(); ++I)
    EXPECT_TRUE(prefixEquals(Back.Frontier[I], R.Snapshot.Frontier[I]))
        << "frontier prefix " << I;
  // Re-serialization upgrades to the v2 header (the dropped Atomic flags
  // are gone for good, which sleep-mode resume never notices).
  EXPECT_EQ(serializeSnapshot(Back).rfind("snapshot v2", 0), 0u);

  // The v1-parsed snapshot must actually resume to the uninterrupted
  // reference core.
  std::string Err2;
  ASSERT_TRUE(parseSnapshot(V1, Back, Err2)) << Err2;
  ExploreControl Run;
  auto Done = exploreResumable(msQueueWorkload(1, ReductionMode::SleepSet),
                               Run, &Back);
  EXPECT_FALSE(Done.Interrupted);
  auto Ref = explore(msQueueWorkload(1, ReductionMode::SleepSet));
  EXPECT_TRUE(Done.Sum.coreEquals(Ref))
      << "reference: " << Ref.str() << "\nresumed:   " << Done.Sum.str();
}

TEST(SnapshotFormat, RoundTripsViolationState) {
  // A snapshot taken after violations were seen must preserve the lex-min
  // first-violation trace (it participates in the final merge).
  check::GenOptions G;
  G.MaxThreads = 2;
  G.MaxOpsPerThread = 2;
  G.MinPreemptions = G.MaxPreemptions = 1;
  check::Scenario S = check::generateScenario(
      check::Lib::TreiberStack, check::scenarioSeed(13, check::Lib::TreiberStack, 0), G);
  Workload W = check::makeWorkload(S, check::Mutation::TreiberRelaxedPopHead,
                                   check::scenarioOptions(S, 200000, 2));
  auto Full = explore(W);
  ASSERT_TRUE(Full.HasViolation) << "scenario no longer violates; reseed";

  auto R = interruptAt(W, Full.Executions / 2);
  ASSERT_TRUE(R.Interrupted);
  std::string Text = serializeSnapshot(R.Snapshot);
  ExplorationSnapshot Back;
  std::string Err;
  ASSERT_TRUE(parseSnapshot(Text, Back, Err)) << Err;
  EXPECT_TRUE(Back.Partial.coreEquals(R.Snapshot.Partial));
  EXPECT_EQ(Back.Partial.firstViolationDecisions(),
            R.Snapshot.Partial.firstViolationDecisions());
}

TEST(SnapshotFormat, RejectsMalformedInput) {
  ExplorationSnapshot Out;
  std::string Err;
  auto Bad = [&](std::string_view Text) {
    Err.clear();
    bool Ok = parseSnapshot(Text, Out, Err);
    EXPECT_FALSE(Ok) << "accepted: " << Text;
    EXPECT_FALSE(Err.empty());
  };
  Bad("");
  Bad("snapshot v2\nend snapshot\n");
  Bad("not a snapshot at all");
  Bad("snapshot v1\n"); // truncated: no summary, no footer

  // A valid snapshot, then corrupted one line at a time.
  auto R = interruptAt(msQueueWorkload(1, ReductionMode::SleepSet), 200);
  ASSERT_TRUE(R.Interrupted);
  std::string Good = serializeSnapshot(R.Snapshot);
  ASSERT_TRUE(parseSnapshot(Good, Out, Err)) << Err;
  Bad(Good.substr(0, Good.size() / 2));            // torn mid-file
  Bad("snapshot v1\ngarbage here\n" + Good);       // wrong record kind
  std::string Neg = Good;
  size_t P = Neg.find("\nd ");
  ASSERT_NE(P, std::string::npos);
  Neg.replace(P, 3, "\nd -"); // negative decision field
  Bad(Neg);
}

TEST(SweepCheckpointFormat, RoundTripsAndRejectsMalformed) {
  using namespace compass::check;

  // Build a real mid-scenario checkpoint via the resumable sweep.
  SweepOptions O;
  O.Seed = 5;
  O.ScenariosPerLib = 2;
  O.Workers = 2;
  O.MaxExecutionsPerScenario = 60000;
  O.Libs = {Lib::MsQueue, Lib::TreiberStack};
  std::atomic<bool> Stop{true}; // stop before the first poll
  SweepControl Ctl;
  Ctl.StopRequested = &Stop;
  SweepResult R = runSweepResumable(O, Ctl);
  ASSERT_TRUE(R.Interrupted);

  std::string Text = serializeSweepCheckpoint(R.Ckpt);
  SweepCheckpoint Back;
  std::string Err;
  ASSERT_TRUE(parseSweepCheckpoint(Text, Back, Err)) << Err;
  EXPECT_EQ(Back.Seed, R.Ckpt.Seed);
  EXPECT_EQ(Back.ScenariosPerLib, R.Ckpt.ScenariosPerLib);
  EXPECT_EQ(Back.Libs, R.Ckpt.Libs);
  EXPECT_EQ(Back.Fp, R.Ckpt.Fp);
  EXPECT_EQ(Back.LibIndex, R.Ckpt.LibIndex);
  EXPECT_EQ(Back.ScenarioIndex, R.Ckpt.ScenarioIndex);
  EXPECT_EQ(Back.HasScenario, R.Ckpt.HasScenario);
  EXPECT_EQ(Back.ScenarioLinAborts, R.Ckpt.ScenarioLinAborts);
  if (R.Ckpt.HasScenario) {
    EXPECT_TRUE(Back.Scenario.Partial.coreEquals(R.Ckpt.Scenario.Partial));
  }
  // Deterministic serialization.
  EXPECT_EQ(serializeSweepCheckpoint(Back), Text);

  auto BadCk = [&](std::string T) {
    Err.clear();
    EXPECT_FALSE(parseSweepCheckpoint(T, Back, Err));
    EXPECT_FALSE(Err.empty());
  };
  BadCk("");
  BadCk("compass sweep-checkpoint v9\n");
  BadCk(Text.substr(0, Text.size() - 8)); // missing footer
  std::string Wrong = Text;
  size_t P = Wrong.find("libs ");
  ASSERT_NE(P, std::string::npos);
  Wrong.replace(P, 6, "libs 0"); // empty library list
  BadCk(Wrong);
  // A config line without the reduction/engine words (the pre-fix grammar)
  // must be rejected, not silently defaulted.
  Wrong = Text;
  P = Wrong.find("\ngen ");
  ASSERT_NE(P, std::string::npos);
  size_t CfgEnd = Wrong.rfind(' ', P - 1);
  size_t CfgEnd2 = Wrong.rfind(' ', CfgEnd - 1);
  Wrong.erase(CfgEnd2, P - CfgEnd2); // strip "<red> <engine>"
  BadCk(Wrong);
}

TEST(SweepCheckpointFormat, RecordsReductionModeAndEnginePath) {
  using namespace compass::check;

  // Regression: the checkpoint writer used to serialize every non-sleep
  // mode as "none", so a source-set sweep silently resumed unreduced (and
  // fingerprint-diverged). The config line must round-trip the exact mode
  // and engine path the executed share ran under.
  for (ReductionMode Red : {ReductionMode::None, ReductionMode::SleepSet,
                            ReductionMode::SourceSet}) {
    SweepOptions O;
    O.Seed = 5;
    O.ScenariosPerLib = 2;
    O.Workers = 2;
    O.MaxExecutionsPerScenario = 60000;
    O.Reduction = Red;
    O.Engine = EnginePath::RootReplay;
    O.Libs = {Lib::MsQueue, Lib::TreiberStack};
    std::atomic<bool> Stop{true};
    SweepControl Ctl;
    Ctl.StopRequested = &Stop;
    SweepResult R = runSweepResumable(O, Ctl);
    ASSERT_TRUE(R.Interrupted);
    EXPECT_EQ(R.Ckpt.Reduction, Red);
    EXPECT_EQ(R.Ckpt.Engine, EnginePath::RootReplay);

    std::string Text = serializeSweepCheckpoint(R.Ckpt);
    std::istringstream In(Text);
    std::string Header, Config;
    ASSERT_TRUE(std::getline(In, Header) && std::getline(In, Config));
    std::string Want =
        std::string(" ") + reductionModeName(Red) + " root";
    EXPECT_NE(Config.find(Want), std::string::npos)
        << "config line does not record the mode: " << Config;

    SweepCheckpoint Back;
    std::string Err;
    ASSERT_TRUE(parseSweepCheckpoint(Text, Back, Err)) << Err;
    EXPECT_EQ(Back.Reduction, Red) << reductionModeName(Red);
    EXPECT_EQ(Back.Engine, EnginePath::RootReplay);
  }
}

//===----------------------------------------------------------------------===//
// Exploration-level resume exactness
//===----------------------------------------------------------------------===//

namespace {

/// Interrupt at ~half, then resume to completion at \p ResumeWorkers; the
/// final core must equal the uninterrupted reference bit-for-bit.
void expectResumeExact(ReductionMode Red, unsigned FirstWorkers,
                       unsigned ResumeWorkers) {
  auto Ref = explore(msQueueWorkload(1, Red));
  ASSERT_TRUE(Ref.Exhausted);

  auto Seg1 = interruptAt(msQueueWorkload(FirstWorkers, Red),
                          Ref.Executions / 2);
  ASSERT_TRUE(Seg1.Interrupted) << "tree too small to interrupt";
  ASSERT_FALSE(Seg1.Snapshot.empty());
  EXPECT_LT(Seg1.Sum.Executions, Ref.Executions);

  // Round-trip through text: resume exactly what a file would hold.
  std::string Text = serializeSnapshot(Seg1.Snapshot);
  ExplorationSnapshot Snap;
  std::string Err;
  ASSERT_TRUE(parseSnapshot(Text, Snap, Err)) << Err;

  ExploreControl Run;
  auto Seg2 = exploreResumable(msQueueWorkload(ResumeWorkers, Red), Run,
                               &Snap);
  EXPECT_FALSE(Seg2.Interrupted);
  EXPECT_TRUE(Seg2.Sum.coreEquals(Ref))
      << "reference: " << Ref.str() << "\nresumed:   " << Seg2.Sum.str();
}

} // namespace

TEST(ResumeExactness, SerialInterruptSerialResume) {
  expectResumeExact(ReductionMode::None, 1, 1);
}

TEST(ResumeExactness, ParallelInterruptParallelResume) {
  expectResumeExact(ReductionMode::None, 2, 4);
}

TEST(ResumeExactness, WorkerCountChangesAcrossSegments) {
  expectResumeExact(ReductionMode::None, 4, 1);
}

TEST(ResumeExactness, SleepReductionSerial) {
  expectResumeExact(ReductionMode::SleepSet, 1, 2);
}

TEST(ResumeExactness, SleepReductionParallel) {
  expectResumeExact(ReductionMode::SleepSet, 2, 4);
}

TEST(ResumeExactness, SourceReductionSerial) {
  expectResumeExact(ReductionMode::SourceSet, 1, 2);
}

TEST(ResumeExactness, SourceReductionParallel) {
  expectResumeExact(ReductionMode::SourceSet, 2, 4);
}

TEST(ResumeExactness, ManySegmentsStillExact) {
  // Interrupt every ~sixth of the tree until done, rotating worker
  // counts; the chained segments must still land on the uninterrupted
  // core. Source sets stress the donated-prefix snapshot validation the
  // hardest (every hop re-seeds sleep state, watermarks, and dup masks).
  for (const ReductionMode Red :
       {ReductionMode::SleepSet, ReductionMode::SourceSet}) {
  auto Ref = explore(msQueueWorkload(1, Red));
  ASSERT_TRUE(Ref.Exhausted);
  const uint64_t Stride = std::max<uint64_t>(Ref.Executions / 6, 25);

  unsigned WorkerRotation[] = {1, 2, 4, 3};
  ExplorationSnapshot Snap;
  bool HaveSnap = false;
  Explorer::Summary Final;
  unsigned Segments = 0;
  for (;; ++Segments) {
    ASSERT_LT(Segments, 100u) << "resume loop failed to make progress";
    uint64_t Base = HaveSnap ? Snap.Partial.Executions : 0;
    auto R = interruptAt(
        msQueueWorkload(WorkerRotation[Segments % 4], Red), Base + Stride,
        HaveSnap ? &Snap : nullptr);
    if (!R.Interrupted) {
      Final = R.Sum;
      break;
    }
    // Round-trip through the text format on every hop.
    std::string Err;
    std::string Text = serializeSnapshot(R.Snapshot);
    ASSERT_TRUE(parseSnapshot(Text, Snap, Err)) << Err;
    HaveSnap = true;
  }
  EXPECT_GE(Segments, 3u) << "tree too small to test multi-segment resume";
  EXPECT_TRUE(Final.coreEquals(Ref))
      << "reference: " << Ref.str() << "\nchained:   " << Final.str();
  }
}

//===----------------------------------------------------------------------===//
// Sweep-level resume exactness
//===----------------------------------------------------------------------===//

TEST(SweepResume, FingerprintExactAcrossInterruptAndWorkers) {
  using namespace compass::check;

  SweepOptions O;
  O.Seed = 5;
  O.ScenariosPerLib = 2;
  O.Workers = 2;
  O.MaxExecutionsPerScenario = 60000;
  O.Libs = {Lib::MsQueue, Lib::TreiberStack, Lib::Exchanger, Lib::SpscRing};

  SweepReport Ref = runSweep(O);

  // Interrupt with a tiny time budget, then resume (rotating the worker
  // count) until the sweep completes. Each hop round-trips the checkpoint
  // through its text form.
  SweepControl Ctl;
  Ctl.TimeBudgetSec = 0.05;
  SweepResult R = runSweepResumable(O, Ctl);
  unsigned Hops = 0;
  SweepCheckpoint Ckpt;
  while (R.Interrupted) {
    ASSERT_LT(++Hops, 200u) << "sweep resume failed to make progress";
    std::string Err;
    ASSERT_TRUE(
        parseSweepCheckpoint(serializeSweepCheckpoint(R.Ckpt), Ckpt, Err))
        << Err;
    SweepOptions O2 = O;
    O2.Workers = 1 + (Hops % 4);
    R = runSweepResumable(O2, Ctl, &Ckpt);
  }
  EXPECT_EQ(R.Rep.fingerprint(), Ref.fingerprint())
      << "uninterrupted:\n" << Ref.str() << "resumed (" << Hops
      << " hops):\n" << R.Rep.str();
  EXPECT_EQ(R.Rep.totalExecutions(), Ref.totalExecutions());
  EXPECT_EQ(R.Rep.totalViolations(), Ref.totalViolations());
}

TEST(SweepResume, StopFlagProducesResumableCheckpoint) {
  using namespace compass::check;

  SweepOptions O;
  O.Seed = 9;
  O.ScenariosPerLib = 1;
  O.Workers = 2;
  O.MaxExecutionsPerScenario = 40000;
  O.Libs = {Lib::MsQueue, Lib::SpscRing};

  SweepReport Ref = runSweep(O);

  std::atomic<bool> Stop{true};
  SweepControl Ctl;
  Ctl.StopRequested = &Stop;
  SweepResult R = runSweepResumable(O, Ctl);
  ASSERT_TRUE(R.Interrupted);

  Stop = false;
  SweepResult Done = runSweepResumable(O, Ctl, &R.Ckpt);
  ASSERT_FALSE(Done.Interrupted);
  EXPECT_EQ(Done.Rep.fingerprint(), Ref.fingerprint())
      << "uninterrupted:\n" << Ref.str() << "resumed:\n" << Done.Rep.str();
}

TEST(SweepResume, CadenceCheckpointsAreEachResumable) {
  using namespace compass::check;

  SweepOptions O;
  O.Seed = 5;
  O.ScenariosPerLib = 1;
  O.Workers = 2;
  O.MaxExecutionsPerScenario = 30000;
  O.Libs = {Lib::MsQueue, Lib::TreiberStack};

  SweepReport Ref = runSweep(O);

  // Collect cadence checkpoints from an uninterrupted run... (the whole
  // sweep is ~6k executions under sleep reduction, so a 1.5k cadence
  // yields several checkpoints, some mid-scenario and some at scenario
  // boundaries)
  std::vector<std::string> Ckpts;
  SweepControl Ctl;
  Ctl.CheckpointEveryExecs = 1500;
  Ctl.OnCheckpoint = [&](const SweepCheckpoint &C) {
    Ckpts.push_back(serializeSweepCheckpoint(C));
  };
  SweepResult R = runSweepResumable(O, Ctl);
  ASSERT_FALSE(R.Interrupted);
  EXPECT_EQ(R.Rep.fingerprint(), Ref.fingerprint());
  ASSERT_FALSE(Ckpts.empty()) << "cadence produced no checkpoints";

  // ...then every single one must resume to the reference fingerprint.
  for (size_t I = 0; I != Ckpts.size(); ++I) {
    SweepCheckpoint C;
    std::string Err;
    ASSERT_TRUE(parseSweepCheckpoint(Ckpts[I], C, Err))
        << "checkpoint " << I << ": " << Err;
    SweepOptions O2 = O;
    O2.Workers = 1 + (I % 4);
    SweepResult Done = runSweepResumable(O2, SweepControl{}, &C);
    ASSERT_FALSE(Done.Interrupted);
    EXPECT_EQ(Done.Rep.fingerprint(), Ref.fingerprint())
        << "checkpoint " << I << " resumed to a different fingerprint";
  }
}
