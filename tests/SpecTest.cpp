//===-- tests/SpecTest.cpp - Consistency & linearization checker tests -----===//
//
// Validates the spec layer on hand-crafted event graphs: each consistency
// condition of Figure 2 / Sections 3.3, 4.2 is exercised with a positive
// and a negative instance, and the LAT_hist linearization search is tested
// on histories with known answers.
//
//===----------------------------------------------------------------------===//

#include "spec/Consistency.h"
#include "spec/Linearization.h"

#include <gtest/gtest.h>

using namespace compass;
using namespace compass::graph;
using namespace compass::spec;

namespace {

/// Small DSL for building graphs in tests.
struct GraphBuilder {
  EventGraph G;
  uint32_t NextIdx = 0;

  EventId add(OpKind K, rmc::Value V1,
              std::initializer_list<EventId> Seen = {}, unsigned Thread = 0,
              rmc::Value V2 = 0, unsigned Obj = 0) {
    EventId Id = G.reserve();
    Event E;
    E.Kind = K;
    E.V1 = V1;
    E.V2 = V2;
    E.ObjId = Obj;
    E.Thread = Thread;
    E.LogView.insert(Id);
    for (EventId S : Seen) {
      E.LogView.insert(S);
      // Keep views transitively closed, as the monitor does.
      G.event(S).LogView.forEach([&](uint32_t X) { E.LogView.insert(X); });
    }
    G.commit(Id, std::move(E));
    return Id;
  }

  void so(EventId A, EventId B) { G.addSo(A, B); }
};

bool hasViolation(const CheckResult &R, const char *Rule) {
  for (const std::string &V : R.Violations)
    if (V.find(Rule) != std::string::npos)
      return true;
  return false;
}

} // namespace

//===----------------------------------------------------------------------===//
// QueueConsistent
//===----------------------------------------------------------------------===//

TEST(QueueConsistencyTest, EmptyGraphIsConsistent) {
  EventGraph G;
  EXPECT_TRUE(checkQueueConsistent(G, 0).ok());
}

TEST(QueueConsistencyTest, MatchedPairIsConsistent) {
  GraphBuilder B;
  EventId E1 = B.add(OpKind::Enq, 1);
  EventId D1 = B.add(OpKind::DeqOk, 1, {E1}, 1);
  B.so(E1, D1);
  auto R = checkQueueConsistent(B.G, 0);
  EXPECT_TRUE(R.ok()) << R.str();
}

TEST(QueueConsistencyTest, ValueMismatchViolatesMatches) {
  GraphBuilder B;
  EventId E1 = B.add(OpKind::Enq, 1);
  EventId D1 = B.add(OpKind::DeqOk, 2, {E1}, 1); // Wrong value.
  B.so(E1, D1);
  EXPECT_TRUE(hasViolation(checkQueueConsistent(B.G, 0), "MATCHES"));
}

TEST(QueueConsistencyTest, UnobservedProducerViolatesSoLhb) {
  GraphBuilder B;
  EventId E1 = B.add(OpKind::Enq, 1);
  EventId D1 = B.add(OpKind::DeqOk, 1, {}, 1); // No lhb edge.
  B.so(E1, D1);
  EXPECT_TRUE(hasViolation(checkQueueConsistent(B.G, 0), "SO-LHB"));
}

TEST(QueueConsistencyTest, DoubleDequeueViolatesInj) {
  GraphBuilder B;
  EventId E1 = B.add(OpKind::Enq, 1);
  EventId D1 = B.add(OpKind::DeqOk, 1, {E1}, 1);
  EventId D2 = B.add(OpKind::DeqOk, 1, {E1}, 2);
  B.so(E1, D1);
  B.so(E1, D2);
  EXPECT_TRUE(hasViolation(checkQueueConsistent(B.G, 0), "INJ"));
}

TEST(QueueConsistencyTest, ConsumeWithoutProducerViolates) {
  GraphBuilder B;
  B.add(OpKind::DeqOk, 1);
  EXPECT_TRUE(hasViolation(checkQueueConsistent(B.G, 0), "UNMATCHED"));
}

TEST(QueueConsistencyTest, FifoViolationDetected) {
  // e1 lhb e2 (same thread), e2 dequeued, e1 never dequeued: QUEUE-FIFO.
  GraphBuilder B;
  EventId E1 = B.add(OpKind::Enq, 1, {}, 0);
  EventId E2 = B.add(OpKind::Enq, 2, {E1}, 0);
  EventId D2 = B.add(OpKind::DeqOk, 2, {E2}, 1);
  B.so(E2, D2);
  EXPECT_TRUE(hasViolation(checkQueueConsistent(B.G, 0), "FIFO"));
}

TEST(QueueConsistencyTest, FifoOrderWithBothDequeuedIsConsistent) {
  GraphBuilder B;
  EventId E1 = B.add(OpKind::Enq, 1, {}, 0);
  EventId E2 = B.add(OpKind::Enq, 2, {E1}, 0);
  EventId D1 = B.add(OpKind::DeqOk, 1, {E1}, 1);
  EventId D2 = B.add(OpKind::DeqOk, 2, {E2, D1}, 1);
  B.so(E1, D1);
  B.so(E2, D2);
  auto R = checkQueueConsistent(B.G, 0);
  EXPECT_TRUE(R.ok()) << R.str();
}

TEST(QueueConsistencyTest, FifoInverseDequeueOrderViolates) {
  // Both dequeued, but the dequeue of the later enqueue happens-before
  // the dequeue of the earlier one.
  GraphBuilder B;
  EventId E1 = B.add(OpKind::Enq, 1, {}, 0);
  EventId E2 = B.add(OpKind::Enq, 2, {E1}, 0);
  EventId D2 = B.add(OpKind::DeqOk, 2, {E2}, 1);
  EventId D1 = B.add(OpKind::DeqOk, 1, {E1, D2}, 1); // D2 lhb D1.
  B.so(E2, D2);
  B.so(E1, D1);
  EXPECT_TRUE(hasViolation(checkQueueConsistent(B.G, 0), "FIFO"));
}

TEST(QueueConsistencyTest, UnrelatedEnqueuesNeedNoFifo) {
  // No lhb between the enqueues: dequeuing only the second is fine
  // (the weak HW behaviour).
  GraphBuilder B;
  EventId E1 = B.add(OpKind::Enq, 1, {}, 0);
  (void)E1;
  EventId E2 = B.add(OpKind::Enq, 2, {}, 1);
  EventId D2 = B.add(OpKind::DeqOk, 2, {E2}, 2);
  B.so(E2, D2);
  auto R = checkQueueConsistent(B.G, 0);
  EXPECT_TRUE(R.ok()) << R.str();
}

TEST(QueueConsistencyTest, EmpDeqKnowingUnconsumedViolates) {
  // The Figure 1 scenario: an empty dequeue that happens-after an
  // unconsumed enqueue (QUEUE-EMPDEQ).
  GraphBuilder B;
  EventId E1 = B.add(OpKind::Enq, 1, {}, 0);
  B.add(OpKind::DeqEmpty, EmptyVal, {E1}, 1);
  EXPECT_TRUE(hasViolation(checkQueueConsistent(B.G, 0), "EMPTY"));
}

TEST(QueueConsistencyTest, EmpDeqAfterConsumptionIsConsistent) {
  GraphBuilder B;
  EventId E1 = B.add(OpKind::Enq, 1, {}, 0);
  EventId D1 = B.add(OpKind::DeqOk, 1, {E1}, 1);
  B.so(E1, D1);
  B.add(OpKind::DeqEmpty, EmptyVal, {E1}, 2);
  auto R = checkQueueConsistent(B.G, 0);
  EXPECT_TRUE(R.ok()) << R.str();
}

TEST(QueueConsistencyTest, EmpDeqBeforeLaterConsumerStrictMode) {
  // The matching consumer commits after the empty dequeue: accepted by
  // the paper's condition, rejected by the strict commit-prefix reading.
  GraphBuilder B;
  EventId E1 = B.add(OpKind::Enq, 1, {}, 0);
  B.add(OpKind::DeqEmpty, EmptyVal, {E1}, 1);
  EventId D1 = B.add(OpKind::DeqOk, 1, {E1}, 2);
  B.so(E1, D1);
  EXPECT_TRUE(checkQueueConsistent(B.G, 0).ok());
  ContainerCheckOptions Strict;
  Strict.StrictEmpty = true;
  EXPECT_TRUE(
      hasViolation(checkQueueConsistent(B.G, 0, Strict), "EMPTY-STRICT"));
}

TEST(QueueConsistencyTest, ForeignKindsRejected) {
  GraphBuilder B;
  B.add(OpKind::Push, 1);
  EXPECT_TRUE(hasViolation(checkQueueConsistent(B.G, 0), "KINDS"));
}

//===----------------------------------------------------------------------===//
// StackConsistent
//===----------------------------------------------------------------------===//

TEST(StackConsistencyTest, LifoPairConsistent) {
  GraphBuilder B;
  EventId P1 = B.add(OpKind::Push, 1);
  EventId O1 = B.add(OpKind::PopOk, 1, {P1}, 1);
  B.so(P1, O1);
  auto R = checkStackConsistent(B.G, 0);
  EXPECT_TRUE(R.ok()) << R.str();
}

TEST(StackConsistencyTest, LifoViolationDetected) {
  // push 1, push 2 (ordered), then a pop that knows about push 2 takes 1
  // while 2 is never popped: LIFO violation.
  GraphBuilder B;
  EventId P1 = B.add(OpKind::Push, 1, {}, 0);
  EventId P2 = B.add(OpKind::Push, 2, {P1}, 0);
  EventId O1 = B.add(OpKind::PopOk, 1, {P2}, 1);
  B.so(P1, O1);
  EXPECT_TRUE(hasViolation(checkStackConsistent(B.G, 0), "LIFO"));
}

TEST(StackConsistencyTest, PopInLifoOrderConsistent) {
  GraphBuilder B;
  EventId P1 = B.add(OpKind::Push, 1, {}, 0);
  EventId P2 = B.add(OpKind::Push, 2, {P1}, 0);
  EventId O2 = B.add(OpKind::PopOk, 2, {P2}, 1);
  EventId O1 = B.add(OpKind::PopOk, 1, {O2}, 1);
  B.so(P2, O2);
  B.so(P1, O1);
  auto R = checkStackConsistent(B.G, 0);
  EXPECT_TRUE(R.ok()) << R.str();
}

TEST(StackConsistencyTest, PopsWithoutKnowledgeOfLaterPushConsistent) {
  // The pop never observed push 2, so taking 1 underneath is allowed for
  // a relaxed stack.
  GraphBuilder B;
  EventId P1 = B.add(OpKind::Push, 1, {}, 0);
  EventId P2 = B.add(OpKind::Push, 2, {P1}, 0);
  (void)P2;
  EventId O1 = B.add(OpKind::PopOk, 1, {P1}, 1);
  B.so(P1, O1);
  auto R = checkStackConsistent(B.G, 0);
  EXPECT_TRUE(R.ok()) << R.str();
}

TEST(StackConsistencyTest, EmptyPopKnowingUnpoppedViolates) {
  GraphBuilder B;
  EventId P1 = B.add(OpKind::Push, 1, {}, 0);
  B.add(OpKind::PopEmpty, EmptyVal, {P1}, 1);
  EXPECT_TRUE(hasViolation(checkStackConsistent(B.G, 0), "EMPTY"));
}

//===----------------------------------------------------------------------===//
// ExchangerConsistent
//===----------------------------------------------------------------------===//

TEST(ExchangerConsistencyTest, MatchedPairConsistent) {
  GraphBuilder B;
  EventId X1 = B.add(OpKind::Exchange, 1, {}, 0, /*V2=*/2);
  EventId X2 = B.add(OpKind::Exchange, 2, {X1}, 1, /*V2=*/1);
  B.so(X1, X2);
  B.so(X2, X1);
  auto R = checkExchangerConsistent(B.G, 0);
  EXPECT_TRUE(R.ok()) << R.str();
}

TEST(ExchangerConsistencyTest, FailedExchangeConsistent) {
  GraphBuilder B;
  B.add(OpKind::Exchange, 1, {}, 0, BottomVal);
  auto R = checkExchangerConsistent(B.G, 0);
  EXPECT_TRUE(R.ok()) << R.str();
}

TEST(ExchangerConsistencyTest, ValuesMustCross) {
  GraphBuilder B;
  EventId X1 = B.add(OpKind::Exchange, 1, {}, 0, /*V2=*/9); // Wrong.
  EventId X2 = B.add(OpKind::Exchange, 2, {X1}, 1, /*V2=*/1);
  B.so(X1, X2);
  B.so(X2, X1);
  EXPECT_TRUE(hasViolation(checkExchangerConsistent(B.G, 0), "CROSS"));
}

TEST(ExchangerConsistencyTest, SelfExchangeRejected) {
  GraphBuilder B;
  EventId X1 = B.add(OpKind::Exchange, 1, {}, /*Thread=*/0, 2);
  EventId X2 = B.add(OpKind::Exchange, 2, {X1}, /*Thread=*/0, 1);
  B.so(X1, X2);
  B.so(X2, X1);
  EXPECT_TRUE(hasViolation(checkExchangerConsistent(B.G, 0), "SELF"));
}

TEST(ExchangerConsistencyTest, NonAdjacentCommitsRejected) {
  GraphBuilder B;
  EventId X1 = B.add(OpKind::Exchange, 1, {}, 0, 2);
  B.add(OpKind::Exchange, 7, {}, 2, BottomVal); // Intervening commit.
  EventId X2 = B.add(OpKind::Exchange, 2, {X1}, 1, 1);
  B.so(X1, X2);
  B.so(X2, X1);
  EXPECT_TRUE(
      hasViolation(checkExchangerConsistent(B.G, 0), "ATOMIC-PAIR"));
}

TEST(ExchangerConsistencyTest, HalfPairRejected) {
  GraphBuilder B;
  EventId X1 = B.add(OpKind::Exchange, 1, {}, 0, 2);
  EventId X2 = B.add(OpKind::Exchange, 2, {X1}, 1, 1);
  B.so(X1, X2); // Missing the symmetric edge.
  EXPECT_TRUE(hasViolation(checkExchangerConsistent(B.G, 0), "PAIR"));
}

TEST(ExchangerConsistencyTest, FailedExchangeWithEdgesRejected) {
  GraphBuilder B;
  EventId X1 = B.add(OpKind::Exchange, 1, {}, 0, BottomVal);
  EventId X2 = B.add(OpKind::Exchange, 2, {X1}, 1, 1);
  B.so(X1, X2);
  EXPECT_TRUE(
      hasViolation(checkExchangerConsistent(B.G, 0), "FAIL-MATCHED"));
}

//===----------------------------------------------------------------------===//
// Abstract-state replay (LAT_abs_hb)
//===----------------------------------------------------------------------===//

TEST(AbsStateTest, FifoReplayConsistent) {
  GraphBuilder B;
  EventId E1 = B.add(OpKind::Enq, 1);
  EventId E2 = B.add(OpKind::Enq, 2, {E1});
  EventId D1 = B.add(OpKind::DeqOk, 1, {E1}, 1);
  EventId D2 = B.add(OpKind::DeqOk, 2, {E2}, 1);
  B.so(E1, D1);
  B.so(E2, D2);
  EXPECT_TRUE(checkQueueAbsState(B.G, 0).ok());
}

TEST(AbsStateTest, FifoReplayOutOfOrderViolates) {
  GraphBuilder B;
  EventId E1 = B.add(OpKind::Enq, 1);
  EventId E2 = B.add(OpKind::Enq, 2, {E1});
  EventId D2 = B.add(OpKind::DeqOk, 2, {E2}, 1); // Pops 2 while 1 in front.
  B.so(E2, D2);
  EXPECT_TRUE(hasViolation(checkQueueAbsState(B.G, 0), "ABS"));
}

TEST(AbsStateTest, LifoReplayConsistent) {
  GraphBuilder B;
  EventId P1 = B.add(OpKind::Push, 1);
  EventId P2 = B.add(OpKind::Push, 2, {P1});
  EventId O2 = B.add(OpKind::PopOk, 2, {P2}, 1);
  EventId O1 = B.add(OpKind::PopOk, 1, {O2}, 1);
  B.so(P2, O2);
  B.so(P1, O1);
  EXPECT_TRUE(checkStackAbsState(B.G, 0).ok());
}

TEST(AbsStateTest, ConsumeFromEmptyViolates) {
  GraphBuilder B;
  EventId D = B.add(OpKind::DeqOk, 1);
  (void)D;
  EXPECT_TRUE(hasViolation(checkQueueAbsState(B.G, 0), "ABS"));
}

TEST(AbsStateTest, TrueEmptyOptionFlagsNonEmptyEmpties) {
  GraphBuilder B;
  EventId E1 = B.add(OpKind::Enq, 1);
  (void)E1;
  B.add(OpKind::DeqEmpty, EmptyVal, {}, 1);
  EXPECT_TRUE(checkQueueAbsState(B.G, 0).ok());
  AbsStateOptions Strict;
  Strict.RequireTrueEmpty = true;
  EXPECT_TRUE(
      hasViolation(checkQueueAbsState(B.G, 0, Strict), "ABS-EMPTY"));
}

//===----------------------------------------------------------------------===//
// Linearization search (LAT_hist_hb)
//===----------------------------------------------------------------------===//

TEST(LinearizationTest, EmptyHistoryTriviallyLinearizable) {
  EventGraph G;
  auto R = findLinearization(G, 0, SeqSpec::Stack);
  EXPECT_TRUE(R.Found);
  EXPECT_TRUE(R.Order.empty());
}

TEST(LinearizationTest, SimpleStackHistory) {
  GraphBuilder B;
  EventId P1 = B.add(OpKind::Push, 1);
  EventId O1 = B.add(OpKind::PopOk, 1, {P1}, 1);
  B.so(P1, O1);
  auto R = findLinearization(B.G, 0, SeqSpec::Stack);
  ASSERT_TRUE(R.Found);
  ASSERT_EQ(R.Order.size(), 2u);
  EXPECT_EQ(R.Order[0], P1);
  EXPECT_EQ(R.Order[1], O1);
}

TEST(LinearizationTest, ReorderingAgainstCommitOrderAllowed) {
  // Commit order: pop(2), push(2) — but lhb does not order them, so the
  // search may reorder (the LAT_hist freedom of Section 3.3).
  GraphBuilder B;
  EventId O2 = B.add(OpKind::PopOk, 2, {}, 1);
  EventId P2 = B.add(OpKind::Push, 2, {}, 0);
  B.so(P2, O2);
  // NOTE: so here is not within lhb; the graph is odd but the search only
  // uses lhb and values.
  auto R = findLinearization(B.G, 0, SeqSpec::Stack);
  EXPECT_TRUE(R.Found);
}

TEST(LinearizationTest, LhbConstraintsRespected) {
  // pop(eps) that happens-after push(1) with no pop of 1 first: no
  // linearization (the empty pop cannot be placed).
  GraphBuilder B;
  EventId P1 = B.add(OpKind::Push, 1);
  B.add(OpKind::PopEmpty, EmptyVal, {P1}, 1);
  auto R = findLinearization(B.G, 0, SeqSpec::Stack);
  EXPECT_FALSE(R.Found);
}

TEST(LinearizationTest, EmptyPopPlacedBeforePush) {
  // Same events without the lhb edge: pop(eps) can linearize first.
  GraphBuilder B;
  B.add(OpKind::Push, 1);
  B.add(OpKind::PopEmpty, EmptyVal, {}, 1);
  auto R = findLinearization(B.G, 0, SeqSpec::Stack);
  ASSERT_TRUE(R.Found);
  EXPECT_EQ(B.G.event(R.Order[0]).Kind, OpKind::PopEmpty);
}

TEST(LinearizationTest, MismatchedPopValueNotLinearizable) {
  GraphBuilder B;
  B.add(OpKind::Push, 1);
  B.add(OpKind::PopOk, 2, {}, 1); // 2 was never pushed.
  auto R = findLinearization(B.G, 0, SeqSpec::Stack);
  EXPECT_FALSE(R.Found);
}

TEST(LinearizationTest, LifoOrderRequired) {
  // push1 lhb push2 lhb pop(1) lhb pop(2): as a stack this needs popping
  // 2 before 1, but lhb forces pop(1) first -> not linearizable.
  GraphBuilder B;
  EventId P1 = B.add(OpKind::Push, 1);
  EventId P2 = B.add(OpKind::Push, 2, {P1});
  EventId O1 = B.add(OpKind::PopOk, 1, {P2});
  B.add(OpKind::PopOk, 2, {O1});
  auto R = findLinearization(B.G, 0, SeqSpec::Stack);
  EXPECT_FALSE(R.Found);
}

TEST(LinearizationTest, QueueSpecFifo) {
  GraphBuilder B;
  EventId E1 = B.add(OpKind::Enq, 1);
  EventId E2 = B.add(OpKind::Enq, 2, {E1});
  EventId D1 = B.add(OpKind::DeqOk, 1, {E2});
  B.add(OpKind::DeqOk, 2, {D1});
  auto R = findLinearization(B.G, 0, SeqSpec::Queue);
  EXPECT_TRUE(R.Found);
}

TEST(LinearizationTest, QueueSpecRejectsLifo) {
  // Dequeues observe both enqueues and pop in LIFO order: not a queue.
  GraphBuilder B;
  EventId E1 = B.add(OpKind::Enq, 1);
  EventId E2 = B.add(OpKind::Enq, 2, {E1});
  EventId D2 = B.add(OpKind::DeqOk, 2, {E2});
  B.add(OpKind::DeqOk, 1, {D2});
  auto R = findLinearization(B.G, 0, SeqSpec::Queue);
  EXPECT_FALSE(R.Found);
}

TEST(LinearizationTest, SearchReportsEffort) {
  GraphBuilder B;
  EventId P1 = B.add(OpKind::Push, 1);
  EventId O1 = B.add(OpKind::PopOk, 1, {P1});
  B.so(P1, O1);
  auto R = findLinearization(B.G, 0, SeqSpec::Stack);
  EXPECT_GT(R.StatesExplored, 0u);
}
