//===-- tests/LibStackTest.cpp - Stack implementations vs. their specs -----===//
//
// Experiment E4's substance: every explored execution of the Treiber stack
// is checked against StackConsistent (LAT_hb) *and* the LAT_hist_hb
// linearization search of Figure 4 — a total order `to ⊇ lhb` interpreted
// by the sequential stack semantics must exist for every recorded history.
//
//===----------------------------------------------------------------------===//

#include "lib/Locked.h"
#include "lib/TreiberStack.h"
#include "spec/Consistency.h"
#include "spec/Linearization.h"
#include "SimTestUtil.h"

#include <gtest/gtest.h>

#include <memory>

using namespace compass;
using namespace compass::rmc;
using namespace compass::sim;
using namespace compass::spec;

namespace {

enum class StackKind { Treiber, Locked };

const char *stackKindName(StackKind K) {
  return K == StackKind::Treiber ? "treiber" : "locked";
}

std::unique_ptr<lib::SimStack> makeStack(StackKind K, Machine &M,
                                         SpecMonitor &Mon) {
  if (K == StackKind::Treiber)
    return std::make_unique<lib::TreiberStack>(M, Mon, "s");
  return std::make_unique<lib::LockedStack>(M, Mon, "s", /*Capacity=*/8);
}

struct StackExplorationStats {
  uint64_t Checked = 0;
  uint64_t GraphViolations = 0;
  uint64_t AbsViolations = 0;
  uint64_t NoLinearization = 0;
  uint64_t EmptyPops = 0;
  std::string FirstViolation;
};

StackExplorationStats
exploreStack(StackKind K, std::vector<std::vector<Value>> Pushes,
             std::vector<unsigned> Pops, unsigned PreemptionBound) {
  Explorer::Options Opts;
  Opts.PreemptionBound = PreemptionBound;
  Opts.MaxExecutions = 400'000;

  StackExplorationStats Stats;
  std::unique_ptr<SpecMonitor> Mon;
  std::unique_ptr<lib::SimStack> St;
  std::vector<std::vector<Value>> Got;

  auto Sum = explore(
      Opts,
      [&](Machine &M, Scheduler &S) {
        Mon = std::make_unique<SpecMonitor>();
        St = makeStack(K, M, *Mon);
        Got.assign(Pops.size(), {});
        for (auto &Vs : Pushes) {
          Env &E = S.newThread();
          S.start(E, test::pusherThread(E, *St, Vs));
        }
        for (size_t I = 0; I != Pops.size(); ++I) {
          Env &E = S.newThread();
          S.start(E, test::popperThread(E, *St, Pops[I], &Got[I]));
        }
      },
      [&](Machine &M, Scheduler &, Scheduler::RunResult R) {
        EXPECT_NE(R, Scheduler::RunResult::Race) << M.raceMessage();
        if (R != Scheduler::RunResult::Done)
          return;
        ++Stats.Checked;
        auto GR = checkStackConsistent(Mon->graph(), St->objId());
        if (!GR.ok()) {
          ++Stats.GraphViolations;
          if (Stats.FirstViolation.empty())
            Stats.FirstViolation = GR.str() + Mon->graph().str();
        }
        if (!checkStackAbsState(Mon->graph(), St->objId()).ok())
          ++Stats.AbsViolations;
        auto LR = findLinearization(Mon->graph(), St->objId(),
                                    SeqSpec::Stack);
        if (!LR.Found) {
          ++Stats.NoLinearization;
          if (Stats.FirstViolation.empty())
            Stats.FirstViolation =
                "no linearization for:\n" + Mon->graph().str();
        }
        for (auto &Vs : Got)
          for (Value V : Vs)
            if (V == graph::EmptyVal)
              ++Stats.EmptyPops;
      });
  EXPECT_GT(Sum.Executions, 0u);
  EXPECT_EQ(Sum.Races, 0u);
  return Stats;
}

} // namespace

class StackMicroTest : public ::testing::TestWithParam<StackKind> {};

TEST_P(StackMicroTest, OnePushOnePopConsistentAndLinearizable) {
  auto Stats = exploreStack(GetParam(), {{5}}, {1}, ~0u);
  EXPECT_GT(Stats.Checked, 0u);
  EXPECT_EQ(Stats.GraphViolations, 0u) << Stats.FirstViolation;
  EXPECT_EQ(Stats.NoLinearization, 0u) << Stats.FirstViolation;
  EXPECT_EQ(Stats.AbsViolations, 0u);
  EXPECT_GT(Stats.EmptyPops, 0u);
}

TEST_P(StackMicroTest, TwoPushesTwoPopsLifo) {
  auto Stats = exploreStack(GetParam(), {{1, 2}}, {2}, 3);
  EXPECT_GT(Stats.Checked, 0u);
  EXPECT_EQ(Stats.GraphViolations, 0u) << Stats.FirstViolation;
  EXPECT_EQ(Stats.NoLinearization, 0u) << Stats.FirstViolation;
}

TEST_P(StackMicroTest, ConcurrentPushersConsistent) {
  auto Stats = exploreStack(GetParam(), {{1}, {2}}, {2}, 2);
  EXPECT_GT(Stats.Checked, 0u);
  EXPECT_EQ(Stats.GraphViolations, 0u) << Stats.FirstViolation;
  EXPECT_EQ(Stats.NoLinearization, 0u) << Stats.FirstViolation;
}

TEST_P(StackMicroTest, TwoPoppersConsistent) {
  auto Stats = exploreStack(GetParam(), {{1, 2}}, {1, 1}, 2);
  EXPECT_GT(Stats.Checked, 0u);
  EXPECT_EQ(Stats.GraphViolations, 0u) << Stats.FirstViolation;
  EXPECT_EQ(Stats.NoLinearization, 0u) << Stats.FirstViolation;
}

INSTANTIATE_TEST_SUITE_P(AllStacks, StackMicroTest,
                         ::testing::Values(StackKind::Treiber,
                                           StackKind::Locked),
                         [](const auto &Info) {
                           return stackKindName(Info.param);
                         });

TEST(StackTryOpsTest, TryPushTryPopSingleThread) {
  Explorer Ex;
  ASSERT_TRUE(Ex.beginExecution());
  Machine M(Ex);
  Scheduler S(M, Ex);
  SpecMonitor Mon;
  lib::TreiberStack St(M, Mon, "s");
  Value Popped1 = 0, Popped2 = 0, PoppedEmpty = 0;
  bool Pushed = false;

  struct Body {
    static Task<void> run(Env &E, lib::TreiberStack &St, bool *Pushed,
                          Value *P1, Value *P2, Value *PE) {
      auto T1 = St.tryPush(E, 7);
      *Pushed = co_await T1;
      auto T2 = St.tryPop(E);
      *P1 = co_await T2;
      auto T3 = St.tryPop(E); // Empty now.
      *PE = co_await T3;
      auto T4 = St.push(E, 9);
      co_await T4;
      auto T5 = St.pop(E);
      *P2 = co_await T5;
    }
  };
  Env &E0 = S.newThread();
  S.start(E0, Body::run(E0, St, &Pushed, &Popped1, &Popped2, &PoppedEmpty));
  EXPECT_EQ(S.run(), Scheduler::RunResult::Done);
  EXPECT_TRUE(Pushed);
  EXPECT_EQ(Popped1, 7u);
  EXPECT_EQ(PoppedEmpty, graph::EmptyVal);
  EXPECT_EQ(Popped2, 9u);
  auto R = checkStackConsistent(Mon.graph(), St.objId());
  EXPECT_TRUE(R.ok()) << R.str();
  Ex.endExecution(Scheduler::RunResult::Done);
}
