//===-- tests/ReductionTest.cpp - Reduction-mode equivalence --------------===//
//
// The partial-order reductions (sim/Reduction.h, DESIGN.md §8/§12) must be
// pure state-space optimizations: they may skip executions, never
// verdicts. The suite checks all three modes (none / sleep / source), at
// three layers:
//
//  * accounting — the reduction counters are zero under Reduction::None,
//    positive on contended workloads under SleepSet/SourceSet, and the
//    execution counters always reconcile (Executions == Completed +
//    Deadlocks + Races + Diverged + Pruned + SleepPruned + RfPruned;
//    SourcePruned and CacheHits count skips that never burn an execution);
//  * soundness — reduced exploration still reaches the weak-behavior
//    violations of the MP litmus, and for every shrunk counterexample in
//    tests/corpus/ all three hunts report the identical violation verdict
//    (rule + culprit library), while corpus decision traces keep replaying
//    to a failing verdict (replay never prunes);
//  * determinism — reduced summaries (coreEquals) and the reduced sweep
//    fingerprint are bit-identical across 1/2/4 workers and across the
//    copy-on-write / root-replay engine paths, extending the ParallelTest
//    determinism suite to both reduction modes.
//
//===----------------------------------------------------------------------===//

#include "SimTestUtil.h"
#include "check/Conformance.h"
#include "check/Shrinker.h"
#include "lib/MsQueue.h"
#include "lib/TreiberStackEbr.h"
#include "spec/Consistency.h"
#include "spec/SpecMonitor.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>

using namespace compass;
using namespace compass::rmc;
using namespace compass::sim;

#ifndef COMPASS_CORPUS_DIR
#error "COMPASS_CORPUS_DIR must point at tests/corpus"
#endif

namespace {

/// Counter identity every summary must satisfy: each execution ends in
/// exactly one of these bins. SourcePruned and CacheHits are deliberately
/// absent — they count alternatives skipped *without* starting an
/// execution, so they must never leak into the execution total.
void expectReconciled(const Explorer::Summary &S, const char *Name) {
  EXPECT_EQ(S.Executions, S.Completed + S.Deadlocks + S.Races + S.Diverged +
                              S.Pruned + S.SleepPruned + S.RfPruned)
      << Name << ": " << S.str();
}

const char *modeName(ReductionMode R) { return sim::reductionModeName(R); }

//===----------------------------------------------------------------------===//
// Workloads (reduction-aware Check: pruned runs are not violations)
//===----------------------------------------------------------------------===//

Task<void> mpWriter(Env &E, Loc X, Loc F, MemOrder StoreO) {
  co_await E.store(X, 1, MemOrder::Relaxed);
  co_await E.store(F, 1, StoreO);
}

Task<void> mpReader(Env &E, Loc X, Loc F, MemOrder LoadO, Value *Flag,
                    Value *Data) {
  *Flag = co_await E.load(F, LoadO);
  *Data = co_await E.load(X, MemOrder::Relaxed);
}

/// Message-passing litmus; with relaxed orderings the "no stale data"
/// check has violating executions the reduction must not lose.
Workload mpWorkload(unsigned Workers, MemOrder StoreO, MemOrder LoadO,
                    ReductionMode Red) {
  Explorer::Options Opts;
  Opts.Workers = Workers;
  Opts.Reduction = Red;
  return Workload(Opts, [StoreO, LoadO]() -> Workload::Body {
    auto Flag = std::make_shared<Value>();
    auto Data = std::make_shared<Value>();
    Workload::Body B{
        [=](Machine &M, Scheduler &S) {
          *Flag = *Data = 0;
          Loc X = M.alloc("x"), F = M.alloc("f");
          Env &E0 = S.newThread();
          S.start(E0, mpWriter(E0, X, F, StoreO));
          Env &E1 = S.newThread();
          S.start(E1, mpReader(E1, X, F, LoadO, Flag.get(), Data.get()));
        },
        [Flag, Data](Machine &, Scheduler &, Scheduler::RunResult R) {
          if (R != Scheduler::RunResult::Done)
            return true; // sleep-pruned / pruned runs are not violations
          return !(*Flag == 1 && *Data == 0); // no stale data
        }};
    B.CowSafe = true; // sinks are rewritten by the fast-forward resume
    return B;
  });
}

/// The E2 MS-queue configuration with a selectable reduction.
Workload msQueueWorkload(unsigned Workers, ReductionMode Red) {
  Explorer::Options Opts;
  Opts.Workers = Workers;
  Opts.PreemptionBound = 2;
  Opts.MaxExecutions = 500'000;
  Opts.Reduction = Red;
  return Workload(Opts, []() -> Workload::Body {
    struct State {
      std::unique_ptr<spec::SpecMonitor> Mon;
      std::unique_ptr<lib::MsQueue> Q;
      std::vector<Value> Got0, Got1;
    };
    auto St = std::make_shared<State>();
    Workload::Body B{
        [St](Machine &M, Scheduler &S) {
          if (!St->Mon)
            St->Mon = std::make_unique<spec::SpecMonitor>();
          St->Mon->beginExecution(M);
          St->Q = std::make_unique<lib::MsQueue>(M, *St->Mon, "q");
          St->Got0.clear();
          St->Got1.clear();
          Env &E0 = S.newThread();
          S.start(E0, test::enqueuerThread(E0, *St->Q, {1, 2}));
          Env &E1 = S.newThread();
          S.start(E1, test::dequeuerThread(E1, *St->Q, 1, &St->Got0));
          Env &E2 = S.newThread();
          S.start(E2, test::dequeuerThread(E2, *St->Q, 1, &St->Got1));
        },
        [St](Machine &, Scheduler &, Scheduler::RunResult R) {
          if (R != Scheduler::RunResult::Done)
            return R == Scheduler::RunResult::Pruned ||
                   R == Scheduler::RunResult::SleepPruned ||
                   R == Scheduler::RunResult::RfPruned;
          return spec::checkQueueConsistent(St->Mon->graph(), St->Q->objId())
              .ok();
        }};
    // Copy-on-write client state (same pattern as the harness bodies):
    // monitor rewinds by epoch, result sinks restored whole.
    struct CowState {
      spec::SpecMonitor::Epoch MonEpoch;
      std::vector<Value> Got0, Got1;
    };
    B.CowSave = [St](std::shared_ptr<void> &Slot) {
      if (!Slot)
        Slot = std::make_shared<CowState>();
      auto &C = *std::static_pointer_cast<CowState>(Slot);
      C.MonEpoch = St->Mon->epoch();
      C.Got0 = St->Got0;
      C.Got1 = St->Got1;
    };
    B.CowRestore = [St](const std::shared_ptr<void> &Slot) {
      const auto &C = *std::static_pointer_cast<CowState>(Slot);
      St->Mon->trimToEpoch(C.MonEpoch);
      St->Got0 = C.Got0;
      St->Got1 = C.Got1;
    };
    B.CowSkipFinished = true;
    return B;
  });
}

Task<void> ebrPushThenPop(Env &E, lib::TreiberStackEbr &S) {
  auto P = S.push(E, 1);
  co_await P;
  auto Q = S.pop(E);
  Value V = co_await Q;
  (void)V;
}

Task<void> ebrPopOnce(Env &E, lib::TreiberStackEbr &S) {
  auto Q = S.tryPop(E);
  Value V = co_await Q;
  (void)V;
}

/// An EBR-reclaiming stack under contention: the pin/retire/advance ghost
/// steps (Reclaim/Free footprints) must stay sound under the sleep-set
/// reduction — a mis-declared independence would make the summary
/// worker-count dependent or lose a reclamation fault.
Workload ebrStackWorkload(unsigned Workers, ReductionMode Red) {
  Explorer::Options Opts;
  Opts.Workers = Workers;
  Opts.PreemptionBound = 2;
  Opts.MaxExecutions = 2'000'000;
  Opts.Reduction = Red;
  return Workload(Opts, []() -> Workload::Body {
    struct State {
      std::unique_ptr<spec::SpecMonitor> Mon;
      std::unique_ptr<lib::TreiberStackEbr> S;
    };
    auto St = std::make_shared<State>();
    return {
        [St](Machine &M, Scheduler &S) {
          St->Mon = std::make_unique<spec::SpecMonitor>();
          St->S =
              std::make_unique<lib::TreiberStackEbr>(M, *St->Mon, "s", 2);
          Env &E0 = S.newThread();
          S.start(E0, ebrPushThenPop(E0, *St->S));
          Env &E1 = S.newThread();
          S.start(E1, ebrPopOnce(E1, *St->S));
        },
        [](Machine &, Scheduler &, Scheduler::RunResult R) {
          // Any reclamation fault surfaces as RunResult::Race and is
          // counted by the summary; completed runs are fine as-is.
          return R != Scheduler::RunResult::Race;
        }};
  });
}

//===----------------------------------------------------------------------===//
// Corpus loading
//===----------------------------------------------------------------------===//

std::vector<std::filesystem::path> corpusFiles() {
  std::vector<std::filesystem::path> Files;
  for (const auto &Ent :
       std::filesystem::directory_iterator(COMPASS_CORPUS_DIR))
    if (Ent.is_regular_file() && Ent.path().extension() == ".corpus")
      Files.push_back(Ent.path());
  std::sort(Files.begin(), Files.end());
  return Files;
}

check::CorpusEntry parseFileOrFail(const std::filesystem::path &P) {
  std::ifstream In(P);
  std::ostringstream OS;
  OS << In.rdbuf();
  check::CorpusEntry E;
  std::string Err;
  EXPECT_TRUE(check::parseCorpusEntry(OS.str(), E, Err))
      << P.filename() << ": " << Err;
  return E;
}

} // namespace

//===----------------------------------------------------------------------===//
// Accounting
//===----------------------------------------------------------------------===//

TEST(ReductionAccounting, NoSleepPrunesUnderReductionNone) {
  for (auto Make : {+[](ReductionMode R) { return msQueueWorkload(1, R); },
                    +[](ReductionMode R) {
                      return mpWorkload(1, MemOrder::Relaxed,
                                        MemOrder::Relaxed, R);
                    }}) {
    auto Sum = explore(Make(ReductionMode::None));
    EXPECT_EQ(Sum.SleepPruned, 0u) << Sum.str();
    EXPECT_EQ(Sum.RfPruned, 0u) << Sum.str();
    EXPECT_EQ(Sum.SourcePruned, 0u) << Sum.str();
    EXPECT_EQ(Sum.CacheHits, 0u) << Sum.str();
    expectReconciled(Sum, "unreduced");
  }
}

TEST(ReductionAccounting, SleepSetLeavesSourceCountersZero) {
  // Sleep mode must not engage any of the source-set machinery.
  auto Sum = explore(msQueueWorkload(1, ReductionMode::SleepSet));
  EXPECT_EQ(Sum.RfPruned, 0u) << Sum.str();
  EXPECT_EQ(Sum.SourcePruned, 0u) << Sum.str();
  EXPECT_EQ(Sum.CacheHits, 0u) << Sum.str();
  expectReconciled(Sum, "sleep");
}

TEST(ReductionAccounting, SleepSetPrunesAndReconciles) {
  auto Un = explore(msQueueWorkload(1, ReductionMode::None));
  auto Red = explore(msQueueWorkload(1, ReductionMode::SleepSet));
  expectReconciled(Un, "unreduced");
  expectReconciled(Red, "reduced");
  EXPECT_GT(Red.SleepPruned, 0u) << Red.str();
  // Pruned stubs are cheap (they stop at the first sleeping step), so the
  // reduced run performs strictly fewer executions overall *and* strictly
  // fewer full (completed) ones.
  EXPECT_LT(Red.Executions, Un.Executions);
  EXPECT_LT(Red.Completed, Un.Completed);
  EXPECT_TRUE(Red.Exhausted);
  EXPECT_TRUE(Un.Exhausted);
  // Both runs agree there is nothing to report.
  EXPECT_EQ(Red.Violations, 0u) << Red.str();
  EXPECT_EQ(Un.Violations, 0u) << Un.str();
}

TEST(ReductionAccounting, SourceSetPrunesAndReconciles) {
  auto Sleep = explore(msQueueWorkload(1, ReductionMode::SleepSet));
  auto Src = explore(msQueueWorkload(1, ReductionMode::SourceSet));
  expectReconciled(Sleep, "sleep");
  expectReconciled(Src, "source");
  EXPECT_TRUE(Src.Exhausted);
  // The source-set machinery actually fired...
  EXPECT_GT(Src.SourcePruned + Src.RfPruned + Src.CacheHits, 0u)
      << Src.str();
  // ...and the mode does strictly less execution work than sleep sets on
  // this contended workload (the headline claim of DESIGN.md §12).
  EXPECT_LT(Src.Executions, Sleep.Executions)
      << "sleep: " << Sleep.str() << "\nsource: " << Src.str();
  // Verdict-equivalent: both clean, both exhaustive.
  EXPECT_EQ(Src.Violations, 0u) << Src.str();
  EXPECT_EQ(Sleep.Violations, 0u) << Sleep.str();
}

TEST(ReductionAccounting, ThreeModesReconcileOnEveryWorkload) {
  for (ReductionMode Red : {ReductionMode::None, ReductionMode::SleepSet,
                            ReductionMode::SourceSet}) {
    for (auto Make :
         {+[](ReductionMode R) { return msQueueWorkload(1, R); },
          +[](ReductionMode R) {
            return mpWorkload(1, MemOrder::Relaxed, MemOrder::Relaxed, R);
          },
          +[](ReductionMode R) { return ebrStackWorkload(1, R); }}) {
      auto Sum = explore(Make(Red));
      expectReconciled(Sum, modeName(Red));
      EXPECT_TRUE(Sum.Exhausted) << modeName(Red) << ": " << Sum.str();
    }
  }
}

TEST(ReductionAccounting, RandomModeIgnoresReductionRequest) {
  Explorer::Options Opts;
  Opts.ExploreMode = Explorer::Mode::Random;
  Opts.RandomRuns = 50;
  Opts.Reduction = ReductionMode::SleepSet;
  Workload W(Opts, [](Machine &M, Scheduler &S) {
    Loc X = M.alloc("x");
    Env &E0 = S.newThread();
    S.start(E0, mpWriter(E0, X, X, MemOrder::Relaxed));
  });
  auto Sum = explore(W);
  EXPECT_EQ(Sum.SleepPruned, 0u);
  EXPECT_EQ(Sum.Executions, 50u);
}

//===----------------------------------------------------------------------===//
// Soundness
//===----------------------------------------------------------------------===//

TEST(ReductionSoundness, WeakMpViolationsSurviveReduction) {
  auto Un = explore(mpWorkload(1, MemOrder::Relaxed, MemOrder::Relaxed,
                               ReductionMode::None));
  ASSERT_TRUE(Un.HasViolation);
  for (ReductionMode Mode :
       {ReductionMode::SleepSet, ReductionMode::SourceSet}) {
    auto Red = explore(
        mpWorkload(1, MemOrder::Relaxed, MemOrder::Relaxed, Mode));
    ASSERT_TRUE(Red.HasViolation)
        << modeName(Mode)
        << " pruned every stale-data execution: " << Red.str();
    EXPECT_GT(Red.Violations, 0u);

    // The surfaced reduced trace replays (unreduced, as replay always is)
    // to the same failing check.
    Workload W = mpWorkload(1, MemOrder::Relaxed, MemOrder::Relaxed,
                            ReductionMode::None);
    ReplayResult RR = replay(W, Red.firstViolationDecisions());
    EXPECT_EQ(RR.Run, Scheduler::RunResult::Done) << modeName(Mode);
    EXPECT_FALSE(RR.CheckOk)
        << modeName(Mode) << " counterexample must reproduce";
    EXPECT_FALSE(RR.Diverged) << modeName(Mode);
  }
}

TEST(ReductionSoundness, CleanMpStaysCleanUnderReduction) {
  for (ReductionMode Mode :
       {ReductionMode::SleepSet, ReductionMode::SourceSet}) {
    auto Red = explore(
        mpWorkload(1, MemOrder::Release, MemOrder::Acquire, Mode));
    EXPECT_EQ(Red.Violations, 0u) << modeName(Mode) << ": " << Red.str();
    EXPECT_TRUE(Red.Exhausted) << modeName(Mode);
  }
}

TEST(ReductionSoundness, CorpusMutantsReportIdenticalVerdicts) {
  // For every shrunk counterexample in tests/corpus/: hunting its scenario
  // reduced and unreduced must find a violation either way, and replaying
  // the respective first failing traces must produce the identical verdict
  // rule for the identical culprit library.
  auto Files = corpusFiles();
  ASSERT_FALSE(Files.empty());
  for (const auto &P : Files) {
    check::CorpusEntry E = parseFileOrFail(P);

    auto ruleFor = [&](ReductionMode Red, std::string &Out) {
      std::vector<unsigned> Trace;
      if (!check::scenarioFails(E.S, E.Mut, 200'000, Trace, Red))
        return false;
      // Replay (never reduced) for the structured verdict of the found
      // counterexample.
      check::TraceDiagnosis D = check::diagnoseTrace(
          E.S, E.Mut, check::scenarioOptions(E.S, 1, 1), Trace);
      EXPECT_TRUE(D.failing()) << P.filename();
      Out = D.V.Rule;
      return true;
    };

    std::string UnRule, SleepRule, SrcRule;
    ASSERT_TRUE(ruleFor(ReductionMode::None, UnRule))
        << P.filename() << ": unreduced hunt lost the violation";
    ASSERT_TRUE(ruleFor(ReductionMode::SleepSet, SleepRule))
        << P.filename() << ": sleep-set hunt lost the violation "
        << "(library " << check::libName(E.S.L) << ")";
    ASSERT_TRUE(ruleFor(ReductionMode::SourceSet, SrcRule))
        << P.filename() << ": source-set hunt lost the violation "
        << "(library " << check::libName(E.S.L) << ")";
    EXPECT_EQ(UnRule, SleepRule)
        << P.filename() << ": verdict rule diverged under sleep sets for "
        << check::libName(E.S.L);
    EXPECT_EQ(UnRule, SrcRule)
        << P.filename() << ": verdict rule diverged under source sets for "
        << check::libName(E.S.L);
  }
}

TEST(ReductionSoundness, CorpusTracesReplayUnderReductionDefaults) {
  // diagnoseTrace goes through sim::replay, which never prunes — corpus
  // decision traces stay valid replays no matter the configured mode
  // (including the source-set default).
  for (ReductionMode Mode :
       {ReductionMode::SleepSet, ReductionMode::SourceSet})
    for (const auto &P : corpusFiles()) {
      check::CorpusEntry E = parseFileOrFail(P);
      check::TraceDiagnosis D = check::diagnoseTrace(
          E.S, E.Mut, check::scenarioOptions(E.S, 1, 1, Mode), E.Decisions);
      EXPECT_TRUE(D.failing())
          << P.filename() << " (" << modeName(Mode)
          << "): corpus trace no longer fails; " << D.V.str();
    }
}

//===----------------------------------------------------------------------===//
// Determinism across worker counts (ParallelTest extension)
//===----------------------------------------------------------------------===//

namespace {

void expectReducedDeterministic(Workload (*Make)(unsigned, ReductionMode),
                                ReductionMode Red, const char *Name) {
  auto S1 = explore(Make(1, Red));
  auto S2 = explore(Make(2, Red));
  auto S4 = explore(Make(4, Red));
  expectReconciled(S1, Name);
  // coreEquals covers all reduction counters (SleepPruned, RfPruned,
  // SourcePruned, CacheHits); the explicit checks give readable failures.
  EXPECT_EQ(S1.SleepPruned, S2.SleepPruned) << Name;
  EXPECT_EQ(S1.SleepPruned, S4.SleepPruned) << Name;
  EXPECT_EQ(S1.SourcePruned, S2.SourcePruned) << Name;
  EXPECT_EQ(S1.SourcePruned, S4.SourcePruned) << Name;
  EXPECT_EQ(S1.CacheHits, S2.CacheHits) << Name;
  EXPECT_EQ(S1.CacheHits, S4.CacheHits) << Name;
  EXPECT_TRUE(S1.coreEquals(S2))
      << Name << "\nserial:   " << S1.str() << "\n2-worker: " << S2.str();
  EXPECT_TRUE(S1.coreEquals(S4))
      << Name << "\nserial:   " << S1.str() << "\n4-worker: " << S4.str();
}

} // namespace

TEST(ReductionDeterminism, ReducedMsQueueAcrossWorkers) {
  expectReducedDeterministic(
      +[](unsigned W, ReductionMode R) { return msQueueWorkload(W, R); },
      ReductionMode::SleepSet, "MS queue sleep");
  expectReducedDeterministic(
      +[](unsigned W, ReductionMode R) { return msQueueWorkload(W, R); },
      ReductionMode::SourceSet, "MS queue source");
}

TEST(ReductionDeterminism, ReducedMpLitmusAcrossWorkers) {
  auto Make = +[](unsigned W, ReductionMode R) {
    return mpWorkload(W, MemOrder::Relaxed, MemOrder::Relaxed, R);
  };
  expectReducedDeterministic(Make, ReductionMode::SleepSet, "MP rlx sleep");
  expectReducedDeterministic(Make, ReductionMode::SourceSet,
                             "MP rlx source");
}

TEST(ReductionDeterminism, SourceEbrStackAcrossWorkers) {
  // The reclamation workload's ghost steps (Reclaim/Free footprints) must
  // stay sound under source sets too: summary core bit-identical at 1/2/4
  // workers, no faults, no violations.
  auto S1 = explore(ebrStackWorkload(1, ReductionMode::SourceSet));
  auto S2 = explore(ebrStackWorkload(2, ReductionMode::SourceSet));
  auto S4 = explore(ebrStackWorkload(4, ReductionMode::SourceSet));
  expectReconciled(S1, "EBR stack source");
  EXPECT_EQ(S1.Races, 0u) << "pristine EBR stack faulted: " << S1.str();
  EXPECT_EQ(S1.Violations, 0u) << S1.str();
  EXPECT_TRUE(S1.coreEquals(S2))
      << "serial:   " << S1.str() << "\n2-worker: " << S2.str();
  EXPECT_TRUE(S1.coreEquals(S4))
      << "serial:   " << S1.str() << "\n4-worker: " << S4.str();
}

TEST(ReductionDeterminism, ReducedEbrStackAcrossWorkers) {
  // Summary core (including SleepPruned and Races) bit-identical at
  // 1/2/4 workers on the reclamation workload...
  auto S1 = explore(ebrStackWorkload(1, ReductionMode::SleepSet));
  auto S2 = explore(ebrStackWorkload(2, ReductionMode::SleepSet));
  auto S4 = explore(ebrStackWorkload(4, ReductionMode::SleepSet));
  expectReconciled(S1, "EBR stack reduced");
  EXPECT_EQ(S1.Races, 0u) << "pristine EBR stack faulted: " << S1.str();
  EXPECT_EQ(S1.Violations, 0u) << S1.str();
  EXPECT_GT(S1.SleepPruned, 0u) << "reduction never fired: " << S1.str();
  EXPECT_TRUE(S1.coreEquals(S2))
      << "serial:   " << S1.str() << "\n2-worker: " << S2.str();
  EXPECT_TRUE(S1.coreEquals(S4))
      << "serial:   " << S1.str() << "\n4-worker: " << S4.str();

  // ... and the reduced sweep fingerprint over *generated* treiber_ebr
  // scenarios is worker-count independent too.
  auto Run = [](unsigned Workers) {
    check::SweepOptions O;
    O.Seed = 7;
    O.ScenariosPerLib = 4;
    O.Workers = Workers;
    O.MaxExecutionsPerScenario = 40000;
    O.Reduction = ReductionMode::SleepSet;
    O.Libs = {check::Lib::TreiberEbr};
    return check::runSweep(O);
  };
  check::SweepReport R1 = Run(1);
  check::SweepReport R2 = Run(2);
  check::SweepReport R4 = Run(4);
  EXPECT_TRUE(R1.clean()) << R1.str();
  EXPECT_EQ(R1.fingerprint(), R2.fingerprint())
      << "serial:\n" << R1.str() << "2 workers:\n" << R2.str();
  EXPECT_EQ(R1.fingerprint(), R4.fingerprint())
      << "serial:\n" << R1.str() << "4 workers:\n" << R4.str();
}

TEST(ReductionDeterminism, ReducedSweepFingerprintAcrossWorkers) {
  auto Run = [](unsigned Workers, ReductionMode Red) {
    check::SweepOptions O;
    O.Seed = 5;
    O.ScenariosPerLib = 2;
    O.Workers = Workers;
    O.MaxExecutionsPerScenario = 60000;
    O.Reduction = Red;
    O.Libs = {check::Lib::MsQueue, check::Lib::TreiberStack,
              check::Lib::SpscRing, check::Lib::WsDeque};
    return check::runSweep(O);
  };
  for (ReductionMode Red :
       {ReductionMode::SleepSet, ReductionMode::SourceSet}) {
    check::SweepReport R1 = Run(1, Red);
    check::SweepReport R2 = Run(2, Red);
    check::SweepReport R4 = Run(4, Red);
    EXPECT_TRUE(R1.clean()) << modeName(Red) << ":\n" << R1.str();
    EXPECT_EQ(R1.fingerprint(), R2.fingerprint())
        << modeName(Red) << " serial:\n"
        << R1.str() << "2 workers:\n"
        << R2.str();
    EXPECT_EQ(R1.fingerprint(), R4.fingerprint())
        << modeName(Red) << " serial:\n"
        << R1.str() << "4 workers:\n"
        << R4.str();
  }

  // Each reduced sweep does strictly less work than the unreduced one on
  // the same scenarios, and the modes' fingerprints intentionally differ
  // (they fold different execution counts).
  check::SweepReport Un = Run(1, ReductionMode::None);
  check::SweepReport Sl = Run(1, ReductionMode::SleepSet);
  check::SweepReport Sr = Run(1, ReductionMode::SourceSet);
  EXPECT_TRUE(Un.clean()) << Un.str();
  EXPECT_LT(Sl.totalExecutions(), Un.totalExecutions());
  EXPECT_LT(Sr.totalExecutions(), Sl.totalExecutions())
      << "source sets did not beat sleep sets:\nsleep:\n"
      << Sl.str() << "source:\n"
      << Sr.str();
  EXPECT_NE(Sl.fingerprint(), Un.fingerprint());
  EXPECT_NE(Sr.fingerprint(), Sl.fingerprint());
}

//===----------------------------------------------------------------------===//
// Engine-path A/B under reduction (DESIGN.md Section 11)
//===----------------------------------------------------------------------===//

namespace {

Explorer::Summary exploreWithEngine(Workload W, EnginePath E) {
  W.options().Engine = E;
  return explore(W);
}

} // namespace

TEST(ReductionEngineAB, MsQueueCowEqualsRootReplayAcrossWorkersAndModes) {
  // The copy-on-write engine must be invisible to the reduction: summary
  // cores (including every reduction counter) bit-identical to root
  // replay under all three reduction modes at 1/2/4 workers.
  for (ReductionMode Red : {ReductionMode::None, ReductionMode::SleepSet,
                            ReductionMode::SourceSet})
    for (unsigned Wk : {1u, 2u, 4u}) {
      Explorer::Summary Root = exploreWithEngine(msQueueWorkload(Wk, Red),
                                                 EnginePath::RootReplay);
      Explorer::Summary Cow =
          exploreWithEngine(msQueueWorkload(Wk, Red), EnginePath::Auto);
      EXPECT_GT(Cow.Perf.CowResumes, 0u)
          << "red=" << modeName(Red) << " workers=" << Wk
          << ": cow path never engaged";
      EXPECT_TRUE(Root.coreEquals(Cow))
          << "red=" << modeName(Red) << " workers=" << Wk
          << "\nroot: " << Root.str() << "\ncow:  " << Cow.str();
      expectReconciled(Cow, "MS queue cow A/B");
    }
}

TEST(ReductionEngineAB, ReducedMpViolationsIdenticalAcrossEngines) {
  // Violation-bearing workload: the reduced cow run surfaces the identical
  // violation set and first violating trace as reduced root replay, under
  // both reduction modes.
  for (ReductionMode Red :
       {ReductionMode::SleepSet, ReductionMode::SourceSet})
    for (unsigned Wk : {1u, 2u, 4u}) {
      Explorer::Summary Root = exploreWithEngine(
          mpWorkload(Wk, MemOrder::Relaxed, MemOrder::Relaxed, Red),
          EnginePath::RootReplay);
      Explorer::Summary Cow = exploreWithEngine(
          mpWorkload(Wk, MemOrder::Relaxed, MemOrder::Relaxed, Red),
          EnginePath::Auto);
      ASSERT_TRUE(Root.HasViolation) << modeName(Red);
      EXPECT_TRUE(Root.coreEquals(Cow))
          << modeName(Red) << " workers=" << Wk << "\nroot: " << Root.str()
          << "\ncow:  " << Cow.str();
      EXPECT_EQ(Root.firstViolationDecisions(),
                Cow.firstViolationDecisions())
          << modeName(Red) << " workers=" << Wk;
    }
}
