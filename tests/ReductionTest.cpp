//===-- tests/ReductionTest.cpp - Sleep-set reduction equivalence ---------===//
//
// The sleep-set partial-order reduction (sim/Reduction.h, DESIGN.md §8)
// must be a pure state-space optimization: it may skip executions, never
// verdicts. The suite checks, at three layers:
//
//  * accounting — SleepPruned is zero under Reduction::None, positive on
//    contended workloads under SleepSet, and the execution counters always
//    reconcile (Executions == Completed + Deadlocks + Races + Diverged +
//    Pruned + SleepPruned);
//  * soundness — reduced exploration still reaches the weak-behavior
//    violations of the MP litmus, and for every shrunk counterexample in
//    tests/corpus/ the reduced and unreduced hunts report the identical
//    violation verdict (rule + culprit library), while corpus decision
//    traces keep replaying to a failing verdict (replay never prunes);
//  * determinism — reduced summaries (coreEquals) and the reduced sweep
//    fingerprint are bit-identical across 1/2/4 workers, extending the
//    ParallelTest determinism suite to Reduction::SleepSet.
//
//===----------------------------------------------------------------------===//

#include "SimTestUtil.h"
#include "check/Conformance.h"
#include "check/Shrinker.h"
#include "lib/MsQueue.h"
#include "lib/TreiberStackEbr.h"
#include "spec/Consistency.h"
#include "spec/SpecMonitor.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>

using namespace compass;
using namespace compass::rmc;
using namespace compass::sim;

#ifndef COMPASS_CORPUS_DIR
#error "COMPASS_CORPUS_DIR must point at tests/corpus"
#endif

namespace {

/// Counter identity every summary must satisfy: each execution ends in
/// exactly one of these bins.
void expectReconciled(const Explorer::Summary &S, const char *Name) {
  EXPECT_EQ(S.Executions, S.Completed + S.Deadlocks + S.Races + S.Diverged +
                              S.Pruned + S.SleepPruned)
      << Name << ": " << S.str();
}

//===----------------------------------------------------------------------===//
// Workloads (reduction-aware Check: pruned runs are not violations)
//===----------------------------------------------------------------------===//

Task<void> mpWriter(Env &E, Loc X, Loc F, MemOrder StoreO) {
  co_await E.store(X, 1, MemOrder::Relaxed);
  co_await E.store(F, 1, StoreO);
}

Task<void> mpReader(Env &E, Loc X, Loc F, MemOrder LoadO, Value *Flag,
                    Value *Data) {
  *Flag = co_await E.load(F, LoadO);
  *Data = co_await E.load(X, MemOrder::Relaxed);
}

/// Message-passing litmus; with relaxed orderings the "no stale data"
/// check has violating executions the reduction must not lose.
Workload mpWorkload(unsigned Workers, MemOrder StoreO, MemOrder LoadO,
                    ReductionMode Red) {
  Explorer::Options Opts;
  Opts.Workers = Workers;
  Opts.Reduction = Red;
  return Workload(Opts, [StoreO, LoadO]() -> Workload::Body {
    auto Flag = std::make_shared<Value>();
    auto Data = std::make_shared<Value>();
    Workload::Body B{
        [=](Machine &M, Scheduler &S) {
          *Flag = *Data = 0;
          Loc X = M.alloc("x"), F = M.alloc("f");
          Env &E0 = S.newThread();
          S.start(E0, mpWriter(E0, X, F, StoreO));
          Env &E1 = S.newThread();
          S.start(E1, mpReader(E1, X, F, LoadO, Flag.get(), Data.get()));
        },
        [Flag, Data](Machine &, Scheduler &, Scheduler::RunResult R) {
          if (R != Scheduler::RunResult::Done)
            return true; // sleep-pruned / pruned runs are not violations
          return !(*Flag == 1 && *Data == 0); // no stale data
        }};
    B.CowSafe = true; // sinks are rewritten by the fast-forward resume
    return B;
  });
}

/// The E2 MS-queue configuration with a selectable reduction.
Workload msQueueWorkload(unsigned Workers, ReductionMode Red) {
  Explorer::Options Opts;
  Opts.Workers = Workers;
  Opts.PreemptionBound = 2;
  Opts.MaxExecutions = 500'000;
  Opts.Reduction = Red;
  return Workload(Opts, []() -> Workload::Body {
    struct State {
      std::unique_ptr<spec::SpecMonitor> Mon;
      std::unique_ptr<lib::MsQueue> Q;
      std::vector<Value> Got0, Got1;
    };
    auto St = std::make_shared<State>();
    Workload::Body B{
        [St](Machine &M, Scheduler &S) {
          if (!St->Mon)
            St->Mon = std::make_unique<spec::SpecMonitor>();
          St->Mon->beginExecution(M);
          St->Q = std::make_unique<lib::MsQueue>(M, *St->Mon, "q");
          St->Got0.clear();
          St->Got1.clear();
          Env &E0 = S.newThread();
          S.start(E0, test::enqueuerThread(E0, *St->Q, {1, 2}));
          Env &E1 = S.newThread();
          S.start(E1, test::dequeuerThread(E1, *St->Q, 1, &St->Got0));
          Env &E2 = S.newThread();
          S.start(E2, test::dequeuerThread(E2, *St->Q, 1, &St->Got1));
        },
        [St](Machine &, Scheduler &, Scheduler::RunResult R) {
          if (R != Scheduler::RunResult::Done)
            return R == Scheduler::RunResult::Pruned ||
                   R == Scheduler::RunResult::SleepPruned;
          return spec::checkQueueConsistent(St->Mon->graph(), St->Q->objId())
              .ok();
        }};
    // Copy-on-write client state (same pattern as the harness bodies):
    // monitor rewinds by epoch, result sinks restored whole.
    struct CowState {
      spec::SpecMonitor::Epoch MonEpoch;
      std::vector<Value> Got0, Got1;
    };
    B.CowSave = [St](std::shared_ptr<void> &Slot) {
      if (!Slot)
        Slot = std::make_shared<CowState>();
      auto &C = *std::static_pointer_cast<CowState>(Slot);
      C.MonEpoch = St->Mon->epoch();
      C.Got0 = St->Got0;
      C.Got1 = St->Got1;
    };
    B.CowRestore = [St](const std::shared_ptr<void> &Slot) {
      const auto &C = *std::static_pointer_cast<CowState>(Slot);
      St->Mon->trimToEpoch(C.MonEpoch);
      St->Got0 = C.Got0;
      St->Got1 = C.Got1;
    };
    B.CowSkipFinished = true;
    return B;
  });
}

Task<void> ebrPushThenPop(Env &E, lib::TreiberStackEbr &S) {
  auto P = S.push(E, 1);
  co_await P;
  auto Q = S.pop(E);
  Value V = co_await Q;
  (void)V;
}

Task<void> ebrPopOnce(Env &E, lib::TreiberStackEbr &S) {
  auto Q = S.tryPop(E);
  Value V = co_await Q;
  (void)V;
}

/// An EBR-reclaiming stack under contention: the pin/retire/advance ghost
/// steps (Reclaim/Free footprints) must stay sound under the sleep-set
/// reduction — a mis-declared independence would make the summary
/// worker-count dependent or lose a reclamation fault.
Workload ebrStackWorkload(unsigned Workers, ReductionMode Red) {
  Explorer::Options Opts;
  Opts.Workers = Workers;
  Opts.PreemptionBound = 2;
  Opts.MaxExecutions = 2'000'000;
  Opts.Reduction = Red;
  return Workload(Opts, []() -> Workload::Body {
    struct State {
      std::unique_ptr<spec::SpecMonitor> Mon;
      std::unique_ptr<lib::TreiberStackEbr> S;
    };
    auto St = std::make_shared<State>();
    return {
        [St](Machine &M, Scheduler &S) {
          St->Mon = std::make_unique<spec::SpecMonitor>();
          St->S =
              std::make_unique<lib::TreiberStackEbr>(M, *St->Mon, "s", 2);
          Env &E0 = S.newThread();
          S.start(E0, ebrPushThenPop(E0, *St->S));
          Env &E1 = S.newThread();
          S.start(E1, ebrPopOnce(E1, *St->S));
        },
        [](Machine &, Scheduler &, Scheduler::RunResult R) {
          // Any reclamation fault surfaces as RunResult::Race and is
          // counted by the summary; completed runs are fine as-is.
          return R != Scheduler::RunResult::Race;
        }};
  });
}

//===----------------------------------------------------------------------===//
// Corpus loading
//===----------------------------------------------------------------------===//

std::vector<std::filesystem::path> corpusFiles() {
  std::vector<std::filesystem::path> Files;
  for (const auto &Ent :
       std::filesystem::directory_iterator(COMPASS_CORPUS_DIR))
    if (Ent.is_regular_file() && Ent.path().extension() == ".corpus")
      Files.push_back(Ent.path());
  std::sort(Files.begin(), Files.end());
  return Files;
}

check::CorpusEntry parseFileOrFail(const std::filesystem::path &P) {
  std::ifstream In(P);
  std::ostringstream OS;
  OS << In.rdbuf();
  check::CorpusEntry E;
  std::string Err;
  EXPECT_TRUE(check::parseCorpusEntry(OS.str(), E, Err))
      << P.filename() << ": " << Err;
  return E;
}

} // namespace

//===----------------------------------------------------------------------===//
// Accounting
//===----------------------------------------------------------------------===//

TEST(ReductionAccounting, NoSleepPrunesUnderReductionNone) {
  for (auto Make : {+[](ReductionMode R) { return msQueueWorkload(1, R); },
                    +[](ReductionMode R) {
                      return mpWorkload(1, MemOrder::Relaxed,
                                        MemOrder::Relaxed, R);
                    }}) {
    auto Sum = explore(Make(ReductionMode::None));
    EXPECT_EQ(Sum.SleepPruned, 0u) << Sum.str();
    expectReconciled(Sum, "unreduced");
  }
}

TEST(ReductionAccounting, SleepSetPrunesAndReconciles) {
  auto Un = explore(msQueueWorkload(1, ReductionMode::None));
  auto Red = explore(msQueueWorkload(1, ReductionMode::SleepSet));
  expectReconciled(Un, "unreduced");
  expectReconciled(Red, "reduced");
  EXPECT_GT(Red.SleepPruned, 0u) << Red.str();
  // Pruned stubs are cheap (they stop at the first sleeping step), so the
  // reduced run performs strictly fewer executions overall *and* strictly
  // fewer full (completed) ones.
  EXPECT_LT(Red.Executions, Un.Executions);
  EXPECT_LT(Red.Completed, Un.Completed);
  EXPECT_TRUE(Red.Exhausted);
  EXPECT_TRUE(Un.Exhausted);
  // Both runs agree there is nothing to report.
  EXPECT_EQ(Red.Violations, 0u) << Red.str();
  EXPECT_EQ(Un.Violations, 0u) << Un.str();
}

TEST(ReductionAccounting, RandomModeIgnoresReductionRequest) {
  Explorer::Options Opts;
  Opts.ExploreMode = Explorer::Mode::Random;
  Opts.RandomRuns = 50;
  Opts.Reduction = ReductionMode::SleepSet;
  Workload W(Opts, [](Machine &M, Scheduler &S) {
    Loc X = M.alloc("x");
    Env &E0 = S.newThread();
    S.start(E0, mpWriter(E0, X, X, MemOrder::Relaxed));
  });
  auto Sum = explore(W);
  EXPECT_EQ(Sum.SleepPruned, 0u);
  EXPECT_EQ(Sum.Executions, 50u);
}

//===----------------------------------------------------------------------===//
// Soundness
//===----------------------------------------------------------------------===//

TEST(ReductionSoundness, WeakMpViolationsSurviveReduction) {
  auto Un = explore(mpWorkload(1, MemOrder::Relaxed, MemOrder::Relaxed,
                               ReductionMode::None));
  auto Red = explore(mpWorkload(1, MemOrder::Relaxed, MemOrder::Relaxed,
                                ReductionMode::SleepSet));
  ASSERT_TRUE(Un.HasViolation);
  ASSERT_TRUE(Red.HasViolation)
      << "reduction pruned every stale-data execution: " << Red.str();
  EXPECT_GT(Red.Violations, 0u);

  // The surfaced reduced trace replays (unreduced, as replay always is) to
  // the same failing check.
  Workload W = mpWorkload(1, MemOrder::Relaxed, MemOrder::Relaxed,
                          ReductionMode::None);
  ReplayResult RR = replay(W, Red.firstViolationDecisions());
  EXPECT_EQ(RR.Run, Scheduler::RunResult::Done);
  EXPECT_FALSE(RR.CheckOk) << "reduced counterexample must reproduce";
  EXPECT_FALSE(RR.Diverged);
}

TEST(ReductionSoundness, CleanMpStaysCleanUnderReduction) {
  auto Red = explore(mpWorkload(1, MemOrder::Release, MemOrder::Acquire,
                                ReductionMode::SleepSet));
  EXPECT_EQ(Red.Violations, 0u) << Red.str();
  EXPECT_TRUE(Red.Exhausted);
}

TEST(ReductionSoundness, CorpusMutantsReportIdenticalVerdicts) {
  // For every shrunk counterexample in tests/corpus/: hunting its scenario
  // reduced and unreduced must find a violation either way, and replaying
  // the respective first failing traces must produce the identical verdict
  // rule for the identical culprit library.
  auto Files = corpusFiles();
  ASSERT_FALSE(Files.empty());
  for (const auto &P : Files) {
    check::CorpusEntry E = parseFileOrFail(P);

    auto ruleFor = [&](ReductionMode Red, std::string &Out) {
      std::vector<unsigned> Trace;
      if (!check::scenarioFails(E.S, E.Mut, 200'000, Trace, Red))
        return false;
      // Replay (never reduced) for the structured verdict of the found
      // counterexample.
      check::TraceDiagnosis D = check::diagnoseTrace(
          E.S, E.Mut, check::scenarioOptions(E.S, 1, 1), Trace);
      EXPECT_TRUE(D.failing()) << P.filename();
      Out = D.V.Rule;
      return true;
    };

    std::string UnRule, RedRule;
    ASSERT_TRUE(ruleFor(ReductionMode::None, UnRule))
        << P.filename() << ": unreduced hunt lost the violation";
    ASSERT_TRUE(ruleFor(ReductionMode::SleepSet, RedRule))
        << P.filename() << ": reduced hunt lost the violation "
        << "(library " << check::libName(E.S.L) << ")";
    EXPECT_EQ(UnRule, RedRule)
        << P.filename() << ": verdict rule diverged under reduction for "
        << check::libName(E.S.L);
  }
}

TEST(ReductionSoundness, CorpusTracesReplayUnderReductionDefaults) {
  // diagnoseTrace goes through sim::replay, which never prunes — corpus
  // decision traces stay valid replays no matter the configured mode.
  for (const auto &P : corpusFiles()) {
    check::CorpusEntry E = parseFileOrFail(P);
    check::TraceDiagnosis D = check::diagnoseTrace(
        E.S, E.Mut,
        check::scenarioOptions(E.S, 1, 1, ReductionMode::SleepSet),
        E.Decisions);
    EXPECT_TRUE(D.failing())
        << P.filename() << ": corpus trace no longer fails; " << D.V.str();
  }
}

//===----------------------------------------------------------------------===//
// Determinism across worker counts (ParallelTest extension)
//===----------------------------------------------------------------------===//

namespace {

void expectReducedDeterministic(Workload (*Make)(unsigned),
                                const char *Name) {
  auto S1 = explore(Make(1));
  auto S2 = explore(Make(2));
  auto S4 = explore(Make(4));
  expectReconciled(S1, Name);
  EXPECT_EQ(S1.SleepPruned, S2.SleepPruned) << Name;
  EXPECT_EQ(S1.SleepPruned, S4.SleepPruned) << Name;
  EXPECT_TRUE(S1.coreEquals(S2))
      << Name << "\nserial:   " << S1.str() << "\n2-worker: " << S2.str();
  EXPECT_TRUE(S1.coreEquals(S4))
      << Name << "\nserial:   " << S1.str() << "\n4-worker: " << S4.str();
}

} // namespace

TEST(ReductionDeterminism, ReducedMsQueueAcrossWorkers) {
  expectReducedDeterministic(
      +[](unsigned W) { return msQueueWorkload(W, ReductionMode::SleepSet); },
      "MS queue reduced");
}

TEST(ReductionDeterminism, ReducedMpLitmusAcrossWorkers) {
  expectReducedDeterministic(
      +[](unsigned W) {
        return mpWorkload(W, MemOrder::Relaxed, MemOrder::Relaxed,
                          ReductionMode::SleepSet);
      },
      "MP rlx reduced");
}

TEST(ReductionDeterminism, ReducedEbrStackAcrossWorkers) {
  // Summary core (including SleepPruned and Races) bit-identical at
  // 1/2/4 workers on the reclamation workload...
  auto S1 = explore(ebrStackWorkload(1, ReductionMode::SleepSet));
  auto S2 = explore(ebrStackWorkload(2, ReductionMode::SleepSet));
  auto S4 = explore(ebrStackWorkload(4, ReductionMode::SleepSet));
  expectReconciled(S1, "EBR stack reduced");
  EXPECT_EQ(S1.Races, 0u) << "pristine EBR stack faulted: " << S1.str();
  EXPECT_EQ(S1.Violations, 0u) << S1.str();
  EXPECT_GT(S1.SleepPruned, 0u) << "reduction never fired: " << S1.str();
  EXPECT_TRUE(S1.coreEquals(S2))
      << "serial:   " << S1.str() << "\n2-worker: " << S2.str();
  EXPECT_TRUE(S1.coreEquals(S4))
      << "serial:   " << S1.str() << "\n4-worker: " << S4.str();

  // ... and the reduced sweep fingerprint over *generated* treiber_ebr
  // scenarios is worker-count independent too.
  auto Run = [](unsigned Workers) {
    check::SweepOptions O;
    O.Seed = 7;
    O.ScenariosPerLib = 4;
    O.Workers = Workers;
    O.MaxExecutionsPerScenario = 40000;
    O.Reduction = ReductionMode::SleepSet;
    O.Libs = {check::Lib::TreiberEbr};
    return check::runSweep(O);
  };
  check::SweepReport R1 = Run(1);
  check::SweepReport R2 = Run(2);
  check::SweepReport R4 = Run(4);
  EXPECT_TRUE(R1.clean()) << R1.str();
  EXPECT_EQ(R1.fingerprint(), R2.fingerprint())
      << "serial:\n" << R1.str() << "2 workers:\n" << R2.str();
  EXPECT_EQ(R1.fingerprint(), R4.fingerprint())
      << "serial:\n" << R1.str() << "4 workers:\n" << R4.str();
}

TEST(ReductionDeterminism, ReducedSweepFingerprintAcrossWorkers) {
  auto Run = [](unsigned Workers, ReductionMode Red) {
    check::SweepOptions O;
    O.Seed = 5;
    O.ScenariosPerLib = 2;
    O.Workers = Workers;
    O.MaxExecutionsPerScenario = 60000;
    O.Reduction = Red;
    O.Libs = {check::Lib::MsQueue, check::Lib::TreiberStack,
              check::Lib::SpscRing, check::Lib::WsDeque};
    return check::runSweep(O);
  };
  check::SweepReport R1 = Run(1, ReductionMode::SleepSet);
  check::SweepReport R2 = Run(2, ReductionMode::SleepSet);
  check::SweepReport R4 = Run(4, ReductionMode::SleepSet);
  EXPECT_TRUE(R1.clean()) << R1.str();
  EXPECT_EQ(R1.fingerprint(), R2.fingerprint())
      << "serial:\n" << R1.str() << "2 workers:\n" << R2.str();
  EXPECT_EQ(R1.fingerprint(), R4.fingerprint())
      << "serial:\n" << R1.str() << "4 workers:\n" << R4.str();

  // The reduced sweep does strictly less work than the unreduced one on
  // the same scenarios, and the two modes' fingerprints intentionally
  // differ (they fold different execution counts).
  check::SweepReport Un = Run(1, ReductionMode::None);
  EXPECT_TRUE(Un.clean()) << Un.str();
  EXPECT_LT(R1.totalExecutions(), Un.totalExecutions());
  EXPECT_NE(R1.fingerprint(), Un.fingerprint());
}

//===----------------------------------------------------------------------===//
// Engine-path A/B under reduction (DESIGN.md Section 11)
//===----------------------------------------------------------------------===//

namespace {

Explorer::Summary exploreWithEngine(Workload W, EnginePath E) {
  W.options().Engine = E;
  return explore(W);
}

} // namespace

TEST(ReductionEngineAB, MsQueueCowEqualsRootReplayAcrossWorkersAndModes) {
  // The copy-on-write engine must be invisible to the reduction: summary
  // cores (including SleepPruned) bit-identical to root replay under both
  // reduction modes at 1/2/4 workers.
  for (ReductionMode Red : {ReductionMode::None, ReductionMode::SleepSet})
    for (unsigned Wk : {1u, 2u, 4u}) {
      Explorer::Summary Root = exploreWithEngine(msQueueWorkload(Wk, Red),
                                                 EnginePath::RootReplay);
      Explorer::Summary Cow =
          exploreWithEngine(msQueueWorkload(Wk, Red), EnginePath::Auto);
      EXPECT_GT(Cow.Perf.CowResumes, 0u)
          << "red=" << (Red == ReductionMode::SleepSet ? "sleep" : "none")
          << " workers=" << Wk << ": cow path never engaged";
      EXPECT_TRUE(Root.coreEquals(Cow))
          << "red=" << (Red == ReductionMode::SleepSet ? "sleep" : "none")
          << " workers=" << Wk << "\nroot: " << Root.str()
          << "\ncow:  " << Cow.str();
      expectReconciled(Cow, "MS queue cow A/B");
    }
}

TEST(ReductionEngineAB, ReducedMpViolationsIdenticalAcrossEngines) {
  // Violation-bearing workload: the reduced cow run surfaces the identical
  // violation set and first violating trace as reduced root replay.
  for (unsigned Wk : {1u, 2u, 4u}) {
    Explorer::Summary Root = exploreWithEngine(
        mpWorkload(Wk, MemOrder::Relaxed, MemOrder::Relaxed,
                   ReductionMode::SleepSet),
        EnginePath::RootReplay);
    Explorer::Summary Cow = exploreWithEngine(
        mpWorkload(Wk, MemOrder::Relaxed, MemOrder::Relaxed,
                   ReductionMode::SleepSet),
        EnginePath::Auto);
    ASSERT_TRUE(Root.HasViolation);
    EXPECT_TRUE(Root.coreEquals(Cow))
        << "workers=" << Wk << "\nroot: " << Root.str()
        << "\ncow:  " << Cow.str();
    EXPECT_EQ(Root.firstViolationDecisions(), Cow.firstViolationDecisions())
        << "workers=" << Wk;
  }
}
