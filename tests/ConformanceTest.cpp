//===-- tests/ConformanceTest.cpp - Conformance harness end-to-end --------===//
//
// The Lincheck-style harness's own test suite (DESIGN.md §7):
//  * generator determinism and scenario well-formedness;
//  * corpus-entry serialization round-trips;
//  * a pristine sweep across every library finds no violations;
//  * every seeded mutant is killed, each through the intended oracle stage
//    (race detector, consistency axioms, INJ prescan, observed results);
//  * the shrinker strictly reduces and its output still fails on replay;
//  * diagnoseTrace canonicalizes traces into divergence-free replays.
//
//===----------------------------------------------------------------------===//

#include "check/Conformance.h"
#include "rmc/Machine.h"
#include "sim/Explorer.h"
#include "spec/Linearization.h"
#include "spec/SpecMonitor.h"

#include <gtest/gtest.h>

#include <set>

using namespace compass;
using namespace compass::check;

namespace {

/// Small-but-real hunt budget: every mutant dies within a few scenarios.
MutationOptions quickHunt() {
  MutationOptions O;
  O.MaxScenarios = 60;
  O.MaxExecutionsPerScenario = 150000;
  return O;
}

} // namespace

//===----------------------------------------------------------------------===//
// Scenario generation and serialization
//===----------------------------------------------------------------------===//

TEST(ScenarioGen, DeterministicForFixedSeed) {
  for (unsigned L = 0; L != NumLibs; ++L) {
    Lib Li = allLibs()[L];
    Scenario A = generateScenario(Li, scenarioSeed(7, Li, 3));
    Scenario B = generateScenario(Li, scenarioSeed(7, Li, 3));
    EXPECT_EQ(A.str(), B.str()) << libName(Li);
    Scenario C = generateScenario(Li, scenarioSeed(7, Li, 4));
    // Different index gives an independent stream (usually a new shape).
    EXPECT_EQ(C.L, Li);
  }
}

TEST(ScenarioGen, ScenariosAreWellFormed) {
  for (unsigned L = 0; L != NumLibs; ++L) {
    Lib Li = allLibs()[L];
    for (unsigned I = 0; I != 50; ++I) {
      Scenario S = generateScenario(Li, scenarioSeed(11, Li, I));
      ASSERT_GE(S.Threads.size(), 1u) << S.str();
      ASSERT_GE(S.numOps(), 1u) << S.str();
      ASSERT_GE(S.PreemptionBound, 1u);
      unsigned Producers = 0;
      for (const auto &T : S.Threads)
        for (const Op &O : T) {
          if (O.Code == OpCode::Enq || O.Code == OpCode::Push ||
              O.Code == OpCode::Exchange) {
            EXPECT_NE(O.Arg, 0u) << S.str();
            ++Producers;
          }
          switch (Li) {
          case Lib::MsQueue:
          case Lib::HwQueue:
            EXPECT_TRUE(O.Code == OpCode::Enq || O.Code == OpCode::Deq);
            break;
          case Lib::TreiberStack:
          case Lib::ElimStack:
          case Lib::TreiberEbr:
            EXPECT_TRUE(O.Code == OpCode::Push || O.Code == OpCode::Pop);
            break;
          case Lib::Exchanger:
            EXPECT_EQ(O.Code, OpCode::Exchange);
            break;
          case Lib::SpscRing:
            EXPECT_TRUE(O.Code == OpCode::Enq || O.Code == OpCode::Deq);
            break;
          case Lib::WsDeque:
            EXPECT_TRUE(O.Code == OpCode::Push || O.Code == OpCode::Take ||
                        O.Code == OpCode::Steal);
            break;
          }
        }
      if (Li != Lib::Exchanger) {
        EXPECT_GE(Producers, 1u) << S.str();
      }
      if (Li == Lib::SpscRing) {
        ASSERT_EQ(S.Threads.size(), 2u);
        ASSERT_GE(S.Capacity, 1u);
        for (const Op &O : S.Threads[0])
          EXPECT_EQ(O.Code, OpCode::Enq);
        for (const Op &O : S.Threads[1])
          EXPECT_EQ(O.Code, OpCode::Deq);
      }
      if (Li == Lib::WsDeque) {
        unsigned Pushes = 0;
        for (const Op &O : S.Threads[0]) {
          EXPECT_NE(O.Code, OpCode::Steal) << "owner thread steals";
          Pushes += O.Code == OpCode::Push;
        }
        EXPECT_GE(S.Capacity, Pushes) << S.str();
        for (size_t T = 1; T != S.Threads.size(); ++T)
          for (const Op &O : S.Threads[T])
            EXPECT_EQ(O.Code, OpCode::Steal) << "thief does owner ops";
      }
    }
  }
}

TEST(ScenarioGen, ProducerValuesAreDistinct) {
  Scenario S = generateScenario(Lib::MsQueue, scenarioSeed(3, Lib::MsQueue, 0),
                                GenOptions::hunting());
  std::set<rmc::Value> Seen;
  for (const auto &T : S.Threads)
    for (const Op &O : T)
      if (O.Code == OpCode::Enq) {
        EXPECT_TRUE(Seen.insert(O.Arg).second) << "duplicate " << O.Arg;
      }
}

TEST(ScenarioText, NamesRoundTrip) {
  for (unsigned I = 0; I != NumLibs; ++I) {
    Lib L = allLibs()[I], Out;
    ASSERT_TRUE(parseLib(libName(L), Out));
    EXPECT_EQ(Out, L);
  }
  for (unsigned I = 0; I != NumMutations; ++I) {
    Mutation M = static_cast<Mutation>(I), Out;
    ASSERT_TRUE(parseMutation(mutationName(M), Out));
    EXPECT_EQ(Out, M);
  }
  Lib L;
  EXPECT_FALSE(parseLib("no_such_lib", L));
}

TEST(ScenarioText, CorpusEntryRoundTrips) {
  CorpusEntry E;
  E.S = generateScenario(Lib::TreiberStack,
                         scenarioSeed(5, Lib::TreiberStack, 2));
  E.Mut = Mutation::TreiberPopBelowTop;
  E.Decisions = {0, 1, 0, 2, 3};
  E.Note = "round-trip test";
  std::string Text = formatCorpusEntry(E);
  CorpusEntry Back;
  std::string Err;
  ASSERT_TRUE(parseCorpusEntry(Text, Back, Err)) << Err;
  EXPECT_EQ(Back.S.str(), E.S.str());
  EXPECT_EQ(Back.S.Seed, E.S.Seed);
  EXPECT_EQ(Back.Mut, E.Mut);
  EXPECT_EQ(Back.Decisions, E.Decisions);

  CorpusEntry Bad;
  EXPECT_FALSE(parseCorpusEntry("lib=ms_queue\nbogus=1\n", Bad, Err));
  EXPECT_NE(Err.find("bogus"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Pristine sweep
//===----------------------------------------------------------------------===//

TEST(ConformanceSweep, AllLibrariesClean) {
  SweepOptions O;
  O.ScenariosPerLib = 4;
  O.MaxExecutionsPerScenario = 40000;
  SweepReport Rep = runSweep(O);
  EXPECT_TRUE(Rep.clean()) << Rep.str();
  ASSERT_EQ(Rep.PerLib.size(), NumLibs);
  for (const LibSweepStats &St : Rep.PerLib) {
    EXPECT_EQ(St.Violations, 0u) << libName(St.L) << ": " << St.FirstBad;
    EXPECT_EQ(St.Races, 0u) << libName(St.L);
    EXPECT_EQ(St.Deadlocks, 0u) << libName(St.L);
    EXPECT_GT(St.Executions, 0u) << libName(St.L);
  }
  // Report renderers.
  EXPECT_NE(Rep.str().find("fingerprint"), std::string::npos);
  std::string J = Rep.json();
  EXPECT_EQ(J.front(), '{');
  EXPECT_EQ(J.back(), '}');
  EXPECT_NE(J.find("\"fingerprint\":"), std::string::npos);
}

TEST(ConformanceSweep, FingerprintIsSeedSensitive) {
  SweepOptions O;
  O.ScenariosPerLib = 2;
  O.MaxExecutionsPerScenario = 20000;
  O.Libs = {Lib::MsQueue, Lib::SpscRing};
  SweepReport A = runSweep(O);
  O.Seed = 2;
  SweepReport B = runSweep(O);
  EXPECT_NE(A.fingerprint(), B.fingerprint());
  O.Seed = 1;
  SweepReport C = runSweep(O);
  EXPECT_EQ(A.fingerprint(), C.fingerprint());
}

//===----------------------------------------------------------------------===//
// Spec strengths: the paper's §3.2 separation, live
//===----------------------------------------------------------------------===//

namespace {

sim::Task<void> runOps(ContainerAdapter &A, std::vector<Op> Ops, sim::Env &E) {
  for (Op O : Ops) {
    auto T = A.apply(E, O);
    co_await T;
  }
}

/// The cross-thread-enqueue scenario that first exhibited the separation
/// live (seed 1, scenario #5 of the 500-scenarios-per-library sweep):
/// `hw_queue pb=2 cap=10 T0[enq:1,enq:2,deq] T1[enq:3,deq,deq]
/// T2[enq:4,enq:5,enq:6]`.
Scenario hwSeparationScenario() {
  Scenario S;
  S.L = Lib::HwQueue;
  S.PreemptionBound = 2;
  S.Capacity = 10;
  S.Threads = {{{OpCode::Enq, 1}, {OpCode::Enq, 2}, {OpCode::Deq, 0}},
               {{OpCode::Enq, 3}, {OpCode::Deq, 0}, {OpCode::Deq, 0}},
               {{OpCode::Enq, 4}, {OpCode::Enq, 5}, {OpCode::Enq, 6}}};
  return S;
}

} // namespace

TEST(SpecStrength, PerLibraryMapping) {
  // Only the relaxed Herlihy-Wing queue is LAT_hb-only (paper §3.2 /
  // EXPERIMENTS.md E2); everything else must produce a witness.
  EXPECT_EQ(libStrength(Lib::HwQueue), SpecStrength::HbOnly);
  for (unsigned I = 0; I != NumLibs; ++I)
    if (allLibs()[I] != Lib::HwQueue) {
      EXPECT_EQ(libStrength(allLibs()[I]), SpecStrength::Linearizable)
          << libName(allLibs()[I]);
    }
}

TEST(SpecStrength, HwQueueSeparationIsLive) {
  // Both halves of the separation on the same scenario. (a) At its
  // *specified* strength — the LAT_hb graph axioms plus observed results —
  // the pristine HW queue is clean:
  Scenario S = hwSeparationScenario();
  std::vector<unsigned> Trace;
  EXPECT_FALSE(scenarioFails(S, Mutation::None, 20000, Trace))
      << "hw_queue violates its own LAT_hb spec";

  // (b) ...but some execution of the very same tree has *no*
  // linearizable-history witness, so checking hw_queue at LAT_hist_hb
  // strength would flag the paper's own expected behaviour as a bug
  // (which is what the HbOnly strength in libStrength exists to prevent).
  bool FoundWitnessless = false;
  sim::Explorer Ex{scenarioOptions(S, 20000, 1)};
  while (!FoundWitnessless && Ex.beginExecution()) {
    rmc::Machine M(Ex);
    sim::Scheduler Sch(M, Ex);
    Sch.setPreemptionBound(Ex.options().PreemptionBound);
    spec::SpecMonitor Mon;
    ContainerAdapter A(S, Mutation::None, M, Mon);
    for (const auto &T : S.Threads) {
      sim::Env &E = Sch.newThread();
      Sch.start(E, runOps(A, T, E));
    }
    auto R = Sch.run(Ex.options().MaxStepsPerExec);
    if (R == sim::Scheduler::RunResult::Done) {
      spec::LinearizationResult LR = spec::findLinearization(
          Mon.graph(), A.objId(), spec::SeqSpec::Queue,
          spec::LinearizeLimits{200000});
      if (!LR.Found && !LR.Aborted)
        FoundWitnessless = true;
    }
    Ex.endExecution(R);
  }
  EXPECT_TRUE(FoundWitnessless)
      << "no witness-less hw_queue execution found; if the implementation "
         "got stronger, HbOnly in libStrength may no longer be needed";
}

//===----------------------------------------------------------------------===//
// Mutation testing: every mutant must die, via the intended oracle stage
//===----------------------------------------------------------------------===//

namespace {

/// Hunts \p Mut and asserts it was killed; returns the report.
MutantReport expectKilled(Mutation Mut) {
  MutantReport R = huntMutant(Mut, quickHunt());
  EXPECT_TRUE(R.Killed) << mutationName(Mut) << " survived "
                        << R.ScenariosTried << " scenarios ("
                        << mutationDescription(Mut) << ")";
  if (R.Killed) {
    // The shrunk counterexample must still fail on replay.
    EXPECT_FALSE(R.Shrunk.V.Ok)
        << mutationName(Mut) << ": shrunk trace no longer fails";
    EXPECT_GE(R.Shrunk.OpsAfter, 1u);
    EXPECT_LE(R.Shrunk.OpsAfter, R.Shrunk.OpsBefore);
  }
  return R;
}

} // namespace

TEST(MutationKill, MsQueueRelaxedPublish) {
  MutantReport R = expectKilled(Mutation::MsQueueRelaxedPublish);
  // A relaxed linking CAS loses the element handoff: the race detector
  // fires on the node's nonatomic fields.
  EXPECT_EQ(R.Rule, "RACE") << R.str();
}

TEST(MutationKill, MsQueueSkipDeq) {
  MutantReport R = expectKilled(Mutation::MsQueueSkipDeq);
  // Skipping the head's successor breaks FIFO order / loses elements:
  // caught by the queue axioms or the witness search.
  EXPECT_TRUE(R.Rule == "CONSISTENCY" || R.Rule == "WITNESS") << R.str();
}

TEST(MutationKill, TreiberRelaxedPopHead) {
  MutantReport R = expectKilled(Mutation::TreiberRelaxedPopHead);
  EXPECT_EQ(R.Rule, "RACE") << R.str();
}

TEST(MutationKill, TreiberPopBelowTop) {
  MutantReport R = expectKilled(Mutation::TreiberPopBelowTop);
  // Popping below the top is a pure LIFO violation (the acquire CAS still
  // synchronizes, so there is no race to hide behind).
  EXPECT_TRUE(R.Rule == "CONSISTENCY" || R.Rule == "WITNESS") << R.str();
}

TEST(MutationKill, ExchangerEchoValue) {
  MutantReport R = expectKilled(Mutation::ExchangerEchoValue);
  // The graph records the true crossing; only the observed-result check
  // can see the lie.
  EXPECT_EQ(R.Rule, "OBS") << R.str();
}

TEST(MutationKill, SpscRelaxedTailPublish) {
  MutantReport R = expectKilled(Mutation::SpscRelaxedTailPublish);
  EXPECT_EQ(R.Rule, "RACE") << R.str();
}

TEST(MutationKill, WsDequeTakeNoFence) {
  MutantReport R = expectKilled(Mutation::WsDequeTakeNoFence);
  // Without the SC fence the owner's take re-takes a stolen element: the
  // same push is consumed twice, caught by the injectivity prescan.
  EXPECT_TRUE(R.Rule == "INJ" || R.Rule == "CONSISTENCY") << R.str();
}

TEST(MutationKill, EbrSkipGracePeriod) {
  // A reclamation bug, not a spec bug: the event graph stays
  // LAT-consistent, so only the machine's lifecycle tracking can see it —
  // the free lands while a retire-time reader is still pinned.
  MutantReport R = expectKilled(Mutation::EbrSkipGracePeriod);
  EXPECT_EQ(R.Rule, "PREMATURE_FREE") << R.str();
}

TEST(MutationKill, EbrEarlyUnpin) {
  // The reader leaves the critical section before dereferencing; the
  // node is freed under it and the access itself faults.
  MutantReport R = expectKilled(Mutation::EbrEarlyUnpin);
  EXPECT_EQ(R.Rule, "USE_AFTER_RETIRE") << R.str();
}

TEST(MutationKill, RunMutationTestsCoversAllMutants) {
  MutationOptions O = quickHunt();
  O.Shrink = false; // Keep this aggregate run fast; kills only.
  std::vector<MutantReport> Reps = runMutationTests(O);
  ASSERT_EQ(Reps.size(), NumMutations - 1);
  for (const MutantReport &R : Reps)
    EXPECT_TRUE(R.Killed) << R.str();
}

//===----------------------------------------------------------------------===//
// Shrinker
//===----------------------------------------------------------------------===//

TEST(Shrinker, StrictlyReducesAndStillFails) {
  // The MS-queue publish mutant dies in a busy generated scenario; the
  // shrinker must cut it down to the 2-op essence and the result must
  // still fail when replayed from scratch.
  MutantReport R = huntMutant(Mutation::MsQueueRelaxedPublish, quickHunt());
  ASSERT_TRUE(R.Killed);
  const ShrinkResult &S = R.Shrunk;
  EXPECT_TRUE(S.reducedOps()) << S.str();
  EXPECT_TRUE(S.reducedDecisions()) << S.str();
  EXPECT_LE(S.OpsAfter, 3u) << S.Min.str();
  EXPECT_GT(S.CandidatesTried, 0u);

  // Independent re-validation: explore the minimized scenario afresh.
  std::vector<unsigned> Trace;
  EXPECT_TRUE(scenarioFails(S.Min, Mutation::MsQueueRelaxedPublish, 100000,
                            Trace))
      << "shrunk scenario no longer fails: " << S.Min.str();

  // And the pristine library passes the minimized scenario.
  std::vector<unsigned> Unused;
  EXPECT_FALSE(scenarioFails(S.Min, Mutation::None, 100000, Unused))
      << "pristine library fails the shrunk scenario";
}

TEST(Shrinker, MinimizedTraceReplaysDivergenceFree) {
  MutantReport R = huntMutant(Mutation::ExchangerEchoValue, quickHunt());
  ASSERT_TRUE(R.Killed);
  TraceDiagnosis D =
      diagnoseTrace(R.Shrunk.Min, Mutation::ExchangerEchoValue,
                    scenarioOptions(R.Shrunk.Min, 1, 1), R.Shrunk.Decisions);
  EXPECT_TRUE(D.failing());
  EXPECT_FALSE(D.V.Ok);
  // Replaying the canonical executed trace reproduces without divergence.
  TraceDiagnosis D2 =
      diagnoseTrace(R.Shrunk.Min, Mutation::ExchangerEchoValue,
                    scenarioOptions(R.Shrunk.Min, 1, 1), D.Executed);
  EXPECT_TRUE(D2.failing());
  EXPECT_FALSE(D2.RR.Diverged);
  EXPECT_EQ(D2.Executed, D.Executed);
}

//===----------------------------------------------------------------------===//
// Verdict plumbing
//===----------------------------------------------------------------------===//

TEST(VerdictTest, StrAndFail) {
  Verdict V;
  EXPECT_TRUE(V.Ok);
  EXPECT_EQ(V.str(), "ok");
  Verdict F = Verdict::fail("OBS", "thread 0 lied");
  EXPECT_FALSE(F.Ok);
  EXPECT_EQ(F.str(), "OBS: thread 0 lied");
}

namespace {

/// Asserts the full reclamation-verdict pipeline on a hand-built
/// scenario: exploration against \p Mut fails with verdict rule
/// \p WantRule, the trace replays divergence-free without any reduction
/// in the way (replay never prunes), and the verdict text survives
/// JSON encoding through the sweep-report path.
void expectReclamationVerdict(const Scenario &S, Mutation Mut,
                              const char *WantRule,
                              const char *WantDetail) {
  std::vector<unsigned> Trace;
  ASSERT_TRUE(scenarioFails(S, Mut, 200000, Trace))
      << mutationName(Mut) << " not killed by " << S.str();
  TraceDiagnosis D =
      diagnoseTrace(S, Mut, scenarioOptions(S, 1, 1), Trace);
  ASSERT_TRUE(D.failing()) << S.str();
  EXPECT_FALSE(D.RR.Diverged) << "reclamation trace diverged on replay";
  EXPECT_EQ(D.V.Rule, WantRule) << D.V.str();
  EXPECT_NE(D.V.Detail.find(WantDetail), std::string::npos) << D.V.str();

  // The canonical executed trace replays to the same verdict.
  TraceDiagnosis D2 =
      diagnoseTrace(S, Mut, scenarioOptions(S, 1, 1), D.Executed);
  ASSERT_TRUE(D2.failing());
  EXPECT_FALSE(D2.RR.Diverged);
  EXPECT_EQ(D2.V.Rule, WantRule);

  // Verdict text JSON-encodes via the sweep-report first_bad field.
  SweepReport Rep;
  LibSweepStats St;
  St.L = Lib::TreiberEbr;
  St.Violations = 1;
  St.FirstBadScenario = 0;
  St.FirstBad = S.str() + " -> " + D.V.str();
  Rep.PerLib.push_back(St);
  std::string J = Rep.json();
  EXPECT_EQ(J.front(), '{');
  EXPECT_EQ(J.back(), '}');
  EXPECT_NE(J.find(WantRule), std::string::npos) << J;
  EXPECT_NE(J.find("\"first_bad\":"), std::string::npos) << J;
}

} // namespace

TEST(VerdictTest, PrematureFreeVerdictPipeline) {
  // The shrunk corpus shape for ebr_skip_grace_period: a popper retires
  // and drains while the pusher is still pinned.
  Scenario S;
  S.L = Lib::TreiberEbr;
  S.PreemptionBound = 2;
  S.Capacity = 6;
  S.Threads = {{{OpCode::Pop, 0}}, {{OpCode::Push, 1}}};
  expectReclamationVerdict(S, Mutation::EbrSkipGracePeriod,
                           "PREMATURE_FREE", "premature free");
}

TEST(VerdictTest, UseAfterRetireVerdictPipeline) {
  // The shrunk corpus shape for ebr_early_unpin: an unpinned reader's
  // head snapshot is popped, retired, and freed under it.
  Scenario S;
  S.L = Lib::TreiberEbr;
  S.PreemptionBound = 2;
  S.Capacity = 6;
  S.Threads = {{{OpCode::Push, 1}, {OpCode::Pop, 0}}, {{OpCode::Pop, 0}}};
  expectReclamationVerdict(S, Mutation::EbrEarlyUnpin, "USE_AFTER_RETIRE",
                           "use after retire");
}

TEST(VerdictTest, DiagnoseReportsStructuredRule) {
  // Hand-built scenario: the Treiber below-top mutant with a pop racing
  // two pushes violates LIFO deterministically somewhere in the tree.
  Scenario S;
  S.L = Lib::TreiberStack;
  S.PreemptionBound = 2;
  S.Threads = {{{OpCode::Pop, 0}},
               {{OpCode::Push, 1}, {OpCode::Push, 2}}};
  std::vector<unsigned> Trace;
  ASSERT_TRUE(
      scenarioFails(S, Mutation::TreiberPopBelowTop, 200000, Trace));
  TraceDiagnosis D = diagnoseTrace(S, Mutation::TreiberPopBelowTop,
                                   scenarioOptions(S, 1, 1), Trace);
  ASSERT_TRUE(D.failing());
  EXPECT_FALSE(D.V.Rule.empty());
  EXPECT_FALSE(D.V.Detail.empty());
  EXPECT_NE(D.V.str(), "ok");
}
