//===-- tests/ExchangerTest.cpp - Exchanger vs. its spec (Section 4.2) -----===//
//
// Experiment E5's substance: every explored execution of the exchanger is
// checked against ExchangerConsistent — matched pairs carry crossed
// values, have symmetric so edges, and commit atomically (adjacent commit
// indices with the helper observing the helpee). Also checks the
// resource-transfer client: non-atomic payload handover through a
// successful exchange is race-free in both directions.
//
//===----------------------------------------------------------------------===//

#include "clients/ResourceExchange.h"
#include "sim/Explorer.h"
#include "lib/Exchanger.h"
#include "spec/Consistency.h"

#include <gtest/gtest.h>

#include <memory>

using namespace compass;
using namespace compass::rmc;
using namespace compass::sim;
using namespace compass::spec;
using compass::graph::BottomVal;

namespace {

Task<void> exchangeOnce(Env &E, lib::Exchanger &X, Value V,
                        unsigned Attempts, Value *Out) {
  auto T1 = X.exchange(E, V, Attempts);
  *Out = co_await T1;
}

struct ExchangeStats {
  uint64_t Checked = 0;
  uint64_t Violations = 0;
  uint64_t Matches = 0;
  uint64_t AllFailed = 0;
  std::string FirstViolation;
};

ExchangeStats exploreExchanger(std::vector<Value> Values, unsigned Attempts,
                               unsigned PreemptionBound) {
  Explorer::Options Opts;
  Opts.PreemptionBound = PreemptionBound;
  Opts.MaxExecutions = 400'000;

  ExchangeStats Stats;
  std::unique_ptr<SpecMonitor> Mon;
  std::unique_ptr<lib::Exchanger> X;
  std::vector<Value> Got;

  auto Sum = explore(
      Opts,
      [&](Machine &M, Scheduler &S) {
        Mon = std::make_unique<SpecMonitor>();
        X = std::make_unique<lib::Exchanger>(M, *Mon, "x");
        Got.assign(Values.size(), 0);
        for (size_t I = 0; I != Values.size(); ++I) {
          Env &E = S.newThread();
          S.start(E, exchangeOnce(E, *X, Values[I], Attempts, &Got[I]));
        }
      },
      [&](Machine &M, Scheduler &, Scheduler::RunResult R) {
        EXPECT_NE(R, Scheduler::RunResult::Race) << M.raceMessage();
        if (R != Scheduler::RunResult::Done)
          return;
        ++Stats.Checked;
        auto CR = checkExchangerConsistent(Mon->graph(), X->objId());
        if (!CR.ok()) {
          ++Stats.Violations;
          if (Stats.FirstViolation.empty())
            Stats.FirstViolation = CR.str() + Mon->graph().str();
        }
        // Cross-check the callers' return values against the graph.
        unsigned Successes = 0;
        for (size_t I = 0; I != Values.size(); ++I)
          if (Got[I] != BottomVal) {
            ++Successes;
            // Some other participant must have received our value.
            bool Crossed = false;
            for (size_t J = 0; J != Values.size(); ++J)
              Crossed |= J != I && Got[J] == Values[I] &&
                         Got[I] == Values[J];
            EXPECT_TRUE(Crossed) << "one-sided exchange observed";
          }
        EXPECT_EQ(Successes % 2, 0u) << "odd number of successes";
        if (Successes > 0)
          ++Stats.Matches;
        else
          ++Stats.AllFailed;
      });
  EXPECT_GT(Sum.Executions, 0u);
  EXPECT_EQ(Sum.Races, 0u);
  return Stats;
}

} // namespace

TEST(ExchangerTest, SingleThreadAlwaysFails) {
  auto Stats = exploreExchanger({5}, /*Attempts=*/2, ~0u);
  EXPECT_GT(Stats.Checked, 0u);
  EXPECT_EQ(Stats.Violations, 0u) << Stats.FirstViolation;
  EXPECT_EQ(Stats.Matches, 0u);
  EXPECT_GT(Stats.AllFailed, 0u);
}

TEST(ExchangerTest, TwoThreadsConsistentAndSometimesMatch) {
  auto Stats = exploreExchanger({5, 6}, /*Attempts=*/2, ~0u);
  EXPECT_GT(Stats.Checked, 0u);
  EXPECT_EQ(Stats.Violations, 0u) << Stats.FirstViolation;
  EXPECT_GT(Stats.Matches, 0u) << "matching must be reachable";
  EXPECT_GT(Stats.AllFailed, 0u) << "missing each other must be reachable";
}

TEST(ExchangerTest, ThreeThreadsAtMostOnePair) {
  auto Stats = exploreExchanger({5, 6, 7}, /*Attempts=*/1,
                                /*PreemptionBound=*/2);
  EXPECT_GT(Stats.Checked, 0u);
  EXPECT_EQ(Stats.Violations, 0u) << Stats.FirstViolation;
  EXPECT_GT(Stats.Matches, 0u);
}

TEST(ResourceExchangeTest, PayloadHandoverIsRaceFree) {
  Explorer::Options Opts;
  // A match needs a single preemption (install, switch, match); bound 3
  // keeps the exploration focused while covering extra contention.
  Opts.PreemptionBound = 3;
  std::unique_ptr<SpecMonitor> Mon;
  std::unique_ptr<lib::Exchanger> X;
  clients::ResourceExchangeOutcome Out;
  uint64_t Checked = 0, Successes = 0;

  auto Sum = explore(
      Opts,
      [&](Machine &M, Scheduler &S) {
        Mon = std::make_unique<SpecMonitor>();
        X = std::make_unique<lib::Exchanger>(M, *Mon, "x");
        Out = clients::ResourceExchangeOutcome();
        clients::setupResourceExchange(M, S, *X, /*Rounds=*/2, Out);
      },
      [&](Machine &M, Scheduler &, Scheduler::RunResult R) {
        // The whole point: no execution may race on the payload cells.
        EXPECT_NE(R, Scheduler::RunResult::Race) << M.raceMessage();
        if (R != Scheduler::RunResult::Done)
          return;
        ++Checked;
        EXPECT_EQ(Out.Succeeded[0], Out.Succeeded[1]);
        if (Out.Succeeded[0]) {
          ++Successes;
          // Thread ids are 0 and 1; payloads are 100 + tid.
          EXPECT_EQ(Out.Received[0], 101u);
          EXPECT_EQ(Out.Received[1], 100u);
        }
      });
  EXPECT_EQ(Sum.Races, 0u);
  EXPECT_GT(Checked, 0u);
  EXPECT_GT(Successes, 0u) << "successful handover must be reachable";
}
