#!/usr/bin/env python3
"""CLI contract test for compass_check flag parsing.

Pins the strict numeric-flag contract: malformed, signed, overflowing, or
missing values exit 2 and print usage to stderr (pre-fix, strtoull
silently mapped "abc" and "-1" to a number and the sweep ran with
garbage); valid spellings are accepted. Invoked by ctest as
`test_cli <path-to-compass_check>`.
"""

import os
import subprocess
import sys
import tempfile

BIN = None
failures = []


def run(*args, timeout=120):
    return subprocess.run([BIN, *args], capture_output=True, text=True,
                          timeout=timeout)


def check(name, cond, proc=None):
    print(f"  {'PASS' if cond else 'FAIL'}  {name}")
    if not cond:
        failures.append(name)
        if proc is not None:
            sys.stdout.write(f"    exit={proc.returncode}\n"
                             f"    stderr: {proc.stderr[:400]}\n")


def expect_usage_error(name, *args):
    p = run(*args)
    check(name, p.returncode == 2 and "usage:" in p.stderr, p)


def main():
    global BIN
    if len(sys.argv) != 2:
        print("usage: cli_test.py <compass_check binary>", file=sys.stderr)
        return 2
    BIN = sys.argv[1]

    # --- malformed numeric values: exit 2 + usage -------------------------
    expect_usage_error("non-numeric seed", "sweep", "--seed", "abc")
    expect_usage_error("negative seed", "sweep", "--seed", "-1")
    expect_usage_error("overflowing seed", "sweep", "--seed",
                       "99999999999999999999999")
    expect_usage_error("hex per-lib", "sweep", "--per-lib", "0x10")
    expect_usage_error("trailing junk per-lib", "sweep", "--per-lib", "3q")
    expect_usage_error("plus-signed max-execs", "sweep", "--max-execs", "+5")
    expect_usage_error("empty workers", "sweep", "--workers", "")
    expect_usage_error("zero workers", "sweep", "--workers", "0")
    expect_usage_error("float per-lib", "sweep", "--per-lib", "1.5")
    expect_usage_error("missing value", "sweep", "--per-lib")
    expect_usage_error("unsigned overflow per-lib", "sweep", "--per-lib",
                       str(2**64))
    expect_usage_error("mutants non-numeric max-scenarios", "mutants",
                       "--max-scenarios", "many")
    expect_usage_error("negative time budget", "sweep", "--time-budget", "-2")
    expect_usage_error("zero time budget", "sweep", "--time-budget", "0")
    expect_usage_error("non-numeric time budget", "sweep", "--time-budget",
                       "soon")
    expect_usage_error("bad checkpoint-every suffix", "sweep",
                       "--checkpoint-every", "5x")
    expect_usage_error("empty checkpoint-every", "sweep",
                       "--checkpoint-every", "s")
    expect_usage_error("unknown flag", "sweep", "--frobnicate")
    expect_usage_error("unknown command", "frobnicate")
    expect_usage_error("bad lib name", "sweep", "--lib", "no_such_lib")
    expect_usage_error("lib name close miss", "sweep", "--lib", "treiber_ebr ")
    expect_usage_error("bad mutation name", "mutants", "--mut",
                       "ebr_skip_grace")
    expect_usage_error("bad reduction", "sweep", "--reduction", "magic")
    # Only the canonical lowercase spellings none|sleep|source are valid:
    # near-misses must not be silently mapped to a mode.
    expect_usage_error("reduction near-miss sleep-set", "sweep",
                       "--reduction", "sleep-set")
    expect_usage_error("reduction near-miss capitalized", "sweep",
                       "--reduction", "Source")
    expect_usage_error("bad engine", "sweep", "--engine", "cow")
    expect_usage_error("engine near-miss capitalized", "sweep",
                       "--engine", "Auto")
    p = run("sweep", "--resume", "/nonexistent/ckpt")
    check("missing resume file exits 2 with diagnostic",
          p.returncode == 2 and "cannot read" in p.stderr, p)

    # --- valid spellings still accepted -----------------------------------
    p = run("sweep", "--seed", "3", "--per-lib", "1", "--workers", "1",
            "--max-execs", "2000", "--lib", "ms_queue")
    check("valid sweep runs", p.returncode == 0, p)
    check("valid sweep prints fingerprint", "fingerprint" in p.stdout, p)

    p = run("sweep", "--seed", "3", "--per-lib", "1", "--workers", "1",
            "--max-execs", "2000", "--lib", "treiber_ebr", timeout=300)
    check("treiber_ebr sweep runs", p.returncode == 0, p)
    check("treiber_ebr sweep names the library", "treiber_ebr" in p.stdout, p)
    check("treiber_ebr sweep prints fingerprint", "fingerprint" in p.stdout, p)

    p = run("sweep", "--seed", "3", "--per-lib", "1", "--workers", "2",
            "--max-execs", "2000", "--lib", "ms_queue",
            "--time-budget", "30.5")
    check("fractional time budget accepted", p.returncode == 0, p)

    p = run("sweep", "--seed", "3", "--per-lib", "1", "--max-execs", "2000",
            "--lib", "ms_queue", "--checkpoint-every", "1000000")
    check("checkpoint-every execs accepted", p.returncode == 0, p)

    p = run("sweep", "--seed", "3", "--per-lib", "1", "--max-execs", "2000",
            "--lib", "ms_queue", "--checkpoint-every", "900s")
    check("checkpoint-every seconds accepted", p.returncode == 0, p)

    # --- reduction / engine mode spellings --------------------------------
    for mode in ("none", "sleep", "source"):
        p = run("sweep", "--seed", "3", "--per-lib", "1", "--workers", "1",
                "--max-execs", "2000", "--lib", "ms_queue",
                "--reduction", mode)
        check(f"--reduction {mode} accepted", p.returncode == 0, p)
        check(f"--reduction {mode} prints fingerprint",
              "fingerprint" in p.stdout, p)

    for engine in ("auto", "root"):
        p = run("sweep", "--seed", "3", "--per-lib", "1", "--workers", "1",
                "--max-execs", "2000", "--lib", "ms_queue",
                "--engine", engine)
        check(f"--engine {engine} accepted", p.returncode == 0, p)

    # --- resume-mismatch contract -----------------------------------------
    # A checkpoint's executed share is tied to the reduction mode and engine
    # path that produced it. Produce a cadence checkpoint under explicit
    # --reduction sleep / --engine auto, then resume with a contradicting
    # mode: exit 2 with a diagnostic naming both modes. Resuming without
    # the flags adopts the recorded modes and completes.
    with tempfile.TemporaryDirectory() as td:
        ckpt = os.path.join(td, "sweep.ckpt")
        p = run("sweep", "--seed", "3", "--per-lib", "1", "--workers", "1",
                "--max-execs", "2000", "--lib", "ms_queue",
                "--reduction", "sleep", "--engine", "auto",
                "--checkpoint", ckpt, "--checkpoint-every", "50")
        check("checkpointed sweep runs", p.returncode == 0, p)
        check("cadence checkpoint written", os.path.exists(ckpt), p)
        if os.path.exists(ckpt):
            p = run("sweep", "--resume", ckpt, "--reduction", "source")
            check("resume reduction mismatch exits 2",
                  p.returncode == 2 and "contradicts" in p.stderr, p)
            p = run("sweep", "--resume", ckpt, "--engine", "root")
            check("resume engine mismatch exits 2",
                  p.returncode == 2 and "contradicts" in p.stderr, p)
            p = run("sweep", "--resume", ckpt)
            check("resume without mode flags completes", p.returncode == 0, p)

    if failures:
        print(f"\ncli_test FAILED: {len(failures)} check(s)")
        return 1
    print("\ncli_test passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
