//===-- tests/CorpusTest.cpp - Regression corpus replay -------------------===//
//
// Replays every entry under tests/corpus/. Each entry persists a shrunk
// counterexample for one seeded mutation (check/Scenario.h), and the
// corpus contract is two-sided:
//
//  * the recorded decision trace, replayed against the MUTATED library,
//    must still fail (the bug is still caught after refactors), and
//  * exploring the same scenario against the PRISTINE library must find
//    no violation (the entry flags a mutant, not the oracle).
//
//===----------------------------------------------------------------------===//

#include "check/Conformance.h"
#include "check/Harness.h"
#include "check/Shrinker.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

using namespace compass;
using namespace compass::check;

#ifndef COMPASS_CORPUS_DIR
#error "COMPASS_CORPUS_DIR must point at tests/corpus"
#endif

namespace {

std::vector<std::filesystem::path> corpusFiles() {
  std::vector<std::filesystem::path> Files;
  for (const auto &Ent :
       std::filesystem::directory_iterator(COMPASS_CORPUS_DIR))
    if (Ent.is_regular_file() && Ent.path().extension() == ".corpus")
      Files.push_back(Ent.path());
  std::sort(Files.begin(), Files.end());
  return Files;
}

std::string slurp(const std::filesystem::path &P) {
  std::ifstream In(P);
  std::ostringstream OS;
  OS << In.rdbuf();
  return OS.str();
}

CorpusEntry parseFileOrFail(const std::filesystem::path &P) {
  CorpusEntry E;
  std::string Err;
  EXPECT_TRUE(parseCorpusEntry(slurp(P), E, Err))
      << P.filename() << ": " << Err;
  return E;
}

} // namespace

TEST(Corpus, DirectoryIsNonEmpty) {
  // Guards against the corpus silently vanishing (e.g. a bad glob in a
  // build-tree move): we ship at least one entry per seeded mutation.
  EXPECT_GE(corpusFiles().size(), NumMutations - 1)
      << "expected at least one corpus entry per mutation under "
      << COMPASS_CORPUS_DIR;
}

TEST(Corpus, EveryMutationIsCovered) {
  std::vector<bool> Seen(NumMutations, false);
  for (const auto &P : corpusFiles()) {
    CorpusEntry E = parseFileOrFail(P);
    Seen[static_cast<unsigned>(E.Mut)] = true;
  }
  for (unsigned I = 1; I != NumMutations; ++I)
    EXPECT_TRUE(Seen[I]) << "no corpus entry for mutation "
                         << mutationName(static_cast<Mutation>(I));
}

TEST(Corpus, EntriesRoundTripThroughSerialization) {
  for (const auto &P : corpusFiles()) {
    SCOPED_TRACE(P.filename().string());
    CorpusEntry E = parseFileOrFail(P);
    CorpusEntry E2;
    std::string Err;
    ASSERT_TRUE(parseCorpusEntry(formatCorpusEntry(E), E2, Err)) << Err;
    EXPECT_EQ(E.S.str(), E2.S.str());
    EXPECT_EQ(E.Mut, E2.Mut);
    EXPECT_EQ(E.Decisions, E2.Decisions);
  }
}

TEST(Corpus, ReplaysFailAgainstMutant) {
  for (const auto &P : corpusFiles()) {
    SCOPED_TRACE(P.filename().string());
    CorpusEntry E = parseFileOrFail(P);
    ASSERT_NE(E.Mut, Mutation::None) << "corpus entries must name a mutant";
    TraceDiagnosis D =
        diagnoseTrace(E.S, E.Mut, scenarioOptions(E.S, 1, 1), E.Decisions);
    EXPECT_TRUE(D.failing())
        << "recorded counterexample no longer fails against "
        << mutationName(E.Mut) << "; scenario: " << E.S.str()
        << "; verdict: " << D.V.str();
    EXPECT_FALSE(D.RR.Diverged)
        << "recorded trace diverged on replay; re-emit the corpus with "
           "compass_check mutants --emit-corpus";
  }
}

TEST(Corpus, EbrShrinkPreservesReclamationFault) {
  // Shrinking an EBR counterexample must hand back a reproduction that
  // still fails for the reclamation-protocol reason. The hazard specific
  // to this family: every pin/unpin pair lives inside one scenario op, so
  // a structurally valid drop-thread/drop-op candidate can never strand an
  // open pin session or orphan a retire — but a careless trace truncation
  // (pass 4) could still turn the violation into a DEADLOCK or STEP-LIMIT
  // artifact. Lock in the full contract.
  for (const auto &P : corpusFiles()) {
    CorpusEntry E = parseFileOrFail(P);
    if (E.S.L != Lib::TreiberEbr)
      continue;
    SCOPED_TRACE(P.filename().string());
    ShrinkResult R = shrinkCounterexample(E.S, E.Mut, E.Decisions);
    TraceDiagnosis D =
        diagnoseTrace(R.Min, E.Mut, scenarioOptions(R.Min, 1, 1), R.Decisions);
    ASSERT_TRUE(D.failing())
        << "shrunk EBR counterexample no longer fails: " << R.Min.str();
    EXPECT_FALSE(D.RR.Diverged)
        << "shrunk EBR trace is not divergence-free: " << R.Min.str();
    // The fault must be the machine-level reclamation fault, not a
    // secondary artifact of the shrink.
    EXPECT_EQ(D.Run, sim::Scheduler::RunResult::Race)
        << "shrunk verdict: " << D.V.str();
    EXPECT_TRUE(D.V.Rule == "USE_AFTER_RETIRE" ||
                D.V.Rule == "PREMATURE_FREE")
        << "shrunk verdict: " << D.V.str();
    // And the shrunk scenario must stay clean against the pristine stack.
    std::vector<unsigned> Failing;
    EXPECT_FALSE(scenarioFails(R.Min, Mutation::None, 100000, Failing))
        << "pristine library fails shrunk scenario " << R.Min.str()
        << "; failing trace: " << sim::formatReplayCall(Failing);
  }
}

TEST(Corpus, PristineExplorationIsClean) {
  for (const auto &P : corpusFiles()) {
    SCOPED_TRACE(P.filename().string());
    CorpusEntry E = parseFileOrFail(P);
    std::vector<unsigned> Failing;
    EXPECT_FALSE(scenarioFails(E.S, Mutation::None, 100000, Failing))
        << "pristine library fails corpus scenario " << E.S.str()
        << "; failing trace: " << sim::formatReplayCall(Failing);
  }
}
