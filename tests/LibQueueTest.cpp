//===-- tests/LibQueueTest.cpp - Queue implementations vs. their specs -----===//
//
// Experiment E2's substance as tests: every explored execution of each
// queue implementation is checked against QueueConsistent (the paper's
// LAT_hb / LAT_abs_hb instances, Figure 2). The Michael-Scott and locked
// queues additionally satisfy the abstract-state replay; the relaxed
// Herlihy-Wing queue demonstrably does *not* (Section 3.2's claim), while
// still satisfying the graph-only spec.
//
//===----------------------------------------------------------------------===//

#include "lib/HwQueue.h"
#include "lib/Locked.h"
#include "lib/MsQueue.h"
#include "spec/Consistency.h"
#include "SimTestUtil.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>

using namespace compass;
using namespace compass::rmc;
using namespace compass::sim;
using namespace compass::spec;
using compass::graph::EmptyVal;

namespace {

enum class QueueKind { Ms, Hw, Locked };

const char *queueKindName(QueueKind K) {
  switch (K) {
  case QueueKind::Ms:
    return "ms";
  case QueueKind::Hw:
    return "hw";
  case QueueKind::Locked:
    return "locked";
  }
  return "?";
}

std::unique_ptr<lib::SimQueue> makeQueue(QueueKind K, Machine &M,
                                         SpecMonitor &Mon) {
  switch (K) {
  case QueueKind::Ms:
    return std::make_unique<lib::MsQueue>(M, Mon, "q");
  case QueueKind::Hw:
    return std::make_unique<lib::HwQueue>(M, Mon, "q", /*Capacity=*/8);
  case QueueKind::Locked:
    return std::make_unique<lib::LockedQueue>(M, Mon, "q", /*Capacity=*/8);
  }
  return nullptr;
}

struct QueueExplorationStats {
  uint64_t Checked = 0;
  uint64_t GraphViolations = 0;
  uint64_t AbsViolations = 0;
  uint64_t EmptyDeqs = 0;
  std::string FirstGraphViolation;
};

/// Runs the workload (one enqueuer thread per entry of \p Enqs, one
/// dequeuer thread issuing \p Deqs[i] dequeues) over all explored
/// executions, checking consistency on each.
QueueExplorationStats
exploreQueue(QueueKind K, std::vector<std::vector<Value>> Enqs,
             std::vector<unsigned> Deqs, unsigned PreemptionBound,
             uint64_t MaxExecutions = 400'000) {
  Explorer::Options Opts;
  Opts.PreemptionBound = PreemptionBound;
  Opts.MaxExecutions = MaxExecutions;

  QueueExplorationStats Stats;
  std::unique_ptr<SpecMonitor> Mon;
  std::unique_ptr<lib::SimQueue> Q;
  std::vector<std::vector<Value>> Got;

  auto Sum = explore(
      Opts,
      [&](Machine &M, Scheduler &S) {
        Mon = std::make_unique<SpecMonitor>();
        Q = makeQueue(K, M, *Mon);
        Got.assign(Deqs.size(), {});
        for (auto &Vs : Enqs) {
          Env &E = S.newThread();
          S.start(E, test::enqueuerThread(E, *Q, Vs));
        }
        for (size_t I = 0; I != Deqs.size(); ++I) {
          Env &E = S.newThread();
          S.start(E, test::dequeuerThread(E, *Q, Deqs[I], &Got[I]));
        }
      },
      [&](Machine &M, Scheduler &, Scheduler::RunResult R) {
        EXPECT_NE(R, Scheduler::RunResult::Race) << M.raceMessage();
        EXPECT_NE(R, Scheduler::RunResult::Deadlock);
        if (R != Scheduler::RunResult::Done)
          return;
        ++Stats.Checked;
        auto GR = checkQueueConsistent(Mon->graph(), Q->objId());
        if (!GR.ok()) {
          ++Stats.GraphViolations;
          if (Stats.FirstGraphViolation.empty())
            Stats.FirstGraphViolation = GR.str();
        }
        if (!checkQueueAbsState(Mon->graph(), Q->objId()).ok())
          ++Stats.AbsViolations;

        // Functional sanity: each dequeued value was enqueued, no value
        // dequeued twice.
        std::map<Value, int> Budget;
        for (auto &Vs : Enqs)
          for (Value V : Vs)
            ++Budget[V];
        for (auto &Vs : Got)
          for (Value V : Vs) {
            if (V == EmptyVal) {
              ++Stats.EmptyDeqs;
              continue;
            }
            EXPECT_GT(Budget[V], 0) << "value duplicated or invented";
            --Budget[V];
          }
      });
  EXPECT_GT(Sum.Executions, 0u);
  EXPECT_EQ(Sum.Races, 0u);
  return Stats;
}

} // namespace

//===----------------------------------------------------------------------===//
// Single-producer / single-consumer micro workload (full exhaustive).
//===----------------------------------------------------------------------===//

class QueueMicroTest : public ::testing::TestWithParam<QueueKind> {};

TEST_P(QueueMicroTest, OneEnqOneDeqConsistent) {
  auto Stats = exploreQueue(GetParam(), {{5}}, {1}, /*Preemptions=*/~0u);
  EXPECT_GT(Stats.Checked, 0u);
  EXPECT_EQ(Stats.GraphViolations, 0u) << Stats.FirstGraphViolation;
  EXPECT_EQ(Stats.AbsViolations, 0u);
  EXPECT_GT(Stats.EmptyDeqs, 0u) << "some interleaving must see empty";
}

TEST_P(QueueMicroTest, TwoEnqsTwoDeqsConsistent) {
  auto Stats =
      exploreQueue(GetParam(), {{1, 2}}, {2}, /*Preemptions=*/3);
  EXPECT_GT(Stats.Checked, 0u);
  EXPECT_EQ(Stats.GraphViolations, 0u) << Stats.FirstGraphViolation;
}

TEST_P(QueueMicroTest, TwoDequeuerThreadsConsistent) {
  auto Stats = exploreQueue(GetParam(), {{1, 2}}, {1, 1},
                            /*Preemptions=*/2);
  EXPECT_GT(Stats.Checked, 0u);
  EXPECT_EQ(Stats.GraphViolations, 0u) << Stats.FirstGraphViolation;
}

INSTANTIATE_TEST_SUITE_P(AllQueues, QueueMicroTest,
                         ::testing::Values(QueueKind::Ms, QueueKind::Hw,
                                           QueueKind::Locked),
                         [](const auto &Info) {
                           return queueKindName(Info.param);
                         });

//===----------------------------------------------------------------------===//
// Spec-strength separation (Section 3.2)
//===----------------------------------------------------------------------===//

TEST(QueueSpecStrengthTest, MsQueueSatisfiesAbsState) {
  // Cross-thread enqueues: the scenario where HW fails; MS must not.
  auto Stats = exploreQueue(QueueKind::Ms, {{1}, {2}}, {2},
                            /*Preemptions=*/2);
  EXPECT_EQ(Stats.GraphViolations, 0u) << Stats.FirstGraphViolation;
  EXPECT_EQ(Stats.AbsViolations, 0u)
      << "MS queue satisfies LAT_abs_hb (Section 3.2)";
}

TEST(QueueSpecStrengthTest, HwQueueViolatesAbsStateButNotGraph) {
  // Two enqueuer threads + a dequeuer: a dequeue may claim slot 1 while a
  // stale-empty slot 0 holds an earlier-committed element — fine for the
  // graph spec (no lhb between the enqueues), fatal for a commit-point
  // abstract state (the paper: HW needs prophecy for LAT_abs_hb).
  auto Stats = exploreQueue(QueueKind::Hw, {{1}, {2}}, {2},
                            /*Preemptions=*/2);
  EXPECT_EQ(Stats.GraphViolations, 0u)
      << "HW queue satisfies LAT_hb: " << Stats.FirstGraphViolation;
  EXPECT_GT(Stats.AbsViolations, 0u)
      << "HW queue must exhibit abstract-state violations (Section 3.2)";
}

TEST(QueueSpecStrengthTest, LockedQueueSatisfiesStrictSpecs) {
  Explorer::Options Opts;
  Opts.PreemptionBound = 2;
  std::unique_ptr<SpecMonitor> Mon;
  std::unique_ptr<lib::SimQueue> Q;
  std::vector<Value> Got;
  uint64_t Checked = 0;
  explore(
      Opts,
      [&](Machine &M, Scheduler &S) {
        Mon = std::make_unique<SpecMonitor>();
        Q = makeQueue(QueueKind::Locked, M, *Mon);
        Got.clear();
        Env &E0 = S.newThread();
        S.start(E0, test::enqueuerThread(E0, *Q, {1, 2}));
        Env &E1 = S.newThread();
        S.start(E1, test::dequeuerThread(E1, *Q, 2, &Got));
      },
      [&](Machine &, Scheduler &, Scheduler::RunResult R) {
        if (R != Scheduler::RunResult::Done)
          return;
        ++Checked;
        ContainerCheckOptions StrictG;
        StrictG.StrictEmpty = true;
        auto GR = checkQueueConsistent(Mon->graph(), Q->objId(), StrictG);
        EXPECT_TRUE(GR.ok()) << GR.str();
        AbsStateOptions StrictA;
        StrictA.RequireTrueEmpty = true;
        auto AR = checkQueueAbsState(Mon->graph(), Q->objId(), StrictA);
        EXPECT_TRUE(AR.ok()) << AR.str();
      });
  EXPECT_GT(Checked, 0u);
}

//===----------------------------------------------------------------------===//
// Synchronization-profile ablations (fences vs. orders vs. broken)
//===----------------------------------------------------------------------===//

namespace {

/// Explores the 1-enq/1-deq workload for a given MS-queue profile,
/// tolerating raced executions (counted, not failed).
struct ProfileStats {
  uint64_t Races = 0;
  uint64_t Checked = 0;
  uint64_t GraphViolations = 0;
  uint64_t AbsViolations = 0;
};

ProfileStats exploreMsProfile(lib::MsQueue::SyncProfile Profile) {
  Explorer::Options Opts;
  std::unique_ptr<SpecMonitor> Mon;
  std::unique_ptr<lib::MsQueue> Q;
  std::vector<Value> Got;
  ProfileStats Stats;

  auto Sum = explore(
      Opts,
      [&](Machine &M, Scheduler &S) {
        Mon = std::make_unique<SpecMonitor>();
        Q = std::make_unique<lib::MsQueue>(M, *Mon, "q", Profile);
        Got.clear();
        Env &E0 = S.newThread();
        S.start(E0, test::enqueuerThread(E0, *Q, {5}));
        Env &E1 = S.newThread();
        S.start(E1, test::dequeuerThread(E1, *Q, 1, &Got));
      },
      [&](Machine &, Scheduler &, Scheduler::RunResult R) {
        if (R != Scheduler::RunResult::Done)
          return;
        ++Stats.Checked;
        if (!checkQueueConsistent(Mon->graph(), Q->objId()).ok())
          ++Stats.GraphViolations;
        if (!checkQueueAbsState(Mon->graph(), Q->objId()).ok())
          ++Stats.AbsViolations;
      });
  Stats.Races = Sum.Races;
  return Stats;
}

} // namespace

TEST(QueueProfileTest, FencedProfileEquivalentToRelAcq) {
  // All-relaxed accesses + release/acquire fences at the same points:
  // the fence rules provide the same synchronization, so everything that
  // holds for the rel/acq build holds here.
  auto Stats = exploreMsProfile(lib::MsQueue::SyncProfile::Fenced);
  EXPECT_GT(Stats.Checked, 0u);
  EXPECT_EQ(Stats.Races, 0u);
  EXPECT_EQ(Stats.GraphViolations, 0u);
  EXPECT_EQ(Stats.AbsViolations, 0u);
}

TEST(QueueProfileTest, BrokenRelaxedProfileIsCaught) {
  // No release/acquire anywhere: the dequeuer's non-atomic read of the
  // node payload races with the enqueuer's initialization. The framework
  // must find it.
  auto Stats = exploreMsProfile(lib::MsQueue::SyncProfile::BrokenRelaxed);
  EXPECT_GT(Stats.Races, 0u)
      << "the model checker must detect the publication race";
}
