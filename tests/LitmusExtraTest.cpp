//===-- tests/LitmusExtraTest.cpp - Deeper litmus coverage ------------------===//
//
// Additional classic litmus tests pinning down the machine's RC11
// semantics beyond SimTest.cpp's basics: WRC (write-to-read causality
// through release/acquire chains), IRIW with and without SC fences,
// release sequences through relaxed RMWs, coherence shapes (CoWR, CoRW),
// and the two-queue pipeline client (the Section 2.2 protocol pattern).
//
//===----------------------------------------------------------------------===//

#include "clients/Pipeline.h"
#include "sim/Explorer.h"

#include <gtest/gtest.h>

#include <set>

using namespace compass;
using namespace compass::rmc;
using namespace compass::sim;

namespace {

Task<void> storeOne(Env &E, Loc L, MemOrder O) {
  co_await E.store(L, 1, O);
}

// WRC: T0: x :=rel 1. T1: r1 = x.acq; y :=rel 1. T2: r2 = y.acq;
// r3 = x.rlx. Forbidden: r1=1, r2=1, r3=0 (causality through two
// release/acquire hops).
struct WrcOut {
  Value R1 = 0, R2 = 0, R3 = 0;
};

Task<void> wrcMiddle(Env &E, Loc X, Loc Y, Value *R1) {
  *R1 = co_await E.load(X, MemOrder::Acquire);
  co_await E.store(Y, 1, MemOrder::Release);
}

Task<void> wrcReader(Env &E, Loc X, Loc Y, Value *R2, Value *R3) {
  *R2 = co_await E.load(Y, MemOrder::Acquire);
  *R3 = co_await E.load(X, MemOrder::Relaxed);
}

// IRIW: two writers to x and y; two readers disagree about the order.
// r1=1,r2=0,r3=1,r4=0 is allowed without SC fences (no multi-copy
// atomicity required by rel/acq) and forbidden with SC fences between
// the reads.
struct IriwOut {
  Value R1 = 0, R2 = 0, R3 = 0, R4 = 0;
};

Task<void> iriwReader(Env &E, Loc A, Loc B, bool Fence, Value *Ra,
                      Value *Rb) {
  *Ra = co_await E.load(A, MemOrder::Acquire);
  if (Fence)
    co_await E.fence(MemOrder::SeqCst);
  *Rb = co_await E.load(B, MemOrder::Acquire);
}

} // namespace

TEST(LitmusExtraTest, WrcCausalityHolds) {
  WrcOut O;
  uint64_t Bad = 0;
  explore(
      Explorer::Options{},
      [&](Machine &M, Scheduler &S) {
        O = WrcOut();
        Loc X = M.alloc("x"), Y = M.alloc("y");
        Env &E0 = S.newThread();
        S.start(E0, storeOne(E0, X, MemOrder::Release));
        Env &E1 = S.newThread();
        S.start(E1, wrcMiddle(E1, X, Y, &O.R1));
        Env &E2 = S.newThread();
        S.start(E2, wrcReader(E2, X, Y, &O.R2, &O.R3));
      },
      [&](Machine &, Scheduler &, Scheduler::RunResult R) {
        EXPECT_EQ(R, Scheduler::RunResult::Done);
        if (O.R1 == 1 && O.R2 == 1 && O.R3 == 0)
          ++Bad;
      });
  EXPECT_EQ(Bad, 0u) << "WRC causality violated";
}

TEST(LitmusExtraTest, IriwWeakWithoutScFences) {
  std::set<std::tuple<Value, Value, Value, Value>> Outcomes;
  IriwOut O;
  explore(
      Explorer::Options{},
      [&](Machine &M, Scheduler &S) {
        O = IriwOut();
        Loc X = M.alloc("x"), Y = M.alloc("y");
        Env &E0 = S.newThread();
        S.start(E0, storeOne(E0, X, MemOrder::Release));
        Env &E1 = S.newThread();
        S.start(E1, storeOne(E1, Y, MemOrder::Release));
        Env &E2 = S.newThread();
        S.start(E2, iriwReader(E2, X, Y, false, &O.R1, &O.R2));
        Env &E3 = S.newThread();
        S.start(E3, iriwReader(E3, Y, X, false, &O.R3, &O.R4));
      },
      [&](Machine &, Scheduler &, Scheduler::RunResult R) {
        EXPECT_EQ(R, Scheduler::RunResult::Done);
        Outcomes.insert({O.R1, O.R2, O.R3, O.R4});
      });
  // The readers may disagree on the writes' order: rel/acq is not
  // multi-copy atomic.
  EXPECT_TRUE(Outcomes.count({1, 0, 1, 0}))
      << "IRIW weak outcome must be observable without SC fences";
}

TEST(LitmusExtraTest, IriwForbiddenWithScFences) {
  IriwOut O;
  uint64_t Bad = 0;
  explore(
      Explorer::Options{},
      [&](Machine &M, Scheduler &S) {
        O = IriwOut();
        Loc X = M.alloc("x"), Y = M.alloc("y");
        Env &E0 = S.newThread();
        S.start(E0, storeOne(E0, X, MemOrder::Release));
        Env &E1 = S.newThread();
        S.start(E1, storeOne(E1, Y, MemOrder::Release));
        Env &E2 = S.newThread();
        S.start(E2, iriwReader(E2, X, Y, true, &O.R1, &O.R2));
        Env &E3 = S.newThread();
        S.start(E3, iriwReader(E3, Y, X, true, &O.R3, &O.R4));
      },
      [&](Machine &, Scheduler &, Scheduler::RunResult R) {
        EXPECT_EQ(R, Scheduler::RunResult::Done);
        if (O.R1 == 1 && O.R2 == 0 && O.R3 == 1 && O.R4 == 0)
          ++Bad;
      });
  EXPECT_EQ(Bad, 0u) << "SC fences must restore agreement on write order";
}

namespace {

// Release sequence: T0: x :=na 7; c :=rel 1. T1 (after c >= 1):
// faa(c, rlx), making c = 2. T2 waits for c >= 2 with an acquire read —
// it then observes T1's *relaxed* RMW message, yet must still have
// synchronized with T0's release (release sequences survive RMWs), so
// the na read of x is race-free and yields 7.
Task<void> rsOwner(Env &E, Loc X, Loc C) {
  co_await E.store(X, 7, MemOrder::NonAtomic);
  co_await E.store(C, 1, MemOrder::Release);
}

Task<void> rsBumper(Env &E, Loc C) {
  co_await E.spinUntil(
      C, [](Value W) { return W >= 1; }, MemOrder::Relaxed);
  co_await E.fetchAdd(C, 1, MemOrder::Relaxed);
}

Task<void> rsReader(Env &E, Loc X, Loc C, Value *Got) {
  Value V = co_await E.spinUntil(
      C, [](Value W) { return W >= 2; }, MemOrder::Acquire);
  (void)V;
  *Got = co_await E.load(X, MemOrder::NonAtomic);
}

} // namespace

TEST(LitmusExtraTest, ReleaseSequenceSurvivesRelaxedRmw) {
  Value Got = 0;
  auto Sum = explore(
      Explorer::Options{},
      [&](Machine &M, Scheduler &S) {
        Got = 0;
        Loc X = M.alloc("x"), C = M.alloc("c");
        Env &E0 = S.newThread();
        S.start(E0, rsOwner(E0, X, C));
        Env &E1 = S.newThread();
        S.start(E1, rsBumper(E1, C));
        Env &E2 = S.newThread();
        S.start(E2, rsReader(E2, X, C, &Got));
      },
      [&](Machine &, Scheduler &, Scheduler::RunResult R) {
        EXPECT_EQ(R, Scheduler::RunResult::Done);
        EXPECT_EQ(Got, 7u);
      });
  EXPECT_EQ(Sum.Races, 0u)
      << "release sequence must make the na read race-free";
}

namespace {

Task<void> coWrThread(Env &E, Loc X, Value *R) {
  co_await E.store(X, 1, MemOrder::Relaxed);
  *R = co_await E.load(X, MemOrder::Relaxed);
}

} // namespace

TEST(LitmusExtraTest, CoWRReadsOwnWriteOrNewer) {
  // A thread never reads older than its own last write to a location.
  Value R0 = 0, R1 = 0;
  explore(
      Explorer::Options{},
      [&](Machine &M, Scheduler &S) {
        R0 = R1 = 0;
        Loc X = M.alloc("x");
        Env &E0 = S.newThread();
        S.start(E0, coWrThread(E0, X, &R0));
        Env &E1 = S.newThread();
        S.start(E1, coWrThread(E1, X, &R1));
      },
      [&](Machine &, Scheduler &, Scheduler::RunResult R) {
        EXPECT_EQ(R, Scheduler::RunResult::Done);
        EXPECT_EQ(R0, 1u);
        EXPECT_EQ(R1, 1u);
      });
}

//===----------------------------------------------------------------------===//
// The two-queue pipeline client (Section 2.2's protocol pattern)
//===----------------------------------------------------------------------===//

TEST(PipelineClientTest, ParityAndOrderPreservedAcrossQueues) {
  Explorer::Options Opts;
  Opts.PreemptionBound = 2;
  Opts.MaxExecutions = 300'000;

  std::vector<Value> Odds = {1, 3, 5};
  std::unique_ptr<spec::SpecMonitor> Mon;
  std::unique_ptr<lib::MsQueue> Q1, Q2;
  clients::PipelineOutcome Out;
  uint64_t Checked = 0;

  auto Sum = explore(
      Opts,
      [&](Machine &M, Scheduler &S) {
        Mon = std::make_unique<spec::SpecMonitor>();
        Q1 = std::make_unique<lib::MsQueue>(M, *Mon, "q1");
        Q2 = std::make_unique<lib::MsQueue>(M, *Mon, "q2");
        Out = clients::PipelineOutcome();
        clients::setupPipeline(M, S, *Q1, *Q2, Odds, Out);
      },
      [&](Machine &M, Scheduler &, Scheduler::RunResult R) {
        EXPECT_NE(R, Scheduler::RunResult::Race) << M.raceMessage();
        EXPECT_NE(R, Scheduler::RunResult::Deadlock);
        if (R != Scheduler::RunResult::Done)
          return;
        ++Checked;
        // The protocol invariant: the second queue carries exactly the
        // incremented (even) values, in the producer's order.
        std::vector<Value> Expected = {2, 4, 6};
        EXPECT_EQ(Out.Relayed, Expected);
        EXPECT_EQ(Out.Consumed, Expected);
        for (Value V : Out.Consumed)
          EXPECT_EQ(V % 2, 0u) << "second queue must hold evens only";
      });
  EXPECT_GT(Checked, 0u);
  EXPECT_EQ(Sum.Races, 0u);
}
