//===-- tests/EbrTest.cpp - Epoch-based reclamation tests -------------------===//
//
// Unit tests for the EBR domain and the EBR-backed Treiber stack: epochs
// advance when readers quiesce, pinned readers block reclamation, and —
// the property that distinguishes EBR from the deferred retire list —
// memory is actually freed *while the structure is in use*.
//
//===----------------------------------------------------------------------===//

#include "native/Ebr.h"
#include "native/TreiberStackEbr.h"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <optional>
#include <random>
#include <thread>
#include <vector>

using namespace compass::native;

namespace {

struct Tracked : RetireHook {
  static std::atomic<int> Live;
  int Payload = 0;
  Tracked() { Live.fetch_add(1, std::memory_order_relaxed); }
  ~Tracked() { Live.fetch_sub(1, std::memory_order_relaxed); }
};
std::atomic<int> Tracked::Live{0};

} // namespace

TEST(EbrTest, RetiredNodesFreeAsEpochsTurn) {
  Tracked::Live.store(0);
  {
    EbrDomain<Tracked> D;
    EbrDomain<Tracked>::Participant P(D);
    // No pinned readers: each retire can advance the epoch, so after a
    // few retires the early ones must be gone.
    for (int I = 0; I != 10; ++I)
      D.retire(new Tracked());
    EXPECT_GT(D.epoch(), 0u);
    EXPECT_GT(D.freedApprox(), 0u);
    EXPECT_LT(Tracked::Live.load(), 10);
  }
  // Destructor frees the rest.
  EXPECT_EQ(Tracked::Live.load(), 0);
}

TEST(EbrTest, PinnedReaderBlocksAdvance) {
  Tracked::Live.store(0);
  EbrDomain<Tracked> D;
  EbrDomain<Tracked>::Participant Writer(D);
  EbrDomain<Tracked>::Participant Reader(D);

  uint64_t E0 = D.epoch();
  {
    EbrDomain<Tracked>::Guard G(Reader);
    // Retire while the reader is pinned at the current epoch: the epoch
    // may advance at most... the reader announced the current epoch, so
    // advance is allowed once, then blocked by the stale announcement.
    for (int I = 0; I != 8; ++I)
      D.retire(new Tracked());
    EXPECT_LE(D.epoch(), E0 + 1)
        << "a pinned reader must block repeated epoch advances";
    EXPECT_GE(Tracked::Live.load(), 6)
        << "nodes must not be freed from under a pinned reader";
  }
  // Reader unpinned: retiring now turns epochs freely.
  for (int I = 0; I != 8; ++I)
    D.retire(new Tracked());
  EXPECT_GT(D.freedApprox(), 0u);
}

TEST(EbrTest, ParticipantSlotsRecycle) {
  EbrDomain<Tracked> D;
  for (int Round = 0; Round != 3; ++Round) {
    std::vector<std::unique_ptr<EbrDomain<Tracked>::Participant>> Ps;
    for (unsigned I = 0; I != EbrDomain<Tracked>::MaxParticipants; ++I)
      Ps.push_back(
          std::make_unique<EbrDomain<Tracked>::Participant>(D));
    // All slots used; destroying them releases for the next round.
  }
  SUCCEED();
}

namespace {

/// Shadow announcement table for the grace-period property tests: mirrors
/// which participants are pinned and at which announced epoch. Updated by
/// the (single-threaded) test around Guard lifetimes, read by Probe
/// destructors at the moment the domain frees a node.
struct ShadowSlots {
  std::vector<std::optional<uint64_t>> Announced;
  explicit ShadowSlots(unsigned N) : Announced(N) {}
  bool anyAnnouncedAtOrBelow(uint64_t Epoch) const {
    for (const auto &A : Announced)
      if (A && *A <= Epoch)
        return true;
    return false;
  }
};

ShadowSlots *ActiveShadow = nullptr;

/// A retired node that checks the grace-period invariant in its
/// destructor: when the domain frees it, no participant may still be
/// pinned with an announced epoch <= the node's retire epoch — such a
/// participant could have snapshotted the node before it was unlinked.
struct Probe : RetireHook {
  uint64_t RetireEpoch = 0;
  bool Armed = false;
  ~Probe() {
    if (Armed && ActiveShadow)
      EXPECT_FALSE(ActiveShadow->anyAnnouncedAtOrBelow(RetireEpoch))
          << "node retired at epoch " << RetireEpoch
          << " freed while a reader is still pinned at or before it";
  }
};

} // namespace

TEST(EbrTest, GracePeriodInvariantRandomized) {
  // Property test: drive one domain through a long random schedule of
  // pin/unpin/retire across several participants (single real thread, so
  // the shadow table is exact) and let every freed node assert the
  // grace-period invariant from its destructor.
  constexpr unsigned NumParts = 4;
  ShadowSlots Shadow(NumParts);
  ActiveShadow = &Shadow;
  {
    EbrDomain<Probe> D;
    std::vector<std::unique_ptr<EbrDomain<Probe>::Participant>> Parts;
    for (unsigned I = 0; I != NumParts; ++I)
      Parts.push_back(std::make_unique<EbrDomain<Probe>::Participant>(D));
    std::vector<std::unique_ptr<EbrDomain<Probe>::Guard>> Guards(NumParts);

    std::mt19937_64 Rng(0xEB12);
    for (unsigned Step = 0; Step != 20000; ++Step) {
      unsigned P = Rng() % NumParts;
      switch (Rng() % 3) {
      case 0: // Pin (if unpinned).
        if (!Guards[P]) {
          Guards[P] =
              std::make_unique<EbrDomain<Probe>::Guard>(*Parts[P]);
          // Guard announced the epoch it read; no advance can have
          // interleaved (single thread), so D.epoch() is that epoch.
          Shadow.Announced[P] = D.epoch();
        }
        break;
      case 1: // Unpin.
        if (Guards[P]) {
          Guards[P].reset();
          Shadow.Announced[P] = std::nullopt;
        }
        break;
      case 2: { // Retire; may advance the epoch and free (runs Probe
                // destructors, which check the shadow).
        auto *N = new Probe();
        N->RetireEpoch = D.epoch();
        N->Armed = true;
        D.retire(N);
        break;
      }
      }
    }
    Guards.clear();
    for (auto &A : Shadow.Announced)
      A = std::nullopt;
    // Domain destructor frees the stragglers (all readers unpinned by
    // now, so the invariant holds trivially).
  }
  ActiveShadow = nullptr;
}

TEST(EbrTest, AdvanceRequiresEveryAnnouncementCurrent) {
  // Directed version of the invariant: two readers pinned at epoch E0;
  // retires advance at most once (to E0+1), and the bin holding the
  // E0-retired nodes cannot be freed until *both* readers unpin.
  Tracked::Live.store(0);
  EbrDomain<Tracked> D;
  EbrDomain<Tracked>::Participant A(D);
  EbrDomain<Tracked>::Participant B(D);

  auto GA = std::make_unique<EbrDomain<Tracked>::Guard>(A);
  auto GB = std::make_unique<EbrDomain<Tracked>::Guard>(B);
  uint64_t E0 = D.epoch();
  for (int I = 0; I != 6; ++I)
    D.retire(new Tracked());
  EXPECT_LE(D.epoch(), E0 + 1);
  EXPECT_EQ(Tracked::Live.load(), 6);

  // One reader unpinning is not enough: the other still announces E0.
  GA.reset();
  for (int I = 0; I != 6; ++I)
    D.retire(new Tracked());
  EXPECT_LE(D.epoch(), E0 + 1);
  EXPECT_EQ(Tracked::Live.load(), 12);

  // Both unpinned: epochs turn freely and the early nodes are freed.
  GB.reset();
  for (int I = 0; I != 8; ++I)
    D.retire(new Tracked());
  EXPECT_GT(D.epoch(), E0 + 1);
  EXPECT_GT(D.freedApprox(), 0u);
  EXPECT_LT(Tracked::Live.load(), 20);
}

TEST(RetireListTest, DefersEverythingUntilDrain) {
  // The baseline scheme sim/Ebr.h improves on: nothing is freed before
  // drain(), everything after, and size() counts the pending nodes.
  Tracked::Live.store(0);
  RetireList<Tracked> L;
  for (int I = 0; I != 32; ++I)
    L.retire(new Tracked());
  EXPECT_EQ(L.size(), 32u);
  EXPECT_EQ(Tracked::Live.load(), 32);
  L.drain();
  EXPECT_EQ(L.size(), 0u);
  EXPECT_EQ(Tracked::Live.load(), 0);
}

TEST(RetireListTest, ConcurrentRetireIsLossless) {
  // Many threads retiring concurrently (the lock-free CAS push); a drain
  // at the join point must account for every node exactly once.
  Tracked::Live.store(0);
  RetireList<Tracked> L;
  constexpr unsigned Threads = 4;
  constexpr int PerThread = 5000;
  std::vector<std::thread> Workers;
  for (unsigned W = 0; W != Threads; ++W)
    Workers.emplace_back([&L] {
      for (int I = 0; I != PerThread; ++I)
        L.retire(new Tracked());
    });
  for (auto &T : Workers)
    T.join();
  EXPECT_EQ(L.size(), size_t(Threads) * PerThread);
  EXPECT_EQ(Tracked::Live.load(), int(Threads) * PerThread);
  L.drain();
  EXPECT_EQ(Tracked::Live.load(), 0);
}

TEST(EbrTreiberTest, LifoSingleThread) {
  TreiberStackEbr<uint64_t> S;
  auto H = S.registerThread();
  for (uint64_t I = 1; I <= 4; ++I)
    S.push(H, I);
  for (uint64_t I = 4; I >= 1; --I) {
    auto V = S.pop(H);
    ASSERT_TRUE(V.has_value());
    EXPECT_EQ(*V, I);
  }
  EXPECT_FALSE(S.pop(H).has_value());
}

TEST(EbrTreiberTest, FreesMemoryOnline) {
  TreiberStackEbr<uint64_t> S;
  auto H = S.registerThread();
  for (uint64_t I = 0; I != 1000; ++I) {
    S.push(H, I);
    S.pop(H);
  }
  // The deferred-retire TreiberStack would have 1000 nodes pending here;
  // EBR must have freed the bulk while running.
  EXPECT_GT(S.nodesFreedOnline(), 900u);
  EXPECT_LT(S.nodesPending(), 100u);
  EXPECT_GT(S.epochsTurned(), 100u);
}

TEST(EbrTreiberTest, ConservationUnderContention) {
  TreiberStackEbr<uint64_t> S;
  constexpr unsigned Threads = 4;
  constexpr uint64_t PerThread = 2000;
  std::vector<std::vector<uint64_t>> Got(Threads);

  std::vector<std::thread> Workers;
  for (unsigned W = 0; W != Threads; ++W)
    Workers.emplace_back([&, W] {
      auto H = S.registerThread();
      for (uint64_t I = 1; I <= PerThread; ++I) {
        S.push(H, uint64_t(W) * PerThread + I);
        if (auto V = S.pop(H))
          Got[W].push_back(*V);
      }
    });
  for (auto &T : Workers)
    T.join();

  auto H = S.registerThread();
  while (auto V = S.pop(H))
    Got[0].push_back(*V);

  std::map<uint64_t, int> Seen;
  for (auto &Vs : Got)
    for (uint64_t V : Vs)
      ++Seen[V];
  EXPECT_EQ(Seen.size(), uint64_t(Threads) * PerThread);
  for (auto &[V, N] : Seen)
    EXPECT_EQ(N, 1) << V;
  EXPECT_GT(S.nodesFreedOnline(), 0u);
}

TEST(EbrTreiberTest, PopHeavyReclamationStress) {
  // Dedicated pushers racing dedicated poppers: every pop dereferences a
  // node another thread may be retiring at that instant, so this is the
  // path where a grace-period bug shows up as a use-after-free — run it
  // under TSan/ASan (the CI tsan job includes this suite) to make the
  // reclamation window visible to the sanitizer.
  TreiberStackEbr<uint64_t> S;
  constexpr unsigned Pushers = 2, Poppers = 2;
  constexpr uint64_t PerPusher = 4000;
  std::atomic<uint64_t> Popped{0};
  std::atomic<bool> Done{false};

  std::vector<std::thread> Workers;
  for (unsigned W = 0; W != Pushers; ++W)
    Workers.emplace_back([&, W] {
      auto H = S.registerThread();
      for (uint64_t I = 1; I <= PerPusher; ++I)
        S.push(H, uint64_t(W) * PerPusher + I);
    });
  for (unsigned W = 0; W != Poppers; ++W)
    Workers.emplace_back([&] {
      auto H = S.registerThread();
      while (!Done.load(std::memory_order_acquire)) {
        if (auto V = S.pop(H)) {
          EXPECT_NE(*V, 0u);
          Popped.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  for (unsigned W = 0; W != Pushers; ++W)
    Workers[W].join();
  Done.store(true, std::memory_order_release);
  for (unsigned W = Pushers; W != Workers.size(); ++W)
    Workers[W].join();

  // Drain the remainder and check conservation.
  auto H = S.registerThread();
  uint64_t Rest = 0;
  while (S.pop(H))
    ++Rest;
  EXPECT_EQ(Popped.load() + Rest, uint64_t(Pushers) * PerPusher);
  EXPECT_GT(S.nodesFreedOnline(), 0u)
      << "reclamation must make progress while the stack is contended";
}
