//===-- tests/EbrTest.cpp - Epoch-based reclamation tests -------------------===//
//
// Unit tests for the EBR domain and the EBR-backed Treiber stack: epochs
// advance when readers quiesce, pinned readers block reclamation, and —
// the property that distinguishes EBR from the deferred retire list —
// memory is actually freed *while the structure is in use*.
//
//===----------------------------------------------------------------------===//

#include "native/Ebr.h"
#include "native/TreiberStackEbr.h"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <thread>

using namespace compass::native;

namespace {

struct Tracked : RetireHook {
  static std::atomic<int> Live;
  int Payload = 0;
  Tracked() { Live.fetch_add(1, std::memory_order_relaxed); }
  ~Tracked() { Live.fetch_sub(1, std::memory_order_relaxed); }
};
std::atomic<int> Tracked::Live{0};

} // namespace

TEST(EbrTest, RetiredNodesFreeAsEpochsTurn) {
  Tracked::Live.store(0);
  {
    EbrDomain<Tracked> D;
    EbrDomain<Tracked>::Participant P(D);
    // No pinned readers: each retire can advance the epoch, so after a
    // few retires the early ones must be gone.
    for (int I = 0; I != 10; ++I)
      D.retire(new Tracked());
    EXPECT_GT(D.epoch(), 0u);
    EXPECT_GT(D.freedApprox(), 0u);
    EXPECT_LT(Tracked::Live.load(), 10);
  }
  // Destructor frees the rest.
  EXPECT_EQ(Tracked::Live.load(), 0);
}

TEST(EbrTest, PinnedReaderBlocksAdvance) {
  Tracked::Live.store(0);
  EbrDomain<Tracked> D;
  EbrDomain<Tracked>::Participant Writer(D);
  EbrDomain<Tracked>::Participant Reader(D);

  uint64_t E0 = D.epoch();
  {
    EbrDomain<Tracked>::Guard G(Reader);
    // Retire while the reader is pinned at the current epoch: the epoch
    // may advance at most... the reader announced the current epoch, so
    // advance is allowed once, then blocked by the stale announcement.
    for (int I = 0; I != 8; ++I)
      D.retire(new Tracked());
    EXPECT_LE(D.epoch(), E0 + 1)
        << "a pinned reader must block repeated epoch advances";
    EXPECT_GE(Tracked::Live.load(), 6)
        << "nodes must not be freed from under a pinned reader";
  }
  // Reader unpinned: retiring now turns epochs freely.
  for (int I = 0; I != 8; ++I)
    D.retire(new Tracked());
  EXPECT_GT(D.freedApprox(), 0u);
}

TEST(EbrTest, ParticipantSlotsRecycle) {
  EbrDomain<Tracked> D;
  for (int Round = 0; Round != 3; ++Round) {
    std::vector<std::unique_ptr<EbrDomain<Tracked>::Participant>> Ps;
    for (unsigned I = 0; I != EbrDomain<Tracked>::MaxParticipants; ++I)
      Ps.push_back(
          std::make_unique<EbrDomain<Tracked>::Participant>(D));
    // All slots used; destroying them releases for the next round.
  }
  SUCCEED();
}

TEST(EbrTreiberTest, LifoSingleThread) {
  TreiberStackEbr<uint64_t> S;
  auto H = S.registerThread();
  for (uint64_t I = 1; I <= 4; ++I)
    S.push(H, I);
  for (uint64_t I = 4; I >= 1; --I) {
    auto V = S.pop(H);
    ASSERT_TRUE(V.has_value());
    EXPECT_EQ(*V, I);
  }
  EXPECT_FALSE(S.pop(H).has_value());
}

TEST(EbrTreiberTest, FreesMemoryOnline) {
  TreiberStackEbr<uint64_t> S;
  auto H = S.registerThread();
  for (uint64_t I = 0; I != 1000; ++I) {
    S.push(H, I);
    S.pop(H);
  }
  // The deferred-retire TreiberStack would have 1000 nodes pending here;
  // EBR must have freed the bulk while running.
  EXPECT_GT(S.nodesFreedOnline(), 900u);
  EXPECT_LT(S.nodesPending(), 100u);
  EXPECT_GT(S.epochsTurned(), 100u);
}

TEST(EbrTreiberTest, ConservationUnderContention) {
  TreiberStackEbr<uint64_t> S;
  constexpr unsigned Threads = 4;
  constexpr uint64_t PerThread = 2000;
  std::vector<std::vector<uint64_t>> Got(Threads);

  std::vector<std::thread> Workers;
  for (unsigned W = 0; W != Threads; ++W)
    Workers.emplace_back([&, W] {
      auto H = S.registerThread();
      for (uint64_t I = 1; I <= PerThread; ++I) {
        S.push(H, uint64_t(W) * PerThread + I);
        if (auto V = S.pop(H))
          Got[W].push_back(*V);
      }
    });
  for (auto &T : Workers)
    T.join();

  auto H = S.registerThread();
  while (auto V = S.pop(H))
    Got[0].push_back(*V);

  std::map<uint64_t, int> Seen;
  for (auto &Vs : Got)
    for (uint64_t V : Vs)
      ++Seen[V];
  EXPECT_EQ(Seen.size(), uint64_t(Threads) * PerThread);
  for (auto &[V, N] : Seen)
    EXPECT_EQ(N, 1) << V;
  EXPECT_GT(S.nodesFreedOnline(), 0u);
}
