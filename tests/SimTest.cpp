//===-- tests/SimTest.cpp - Scheduler/Explorer tests and litmus tests ------===//
//
// Validates the simulation kernel: coroutine threads, cooperative
// scheduling, exhaustive exploration, preemption bounding, pruning — and
// the memory model end-to-end through classic litmus tests (MP, SB, CoRR)
// whose allowed/forbidden outcome sets are known for RC11 without load
// buffering.
//
//===----------------------------------------------------------------------===//

#include "sim/Explorer.h"
#include "sim/Scheduler.h"
#include "sim/Task.h"
#include "sim/Workload.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>

using namespace compass;
using namespace compass::rmc;
using namespace compass::sim;

namespace {

Task<void> storeTwice(Env &E, Loc A, Loc B) {
  co_await E.store(A, 1, MemOrder::Relaxed);
  co_await E.store(B, 1, MemOrder::Relaxed);
}

Task<Value> addSub(Env &E, Loc X) {
  Value V = co_await E.load(X, MemOrder::Relaxed);
  co_return V + 1;
}

Task<void> nestedBody(Env &E, Loc X, Value *Out) {
  // Exercises nested task awaiting (continuation chaining).
  auto TA = addSub(E, X);
  Value A = co_await TA;
  auto TB = addSub(E, X);
  Value B = co_await TB;
  *Out = A + B;
}

} // namespace

TEST(SchedulerTest, SingleThreadRunsToCompletion) {
  Explorer Ex;
  ASSERT_TRUE(Ex.beginExecution());
  Machine M(Ex);
  Scheduler S(M, Ex);
  Loc X = M.alloc("x", 1, 20);
  Value Out = 0;
  Env &E0 = S.newThread();
  S.start(E0, nestedBody(E0, X, &Out));
  EXPECT_EQ(S.run(), Scheduler::RunResult::Done);
  EXPECT_EQ(Out, 42u);
  EXPECT_TRUE(S.finished(0));
  Ex.endExecution(Scheduler::RunResult::Done);
}

TEST(ExplorerTest, CountsIndependentInterleavings) {
  // Two threads, two stores each to disjoint locations, no read choices.
  // Each thread takes 3 scheduler steps (launch-to-first-op plus one per
  // store), so the interleavings are C(6,3) = 20.
  auto Sum = explore(
      Explorer::Options{},
      [](Machine &M, Scheduler &S) {
        Loc A = M.alloc("a", 2), B = M.alloc("b", 2);
        Env &E0 = S.newThread();
        S.start(E0, storeTwice(E0, A, A + 1));
        Env &E1 = S.newThread();
        S.start(E1, storeTwice(E1, B, B + 1));
      },
      [](Machine &, Scheduler &, Scheduler::RunResult R) {
        EXPECT_EQ(R, Scheduler::RunResult::Done);
      });
  EXPECT_EQ(Sum.Executions, 20u);
  EXPECT_TRUE(Sum.Exhausted);
  EXPECT_EQ(Sum.Completed, 20u);
}

TEST(ExplorerTest, DeterministicAcrossRepeats) {
  auto Run = [] {
    return explore(
        Explorer::Options{},
        [](Machine &M, Scheduler &S) {
          Loc A = M.alloc("a"), B = M.alloc("b");
          Env &E0 = S.newThread();
          S.start(E0, storeTwice(E0, A, B));
          Env &E1 = S.newThread();
          S.start(E1, storeTwice(E1, B, A));
        },
        [](Machine &, Scheduler &, Scheduler::RunResult) {});
  };
  auto S1 = Run(), S2 = Run();
  EXPECT_EQ(S1.Executions, S2.Executions);
  EXPECT_EQ(S1.MaxDepth, S2.MaxDepth);
  EXPECT_TRUE(S1.Exhausted);
}

//===----------------------------------------------------------------------===//
// Litmus: Message Passing
//===----------------------------------------------------------------------===//

namespace {

struct MpLitmusOut {
  Value Flag = 0, Data = 0;
};

Task<void> mpWriter(Env &E, Loc X, Loc F, MemOrder StoreO) {
  co_await E.store(X, 1, MemOrder::Relaxed);
  co_await E.store(F, 1, StoreO);
}

Task<void> mpReader(Env &E, Loc X, Loc F, MemOrder LoadO, MpLitmusOut &O) {
  O.Flag = co_await E.load(F, LoadO);
  O.Data = co_await E.load(X, MemOrder::Relaxed);
}

std::set<std::pair<Value, Value>> mpOutcomes(MemOrder StoreO,
                                             MemOrder LoadO) {
  std::set<std::pair<Value, Value>> Outcomes;
  MpLitmusOut O;
  explore(
      Explorer::Options{},
      [&](Machine &M, Scheduler &S) {
        O = MpLitmusOut();
        Loc X = M.alloc("x"), F = M.alloc("f");
        Env &E0 = S.newThread();
        S.start(E0, mpWriter(E0, X, F, StoreO));
        Env &E1 = S.newThread();
        S.start(E1, mpReader(E1, X, F, LoadO, O));
      },
      [&](Machine &, Scheduler &, Scheduler::RunResult R) {
        EXPECT_EQ(R, Scheduler::RunResult::Done);
        Outcomes.insert({O.Flag, O.Data});
      });
  return Outcomes;
}

} // namespace

TEST(LitmusTest, MpReleaseAcquireForbidsStaleData) {
  auto Outcomes = mpOutcomes(MemOrder::Release, MemOrder::Acquire);
  EXPECT_FALSE(Outcomes.count({1, 0})) << "rel/acq MP must not lose data";
  EXPECT_TRUE(Outcomes.count({1, 1}));
  EXPECT_TRUE(Outcomes.count({0, 0}));
}

TEST(LitmusTest, MpRelaxedAllowsStaleData) {
  auto Outcomes = mpOutcomes(MemOrder::Relaxed, MemOrder::Relaxed);
  EXPECT_TRUE(Outcomes.count({1, 0}))
      << "relaxed MP must exhibit the weak behaviour";
  EXPECT_TRUE(Outcomes.count({1, 1}));
}

TEST(LitmusTest, MpRelaxedFlagAcquireReadStillWeak) {
  // Release on the store side alone is not enough.
  auto Outcomes = mpOutcomes(MemOrder::Relaxed, MemOrder::Acquire);
  EXPECT_TRUE(Outcomes.count({1, 0}));
}

//===----------------------------------------------------------------------===//
// Litmus: Store Buffering
//===----------------------------------------------------------------------===//

namespace {

struct SbOut {
  Value R0 = ~0ull, R1 = ~0ull;
};

Task<void> sbThread(Env &E, Loc Mine, Loc Theirs, bool WithFence,
                    Value *R) {
  co_await E.store(Mine, 1, MemOrder::Relaxed);
  if (WithFence)
    co_await E.fence(MemOrder::SeqCst);
  *R = co_await E.load(Theirs, MemOrder::Relaxed);
}

std::set<std::pair<Value, Value>> sbOutcomes(bool WithFences) {
  std::set<std::pair<Value, Value>> Outcomes;
  SbOut O;
  explore(
      Explorer::Options{},
      [&](Machine &M, Scheduler &S) {
        O = SbOut();
        Loc X = M.alloc("x"), Y = M.alloc("y");
        Env &E0 = S.newThread();
        S.start(E0, sbThread(E0, X, Y, WithFences, &O.R0));
        Env &E1 = S.newThread();
        S.start(E1, sbThread(E1, Y, X, WithFences, &O.R1));
      },
      [&](Machine &, Scheduler &, Scheduler::RunResult R) {
        EXPECT_EQ(R, Scheduler::RunResult::Done);
        Outcomes.insert({O.R0, O.R1});
      });
  return Outcomes;
}

} // namespace

TEST(LitmusTest, SbRelaxedAllowsBothZero) {
  auto Outcomes = sbOutcomes(false);
  EXPECT_TRUE(Outcomes.count({0, 0}));
  EXPECT_TRUE(Outcomes.count({1, 1}));
}

TEST(LitmusTest, SbScFencesForbidBothZero) {
  auto Outcomes = sbOutcomes(true);
  EXPECT_FALSE(Outcomes.count({0, 0}))
      << "SC fences must forbid the store-buffering outcome";
  EXPECT_TRUE(Outcomes.count({1, 1}) || Outcomes.count({0, 1}) ||
              Outcomes.count({1, 0}));
}

//===----------------------------------------------------------------------===//
// Litmus: coherence (CoRR)
//===----------------------------------------------------------------------===//

namespace {

Task<void> corrWriter(Env &E, Loc X) {
  co_await E.store(X, 1, MemOrder::Relaxed);
  co_await E.store(X, 2, MemOrder::Relaxed);
}

Task<void> corrReader(Env &E, Loc X, Value *R1, Value *R2) {
  *R1 = co_await E.load(X, MemOrder::Relaxed);
  *R2 = co_await E.load(X, MemOrder::Relaxed);
}

} // namespace

TEST(LitmusTest, CoRRNeverReadsBackwards) {
  Value R1 = 0, R2 = 0;
  explore(
      Explorer::Options{},
      [&](Machine &M, Scheduler &S) {
        R1 = R2 = 0;
        Loc X = M.alloc("x");
        Env &E0 = S.newThread();
        S.start(E0, corrWriter(E0, X));
        Env &E1 = S.newThread();
        S.start(E1, corrReader(E1, X, &R1, &R2));
      },
      [&](Machine &, Scheduler &, Scheduler::RunResult) {
        EXPECT_LE(R1, R2) << "coherence violated: read went backwards";
      });
}

//===----------------------------------------------------------------------===//
// spinUntil, prune, deadlock, step limit, preemption bounds
//===----------------------------------------------------------------------===//

namespace {

Task<void> waiter(Env &E, Loc F, Value *Got) {
  *Got = co_await E.spinUntil(
      F, [](Value V) { return V != 0; }, MemOrder::Acquire);
}

Task<void> signaler(Env &E, Loc F) {
  co_await E.store(F, 7, MemOrder::Release);
}

Task<void> eternalSpinner(Env &E, Loc F) {
  co_await E.spinUntil(
      F, [](Value V) { return V != 0; }, MemOrder::Acquire);
}

Task<void> infiniteStores(Env &E, Loc X) {
  for (;;)
    co_await E.store(X, 1, MemOrder::Relaxed);
}

Task<void> selfPruner(Env &E, Loc X) {
  Timestamp Prev = ~0u;
  for (;;) {
    co_await E.load(X, MemOrder::Relaxed);
    Timestamp Ts = E.M.lastReadTs(E.Tid);
    if (Ts == Prev)
      co_await E.prune();
    Prev = Ts;
  }
}

} // namespace

TEST(SchedulerTest, SpinUntilWakesOnSignal) {
  Value Got = 0;
  auto Sum = explore(
      Explorer::Options{},
      [&](Machine &M, Scheduler &S) {
        Got = 0;
        Loc F = M.alloc("f");
        Env &E0 = S.newThread();
        S.start(E0, waiter(E0, F, &Got));
        Env &E1 = S.newThread();
        S.start(E1, signaler(E1, F));
      },
      [&](Machine &, Scheduler &, Scheduler::RunResult R) {
        EXPECT_EQ(R, Scheduler::RunResult::Done);
        EXPECT_EQ(Got, 7u);
      });
  EXPECT_TRUE(Sum.Exhausted);
  EXPECT_GT(Sum.Executions, 0u);
}

TEST(SchedulerTest, UnsatisfiableSpinIsDeadlock) {
  auto Sum = explore(
      Explorer::Options{},
      [&](Machine &M, Scheduler &S) {
        Loc F = M.alloc("f");
        Env &E0 = S.newThread();
        S.start(E0, eternalSpinner(E0, F));
      },
      [&](Machine &, Scheduler &, Scheduler::RunResult R) {
        EXPECT_EQ(R, Scheduler::RunResult::Deadlock);
      });
  EXPECT_EQ(Sum.Deadlocks, Sum.Executions);
}

TEST(SchedulerTest, DivergentThreadHitsStepLimit) {
  Explorer::Options Opts;
  Opts.MaxStepsPerExec = 100;
  auto Sum = explore(
      Opts,
      [&](Machine &M, Scheduler &S) {
        Loc X = M.alloc("x");
        Env &E0 = S.newThread();
        S.start(E0, infiniteStores(E0, X));
      },
      [&](Machine &, Scheduler &, Scheduler::RunResult R) {
        EXPECT_EQ(R, Scheduler::RunResult::StepLimit);
      });
  EXPECT_EQ(Sum.Diverged, Sum.Executions);
  EXPECT_EQ(Sum.Executions, 1u);
}

TEST(SchedulerTest, PruneCutsStutterBranches) {
  auto Sum = explore(
      Explorer::Options{},
      [&](Machine &M, Scheduler &S) {
        Loc X = M.alloc("x");
        Env &E0 = S.newThread();
        S.start(E0, selfPruner(E0, X));
      },
      [&](Machine &, Scheduler &, Scheduler::RunResult R) {
        EXPECT_EQ(R, Scheduler::RunResult::Pruned);
      });
  EXPECT_EQ(Sum.Pruned, Sum.Executions);
  EXPECT_EQ(Sum.Executions, 1u);
  EXPECT_TRUE(Sum.Exhausted);
}

TEST(SchedulerTest, PreemptionBoundZeroRunsThreadsAtomically) {
  Explorer::Options Opts;
  Opts.PreemptionBound = 0;
  auto Sum = explore(
      Opts,
      [&](Machine &M, Scheduler &S) {
        Loc A = M.alloc("a", 2), B = M.alloc("b", 2);
        Env &E0 = S.newThread();
        S.start(E0, storeTwice(E0, A, A + 1));
        Env &E1 = S.newThread();
        S.start(E1, storeTwice(E1, B, B + 1));
      },
      [&](Machine &, Scheduler &, Scheduler::RunResult R) {
        EXPECT_EQ(R, Scheduler::RunResult::Done);
      });
  // Only the initial thread choice branches: T0-first or T1-first.
  EXPECT_EQ(Sum.Executions, 2u);
  EXPECT_TRUE(Sum.Exhausted);
}

TEST(SchedulerTest, PreemptionBoundOrdersSubsetOfUnbounded) {
  auto Count = [](unsigned Bound) {
    Explorer::Options Opts;
    Opts.PreemptionBound = Bound;
    return explore(
               Opts,
               [&](Machine &M, Scheduler &S) {
                 Loc A = M.alloc("a", 2), B = M.alloc("b", 2);
                 Env &E0 = S.newThread();
                 S.start(E0, storeTwice(E0, A, A + 1));
                 Env &E1 = S.newThread();
                 S.start(E1, storeTwice(E1, B, B + 1));
               },
               [](Machine &, Scheduler &, Scheduler::RunResult) {})
        .Executions;
  };
  uint64_t C0 = Count(0), C1 = Count(1), CInf = Count(~0u);
  EXPECT_LT(C0, C1);
  EXPECT_LE(C1, CInf);
  EXPECT_EQ(CInf, 20u);
}

TEST(ExplorerTest, RandomModeRunsRequestedCount) {
  Explorer::Options Opts;
  Opts.ExploreMode = Explorer::Mode::Random;
  Opts.RandomRuns = 37;
  Opts.Seed = 5;
  auto Sum = explore(
      Opts,
      [&](Machine &M, Scheduler &S) {
        Loc A = M.alloc("a"), B = M.alloc("b");
        Env &E0 = S.newThread();
        S.start(E0, storeTwice(E0, A, B));
        Env &E1 = S.newThread();
        S.start(E1, storeTwice(E1, B, A));
      },
      [](Machine &, Scheduler &, Scheduler::RunResult) {});
  EXPECT_EQ(Sum.Executions, 37u);
  EXPECT_FALSE(Sum.Exhausted);
}

TEST(ExplorerTest, RandomModeRecordsReplayableTraces) {
  // Regression: Mode::Random used to discard decisions, so
  // currentDecisions() returned an empty/stale trace and sampled failures
  // were unreproducible. Every sampled run must now be replayable to the
  // identical RunResult and outcome.
  Explorer::Options Opts;
  Opts.ExploreMode = Explorer::Mode::Random;
  Opts.RandomRuns = 40;
  Opts.Seed = 9;
  Explorer Ex(Opts);
  MpLitmusOut O;
  std::vector<std::vector<unsigned>> Traces;
  std::vector<std::pair<Value, Value>> Outcomes;
  std::vector<Scheduler::RunResult> Results;
  while (Ex.beginExecution()) {
    O = MpLitmusOut();
    Machine M(Ex);
    Scheduler S(M, Ex);
    Loc X = M.alloc("x"), F = M.alloc("f");
    Env &E0 = S.newThread();
    S.start(E0, mpWriter(E0, X, F, MemOrder::Relaxed));
    Env &E1 = S.newThread();
    S.start(E1, mpReader(E1, X, F, MemOrder::Relaxed, O));
    auto R = S.run(Opts.MaxStepsPerExec);
    EXPECT_FALSE(Ex.currentDecisions().empty())
        << "random-mode decisions must be recorded";
    Traces.push_back(Ex.currentDecisions());
    Outcomes.push_back({O.Flag, O.Data});
    Results.push_back(R);
    Ex.endExecution(R);
  }
  ASSERT_EQ(Traces.size(), 40u);

  auto Shared = std::make_shared<MpLitmusOut>();
  Workload W(Explorer::Options{}, [Shared](Machine &M, Scheduler &S) {
    *Shared = MpLitmusOut();
    Loc X = M.alloc("x"), F = M.alloc("f");
    Env &E0 = S.newThread();
    S.start(E0, mpWriter(E0, X, F, MemOrder::Relaxed));
    Env &E1 = S.newThread();
    S.start(E1, mpReader(E1, X, F, MemOrder::Relaxed, *Shared));
  });
  for (size_t I = 0; I != Traces.size(); ++I) {
    ReplayResult RR = replay(W, Traces[I]);
    EXPECT_EQ(RR.Run, Results[I]) << "trace " << I;
    EXPECT_FALSE(RR.Diverged) << "trace " << I;
    EXPECT_EQ(Shared->Flag, Outcomes[I].first) << "trace " << I;
    EXPECT_EQ(Shared->Data, Outcomes[I].second) << "trace " << I;
  }
}

TEST(ExplorerTest, FormatTraceNamesTagsAndArities) {
  Explorer Ex;
  ASSERT_TRUE(Ex.beginExecution());
  Machine M(Ex);
  Scheduler S(M, Ex);
  Loc A = M.alloc("a", 2), B = M.alloc("b", 2);
  Env &E0 = S.newThread();
  S.start(E0, storeTwice(E0, A, A + 1));
  Env &E1 = S.newThread();
  S.start(E1, storeTwice(E1, B, B + 1));
  auto R = S.run();
  EXPECT_EQ(R, Scheduler::RunResult::Done);
  std::string Pretty = Ex.formatTrace();
  EXPECT_NE(Pretty.find("#0 sched (2 alts) -> 0"), std::string::npos)
      << Pretty;
  EXPECT_EQ(static_cast<size_t>(
                std::count(Pretty.begin(), Pretty.end(), '\n')),
            Ex.currentDecisions().size());
  Ex.endExecution(R);
}

TEST(ExplorerTest, SummaryStringMentionsCounts) {
  Explorer::Summary Sum;
  Sum.Executions = 3;
  Sum.Exhausted = true;
  std::string Str = Sum.str();
  EXPECT_NE(Str.find("executions=3"), std::string::npos);
  EXPECT_NE(Str.find("exhaustive"), std::string::npos);
}
