//===-- tests/WsDequeTest.cpp - Chase-Lev deque vs. its spec ---------------===//
//
// The paper's Section 6 future-work library, realized and verified: every
// explored execution of the Chase-Lev deque (Lê et al. C11 orderings) is
// checked against WsDequeConsistent, the double-ended abstract-state
// replay, and the SeqSpec::WsDeque linearization search. Also stress-
// tests the native std::atomic twin.
//
//===----------------------------------------------------------------------===//

#include "lib/WsDeque.h"
#include "native/WsDeque.h"
#include "sim/Explorer.h"
#include "spec/Consistency.h"
#include "spec/Linearization.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <thread>

using namespace compass;
using namespace compass::rmc;
using namespace compass::sim;
using namespace compass::spec;
using compass::graph::EmptyVal;
using compass::graph::FailRaceVal;

namespace {

/// Owner: pushes Vs, then performs Takes takes.
Task<void> ownerThread(Env &E, lib::WsDeque &D, std::vector<Value> Vs,
                       unsigned Takes, std::vector<Value> *Out) {
  for (Value V : Vs) {
    auto T = D.push(E, V);
    co_await T;
  }
  for (unsigned I = 0; I != Takes; ++I) {
    auto T = D.take(E);
    Out->push_back(co_await T);
  }
}

/// Owner variant interleaving pushes and takes: push, push, take, push,
/// take, take — exercises bottom going up and down.
Task<void> ownerMixedThread(Env &E, lib::WsDeque &D,
                            std::vector<Value> *Out) {
  auto P1 = D.push(E, 1);
  co_await P1;
  auto P2 = D.push(E, 2);
  co_await P2;
  auto T1 = D.take(E);
  Out->push_back(co_await T1);
  auto P3 = D.push(E, 3);
  co_await P3;
  auto T2 = D.take(E);
  Out->push_back(co_await T2);
  auto T3 = D.take(E);
  Out->push_back(co_await T3);
}

/// Thief: attempts up to N steals (lost races retried as a new attempt).
Task<void> thiefThread(Env &E, lib::WsDeque &D, unsigned N,
                       std::vector<Value> *Out) {
  for (unsigned I = 0; I != N; ++I) {
    auto T = D.steal(E);
    Value V = co_await T;
    if (V != FailRaceVal)
      Out->push_back(V);
  }
}

struct DequeStats {
  uint64_t Checked = 0;
  uint64_t GraphViolations = 0;
  uint64_t AbsViolations = 0;
  uint64_t NoWitness = 0;
  uint64_t Steals = 0;
  std::string FirstViolation;
};

template <typename OwnerFactoryT>
DequeStats exploreDeque(OwnerFactoryT MakeOwner, unsigned Thieves,
                        unsigned StealsPerThief, unsigned Preemptions) {
  Explorer::Options Opts;
  Opts.PreemptionBound = Preemptions;
  Opts.MaxExecutions = 400'000;

  DequeStats Stats;
  std::unique_ptr<SpecMonitor> Mon;
  std::unique_ptr<lib::WsDeque> D;
  std::vector<Value> OwnerGot;
  std::vector<std::vector<Value>> ThiefGot;

  auto Sum = explore(
      Opts,
      [&](Machine &M, Scheduler &S) {
        Mon = std::make_unique<SpecMonitor>();
        D = std::make_unique<lib::WsDeque>(M, *Mon, "d", 16);
        OwnerGot.clear();
        ThiefGot.assign(Thieves, {});
        Env &E0 = S.newThread();
        S.start(E0, MakeOwner(E0, *D, &OwnerGot));
        for (unsigned I = 0; I != Thieves; ++I) {
          Env &E = S.newThread();
          S.start(E, thiefThread(E, *D, StealsPerThief, &ThiefGot[I]));
        }
      },
      [&](Machine &M, Scheduler &, Scheduler::RunResult R) {
        EXPECT_NE(R, Scheduler::RunResult::Race) << M.raceMessage();
        if (R != Scheduler::RunResult::Done)
          return;
        ++Stats.Checked;
        auto GR = checkWsDequeConsistent(Mon->graph(), D->objId());
        if (!GR.ok()) {
          ++Stats.GraphViolations;
          if (Stats.FirstViolation.empty())
            Stats.FirstViolation = GR.str() + Mon->graph().str();
        }
        auto AR = checkWsDequeAbsState(Mon->graph(), D->objId());
        if (!AR.ok()) {
          ++Stats.AbsViolations;
          if (Stats.FirstViolation.empty())
            Stats.FirstViolation = AR.str() + Mon->graph().str();
        }
        auto LR = findLinearization(Mon->graph(), D->objId(),
                                    SeqSpec::WsDeque);
        if (!LR.Found) {
          ++Stats.NoWitness;
          if (Stats.FirstViolation.empty())
            Stats.FirstViolation =
                "no linearization:\n" + Mon->graph().str();
        }
        for (auto &Vs : ThiefGot)
          for (Value V : Vs)
            if (V != EmptyVal)
              ++Stats.Steals;
      });
  EXPECT_GT(Sum.Executions, 0u);
  EXPECT_EQ(Sum.Races, 0u);
  return Stats;
}

} // namespace

TEST(WsDequeSimTest, OwnerOnlyLifo) {
  auto Stats = exploreDeque(
      [](Env &E, lib::WsDeque &D, std::vector<Value> *Out) {
        return ownerThread(E, D, {1, 2, 3}, 3, Out);
      },
      /*Thieves=*/0, 0, ~0u);
  EXPECT_GT(Stats.Checked, 0u);
  EXPECT_EQ(Stats.GraphViolations, 0u) << Stats.FirstViolation;
  EXPECT_EQ(Stats.AbsViolations, 0u) << Stats.FirstViolation;
  EXPECT_EQ(Stats.NoWitness, 0u) << Stats.FirstViolation;
}

TEST(WsDequeSimTest, OwnerAndOneThief) {
  auto Stats = exploreDeque(
      [](Env &E, lib::WsDeque &D, std::vector<Value> *Out) {
        return ownerThread(E, D, {1, 2}, 2, Out);
      },
      /*Thieves=*/1, 2, 2);
  EXPECT_GT(Stats.Checked, 0u);
  EXPECT_EQ(Stats.GraphViolations, 0u) << Stats.FirstViolation;
  EXPECT_EQ(Stats.AbsViolations, 0u) << Stats.FirstViolation;
  EXPECT_EQ(Stats.NoWitness, 0u) << Stats.FirstViolation;
  EXPECT_GT(Stats.Steals, 0u) << "stealing must be reachable";
}

TEST(WsDequeSimTest, LastElementRaceConsistent) {
  // One element, owner takes while a thief steals: exactly one wins.
  auto Stats = exploreDeque(
      [](Env &E, lib::WsDeque &D, std::vector<Value> *Out) {
        return ownerThread(E, D, {7}, 1, Out);
      },
      /*Thieves=*/1, 1, ~0u);
  EXPECT_GT(Stats.Checked, 0u);
  EXPECT_EQ(Stats.GraphViolations, 0u) << Stats.FirstViolation;
  EXPECT_EQ(Stats.AbsViolations, 0u) << Stats.FirstViolation;
  EXPECT_EQ(Stats.NoWitness, 0u) << Stats.FirstViolation;
}

TEST(WsDequeSimTest, MixedOwnerWithThief) {
  auto Stats = exploreDeque(
      [](Env &E, lib::WsDeque &D, std::vector<Value> *Out) {
        return ownerMixedThread(E, D, Out);
      },
      /*Thieves=*/1, 1, 2);
  EXPECT_GT(Stats.Checked, 0u);
  EXPECT_EQ(Stats.GraphViolations, 0u) << Stats.FirstViolation;
  EXPECT_EQ(Stats.AbsViolations, 0u) << Stats.FirstViolation;
  EXPECT_EQ(Stats.NoWitness, 0u) << Stats.FirstViolation;
}

TEST(WsDequeSimTest, TwoThievesConsistent) {
  auto Stats = exploreDeque(
      [](Env &E, lib::WsDeque &D, std::vector<Value> *Out) {
        return ownerThread(E, D, {1, 2}, 0, Out);
      },
      /*Thieves=*/2, 1, 2);
  EXPECT_GT(Stats.Checked, 0u);
  EXPECT_EQ(Stats.GraphViolations, 0u) << Stats.FirstViolation;
  EXPECT_EQ(Stats.AbsViolations, 0u) << Stats.FirstViolation;
  EXPECT_EQ(Stats.NoWitness, 0u) << Stats.FirstViolation;
  EXPECT_GT(Stats.Steals, 0u);
}

//===----------------------------------------------------------------------===//
// Native twin
//===----------------------------------------------------------------------===//

TEST(WsDequeNativeTest, OwnerLifoSingleThread) {
  native::WsDeque<uint64_t> D(8);
  EXPECT_FALSE(D.take().has_value());
  for (uint64_t I = 1; I <= 3; ++I)
    EXPECT_TRUE(D.push(I));
  for (uint64_t I = 3; I >= 1; --I) {
    auto V = D.take();
    ASSERT_TRUE(V.has_value());
    EXPECT_EQ(*V, I);
  }
  EXPECT_FALSE(D.take().has_value());
}

TEST(WsDequeNativeTest, StealsComeFromTheTop) {
  native::WsDeque<uint64_t> D(8);
  for (uint64_t I = 1; I <= 3; ++I)
    D.push(I);
  uint64_t Out = 0;
  ASSERT_EQ(D.steal(Out), native::WsDeque<uint64_t>::StealResult::Ok);
  EXPECT_EQ(Out, 1u); // Oldest first.
  ASSERT_EQ(D.steal(Out), native::WsDeque<uint64_t>::StealResult::Ok);
  EXPECT_EQ(Out, 2u);
  auto V = D.take();
  ASSERT_TRUE(V.has_value());
  EXPECT_EQ(*V, 3u);
  EXPECT_EQ(D.steal(Out), native::WsDeque<uint64_t>::StealResult::Empty);
}

TEST(WsDequeNativeTest, FullRingRejectsPush) {
  native::WsDeque<uint64_t> D(2);
  EXPECT_TRUE(D.push(1));
  EXPECT_TRUE(D.push(2));
  EXPECT_FALSE(D.push(3));
  D.take();
  EXPECT_TRUE(D.push(3));
}

TEST(WsDequeNativeTest, OwnerThiefConservationStress) {
  native::WsDeque<uint64_t> D(1024);
  constexpr uint64_t N = 20'000;
  std::map<uint64_t, int> Seen;
  std::atomic<bool> OwnerDone{false};
  std::atomic<uint64_t> Consumed{0};
  std::vector<uint64_t> OwnerGot, ThiefGot;

  std::thread Owner([&] {
    uint64_t Next = 1;
    while (Next <= N) {
      if (D.push(Next)) {
        ++Next;
        continue;
      }
      if (auto V = D.take()) // Ring full: drain one.
        OwnerGot.push_back(*V);
    }
    while (auto V = D.take())
      OwnerGot.push_back(*V);
    OwnerDone.store(true, std::memory_order_release);
  });
  std::thread Thief([&] {
    uint64_t Out = 0;
    for (;;) {
      auto R = D.steal(Out);
      if (R == native::WsDeque<uint64_t>::StealResult::Ok) {
        ThiefGot.push_back(Out);
        continue;
      }
      if (OwnerDone.load(std::memory_order_acquire) &&
          R == native::WsDeque<uint64_t>::StealResult::Empty)
        break;
      std::this_thread::yield();
    }
  });
  Owner.join();
  Thief.join();
  // A final drain in case the thief exited while the owner requeued.
  while (auto V = D.take())
    OwnerGot.push_back(*V);

  for (uint64_t V : OwnerGot)
    ++Seen[V];
  for (uint64_t V : ThiefGot)
    ++Seen[V];
  EXPECT_EQ(Seen.size(), N) << "values lost";
  for (auto &[V, C] : Seen)
    EXPECT_EQ(C, 1) << "value " << V << " duplicated";
  ++Consumed; // Silence unused in release.
}
