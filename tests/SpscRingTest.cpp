//===-- tests/SpscRingTest.cpp - SPSC ring buffer vs. its spec --------------===//
//
// The Lamport SPSC ring: a CAS-free algorithm whose entire correctness is
// release/acquire index handoff over non-atomic slots. The model checker
// validates QueueConsistent + abstract state on every execution, and —
// the distinctive part — the race detector acts as the safety oracle for
// the slot ownership transfer, including across wrap-around reuse.
//
//===----------------------------------------------------------------------===//

#include "lib/SpscRing.h"
#include "native/SpscRing.h"
#include "sim/Explorer.h"
#include "spec/Consistency.h"
#include "spec/Linearization.h"

#include <gtest/gtest.h>

#include <memory>
#include <thread>

using namespace compass;
using namespace compass::rmc;
using namespace compass::sim;
using namespace compass::spec;
using compass::graph::EmptyVal;

namespace {

Task<void> ringProducer(Env &E, lib::SpscRing &Q, std::vector<Value> Vs) {
  for (Value V : Vs) {
    auto T = Q.enqueueBlocking(E, V);
    co_await T;
  }
}

Task<void> ringConsumer(Env &E, lib::SpscRing &Q, unsigned Blocking,
                        unsigned NonBlocking, std::vector<Value> *Out) {
  for (unsigned I = 0; I != Blocking; ++I) {
    auto T = Q.dequeueBlocking(E);
    Out->push_back(co_await T);
  }
  for (unsigned I = 0; I != NonBlocking; ++I) {
    auto T = Q.dequeue(E);
    Out->push_back(co_await T);
  }
}

struct RingStats {
  uint64_t Checked = 0;
  uint64_t GraphViolations = 0;
  uint64_t AbsViolations = 0;
  uint64_t Races = 0;
  std::string FirstViolation;
};

RingStats exploreRing(unsigned Capacity, std::vector<Value> Items,
                      unsigned BlockingDeqs, unsigned NonBlockingDeqs,
                      unsigned Preemptions = ~0u) {
  Explorer::Options Opts;
  Opts.PreemptionBound = Preemptions;
  Opts.MaxExecutions = 400'000;

  RingStats Stats;
  std::unique_ptr<SpecMonitor> Mon;
  std::unique_ptr<lib::SpscRing> Q;
  std::vector<Value> Got;

  auto Sum = explore(
      Opts,
      [&](Machine &M, Scheduler &S) {
        Mon = std::make_unique<SpecMonitor>();
        Q = std::make_unique<lib::SpscRing>(M, *Mon, "r", Capacity);
        Got.clear();
        Env &E0 = S.newThread();
        S.start(E0, ringProducer(E0, *Q, Items));
        Env &E1 = S.newThread();
        S.start(E1,
                ringConsumer(E1, *Q, BlockingDeqs, NonBlockingDeqs, &Got));
      },
      [&](Machine &M, Scheduler &, Scheduler::RunResult R) {
        EXPECT_NE(R, Scheduler::RunResult::Deadlock);
        if (R == Scheduler::RunResult::Race &&
            Stats.FirstViolation.empty())
          Stats.FirstViolation = M.raceMessage();
        if (R != Scheduler::RunResult::Done)
          return;
        ++Stats.Checked;
        auto GR = checkQueueConsistent(Mon->graph(), Q->objId());
        if (!GR.ok()) {
          ++Stats.GraphViolations;
          if (Stats.FirstViolation.empty())
            Stats.FirstViolation = GR.str() + Mon->graph().str();
        }
        if (!checkQueueAbsState(Mon->graph(), Q->objId()).ok())
          ++Stats.AbsViolations;
      });
  Stats.Races = Sum.Races;
  EXPECT_GT(Sum.Executions, 0u);
  return Stats;
}

} // namespace

TEST(SpscRingSimTest, BasicHandoffRaceFreeAndConsistent) {
  auto Stats = exploreRing(/*Capacity=*/2, {1, 2}, /*Blocking=*/2,
                           /*NonBlocking=*/1);
  EXPECT_GT(Stats.Checked, 0u);
  EXPECT_EQ(Stats.Races, 0u) << Stats.FirstViolation;
  EXPECT_EQ(Stats.GraphViolations, 0u) << Stats.FirstViolation;
  EXPECT_EQ(Stats.AbsViolations, 0u);
}

TEST(SpscRingSimTest, WrapAroundSlotReuseRaceFree) {
  // Capacity 1 with three items: every slot is reused twice, so the
  // producer's na write lands on a cell the consumer just read — the
  // handoff through head's release/acquire must cover it.
  auto Stats = exploreRing(/*Capacity=*/1, {1, 2, 3}, /*Blocking=*/3,
                           /*NonBlocking=*/0);
  EXPECT_GT(Stats.Checked, 0u);
  EXPECT_EQ(Stats.Races, 0u) << Stats.FirstViolation;
  EXPECT_EQ(Stats.GraphViolations, 0u) << Stats.FirstViolation;
  EXPECT_EQ(Stats.AbsViolations, 0u);
}

TEST(SpscRingSimTest, NonBlockingEmptyDequeuesConsistent) {
  auto Stats = exploreRing(/*Capacity=*/2, {1}, /*Blocking=*/1,
                           /*NonBlocking=*/2);
  EXPECT_GT(Stats.Checked, 0u);
  EXPECT_EQ(Stats.Races, 0u) << Stats.FirstViolation;
  EXPECT_EQ(Stats.GraphViolations, 0u) << Stats.FirstViolation;
}

//===----------------------------------------------------------------------===//
// Native twin
//===----------------------------------------------------------------------===//

TEST(SpscRingNativeTest, FifoSingleThread) {
  native::SpscRing<uint64_t> Q(2);
  EXPECT_FALSE(Q.dequeue().has_value());
  EXPECT_TRUE(Q.tryEnqueue(1));
  EXPECT_TRUE(Q.tryEnqueue(2));
  EXPECT_FALSE(Q.tryEnqueue(3)) << "full ring must reject";
  EXPECT_EQ(*Q.dequeue(), 1u);
  EXPECT_TRUE(Q.tryEnqueue(3)); // Wrap-around.
  EXPECT_EQ(*Q.dequeue(), 2u);
  EXPECT_EQ(*Q.dequeue(), 3u);
  EXPECT_FALSE(Q.dequeue().has_value());
}

TEST(SpscRingNativeTest, PipelinePreservesOrder) {
  native::SpscRing<uint64_t> Q(64);
  constexpr uint64_t N = 50'000;
  std::vector<uint64_t> Seen;
  Seen.reserve(N);
  std::thread Producer([&] {
    for (uint64_t I = 1; I <= N;) {
      if (Q.tryEnqueue(I))
        ++I;
      else
        std::this_thread::yield(); // Single-core host: let the consumer run.
    }
  });
  std::thread Consumer([&] {
    while (Seen.size() < N) {
      if (auto V = Q.dequeue())
        Seen.push_back(*V);
      else
        std::this_thread::yield();
    }
  });
  Producer.join();
  Consumer.join();
  ASSERT_EQ(Seen.size(), N);
  for (uint64_t I = 0; I != N; ++I)
    ASSERT_EQ(Seen[I], I + 1);
}
