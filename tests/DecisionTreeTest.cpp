//===-- tests/DecisionTreeTest.cpp - DFS frontier unit tests --------------===//
//
// Unit tests for the pure search-state half of the model checker: replay /
// extend / backtrack bookkeeping, seeded subtree enumeration, and the
// splitting invariant the parallel explorer relies on — the set of decision
// sequences enumerated by a tree equals the disjoint union of the sequences
// enumerated after any series of splits.
//
//===----------------------------------------------------------------------===//

#include "sim/DecisionTree.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <set>
#include <vector>

using namespace compass;
using namespace compass::sim;

namespace {

/// A deterministic "program" for the tree to search: given the decisions
/// taken so far, returns the arity of the next choice point, or 0 when the
/// execution ends. This stands in for Machine+Scheduler.
using Program = std::function<unsigned(const std::vector<unsigned> &)>;

/// Runs one execution of \p P against \p T.
void runOne(DecisionTree &T, const Program &P) {
  T.beginExecution();
  std::vector<unsigned> Path;
  for (;;) {
    unsigned Arity = P(Path);
    if (Arity == 0)
      break;
    Path.push_back(T.next(Arity, "t"));
  }
}

/// Enumerates every execution of \p P in tree \p T; returns the leaves in
/// visit order.
std::vector<std::vector<unsigned>> enumerate(DecisionTree T,
                                             const Program &P) {
  std::vector<std::vector<unsigned>> Leaves;
  if (T.exhausted())
    return Leaves;
  for (;;) {
    runOne(T, P);
    Leaves.push_back(T.decisions());
    if (!T.advance())
      break;
  }
  EXPECT_TRUE(T.exhausted());
  return Leaves;
}

/// Enumerates \p P while randomly splitting off subtrees, exploring the
/// donated prefixes recursively. Collects all leaves (in scrambled order).
void enumerateWithSplits(DecisionTree T, const Program &P, Rng &R,
                         std::vector<std::vector<unsigned>> &Out) {
  if (T.exhausted())
    return;
  for (;;) {
    runOne(T, P);
    Out.push_back(T.decisions());
    bool More = T.advance();
    if (!More)
      break;
    if (T.splittable() && R.chance(1, 3)) {
      for (DecisionTree::Prefix &Pre :
           T.split(static_cast<size_t>(1 + R.below(3))))
        enumerateWithSplits(DecisionTree(std::move(Pre)), P, R, Out);
    }
  }
}

/// Uniform tree: \p Arities[d] alternatives at depth d.
Program uniform(std::vector<unsigned> Arities) {
  return [Arities = std::move(Arities)](const std::vector<unsigned> &Path) {
    return Path.size() < Arities.size() ? Arities[Path.size()] : 0u;
  };
}

/// A lopsided program: the first decision (3 alternatives) selects how deep
/// the rest of the execution is, so subtree sizes differ per branch.
unsigned lopsided(const std::vector<unsigned> &Path) {
  if (Path.empty())
    return 3;
  unsigned Depth = 1 + Path[0]; // branch b gets b+1 further decisions
  if (Path.size() <= Depth)
    return 2;
  return 0;
}

} // namespace

TEST(DecisionTreeTest, EnumeratesUniformTreeInLexOrder) {
  auto Leaves = enumerate(DecisionTree(), uniform({2, 3, 2}));
  ASSERT_EQ(Leaves.size(), 12u);
  EXPECT_EQ(Leaves.front(), (std::vector<unsigned>{0, 0, 0}));
  EXPECT_EQ(Leaves.back(), (std::vector<unsigned>{1, 2, 1}));
  EXPECT_TRUE(std::is_sorted(Leaves.begin(), Leaves.end()));
  EXPECT_EQ(std::set<std::vector<unsigned>>(Leaves.begin(), Leaves.end())
                .size(),
            12u);
}

TEST(DecisionTreeTest, EnumeratesLopsidedTree) {
  // Branch 0: 2^1 leaves, branch 1: 2^2, branch 2: 2^3 -> 14 total.
  auto Leaves = enumerate(DecisionTree(), lopsided);
  EXPECT_EQ(Leaves.size(), 14u);
  EXPECT_TRUE(std::is_sorted(Leaves.begin(), Leaves.end()));
}

TEST(DecisionTreeTest, ReplayCursorTracksRecordedPrefix) {
  DecisionTree T;
  runOne(T, uniform({2, 2}));
  EXPECT_EQ(T.depth(), 2u);
  EXPECT_EQ(T.frontierSize(), 2u); // one untried alternative per level
  ASSERT_TRUE(T.advance());
  // After backtracking, the retained prefix replays and the last decision
  // advanced to its sibling.
  T.beginExecution();
  EXPECT_TRUE(T.replaying());
  EXPECT_EQ(T.next(2, "t"), 0u);
  EXPECT_EQ(T.next(2, "t"), 1u);
  EXPECT_FALSE(T.replaying());
}

TEST(DecisionTreeTest, AdvanceDiscardsExhaustedSuffix) {
  DecisionTree T;
  runOne(T, uniform({2, 1, 2}));
  ASSERT_TRUE(T.advance());
  EXPECT_EQ(T.decisions(), (std::vector<unsigned>{0, 0, 1}));
  ASSERT_TRUE(T.advance());
  // Depth-2 and depth-1 nodes exhausted; the root advances and the suffix
  // is discarded.
  EXPECT_EQ(T.decisions(), (std::vector<unsigned>{1}));
  runOne(T, uniform({2, 1, 2}));
  ASSERT_TRUE(T.advance());
  EXPECT_EQ(T.decisions(), (std::vector<unsigned>{1, 0, 1}));
  runOne(T, uniform({2, 1, 2}));
  EXPECT_FALSE(T.advance());
  EXPECT_TRUE(T.exhausted());
}

TEST(DecisionTreeTest, SeededTreeEnumeratesExactlyItsSubtree) {
  auto P = uniform({3, 2, 2});
  // Build the seed for subtree {1, *, *} the way split() would: pinned
  // decisions.
  DecisionTree::Prefix Seed{{1, 2, 3, "t"}};
  auto Leaves = enumerate(DecisionTree(std::move(Seed)), P);
  ASSERT_EQ(Leaves.size(), 4u);
  for (const auto &L : Leaves) {
    ASSERT_EQ(L.size(), 3u);
    EXPECT_EQ(L[0], 1u);
  }
  EXPECT_EQ(Leaves.front(), (std::vector<unsigned>{1, 0, 0}));
  EXPECT_EQ(Leaves.back(), (std::vector<unsigned>{1, 1, 1}));
}

TEST(DecisionTreeTest, SplitDonatesShallowestAlternativesAndKeepsPath) {
  DecisionTree T;
  runOne(T, uniform({3, 2}));
  ASSERT_TRUE(T.advance()); // path {0,1}
  ASSERT_TRUE(T.splittable());
  auto Donated = T.split(8);
  // Shallowest open node is the root (alternatives 1 and 2 untried).
  ASSERT_EQ(Donated.size(), 2u);
  EXPECT_EQ(Donated[0].back().Chosen, 1u);
  EXPECT_EQ(Donated[1].back().Chosen, 2u);
  for (const auto &Pre : Donated) {
    EXPECT_EQ(Pre.size(), 1u);
    EXPECT_EQ(Pre.back().Limit, Pre.back().Chosen + 1);
    EXPECT_EQ(Pre.back().Count, 3u);
  }
  // The donor keeps its current path and no longer owns the donated
  // alternatives.
  EXPECT_EQ(T.decisions(), (std::vector<unsigned>{0, 1}));
  EXPECT_FALSE(T.splittable());
  // Donor finishes just its remaining branch.
  runOne(T, uniform({3, 2}));
  EXPECT_FALSE(T.advance());
}

TEST(DecisionTreeTest, SplitRespectsDonationCap) {
  DecisionTree T;
  runOne(T, uniform({4}));
  ASSERT_TRUE(T.advance()); // path {1}; untried {2, 3}
  auto Donated = T.split(1);
  ASSERT_EQ(Donated.size(), 1u);
  // The highest alternative goes first so the donor's range stays
  // contiguous.
  EXPECT_EQ(Donated[0].back().Chosen, 3u);
  EXPECT_TRUE(T.splittable()); // alternative 2 still owned by the donor
}

TEST(DecisionTreeTest, SplittingPartitionsTheLeafSet) {
  for (uint64_t Seed = 1; Seed <= 8; ++Seed) {
    Rng R(Seed);
    std::vector<std::vector<unsigned>> Split;
    enumerateWithSplits(DecisionTree(), lopsided, R, Split);
    auto Serial = enumerate(DecisionTree(), lopsided);
    ASSERT_EQ(Split.size(), Serial.size()) << "seed " << Seed;
    std::sort(Split.begin(), Split.end());
    // Serial DFS enumerates in sorted (lexicographic) order already.
    EXPECT_EQ(Split, Serial) << "seed " << Seed;
  }
}

TEST(DecisionTreeTest, SplittingPartitionsUniformTreeLeafSet) {
  auto P = uniform({2, 3, 2, 2});
  auto Serial = enumerate(DecisionTree(), P);
  ASSERT_EQ(Serial.size(), 24u);
  for (uint64_t Seed = 11; Seed <= 14; ++Seed) {
    Rng R(Seed);
    std::vector<std::vector<unsigned>> Split;
    enumerateWithSplits(DecisionTree(), P, R, Split);
    std::sort(Split.begin(), Split.end());
    EXPECT_EQ(Split, Serial) << "seed " << Seed;
  }
}

#if GTEST_HAS_DEATH_TEST
TEST(DecisionTreeDeathTest, ArityChangeDuringReplayIsFatal) {
  DecisionTree T;
  runOne(T, uniform({2, 2}));
  ASSERT_TRUE(T.advance());
  T.beginExecution();
  EXPECT_DEATH(T.next(3, "t"), "nondeterministic replay");
}
#endif
