//===-- tests/DecisionTreeTest.cpp - DFS frontier unit tests --------------===//
//
// Unit tests for the pure search-state half of the model checker: replay /
// extend / backtrack bookkeeping, seeded subtree enumeration, and the
// splitting invariant the parallel explorer relies on — the set of decision
// sequences enumerated by a tree equals the disjoint union of the sequences
// enumerated after any series of splits.
//
//===----------------------------------------------------------------------===//

#include "sim/DecisionTree.h"
#include "sim/Reduction.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <set>
#include <vector>

using namespace compass;
using namespace compass::sim;

namespace {

/// A deterministic "program" for the tree to search: given the decisions
/// taken so far, returns the arity of the next choice point, or 0 when the
/// execution ends. This stands in for Machine+Scheduler.
using Program = std::function<unsigned(const std::vector<unsigned> &)>;

/// Runs one execution of \p P against \p T.
void runOne(DecisionTree &T, const Program &P) {
  T.beginExecution();
  std::vector<unsigned> Path;
  for (;;) {
    unsigned Arity = P(Path);
    if (Arity == 0)
      break;
    Path.push_back(T.next(Arity, "t"));
  }
}

/// Enumerates every execution of \p P in tree \p T; returns the leaves in
/// visit order.
std::vector<std::vector<unsigned>> enumerate(DecisionTree T,
                                             const Program &P) {
  std::vector<std::vector<unsigned>> Leaves;
  if (T.exhausted())
    return Leaves;
  for (;;) {
    runOne(T, P);
    Leaves.push_back(T.decisions());
    if (!T.advance())
      break;
  }
  EXPECT_TRUE(T.exhausted());
  return Leaves;
}

/// Enumerates \p P while randomly splitting off subtrees, exploring the
/// donated prefixes recursively. Collects all leaves (in scrambled order).
void enumerateWithSplits(DecisionTree T, const Program &P, Rng &R,
                         std::vector<std::vector<unsigned>> &Out) {
  if (T.exhausted())
    return;
  for (;;) {
    runOne(T, P);
    Out.push_back(T.decisions());
    bool More = T.advance();
    if (!More)
      break;
    if (T.splittable() && R.chance(1, 3)) {
      for (DecisionTree::Prefix &Pre :
           T.split(static_cast<size_t>(1 + R.below(3))))
        enumerateWithSplits(DecisionTree(std::move(Pre)), P, R, Out);
    }
  }
}

/// Uniform tree: \p Arities[d] alternatives at depth d.
Program uniform(std::vector<unsigned> Arities) {
  return [Arities = std::move(Arities)](const std::vector<unsigned> &Path) {
    return Path.size() < Arities.size() ? Arities[Path.size()] : 0u;
  };
}

/// A lopsided program: the first decision (3 alternatives) selects how deep
/// the rest of the execution is, so subtree sizes differ per branch.
unsigned lopsided(const std::vector<unsigned> &Path) {
  if (Path.empty())
    return 3;
  unsigned Depth = 1 + Path[0]; // branch b gets b+1 further decisions
  if (Path.size() <= Depth)
    return 2;
  return 0;
}

} // namespace

TEST(DecisionTreeTest, EnumeratesUniformTreeInLexOrder) {
  auto Leaves = enumerate(DecisionTree(), uniform({2, 3, 2}));
  ASSERT_EQ(Leaves.size(), 12u);
  EXPECT_EQ(Leaves.front(), (std::vector<unsigned>{0, 0, 0}));
  EXPECT_EQ(Leaves.back(), (std::vector<unsigned>{1, 2, 1}));
  EXPECT_TRUE(std::is_sorted(Leaves.begin(), Leaves.end()));
  EXPECT_EQ(std::set<std::vector<unsigned>>(Leaves.begin(), Leaves.end())
                .size(),
            12u);
}

TEST(DecisionTreeTest, EnumeratesLopsidedTree) {
  // Branch 0: 2^1 leaves, branch 1: 2^2, branch 2: 2^3 -> 14 total.
  auto Leaves = enumerate(DecisionTree(), lopsided);
  EXPECT_EQ(Leaves.size(), 14u);
  EXPECT_TRUE(std::is_sorted(Leaves.begin(), Leaves.end()));
}

TEST(DecisionTreeTest, ReplayCursorTracksRecordedPrefix) {
  DecisionTree T;
  runOne(T, uniform({2, 2}));
  EXPECT_EQ(T.depth(), 2u);
  EXPECT_EQ(T.frontierSize(), 2u); // one untried alternative per level
  ASSERT_TRUE(T.advance());
  // After backtracking, the retained prefix replays and the last decision
  // advanced to its sibling.
  T.beginExecution();
  EXPECT_TRUE(T.replaying());
  EXPECT_EQ(T.next(2, "t"), 0u);
  EXPECT_EQ(T.next(2, "t"), 1u);
  EXPECT_FALSE(T.replaying());
}

TEST(DecisionTreeTest, AdvanceDiscardsExhaustedSuffix) {
  DecisionTree T;
  runOne(T, uniform({2, 1, 2}));
  ASSERT_TRUE(T.advance());
  EXPECT_EQ(T.decisions(), (std::vector<unsigned>{0, 0, 1}));
  ASSERT_TRUE(T.advance());
  // Depth-2 and depth-1 nodes exhausted; the root advances and the suffix
  // is discarded.
  EXPECT_EQ(T.decisions(), (std::vector<unsigned>{1}));
  runOne(T, uniform({2, 1, 2}));
  ASSERT_TRUE(T.advance());
  EXPECT_EQ(T.decisions(), (std::vector<unsigned>{1, 0, 1}));
  runOne(T, uniform({2, 1, 2}));
  EXPECT_FALSE(T.advance());
  EXPECT_TRUE(T.exhausted());
}

TEST(DecisionTreeTest, SeededTreeEnumeratesExactlyItsSubtree) {
  auto P = uniform({3, 2, 2});
  // Build the seed for subtree {1, *, *} the way split() would: pinned
  // decisions.
  DecisionTree::Prefix Seed;
  Seed.Path = {{1, 2, 3, "t"}};
  auto Leaves = enumerate(DecisionTree(std::move(Seed)), P);
  ASSERT_EQ(Leaves.size(), 4u);
  for (const auto &L : Leaves) {
    ASSERT_EQ(L.size(), 3u);
    EXPECT_EQ(L[0], 1u);
  }
  EXPECT_EQ(Leaves.front(), (std::vector<unsigned>{1, 0, 0}));
  EXPECT_EQ(Leaves.back(), (std::vector<unsigned>{1, 1, 1}));
}

TEST(DecisionTreeTest, SplitDonatesShallowestAlternativesAndKeepsPath) {
  DecisionTree T;
  runOne(T, uniform({3, 2}));
  ASSERT_TRUE(T.advance()); // path {0,1}
  ASSERT_TRUE(T.splittable());
  auto Donated = T.split(8);
  // Shallowest open node is the root (alternatives 1 and 2 untried).
  ASSERT_EQ(Donated.size(), 2u);
  EXPECT_EQ(Donated[0].Path.back().Chosen, 1u);
  EXPECT_EQ(Donated[1].Path.back().Chosen, 2u);
  for (const auto &Pre : Donated) {
    EXPECT_EQ(Pre.Path.size(), 1u);
    EXPECT_EQ(Pre.Path.back().Limit, Pre.Path.back().Chosen + 1);
    EXPECT_EQ(Pre.Path.back().Count, 3u);
  }
  // The donor keeps its current path and no longer owns the donated
  // alternatives.
  EXPECT_EQ(T.decisions(), (std::vector<unsigned>{0, 1}));
  EXPECT_FALSE(T.splittable());
  // Donor finishes just its remaining branch.
  runOne(T, uniform({3, 2}));
  EXPECT_FALSE(T.advance());
}

TEST(DecisionTreeTest, SplitRespectsDonationCap) {
  DecisionTree T;
  runOne(T, uniform({4}));
  ASSERT_TRUE(T.advance()); // path {1}; untried {2, 3}
  auto Donated = T.split(1);
  ASSERT_EQ(Donated.size(), 1u);
  // The highest alternative goes first so the donor's range stays
  // contiguous.
  EXPECT_EQ(Donated[0].Path.back().Chosen, 3u);
  EXPECT_TRUE(T.splittable()); // alternative 2 still owned by the donor
}

TEST(DecisionTreeTest, SplittingPartitionsTheLeafSet) {
  for (uint64_t Seed = 1; Seed <= 8; ++Seed) {
    Rng R(Seed);
    std::vector<std::vector<unsigned>> Split;
    enumerateWithSplits(DecisionTree(), lopsided, R, Split);
    auto Serial = enumerate(DecisionTree(), lopsided);
    ASSERT_EQ(Split.size(), Serial.size()) << "seed " << Seed;
    std::sort(Split.begin(), Split.end());
    // Serial DFS enumerates in sorted (lexicographic) order already.
    EXPECT_EQ(Split, Serial) << "seed " << Seed;
  }
}

TEST(DecisionTreeTest, SplittingPartitionsUniformTreeLeafSet) {
  auto P = uniform({2, 3, 2, 2});
  auto Serial = enumerate(DecisionTree(), P);
  ASSERT_EQ(Serial.size(), 24u);
  for (uint64_t Seed = 11; Seed <= 14; ++Seed) {
    Rng R(Seed);
    std::vector<std::vector<unsigned>> Split;
    enumerateWithSplits(DecisionTree(), P, R, Split);
    std::sort(Split.begin(), Split.end());
    EXPECT_EQ(Split, Serial) << "seed " << Seed;
  }
}

namespace {

/// A write footprint for the prefix-annotation tests below.
rmc::Footprint writeFp(rmc::Loc L) {
  rmc::Footprint F;
  F.L = L;
  F.K = rmc::Footprint::Kind::Write;
  return F;
}

/// Drives one donor execution of a two-level, arity-3, `sched`-tagged
/// program against \p T while feeding \p Red the hooks exactly as the
/// scheduler would: choice, then the chosen thread's step.
void runSchedExecution(DecisionTree &T, Reduction &Red,
                       const std::vector<unsigned> &En,
                       const std::vector<rmc::Footprint> &Fps) {
  const std::vector<uint32_t> Hist(En.size(), 0);
  T.beginExecution();
  Red.beginExecution();
  for (int Level = 0; Level != 2; ++Level) {
    unsigned Pick = T.next(3, "sched");
    ASSERT_EQ(Red.onSchedChoice(En, Fps, Hist, Pick),
              Reduction::Verdict::Run);
    Red.onStepExecuted(En[Pick], Fps[Pick]);
  }
}

} // namespace

TEST(DecisionTreeTest, SplitPrefixCarriesSleepSnapshotAndReseeds) {
  // Three threads writing the same cell: pairwise *dependent* moves, so
  // sleeps put in place at a choice point survive the subsequent step and
  // the snapshot is non-trivial.
  std::vector<unsigned> En = {0, 1, 2};
  std::vector<rmc::Footprint> Fps = {writeFp(7), writeFp(7), writeFp(7)};

  DecisionTree T;
  Reduction Red;
  runSchedExecution(T, Red, En, Fps);
  ASSERT_TRUE(T.advance()); // path {0,1}; root alternatives 1,2 open
  auto Donated = T.split(8);
  ASSERT_EQ(Donated.size(), 2u);
  for (DecisionTree::Prefix &P : Donated)
    Red.annotate(P);

  // Donated prefix {1}: alternative 0 was fully explored before it, so it
  // sleeps; prefix {2} additionally has alternative 1 asleep.
  ASSERT_TRUE(Donated[0].HasSleep);
  EXPECT_EQ(Donated[0].SleepOrdinal, 0u);
  EXPECT_EQ(Donated[0].Sleep, (std::vector<SleepMove>{{0, Fps[0]}}));
  ASSERT_TRUE(Donated[1].HasSleep);
  EXPECT_EQ(Donated[1].SleepOrdinal, 0u);
  EXPECT_EQ(Donated[1].Sleep,
            (std::vector<SleepMove>{{0, Fps[0]}, {1, Fps[1]}}));

  // Round-trip: a recipient re-seeds its tree from the donated prefix and
  // recomputes the sleep state while replaying; the recomputation must
  // agree with the carried snapshot (validated inside onSchedChoice) and
  // leave the recipient with exactly the donor's sleep set.
  for (size_t I = 0; I != Donated.size(); ++I) {
    std::vector<SleepMove> Snapshot = Donated[I].Sleep;
    size_t Ordinal = Donated[I].SleepOrdinal;
    unsigned Chosen = Donated[I].Path.back().Chosen;

    Reduction R2;
    R2.setSeed(Snapshot, Ordinal);
    DecisionTree T2(std::move(Donated[I]));
    T2.beginExecution();
    R2.beginExecution();
    EXPECT_TRUE(T2.replaying());
    unsigned Pick = T2.next(3, "sched");
    EXPECT_EQ(Pick, Chosen);
    // The replayed pick is never itself asleep, and the recomputed state
    // matches the donor's snapshot bit for bit.
    EXPECT_EQ(R2.onSchedChoice(En, Fps, std::vector<uint32_t>(En.size(), 0),
                               Pick),
              Reduction::Verdict::Run);
    EXPECT_EQ(R2.current(), Snapshot);
  }
}

TEST(DecisionTreeTest, AnnotateSkipsPrefixesNotEndingInSchedDecisions) {
  std::vector<unsigned> En = {0, 1, 2};
  std::vector<rmc::Footprint> Fps = {writeFp(7), writeFp(7), writeFp(7)};

  Reduction Red;
  Red.beginExecution();
  ASSERT_EQ(Red.onSchedChoice(En, Fps, {0, 0, 0}, 2),
            Reduction::Verdict::Run); // sleeps {0, 1}

  // A prefix ending in a read-from decision must not be annotated: pruning
  // is only sound at thread-choice points.
  DecisionTree::Prefix P;
  P.Path = {{2, 3, 3, "sched"}, {1, 2, 2, "rf"}};
  P.HasSleep = true; // Stale value; annotate() must clear it.
  Red.annotate(P);
  EXPECT_FALSE(P.HasSleep);
  EXPECT_TRUE(P.Sleep.empty());

  // An empty prefix (root donation) is likewise left unannotated.
  DecisionTree::Prefix Root;
  Root.HasSleep = true;
  Red.annotate(Root);
  EXPECT_FALSE(Root.HasSleep);
}

#if GTEST_HAS_DEATH_TEST
TEST(DecisionTreeDeathTest, DivergentSleepSeedIsFatal) {
  // A recipient whose recomputed sleep state disagrees with the donated
  // snapshot must abort: silent divergence would make reduced exploration
  // depend on the work distribution.
  std::vector<unsigned> En = {0, 1, 2};
  std::vector<rmc::Footprint> Fps = {writeFp(7), writeFp(7), writeFp(7)};
  Reduction R;
  R.setSeed({{1, Fps[1]}}, 0); // Donor claims only thread 1 sleeps...
  R.beginExecution();
  // ...but replaying pick 2 recomputes {0, 1}.
  EXPECT_DEATH(R.onSchedChoice(En, Fps, {0, 0, 0}, 2), "diverged");
}

TEST(DecisionTreeDeathTest, ArityChangeDuringReplayIsFatal) {
  DecisionTree T;
  runOne(T, uniform({2, 2}));
  ASSERT_TRUE(T.advance());
  T.beginExecution();
  EXPECT_DEATH(T.next(3, "t"), "nondeterministic replay");
}
#endif
