//===-- tests/NativeTest.cpp - Native (std::atomic) container tests --------===//
//
// Functional tests for the real-atomics library: single-threaded
// semantics, and multi-threaded stress tests checking conservation (every
// value produced is consumed exactly once) and container discipline.
//
//===----------------------------------------------------------------------===//

#include "native/ElimStack.h"
#include "native/Exchanger.h"
#include "native/HwQueue.h"
#include "native/Locked.h"
#include "native/MsQueue.h"
#include "native/RetireList.h"
#include "native/TreiberStack.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <thread>
#include <vector>

using namespace compass::native;

//===----------------------------------------------------------------------===//
// RetireList
//===----------------------------------------------------------------------===//

namespace {
struct TestNode : RetireHook {
  static std::atomic<int> Live;
  TestNode() { Live.fetch_add(1, std::memory_order_relaxed); }
  ~TestNode() { Live.fetch_sub(1, std::memory_order_relaxed); }
};
std::atomic<int> TestNode::Live{0};
} // namespace

TEST(RetireListTest, DrainFreesEverything) {
  {
    RetireList<TestNode> RL;
    for (int I = 0; I < 10; ++I)
      RL.retire(new TestNode());
    EXPECT_EQ(RL.size(), 10u);
    EXPECT_EQ(TestNode::Live.load(), 10);
    RL.drain();
    EXPECT_EQ(TestNode::Live.load(), 0);
    RL.retire(new TestNode());
  }
  // Destructor drains the rest.
  EXPECT_EQ(TestNode::Live.load(), 0);
}

//===----------------------------------------------------------------------===//
// Single-threaded semantics
//===----------------------------------------------------------------------===//

TEST(NativeMsQueueTest, FifoSingleThread) {
  MsQueue<uint64_t> Q;
  EXPECT_TRUE(Q.empty());
  EXPECT_FALSE(Q.dequeue().has_value());
  for (uint64_t I = 1; I <= 5; ++I)
    Q.enqueue(I);
  EXPECT_FALSE(Q.empty());
  for (uint64_t I = 1; I <= 5; ++I) {
    auto V = Q.dequeue();
    ASSERT_TRUE(V.has_value());
    EXPECT_EQ(*V, I);
  }
  EXPECT_FALSE(Q.dequeue().has_value());
}

TEST(NativeTreiberTest, LifoSingleThread) {
  TreiberStack<uint64_t> S;
  EXPECT_TRUE(S.empty());
  EXPECT_FALSE(S.pop().has_value());
  for (uint64_t I = 1; I <= 5; ++I)
    S.push(I);
  for (uint64_t I = 5; I >= 1; --I) {
    auto V = S.pop();
    ASSERT_TRUE(V.has_value());
    EXPECT_EQ(*V, I);
  }
  EXPECT_FALSE(S.pop().has_value());
}

TEST(NativeTreiberTest, TryOpsSingleThread) {
  TreiberStack<uint64_t> S;
  EXPECT_TRUE(S.tryPush(7));
  uint64_t Out = 0;
  EXPECT_EQ(S.tryPop(Out), TreiberStack<uint64_t>::TryPopResult::Ok);
  EXPECT_EQ(Out, 7u);
  EXPECT_EQ(S.tryPop(Out), TreiberStack<uint64_t>::TryPopResult::Empty);
}

TEST(NativeHwQueueTest, FifoSingleThread) {
  HwQueue<> Q(16);
  EXPECT_FALSE(Q.dequeue().has_value());
  for (uint64_t I = 1; I <= 5; ++I)
    Q.enqueue(I);
  for (uint64_t I = 1; I <= 5; ++I) {
    auto V = Q.dequeue();
    ASSERT_TRUE(V.has_value());
    EXPECT_EQ(*V, I);
  }
  EXPECT_FALSE(Q.dequeue().has_value());
}

TEST(NativeElimStackTest, LifoSingleThread) {
  ElimStack<uint64_t> S;
  for (uint64_t I = 1; I <= 4; ++I)
    S.push(I);
  for (uint64_t I = 4; I >= 1; --I) {
    auto V = S.pop();
    ASSERT_TRUE(V.has_value());
    EXPECT_EQ(*V, I);
  }
  EXPECT_FALSE(S.pop().has_value());
}

TEST(NativeExchangerTest, SingleThreadTimesOut) {
  Exchanger<uint64_t> X;
  EXPECT_FALSE(X.exchange(5, /*Attempts=*/2, /*Spins=*/4).has_value());
}

TEST(NativeMutexContainersTest, BasicSemantics) {
  MutexQueue<uint64_t> Q;
  Q.enqueue(1);
  Q.enqueue(2);
  EXPECT_EQ(*Q.dequeue(), 1u);
  EXPECT_EQ(*Q.dequeue(), 2u);
  EXPECT_FALSE(Q.dequeue().has_value());

  MutexStack<uint64_t> S;
  S.push(1);
  S.push(2);
  EXPECT_EQ(*S.pop(), 2u);
  EXPECT_EQ(*S.pop(), 1u);
  EXPECT_FALSE(S.pop().has_value());
}

//===----------------------------------------------------------------------===//
// Multi-threaded conservation stress
//===----------------------------------------------------------------------===//

namespace {

/// Runs \p Producers threads enqueueing disjoint value ranges and
/// \p Consumers threads dequeueing until all values are drained; checks
/// every value arrives exactly once.
template <typename EnqFn, typename DeqFn>
void conservationStress(unsigned Producers, unsigned Consumers,
                        unsigned PerProducer, EnqFn Enq, DeqFn Deq) {
  std::atomic<uint64_t> Consumed{0};
  uint64_t Total = uint64_t(Producers) * PerProducer;
  std::vector<std::vector<uint64_t>> Got(Consumers);

  std::vector<std::thread> Threads;
  for (unsigned P = 0; P != Producers; ++P)
    Threads.emplace_back([&, P] {
      for (unsigned I = 0; I != PerProducer; ++I)
        Enq(uint64_t(P) * PerProducer + I + 1);
    });
  for (unsigned C = 0; C != Consumers; ++C)
    Threads.emplace_back([&, C] {
      while (Consumed.load(std::memory_order_relaxed) < Total) {
        std::optional<uint64_t> V = Deq();
        if (!V) {
          std::this_thread::yield();
          continue;
        }
        Got[C].push_back(*V);
        Consumed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  for (auto &T : Threads)
    T.join();

  std::map<uint64_t, int> Count;
  for (auto &Vs : Got)
    for (uint64_t V : Vs)
      ++Count[V];
  EXPECT_EQ(Count.size(), Total) << "values lost";
  for (auto &[V, N] : Count)
    EXPECT_EQ(N, 1) << "value " << V << " duplicated";
}

} // namespace

TEST(NativeMsQueueTest, ConservationUnderContention) {
  MsQueue<uint64_t> Q;
  conservationStress(
      2, 2, 2000, [&](uint64_t V) { Q.enqueue(V); },
      [&] { return Q.dequeue(); });
}

TEST(NativeTreiberTest, ConservationUnderContention) {
  TreiberStack<uint64_t> S;
  conservationStress(
      2, 2, 2000, [&](uint64_t V) { S.push(V); },
      [&] { return S.pop(); });
}

TEST(NativeHwQueueTest, ConservationUnderContention) {
  HwQueue<> Q(4 * 1500);
  conservationStress(
      4, 2, 1500, [&](uint64_t V) { Q.enqueue(V); },
      [&] { return Q.dequeue(); });
}

TEST(NativeElimStackTest, ConservationUnderContention) {
  ElimStack<uint64_t> S;
  conservationStress(
      2, 2, 2000, [&](uint64_t V) { S.push(V); },
      [&] { return S.pop(); });
}

TEST(NativeMutexContainersTest, ConservationUnderContention) {
  MutexQueue<uint64_t> Q;
  conservationStress(
      2, 2, 2000, [&](uint64_t V) { Q.enqueue(V); },
      [&] { return Q.dequeue(); });
}

TEST(NativeMsQueueTest, SingleProducerOrderPreserved) {
  // FIFO end-to-end for one producer / one consumer (the native analog of
  // the SPSC client).
  MsQueue<uint64_t> Q;
  constexpr uint64_t N = 5000;
  std::vector<uint64_t> Seen;
  std::thread Producer([&] {
    for (uint64_t I = 1; I <= N; ++I)
      Q.enqueue(I);
  });
  std::thread Consumer([&] {
    while (Seen.size() < N) {
      auto V = Q.dequeue();
      if (V)
        Seen.push_back(*V);
    }
  });
  Producer.join();
  Consumer.join();
  ASSERT_EQ(Seen.size(), N);
  EXPECT_TRUE(std::is_sorted(Seen.begin(), Seen.end()));
  EXPECT_EQ(Seen.front(), 1u);
  EXPECT_EQ(Seen.back(), N);
}

TEST(NativeExchangerTest, PairedThreadsCrossValues) {
  Exchanger<uint64_t> X;
  std::optional<uint64_t> Got[2];
  // Generous attempt budget: with two willing partners a match is
  // essentially certain, but the API remains best-effort.
  auto Runner = [&](int Idx, uint64_t Mine) {
    for (int I = 0; I < 10000 && !Got[Idx]; ++I)
      Got[Idx] = X.exchange(Mine, 4, 128);
  };
  std::thread T0(Runner, 0, 111u);
  std::thread T1(Runner, 1, 222u);
  T0.join();
  T1.join();
  if (Got[0] && Got[1]) {
    EXPECT_EQ(*Got[0], 222u);
    EXPECT_EQ(*Got[1], 111u);
  } else {
    // Both must agree: a one-sided exchange would be a bug.
    EXPECT_FALSE(Got[0].has_value());
    EXPECT_FALSE(Got[1].has_value());
  }
}
