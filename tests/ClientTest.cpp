//===-- tests/ClientTest.cpp - Client verifications (E1, E3) ---------------===//
//
// The paper's client proofs as exhaustive checks:
//
//  * Message Passing (Figures 1 and 3): with a release/acquire flag, the
//    right thread's dequeue never returns empty, on every queue
//    implementation — and the ablation with a relaxed flag *does* exhibit
//    empty dequeues, demonstrating that the client's external
//    synchronization is load-bearing.
//
//  * SPSC (Section 3.2): the consumer's array always equals the
//    producer's (FIFO end-to-end).
//
//===----------------------------------------------------------------------===//

#include "clients/MpClient.h"
#include "clients/Spsc.h"
#include "lib/HwQueue.h"
#include "lib/Locked.h"
#include "lib/MsQueue.h"
#include "sim/Explorer.h"
#include "spec/Consistency.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>

using namespace compass;
using namespace compass::clients;
using namespace compass::rmc;
using namespace compass::sim;
using compass::graph::EmptyVal;

namespace {

enum class QueueKind { Ms, Hw, Locked };

const char *queueKindName(QueueKind K) {
  switch (K) {
  case QueueKind::Ms:
    return "ms";
  case QueueKind::Hw:
    return "hw";
  case QueueKind::Locked:
    return "locked";
  }
  return "?";
}

std::unique_ptr<lib::SimQueue> makeQueue(QueueKind K, Machine &M,
                                         spec::SpecMonitor &Mon) {
  switch (K) {
  case QueueKind::Ms:
    return std::make_unique<lib::MsQueue>(M, Mon, "q");
  case QueueKind::Hw:
    return std::make_unique<lib::HwQueue>(M, Mon, "q", 8);
  case QueueKind::Locked:
    return std::make_unique<lib::LockedQueue>(M, Mon, "q", 8);
  }
  return nullptr;
}

struct MpStats {
  uint64_t Checked = 0;
  uint64_t RightEmpty = 0;
  uint64_t GraphViolations = 0;
  std::set<Value> RightValues;
  std::string FirstViolation;
};

MpStats exploreMp(QueueKind K, const MpConfig &Cfg, unsigned Preemptions,
                  uint64_t MaxExecutions = 300'000) {
  Explorer::Options Opts;
  Opts.PreemptionBound = Preemptions;
  Opts.MaxExecutions = MaxExecutions;

  MpStats Stats;
  std::unique_ptr<spec::SpecMonitor> Mon;
  std::unique_ptr<lib::SimQueue> Q;
  MpOutcome Out;

  auto Sum = explore(
      Opts,
      [&](Machine &M, Scheduler &S) {
        Mon = std::make_unique<spec::SpecMonitor>();
        Q = makeQueue(K, M, *Mon);
        Out = MpOutcome();
        setupMpClient(M, S, *Q, Cfg, Out);
      },
      [&](Machine &M, Scheduler &, Scheduler::RunResult R) {
        EXPECT_NE(R, Scheduler::RunResult::Race) << M.raceMessage();
        EXPECT_NE(R, Scheduler::RunResult::Deadlock);
        if (R != Scheduler::RunResult::Done)
          return;
        ++Stats.Checked;
        if (Out.Right == EmptyVal)
          ++Stats.RightEmpty;
        else
          Stats.RightValues.insert(Out.Right);
        auto CR = spec::checkQueueConsistent(Mon->graph(), Q->objId());
        if (!CR.ok()) {
          ++Stats.GraphViolations;
          if (Stats.FirstViolation.empty())
            Stats.FirstViolation = CR.str() + Mon->graph().str();
        }
      });
  EXPECT_GT(Sum.Executions, 0u);
  EXPECT_EQ(Sum.Races, 0u);
  return Stats;
}

} // namespace

class MpClientTest : public ::testing::TestWithParam<QueueKind> {};

TEST_P(MpClientTest, RightDequeueNeverEmpty) {
  MpConfig Cfg; // Release store / acquire spin: the verified client.
  auto Stats = exploreMp(GetParam(), Cfg, /*Preemptions=*/2);
  EXPECT_GT(Stats.Checked, 0u);
  EXPECT_EQ(Stats.RightEmpty, 0u)
      << "Figure 1's guarantee: the right thread cannot see empty";
  EXPECT_EQ(Stats.GraphViolations, 0u) << Stats.FirstViolation;
  // And it only ever receives the two enqueued values.
  for (Value V : Stats.RightValues)
    EXPECT_TRUE(V == 41 || V == 42) << V;
}

TEST_P(MpClientTest, RelaxedFlagAblationBreaksTheGuarantee) {
  MpConfig Cfg;
  Cfg.FlagStore = MemOrder::Relaxed;
  Cfg.FlagRead = MemOrder::Relaxed;
  auto Stats = exploreMp(GetParam(), Cfg, /*Preemptions=*/2);
  EXPECT_GT(Stats.Checked, 0u);
  if (GetParam() == QueueKind::Locked) {
    // The locked queue synchronizes internally so strongly that even a
    // relaxed flag cannot surface an empty dequeue on the right: the
    // right dequeue acquires the lock and sees everything.
    EXPECT_EQ(Stats.RightEmpty, 0u);
  } else {
    EXPECT_GT(Stats.RightEmpty, 0u)
        << "without the release/acquire flag the guarantee must fail";
  }
  // The *library* stays consistent — the client just asked a weaker
  // question (the empty dequeue knows nothing, so QUEUE-EMPDEQ holds).
  EXPECT_EQ(Stats.GraphViolations, 0u) << Stats.FirstViolation;
}

INSTANTIATE_TEST_SUITE_P(AllQueues, MpClientTest,
                         ::testing::Values(QueueKind::Ms, QueueKind::Hw,
                                           QueueKind::Locked),
                         [](const auto &Info) {
                           return queueKindName(Info.param);
                         });

TEST(SpscClientTest, ConsumerSeesProducerOrder) {
  Explorer::Options Opts;
  Opts.PreemptionBound = 3;
  Opts.MaxExecutions = 300'000;

  std::vector<Value> Items = {11, 22, 33};
  std::unique_ptr<spec::SpecMonitor> Mon;
  std::unique_ptr<lib::MsQueue> Q;
  SpscOutcome Out;
  uint64_t Checked = 0;

  auto Sum = explore(
      Opts,
      [&](Machine &M, Scheduler &S) {
        Mon = std::make_unique<spec::SpecMonitor>();
        Q = std::make_unique<lib::MsQueue>(M, *Mon, "q");
        Out = SpscOutcome();
        setupSpsc(M, S, *Q, Items, Out);
      },
      [&](Machine &M, Scheduler &, Scheduler::RunResult R) {
        EXPECT_NE(R, Scheduler::RunResult::Race) << M.raceMessage();
        EXPECT_NE(R, Scheduler::RunResult::Deadlock)
            << "blocking consumer must always be served";
        if (R != Scheduler::RunResult::Done)
          return;
        ++Checked;
        EXPECT_EQ(Out.Consumed, Items)
            << "Section 3.2: the consumer's array equals the producer's";
      });
  EXPECT_GT(Checked, 0u);
  EXPECT_EQ(Sum.Races, 0u);
}
