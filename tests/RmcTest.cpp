//===-- tests/RmcTest.cpp - Unit tests for the RMC view machine ------------===//
//
// Tests drive the Machine directly (its operations are synchronous;
// nondeterminism is resolved by a scripted ChoiceSource), validating the
// view-transfer rules of Section 2.3 one instruction at a time.
//
//===----------------------------------------------------------------------===//

#include "rmc/Machine.h"

#include <gtest/gtest.h>

#include <vector>

using namespace compass;
using namespace compass::rmc;

namespace {

/// Replays a fixed list of picks, then falls back to 0 (newest message /
/// first alternative).
class ScriptedChoice final : public ChoiceSource {
public:
  explicit ScriptedChoice(std::vector<unsigned> Picks = {})
      : Picks(std::move(Picks)) {}

  unsigned choose(unsigned Count, const char *) override {
    unsigned P = Pos < Picks.size() ? Picks[Pos++] : 0;
    EXPECT_LT(P, Count) << "scripted pick out of range";
    return P < Count ? P : 0;
  }

private:
  std::vector<unsigned> Picks;
  size_t Pos = 0;
};

} // namespace

//===----------------------------------------------------------------------===//
// Views
//===----------------------------------------------------------------------===//

TEST(ViewTest, DefaultIsBottom) {
  View V;
  EXPECT_EQ(V.get(0), 0u);
  EXPECT_EQ(V.get(100), 0u);
  EXPECT_EQ(V.countNonZero(), 0u);
}

TEST(ViewTest, RaiseIsMonotone) {
  View V;
  V.raise(3, 5);
  EXPECT_EQ(V.get(3), 5u);
  V.raise(3, 2); // Lower: no effect.
  EXPECT_EQ(V.get(3), 5u);
  V.raise(3, 9);
  EXPECT_EQ(V.get(3), 9u);
}

TEST(ViewTest, JoinIsPointwiseMax) {
  View A, B;
  A.raise(0, 4);
  A.raise(2, 1);
  B.raise(0, 2);
  B.raise(5, 7);
  View J = join(A, B);
  EXPECT_EQ(J.get(0), 4u);
  EXPECT_EQ(J.get(2), 1u);
  EXPECT_EQ(J.get(5), 7u);
}

TEST(ViewTest, InclusionIsPartialOrder) {
  View A, B;
  A.raise(1, 3);
  B.raise(1, 3);
  B.raise(2, 1);
  EXPECT_TRUE(A.includedIn(B));
  EXPECT_FALSE(B.includedIn(A));
  EXPECT_TRUE(A.includedIn(A));
  // Incomparable pair.
  View C;
  C.raise(9, 1);
  EXPECT_FALSE(A.includedIn(C));
  EXPECT_FALSE(C.includedIn(A));
}

TEST(ViewTest, JoinIsLeastUpperBound) {
  View A, B;
  A.raise(1, 5);
  B.raise(2, 6);
  View J = join(A, B);
  EXPECT_TRUE(A.includedIn(J));
  EXPECT_TRUE(B.includedIn(J));
}

TEST(KnowledgeTest, JoinCombinesBothComponents) {
  Knowledge A, B;
  A.Phys.raise(0, 1);
  A.Events.insert(10);
  B.Phys.raise(1, 2);
  B.Events.insert(20);
  A.joinWith(B);
  EXPECT_EQ(A.Phys.get(0), 1u);
  EXPECT_EQ(A.Phys.get(1), 2u);
  EXPECT_TRUE(A.Events.contains(10));
  EXPECT_TRUE(A.Events.contains(20));
  EXPECT_TRUE(B.includedIn(A));
}

//===----------------------------------------------------------------------===//
// Memory
//===----------------------------------------------------------------------===//

TEST(MemoryTest, AllocCreatesInitMessage) {
  Memory M;
  Loc L = M.alloc("x", 1, 42);
  EXPECT_EQ(M.cell(L).Len, 1u);
  EXPECT_EQ(M.cell(L).latestVal(), 42u);
  EXPECT_EQ(M.cell(L).latestTs(), 0u);
}

TEST(MemoryTest, MultiCellAllocIsContiguous) {
  Memory M;
  Loc Base = M.alloc("arr", 3, 7);
  for (Loc I = 0; I < 3; ++I)
    EXPECT_EQ(M.cell(Base + I).latestVal(), 7u);
  EXPECT_EQ(M.size(), 3u);
}

TEST(MemoryTest, AppendAssignsDenseTimestamps) {
  Memory M;
  Loc L = M.alloc("x");
  M.append(L, 1, Knowledge(), 0);
  M.append(L, 2, Knowledge(), 1);
  EXPECT_EQ(M.cell(L).latestTs(), 2u);
  EXPECT_EQ(M.cell(L).val(1), 1u);
  EXPECT_EQ(M.cell(L).val(2), 2u);
  EXPECT_EQ(M.cell(L).writer(2), 1u);
}

TEST(MemoryTest, ReadableCount) {
  Memory M;
  Loc L = M.alloc("x");
  M.append(L, 1, Knowledge(), 0);
  M.append(L, 2, Knowledge(), 0);
  EXPECT_EQ(M.countReadableFrom(L, 0), 3u);
  EXPECT_EQ(M.countReadableFrom(L, 2), 1u);
}

//===----------------------------------------------------------------------===//
// Machine: basic accesses
//===----------------------------------------------------------------------===//

TEST(MachineTest, NaStoreLoadSingleThread) {
  ScriptedChoice C;
  Machine M(C);
  unsigned T0 = M.addThread();
  Loc X = M.alloc("x");
  M.store(T0, X, 5, MemOrder::NonAtomic);
  EXPECT_EQ(M.load(T0, X, MemOrder::NonAtomic), 5u);
  EXPECT_FALSE(M.raceDetected());
}

TEST(MachineTest, ReleaseAcquireTransfersView) {
  ScriptedChoice C;
  Machine M(C);
  unsigned T0 = M.addThread(), T1 = M.addThread();
  Loc X = M.alloc("x"), F = M.alloc("flag");
  M.store(T0, X, 7, MemOrder::NonAtomic);
  M.store(T0, F, 1, MemOrder::Release);
  EXPECT_EQ(M.load(T1, F, MemOrder::Acquire), 1u); // Newest by default.
  EXPECT_EQ(M.load(T1, X, MemOrder::NonAtomic), 7u);
  EXPECT_FALSE(M.raceDetected()) << M.raceMessage();
}

TEST(MachineTest, UnsynchronizedNaReadIsRace) {
  ScriptedChoice C;
  Machine M(C);
  unsigned T0 = M.addThread(), T1 = M.addThread();
  Loc X = M.alloc("x");
  M.store(T0, X, 7, MemOrder::NonAtomic);
  M.load(T1, X, MemOrder::NonAtomic);
  EXPECT_TRUE(M.raceDetected());
}

TEST(MachineTest, ConcurrentNaWritesAreRace) {
  ScriptedChoice C;
  Machine M(C);
  unsigned T0 = M.addThread(), T1 = M.addThread();
  Loc X = M.alloc("x");
  M.store(T0, X, 1, MemOrder::NonAtomic);
  M.store(T1, X, 2, MemOrder::NonAtomic);
  EXPECT_TRUE(M.raceDetected());
}

TEST(MachineTest, RelaxedReadDoesNotTransferView) {
  ScriptedChoice C;
  Machine M(C);
  unsigned T0 = M.addThread(), T1 = M.addThread();
  Loc X = M.alloc("x"), F = M.alloc("flag");
  M.store(T0, X, 7, MemOrder::NonAtomic);
  M.store(T0, F, 1, MemOrder::Release);
  EXPECT_EQ(M.load(T1, F, MemOrder::Relaxed), 1u);
  M.load(T1, X, MemOrder::NonAtomic); // Racy: no acquire happened.
  EXPECT_TRUE(M.raceDetected());
}

TEST(MachineTest, RelaxedReadPlusAcquireFenceTransfers) {
  ScriptedChoice C;
  Machine M(C);
  unsigned T0 = M.addThread(), T1 = M.addThread();
  Loc X = M.alloc("x"), F = M.alloc("flag");
  M.store(T0, X, 7, MemOrder::NonAtomic);
  M.store(T0, F, 1, MemOrder::Release);
  EXPECT_EQ(M.load(T1, F, MemOrder::Relaxed), 1u);
  M.fence(T1, MemOrder::Acquire);
  EXPECT_EQ(M.load(T1, X, MemOrder::NonAtomic), 7u);
  EXPECT_FALSE(M.raceDetected()) << M.raceMessage();
}

TEST(MachineTest, ReleaseFencePlusRelaxedWriteTransfers) {
  ScriptedChoice C;
  Machine M(C);
  unsigned T0 = M.addThread(), T1 = M.addThread();
  Loc X = M.alloc("x"), F = M.alloc("flag");
  M.store(T0, X, 7, MemOrder::NonAtomic);
  M.fence(T0, MemOrder::Release);
  M.store(T0, F, 1, MemOrder::Relaxed);
  EXPECT_EQ(M.load(T1, F, MemOrder::Acquire), 1u);
  EXPECT_EQ(M.load(T1, X, MemOrder::NonAtomic), 7u);
  EXPECT_FALSE(M.raceDetected()) << M.raceMessage();
}

TEST(MachineTest, RelaxedWriteWithoutFenceDoesNotRelease) {
  ScriptedChoice C;
  Machine M(C);
  unsigned T0 = M.addThread(), T1 = M.addThread();
  Loc X = M.alloc("x"), F = M.alloc("flag");
  M.store(T0, X, 7, MemOrder::NonAtomic);
  M.store(T0, F, 1, MemOrder::Relaxed); // No release.
  EXPECT_EQ(M.load(T1, F, MemOrder::Acquire), 1u);
  M.load(T1, X, MemOrder::NonAtomic);
  EXPECT_TRUE(M.raceDetected());
}

TEST(MachineTest, StaleReadObservesOldMessage) {
  ScriptedChoice C({1}); // Read the second-newest message.
  Machine M(C);
  unsigned T0 = M.addThread(), T1 = M.addThread();
  Loc Y = M.alloc("y");
  M.store(T0, Y, 1, MemOrder::Relaxed);
  M.store(T0, Y, 2, MemOrder::Relaxed);
  EXPECT_EQ(M.load(T1, Y, MemOrder::Relaxed), 1u);
}

TEST(MachineTest, CoherenceReadsNeverGoBackwards) {
  ScriptedChoice C({0}); // First read: newest.
  Machine M(C);
  unsigned T0 = M.addThread(), T1 = M.addThread();
  Loc Y = M.alloc("y");
  M.store(T0, Y, 1, MemOrder::Relaxed);
  M.store(T0, Y, 2, MemOrder::Relaxed);
  EXPECT_EQ(M.load(T1, Y, MemOrder::Relaxed), 2u);
  // After observing ts 2, only one message remains readable: no choice is
  // consulted and the same value is returned.
  EXPECT_EQ(M.load(T1, Y, MemOrder::Relaxed), 2u);
  EXPECT_EQ(M.load(T1, Y, MemOrder::Relaxed), 2u);
}

//===----------------------------------------------------------------------===//
// Machine: RMWs
//===----------------------------------------------------------------------===//

TEST(MachineTest, CasSucceedsAgainstMaximal) {
  ScriptedChoice C;
  Machine M(C);
  unsigned T0 = M.addThread();
  Loc X = M.alloc("x");
  auto R = M.cas(T0, X, 0, 5, MemOrder::AcqRel);
  EXPECT_TRUE(R.Success);
  EXPECT_EQ(R.Old, 0u);
  EXPECT_EQ(M.load(T0, X, MemOrder::Relaxed), 5u);
}

TEST(MachineTest, CasCannotSucceedAgainstStaleValue) {
  ScriptedChoice C;
  Machine M(C);
  unsigned T0 = M.addThread(), T1 = M.addThread();
  Loc X = M.alloc("x");
  M.store(T0, X, 1, MemOrder::Relaxed);
  // T1 expects 0; the only messages are 0 (stale) and 1 (maximal). A
  // strong CAS may not read the stale 0 and "succeed"; it must fail
  // reading 1.
  auto R = M.cas(T1, X, 0, 9, MemOrder::AcqRel);
  EXPECT_FALSE(R.Success);
  EXPECT_EQ(R.Old, 1u);
}

TEST(MachineTest, FailedCasCanReadStaleDifferentValue) {
  ScriptedChoice C({1}); // Pick the older failing message.
  Machine M(C);
  unsigned T0 = M.addThread(), T1 = M.addThread();
  Loc X = M.alloc("x");
  M.store(T0, X, 1, MemOrder::Relaxed);
  M.store(T0, X, 2, MemOrder::Relaxed);
  auto R = M.cas(T1, X, 9, 7, MemOrder::AcqRel);
  EXPECT_FALSE(R.Success);
  EXPECT_EQ(R.Old, 1u); // Failure alternatives: 2 (newest), 1, 0.
}

TEST(MachineTest, CasReleaseSequenceTransfersThroughRmwChain) {
  ScriptedChoice C;
  Machine M(C);
  unsigned T0 = M.addThread(), T1 = M.addThread(), T2 = M.addThread();
  Loc X = M.alloc("x"), Ctr = M.alloc("c");
  M.store(T0, X, 7, MemOrder::NonAtomic);
  // T0 releases through the counter; T1's intervening relaxed-read RMW
  // must not break the release sequence.
  EXPECT_EQ(M.fetchAdd(T0, Ctr, 1, MemOrder::Release), 0u);
  EXPECT_EQ(M.fetchAdd(T1, Ctr, 1, MemOrder::Relaxed), 1u);
  EXPECT_EQ(M.load(T2, Ctr, MemOrder::Acquire), 2u);
  EXPECT_EQ(M.load(T2, X, MemOrder::NonAtomic), 7u);
  EXPECT_FALSE(M.raceDetected()) << M.raceMessage();
}

TEST(MachineTest, FetchAddReturnsOldAndAccumulates) {
  ScriptedChoice C;
  Machine M(C);
  unsigned T0 = M.addThread();
  Loc X = M.alloc("x", 1, 10);
  EXPECT_EQ(M.fetchAdd(T0, X, 5, MemOrder::AcqRel), 10u);
  EXPECT_EQ(M.fetchAdd(T0, X, 1, MemOrder::AcqRel), 15u);
  EXPECT_EQ(M.load(T0, X, MemOrder::Relaxed), 16u);
}

//===----------------------------------------------------------------------===//
// Machine: SC accesses, monitor hooks, misc
//===----------------------------------------------------------------------===//

TEST(MachineTest, SeqCstAccessesSynchronize) {
  ScriptedChoice C;
  Machine M(C);
  unsigned T0 = M.addThread(), T1 = M.addThread();
  Loc X = M.alloc("x"), F = M.alloc("f");
  M.store(T0, X, 3, MemOrder::NonAtomic);
  M.store(T0, F, 1, MemOrder::SeqCst);
  EXPECT_EQ(M.load(T1, F, MemOrder::SeqCst), 1u);
  EXPECT_EQ(M.load(T1, X, MemOrder::NonAtomic), 3u);
  EXPECT_FALSE(M.raceDetected()) << M.raceMessage();
}

TEST(MachineTest, ScFenceForcesFreshReads) {
  ScriptedChoice C({1}); // Would pick a stale message if offered one.
  Machine M(C);
  unsigned T0 = M.addThread(), T1 = M.addThread();
  Loc X = M.alloc("x");
  M.store(T0, X, 1, MemOrder::Relaxed);
  M.fence(T0, MemOrder::SeqCst);
  M.fence(T1, MemOrder::SeqCst);
  // T1's SC fence joined the global SC view, which knows x@1: only the
  // newest message is readable, so the scripted stale pick never fires.
  EXPECT_EQ(M.load(T1, X, MemOrder::Relaxed), 1u);
}

TEST(MachineTest, EventIdsRideReleaseMessages) {
  ScriptedChoice C;
  Machine M(C);
  unsigned T0 = M.addThread(), T1 = M.addThread();
  Loc F = M.alloc("f");
  M.threadCur(T0).Events.insert(33);
  M.store(T0, F, 1, MemOrder::Release);
  EXPECT_EQ(M.load(T1, F, MemOrder::Acquire), 1u);
  EXPECT_TRUE(M.threadCur(T1).Events.contains(33));
}

TEST(MachineTest, EventIdsDoNotRideRelaxedMessages) {
  ScriptedChoice C;
  Machine M(C);
  unsigned T0 = M.addThread(), T1 = M.addThread();
  Loc F = M.alloc("f");
  M.threadCur(T0).Events.insert(33);
  M.store(T0, F, 1, MemOrder::Relaxed);
  EXPECT_EQ(M.load(T1, F, MemOrder::Acquire), 1u);
  EXPECT_FALSE(M.threadCur(T1).Events.contains(33));
}

TEST(MachineTest, LastReadTracksMostRecentRead) {
  ScriptedChoice C;
  Machine M(C);
  unsigned T0 = M.addThread(), T1 = M.addThread();
  Loc X = M.alloc("x");
  M.threadCur(T0).Events.insert(9);
  M.store(T0, X, 4, MemOrder::Release);
  M.load(T1, X, MemOrder::Acquire);
  EXPECT_EQ(M.lastReadTs(T1), 1u);
  EXPECT_TRUE(M.lastReadKnowledge(T1).Events.contains(9));
}

TEST(MachineTest, StatsCountOperations) {
  ScriptedChoice C;
  Machine M(C);
  unsigned T0 = M.addThread();
  Loc X = M.alloc("x");
  M.store(T0, X, 1, MemOrder::Relaxed);
  M.load(T0, X, MemOrder::Relaxed);
  M.cas(T0, X, 1, 2, MemOrder::AcqRel);
  M.fence(T0, MemOrder::SeqCst);
  EXPECT_EQ(M.stats().Stores, 1u);
  EXPECT_EQ(M.stats().Loads, 1u);
  EXPECT_EQ(M.stats().Rmws, 1u);
  EXPECT_EQ(M.stats().Fences, 1u);
}

TEST(MachineTest, TraceRecordsOperations) {
  ScriptedChoice C;
  Machine M(C);
  M.enableTrace(true);
  unsigned T0 = M.addThread();
  Loc X = M.alloc("x");
  M.store(T0, X, 1, MemOrder::Release);
  M.load(T0, X, MemOrder::Acquire);
  ASSERT_EQ(M.trace().size(), 2u);
  EXPECT_NE(M.trace()[0].find("st.rel"), std::string::npos);
  EXPECT_NE(M.trace()[1].find("ld.acq"), std::string::npos);
}

TEST(MachineTest, LoadWhereReadsSatisfyingMessage) {
  ScriptedChoice C;
  Machine M(C);
  unsigned T0 = M.addThread(), T1 = M.addThread();
  Loc X = M.alloc("x");
  M.store(T0, X, 1, MemOrder::Relaxed);
  M.store(T0, X, 2, MemOrder::Relaxed);
  EXPECT_FALSE(M.anyReadableSatisfies(T1, X, [](Value V) { return V > 2; }));
  EXPECT_TRUE(M.anyReadableSatisfies(T1, X, [](Value V) { return V == 1; }));
  EXPECT_EQ(M.loadWhere(T1, X, MemOrder::Acquire,
                        [](Value V) { return V == 1; }),
            1u);
}
