//===-- tests/ElimStackTest.cpp - Compositional verification (Section 4) ---===//
//
// Experiment E6's substance: the elimination stack's event graph is
// *derived* from its base stack's and exchanger's graphs via the Section
// 4.1 simulation relation (spec/Composition.h), and StackConsistent is
// checked on the derived graph in every explored execution — including
// ones where eliminations actually happen.
//
//===----------------------------------------------------------------------===//

#include "lib/ElimStack.h"
#include "sim/Explorer.h"
#include "spec/Composition.h"
#include "spec/Consistency.h"
#include "spec/Linearization.h"

#include <gtest/gtest.h>

#include <memory>

using namespace compass;
using namespace compass::rmc;
using namespace compass::sim;
using namespace compass::spec;
using compass::graph::EmptyVal;
using compass::graph::EventGraph;
using compass::graph::FailRaceVal;
using compass::graph::OpKind;

namespace {

constexpr unsigned EsObjId = 100; // Fresh object id for derived graphs.

Task<void> esPusher(Env &E, lib::ElimStack &S, std::vector<Value> Vs,
                    unsigned Rounds, unsigned *Failed) {
  for (Value V : Vs) {
    auto T = S.push(E, V, Rounds);
    bool Ok = co_await T;
    if (!Ok)
      ++*Failed;
  }
}

Task<void> esPopper(Env &E, lib::ElimStack &S, unsigned N, unsigned Rounds,
                    std::vector<Value> *Out) {
  for (unsigned I = 0; I != N; ++I) {
    auto T = S.pop(E, Rounds);
    Out->push_back(co_await T);
  }
}

struct ElimStats {
  uint64_t Checked = 0;
  uint64_t Violations = 0;
  uint64_t NoLinearization = 0;
  uint64_t Eliminations = 0;
  std::string FirstViolation;
};

ElimStats exploreElimStack(std::vector<std::vector<Value>> Pushes,
                           std::vector<unsigned> Pops, unsigned Rounds,
                           unsigned PreemptionBound,
                           uint64_t MaxExecutions = 300'000) {
  Explorer::Options Opts;
  Opts.PreemptionBound = PreemptionBound;
  Opts.MaxExecutions = MaxExecutions;

  ElimStats Stats;
  std::unique_ptr<SpecMonitor> Mon;
  std::unique_ptr<lib::ElimStack> St;
  std::vector<std::vector<Value>> Got;
  unsigned PushFails = 0;

  auto Sum = explore(
      Opts,
      [&](Machine &M, Scheduler &S) {
        Mon = std::make_unique<SpecMonitor>();
        St = std::make_unique<lib::ElimStack>(M, *Mon, "es");
        Got.assign(Pops.size(), {});
        PushFails = 0;
        for (auto &Vs : Pushes) {
          Env &E = S.newThread();
          S.start(E, esPusher(E, *St, Vs, Rounds, &PushFails));
        }
        for (size_t I = 0; I != Pops.size(); ++I) {
          Env &E = S.newThread();
          S.start(E, esPopper(E, *St, Pops[I], Rounds, &Got[I]));
        }
      },
      [&](Machine &M, Scheduler &, Scheduler::RunResult R) {
        EXPECT_NE(R, Scheduler::RunResult::Race) << M.raceMessage();
        if (R != Scheduler::RunResult::Done)
          return;
        ++Stats.Checked;
        EventGraph Es = buildElimStackGraph(
            Mon->graph(), St->baseObjId(), St->exchangerObjId(), EsObjId);
        // Count eliminated pairs: derived pushes whose id belongs to an
        // exchange event in the source graph.
        for (graph::EventId Id : Es.objectEvents(EsObjId))
          if (Es.event(Id).Kind == OpKind::Push &&
              Mon->graph().isCommitted(Id) &&
              Mon->graph().event(Id).Kind == OpKind::Exchange)
            ++Stats.Eliminations;
        auto CR = checkStackConsistent(Es, EsObjId);
        if (!CR.ok()) {
          ++Stats.Violations;
          if (Stats.FirstViolation.empty())
            Stats.FirstViolation =
                CR.str() + "derived:\n" + Es.str() + "source:\n" +
                Mon->graph().str();
        }
        if (!findLinearization(Es, EsObjId, SeqSpec::Stack).Found) {
          ++Stats.NoLinearization;
          if (Stats.FirstViolation.empty())
            Stats.FirstViolation = "no linearization:\n" + Es.str();
        }
      });
  EXPECT_GT(Sum.Executions, 0u);
  EXPECT_EQ(Sum.Races, 0u);
  return Stats;
}

} // namespace

TEST(ElimStackTest, SequentialPushPopConsistent) {
  auto Stats = exploreElimStack({{1, 2}}, {}, /*Rounds=*/2, 0);
  EXPECT_GT(Stats.Checked, 0u);
  EXPECT_EQ(Stats.Violations, 0u) << Stats.FirstViolation;
}

TEST(ElimStackTest, PushPopPairConsistent) {
  auto Stats = exploreElimStack({{1}}, {1}, /*Rounds=*/2,
                                /*PreemptionBound=*/2);
  EXPECT_GT(Stats.Checked, 0u);
  EXPECT_EQ(Stats.Violations, 0u) << Stats.FirstViolation;
  EXPECT_EQ(Stats.NoLinearization, 0u) << Stats.FirstViolation;
}

TEST(ElimStackTest, ContendedWorkloadEliminatesAndStaysConsistent) {
  // One pusher thread (two pushes) and two popper threads: contention on
  // the base stack's head drives operations into the exchanger, where a
  // pusher and a popper can eliminate.
  auto Stats = exploreElimStack({{1, 2}}, {1, 1}, /*Rounds=*/3,
                                /*PreemptionBound=*/2);
  EXPECT_GT(Stats.Checked, 0u);
  EXPECT_EQ(Stats.Violations, 0u) << Stats.FirstViolation;
  EXPECT_EQ(Stats.NoLinearization, 0u) << Stats.FirstViolation;
  EXPECT_GT(Stats.Eliminations, 0u)
      << "elimination through the exchanger must be reachable";
}
