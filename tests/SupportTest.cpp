//===-- tests/SupportTest.cpp - Unit tests for support utilities -----------===//

#include "support/Choice.h"
#include "support/IdSet.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <set>

using namespace compass;

TEST(RngTest, DeterministicGivenSeed) {
  Rng A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng A(1), B(2);
  int Same = 0;
  for (int I = 0; I < 64; ++I)
    Same += A.next() == B.next();
  EXPECT_LT(Same, 4);
}

TEST(RngTest, BelowRespectsBound) {
  Rng R(7);
  for (uint64_t Bound : {1ull, 2ull, 3ull, 10ull, 1000ull})
    for (int I = 0; I < 200; ++I)
      EXPECT_LT(R.below(Bound), Bound);
}

TEST(RngTest, RangeInclusive) {
  Rng R(9);
  std::set<uint64_t> Seen;
  for (int I = 0; I < 300; ++I) {
    uint64_t V = R.range(5, 7);
    EXPECT_GE(V, 5u);
    EXPECT_LE(V, 7u);
    Seen.insert(V);
  }
  EXPECT_EQ(Seen.size(), 3u); // All three values hit.
}

TEST(RngTest, SplitMixAdvancesState) {
  uint64_t S = 0;
  uint64_t A = splitMix64(S);
  uint64_t B = splitMix64(S);
  EXPECT_NE(A, B);
}

TEST(IdSetTest, InsertContainsErase) {
  IdSet S;
  EXPECT_TRUE(S.empty());
  EXPECT_FALSE(S.contains(0));
  S.insert(0);
  S.insert(63);
  S.insert(64);
  S.insert(1000);
  EXPECT_TRUE(S.contains(0));
  EXPECT_TRUE(S.contains(63));
  EXPECT_TRUE(S.contains(64));
  EXPECT_TRUE(S.contains(1000));
  EXPECT_FALSE(S.contains(65));
  EXPECT_EQ(S.count(), 4u);
  S.erase(64);
  EXPECT_FALSE(S.contains(64));
  EXPECT_EQ(S.count(), 3u);
}

TEST(IdSetTest, JoinIsUnion) {
  IdSet A, B;
  A.insert(1);
  A.insert(100);
  B.insert(2);
  B.insert(100);
  A.joinWith(B);
  EXPECT_TRUE(A.contains(1));
  EXPECT_TRUE(A.contains(2));
  EXPECT_TRUE(A.contains(100));
  EXPECT_EQ(A.count(), 3u);
}

TEST(IdSetTest, SubsetOrder) {
  IdSet A, B;
  A.insert(3);
  B.insert(3);
  B.insert(700);
  EXPECT_TRUE(A.subsetOf(B));
  EXPECT_FALSE(B.subsetOf(A));
  EXPECT_TRUE(A.subsetOf(A));
  IdSet Empty;
  EXPECT_TRUE(Empty.subsetOf(A));
}

TEST(IdSetTest, EqualityIgnoresTrailingZeros) {
  IdSet A, B;
  A.insert(5);
  B.insert(5);
  B.insert(500);
  B.erase(500); // Leaves zero words behind.
  EXPECT_TRUE(A == B);
}

TEST(IdSetTest, ForEachAscending) {
  IdSet S;
  S.insert(9);
  S.insert(2);
  S.insert(200);
  std::vector<uint32_t> Got = S.toVector();
  ASSERT_EQ(Got.size(), 3u);
  EXPECT_EQ(Got[0], 2u);
  EXPECT_EQ(Got[1], 9u);
  EXPECT_EQ(Got[2], 200u);
}

TEST(ChoiceTest, FirstChoicePicksZero) {
  FirstChoice C;
  EXPECT_EQ(C.choose(1, "t"), 0u);
  EXPECT_EQ(C.choose(5, "t"), 0u);
}
