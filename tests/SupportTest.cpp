//===-- tests/SupportTest.cpp - Unit tests for support utilities -----------===//

#include "support/Choice.h"
#include "support/IdSet.h"
#include "support/Json.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <limits>
#include <set>
#include <vector>

using namespace compass;

TEST(RngTest, DeterministicGivenSeed) {
  Rng A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng A(1), B(2);
  int Same = 0;
  for (int I = 0; I < 64; ++I)
    Same += A.next() == B.next();
  EXPECT_LT(Same, 4);
}

TEST(RngTest, BelowRespectsBound) {
  Rng R(7);
  for (uint64_t Bound : {1ull, 2ull, 3ull, 10ull, 1000ull})
    for (int I = 0; I < 200; ++I)
      EXPECT_LT(R.below(Bound), Bound);
}

TEST(RngTest, RangeInclusive) {
  Rng R(9);
  std::set<uint64_t> Seen;
  for (int I = 0; I < 300; ++I) {
    uint64_t V = R.range(5, 7);
    EXPECT_GE(V, 5u);
    EXPECT_LE(V, 7u);
    Seen.insert(V);
  }
  EXPECT_EQ(Seen.size(), 3u); // All three values hit.
}

TEST(RngTest, SplitMixAdvancesState) {
  uint64_t S = 0;
  uint64_t A = splitMix64(S);
  uint64_t B = splitMix64(S);
  EXPECT_NE(A, B);
}

TEST(IdSetTest, InsertContainsErase) {
  IdSet S;
  EXPECT_TRUE(S.empty());
  EXPECT_FALSE(S.contains(0));
  S.insert(0);
  S.insert(63);
  S.insert(64);
  S.insert(1000);
  EXPECT_TRUE(S.contains(0));
  EXPECT_TRUE(S.contains(63));
  EXPECT_TRUE(S.contains(64));
  EXPECT_TRUE(S.contains(1000));
  EXPECT_FALSE(S.contains(65));
  EXPECT_EQ(S.count(), 4u);
  S.erase(64);
  EXPECT_FALSE(S.contains(64));
  EXPECT_EQ(S.count(), 3u);
}

TEST(IdSetTest, JoinIsUnion) {
  IdSet A, B;
  A.insert(1);
  A.insert(100);
  B.insert(2);
  B.insert(100);
  A.joinWith(B);
  EXPECT_TRUE(A.contains(1));
  EXPECT_TRUE(A.contains(2));
  EXPECT_TRUE(A.contains(100));
  EXPECT_EQ(A.count(), 3u);
}

TEST(IdSetTest, SubsetOrder) {
  IdSet A, B;
  A.insert(3);
  B.insert(3);
  B.insert(700);
  EXPECT_TRUE(A.subsetOf(B));
  EXPECT_FALSE(B.subsetOf(A));
  EXPECT_TRUE(A.subsetOf(A));
  IdSet Empty;
  EXPECT_TRUE(Empty.subsetOf(A));
}

TEST(IdSetTest, EqualityIgnoresTrailingZeros) {
  IdSet A, B;
  A.insert(5);
  B.insert(5);
  B.insert(500);
  B.erase(500); // Leaves zero words behind.
  EXPECT_TRUE(A == B);
}

TEST(IdSetTest, ForEachAscending) {
  IdSet S;
  S.insert(9);
  S.insert(2);
  S.insert(200);
  std::vector<uint32_t> Got = S.toVector();
  ASSERT_EQ(Got.size(), 3u);
  EXPECT_EQ(Got[0], 2u);
  EXPECT_EQ(Got[1], 9u);
  EXPECT_EQ(Got[2], 200u);
}

TEST(ChoiceTest, FirstChoicePicksZero) {
  FirstChoice C;
  EXPECT_EQ(C.choose(1, "t"), 0u);
  EXPECT_EQ(C.choose(5, "t"), 0u);
}

//===----------------------------------------------------------------------===//
// JsonWriter string escaping and double round-trips. The control-byte case
// pins the unsigned-char promotion in the \u escape path (a sign-extending
// implementation prints eight hex digits for bytes >= 0x80), and the double
// cases pin shortest-round-trip formatting (the old %.6g truncated epoch
// timestamps to "1.786e+09" in telemetry records).
//===----------------------------------------------------------------------===//

namespace {

std::string jsonString(std::string_view S) {
  JsonWriter J;
  J.value(S);
  return J.str();
}

std::string jsonDouble(double V) {
  JsonWriter J;
  J.value(V);
  return J.str();
}

} // namespace

TEST(JsonTest, EscapesControlBytesAsFourHexDigits) {
  EXPECT_EQ(jsonString(std::string_view("\x01", 1)), "\"\\u0001\"");
  EXPECT_EQ(jsonString(std::string_view("\x1f", 1)), "\"\\u001f\"");
  EXPECT_EQ(jsonString(std::string_view("\x00", 1)), "\"\\u0000\"");
  // A control byte embedded in text must not disturb its neighbours.
  EXPECT_EQ(jsonString(std::string_view("a\x02z", 3)), "\"a\\u0002z\"");
}

TEST(JsonTest, EscapesShorthandAndQuoting) {
  EXPECT_EQ(jsonString("line\nbreak"), "\"line\\nbreak\"");
  EXPECT_EQ(jsonString("tab\there"), "\"tab\\there\"");
  EXPECT_EQ(jsonString("cr\rhere"), "\"cr\\rhere\"");
  EXPECT_EQ(jsonString("say \"hi\""), "\"say \\\"hi\\\"\"");
  EXPECT_EQ(jsonString("back\\slash"), "\"back\\\\slash\"");
}

TEST(JsonTest, HighBytesPassThroughVerbatim) {
  // Multi-byte UTF-8 sequences (all bytes >= 0x80) must be copied as-is,
  // never routed through the \u escape path where sign extension would
  // corrupt them.
  const std::string Utf8 = "caf\xc3\xa9 \xe2\x88\x80x";
  EXPECT_EQ(jsonString(Utf8), "\"" + Utf8 + "\"");
  const std::string Single = "\x80\xff";
  EXPECT_EQ(jsonString(Single), "\"" + Single + "\"");
}

TEST(JsonTest, DoublesRoundTrip) {
  // Shortest-form values stay short.
  EXPECT_EQ(jsonDouble(0.0), "0");
  EXPECT_EQ(jsonDouble(1.5), "1.5");
  EXPECT_EQ(jsonDouble(-2.25), "-2.25");
  // Values that %.6g would truncate must parse back exactly.
  for (double V : {1754500000.123456, 0.1, 1.0 / 3.0, 1e-300, 123456789.0,
                   9007199254740993.0 /* 2^53 + 1, rounds to 2^53 */}) {
    std::string S = jsonDouble(V);
    EXPECT_EQ(std::strtod(S.c_str(), nullptr), V) << S;
  }
}

TEST(JsonTest, NonFiniteBecomesNull) {
  EXPECT_EQ(jsonDouble(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(jsonDouble(-std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(jsonDouble(std::numeric_limits<double>::quiet_NaN()), "null");
}
