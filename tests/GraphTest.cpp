//===-- tests/GraphTest.cpp - Event graph unit tests ------------------------===//

#include "graph/Event.h"
#include "graph/EventGraph.h"

#include <gtest/gtest.h>

using namespace compass;
using namespace compass::graph;

namespace {

/// Builds a committed event with the given logical view (self included
/// automatically).
Event mkEvent(OpKind K, rmc::Value V, unsigned Obj, unsigned Thread,
              uint32_t CommitIdx, EventId Self,
              std::initializer_list<EventId> Seen = {}) {
  Event E;
  E.Kind = K;
  E.V1 = V;
  E.ObjId = Obj;
  E.Thread = Thread;
  E.CommitIdx = CommitIdx;
  E.LogView.insert(Self);
  for (EventId Id : Seen)
    E.LogView.insert(Id);
  return E;
}

} // namespace

TEST(EventTest, KindNames) {
  EXPECT_STREQ(opKindName(OpKind::Enq), "Enq");
  EXPECT_STREQ(opKindName(OpKind::DeqEmpty), "Deq(eps)");
  EXPECT_STREQ(opKindName(OpKind::Exchange), "Xchg");
}

TEST(EventTest, WriteKinds) {
  EXPECT_TRUE(isWriteKind(OpKind::Enq));
  EXPECT_TRUE(isWriteKind(OpKind::PopOk));
  EXPECT_FALSE(isWriteKind(OpKind::DeqEmpty));
  EXPECT_FALSE(isWriteKind(OpKind::Invalid));
}

TEST(EventTest, StrShowsPayloadAndSentinels) {
  Event E = mkEvent(OpKind::Exchange, 5, 0, 2, 3, 0);
  E.V2 = BottomVal;
  std::string S = E.str(0);
  EXPECT_NE(S.find("Xchg(5, bot)"), std::string::npos);
  EXPECT_NE(S.find("T2"), std::string::npos);
}

TEST(EventGraphTest, ReserveCommitLifecycle) {
  EventGraph G;
  EventId A = G.reserve();
  EXPECT_FALSE(G.isCommitted(A));
  G.commit(A, mkEvent(OpKind::Enq, 1, 0, 0, 0, A));
  EXPECT_TRUE(G.isCommitted(A));
  EXPECT_EQ(G.event(A).Kind, OpKind::Enq);
  EXPECT_EQ(G.event(A).CommitIdx, 0u);
  EventId B = G.reserve();
  G.commit(B, mkEvent(OpKind::Enq, 2, 0, 0, 0, B, {A}));
  EXPECT_EQ(G.event(B).CommitIdx, 1u) << "commit order is assigned";
}

TEST(EventGraphTest, RetractedIdsStayInvisible) {
  EventGraph G;
  EventId A = G.reserve();
  G.retract(A);
  EXPECT_FALSE(G.isCommitted(A));
  EXPECT_TRUE(G.committedEvents().empty());
}

TEST(EventGraphTest, LhbFollowsLogicalViews) {
  EventGraph G;
  EventId A = G.reserve(), B = G.reserve(), C = G.reserve();
  G.commit(A, mkEvent(OpKind::Enq, 1, 0, 0, 0, A));
  G.commit(B, mkEvent(OpKind::Enq, 2, 0, 0, 0, B, {A}));
  G.commit(C, mkEvent(OpKind::Enq, 3, 0, 1, 0, C));
  EXPECT_TRUE(G.lhb(A, B));
  EXPECT_FALSE(G.lhb(B, A));
  EXPECT_FALSE(G.lhb(A, C));
  EXPECT_FALSE(G.lhb(A, A)) << "lhb is irreflexive";
}

TEST(EventGraphTest, SoEdgesAndMatching) {
  EventGraph G;
  EventId E1 = G.reserve(), D1 = G.reserve();
  G.commit(E1, mkEvent(OpKind::Enq, 1, 0, 0, 0, E1));
  G.commit(D1, mkEvent(OpKind::DeqOk, 1, 0, 1, 0, D1, {E1}));
  G.addSo(E1, D1);
  ASSERT_TRUE(G.matchOfProducer(E1).has_value());
  EXPECT_EQ(*G.matchOfProducer(E1), D1);
  ASSERT_TRUE(G.matchOfConsumer(D1).has_value());
  EXPECT_EQ(*G.matchOfConsumer(D1), E1);
  EXPECT_FALSE(G.matchOfProducer(D1).has_value());
}

TEST(EventGraphTest, ObjectProjection) {
  EventGraph G;
  EventId A = G.reserve(), B = G.reserve();
  G.commit(A, mkEvent(OpKind::Enq, 1, /*Obj=*/0, 0, 0, A));
  G.commit(B, mkEvent(OpKind::Push, 2, /*Obj=*/1, 0, 0, B));
  EXPECT_EQ(G.objectEvents(0).size(), 1u);
  EXPECT_EQ(G.objectEvents(1).size(), 1u);
  EXPECT_EQ(G.objectEvents(0)[0], A);
  EXPECT_EQ(G.committedEvents().size(), 2u);
}

TEST(EventGraphTest, WellFormedAcceptsGoodGraph) {
  EventGraph G;
  EventId A = G.reserve(), B = G.reserve();
  G.commit(A, mkEvent(OpKind::Enq, 1, 0, 0, 0, A));
  G.commit(B, mkEvent(OpKind::DeqOk, 1, 0, 1, 0, B, {A}));
  G.addSo(A, B);
  EXPECT_EQ(G.checkWellFormed(), "");
}

TEST(EventGraphTest, WellFormedRejectsMissingSelf) {
  EventGraph G;
  EventId A = G.reserve();
  Event E = mkEvent(OpKind::Enq, 1, 0, 0, 0, A);
  E.LogView.clear(); // Drop the self-observation.
  G.commit(A, std::move(E));
  EXPECT_NE(G.checkWellFormed().find("does not observe itself"),
            std::string::npos);
}

TEST(EventGraphTest, WellFormedRejectsFutureObservation) {
  EventGraph G;
  EventId A = G.reserve(), B = G.reserve();
  // A claims to observe B, which commits later.
  G.commit(A, mkEvent(OpKind::Enq, 1, 0, 0, 0, A, {B}));
  G.commit(B, mkEvent(OpKind::Enq, 2, 0, 0, 0, B));
  EXPECT_NE(G.checkWellFormed().find("later-committed"), std::string::npos);
}

TEST(EventGraphTest, WellFormedRejectsNonTransitiveViews) {
  EventGraph G;
  EventId A = G.reserve(), B = G.reserve(), C = G.reserve();
  G.commit(A, mkEvent(OpKind::Enq, 1, 0, 0, 0, A));
  G.commit(B, mkEvent(OpKind::Enq, 2, 0, 0, 0, B, {A}));
  G.commit(C, mkEvent(OpKind::Enq, 3, 0, 0, 0, C, {B})); // Missing A.
  EXPECT_NE(G.checkWellFormed().find("transitively"), std::string::npos);
}

TEST(EventGraphTest, WellFormedIgnoresUncommittedViewIds) {
  EventGraph G;
  EventId A = G.reserve(), R = G.reserve();
  G.retract(R);
  G.commit(A, mkEvent(OpKind::Enq, 1, 0, 0, 0, A, {R}));
  EXPECT_EQ(G.checkWellFormed(), "")
      << "retracted ids in views carry no information";
}

TEST(EventGraphTest, AddRawPreservesCommitIndices) {
  EventGraph G;
  G.addRaw(5, mkEvent(OpKind::Push, 1, 0, 0, /*CommitIdx=*/10, 5));
  G.addRaw(2, mkEvent(OpKind::PopOk, 1, 0, 1, /*CommitIdx=*/11, 2, {5}));
  auto Evs = G.committedEvents();
  ASSERT_EQ(Evs.size(), 2u);
  EXPECT_EQ(Evs[0], 5u);
  EXPECT_EQ(Evs[1], 2u);
  // Future reserve+commit continues after the raw indices.
  EventId C = G.reserve();
  G.commit(C, mkEvent(OpKind::Push, 2, 0, 0, 0, C));
  EXPECT_EQ(G.event(C).CommitIdx, 12u);
}

TEST(EventGraphTest, StrListsEventsAndEdges) {
  EventGraph G;
  EventId A = G.reserve(), B = G.reserve();
  G.commit(A, mkEvent(OpKind::Enq, 1, 0, 0, 0, A));
  G.commit(B, mkEvent(OpKind::DeqOk, 1, 0, 1, 0, B, {A}));
  G.addSo(A, B);
  std::string S = G.str();
  EXPECT_NE(S.find("Enq(1)"), std::string::npos);
  EXPECT_NE(S.find("so: #0 -> #1"), std::string::npos);
}
