//===-- tests/ParallelTest.cpp - Parallel exploration determinism ----------===//
//
// The determinism suite for the parallel exploration engine: for each
// workload (SB / MP / CoRR litmus tests plus the E2 MS-queue configuration)
// the Summary's deterministic core — executions, completed, races,
// violations, Exhausted, MaxDepth, per-tag choice statistics, and the first
// violating trace — must be bit-identical across 1, 2, and 4 workers. Also
// covers counterexample surfacing + replay() reproduction, the Workload
// replay entry point, and the conformance harness (generated scenario
// workloads and the sweep fingerprint, DESIGN.md §7) across worker counts.
//
//===----------------------------------------------------------------------===//

#include "SimTestUtil.h"
#include "check/Conformance.h"
#include "lib/MsQueue.h"
#include "sim/ParallelExplorer.h"
#include "sim/Workload.h"
#include "spec/Consistency.h"
#include "spec/SpecMonitor.h"

#include <gtest/gtest.h>

#include <memory>

using namespace compass;
using namespace compass::rmc;
using namespace compass::sim;

namespace {

//===----------------------------------------------------------------------===//
// Litmus workload bodies
//===----------------------------------------------------------------------===//

Task<void> sbThread(Env &E, Loc Mine, Loc Theirs, Value *R) {
  co_await E.store(Mine, 1, MemOrder::Relaxed);
  *R = co_await E.load(Theirs, MemOrder::Relaxed);
}

Task<void> mpWriter(Env &E, Loc X, Loc F, MemOrder StoreO) {
  co_await E.store(X, 1, MemOrder::Relaxed);
  co_await E.store(F, 1, StoreO);
}

Task<void> mpReader(Env &E, Loc X, Loc F, MemOrder LoadO, Value *Flag,
                    Value *Data) {
  *Flag = co_await E.load(F, LoadO);
  *Data = co_await E.load(X, MemOrder::Relaxed);
}

Task<void> corrWriter(Env &E, Loc X) {
  co_await E.store(X, 1, MemOrder::Relaxed);
  co_await E.store(X, 2, MemOrder::Relaxed);
}

Task<void> corrReader(Env &E, Loc X, Value *R1, Value *R2) {
  *R1 = co_await E.load(X, MemOrder::Relaxed);
  *R2 = co_await E.load(X, MemOrder::Relaxed);
}

/// Store-buffering litmus; check: never both-zero *and* fully relaxed, so
/// the check FAILS on the weak outcome — used to exercise violation
/// surfacing deterministically. With \p ExpectWeak the check passes always.
Workload sbWorkload(unsigned Workers, bool FailOnWeak) {
  Explorer::Options Opts;
  Opts.Workers = Workers;
  return Workload(Opts, [FailOnWeak]() -> Workload::Body {
    auto R0 = std::make_shared<Value>();
    auto R1 = std::make_shared<Value>();
    Workload::Body B{
        [R0, R1](Machine &M, Scheduler &S) {
          *R0 = *R1 = ~0ull;
          Loc X = M.alloc("x"), Y = M.alloc("y");
          Env &E0 = S.newThread();
          S.start(E0, sbThread(E0, X, Y, R0.get()));
          Env &E1 = S.newThread();
          S.start(E1, sbThread(E1, Y, X, R1.get()));
        },
        [R0, R1, FailOnWeak](Machine &, Scheduler &,
                             Scheduler::RunResult R) {
          if (R != Scheduler::RunResult::Done)
            return false;
          if (FailOnWeak && *R0 == 0 && *R1 == 0)
            return false; // the store-buffering outcome
          return true;
        }};
    // The only client state is the two result sinks, fully rewritten by
    // the fast-forward resume: safe for the copy-on-write engine.
    B.CowSafe = true;
    return B;
  });
}

/// Message-passing litmus. With relaxed orderings the "no stale data"
/// check has violating executions (flag=1, data=0).
Workload mpWorkload(unsigned Workers, MemOrder StoreO, MemOrder LoadO) {
  Explorer::Options Opts;
  Opts.Workers = Workers;
  return Workload(Opts, [StoreO, LoadO]() -> Workload::Body {
    auto Flag = std::make_shared<Value>();
    auto Data = std::make_shared<Value>();
    Workload::Body B{
        [=](Machine &M, Scheduler &S) {
          *Flag = *Data = 0;
          Loc X = M.alloc("x"), F = M.alloc("f");
          Env &E0 = S.newThread();
          S.start(E0, mpWriter(E0, X, F, StoreO));
          Env &E1 = S.newThread();
          S.start(E1, mpReader(E1, X, F, LoadO, Flag.get(), Data.get()));
        },
        [Flag, Data](Machine &, Scheduler &, Scheduler::RunResult R) {
          if (R != Scheduler::RunResult::Done)
            return false;
          return !(*Flag == 1 && *Data == 0); // no stale data
        }};
    B.CowSafe = true; // sinks are rewritten by the fast-forward resume
    return B;
  });
}

/// Coherence litmus; check: reads never go backwards (always passes).
Workload corrWorkload(unsigned Workers) {
  Explorer::Options Opts;
  Opts.Workers = Workers;
  return Workload(Opts, []() -> Workload::Body {
    auto R1 = std::make_shared<Value>();
    auto R2 = std::make_shared<Value>();
    Workload::Body B{
        [R1, R2](Machine &M, Scheduler &S) {
          *R1 = *R2 = 0;
          Loc X = M.alloc("x");
          Env &E0 = S.newThread();
          S.start(E0, corrWriter(E0, X));
          Env &E1 = S.newThread();
          S.start(E1, corrReader(E1, X, R1.get(), R2.get()));
        },
        [R1, R2](Machine &, Scheduler &, Scheduler::RunResult) {
          return *R1 <= *R2;
        }};
    B.CowSafe = true; // sinks are rewritten by the fast-forward resume
    return B;
  });
}

/// The E2 MS-queue configuration: one enqueuer of {1,2}, two single-shot
/// dequeuers, preemption bound 2, checked against QueueConsistent. The
/// body factory gives every parallel worker its own monitor/queue state.
Workload msQueueWorkload(unsigned Workers) {
  Explorer::Options Opts;
  Opts.Workers = Workers;
  Opts.PreemptionBound = 2;
  Opts.MaxExecutions = 500'000;
  return Workload(Opts, []() -> Workload::Body {
    struct State {
      std::unique_ptr<spec::SpecMonitor> Mon;
      std::unique_ptr<lib::MsQueue> Q;
      std::vector<Value> Got0, Got1;
    };
    auto St = std::make_shared<State>();
    Workload::Body B{
        [St](Machine &M, Scheduler &S) {
          if (!St->Mon)
            St->Mon = std::make_unique<spec::SpecMonitor>();
          St->Mon->beginExecution(M);
          St->Q = std::make_unique<lib::MsQueue>(M, *St->Mon, "q");
          St->Got0.clear();
          St->Got1.clear();
          Env &E0 = S.newThread();
          S.start(E0, test::enqueuerThread(E0, *St->Q, {1, 2}));
          Env &E1 = S.newThread();
          S.start(E1, test::dequeuerThread(E1, *St->Q, 1, &St->Got0));
          Env &E2 = S.newThread();
          S.start(E2, test::dequeuerThread(E2, *St->Q, 1, &St->Got1));
        },
        [St](Machine &, Scheduler &, Scheduler::RunResult R) {
          if (R != Scheduler::RunResult::Done)
            return false;
          return spec::checkQueueConsistent(St->Mon->graph(),
                                            St->Q->objId())
              .ok();
        }};
    // Copy-on-write client state: the monitor's event graph rewinds by
    // epoch; the dequeuers' result sinks are saved and restored whole.
    struct CowState {
      spec::SpecMonitor::Epoch MonEpoch;
      std::vector<Value> Got0, Got1;
    };
    B.CowSave = [St](std::shared_ptr<void> &Slot) {
      if (!Slot)
        Slot = std::make_shared<CowState>();
      auto &C = *std::static_pointer_cast<CowState>(Slot);
      C.MonEpoch = St->Mon->epoch();
      C.Got0 = St->Got0;
      C.Got1 = St->Got1;
    };
    B.CowRestore = [St](const std::shared_ptr<void> &Slot) {
      const auto &C = *std::static_pointer_cast<CowState>(Slot);
      St->Mon->trimToEpoch(C.MonEpoch);
      St->Got0 = C.Got0;
      St->Got1 = C.Got1;
    };
    B.CowSkipFinished = true;
    return B;
  });
}

/// Asserts bit-identical deterministic cores across 1/2/4 workers.
void expectDeterministic(Workload (*Make)(unsigned), const char *Name) {
  auto S1 = explore(Make(1));
  auto S2 = explore(Make(2));
  auto S4 = explore(Make(4));
  EXPECT_EQ(S1.Executions, S2.Executions) << Name;
  EXPECT_EQ(S1.Executions, S4.Executions) << Name;
  EXPECT_EQ(S1.Completed, S4.Completed) << Name;
  EXPECT_EQ(S1.Races, S4.Races) << Name;
  EXPECT_EQ(S1.Violations, S4.Violations) << Name;
  EXPECT_EQ(S1.Exhausted, S4.Exhausted) << Name;
  EXPECT_TRUE(S1.coreEquals(S2))
      << Name << "\nserial:   " << S1.str() << "\n2-worker: " << S2.str();
  EXPECT_TRUE(S1.coreEquals(S4))
      << Name << "\nserial:   " << S1.str() << "\n4-worker: " << S4.str();
  EXPECT_EQ(S4.Perf.Workers, 4u);
}

} // namespace

//===----------------------------------------------------------------------===//
// Determinism suite
//===----------------------------------------------------------------------===//

TEST(ParallelDeterminism, StoreBufferingLitmus) {
  expectDeterministic(+[](unsigned W) { return sbWorkload(W, false); },
                      "SB");
}

TEST(ParallelDeterminism, StoreBufferingLitmusWithViolations) {
  expectDeterministic(+[](unsigned W) { return sbWorkload(W, true); },
                      "SB/weak-fails");
}

TEST(ParallelDeterminism, MessagePassingLitmusRelAcq) {
  expectDeterministic(
      +[](unsigned W) {
        return mpWorkload(W, MemOrder::Release, MemOrder::Acquire);
      },
      "MP rel/acq");
}

TEST(ParallelDeterminism, MessagePassingLitmusRelaxed) {
  expectDeterministic(
      +[](unsigned W) {
        return mpWorkload(W, MemOrder::Relaxed, MemOrder::Relaxed);
      },
      "MP rlx");
}

TEST(ParallelDeterminism, CoRRLitmus) {
  expectDeterministic(+[](unsigned W) { return corrWorkload(W); }, "CoRR");
}

TEST(ParallelDeterminism, MsQueueE2Workload) {
  expectDeterministic(+[](unsigned W) { return msQueueWorkload(W); },
                      "MS queue E2");
}

//===----------------------------------------------------------------------===//
// Conformance-harness determinism (DESIGN.md §7)
//===----------------------------------------------------------------------===//

namespace {

/// A generated conformance workload over the pristine (or mutated) library;
/// the Summary core must be worker-count independent like any other
/// workload. Hunting-sized scenarios keep the decision tree comfortably
/// inside the execution budget — a *truncated* tree's explored subset (and
/// hence MaxDepth) is worker-count dependent by design, which is also why
/// SweepReport's fingerprint only folds exhausted scenarios.
Workload conformanceWorkload(check::Lib L, check::Mutation Mut, uint64_t Seed,
                             unsigned Workers) {
  check::GenOptions G;
  G.MaxThreads = 2;
  G.MaxOpsPerThread = 2;
  G.MinPreemptions = G.MaxPreemptions = 1;
  check::Scenario S =
      check::generateScenario(L, check::scenarioSeed(Seed, L, 0), G);
  return check::makeWorkload(S, Mut,
                             check::scenarioOptions(S, 200000, Workers));
}

} // namespace

TEST(ParallelDeterminism, ConformancePristineMsQueueScenario) {
  expectDeterministic(
      +[](unsigned W) {
        return conformanceWorkload(check::Lib::MsQueue,
                                   check::Mutation::None, 11, W);
      },
      "conformance ms_queue pristine");
}

TEST(ParallelDeterminism, ConformanceMutatedTreiberScenario) {
  // With StopOnViolation off (scenarioOptions' default), even a
  // violation-dense mutated tree has a worker-count independent core —
  // including the *first* violating trace in DFS order.
  auto Make = +[](unsigned W) {
    return conformanceWorkload(check::Lib::TreiberStack,
                               check::Mutation::TreiberRelaxedPopHead, 13, W);
  };
  ASSERT_GT(explore(Make(1)).Violations, 0u)
      << "scenario no longer exercises the mutant; pick a new seed";
  expectDeterministic(Make, "conformance treiber mutant");
}

TEST(ParallelDeterminism, SweepFingerprintAcrossWorkers) {
  // The sweep report's fingerprint folds per-scenario Summary cores (for
  // exhausted trees), so it inherits the engine's determinism: identical
  // across 1/2/4 workers for a fixed seed.
  auto Run = [](unsigned Workers) {
    check::SweepOptions O;
    O.Seed = 5;
    O.ScenariosPerLib = 2;
    O.Workers = Workers;
    O.MaxExecutionsPerScenario = 60000;
    O.Libs = {check::Lib::MsQueue, check::Lib::TreiberStack,
              check::Lib::Exchanger, check::Lib::SpscRing};
    return check::runSweep(O);
  };
  check::SweepReport R1 = Run(1), R2 = Run(2), R4 = Run(4);
  EXPECT_TRUE(R1.clean()) << R1.str();
  EXPECT_EQ(R1.fingerprint(), R2.fingerprint())
      << "serial:\n" << R1.str() << "2 workers:\n" << R2.str();
  EXPECT_EQ(R1.fingerprint(), R4.fingerprint())
      << "serial:\n" << R1.str() << "4 workers:\n" << R4.str();
  EXPECT_EQ(R1.totalExecutions(), R4.totalExecutions());
  EXPECT_EQ(R1.totalViolations(), R4.totalViolations());
}

//===----------------------------------------------------------------------===//
// Counterexample surfacing and replay
//===----------------------------------------------------------------------===//

TEST(ParallelCounterexample, ViolationTraceReplaysToSameFailure) {
  // Relaxed MP has stale-data executions; any worker may find one, but the
  // surfaced trace must be the lexicographically least == the serial first.
  Workload W1 = mpWorkload(1, MemOrder::Relaxed, MemOrder::Relaxed);
  Workload W4 = mpWorkload(4, MemOrder::Relaxed, MemOrder::Relaxed);
  auto S1 = explore(W1);
  auto S4 = explore(W4);
  ASSERT_TRUE(S1.HasViolation);
  ASSERT_TRUE(S4.HasViolation);
  EXPECT_GT(S4.Violations, 0u);
  EXPECT_EQ(S1.firstViolationDecisions(), S4.firstViolationDecisions());

  // Replaying the surfaced trace reproduces the same failing check.
  ReplayResult RR = replay(W4, S4.firstViolationDecisions());
  EXPECT_EQ(RR.Run, Scheduler::RunResult::Done);
  EXPECT_FALSE(RR.CheckOk) << "replay must reproduce the violation";
  EXPECT_FALSE(RR.Diverged);

  // The pretty-printer names each decision with its tag and arity.
  std::string Pretty = Explorer::formatTrace(S4.FirstViolation);
  EXPECT_NE(Pretty.find("#0 "), std::string::npos);
  EXPECT_NE(Pretty.find("alts) -> "), std::string::npos);
  EXPECT_NE(Pretty.find("sched"), std::string::npos);
}

TEST(ParallelCounterexample, CleanWorkloadHasNoViolation) {
  auto Sum = explore(mpWorkload(4, MemOrder::Release, MemOrder::Acquire));
  EXPECT_EQ(Sum.Violations, 0u);
  EXPECT_FALSE(Sum.HasViolation);
  EXPECT_TRUE(Sum.Exhausted);
}

TEST(ParallelCounterexample, StopOnViolationStopsEarly) {
  // Serial: deterministic truncation at the first violating execution.
  Workload W1 = mpWorkload(1, MemOrder::Relaxed, MemOrder::Relaxed);
  W1.options().StopOnViolation = true;
  auto Sum = explore(W1);
  ASSERT_TRUE(Sum.HasViolation);
  EXPECT_EQ(Sum.Violations, 1u);
  auto Full = explore(mpWorkload(1, MemOrder::Relaxed, MemOrder::Relaxed));
  EXPECT_LT(Sum.Executions, Full.Executions);

  // Parallel: stops soon after any worker hits a violation; whichever one
  // was surfaced, its trace replays to the same failing check.
  Workload W4 = mpWorkload(4, MemOrder::Relaxed, MemOrder::Relaxed);
  W4.options().StopOnViolation = true;
  auto S4 = explore(W4);
  ASSERT_TRUE(S4.HasViolation);
  EXPECT_GE(S4.Violations, 1u);
  EXPECT_FALSE(replay(W4, S4.firstViolationDecisions()).CheckOk);
}

namespace {

/// Reference: the lexicographically least violating decision sequence is
/// what a *full* serial exploration surfaces (DFS first == lex-min, and
/// recordCheck keeps the lex-min across the whole run).
std::vector<unsigned> lexMinViolation(Workload W) {
  W.options().StopOnViolation = false;
  auto Sum = explore(W);
  EXPECT_TRUE(Sum.HasViolation);
  return Sum.firstViolationDecisions();
}

/// Pins the documented StopOnViolation guarantee: the surfaced first
/// violation is the lex-min violating decision sequence, identical at
/// 1/2/4 workers. \p Make builds the workload at a given worker count
/// with a given reduction mode.
void expectLexMinStop(Workload (*Make)(unsigned, ReductionMode),
                      ReductionMode Red, const char *Name) {
  std::vector<unsigned> Ref = lexMinViolation(Make(1, Red));
  ASSERT_FALSE(Ref.empty()) << Name;
  for (unsigned W : {1u, 2u, 4u}) {
    Workload Wl = Make(W, Red);
    Wl.options().StopOnViolation = true;
    auto Sum = explore(Wl);
    ASSERT_TRUE(Sum.HasViolation) << Name << " workers=" << W;
    EXPECT_EQ(Sum.firstViolationDecisions(), Ref)
        << Name << " workers=" << W
        << ": surfaced violation is not the lex-min sequence";
    // And it replays to the same failing check.
    EXPECT_FALSE(replay(Wl, Sum.firstViolationDecisions()).CheckOk)
        << Name << " workers=" << W;
  }
}

} // namespace

TEST(ParallelCounterexample, StopOnViolationIsLexMinAcrossWorkers) {
  expectLexMinStop(
      +[](unsigned W, ReductionMode R) {
        Workload Wl = mpWorkload(W, MemOrder::Relaxed, MemOrder::Relaxed);
        Wl.options().Reduction = R;
        return Wl;
      },
      ReductionMode::None, "MP relaxed, no reduction");
}

TEST(ParallelCounterexample, StopOnViolationIsLexMinUnderSleepReduction) {
  // Same guarantee with sleep-set reduction enabled: the reduced tree is
  // deterministic, so its lex-min violating sequence is too.
  expectLexMinStop(
      +[](unsigned W, ReductionMode R) {
        Workload Wl = mpWorkload(W, MemOrder::Relaxed, MemOrder::Relaxed);
        Wl.options().Reduction = R;
        return Wl;
      },
      ReductionMode::SleepSet, "MP relaxed, sleep reduction");
}

TEST(ParallelCounterexample, StopOnViolationIsLexMinOnMutatedConformance) {
  // A violation-dense conformance workload (mutated Treiber stack) under
  // the harness's default sleep reduction — the configuration long sweeps
  // actually run with.
  expectLexMinStop(
      +[](unsigned W, ReductionMode R) {
        Workload Wl = conformanceWorkload(
            check::Lib::TreiberStack, check::Mutation::TreiberRelaxedPopHead,
            13, W);
        Wl.options().Reduction = R;
        return Wl;
      },
      ReductionMode::SleepSet, "treiber mutant, sleep reduction");
}

//===----------------------------------------------------------------------===//
// Workload plumbing
//===----------------------------------------------------------------------===//

TEST(WorkloadTest, ExecutionBudgetMatchesSerialExactly) {
  auto Make = [](unsigned Workers) {
    Workload W = msQueueWorkload(Workers);
    W.options().MaxExecutions = 500; // truncate well below the tree size
    return W;
  };
  auto S1 = explore(Make(1));
  auto S4 = explore(Make(4));
  EXPECT_EQ(S1.Executions, 500u);
  EXPECT_EQ(S4.Executions, 500u);
  EXPECT_FALSE(S1.Exhausted);
  EXPECT_FALSE(S4.Exhausted);
}

TEST(WorkloadTest, TagStatisticsAreCollected) {
  auto Sum = explore(mpWorkload(2, MemOrder::Relaxed, MemOrder::Relaxed));
  ASSERT_TRUE(Sum.Tags.count("sched"));
  ASSERT_TRUE(Sum.Tags.count("load"));
  EXPECT_GT(Sum.Tags.at("sched").Choices, 0u);
  EXPECT_GE(Sum.Tags.at("sched").MaxArity, 2u);
  EXPECT_GT(Sum.Tags.at("load").AltSum, Sum.Tags.at("load").Choices);
}

TEST(WorkloadTest, SummaryJsonIsWellFormed) {
  auto Sum = explore(corrWorkload(2));
  std::string J = Sum.json();
  EXPECT_EQ(J.front(), '{');
  EXPECT_EQ(J.back(), '}');
  EXPECT_NE(J.find("\"executions\":"), std::string::npos);
  EXPECT_NE(J.find("\"execs_per_sec\":"), std::string::npos);
  EXPECT_NE(J.find("\"tags\":{"), std::string::npos);
  EXPECT_NE(J.find("\"sched\":{"), std::string::npos);
  EXPECT_NE(J.find("\"workers\":2"), std::string::npos);
}

TEST(WorkloadTest, ExploreExpectHelperPassesCleanWorkload) {
  auto Sum = test::exploreExpectNoViolations(
      mpWorkload(2, MemOrder::Release, MemOrder::Acquire));
  EXPECT_TRUE(Sum.Exhausted);
}

TEST(WorkloadTest, ReplayOfEveryExhaustiveTraceMatchesItsOutcome) {
  // Enumerate CoRR serially, recording each execution's decisions and
  // reader values; then replay each trace and confirm the identical
  // outcome — the replay determinism contract.
  Value R1 = 0, R2 = 0;
  std::vector<std::vector<unsigned>> Traces;
  std::vector<std::pair<Value, Value>> Outcomes;
  Explorer Ex{Explorer::Options{}};
  while (Ex.beginExecution()) {
    Machine M(Ex);
    Scheduler S(M, Ex);
    R1 = R2 = 0;
    Loc X = M.alloc("x");
    Env &E0 = S.newThread();
    S.start(E0, corrWriter(E0, X));
    Env &E1 = S.newThread();
    S.start(E1, corrReader(E1, X, &R1, &R2));
    auto R = S.run(Ex.options().MaxStepsPerExec);
    EXPECT_EQ(R, Scheduler::RunResult::Done);
    Traces.push_back(Ex.currentDecisions());
    Outcomes.push_back({R1, R2});
    Ex.endExecution(R);
  }
  ASSERT_GT(Traces.size(), 4u);

  auto Shared = std::make_shared<std::pair<Value, Value>>();
  Workload W(Explorer::Options{},
             [Shared](Machine &M, Scheduler &S) {
               Loc X = M.alloc("x");
               Env &E0 = S.newThread();
               S.start(E0, corrWriter(E0, X));
               Env &E1 = S.newThread();
               S.start(E1, corrReader(E1, X, &Shared->first,
                                      &Shared->second));
             });
  for (size_t I = 0; I != Traces.size(); ++I) {
    *Shared = {0, 0};
    ReplayResult RR = replay(W, Traces[I]);
    EXPECT_EQ(RR.Run, Scheduler::RunResult::Done);
    EXPECT_FALSE(RR.Diverged);
    EXPECT_EQ(*Shared, Outcomes[I]) << "trace " << I;
  }
}

//===----------------------------------------------------------------------===//
// Engine-path A/B: copy-on-write vs root replay (DESIGN.md Section 11)
//===----------------------------------------------------------------------===//

namespace {

Explorer::Summary exploreWithEngine(Workload W, EnginePath E) {
  W.options().Engine = E;
  return explore(W);
}

/// Pins the engine-equivalence guarantee across worker counts: the
/// copy-on-write engine's summary core — including the first violating
/// trace — is bit-identical to classic root replay's, at 1, 2, and 4
/// workers. \p ExpectResumes additionally asserts the cow fast path
/// actually engaged (CowResumes > 0), so the A/B never passes vacuously.
void expectEngineAB(Workload (*Make)(unsigned), const char *Name,
                    bool ExpectResumes) {
  for (unsigned Wk : {1u, 2u, 4u}) {
    Explorer::Summary Root =
        exploreWithEngine(Make(Wk), EnginePath::RootReplay);
    Explorer::Summary Cow = exploreWithEngine(Make(Wk), EnginePath::Auto);
    EXPECT_EQ(Root.Perf.CowResumes, 0u)
        << Name << " workers=" << Wk << ": RootReplay path took a snapshot";
    if (ExpectResumes) {
      EXPECT_GT(Cow.Perf.CowResumes, 0u)
          << Name << " workers=" << Wk << ": cow path never engaged";
    }
    EXPECT_TRUE(Root.coreEquals(Cow))
        << Name << " workers=" << Wk << "\nroot: " << Root.str()
        << "\ncow:  " << Cow.str();
    EXPECT_EQ(Root.firstViolationDecisions(), Cow.firstViolationDecisions())
        << Name << " workers=" << Wk;
  }
}

} // namespace

TEST(ParallelEngineAB, MpLitmusRelaxed) {
  expectEngineAB(
      +[](unsigned W) {
        return mpWorkload(W, MemOrder::Relaxed, MemOrder::Relaxed);
      },
      "MP rlx A/B", true);
}

TEST(ParallelEngineAB, MsQueueE2Workload) {
  expectEngineAB(+[](unsigned W) { return msQueueWorkload(W); },
                 "MS queue E2 A/B", true);
}

TEST(ParallelEngineAB, ConformancePristineMsQueue) {
  expectEngineAB(
      +[](unsigned W) {
        return conformanceWorkload(check::Lib::MsQueue,
                                   check::Mutation::None, 11, W);
      },
      "conformance ms_queue A/B", true);
}

TEST(ParallelEngineAB, ConformanceMutatedTreiberFirstViolation) {
  expectEngineAB(
      +[](unsigned W) {
        return conformanceWorkload(check::Lib::TreiberStack,
                                   check::Mutation::TreiberRelaxedPopHead,
                                   13, W);
      },
      "conformance treiber mutant A/B", true);
}

TEST(ParallelEngineAB, CheckpointResumeMatchesRootReplay) {
  // Reference: an uninterrupted serial root-replay run.
  auto Make = +[](unsigned W) {
    return conformanceWorkload(check::Lib::MsQueue, check::Mutation::None,
                               11, W);
  };
  Explorer::Summary Ref = exploreWithEngine(Make(1), EnginePath::RootReplay);
  ASSERT_TRUE(Ref.Exhausted);
  ASSERT_GE(Ref.Executions, 6u) << "tree too small to interrupt mid-flight";

  // Interrupt a 2-worker cow run mid-flight, then resume the snapshot at
  // 4 workers (still cow): the stitched summary core must equal the
  // uninterrupted root-replay reference bit for bit.
  Workload Seg1W = Make(2);
  Seg1W.options().Engine = EnginePath::Auto;
  ExploreControl Ctl;
  Ctl.InterruptAtExecs = Ref.Executions / 3;
  ExploreResult Seg1 = exploreResumable(Seg1W, Ctl);
  ASSERT_TRUE(Seg1.Interrupted) << "tree exhausted before the tripwire";
  ASSERT_FALSE(Seg1.Snapshot.empty());

  Workload Seg2W = Make(4);
  Seg2W.options().Engine = EnginePath::Auto;
  ExploreResult Seg2 =
      exploreResumable(Seg2W, ExploreControl{}, &Seg1.Snapshot);
  EXPECT_FALSE(Seg2.Interrupted);
  EXPECT_TRUE(Ref.coreEquals(Seg2.Sum))
      << "root-replay: " << Ref.str() << "\nresumed cow: " << Seg2.Sum.str();
}
