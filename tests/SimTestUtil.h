//===-- tests/SimTestUtil.h - Shared helpers for exploration tests -*- C++ -*-===//

#ifndef COMPASS_TESTS_SIMTESTUTIL_H
#define COMPASS_TESTS_SIMTESTUTIL_H

#include "lib/Container.h"
#include "sim/Explorer.h"
#include "sim/ParallelExplorer.h"
#include "sim/Workload.h"

#include <gtest/gtest.h>

#include <vector>

namespace compass::test {

/// Explores \p W (serial or parallel per its options) and fails the current
/// test if any execution violates the workload's check. On failure the
/// report carries everything needed to reproduce without re-exploring:
///  * the exploration seed and worker count (exact configuration),
///  * the first counterexample's decision trace, pretty-printed (tag +
///    arity per decision),
///  * a copy-pasteable `sim::replay(W, {...});` call for that trace, which
///    is also replayed on the spot to confirm it reproduces the failure.
inline sim::Explorer::Summary
exploreExpectNoViolations(const sim::Workload &W,
                          const char *WorkloadName = "W") {
  sim::Explorer::Summary Sum = sim::explore(W);
  if (Sum.Violations != 0) {
    sim::ReplayResult RR = sim::replay(W, Sum.firstViolationDecisions());
    ADD_FAILURE() << Sum.Violations
                  << " violating execution(s) [seed=" << W.options().Seed
                  << " workers=" << W.options().Workers
                  << "]; first counterexample:\n"
                  << sim::Explorer::formatTrace(Sum.FirstViolation)
                  << "reproduce with:\n  "
                  << sim::formatReplayCall(Sum.firstViolationDecisions(),
                                           WorkloadName)
                  << "\nreplay reproduces the failing check: "
                  << (RR.CheckOk ? "NO (check passed on replay!)" : "yes");
  }
  return Sum;
}

/// Enqueues each value of \p Vs in order.
inline sim::Task<void> enqueuerThread(sim::Env &E, lib::SimQueue &Q,
                                      std::vector<rmc::Value> Vs) {
  for (rmc::Value V : Vs) {
    auto T = Q.enqueue(E, V);
    co_await T;
  }
}

/// Dequeues \p N times (non-blocking), recording results (EmptyVal
/// included).
inline sim::Task<void> dequeuerThread(sim::Env &E, lib::SimQueue &Q,
                                      unsigned N,
                                      std::vector<rmc::Value> *Out) {
  for (unsigned I = 0; I != N; ++I) {
    auto T = Q.dequeue(E);
    Out->push_back(co_await T);
  }
}

/// Pushes each value of \p Vs in order.
inline sim::Task<void> pusherThread(sim::Env &E, lib::SimStack &S,
                                    std::vector<rmc::Value> Vs) {
  for (rmc::Value V : Vs) {
    auto T = S.push(E, V);
    co_await T;
  }
}

/// Pops \p N times (non-blocking), recording results.
inline sim::Task<void> popperThread(sim::Env &E, lib::SimStack &S,
                                    unsigned N,
                                    std::vector<rmc::Value> *Out) {
  for (unsigned I = 0; I != N; ++I) {
    auto T = S.pop(E);
    Out->push_back(co_await T);
  }
}

} // namespace compass::test

#endif // COMPASS_TESTS_SIMTESTUTIL_H
