//===-- tests/SimTestUtil.h - Shared helpers for exploration tests -*- C++ -*-===//

#ifndef COMPASS_TESTS_SIMTESTUTIL_H
#define COMPASS_TESTS_SIMTESTUTIL_H

#include "lib/Container.h"
#include "sim/Explorer.h"

#include <vector>

namespace compass::test {

/// Enqueues each value of \p Vs in order.
inline sim::Task<void> enqueuerThread(sim::Env &E, lib::SimQueue &Q,
                                      std::vector<rmc::Value> Vs) {
  for (rmc::Value V : Vs) {
    auto T = Q.enqueue(E, V);
    co_await T;
  }
}

/// Dequeues \p N times (non-blocking), recording results (EmptyVal
/// included).
inline sim::Task<void> dequeuerThread(sim::Env &E, lib::SimQueue &Q,
                                      unsigned N,
                                      std::vector<rmc::Value> *Out) {
  for (unsigned I = 0; I != N; ++I) {
    auto T = Q.dequeue(E);
    Out->push_back(co_await T);
  }
}

/// Pushes each value of \p Vs in order.
inline sim::Task<void> pusherThread(sim::Env &E, lib::SimStack &S,
                                    std::vector<rmc::Value> Vs) {
  for (rmc::Value V : Vs) {
    auto T = S.push(E, V);
    co_await T;
  }
}

/// Pops \p N times (non-blocking), recording results.
inline sim::Task<void> popperThread(sim::Env &E, lib::SimStack &S,
                                    unsigned N,
                                    std::vector<rmc::Value> *Out) {
  for (unsigned I = 0; I != N; ++I) {
    auto T = S.pop(E);
    Out->push_back(co_await T);
  }
}

} // namespace compass::test

#endif // COMPASS_TESTS_SIMTESTUTIL_H
