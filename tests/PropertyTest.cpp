//===-- tests/PropertyTest.cpp - Property-based sweeps ----------------------===//
//
// Randomized property tests (parameterized over seeds) for the framework's
// algebraic cores: the view lattice, logical-view sets, machine invariants
// under random operation soup, the linearization search on generated
// histories with known answers, and event-graph invariants (logical-view
// monotonicity along so edges, commit-index totality) over exhaustively
// explored generated scenarios.
//
//===----------------------------------------------------------------------===//

#include "check/Harness.h"
#include "check/ScenarioGen.h"
#include "graph/EventGraph.h"
#include "rmc/Machine.h"
#include "sim/Explorer.h"
#include "spec/Consistency.h"
#include "spec/Linearization.h"
#include "spec/SpecMonitor.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <set>

using namespace compass;
using namespace compass::rmc;

namespace {

View randomView(Rng &R, unsigned Locs, unsigned MaxTs) {
  View V;
  for (Loc L = 0; L != Locs; ++L)
    if (R.chance(1, 2))
      V.raise(L, static_cast<Timestamp>(R.range(0, MaxTs)));
  return V;
}

IdSet randomSet(Rng &R, unsigned MaxId) {
  IdSet S;
  for (uint32_t I = 0; I != MaxId; ++I)
    if (R.chance(1, 3))
      S.insert(I);
  return S;
}

} // namespace

class SeededProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SeededProperty, ViewJoinLatticeLaws) {
  Rng R(GetParam());
  for (int Round = 0; Round != 50; ++Round) {
    View A = randomView(R, 12, 20);
    View B = randomView(R, 12, 20);
    View C = randomView(R, 12, 20);

    // Commutativity.
    EXPECT_TRUE(join(A, B) == join(B, A));
    // Associativity.
    EXPECT_TRUE(join(join(A, B), C) == join(A, join(B, C)));
    // Idempotence.
    EXPECT_TRUE(join(A, A) == A);
    // The join is an upper bound.
    EXPECT_TRUE(A.includedIn(join(A, B)));
    EXPECT_TRUE(B.includedIn(join(A, B)));
    // It is the least one: any other upper bound includes it.
    View U = join(join(A, B), randomView(R, 12, 20));
    EXPECT_TRUE(join(A, B).includedIn(U));
    // Inclusion is antisymmetric up to equality.
    if (A.includedIn(B) && B.includedIn(A)) {
      EXPECT_TRUE(A == B);
    }
  }
}

TEST_P(SeededProperty, IdSetLatticeLaws) {
  Rng R(GetParam() + 1000);
  for (int Round = 0; Round != 50; ++Round) {
    IdSet A = randomSet(R, 150);
    IdSet B = randomSet(R, 150);

    IdSet AB = A;
    AB.joinWith(B);
    IdSet BA = B;
    BA.joinWith(A);
    EXPECT_TRUE(AB == BA);
    EXPECT_TRUE(A.subsetOf(AB));
    EXPECT_TRUE(B.subsetOf(AB));
    EXPECT_EQ(AB.count() + 0u,
              [&] {
                unsigned N = 0;
                for (uint32_t I = 0; I != 160; ++I)
                  N += A.contains(I) || B.contains(I);
                return N;
              }());

    // Insert/erase roundtrip on a fresh id.
    uint32_t Fresh = 200 + static_cast<uint32_t>(R.below(100));
    EXPECT_FALSE(A.contains(Fresh));
    A.insert(Fresh);
    EXPECT_TRUE(A.contains(Fresh));
    A.erase(Fresh);
    EXPECT_FALSE(A.contains(Fresh));
  }
}

namespace {

/// A ChoiceSource driving random machine operations.
class RandomChoice final : public ChoiceSource {
public:
  explicit RandomChoice(uint64_t Seed) : R(Seed) {}
  unsigned choose(unsigned Count, const char *) override {
    return static_cast<unsigned>(R.below(Count));
  }
  Rng R;
};

} // namespace

TEST_P(SeededProperty, MachineInvariantsUnderRandomSoup) {
  RandomChoice C(GetParam() + 7);
  Machine M(C);
  constexpr unsigned Threads = 3, Locs = 4;
  for (unsigned T = 0; T != Threads; ++T)
    M.addThread();
  Loc Base = M.alloc("soup", Locs);

  Rng R(GetParam() + 99);
  for (int Step = 0; Step != 400; ++Step) {
    unsigned T = static_cast<unsigned>(R.below(Threads));
    Loc L = Base + static_cast<Loc>(R.below(Locs));
    MemOrder Orders[] = {MemOrder::Relaxed, MemOrder::Acquire,
                         MemOrder::Release, MemOrder::AcqRel,
                         MemOrder::SeqCst};
    switch (R.below(5)) {
    case 0:
      M.load(T, L, R.chance(1, 2) ? MemOrder::Relaxed : MemOrder::Acquire);
      break;
    case 1:
      M.store(T, L, R.below(100),
              R.chance(1, 2) ? MemOrder::Relaxed : MemOrder::Release);
      break;
    case 2:
      M.cas(T, L, R.below(100), R.below(100), Orders[3]);
      break;
    case 3:
      M.fetchAdd(T, L, 1, Orders[static_cast<size_t>(R.below(5))]);
      break;
    case 4:
      M.fence(T, Orders[1 + R.below(4)]);
      break;
    }

    // Invariants: cur ⊑ acq per thread; histories dense; message views
    // self-inclusive for atomic writes.
    for (unsigned T2 = 0; T2 != Threads; ++T2) {
      EXPECT_TRUE(M.threadCur(T2).Phys.includedIn(M.threadAcq(T2).Phys))
          << "cur must be included in acq";
    }
    for (Loc L2 = Base; L2 != Base + Locs; ++L2) {
      const Cell &Cell2 = M.memory().cell(L2);
      for (size_t I = 0; I != Cell2.Len; ++I) {
        if (I > 0) { // Init message aside, writes know themselves.
          EXPECT_GE(Cell2.know(I).Phys.get(L2), 0u);
        }
      }
    }
  }
  EXPECT_FALSE(M.raceDetected()) << M.raceMessage();
}

TEST_P(SeededProperty, GeneratedQueueHistoriesLinearizable) {
  // Build a random *valid* sequential queue history as an event graph
  // (single logical thread, program-order logical views): the search must
  // find a witness. Then corrupt the last consume's value: it must not.
  Rng R(GetParam() + 31);
  graph::EventGraph G;
  std::deque<Value> State;
  std::vector<graph::EventId> Order;
  Value NextV = 1;
  IdSet SoFar;

  for (int Op = 0; Op != 12; ++Op) {
    graph::EventId Id = G.reserve();
    graph::Event E;
    E.ObjId = 0;
    E.Thread = 0;
    E.LogView = SoFar;
    E.LogView.insert(Id);
    if (State.empty() || R.chance(2, 3)) {
      if (R.chance(1, 4)) {
        E.Kind = graph::OpKind::DeqEmpty;
        E.V1 = graph::EmptyVal;
        if (!State.empty()) { // Only valid on empty state.
          G.retract(Id);
          continue;
        }
      } else {
        E.Kind = graph::OpKind::Enq;
        E.V1 = NextV++;
        State.push_back(E.V1);
      }
    } else {
      E.Kind = graph::OpKind::DeqOk;
      E.V1 = State.front();
      State.pop_front();
    }
    SoFar.insert(Id);
    G.commit(Id, std::move(E));
    Order.push_back(Id);
  }

  auto Res = spec::findLinearization(G, 0, spec::SeqSpec::Queue);
  EXPECT_TRUE(Res.Found) << "valid sequential history must linearize";
  EXPECT_EQ(Res.Order.size(), Order.size());

  // Corrupt: append a dequeue of a value that was never enqueued.
  graph::EventId Bad = G.reserve();
  graph::Event E;
  E.Kind = graph::OpKind::DeqOk;
  E.V1 = 99'999;
  E.ObjId = 0;
  E.LogView = SoFar;
  E.LogView.insert(Bad);
  G.commit(Bad, std::move(E));
  EXPECT_FALSE(spec::findLinearization(G, 0, spec::SeqSpec::Queue).Found);
}

TEST_P(SeededProperty, GeneratedDequeHistoriesLinearizable) {
  // Same for the work-stealing deque semantics: interleave pushes, owner
  // takes (back) and steals (front) against a model deque.
  Rng R(GetParam() + 77);
  graph::EventGraph G;
  std::deque<Value> State;
  Value NextV = 1;
  IdSet SoFar;

  for (int Op = 0; Op != 12; ++Op) {
    graph::EventId Id = G.reserve();
    graph::Event E;
    E.ObjId = 0;
    E.LogView = SoFar;
    E.LogView.insert(Id);
    unsigned Kind = static_cast<unsigned>(R.below(3));
    if (State.empty() || Kind == 0) {
      E.Kind = graph::OpKind::Push;
      E.V1 = NextV++;
      E.Thread = 0;
      State.push_back(E.V1);
    } else if (Kind == 1) {
      E.Kind = graph::OpKind::PopOk;
      E.V1 = State.back();
      E.Thread = 0;
      State.pop_back();
    } else {
      E.Kind = graph::OpKind::Steal;
      E.V1 = State.front();
      E.Thread = 1;
      State.pop_front();
    }
    SoFar.insert(Id);
    G.commit(Id, std::move(E));
  }

  auto Res = spec::findLinearization(G, 0, spec::SeqSpec::WsDeque);
  EXPECT_TRUE(Res.Found);
  auto Abs = spec::checkWsDequeAbsState(G, 0);
  EXPECT_TRUE(Abs.ok()) << Abs.str();
}

namespace {

/// Applies each op of one scenario thread (results discarded — these
/// sweeps only care about the committed event graph).
sim::Task<void> applyOps(check::ContainerAdapter &A,
                         std::vector<check::Op> Ops, sim::Env &E) {
  for (check::Op O : Ops) {
    auto T = A.apply(E, O);
    co_await T;
  }
}

} // namespace

TEST_P(SeededProperty, ExploredEventGraphInvariants) {
  // Exhaustively explore small generated scenarios (check/ScenarioGen.h)
  // over the pristine libraries and assert, on every completed execution's
  // event graph:
  //
  //  * structural well-formedness (EventGraph::checkWellFormed);
  //  * logical-view monotonicity along so edges — a synchronized-with
  //    edge e -so-> d transfers the producer's knowledge, so d's logical
  //    view must contain e and include e's entire view (Section 4.2's
  //    view transfer);
  //  * commit-index totality — committed events carry unique commit
  //    indices forming a gapless range (a *total* commit order `<`), and
  //    committedEvents() yields them strictly ascending;
  //  * logical views only reach *earlier-committed* events (CommitIdx
  //    monotone along lhb).
  using namespace compass::check;
  GenOptions Gen;
  Gen.MaxThreads = 2;
  Gen.MaxOpsPerThread = 2;
  Gen.MinPreemptions = Gen.MaxPreemptions = 1;
  uint64_t Checked = 0;
  for (Lib L : {Lib::MsQueue, Lib::TreiberStack, Lib::Exchanger,
                Lib::WsDeque}) {
    Scenario S = generateScenario(L, scenarioSeed(GetParam(), L, 0), Gen);
    SCOPED_TRACE(S.str());
    sim::Explorer Ex{scenarioOptions(S, 3000, 1)};
    while (Ex.beginExecution()) {
      Machine M(Ex);
      sim::Scheduler Sch(M, Ex);
      Sch.setPreemptionBound(Ex.options().PreemptionBound);
      spec::SpecMonitor Mon;
      ContainerAdapter A(S, Mutation::None, M, Mon);
      for (const auto &T : S.Threads) {
        sim::Env &E = Sch.newThread();
        Sch.start(E, applyOps(A, T, E));
      }
      auto R = Sch.run(Ex.options().MaxStepsPerExec);
      if (R == sim::Scheduler::RunResult::Done) {
        const graph::EventGraph &G = Mon.graph();
        std::string Err = G.checkWellFormed();
        ASSERT_TRUE(Err.empty()) << Err << "\n" << G.str();

        for (const graph::SoEdge &Ed : G.so()) {
          ASSERT_TRUE(G.isCommitted(Ed.From));
          ASSERT_TRUE(G.isCommitted(Ed.To));
          const graph::Event &From = G.event(Ed.From);
          const graph::Event &To = G.event(Ed.To);
          if (From.CommitIdx < To.CommitIdx) {
            // Commit-order-forward edge: the later event acquired the
            // earlier one's knowledge at its commit point.
            EXPECT_TRUE(To.LogView.contains(Ed.From))
                << "so edge " << Ed.From << "->" << Ed.To
                << " without knowledge transfer\n"
                << G.str();
            EXPECT_TRUE(From.LogView.subsetOf(To.LogView))
                << "logical view not monotone along so edge " << Ed.From
                << "->" << Ed.To << "\n"
                << G.str();
          } else {
            // Back edges arise only from the exchanger's symmetric
            // pairing (so-pairs in both directions, Section 4.2); the
            // commit-order-forward dual must exist and carries the view
            // transfer checked above.
            EXPECT_EQ(From.Kind, graph::OpKind::Exchange) << G.str();
            bool HasDual = false;
            for (graph::EventId Succ : G.soSuccessors(Ed.To))
              HasDual |= Succ == Ed.From;
            EXPECT_TRUE(HasDual)
                << "back so edge " << Ed.From << "->" << Ed.To
                << " without forward dual\n"
                << G.str();
          }
        }

        std::vector<graph::EventId> Ids = G.committedEvents();
        uint32_t MinIdx = ~0u, MaxIdx = 0;
        std::set<uint32_t> SeenIdx;
        uint32_t PrevIdx = 0;
        for (size_t I = 0; I != Ids.size(); ++I) {
          const graph::Event &Ev = G.event(Ids[I]);
          EXPECT_TRUE(SeenIdx.insert(Ev.CommitIdx).second)
              << "duplicate commit index " << Ev.CommitIdx;
          if (I > 0) {
            EXPECT_GT(Ev.CommitIdx, PrevIdx)
                << "committedEvents() not in commit order";
          }
          PrevIdx = Ev.CommitIdx;
          MinIdx = std::min(MinIdx, Ev.CommitIdx);
          MaxIdx = std::max(MaxIdx, Ev.CommitIdx);
          Ev.LogView.forEach([&](uint32_t Other) {
            ASSERT_TRUE(G.isCommitted(Other));
            EXPECT_LE(G.event(Other).CommitIdx, Ev.CommitIdx)
                << "logical view of " << Ids[I]
                << " reaches a later-committed event " << Other;
          });
        }
        if (!Ids.empty()) {
          EXPECT_EQ(static_cast<size_t>(MaxIdx - MinIdx) + 1, Ids.size())
              << "commit indices are not a gapless total order";
        }
        ++Checked;
      }
      Ex.endExecution(R);
    }
  }
  EXPECT_GT(Checked, 0u) << "sweep was vacuous";
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));
