//===-- check/Mutants.h - Deliberately broken library variants --*- C++ -*-===//
//
// Part of compass-cxx. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Mutation testing for the conformance harness: each class here is a
/// standalone copy of one library with a single seeded bug — a weakened
/// memory order, an off-by-one traversal, a wrong return value, or a
/// removed fence (see Scenario.h's Mutation enum and
/// mutationDescription()). The harness must *kill* every mutant (find a
/// generated scenario whose exploration reports a violation); a surviving
/// mutant means the oracle has a blind spot.
///
/// The copies drive the same SpecMonitor protocol as the originals, so the
/// recorded event graphs are honest: a mutant is caught by the machine's
/// race detector, by the graph-consistency axioms, by the linearization
/// oracle, or by the observed-result check — never by special-casing.
///
//===----------------------------------------------------------------------===//

#ifndef COMPASS_CHECK_MUTANTS_H
#define COMPASS_CHECK_MUTANTS_H

#include "check/Scenario.h"
#include "sim/Ebr.h"
#include "spec/SpecMonitor.h"

#include <map>
#include <string>

namespace compass::check {

/// Michael-Scott queue with MsQueueRelaxedPublish or MsQueueSkipDeq.
class MutMsQueue final : public lib::SimQueue {
public:
  MutMsQueue(rmc::Machine &M, spec::SpecMonitor &Mon, std::string Name,
             Mutation Mut);

  sim::Task<void> enqueue(sim::Env &E, rmc::Value V) override;
  sim::Task<rmc::Value> dequeue(sim::Env &E) override;
  unsigned objId() const override { return Obj; }

private:
  static constexpr unsigned ValOff = 0, EidOff = 1, NextOff = 2;
  spec::SpecMonitor &Mon;
  unsigned Obj;
  Mutation Mut;
  rmc::Loc Head, Tail;
};

/// Treiber stack with TreiberRelaxedPopHead or TreiberPopBelowTop.
class MutTreiberStack final : public lib::SimStack {
public:
  MutTreiberStack(rmc::Machine &M, spec::SpecMonitor &Mon, std::string Name,
                  Mutation Mut);

  sim::Task<void> push(sim::Env &E, rmc::Value V) override;
  sim::Task<rmc::Value> pop(sim::Env &E) override;
  sim::Task<bool> tryPush(sim::Env &E, rmc::Value V) override;
  sim::Task<rmc::Value> tryPop(sim::Env &E) override;
  unsigned objId() const override { return Obj; }

private:
  static constexpr unsigned ValOff = 0, EidOff = 1, NextOff = 2;
  sim::Task<rmc::Value> popAttempt(sim::Env &E, rmc::Timestamp *HeadTsOut);
  spec::SpecMonitor &Mon;
  unsigned Obj;
  Mutation Mut;
  rmc::Loc HeadLoc;
};

/// EBR-reclaiming Treiber stack with EbrSkipGracePeriod or EbrEarlyUnpin.
/// Both are *reclamation* bugs: the event graphs they record stay
/// LAT-consistent, so only the machine's retire/free lifecycle tracking
/// (PREMATURE_FREE / USE_AFTER_RETIRE) can kill them.
class MutTreiberStackEbr final : public lib::SimStack {
public:
  MutTreiberStackEbr(rmc::Machine &M, spec::SpecMonitor &Mon,
                     std::string Name, unsigned NumThreads, Mutation Mut);

  sim::Task<void> push(sim::Env &E, rmc::Value V) override;
  sim::Task<rmc::Value> pop(sim::Env &E) override;
  sim::Task<bool> tryPush(sim::Env &E, rmc::Value V) override;
  sim::Task<rmc::Value> tryPop(sim::Env &E) override;
  unsigned objId() const override { return Obj; }

private:
  static constexpr unsigned ValOff = 0, EidOff = 1, NextOff = 2;
  static constexpr unsigned NodeCells = 3;
  sim::Task<bool> pushAttempt(sim::Env &E, rmc::Value HeadPtr, rmc::Loc N,
                              rmc::Value V);
  /// One pop attempt. Under EbrEarlyUnpin the attempt itself leaves the
  /// critical section right after reading head, so on exit the thread is
  /// *unpinned*; otherwise the caller's pin is left in place.
  sim::Task<rmc::Value> popAttempt(sim::Env &E, rmc::Timestamp *HeadTsOut);
  spec::SpecMonitor &Mon;
  unsigned Obj;
  Mutation Mut;
  rmc::Loc HeadLoc;
  sim::Ebr Dom;
};

/// Exchanger with ExchangerEchoValue: the event graph records the true
/// crossing, but the caller is handed back its own value.
class MutExchanger {
public:
  MutExchanger(rmc::Machine &M, spec::SpecMonitor &Mon, std::string Name);

  sim::Task<rmc::Value> exchange(sim::Env &E, rmc::Value V,
                                 unsigned Attempts = 1);
  unsigned objId() const { return Obj; }

private:
  static constexpr unsigned ValOff = 0, TidOff = 1, HoleOff = 2;
  static constexpr rmc::Value HoleCancel = graph::BottomVal;
  spec::SpecMonitor &Mon;
  unsigned Obj;
  rmc::Loc Slot;
};

/// SPSC ring with SpscRelaxedTailPublish.
class MutSpscRing {
public:
  MutSpscRing(rmc::Machine &M, spec::SpecMonitor &Mon, std::string Name,
              unsigned Capacity);

  sim::Task<bool> tryEnqueue(sim::Env &E, rmc::Value V);
  sim::Task<rmc::Value> dequeue(sim::Env &E);
  unsigned objId() const { return Obj; }

private:
  void checkRole(unsigned &Role, unsigned Tid, const char *What);
  spec::SpecMonitor &Mon;
  unsigned Obj;
  unsigned Capacity;
  unsigned ProducerTid = ~0u, ConsumerTid = ~0u;
  rmc::Loc HeadIdx, TailIdx, Buf, Eids;
};

/// Chase-Lev deque with WsDequeTakeNoFence.
class MutWsDeque {
public:
  MutWsDeque(rmc::Machine &M, spec::SpecMonitor &Mon, std::string Name,
             unsigned Capacity);

  sim::Task<void> push(sim::Env &E, rmc::Value V);
  sim::Task<rmc::Value> take(sim::Env &E);
  sim::Task<rmc::Value> steal(sim::Env &E);
  unsigned objId() const { return Obj; }

private:
  void checkOwner(unsigned Tid);
  spec::SpecMonitor &Mon;
  unsigned Obj;
  unsigned Capacity;
  unsigned OwnerTid = ~0u;
  rmc::Loc Top, Bottom, Buf, Eids;
  struct ShadowEntry {
    rmc::Value Val;
    graph::EventId Ev;
  };
  std::map<uint64_t, ShadowEntry> OwnerShadow;
};

} // namespace compass::check

#endif // COMPASS_CHECK_MUTANTS_H
