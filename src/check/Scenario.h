//===-- check/Scenario.h - Generated concurrent scenarios -------*- C++ -*-===//
//
// Part of compass-cxx. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The value types of the conformance harness (DESIGN.md §7): a *scenario*
/// is a bounded concurrent program over one library instance — per-thread
/// straight-line operation lists plus the exploration knobs — compact
/// enough to serialize, shrink, and replay. A *mutation* names one of the
/// deliberately broken library variants (check/Mutants.h) used to prove
/// the harness catches real relaxed-memory bugs. A *corpus entry* bundles
/// a shrunk counterexample (scenario + mutation + decision trace) for the
/// regression corpus under tests/corpus/.
///
/// Serialization is a line-based text format, diffable and hand-editable:
///
///   lib=treiber_stack
///   mut=treiber_pop_below_top
///   seed=7
///   pb=2
///   cap=0
///   thread=push:1,push:2,pop
///   thread=pop
///   decisions=0,1,0,2
///
//===----------------------------------------------------------------------===//

#ifndef COMPASS_CHECK_SCENARIO_H
#define COMPASS_CHECK_SCENARIO_H

#include "lib/Container.h"
#include "rmc/Memory.h"

#include <cstdint>
#include <string>
#include <vector>

namespace compass::check {

/// The library a scenario runs against.
enum class Lib : uint8_t {
  MsQueue,
  HwQueue,
  TreiberStack,
  ElimStack,
  Exchanger,
  SpscRing,
  WsDeque,
  TreiberEbr ///< Treiber stack with simulated epoch-based reclamation.
};

inline constexpr unsigned NumLibs = 8;

/// All libraries, in a stable order (indexable by static_cast<unsigned>).
const Lib *allLibs();

/// Stable snake_case name ("ms_queue", ...). parseLib returns false on an
/// unknown name.
const char *libName(Lib L);
bool parseLib(const std::string &Name, Lib &Out);

/// The behavioural family \p L belongs to (selects the reference oracle).
lib::ContainerFamily libFamily(Lib L);

/// The spec strength a library is *specified* to satisfy — the reference
/// model checks each library at exactly this strength, no stronger.
enum class SpecStrength : uint8_t {
  HbOnly,       ///< LAT_hb: graph consistency axioms + observed results.
  Linearizable, ///< LAT_hist_hb: additionally some total order `to ⊇ lhb`
                ///< replayable by the sequential oracle must exist.
};

/// HwQueue -> HbOnly (the paper's §3.2 separation: the relaxed
/// Herlihy-Wing queue satisfies the graph-based LAT_hb conditions but
/// admits executions with *no* linearizable-history witness, so demanding
/// one would flag the paper's own expected behaviour as a violation);
/// every other library -> Linearizable.
SpecStrength libStrength(Lib L);

/// One operation of a scenario thread.
enum class OpCode : uint8_t {
  Enq,      ///< Queue/ring enqueue of Arg.
  Deq,      ///< Queue/ring dequeue.
  Push,     ///< Stack/deque push of Arg.
  Pop,      ///< Stack pop.
  Exchange, ///< Exchanger exchange of Arg.
  Take,     ///< Deque owner take.
  Steal     ///< Deque thief steal.
};

const char *opCodeName(OpCode C); ///< "enq", "deq", ...

struct Op {
  OpCode Code;
  rmc::Value Arg = 0; ///< Producer/exchange payload; 0 for consumers.
};

/// A bounded concurrent scenario; see file comment.
struct Scenario {
  Lib L = Lib::MsQueue;
  uint64_t Seed = 0;          ///< Generator seed (provenance only).
  unsigned PreemptionBound = 2;
  unsigned Capacity = 0;      ///< HwQueue/SpscRing/WsDeque capacity.
  std::vector<std::vector<Op>> Threads;

  unsigned numOps() const {
    unsigned N = 0;
    for (const auto &T : Threads)
      N += static_cast<unsigned>(T.size());
    return N;
  }

  /// One-line human-readable rendering:
  /// `treiber_stack pb=2 T0[push:1,pop] T1[pop]`.
  std::string str() const;
};

/// The seeded library mutations; see check/Mutants.h for the broken
/// implementations themselves.
enum class Mutation : uint8_t {
  None,
  MsQueueRelaxedPublish,  ///< Enqueue's linking CAS relaxed, not release.
  MsQueueSkipDeq,         ///< Dequeue skips over the head's successor.
  TreiberRelaxedPopHead,  ///< Pop's head load relaxed, not acquire.
  TreiberPopBelowTop,     ///< Pop removes the element *below* the top.
  ExchangerEchoValue,     ///< Exchange returns the caller's own value.
  SpscRelaxedTailPublish, ///< Producer's tail store relaxed, not release.
  WsDequeTakeNoFence,     ///< Take's seq-cst fence removed.
  EbrSkipGracePeriod,     ///< Epoch advance skips the announcement scan.
  EbrEarlyUnpin           ///< Pop unpins before dereferencing the node.
};

inline constexpr unsigned NumMutations = 10; ///< Including None.

const char *mutationName(Mutation M); ///< "none", "ms_queue_relaxed_publish", ...
bool parseMutation(const std::string &Name, Mutation &Out);

/// The library a mutation applies to (None -> MsQueue, unused).
Lib mutationLib(Mutation M);

/// Human explanation of what the mutation breaks.
const char *mutationDescription(Mutation M);

/// A persisted counterexample: scenario + mutation + the decision trace of
/// a failing execution. Replaying Decisions against the mutated library
/// must fail; exploring the scenario against the pristine library must
/// find no violation (tests/CorpusTest.cpp enforces both).
struct CorpusEntry {
  Scenario S;
  Mutation Mut = Mutation::None;
  std::vector<unsigned> Decisions;
  std::string Note; ///< Free-form provenance (emitted as a # comment).
};

/// Serializes \p E in the line format of the file comment.
std::string formatCorpusEntry(const CorpusEntry &E);

/// Parses the line format; on failure returns false and sets \p Err.
bool parseCorpusEntry(const std::string &Text, CorpusEntry &Out,
                      std::string &Err);

} // namespace compass::check

#endif // COMPASS_CHECK_SCENARIO_H
