//===-- check/Scenario.cpp - Generated concurrent scenarios ----------------===//

#include "check/Scenario.h"

#include <cstdlib>
#include <sstream>

using namespace compass;
using namespace compass::check;

const Lib *check::allLibs() {
  static const Lib All[NumLibs] = {
      Lib::MsQueue,   Lib::HwQueue,  Lib::TreiberStack, Lib::ElimStack,
      Lib::Exchanger, Lib::SpscRing, Lib::WsDeque,      Lib::TreiberEbr};
  return All;
}

const char *check::libName(Lib L) {
  switch (L) {
  case Lib::MsQueue:
    return "ms_queue";
  case Lib::HwQueue:
    return "hw_queue";
  case Lib::TreiberStack:
    return "treiber_stack";
  case Lib::ElimStack:
    return "elim_stack";
  case Lib::Exchanger:
    return "exchanger";
  case Lib::SpscRing:
    return "spsc_ring";
  case Lib::WsDeque:
    return "ws_deque";
  case Lib::TreiberEbr:
    return "treiber_ebr";
  }
  return "?";
}

bool check::parseLib(const std::string &Name, Lib &Out) {
  for (unsigned I = 0; I != NumLibs; ++I)
    if (Name == libName(allLibs()[I])) {
      Out = allLibs()[I];
      return true;
    }
  return false;
}

lib::ContainerFamily check::libFamily(Lib L) {
  switch (L) {
  case Lib::MsQueue:
  case Lib::HwQueue:
    return lib::ContainerFamily::Queue;
  case Lib::TreiberStack:
  case Lib::ElimStack:
  case Lib::TreiberEbr:
    return lib::ContainerFamily::Stack;
  case Lib::Exchanger:
    return lib::ContainerFamily::Exchanger;
  case Lib::SpscRing:
    return lib::ContainerFamily::SpscRing;
  case Lib::WsDeque:
    return lib::ContainerFamily::WsDeque;
  }
  return lib::ContainerFamily::Queue;
}

SpecStrength check::libStrength(Lib L) {
  // The relaxed HW queue satisfies LAT_hb but not the linearizable-history
  // spec (paper §3.2, EXPERIMENTS.md E2): with cross-thread enqueues a
  // dequeuer can skip a stale slot and report empty where no total order
  // ⊇ lhb allows it. First seen live at seed 1, scenario #5 of the
  // 500-scenarios-per-library sweep (tests/ConformanceTest.cpp pins it).
  return L == Lib::HwQueue ? SpecStrength::HbOnly : SpecStrength::Linearizable;
}

const char *check::opCodeName(OpCode C) {
  switch (C) {
  case OpCode::Enq:
    return "enq";
  case OpCode::Deq:
    return "deq";
  case OpCode::Push:
    return "push";
  case OpCode::Pop:
    return "pop";
  case OpCode::Exchange:
    return "xchg";
  case OpCode::Take:
    return "take";
  case OpCode::Steal:
    return "steal";
  }
  return "?";
}

namespace {

bool parseOpCode(const std::string &Name, OpCode &Out) {
  static const OpCode All[] = {OpCode::Enq,  OpCode::Deq,      OpCode::Push,
                               OpCode::Pop,  OpCode::Exchange, OpCode::Take,
                               OpCode::Steal};
  for (OpCode C : All)
    if (Name == opCodeName(C)) {
      Out = C;
      return true;
    }
  return false;
}

/// True for op codes that carry a payload argument.
bool hasArg(OpCode C) {
  return C == OpCode::Enq || C == OpCode::Push || C == OpCode::Exchange;
}

} // namespace

std::string Scenario::str() const {
  std::ostringstream OS;
  OS << libName(L) << " pb=" << PreemptionBound;
  if (Capacity)
    OS << " cap=" << Capacity;
  for (size_t T = 0; T != Threads.size(); ++T) {
    OS << " T" << T << '[';
    for (size_t I = 0; I != Threads[T].size(); ++I) {
      if (I)
        OS << ',';
      OS << opCodeName(Threads[T][I].Code);
      if (hasArg(Threads[T][I].Code))
        OS << ':' << Threads[T][I].Arg;
    }
    OS << ']';
  }
  return OS.str();
}

const char *check::mutationName(Mutation M) {
  switch (M) {
  case Mutation::None:
    return "none";
  case Mutation::MsQueueRelaxedPublish:
    return "ms_queue_relaxed_publish";
  case Mutation::MsQueueSkipDeq:
    return "ms_queue_skip_deq";
  case Mutation::TreiberRelaxedPopHead:
    return "treiber_relaxed_pop_head";
  case Mutation::TreiberPopBelowTop:
    return "treiber_pop_below_top";
  case Mutation::ExchangerEchoValue:
    return "exchanger_echo_value";
  case Mutation::SpscRelaxedTailPublish:
    return "spsc_relaxed_tail_publish";
  case Mutation::WsDequeTakeNoFence:
    return "ws_deque_take_no_fence";
  case Mutation::EbrSkipGracePeriod:
    return "ebr_skip_grace_period";
  case Mutation::EbrEarlyUnpin:
    return "ebr_early_unpin";
  }
  return "?";
}

bool check::parseMutation(const std::string &Name, Mutation &Out) {
  for (unsigned I = 0; I != NumMutations; ++I) {
    Mutation M = static_cast<Mutation>(I);
    if (Name == mutationName(M)) {
      Out = M;
      return true;
    }
  }
  return false;
}

Lib check::mutationLib(Mutation M) {
  switch (M) {
  case Mutation::None:
  case Mutation::MsQueueRelaxedPublish:
  case Mutation::MsQueueSkipDeq:
    return Lib::MsQueue;
  case Mutation::TreiberRelaxedPopHead:
  case Mutation::TreiberPopBelowTop:
    return Lib::TreiberStack;
  case Mutation::ExchangerEchoValue:
    return Lib::Exchanger;
  case Mutation::SpscRelaxedTailPublish:
    return Lib::SpscRing;
  case Mutation::WsDequeTakeNoFence:
    return Lib::WsDeque;
  case Mutation::EbrSkipGracePeriod:
  case Mutation::EbrEarlyUnpin:
    return Lib::TreiberEbr;
  }
  return Lib::MsQueue;
}

const char *check::mutationDescription(Mutation M) {
  switch (M) {
  case Mutation::None:
    return "pristine implementation";
  case Mutation::MsQueueRelaxedPublish:
    return "enqueue links the node with a relaxed CAS instead of release; "
           "the dequeuer's non-atomic payload read races";
  case Mutation::MsQueueSkipDeq:
    return "dequeue advances head past two nodes when it can, returning "
           "the second value and skipping the first (FIFO violation)";
  case Mutation::TreiberRelaxedPopHead:
    return "pop reads head relaxed instead of acquire; the non-atomic "
           "node reads race with the pusher's initialization";
  case Mutation::TreiberPopBelowTop:
    return "pop unlinks and returns the element below the top when the "
           "stack has two or more (LIFO violation)";
  case Mutation::ExchangerEchoValue:
    return "exchange returns the caller's own value instead of the "
           "partner's (the event graph stays consistent; only observed "
           "results betray it)";
  case Mutation::SpscRelaxedTailPublish:
    return "producer publishes tail with a relaxed store instead of "
           "release; the consumer's non-atomic slot read races";
  case Mutation::WsDequeTakeNoFence:
    return "take omits the seq-cst fence between the bottom decrement and "
           "the top read; a stale top lets the owner duplicate an element "
           "a thief already stole";
  case Mutation::EbrSkipGracePeriod:
    return "the epoch advance skips the announcement scan, freeing retired "
           "nodes while readers are still pinned (premature free)";
  case Mutation::EbrEarlyUnpin:
    return "pop leaves the pinned critical section right after reading "
           "head, so the node it dereferences can be reclaimed under it "
           "(use after retire)";
  }
  return "?";
}

// === Corpus (de)serialization ============================================

std::string check::formatCorpusEntry(const CorpusEntry &E) {
  std::ostringstream OS;
  if (!E.Note.empty())
    OS << "# " << E.Note << '\n';
  OS << "lib=" << libName(E.S.L) << '\n';
  OS << "mut=" << mutationName(E.Mut) << '\n';
  OS << "seed=" << E.S.Seed << '\n';
  OS << "pb=" << E.S.PreemptionBound << '\n';
  OS << "cap=" << E.S.Capacity << '\n';
  for (const auto &T : E.S.Threads) {
    OS << "thread=";
    for (size_t I = 0; I != T.size(); ++I) {
      if (I)
        OS << ',';
      OS << opCodeName(T[I].Code);
      if (hasArg(T[I].Code))
        OS << ':' << T[I].Arg;
    }
    OS << '\n';
  }
  OS << "decisions=";
  for (size_t I = 0; I != E.Decisions.size(); ++I) {
    if (I)
      OS << ',';
    OS << E.Decisions[I];
  }
  OS << '\n';
  return OS.str();
}

namespace {

/// Splits \p S on \p Sep, dropping empty pieces.
std::vector<std::string> splitOn(const std::string &S, char Sep) {
  std::vector<std::string> Out;
  std::string Cur;
  for (char C : S) {
    if (C == Sep) {
      if (!Cur.empty())
        Out.push_back(Cur);
      Cur.clear();
    } else {
      Cur += C;
    }
  }
  if (!Cur.empty())
    Out.push_back(Cur);
  return Out;
}

bool parseU64(const std::string &S, uint64_t &Out) {
  if (S.empty())
    return false;
  char *End = nullptr;
  Out = std::strtoull(S.c_str(), &End, 10);
  return End && *End == '\0';
}

} // namespace

bool check::parseCorpusEntry(const std::string &Text, CorpusEntry &Out,
                             std::string &Err) {
  Out = CorpusEntry();
  bool SawLib = false;
  std::istringstream IS(Text);
  std::string Line;
  unsigned LineNo = 0;
  while (std::getline(IS, Line)) {
    ++LineNo;
    // Strip trailing CR (files may be checked out with CRLF).
    if (!Line.empty() && Line.back() == '\r')
      Line.pop_back();
    if (Line.empty() || Line[0] == '#')
      continue;
    size_t Eq = Line.find('=');
    if (Eq == std::string::npos) {
      Err = "line " + std::to_string(LineNo) + ": expected key=value";
      return false;
    }
    std::string Key = Line.substr(0, Eq), Val = Line.substr(Eq + 1);
    uint64_t U;
    if (Key == "lib") {
      if (!parseLib(Val, Out.S.L)) {
        Err = "unknown lib '" + Val + "'";
        return false;
      }
      SawLib = true;
    } else if (Key == "mut") {
      if (!parseMutation(Val, Out.Mut)) {
        Err = "unknown mutation '" + Val + "'";
        return false;
      }
    } else if (Key == "seed") {
      if (!parseU64(Val, U)) {
        Err = "bad seed";
        return false;
      }
      Out.S.Seed = U;
    } else if (Key == "pb") {
      if (!parseU64(Val, U)) {
        Err = "bad pb";
        return false;
      }
      Out.S.PreemptionBound = static_cast<unsigned>(U);
    } else if (Key == "cap") {
      if (!parseU64(Val, U)) {
        Err = "bad cap";
        return false;
      }
      Out.S.Capacity = static_cast<unsigned>(U);
    } else if (Key == "thread") {
      std::vector<Op> Ops;
      for (const std::string &Tok : splitOn(Val, ',')) {
        Op O;
        size_t Colon = Tok.find(':');
        std::string Name =
            Colon == std::string::npos ? Tok : Tok.substr(0, Colon);
        if (!parseOpCode(Name, O.Code)) {
          Err = "unknown op '" + Name + "'";
          return false;
        }
        if (Colon != std::string::npos) {
          if (!parseU64(Tok.substr(Colon + 1), U)) {
            Err = "bad op arg in '" + Tok + "'";
            return false;
          }
          O.Arg = U;
        }
        Ops.push_back(O);
      }
      Out.S.Threads.push_back(std::move(Ops));
    } else if (Key == "decisions") {
      for (const std::string &Tok : splitOn(Val, ',')) {
        if (!parseU64(Tok, U)) {
          Err = "bad decision '" + Tok + "'";
          return false;
        }
        Out.Decisions.push_back(static_cast<unsigned>(U));
      }
    } else {
      Err = "unknown key '" + Key + "'";
      return false;
    }
  }
  if (!SawLib) {
    Err = "missing lib= line";
    return false;
  }
  if (Out.S.Threads.empty()) {
    Err = "missing thread= lines";
    return false;
  }
  return true;
}
