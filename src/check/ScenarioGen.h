//===-- check/ScenarioGen.h - Seeded scenario sampling ----------*- C++ -*-===//
//
// Part of compass-cxx. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Lincheck-style generator: samples bounded concurrent scenarios
/// (thread count, ops per thread, op mix, value domain) for each library,
/// deterministically from a 64-bit seed. Shapes respect each library's
/// contract: the SPSC ring gets exactly one producer and one consumer, the
/// work-stealing deque one owner plus thief threads, exchangers only
/// exchange ops. Producer values are distinct small integers so reference
/// oracles can match elements by value (the classic Lincheck trick).
///
//===----------------------------------------------------------------------===//

#ifndef COMPASS_CHECK_SCENARIOGEN_H
#define COMPASS_CHECK_SCENARIOGEN_H

#include "check/Scenario.h"

namespace compass::check {

/// Bounds for scenario sampling. The defaults keep exhaustive exploration
/// of one scenario in the hundreds-to-thousands of executions.
struct GenOptions {
  unsigned MinThreads = 2;
  unsigned MaxThreads = 3;
  unsigned MinOpsPerThread = 1;
  unsigned MaxOpsPerThread = 3;
  unsigned MinPreemptions = 1;
  unsigned MaxPreemptions = 2;

  /// Bounds tuned for mutation hunting: denser scenarios (more ops, more
  /// contention) that give the shrinker room to demonstrate reduction.
  static GenOptions hunting() {
    GenOptions O;
    O.MinThreads = 2;
    O.MaxThreads = 3;
    O.MinOpsPerThread = 2;
    O.MaxOpsPerThread = 3;
    O.MinPreemptions = 2;
    O.MaxPreemptions = 2;
    return O;
  }
};

/// Deterministically samples a scenario for \p L from \p Seed.
Scenario generateScenario(Lib L, uint64_t Seed, const GenOptions &O = {});

/// The per-scenario seed for the \p Index-th scenario of \p L under sweep
/// seed \p SweepSeed (a SplitMix64 mix, so scenario streams for different
/// libraries and indices are independent).
uint64_t scenarioSeed(uint64_t SweepSeed, Lib L, unsigned Index);

} // namespace compass::check

#endif // COMPASS_CHECK_SCENARIOGEN_H
