//===-- check/Main.cpp - compass_check CLI --------------------------------===//
//
// Part of compass-cxx. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The conformance-harness command line (README quickstart):
///
///   compass_check sweep   [--seed N] [--per-lib N] [--workers N]
///                         [--max-execs N] [--lib NAME]...
///                         [--reduction none|sleep] [--json]
///   compass_check mutants [--seed N] [--max-scenarios N] [--max-execs N]
///                         [--mut NAME]... [--no-shrink] [--emit-corpus DIR]
///                         [--reduction none|sleep]
///   compass_check replay  FILE...
///
/// `sweep` explores generated scenarios against the pristine libraries and
/// exits nonzero on any violation. `mutants` must kill every seeded mutant
/// (exit nonzero on a survivor) and can persist the shrunk counterexamples
/// as corpus files. `replay` re-executes corpus entries and exits nonzero
/// when one no longer reproduces its violation.
///
//===----------------------------------------------------------------------===//

#include "check/Conformance.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace compass;
using namespace compass::check;

namespace {

[[noreturn]] void usage(const char *Msg = nullptr) {
  if (Msg)
    std::fprintf(stderr, "compass_check: %s\n", Msg);
  std::fprintf(stderr,
               "usage:\n"
               "  compass_check sweep   [--seed N] [--per-lib N] "
               "[--workers N] [--max-execs N] [--lib NAME]... "
               "[--reduction none|sleep] [--json]\n"
               "  compass_check mutants [--seed N] [--max-scenarios N] "
               "[--max-execs N] [--mut NAME]... [--no-shrink] "
               "[--emit-corpus DIR] [--reduction none|sleep]\n"
               "  compass_check replay  FILE...\n");
  std::exit(2);
}

uint64_t parseU64(const char *Flag, const char *V) {
  char *End = nullptr;
  uint64_t N = std::strtoull(V, &End, 10);
  if (!V[0] || (End && *End))
    usage((std::string("bad value for ") + Flag).c_str());
  return N;
}

/// Pops the value of flag \p Name from argv position \p I.
const char *flagValue(int Argc, char **Argv, int &I, const char *Name) {
  if (I + 1 >= Argc)
    usage((std::string(Name) + " needs a value").c_str());
  return Argv[++I];
}

sim::ReductionMode parseReduction(const char *V) {
  std::string S = V;
  if (S == "none")
    return sim::ReductionMode::None;
  if (S == "sleep")
    return sim::ReductionMode::SleepSet;
  usage((std::string("bad value for --reduction (none|sleep): ") + V).c_str());
}

int cmdSweep(int Argc, char **Argv) {
  SweepOptions O;
  bool Json = false;
  for (int I = 0; I != Argc; ++I) {
    std::string A = Argv[I];
    if (A == "--seed")
      O.Seed = parseU64("--seed", flagValue(Argc, Argv, I, "--seed"));
    else if (A == "--per-lib")
      O.ScenariosPerLib = static_cast<unsigned>(
          parseU64("--per-lib", flagValue(Argc, Argv, I, "--per-lib")));
    else if (A == "--workers")
      O.Workers = static_cast<unsigned>(
          parseU64("--workers", flagValue(Argc, Argv, I, "--workers")));
    else if (A == "--max-execs")
      O.MaxExecutionsPerScenario =
          parseU64("--max-execs", flagValue(Argc, Argv, I, "--max-execs"));
    else if (A == "--lib") {
      Lib L;
      const char *Name = flagValue(Argc, Argv, I, "--lib");
      if (!parseLib(Name, L))
        usage((std::string("unknown library ") + Name).c_str());
      O.Libs.push_back(L);
    } else if (A == "--reduction")
      O.Reduction =
          parseReduction(flagValue(Argc, Argv, I, "--reduction"));
    else if (A == "--json")
      Json = true;
    else
      usage((std::string("unknown sweep flag ") + A).c_str());
  }
  SweepReport Rep = runSweep(O);
  std::printf("%s", Json ? (Rep.json() + "\n").c_str() : Rep.str().c_str());
  return Rep.clean() ? 0 : 1;
}

int cmdMutants(int Argc, char **Argv) {
  MutationOptions O;
  std::string CorpusDir;
  for (int I = 0; I != Argc; ++I) {
    std::string A = Argv[I];
    if (A == "--seed")
      O.Seed = parseU64("--seed", flagValue(Argc, Argv, I, "--seed"));
    else if (A == "--max-scenarios")
      O.MaxScenarios = static_cast<unsigned>(parseU64(
          "--max-scenarios", flagValue(Argc, Argv, I, "--max-scenarios")));
    else if (A == "--max-execs")
      O.MaxExecutionsPerScenario =
          parseU64("--max-execs", flagValue(Argc, Argv, I, "--max-execs"));
    else if (A == "--mut") {
      Mutation M;
      const char *Name = flagValue(Argc, Argv, I, "--mut");
      if (!parseMutation(Name, M) || M == Mutation::None)
        usage((std::string("unknown mutation ") + Name).c_str());
      O.Muts.push_back(M);
    } else if (A == "--no-shrink")
      O.Shrink = false;
    else if (A == "--emit-corpus")
      CorpusDir = flagValue(Argc, Argv, I, "--emit-corpus");
    else if (A == "--reduction")
      O.Reduction =
          parseReduction(flagValue(Argc, Argv, I, "--reduction"));
    else
      usage((std::string("unknown mutants flag ") + A).c_str());
  }
  std::vector<MutantReport> Reps = runMutationTests(O);
  unsigned Survivors = 0;
  for (const MutantReport &R : Reps) {
    std::printf("%s\n", R.str().c_str());
    if (!R.Killed) {
      ++Survivors;
      continue;
    }
    if (!CorpusDir.empty()) {
      CorpusEntry E = corpusEntryFor(R);
      std::string Path =
          CorpusDir + "/" + mutationName(R.Mut) + ".corpus";
      std::ofstream Out(Path);
      if (!Out) {
        std::fprintf(stderr, "compass_check: cannot write %s\n",
                     Path.c_str());
        return 2;
      }
      Out << formatCorpusEntry(E);
      std::printf("  wrote %s\n", Path.c_str());
    }
  }
  std::printf("%zu/%zu mutants killed\n", Reps.size() - Survivors,
              Reps.size());
  return Survivors ? 1 : 0;
}

int cmdReplay(int Argc, char **Argv) {
  if (!Argc)
    usage("replay needs at least one corpus file");
  int Bad = 0;
  for (int I = 0; I != Argc; ++I) {
    std::ifstream In(Argv[I]);
    if (!In) {
      std::fprintf(stderr, "compass_check: cannot read %s\n", Argv[I]);
      return 2;
    }
    std::ostringstream Buf;
    Buf << In.rdbuf();
    CorpusEntry E;
    std::string Err;
    if (!parseCorpusEntry(Buf.str(), E, Err)) {
      std::fprintf(stderr, "compass_check: %s: %s\n", Argv[I], Err.c_str());
      return 2;
    }
    TraceDiagnosis D = diagnoseTrace(E.S, E.Mut, scenarioOptions(E.S, 1, 1),
                                     E.Decisions);
    bool Ok = D.failing(); // A corpus entry must reproduce its violation.
    std::printf("%s: %s [%s, %s] %s\n", Argv[I],
                Ok ? "reproduced" : "NOT REPRODUCED", libName(E.S.L),
                mutationName(E.Mut), D.V.str().c_str());
    Bad += !Ok;
  }
  return Bad ? 1 : 0;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2)
    usage();
  std::string Cmd = Argv[1];
  if (Cmd == "sweep")
    return cmdSweep(Argc - 2, Argv + 2);
  if (Cmd == "mutants")
    return cmdMutants(Argc - 2, Argv + 2);
  if (Cmd == "replay")
    return cmdReplay(Argc - 2, Argv + 2);
  usage((std::string("unknown command ") + Cmd).c_str());
}
