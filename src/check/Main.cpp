//===-- check/Main.cpp - compass_check CLI --------------------------------===//
//
// Part of compass-cxx. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The conformance-harness command line (README quickstart):
///
///   compass_check sweep   [--seed N] [--per-lib N] [--workers N]
///                         [--max-execs N] [--lib NAME]...
///                         [--reduction none|sleep|source]
///                         [--engine auto|root] [--json]
///                         [--checkpoint FILE] [--checkpoint-every N|Ns]
///                         [--time-budget SECS] [--telemetry FILE]
///                         [--resume FILE]
///   compass_check mutants [--seed N] [--max-scenarios N] [--max-execs N]
///                         [--mut NAME]... [--no-shrink] [--emit-corpus DIR]
///                         [--reduction none|sleep|source]
///   compass_check replay  FILE...
///
/// `sweep` explores generated scenarios against the pristine libraries and
/// exits nonzero on any violation. It is crash-resilient: SIGINT/SIGTERM, a
/// spent `--time-budget`, or a `--checkpoint-every` cadence serialize the
/// live exploration state to the `--checkpoint` file (default
/// compass_sweep.ckpt); `--resume FILE` finishes an interrupted run to the
/// bit-identical fingerprint at any `--workers` count. `--telemetry FILE`
/// appends structured JSONL progress records (scripts/telemetry_report.py
/// renders them). `mutants` must kill every seeded mutant (exit nonzero on
/// a survivor) and can persist the shrunk counterexamples as corpus files.
/// `replay` re-executes corpus entries and exits nonzero when one no
/// longer reproduces its violation.
///
/// A checkpoint records the reduction mode and engine path of its executed
/// share; `--resume` rejects (exit 2) an explicit `--reduction`/`--engine`
/// that contradicts it, rather than silently continuing under either
/// configuration.
///
/// Exit codes: 0 success, 1 violations/survivors, 2 usage error,
/// 3 interrupted (sweep checkpoint written).
///
//===----------------------------------------------------------------------===//

#include "check/Checkpoint.h"
#include "check/Conformance.h"
#include "check/Telemetry.h"

#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

using namespace compass;
using namespace compass::check;

namespace {

[[noreturn]] void usage(const char *Msg = nullptr) {
  if (Msg)
    std::fprintf(stderr, "compass_check: %s\n", Msg);
  std::fprintf(stderr,
               "usage:\n"
               "  compass_check sweep   [--seed N] [--per-lib N] "
               "[--workers N] [--max-execs N] [--lib NAME]... "
               "[--reduction none|sleep|source] [--engine auto|root] "
               "[--json]\n"
               "                        [--checkpoint FILE] "
               "[--checkpoint-every N|Ns] [--time-budget SECS] "
               "[--telemetry FILE] [--resume FILE]\n"
               "  compass_check mutants [--seed N] [--max-scenarios N] "
               "[--max-execs N] [--mut NAME]... [--no-shrink] "
               "[--emit-corpus DIR] [--reduction none|sleep|source]\n"
               "  compass_check replay  FILE...\n"
               "numeric flags take unsigned decimal values; --workers "
               "must be >= 1; --checkpoint-every takes executions (N) or "
               "seconds (Ns); --time-budget takes seconds (may be "
               "fractional)\n");
  std::exit(2);
}

/// Strict unsigned decimal parse: rejects empty values, signs, whitespace,
/// non-digit trailers, and values that overflow uint64_t. Malformed input
/// is a usage error (exit 2) — a silently wrapped "--max-execs -1" must
/// never truncate a verification run.
uint64_t parseU64(const char *Flag, const char *V) {
  if (!V[0])
    usage((std::string("empty value for ") + Flag).c_str());
  for (const char *P = V; *P; ++P)
    if (*P < '0' || *P > '9')
      usage((std::string("bad value for ") + Flag + ": '" + V +
             "' (unsigned decimal required)")
                .c_str());
  errno = 0;
  char *End = nullptr;
  uint64_t N = std::strtoull(V, &End, 10);
  if (errno == ERANGE || (End && *End))
    usage((std::string("value for ") + Flag + " out of range: '" + V + "'")
              .c_str());
  return N;
}

/// parseU64 constrained to fit \p Max (for unsigned-typed options).
uint64_t parseBounded(const char *Flag, const char *V, uint64_t Max) {
  uint64_t N = parseU64(Flag, V);
  if (N > Max)
    usage((std::string("value for ") + Flag + " out of range: '" + V + "'")
              .c_str());
  return N;
}

/// Strict nonnegative seconds parse (fractions allowed).
double parseSeconds(const char *Flag, const char *V) {
  if (!V[0])
    usage((std::string("empty value for ") + Flag).c_str());
  for (const char *P = V; *P; ++P)
    if ((*P < '0' || *P > '9') && *P != '.')
      usage((std::string("bad value for ") + Flag + ": '" + V + "'")
                .c_str());
  errno = 0;
  char *End = nullptr;
  double S = std::strtod(V, &End);
  if (errno == ERANGE || (End && *End) || !(S >= 0))
    usage((std::string("bad value for ") + Flag + ": '" + V + "'").c_str());
  return S;
}

/// Pops the value of flag \p Name from argv position \p I.
const char *flagValue(int Argc, char **Argv, int &I, const char *Name) {
  if (I + 1 >= Argc)
    usage((std::string(Name) + " needs a value").c_str());
  return Argv[++I];
}

sim::ReductionMode parseReduction(const char *V) {
  sim::ReductionMode M;
  if (!sim::parseReductionMode(V, M))
    usage((std::string("bad value for --reduction (none|sleep|source): ") + V)
              .c_str());
  return M;
}

sim::EnginePath parseEngine(const char *V) {
  sim::EnginePath P;
  if (!sim::parseEnginePath(V, P))
    usage((std::string("bad value for --engine (auto|root): ") + V).c_str());
  return P;
}

/// Cooperative stop flag set by SIGINT/SIGTERM (sweep only).
std::atomic<bool> GStopRequested{false};

void handleStopSignal(int) { GStopRequested.store(true); }

int cmdSweep(int Argc, char **Argv) {
  SweepOptions O;
  bool Json = false;
  bool RedSet = false, EngSet = false;
  std::string CkptPath = "compass_sweep.ckpt";
  std::string ResumePath, TelemPath;
  uint64_t CkptEveryExecs = 0;
  double CkptEverySec = 0, TimeBudget = 0;
  for (int I = 0; I != Argc; ++I) {
    std::string A = Argv[I];
    if (A == "--seed")
      O.Seed = parseU64("--seed", flagValue(Argc, Argv, I, "--seed"));
    else if (A == "--per-lib")
      O.ScenariosPerLib = static_cast<unsigned>(parseBounded(
          "--per-lib", flagValue(Argc, Argv, I, "--per-lib"), ~0u));
    else if (A == "--workers") {
      O.Workers = static_cast<unsigned>(parseBounded(
          "--workers", flagValue(Argc, Argv, I, "--workers"), ~0u));
      if (O.Workers == 0)
        usage("--workers must be >= 1");
    } else if (A == "--max-execs")
      O.MaxExecutionsPerScenario =
          parseU64("--max-execs", flagValue(Argc, Argv, I, "--max-execs"));
    else if (A == "--lib") {
      Lib L;
      const char *Name = flagValue(Argc, Argv, I, "--lib");
      if (!parseLib(Name, L))
        usage((std::string("unknown library ") + Name).c_str());
      O.Libs.push_back(L);
    } else if (A == "--reduction") {
      O.Reduction =
          parseReduction(flagValue(Argc, Argv, I, "--reduction"));
      RedSet = true;
    } else if (A == "--engine") {
      O.Engine = parseEngine(flagValue(Argc, Argv, I, "--engine"));
      EngSet = true;
    } else if (A == "--json")
      Json = true;
    else if (A == "--checkpoint")
      CkptPath = flagValue(Argc, Argv, I, "--checkpoint");
    else if (A == "--checkpoint-every") {
      std::string V = flagValue(Argc, Argv, I, "--checkpoint-every");
      if (!V.empty() && V.back() == 's')
        CkptEverySec = parseSeconds("--checkpoint-every",
                                    V.substr(0, V.size() - 1).c_str());
      else
        CkptEveryExecs = parseU64("--checkpoint-every", V.c_str());
      if (CkptEveryExecs == 0 && CkptEverySec <= 0)
        usage("--checkpoint-every must be positive");
    } else if (A == "--time-budget") {
      TimeBudget = parseSeconds("--time-budget",
                                flagValue(Argc, Argv, I, "--time-budget"));
      if (TimeBudget <= 0)
        usage("--time-budget must be positive");
    } else if (A == "--telemetry")
      TelemPath = flagValue(Argc, Argv, I, "--telemetry");
    else if (A == "--resume")
      ResumePath = flagValue(Argc, Argv, I, "--resume");
    else
      usage((std::string("unknown sweep flag ") + A).c_str());
  }

  SweepCheckpoint Resume;
  bool HasResume = false;
  if (!ResumePath.empty()) {
    std::ifstream In(ResumePath);
    if (!In) {
      std::fprintf(stderr, "compass_check: cannot read %s\n",
                   ResumePath.c_str());
      return 2;
    }
    std::ostringstream Buf;
    Buf << In.rdbuf();
    std::string Err;
    if (!parseSweepCheckpoint(Buf.str(), Resume, Err)) {
      std::fprintf(stderr, "compass_check: %s: %s\n", ResumePath.c_str(),
                   Err.c_str());
      return 2;
    }
    HasResume = true;
    // A checkpoint's executed share is tied to the reduction mode and
    // engine path that produced it; splicing in a different one would
    // produce a fingerprint belonging to neither configuration. An
    // explicit contradicting flag is an error, not a preference.
    if (RedSet && O.Reduction != Resume.Reduction) {
      std::fprintf(stderr,
                   "compass_check: --reduction %s contradicts checkpoint %s "
                   "(recorded under --reduction %s); resume without the "
                   "flag or restart the sweep\n",
                   sim::reductionModeName(O.Reduction), ResumePath.c_str(),
                   sim::reductionModeName(Resume.Reduction));
      return 2;
    }
    if (EngSet && O.Engine != Resume.Engine) {
      std::fprintf(stderr,
                   "compass_check: --engine %s contradicts checkpoint %s "
                   "(recorded under --engine %s); resume without the flag "
                   "or restart the sweep\n",
                   sim::enginePathName(O.Engine), ResumePath.c_str(),
                   sim::enginePathName(Resume.Engine));
      return 2;
    }
  }

  std::signal(SIGINT, handleStopSignal);
  std::signal(SIGTERM, handleStopSignal);

  std::unique_ptr<Telemetry> Telem;
  if (!TelemPath.empty()) {
    Telem = std::make_unique<Telemetry>(TelemPath);
    if (!Telem->ok()) {
      std::fprintf(stderr, "compass_check: cannot write %s\n",
                   TelemPath.c_str());
      return 2;
    }
  }

  auto WriteCkpt = [&CkptPath](const SweepCheckpoint &K) -> bool {
    // Write-then-rename so a kill mid-write never corrupts a previous
    // checkpoint.
    std::string Tmp = CkptPath + ".tmp";
    {
      std::ofstream Out(Tmp, std::ios::trunc);
      if (!Out) {
        std::fprintf(stderr, "compass_check: cannot write %s\n",
                     Tmp.c_str());
        return false;
      }
      Out << serializeSweepCheckpoint(K);
      if (!Out) {
        std::fprintf(stderr, "compass_check: short write to %s\n",
                     Tmp.c_str());
        return false;
      }
    }
    if (std::rename(Tmp.c_str(), CkptPath.c_str()) != 0) {
      std::fprintf(stderr, "compass_check: cannot rename %s -> %s\n",
                   Tmp.c_str(), CkptPath.c_str());
      return false;
    }
    return true;
  };

  SweepControl C;
  C.StopRequested = &GStopRequested;
  C.TimeBudgetSec = TimeBudget;
  C.CheckpointEveryExecs = CkptEveryExecs;
  C.CheckpointEverySec = CkptEverySec;
  C.Telem = Telem.get();
  if (CkptEveryExecs > 0 || CkptEverySec > 0)
    C.OnCheckpoint = [&](const SweepCheckpoint &K) {
      if (WriteCkpt(K)) {
        std::fprintf(stderr, "compass_check: checkpoint written to %s\n",
                     CkptPath.c_str());
        if (Telem) {
          uint64_t Execs = 0;
          for (const LibSweepStats &St : K.DoneLibs)
            Execs += St.Executions;
          Execs += K.CurLib.Executions;
          if (K.HasScenario)
            Execs += K.Scenario.Partial.Executions;
          Telem->checkpoint(CkptPath, "cadence", Execs);
        }
      }
    };

  if (Telem) {
    SweepOptions Eff = O; // effective config for the record
    std::vector<Lib> Libs = HasResume ? Resume.Libs : O.Libs;
    if (Libs.empty())
      Libs.assign(allLibs(), allLibs() + NumLibs);
    uint64_t Base = 0;
    if (HasResume) {
      Eff.Seed = Resume.Seed;
      Eff.ScenariosPerLib = Resume.ScenariosPerLib;
      Eff.MaxExecutionsPerScenario = Resume.MaxExecutionsPerScenario;
      Eff.Reduction = Resume.Reduction;
      Eff.Engine = Resume.Engine;
      for (const LibSweepStats &St : Resume.DoneLibs)
        Base += St.Executions;
      Base += Resume.CurLib.Executions;
      if (Resume.HasScenario)
        Base += Resume.Scenario.Partial.Executions;
    }
    Telem->runStart(Eff, Libs, HasResume, Base);
  }

  SweepResult R = runSweepResumable(O, C, HasResume ? &Resume : nullptr);

  if (R.Interrupted) {
    const char *Reason = GStopRequested.load() ? "signal" : "time_budget";
    if (!WriteCkpt(R.Ckpt))
      return 2;
    uint64_t Execs = 0;
    for (const LibSweepStats &St : R.Ckpt.DoneLibs)
      Execs += St.Executions;
    Execs += R.Ckpt.CurLib.Executions;
    if (R.Ckpt.HasScenario)
      Execs += R.Ckpt.Scenario.Partial.Executions;
    std::fprintf(stderr,
                 "compass_check: sweep interrupted (%s) after %llu "
                 "executions; resume with --resume %s\n",
                 Reason, static_cast<unsigned long long>(Execs),
                 CkptPath.c_str());
    if (Telem) {
      Telem->checkpoint(CkptPath, Reason, Execs);
      Telem->runEnd(R.Rep, /*Interrupted=*/true);
    }
    return 3;
  }

  if (Telem)
    Telem->runEnd(R.Rep, /*Interrupted=*/false);
  std::printf("%s",
              Json ? (R.Rep.json() + "\n").c_str() : R.Rep.str().c_str());
  return R.Rep.clean() ? 0 : 1;
}

int cmdMutants(int Argc, char **Argv) {
  MutationOptions O;
  std::string CorpusDir;
  for (int I = 0; I != Argc; ++I) {
    std::string A = Argv[I];
    if (A == "--seed")
      O.Seed = parseU64("--seed", flagValue(Argc, Argv, I, "--seed"));
    else if (A == "--max-scenarios")
      O.MaxScenarios = static_cast<unsigned>(parseBounded(
          "--max-scenarios", flagValue(Argc, Argv, I, "--max-scenarios"),
          ~0u));
    else if (A == "--max-execs")
      O.MaxExecutionsPerScenario =
          parseU64("--max-execs", flagValue(Argc, Argv, I, "--max-execs"));
    else if (A == "--mut") {
      Mutation M;
      const char *Name = flagValue(Argc, Argv, I, "--mut");
      if (!parseMutation(Name, M) || M == Mutation::None)
        usage((std::string("unknown mutation ") + Name).c_str());
      O.Muts.push_back(M);
    } else if (A == "--no-shrink")
      O.Shrink = false;
    else if (A == "--emit-corpus")
      CorpusDir = flagValue(Argc, Argv, I, "--emit-corpus");
    else if (A == "--reduction")
      O.Reduction =
          parseReduction(flagValue(Argc, Argv, I, "--reduction"));
    else
      usage((std::string("unknown mutants flag ") + A).c_str());
  }
  std::vector<MutantReport> Reps = runMutationTests(O);
  unsigned Survivors = 0;
  for (const MutantReport &R : Reps) {
    std::printf("%s\n", R.str().c_str());
    if (!R.Killed) {
      ++Survivors;
      continue;
    }
    if (!CorpusDir.empty()) {
      CorpusEntry E = corpusEntryFor(R);
      std::string Path =
          CorpusDir + "/" + mutationName(R.Mut) + ".corpus";
      std::ofstream Out(Path);
      if (!Out) {
        std::fprintf(stderr, "compass_check: cannot write %s\n",
                     Path.c_str());
        return 2;
      }
      Out << formatCorpusEntry(E);
      std::printf("  wrote %s\n", Path.c_str());
    }
  }
  std::printf("%zu/%zu mutants killed\n", Reps.size() - Survivors,
              Reps.size());
  return Survivors ? 1 : 0;
}

int cmdReplay(int Argc, char **Argv) {
  if (!Argc)
    usage("replay needs at least one corpus file");
  int Bad = 0;
  for (int I = 0; I != Argc; ++I) {
    std::ifstream In(Argv[I]);
    if (!In) {
      std::fprintf(stderr, "compass_check: cannot read %s\n", Argv[I]);
      return 2;
    }
    std::ostringstream Buf;
    Buf << In.rdbuf();
    CorpusEntry E;
    std::string Err;
    if (!parseCorpusEntry(Buf.str(), E, Err)) {
      std::fprintf(stderr, "compass_check: %s: %s\n", Argv[I], Err.c_str());
      return 2;
    }
    TraceDiagnosis D = diagnoseTrace(E.S, E.Mut, scenarioOptions(E.S, 1, 1),
                                     E.Decisions);
    bool Ok = D.failing(); // A corpus entry must reproduce its violation.
    std::printf("%s: %s [%s, %s] %s\n", Argv[I],
                Ok ? "reproduced" : "NOT REPRODUCED", libName(E.S.L),
                mutationName(E.Mut), D.V.str().c_str());
    Bad += !Ok;
  }
  return Bad ? 1 : 0;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2)
    usage();
  std::string Cmd = Argv[1];
  if (Cmd == "sweep")
    return cmdSweep(Argc - 2, Argv + 2);
  if (Cmd == "mutants")
    return cmdMutants(Argc - 2, Argv + 2);
  if (Cmd == "replay")
    return cmdReplay(Argc - 2, Argv + 2);
  usage((std::string("unknown command ") + Cmd).c_str());
}
