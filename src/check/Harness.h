//===-- check/Harness.h - Scenario -> Workload instrumentation --*- C++ -*-===//
//
// Part of compass-cxx. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Turns a Scenario into a sim::Workload the explorer can run: a uniform
/// Container-style adapter instantiates the scenario's library (pristine or
/// mutated), per-thread coroutines execute the op lists while recording the
/// observed results, and the workload's Check closure hands every completed
/// execution's event graph plus observations to the reference model
/// (check/RefModel.h).
///
/// Observed-result encoding (Observed::Result):
///  * enq/push: the pushed value on success; 0 when an SPSC tryEnqueue
///    found the ring full; FailRaceVal when ElimStack rounds all failed;
///  * deq/pop/take/steal: the value, EmptyVal, or FailRaceVal (no event);
///  * exchange: the partner's value, or BottomVal on failure.
///
//===----------------------------------------------------------------------===//

#ifndef COMPASS_CHECK_HARNESS_H
#define COMPASS_CHECK_HARNESS_H

#include "check/Mutants.h"
#include "check/RefModel.h"
#include "check/Scenario.h"
#include "lib/ElimStack.h"
#include "lib/HwQueue.h"
#include "lib/MsQueue.h"
#include "lib/SpscRing.h"
#include "lib/TreiberStack.h"
#include "lib/TreiberStackEbr.h"
#include "lib/WsDeque.h"
#include "sim/Workload.h"

#include <atomic>
#include <memory>

namespace compass::check {

/// Instantiates and drives one scenario's library (pristine or mutated).
class ContainerAdapter {
public:
  ContainerAdapter(const Scenario &S, Mutation Mut, rmc::Machine &M,
                   spec::SpecMonitor &Mon);

  /// Executes one op, returning the observed result (see file comment).
  sim::Task<rmc::Value> apply(sim::Env &E, Op O);

  /// Runs the reference-model pipeline over \p Mon's recorded graph. For
  /// the elimination stack the checked graph is first *derived* from the
  /// base stack's and exchanger's events (spec/Composition.h).
  Verdict verdict(const spec::SpecMonitor &Mon,
                  const std::vector<std::vector<Observed>> &Results,
                  spec::LinearizeLimits Limits) const;

  /// Object id under which the library commits its events (for checks that
  /// want to interrogate the recorded graph directly, e.g. the HW-queue
  /// spec-strength separation test).
  unsigned objId() const { return Obj; }

private:
  Lib L;
  // Exactly one of these is set, per (L, Mut).
  std::unique_ptr<lib::SimQueue> Q;      ///< MsQueue/HwQueue or MutMsQueue.
  std::unique_ptr<lib::SimStack> Stk;    ///< TreiberStack or MutTreiberStack.
  std::unique_ptr<lib::ElimStack> Elim;
  std::unique_ptr<lib::Exchanger> Ex;
  std::unique_ptr<MutExchanger> MEx;
  std::unique_ptr<lib::SpscRing> Ring;
  std::unique_ptr<MutSpscRing> MRing;
  std::unique_ptr<lib::WsDeque> Deq;
  std::unique_ptr<MutWsDeque> MDeq;
  unsigned Obj = 0; ///< Object id under which events are committed.
};

/// Per-body state shared between the workload closures and the caller;
/// lets the driver read the last execution's verdict after a replay.
struct RunState {
  Scenario S;
  Mutation Mut = Mutation::None;
  spec::LinearizeLimits Limits{200000};

  // Reset by Setup each execution:
  std::unique_ptr<spec::SpecMonitor> Mon;
  std::unique_ptr<ContainerAdapter> A;
  std::vector<std::vector<Observed>> Results;

  // Written by Check:
  Verdict LastVerdict;
  sim::Scheduler::RunResult LastRun = sim::Scheduler::RunResult::Done;
  uint64_t LinAborts = 0; ///< Accumulated linearization budget overruns.
  /// When set, budget overruns are also folded into this cross-worker
  /// counter (see makeWorkload).
  std::shared_ptr<std::atomic<uint64_t>> SharedLinAborts;
};

/// Exploration options tuned for \p S (preemption bound from the scenario,
/// a per-scenario execution budget, StopOnViolation off so summaries stay
/// worker-count independent). Verification defaults to the source-set
/// reduction (DESIGN.md Sections 8 and 12, the strongest mode with the
/// same verdicts); pass ReductionMode::SleepSet for the classic reduction
/// or ReductionMode::None for an unreduced baseline (e.g. when comparing
/// against pinned fingerprints of unreduced exploration).
sim::Explorer::Options
scenarioOptions(const Scenario &S, uint64_t MaxExecutions, unsigned Workers,
                sim::ReductionMode Red = sim::ReductionMode::SourceSet,
                sim::EnginePath Engine = sim::EnginePath::Auto);

/// A workload whose body is instantiated per worker (safe for parallel
/// exploration). Violations are executions whose reference-model verdict
/// fails, plus races/deadlocks/step-limit runs. When \p LinAborts is
/// non-null it accumulates, across all workers, the executions whose
/// linearization search hit its state budget (verdict unknown, treated as
/// pass).
sim::Workload makeWorkload(const Scenario &S, Mutation Mut,
                           sim::Explorer::Options Opts,
                           std::shared_ptr<std::atomic<uint64_t>> LinAborts =
                               nullptr);

/// A single-body workload that exposes its RunState, for replay +
/// diagnostics (the parallel-safe makeWorkload keeps its states private).
struct Instrumented {
  sim::Workload W;
  std::shared_ptr<RunState> State;
};
Instrumented makeInstrumented(const Scenario &S, Mutation Mut,
                              sim::Explorer::Options Opts);

/// Replays \p Decisions against an instrumented body and reports the
/// run result, the reference-model verdict, and the canonical executed
/// decision sequence (divergence-free replay input).
struct TraceDiagnosis {
  sim::ReplayResult RR;
  sim::Scheduler::RunResult Run = sim::Scheduler::RunResult::Done;
  Verdict V;
  std::vector<unsigned> Executed;

  /// True when the replayed execution violates the property.
  bool failing() const { return !RR.CheckOk; }
};
TraceDiagnosis diagnoseTrace(const Scenario &S, Mutation Mut,
                             sim::Explorer::Options Opts,
                             const std::vector<unsigned> &Decisions);

} // namespace compass::check

#endif // COMPASS_CHECK_HARNESS_H
