//===-- check/Mutants.cpp - Deliberately broken library variants -----------===//
//
// Each implementation below is a copy of the corresponding src/lib/
// algorithm with exactly one seeded bug, marked by a `MUTANT:` comment.
// Keep them in sync with the originals when those change.
//
//===----------------------------------------------------------------------===//

#include "check/Mutants.h"

#include "support/Error.h"

#include <cassert>

using namespace compass;
using namespace compass::check;
using namespace compass::rmc;
using namespace compass::sim;
using compass::graph::BottomVal;
using compass::graph::EmptyVal;
using compass::graph::EventId;
using compass::graph::FailRaceVal;
using compass::graph::OpKind;

// === MutMsQueue ==========================================================

MutMsQueue::MutMsQueue(Machine &M, spec::SpecMonitor &Mon, std::string Name,
                       Mutation Mut)
    : Mon(Mon), Mut(Mut) {
  assert(Mut == Mutation::MsQueueRelaxedPublish ||
         Mut == Mutation::MsQueueSkipDeq);
  Obj = Mon.registerObject(Name);
  Loc Sentinel = M.alloc(Name + ".sentinel", 3);
  Head = M.alloc(Name + ".head", 1, Sentinel);
  Tail = M.alloc(Name + ".tail", 1, Sentinel);
}

Task<void> MutMsQueue::enqueue(Env &E, Value V) {
  Loc N = E.M.alloc("msq.node", 3);
  co_await E.store(N + ValOff, V, MemOrder::NonAtomic);

  // MUTANT(MsQueueRelaxedPublish): the linking CAS is relaxed, so the
  // node's non-atomic payload is not published to the dequeuer.
  MemOrder LinkOrder = Mut == Mutation::MsQueueRelaxedPublish
                           ? MemOrder::Relaxed
                           : MemOrder::Release;

  Value PrevTail = ~0ull, PrevNext = ~0ull;
  for (;;) {
    Value TailPtr = co_await E.load(Tail, MemOrder::Acquire);
    Loc Last = static_cast<Loc>(TailPtr);
    Value Next = co_await E.load(Last + NextOff, MemOrder::Acquire);
    if (TailPtr == PrevTail && Next == PrevNext)
      co_await E.prune();
    PrevTail = TailPtr;
    PrevNext = Next;

    if (Next != 0) {
      co_await E.cas(Tail, TailPtr, Next, MemOrder::Release);
      continue;
    }
    EventId Ev = Mon.reserve(E.M, E.Tid);
    co_await E.store(N + EidOff, Ev, MemOrder::NonAtomic);
    auto R = co_await E.cas(Last + NextOff, 0, N, LinkOrder);
    if (R.Success) {
      Mon.commit(E.M, E.Tid, Ev, Obj, OpKind::Enq, V);
      co_await E.cas(Tail, TailPtr, N, MemOrder::Release);
      co_return;
    }
    Mon.retract(E.M, E.Tid, Ev);
  }
}

Task<Value> MutMsQueue::dequeue(Env &E) {
  Value PrevHead = ~0ull, PrevNext = ~0ull;
  for (;;) {
    Value HeadPtr = co_await E.load(Head, MemOrder::Acquire);
    Loc First = static_cast<Loc>(HeadPtr);
    Value Next = co_await E.load(First + NextOff, MemOrder::Acquire);
    if (Next == 0) {
      EventId Ev = Mon.reserve(E.M, E.Tid);
      Mon.commit(E.M, E.Tid, Ev, Obj, OpKind::DeqEmpty, EmptyVal);
      co_return EmptyVal;
    }
    if (HeadPtr == PrevHead && Next == PrevNext)
      co_await E.prune();
    PrevHead = HeadPtr;
    PrevNext = Next;

    Loc Node = static_cast<Loc>(Next);

    if (Mut == Mutation::MsQueueSkipDeq) {
      // MUTANT(MsQueueSkipDeq): when the first node already has a
      // successor, advance head straight past it — the first element is
      // silently dropped and the *second* is returned (FIFO violation).
      Value NextNext = co_await E.load(Node + NextOff, MemOrder::Acquire);
      if (NextNext != 0) {
        Loc Node2 = static_cast<Loc>(NextNext);
        Value V2 = co_await E.load(Node2 + ValOff, MemOrder::NonAtomic);
        Value EnqEv2 = co_await E.load(Node2 + EidOff, MemOrder::NonAtomic);
        EventId Ev = Mon.reserve(E.M, E.Tid);
        auto R = co_await E.cas(Head, HeadPtr, NextNext, MemOrder::AcqRel);
        if (R.Success) {
          Mon.commit(E.M, E.Tid, Ev, Obj, OpKind::DeqOk, V2, 0,
                     static_cast<EventId>(EnqEv2));
          co_return V2;
        }
        Mon.retract(E.M, E.Tid, Ev);
        continue;
      }
    }

    Value V = co_await E.load(Node + ValOff, MemOrder::NonAtomic);
    Value EnqEv = co_await E.load(Node + EidOff, MemOrder::NonAtomic);
    EventId Ev = Mon.reserve(E.M, E.Tid);
    auto R = co_await E.cas(Head, HeadPtr, Next, MemOrder::AcqRel);
    if (R.Success) {
      Mon.commit(E.M, E.Tid, Ev, Obj, OpKind::DeqOk, V, 0,
                 static_cast<EventId>(EnqEv));
      co_return V;
    }
    Mon.retract(E.M, E.Tid, Ev);
  }
}

// === MutTreiberStack =====================================================

MutTreiberStack::MutTreiberStack(Machine &M, spec::SpecMonitor &Mon,
                                 std::string Name, Mutation Mut)
    : Mon(Mon), Mut(Mut) {
  assert(Mut == Mutation::TreiberRelaxedPopHead ||
         Mut == Mutation::TreiberPopBelowTop);
  Obj = Mon.registerObject(Name);
  HeadLoc = M.alloc(Name + ".head");
}

Task<void> MutTreiberStack::push(Env &E, Value V) {
  Loc N = E.M.alloc("stk.node", 3);
  co_await E.store(N + ValOff, V, MemOrder::NonAtomic);
  Timestamp PrevTs = ~0u;
  bool First = true;
  for (;;) {
    Value HeadPtr = co_await E.load(HeadLoc, MemOrder::Relaxed);
    Timestamp Ts = E.M.lastReadTs(E.Tid);
    if (!First && Ts == PrevTs)
      co_await E.prune();
    First = false;
    PrevTs = Ts;
    co_await E.store(N + NextOff, HeadPtr, MemOrder::NonAtomic);
    EventId Ev = Mon.reserve(E.M, E.Tid);
    co_await E.store(N + EidOff, Ev, MemOrder::NonAtomic);
    auto R = co_await E.cas(HeadLoc, HeadPtr, N, MemOrder::Release);
    if (R.Success) {
      Mon.commit(E.M, E.Tid, Ev, Obj, OpKind::Push, V);
      co_return;
    }
    Mon.retract(E.M, E.Tid, Ev);
  }
}

Task<bool> MutTreiberStack::tryPush(Env &E, Value V) {
  Loc N = E.M.alloc("stk.node", 3);
  co_await E.store(N + ValOff, V, MemOrder::NonAtomic);
  Value HeadPtr = co_await E.load(HeadLoc, MemOrder::Relaxed);
  co_await E.store(N + NextOff, HeadPtr, MemOrder::NonAtomic);
  EventId Ev = Mon.reserve(E.M, E.Tid);
  co_await E.store(N + EidOff, Ev, MemOrder::NonAtomic);
  auto R = co_await E.cas(HeadLoc, HeadPtr, N, MemOrder::Release);
  if (R.Success) {
    Mon.commit(E.M, E.Tid, Ev, Obj, OpKind::Push, V);
    co_return true;
  }
  Mon.retract(E.M, E.Tid, Ev);
  co_return false;
}

Task<Value> MutTreiberStack::popAttempt(Env &E, Timestamp *HeadTsOut) {
  // MUTANT(TreiberRelaxedPopHead): the head load is relaxed, so the
  // non-atomic node reads below race with the pusher's initialization.
  MemOrder HeadOrder = Mut == Mutation::TreiberRelaxedPopHead
                           ? MemOrder::Relaxed
                           : MemOrder::Acquire;
  Value HeadPtr = co_await E.load(HeadLoc, HeadOrder);
  if (HeadTsOut)
    *HeadTsOut = E.M.lastReadTs(E.Tid);
  if (HeadPtr == 0) {
    EventId Ev = Mon.reserve(E.M, E.Tid);
    Mon.commit(E.M, E.Tid, Ev, Obj, OpKind::PopEmpty, EmptyVal);
    co_return EmptyVal;
  }
  Loc Node = static_cast<Loc>(HeadPtr);
  Value Next = co_await E.load(Node + NextOff, MemOrder::NonAtomic);

  if (Mut == Mutation::TreiberPopBelowTop && Next != 0) {
    // MUTANT(TreiberPopBelowTop): with two or more elements, unlink BOTH
    // top nodes but return (and record) the *second* one's value — the
    // top element vanishes unpopped and LIFO order is broken.
    Loc Node2 = static_cast<Loc>(Next);
    Value NextNext = co_await E.load(Node2 + NextOff, MemOrder::NonAtomic);
    Value V2 = co_await E.load(Node2 + ValOff, MemOrder::NonAtomic);
    Value PushEv2 = co_await E.load(Node2 + EidOff, MemOrder::NonAtomic);
    EventId Ev = Mon.reserve(E.M, E.Tid);
    auto R = co_await E.cas(HeadLoc, HeadPtr, NextNext, MemOrder::Acquire);
    if (R.Success) {
      Mon.commit(E.M, E.Tid, Ev, Obj, OpKind::PopOk, V2, 0,
                 static_cast<EventId>(PushEv2));
      co_return V2;
    }
    Mon.retract(E.M, E.Tid, Ev);
    co_return FailRaceVal;
  }

  Value V = co_await E.load(Node + ValOff, MemOrder::NonAtomic);
  Value PushEv = co_await E.load(Node + EidOff, MemOrder::NonAtomic);
  EventId Ev = Mon.reserve(E.M, E.Tid);
  auto R = co_await E.cas(HeadLoc, HeadPtr, Next, MemOrder::Acquire);
  if (R.Success) {
    Mon.commit(E.M, E.Tid, Ev, Obj, OpKind::PopOk, V, 0,
               static_cast<EventId>(PushEv));
    co_return V;
  }
  Mon.retract(E.M, E.Tid, Ev);
  co_return FailRaceVal;
}

Task<Value> MutTreiberStack::tryPop(Env &E) {
  return popAttempt(E, nullptr);
}

Task<Value> MutTreiberStack::pop(Env &E) {
  Timestamp PrevTs = ~0u;
  bool First = true;
  for (;;) {
    Timestamp Ts = 0;
    auto Attempt = popAttempt(E, &Ts);
    Value V = co_await Attempt;
    if (V != FailRaceVal)
      co_return V;
    if (!First && Ts == PrevTs)
      co_await E.prune();
    First = false;
    PrevTs = Ts;
  }
}

// === MutTreiberStackEbr ==================================================

MutTreiberStackEbr::MutTreiberStackEbr(Machine &M, spec::SpecMonitor &Mon,
                                       std::string Name, unsigned NumThreads,
                                       Mutation Mut)
    : Mon(Mon), Mut(Mut),
      // MUTANT(EbrSkipGracePeriod): the domain's epoch advance skips the
      // announcement scan, so retired nodes are freed under pinned readers.
      Dom(M, Name + ".ebr", NumThreads,
          sim::Ebr::Options{Mut == Mutation::EbrSkipGracePeriod}) {
  assert(Mut == Mutation::EbrSkipGracePeriod ||
         Mut == Mutation::EbrEarlyUnpin);
  Obj = Mon.registerObject(Name);
  HeadLoc = M.alloc(Name + ".head");
}

Task<bool> MutTreiberStackEbr::pushAttempt(Env &E, Value HeadPtr, Loc N,
                                           Value V) {
  co_await E.store(N + NextOff, HeadPtr, MemOrder::NonAtomic);
  EventId Ev = Mon.reserve(E.M, E.Tid);
  co_await E.store(N + EidOff, Ev, MemOrder::NonAtomic);
  auto R = co_await E.cas(HeadLoc, HeadPtr, N, MemOrder::Release);
  if (R.Success) {
    Mon.commit(E.M, E.Tid, Ev, Obj, OpKind::Push, V);
    co_return true;
  }
  Mon.retract(E.M, E.Tid, Ev);
  co_return false;
}

Task<void> MutTreiberStackEbr::push(Env &E, Value V) {
  Loc N = E.M.alloc("estk.node", NodeCells);
  co_await E.store(N + ValOff, V, MemOrder::NonAtomic);
  auto Pin = Dom.pin(E);
  co_await Pin;
  Timestamp PrevTs = ~0u;
  bool First = true;
  for (;;) {
    Value HeadPtr = co_await E.load(HeadLoc, MemOrder::Relaxed);
    Timestamp Ts = E.M.lastReadTs(E.Tid);
    if (!First && Ts == PrevTs)
      co_await E.prune();
    First = false;
    PrevTs = Ts;
    auto Attempt = pushAttempt(E, HeadPtr, N, V);
    bool Ok = co_await Attempt;
    if (Ok)
      break;
  }
  auto Unpin = Dom.unpin(E);
  co_await Unpin;
}

Task<bool> MutTreiberStackEbr::tryPush(Env &E, Value V) {
  Loc N = E.M.alloc("estk.node", NodeCells);
  co_await E.store(N + ValOff, V, MemOrder::NonAtomic);
  auto Pin = Dom.pin(E);
  co_await Pin;
  Value HeadPtr = co_await E.load(HeadLoc, MemOrder::Relaxed);
  auto Attempt = pushAttempt(E, HeadPtr, N, V);
  bool Ok = co_await Attempt;
  auto Unpin = Dom.unpin(E);
  co_await Unpin;
  co_return Ok;
}

Task<Value> MutTreiberStackEbr::popAttempt(Env &E, Timestamp *HeadTsOut) {
  Value HeadPtr = co_await E.load(HeadLoc, MemOrder::Acquire);
  if (HeadTsOut)
    *HeadTsOut = E.M.lastReadTs(E.Tid);
  if (Mut == Mutation::EbrEarlyUnpin) {
    // MUTANT(EbrEarlyUnpin): leave the critical section as soon as the
    // head snapshot is taken. Everything below — including the node
    // dereferences — runs unprotected, so a concurrent pop can retire the
    // node and the domain can free it under us.
    auto Unpin = Dom.unpin(E);
    co_await Unpin;
  }
  if (HeadPtr == 0) {
    EventId Ev = Mon.reserve(E.M, E.Tid);
    Mon.commit(E.M, E.Tid, Ev, Obj, OpKind::PopEmpty, EmptyVal);
    co_return EmptyVal;
  }
  Loc Node = static_cast<Loc>(HeadPtr);
  Value Next = co_await E.load(Node + NextOff, MemOrder::NonAtomic);
  Value V = co_await E.load(Node + ValOff, MemOrder::NonAtomic);
  Value PushEv = co_await E.load(Node + EidOff, MemOrder::NonAtomic);
  EventId Ev = Mon.reserve(E.M, E.Tid);
  auto R = co_await E.cas(HeadLoc, HeadPtr, Next, MemOrder::Acquire);
  if (R.Success) {
    Mon.commit(E.M, E.Tid, Ev, Obj, OpKind::PopOk, V, 0,
               static_cast<EventId>(PushEv));
    auto Ret = Dom.retire(E, Node, NodeCells);
    co_await Ret;
    co_return V;
  }
  Mon.retract(E.M, E.Tid, Ev);
  co_return FailRaceVal;
}

Task<Value> MutTreiberStackEbr::tryPop(Env &E) {
  auto Pin = Dom.pin(E);
  co_await Pin;
  auto Attempt = popAttempt(E, nullptr);
  Value V = co_await Attempt;
  if (Mut != Mutation::EbrEarlyUnpin) {
    auto Unpin = Dom.unpin(E);
    co_await Unpin;
  }
  co_return V;
}

Task<Value> MutTreiberStackEbr::pop(Env &E) {
  auto Pin = Dom.pin(E);
  co_await Pin;
  Timestamp PrevTs = ~0u;
  bool First = true;
  Value Out = FailRaceVal;
  for (;;) {
    Timestamp Ts = 0;
    auto Attempt = popAttempt(E, &Ts);
    Value V = co_await Attempt;
    if (V != FailRaceVal) {
      Out = V;
      break;
    }
    if (!First && Ts == PrevTs)
      co_await E.prune();
    First = false;
    PrevTs = Ts;
    if (Mut == Mutation::EbrEarlyUnpin) {
      // The failed attempt already unpinned; re-enter for the retry.
      auto Pin2 = Dom.pin(E);
      co_await Pin2;
    }
  }
  if (Mut != Mutation::EbrEarlyUnpin) {
    auto Unpin = Dom.unpin(E);
    co_await Unpin;
  }
  co_return Out;
}

// === MutExchanger ========================================================

MutExchanger::MutExchanger(Machine &M, spec::SpecMonitor &Mon,
                           std::string Name)
    : Mon(Mon) {
  Obj = Mon.registerObject(Name);
  Slot = M.alloc(Name + ".slot");
}

Task<Value> MutExchanger::exchange(Env &E, Value V, unsigned Attempts) {
  if (V == BottomVal || V == 0)
    fatalError("exchanged values must be nonzero and not ⊥");

  for (unsigned Round = 0; Round != Attempts; ++Round) {
    Value SlotVal = co_await E.load(Slot, MemOrder::Acquire);
    if (SlotVal == 0) {
      Loc Off = E.M.alloc("xchg.offer", 3);
      co_await E.store(Off + ValOff, V, MemOrder::NonAtomic);
      co_await E.store(Off + TidOff, E.Tid, MemOrder::NonAtomic);
      auto Install = co_await E.cas(Slot, 0, Off, MemOrder::Release);
      if (!Install.Success)
        continue;
      auto Cancel = co_await E.cas(Off + HoleOff, 0, HoleCancel,
                                   MemOrder::Relaxed, MemOrder::Acquire);
      if (Cancel.Success) {
        co_await E.cas(Slot, Off, 0, MemOrder::Relaxed);
        continue;
      }
      co_await E.cas(Slot, Off, 0, MemOrder::Relaxed);
      // MUTANT(ExchangerEchoValue): hand back our own value instead of the
      // partner's (Cancel.Old). The event graph records the true crossing,
      // so only the observed-result check can see this.
      co_return V;
    }

    Loc Off = static_cast<Loc>(SlotVal);
    rmc::View OfferPhys = E.M.lastReadKnowledge(E.Tid).Phys;
    Value PartnerVal = co_await E.load(Off + ValOff, MemOrder::NonAtomic);
    Value PartnerTid = co_await E.load(Off + TidOff, MemOrder::NonAtomic);
    EventId HelpeeEv = Mon.reserve(E.M, E.Tid);
    EventId MyEv = Mon.reserve(E.M, E.Tid);
    auto R = co_await E.cas(Off + HoleOff, 0, V, MemOrder::AcqRel);
    if (R.Success) {
      Mon.commitExchangePair(E.M, E.Tid, MyEv, V,
                             static_cast<unsigned>(PartnerTid), HelpeeEv,
                             PartnerVal, OfferPhys, Obj);
      co_await E.cas(Slot, Off, 0, MemOrder::Relaxed);
      // MUTANT(ExchangerEchoValue): should be PartnerVal.
      co_return V;
    }
    Mon.retract(E.M, E.Tid, HelpeeEv);
    Mon.retract(E.M, E.Tid, MyEv);
    co_await E.cas(Slot, Off, 0, MemOrder::Relaxed);
  }

  EventId Ev = Mon.reserve(E.M, E.Tid);
  Mon.commit(E.M, E.Tid, Ev, Obj, OpKind::Exchange, V, BottomVal);
  co_return BottomVal;
}

// === MutSpscRing =========================================================

MutSpscRing::MutSpscRing(Machine &M, spec::SpecMonitor &Mon,
                         std::string Name, unsigned Capacity)
    : Mon(Mon), Capacity(Capacity) {
  Obj = Mon.registerObject(Name);
  HeadIdx = M.alloc(Name + ".head");
  TailIdx = M.alloc(Name + ".tail");
  Buf = M.alloc(Name + ".buf", Capacity);
  Eids = M.alloc(Name + ".eids", Capacity);
}

void MutSpscRing::checkRole(unsigned &Role, unsigned Tid, const char *What) {
  if (Role == ~0u)
    Role = Tid;
  else if (Role != Tid)
    fatalError(std::string("MutSpscRing: second thread acting as ") + What);
}

Task<bool> MutSpscRing::tryEnqueue(Env &E, Value V) {
  checkRole(ProducerTid, E.Tid, "producer");
  Value T = co_await E.load(TailIdx, MemOrder::Relaxed);
  Value H = co_await E.load(HeadIdx, MemOrder::Acquire);
  if (T - H == Capacity)
    co_return false;
  Loc Slot = Buf + static_cast<Loc>(T % Capacity);
  co_await E.store(Slot, V, MemOrder::NonAtomic);
  EventId Ev = Mon.reserve(E.M, E.Tid);
  co_await E.store(Eids + static_cast<Loc>(T % Capacity), Ev,
                   MemOrder::NonAtomic);
  // MUTANT(SpscRelaxedTailPublish): relaxed tail store — the consumer's
  // acquire of tail no longer brings the slot write with it, so its
  // non-atomic slot read races.
  co_await E.store(TailIdx, T + 1, MemOrder::Relaxed);
  Mon.commit(E.M, E.Tid, Ev, Obj, OpKind::Enq, V);
  co_return true;
}

Task<Value> MutSpscRing::dequeue(Env &E) {
  checkRole(ConsumerTid, E.Tid, "consumer");
  Value H = co_await E.load(HeadIdx, MemOrder::Relaxed);
  Value T = co_await E.load(TailIdx, MemOrder::Acquire);
  if (H == T) {
    EventId Ev = Mon.reserve(E.M, E.Tid);
    Mon.commit(E.M, E.Tid, Ev, Obj, OpKind::DeqEmpty, EmptyVal);
    co_return EmptyVal;
  }
  Loc Slot = Buf + static_cast<Loc>(H % Capacity);
  Value V = co_await E.load(Slot, MemOrder::NonAtomic);
  Value EnqEv = co_await E.load(Eids + static_cast<Loc>(H % Capacity),
                                MemOrder::NonAtomic);
  EventId Ev = Mon.reserve(E.M, E.Tid);
  co_await E.store(HeadIdx, H + 1, MemOrder::Release);
  Mon.commit(E.M, E.Tid, Ev, Obj, OpKind::DeqOk, V, 0,
             static_cast<EventId>(EnqEv));
  co_return V;
}

// === MutWsDeque ==========================================================

MutWsDeque::MutWsDeque(Machine &M, spec::SpecMonitor &Mon, std::string Name,
                       unsigned Capacity)
    : Mon(Mon), Capacity(Capacity) {
  Obj = Mon.registerObject(Name);
  Top = M.alloc(Name + ".top");
  Bottom = M.alloc(Name + ".bottom");
  Buf = M.alloc(Name + ".buf", Capacity);
  Eids = M.alloc(Name + ".eids", Capacity);
}

void MutWsDeque::checkOwner(unsigned Tid) {
  if (OwnerTid == ~0u)
    OwnerTid = Tid;
  else if (OwnerTid != Tid)
    fatalError("MutWsDeque owner operations must come from one thread");
}

Task<void> MutWsDeque::push(Env &E, Value V) {
  checkOwner(E.Tid);
  Value B = co_await E.load(Bottom, MemOrder::Relaxed);
  Value T = co_await E.load(Top, MemOrder::Acquire);
  if (B >= Capacity || static_cast<int64_t>(B) - static_cast<int64_t>(T) >=
                           static_cast<int64_t>(Capacity))
    fatalError("MutWsDeque capacity exceeded; size the workload");

  co_await E.store(Buf + static_cast<Loc>(B), V, MemOrder::Relaxed);
  EventId Ev = Mon.reserve(E.M, E.Tid);
  co_await E.store(Eids + static_cast<Loc>(B), Ev, MemOrder::Relaxed);
  co_await E.fence(MemOrder::Release);
  co_await E.store(Bottom, B + 1, MemOrder::Relaxed);
  Mon.commit(E.M, E.Tid, Ev, Obj, OpKind::Push, V);
  OwnerShadow[B] = {V, Ev};
  co_return;
}

Task<Value> MutWsDeque::take(Env &E) {
  checkOwner(E.Tid);
  Value B = co_await E.load(Bottom, MemOrder::Relaxed);
  int64_t BI = static_cast<int64_t>(B) - 1;
  co_await E.store(Bottom, static_cast<Value>(BI), MemOrder::Relaxed);
  // MUTANT(WsDequeTakeNoFence): the seq-cst fence between the bottom
  // decrement and the top read is removed. The relaxed top read may now be
  // stale, so the owner can think the bottom element is exclusively its
  // own while a thief is stealing that very element.
  Value T = co_await E.load(Top, MemOrder::Relaxed);
  int64_t TI = static_cast<int64_t>(T);

  if (TI > BI) {
    EventId Ev = Mon.reserve(E.M, E.Tid);
    Mon.commit(E.M, E.Tid, Ev, Obj, OpKind::PopEmpty, EmptyVal);
    co_await E.store(Bottom, static_cast<Value>(BI + 1),
                     MemOrder::Relaxed);
    co_return EmptyVal;
  }

  auto ShadowIt = OwnerShadow.find(static_cast<uint64_t>(BI));
  if (ShadowIt == OwnerShadow.end())
    fatalError("MutWsDeque owner shadow out of sync");
  ShadowEntry Shadow = ShadowIt->second;

  if (TI != BI) {
    EventId Ev = Mon.reserve(E.M, E.Tid);
    Mon.commit(E.M, E.Tid, Ev, Obj, OpKind::PopOk, Shadow.Val, 0,
               Shadow.Ev);
    OwnerShadow.erase(static_cast<uint64_t>(BI));
    Value V = co_await E.load(Buf + static_cast<Loc>(BI),
                              MemOrder::Relaxed);
    (void)V;
    co_return Shadow.Val;
  }

  EventId Ev = Mon.reserve(E.M, E.Tid);
  auto R = co_await E.cas(Top, T, T + 1, MemOrder::SeqCst,
                          MemOrder::Relaxed);
  if (R.Success) {
    Mon.commit(E.M, E.Tid, Ev, Obj, OpKind::PopOk, Shadow.Val, 0,
               Shadow.Ev);
    OwnerShadow.erase(static_cast<uint64_t>(BI));
    co_await E.store(Bottom, static_cast<Value>(BI + 1),
                     MemOrder::Relaxed);
    co_return Shadow.Val;
  }
  Mon.retract(E.M, E.Tid, Ev);
  EventId EmpEv = Mon.reserve(E.M, E.Tid);
  Mon.commit(E.M, E.Tid, EmpEv, Obj, OpKind::PopEmpty, EmptyVal);
  co_await E.store(Bottom, static_cast<Value>(BI + 1), MemOrder::Relaxed);
  co_return EmptyVal;
}

Task<Value> MutWsDeque::steal(Env &E) {
  Value T = co_await E.load(Top, MemOrder::Acquire);
  co_await E.fence(MemOrder::SeqCst);
  Value B = co_await E.load(Bottom, MemOrder::Acquire);
  if (static_cast<int64_t>(T) >= static_cast<int64_t>(B)) {
    EventId Ev = Mon.reserve(E.M, E.Tid);
    Mon.commit(E.M, E.Tid, Ev, Obj, OpKind::StealEmpty, EmptyVal);
    co_return EmptyVal;
  }
  Value V = co_await E.load(Buf + static_cast<Loc>(T), MemOrder::Relaxed);
  Value PushEv =
      co_await E.load(Eids + static_cast<Loc>(T), MemOrder::Relaxed);
  EventId Ev = Mon.reserve(E.M, E.Tid);
  auto R = co_await E.cas(Top, T, T + 1, MemOrder::SeqCst,
                          MemOrder::Relaxed);
  if (R.Success) {
    Mon.commit(E.M, E.Tid, Ev, Obj, OpKind::Steal, V, 0,
               static_cast<EventId>(PushEv));
    co_return V;
  }
  Mon.retract(E.M, E.Tid, Ev);
  co_return FailRaceVal;
}
