//===-- check/Harness.cpp - Scenario -> Workload instrumentation ----------===//

#include "check/Harness.h"

#include "spec/Composition.h"

#include <cassert>

using namespace compass;
using namespace compass::check;

namespace {

/// Object id under which the elimination stack's *derived* events are
/// rebuilt (spec/Composition.h). Any id unused by the monitor works; a
/// large constant keeps it visibly synthetic in diagnostics.
constexpr unsigned DerivedEsObj = 1000;

/// Bounded rounds/attempts for the optimistic libraries, kept small so the
/// decision tree stays tractable.
constexpr unsigned ElimRounds = 2;
constexpr unsigned ExchangeAttempts = 1;

} // namespace

ContainerAdapter::ContainerAdapter(const Scenario &S, Mutation Mut,
                                   rmc::Machine &M, spec::SpecMonitor &Mon)
    : L(S.L) {
  switch (S.L) {
  case Lib::MsQueue:
    if (Mut == Mutation::None)
      Q = std::make_unique<lib::MsQueue>(M, Mon, "q");
    else
      Q = std::make_unique<MutMsQueue>(M, Mon, "q", Mut);
    Obj = Q->objId();
    break;
  case Lib::HwQueue:
    assert(Mut == Mutation::None && "no HwQueue mutants");
    Q = std::make_unique<lib::HwQueue>(M, Mon, "q", S.Capacity);
    Obj = Q->objId();
    break;
  case Lib::TreiberStack:
    if (Mut == Mutation::None)
      Stk = std::make_unique<lib::TreiberStack>(M, Mon, "s");
    else
      Stk = std::make_unique<MutTreiberStack>(M, Mon, "s", Mut);
    Obj = Stk->objId();
    break;
  case Lib::TreiberEbr:
    if (Mut == Mutation::None)
      Stk = std::make_unique<lib::TreiberStackEbr>(
          M, Mon, "s", static_cast<unsigned>(S.Threads.size()));
    else
      Stk = std::make_unique<MutTreiberStackEbr>(
          M, Mon, "s", static_cast<unsigned>(S.Threads.size()), Mut);
    Obj = Stk->objId();
    break;
  case Lib::ElimStack:
    assert(Mut == Mutation::None && "no ElimStack mutants");
    Elim = std::make_unique<lib::ElimStack>(M, Mon, "es");
    Obj = DerivedEsObj; // Events are checked on the derived graph.
    break;
  case Lib::Exchanger:
    if (Mut == Mutation::None) {
      Ex = std::make_unique<lib::Exchanger>(M, Mon, "x");
      Obj = Ex->objId();
    } else {
      assert(Mut == Mutation::ExchangerEchoValue);
      MEx = std::make_unique<MutExchanger>(M, Mon, "x");
      Obj = MEx->objId();
    }
    break;
  case Lib::SpscRing:
    if (Mut == Mutation::None) {
      Ring = std::make_unique<lib::SpscRing>(M, Mon, "r", S.Capacity);
      Obj = Ring->objId();
    } else {
      assert(Mut == Mutation::SpscRelaxedTailPublish);
      MRing = std::make_unique<MutSpscRing>(M, Mon, "r", S.Capacity);
      Obj = MRing->objId();
    }
    break;
  case Lib::WsDeque:
    if (Mut == Mutation::None) {
      Deq = std::make_unique<lib::WsDeque>(M, Mon, "d", S.Capacity);
      Obj = Deq->objId();
    } else {
      assert(Mut == Mutation::WsDequeTakeNoFence);
      MDeq = std::make_unique<MutWsDeque>(M, Mon, "d", S.Capacity);
      Obj = MDeq->objId();
    }
    break;
  }
}

sim::Task<rmc::Value> ContainerAdapter::apply(sim::Env &E, Op O) {
  // Task awaits must go through named locals (see sim/Task.h).
  switch (O.Code) {
  case OpCode::Enq: {
    if (Ring || MRing) {
      auto T = Ring ? Ring->tryEnqueue(E, O.Arg) : MRing->tryEnqueue(E, O.Arg);
      bool Ok = co_await T;
      co_return Ok ? O.Arg : 0;
    }
    auto T = Q->enqueue(E, O.Arg);
    co_await T;
    co_return O.Arg;
  }
  case OpCode::Deq: {
    auto T = Ring    ? Ring->dequeue(E)
             : MRing ? MRing->dequeue(E)
                     : Q->dequeue(E);
    rmc::Value V = co_await T;
    co_return V;
  }
  case OpCode::Push: {
    if (Elim) {
      auto T = Elim->push(E, O.Arg, ElimRounds);
      bool Ok = co_await T;
      co_return Ok ? O.Arg : graph::FailRaceVal;
    }
    auto T = Deq    ? Deq->push(E, O.Arg)
             : MDeq ? MDeq->push(E, O.Arg)
                    : Stk->push(E, O.Arg);
    co_await T;
    co_return O.Arg;
  }
  case OpCode::Pop: {
    if (Elim) {
      auto T = Elim->pop(E, ElimRounds);
      rmc::Value V = co_await T;
      co_return V;
    }
    auto T = Stk->pop(E);
    rmc::Value V = co_await T;
    co_return V;
  }
  case OpCode::Exchange: {
    auto T = MEx ? MEx->exchange(E, O.Arg, ExchangeAttempts)
                 : Ex->exchange(E, O.Arg, ExchangeAttempts);
    rmc::Value V = co_await T;
    co_return V;
  }
  case OpCode::Take: {
    auto T = MDeq ? MDeq->take(E) : Deq->take(E);
    rmc::Value V = co_await T;
    co_return V;
  }
  case OpCode::Steal: {
    auto T = MDeq ? MDeq->steal(E) : Deq->steal(E);
    rmc::Value V = co_await T;
    co_return V;
  }
  }
  co_return 0;
}

Verdict ContainerAdapter::verdict(
    const spec::SpecMonitor &Mon,
    const std::vector<std::vector<Observed>> &Results,
    spec::LinearizeLimits Limits) const {
  const graph::EventGraph &G = Mon.graph();
  // Structural sanity of the *recorded* graph only: derived elim-stack
  // graphs legitimately reference vanished failed-exchange ids in logical
  // views, so checkWellFormed is not run on them.
  std::string WF = G.checkWellFormed();
  if (!WF.empty())
    return Verdict::fail("WELL-FORMED", WF);

  if (L == Lib::ElimStack) {
    graph::EventGraph Derived = spec::buildElimStackGraph(
        G, Elim->baseObjId(), Elim->exchangerObjId(), DerivedEsObj);
    return checkExecution(Derived, DerivedEsObj, lib::ContainerFamily::Stack,
                          Results, Limits);
  }
  return checkExecution(G, Obj, libFamily(L), Results, Limits, libStrength(L));
}

sim::Explorer::Options check::scenarioOptions(const Scenario &S,
                                              uint64_t MaxExecutions,
                                              unsigned Workers,
                                              sim::ReductionMode Red,
                                              sim::EnginePath Engine) {
  sim::Explorer::Options O;
  O.ExploreMode = sim::Explorer::Mode::Exhaustive;
  O.MaxExecutions = MaxExecutions;
  O.PreemptionBound = S.PreemptionBound;
  O.Workers = Workers;
  O.StopOnViolation = false; // Keep summaries worker-count independent.
  O.Reduction = Red;
  O.Engine = Engine;
  return O;
}

namespace {

/// One scenario thread: runs its op list, recording observed results.
sim::Task<void> opThread(ContainerAdapter &A, std::vector<Op> Ops,
                         sim::Env &E, std::vector<Observed> &Out) {
  for (Op O : Ops) {
    auto T = A.apply(E, O);
    rmc::Value R = co_await T;
    Out.push_back({O.Code, O.Arg, R});
  }
}

/// Setup/Check pair over one RunState (shared per body instantiation).
sim::Workload::Body bodyFor(std::shared_ptr<RunState> St) {
  sim::Workload::SetupFn Setup = [St](rmc::Machine &M, sim::Scheduler &Sch) {
    // The monitor is reused across executions (reset, not reallocated), so
    // its graph vectors reach steady-state capacity once. beginExecution
    // keeps the graph intact during a copy-on-write fast-forward; the
    // engine epoch-trims it afterwards (see CowSave below).
    if (!St->Mon)
      St->Mon = std::make_unique<spec::SpecMonitor>();
    St->Mon->beginExecution(M);
    St->A = std::make_unique<ContainerAdapter>(St->S, St->Mut, M, *St->Mon);
    St->Results.assign(St->S.Threads.size(), {});
    for (size_t T = 0; T != St->S.Threads.size(); ++T) {
      sim::Env &E = Sch.newThread();
      Sch.start(E, opThread(*St->A, St->S.Threads[T], E, St->Results[T]));
    }
  };
  sim::Workload::CheckFn Check = [St](rmc::Machine &M, sim::Scheduler &,
                                      sim::Scheduler::RunResult R) {
    St->LastRun = R;
    switch (R) {
    case sim::Scheduler::RunResult::Pruned:
      // Stutter iteration cut off by Env::prune: vacuously fine.
      St->LastVerdict = Verdict{};
      return true;
    case sim::Scheduler::RunResult::SleepPruned:
      // Branch cut by the sleep/source-set reduction: everything below it
      // is equivalent to an explored sibling, so there is nothing to check.
      St->LastVerdict = Verdict{};
      return true;
    case sim::Scheduler::RunResult::RfPruned:
      // A restricted re-run whose fresh reads-from options came up empty:
      // every execution below it reads below the watermark and commutes
      // back to an explored sibling. Nothing to check.
      St->LastVerdict = Verdict{};
      return true;
    case sim::Scheduler::RunResult::Race:
      St->LastVerdict = Verdict::fail(M.faultRule(), M.raceMessage());
      return false;
    case sim::Scheduler::RunResult::Deadlock:
      St->LastVerdict =
          Verdict::fail("DEADLOCK", "execution deadlocked before all "
                                    "scenario threads finished");
      return false;
    case sim::Scheduler::RunResult::StepLimit:
      St->LastVerdict =
          Verdict::fail("STEP-LIMIT", "scheduler step budget exhausted");
      return false;
    case sim::Scheduler::RunResult::Done:
      break;
    }
    Verdict V = St->A->verdict(*St->Mon, St->Results, St->Limits);
    if (V.LinAborted) {
      ++St->LinAborts;
      if (St->SharedLinAborts)
        St->SharedLinAborts->fetch_add(1, std::memory_order_relaxed);
    }
    St->LastVerdict = V;
    return V.Ok;
  };
  sim::Workload::Body B{std::move(Setup), std::move(Check)};
  // Copy-on-write eligibility: the cross-step state outside the machine
  // and coroutine locals is the spec monitor plus the per-thread Results
  // vectors. The monitor's event graph is append-only with an undo
  // journal, so a snapshot is an O(1) epoch and a restore an O(delta)
  // trim — no deep copies; Results are small and copied wholesale (the
  // restore runs after the fast-forward, so it also overwrites the
  // partial re-pushes of replayed threads). The adapter is rebuilt by
  // Setup; the verdict fields are written only at Check time.
  struct CowState {
    spec::SpecMonitor::Epoch MonEpoch;
    std::vector<std::vector<Observed>> Results;
  };
  B.CowSave = [St](std::shared_ptr<void> &Slot) {
    if (!Slot)
      Slot = std::make_shared<CowState>();
    auto &C = *std::static_pointer_cast<CowState>(Slot);
    C.MonEpoch = St->Mon->epoch();
    C.Results = St->Results;
  };
  B.CowRestore = [St](const std::shared_ptr<void> &Slot) {
    const auto &C = *std::static_pointer_cast<CowState>(Slot);
    St->Mon->trimToEpoch(C.MonEpoch);
    St->Results = C.Results;
  };
  // Finished-thread skipping: a finished scenario thread's only client
  // effects are its Results entries (restored above) — except when the
  // library itself keeps op-time C++ state that other threads' re-run
  // steps read: the EBR wrapper's ghost retire bins and the work-stealing
  // deque's owner shadow map.
  B.CowSkipFinished = St->S.L != Lib::TreiberEbr && St->S.L != Lib::WsDeque;
  return B;
}

} // namespace

sim::Workload
check::makeWorkload(const Scenario &S, Mutation Mut,
                    sim::Explorer::Options Opts,
                    std::shared_ptr<std::atomic<uint64_t>> LinAborts) {
  return sim::Workload(Opts, [S, Mut, LinAborts]() {
    auto St = std::make_shared<RunState>();
    St->S = S;
    St->Mut = Mut;
    St->SharedLinAborts = LinAborts;
    return bodyFor(std::move(St));
  });
}

Instrumented check::makeInstrumented(const Scenario &S, Mutation Mut,
                                     sim::Explorer::Options Opts) {
  auto St = std::make_shared<RunState>();
  St->S = S;
  St->Mut = Mut;
  return {sim::Workload(Opts, bodyFor(St)), St};
}

TraceDiagnosis check::diagnoseTrace(const Scenario &S, Mutation Mut,
                                    sim::Explorer::Options Opts,
                                    const std::vector<unsigned> &Decisions) {
  Instrumented I = makeInstrumented(S, Mut, Opts);
  TraceDiagnosis D;
  D.RR = sim::replay(I.W, Decisions, &D.Executed);
  D.Run = I.State->LastRun;
  D.V = I.State->LastVerdict;
  return D;
}
