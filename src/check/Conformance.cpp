//===-- check/Conformance.cpp - Sweep + mutation-test drivers -------------===//

#include "check/Conformance.h"

#include "support/Json.h"

#include <iomanip>
#include <sstream>

using namespace compass;
using namespace compass::check;

//===----------------------------------------------------------------------===//
// Sweep
//===----------------------------------------------------------------------===//

SweepReport check::runSweep(const SweepOptions &O) {
  std::vector<Lib> Libs = O.Libs;
  if (Libs.empty())
    Libs.assign(allLibs(), allLibs() + NumLibs);

  SweepReport Rep;
  Rep.Seed = O.Seed;
  Rep.Workers = O.Workers;
  auto Mix = [&Rep](uint64_t V) {
    for (unsigned I = 0; I != 8; ++I) {
      Rep.Fp ^= (V >> (8 * I)) & 0xff;
      Rep.Fp *= 1099511628211ull;
    }
  };
  Mix(O.Seed);
  for (Lib L : Libs) {
    LibSweepStats St;
    St.L = L;
    for (unsigned I = 0; I != O.ScenariosPerLib; ++I) {
      Scenario S = generateScenario(L, scenarioSeed(O.Seed, L, I), O.Gen);
      sim::Explorer::Options Opts =
          scenarioOptions(S, O.MaxExecutionsPerScenario, O.Workers,
                          O.Reduction);
      auto LinAborts = std::make_shared<std::atomic<uint64_t>>(0);
      sim::Explorer::Summary Sum =
          sim::explore(makeWorkload(S, Mutation::None, Opts, LinAborts));
      ++St.Scenarios;
      St.Executions += Sum.Executions;
      St.Completed += Sum.Completed;
      St.Races += Sum.Races;
      St.Deadlocks += Sum.Deadlocks;
      St.Violations += Sum.Violations;
      St.SleepPruned += Sum.SleepPruned;
      St.MaxDepth = std::max(St.MaxDepth, Sum.MaxDepth);
      St.LinAborts += LinAborts->load();
      St.Truncated += !Sum.Exhausted;
      // Deterministic fingerprint: a truncated tree's explored subset is
      // worker-count dependent, so only exhausted scenarios contribute
      // their counters (see SweepReport::fingerprint).
      Mix(static_cast<uint64_t>(L));
      Mix(I);
      Mix(Sum.Exhausted);
      if (Sum.Exhausted) {
        Mix(Sum.Executions);
        Mix(Sum.Completed);
        Mix(Sum.Races);
        Mix(Sum.Deadlocks);
        Mix(Sum.Violations);
        Mix(Sum.SleepPruned);
        Mix(Sum.MaxDepth);
      }
      if (Sum.HasViolation && St.FirstBadScenario == ~0u) {
        St.FirstBadScenario = I;
        // Replay the first violation serially for a structured verdict.
        TraceDiagnosis D =
            diagnoseTrace(S, Mutation::None, scenarioOptions(S, 1, 1),
                          Sum.firstViolationDecisions());
        St.FirstBad = S.str() + " | " + D.V.str() + " | " +
                      sim::formatReplayCall(D.Executed);
      }
    }
    Rep.PerLib.push_back(std::move(St));
  }
  return Rep;
}

uint64_t SweepReport::totalViolations() const {
  uint64_t N = 0;
  for (const LibSweepStats &St : PerLib)
    N += St.Violations + St.Races + St.Deadlocks;
  return N;
}

uint64_t SweepReport::totalExecutions() const {
  uint64_t N = 0;
  for (const LibSweepStats &St : PerLib)
    N += St.Executions;
  return N;
}

std::string SweepReport::str() const {
  std::ostringstream OS;
  OS << "conformance sweep: seed=" << Seed << " workers=" << Workers << "\n";
  OS << std::left << std::setw(14) << "lib" << std::right << std::setw(6)
     << "scen" << std::setw(12) << "execs" << std::setw(10) << "slept"
     << std::setw(7) << "races" << std::setw(7) << "dlock" << std::setw(7)
     << "viols" << std::setw(9) << "linabrt" << std::setw(7) << "trunc"
     << std::setw(9) << "maxdep" << "\n";
  for (const LibSweepStats &St : PerLib) {
    OS << std::left << std::setw(14) << libName(St.L) << std::right
       << std::setw(6) << St.Scenarios << std::setw(12) << St.Executions
       << std::setw(10) << St.SleepPruned << std::setw(7) << St.Races
       << std::setw(7) << St.Deadlocks << std::setw(7) << St.Violations
       << std::setw(9) << St.LinAborts << std::setw(7) << St.Truncated
       << std::setw(9) << St.MaxDepth << "\n";
    if (!St.FirstBad.empty())
      OS << "  first violation (scenario #" << St.FirstBadScenario
         << "): " << St.FirstBad << "\n";
  }
  OS << "fingerprint: 0x" << std::hex << fingerprint() << std::dec
     << (clean() ? "  (clean)" : "  (VIOLATIONS)") << "\n";
  return OS.str();
}

std::string SweepReport::json() const {
  JsonWriter J;
  J.beginObject();
  J.field("seed", Seed);
  J.field("workers", Workers);
  J.field("violations", totalViolations());
  J.field("executions", totalExecutions());
  {
    std::ostringstream FP;
    FP << "0x" << std::hex << fingerprint();
    J.field("fingerprint", FP.str());
  }
  J.key("libs");
  J.beginArray();
  for (const LibSweepStats &St : PerLib) {
    J.beginObject();
    J.field("lib", libName(St.L));
    J.field("scenarios", St.Scenarios);
    J.field("executions", St.Executions);
    J.field("completed", St.Completed);
    J.field("races", St.Races);
    J.field("deadlocks", St.Deadlocks);
    J.field("violations", St.Violations);
    J.field("sleep_pruned", St.SleepPruned);
    J.field("lin_aborts", St.LinAborts);
    J.field("truncated", St.Truncated);
    J.field("max_depth", St.MaxDepth);
    if (!St.FirstBad.empty())
      J.field("first_bad", St.FirstBad);
    J.endObject();
  }
  J.endArray();
  J.endObject();
  return J.str();
}

//===----------------------------------------------------------------------===//
// Mutation testing
//===----------------------------------------------------------------------===//

MutantReport check::huntMutant(Mutation Mut, const MutationOptions &O) {
  MutantReport R;
  R.Mut = Mut;
  Lib L = mutationLib(Mut);
  GenOptions Gen = GenOptions::hunting();
  for (unsigned I = 0; I != O.MaxScenarios; ++I) {
    Scenario S = generateScenario(L, scenarioSeed(O.Seed, L, I), Gen);
    ++R.ScenariosTried;
    std::vector<unsigned> Trace;
    if (!scenarioFails(S, Mut, O.MaxExecutionsPerScenario, Trace,
                       O.Reduction))
      continue;
    R.Killed = true;
    R.Killer = S;
    R.KillerDecisions = Trace;
    if (O.Shrink) {
      R.Shrunk = shrinkCounterexample(S, Mut, Trace, O.Shr);
      R.Rule = R.Shrunk.V.Rule;
    } else {
      TraceDiagnosis D = diagnoseTrace(S, Mut, scenarioOptions(S, 1, 1), Trace);
      R.Rule = D.V.Rule;
    }
    break;
  }
  return R;
}

std::vector<MutantReport> check::runMutationTests(const MutationOptions &O) {
  std::vector<Mutation> Muts = O.Muts;
  if (Muts.empty())
    for (unsigned I = 1; I != NumMutations; ++I) // Skip None.
      Muts.push_back(static_cast<Mutation>(I));
  std::vector<MutantReport> Out;
  for (Mutation M : Muts)
    Out.push_back(huntMutant(M, O));
  return Out;
}

std::string MutantReport::str() const {
  std::ostringstream OS;
  OS << mutationName(Mut) << ": ";
  if (!Killed) {
    OS << "SURVIVED after " << ScenariosTried << " scenarios";
    return OS.str();
  }
  OS << "killed (scenario #" << (ScenariosTried - 1) << ", rule "
     << (Rule.empty() ? "?" : Rule) << ")";
  if (Shrunk.OpsBefore)
    OS << "; shrunk " << Shrunk.str() << "; min: " << Shrunk.Min.str();
  return OS.str();
}

CorpusEntry check::corpusEntryFor(const MutantReport &R) {
  CorpusEntry E;
  E.Mut = R.Mut;
  if (R.Shrunk.OpsBefore) { // Shrinking ran.
    E.S = R.Shrunk.Min;
    E.Decisions = R.Shrunk.Decisions;
  } else {
    E.S = R.Killer;
    E.Decisions = R.KillerDecisions;
  }
  E.Note = std::string(mutationDescription(R.Mut)) + "; rule " +
           (R.Rule.empty() ? "?" : R.Rule);
  return E;
}
