//===-- check/Conformance.cpp - Sweep + mutation-test drivers -------------===//

#include "check/Conformance.h"

#include "check/Checkpoint.h"
#include "check/Telemetry.h"
#include "support/Json.h"

#include <chrono>
#include <iomanip>
#include <limits>
#include <sstream>

using namespace compass;
using namespace compass::check;

//===----------------------------------------------------------------------===//
// Sweep
//===----------------------------------------------------------------------===//

SweepResult check::runSweepResumable(const SweepOptions &OIn,
                                     const SweepControl &C,
                                     const SweepCheckpoint *Resume) {
  SweepOptions O = OIn;
  std::vector<Lib> Libs;
  size_t Li0 = 0;
  unsigned Sc0 = 0;

  SweepResult Res;
  SweepReport &Rep = Res.Rep;

  if (Resume) {
    // The checkpoint's configuration wins (it determines the scenario
    // stream and the fingerprint); only the worker count is free.
    O.Seed = Resume->Seed;
    O.ScenariosPerLib = Resume->ScenariosPerLib;
    O.MaxExecutionsPerScenario = Resume->MaxExecutionsPerScenario;
    O.Reduction = Resume->Reduction;
    O.Engine = Resume->Engine;
    O.Gen = Resume->Gen;
    Libs = Resume->Libs;
    Li0 = Resume->LibIndex;
    Sc0 = Resume->ScenarioIndex;
    Rep.Fp = Resume->Fp;
    Rep.PerLib = Resume->DoneLibs;
  } else {
    Libs = O.Libs;
    if (Libs.empty())
      Libs.assign(allLibs(), allLibs() + NumLibs);
  }
  Rep.Seed = O.Seed;
  Rep.Workers = O.Workers;

  auto Mix = [&Rep](uint64_t V) {
    for (unsigned I = 0; I != 8; ++I) {
      Rep.Fp ^= (V >> (8 * I)) & 0xff;
      Rep.Fp *= 1099511628211ull;
    }
  };
  if (!Resume)
    Mix(O.Seed);

  auto Start = std::chrono::steady_clock::now();
  auto Elapsed = [&Start] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         Start)
        .count();
  };
  constexpr double Inf = std::numeric_limits<double>::infinity();

  // Cumulative sweep executions (completed scenarios + the in-flight
  // scenario's executed base), driving the execution-count cadence.
  uint64_t DoneExecs = 0;
  for (const LibSweepStats &St : Rep.PerLib)
    DoneExecs += St.Executions;
  uint64_t SweepExecs =
      DoneExecs + (Resume ? Resume->CurLib.Executions : 0) +
      (Resume && Resume->HasScenario ? Resume->Scenario.Partial.Executions
                                     : 0);
  uint64_t NextCkptExecs =
      C.CheckpointEveryExecs > 0 ? SweepExecs + C.CheckpointEveryExecs : 0;
  double NextCkptTime = C.CheckpointEverySec > 0 ? C.CheckpointEverySec : 0;

  auto StopAsked = [&C] {
    return C.StopRequested &&
           C.StopRequested->load(std::memory_order_relaxed);
  };
  auto BudgetSpent = [&] {
    return C.TimeBudgetSec > 0 && Elapsed() >= C.TimeBudgetSec;
  };

  auto BuildCkpt = [&](size_t Li, unsigned Sc, const LibSweepStats &St,
                       bool HasSnap, uint64_t LinBase,
                       sim::ExplorationSnapshot Snap) {
    SweepCheckpoint K;
    K.Seed = O.Seed;
    K.ScenariosPerLib = O.ScenariosPerLib;
    K.MaxExecutionsPerScenario = O.MaxExecutionsPerScenario;
    K.Reduction = O.Reduction;
    K.Engine = O.Engine;
    K.Libs = Libs;
    K.Gen = O.Gen;
    K.Fp = Rep.Fp;
    K.LibIndex = Li;
    K.ScenarioIndex = Sc;
    K.DoneLibs = Rep.PerLib;
    K.CurLib = St;
    K.HasScenario = HasSnap;
    K.ScenarioLinAborts = LinBase;
    K.Scenario = std::move(Snap);
    return K;
  };

  auto Progress = [&](const LibSweepStats &St) {
    SweepProgress P;
    for (const LibSweepStats &D : Rep.PerLib) {
      P.Scenarios += D.Scenarios;
      P.Executions += D.Executions;
      P.Completed += D.Completed;
      P.Races += D.Races;
      P.Deadlocks += D.Deadlocks;
      P.Violations += D.Violations;
      P.SleepPruned += D.SleepPruned;
      P.RfPruned += D.RfPruned;
      P.SourcePruned += D.SourcePruned;
      P.CacheHits += D.CacheHits;
    }
    P.Scenarios += St.Scenarios;
    P.Executions += St.Executions;
    P.Completed += St.Completed;
    P.Races += St.Races;
    P.Deadlocks += St.Deadlocks;
    P.Violations += St.Violations;
    P.SleepPruned += St.SleepPruned;
    P.RfPruned += St.RfPruned;
    P.SourcePruned += St.SourcePruned;
    P.CacheHits += St.CacheHits;
    return P;
  };

  for (size_t Li = Li0; Li != Libs.size(); ++Li) {
    Lib L = Libs[Li];
    LibSweepStats St;
    St.L = L;
    unsigned IBegin = 0;
    if (Resume && Li == Li0) {
      St = Resume->CurLib;
      IBegin = Sc0;
    }
    for (unsigned I = IBegin; I != O.ScenariosPerLib; ++I) {
      Scenario S = generateScenario(L, scenarioSeed(O.Seed, L, I), O.Gen);
      sim::Explorer::Options Opts =
          scenarioOptions(S, O.MaxExecutionsPerScenario, O.Workers,
                          O.Reduction, O.Engine);

      // Explore the scenario, possibly across several interrupted
      // segments (cadence checkpoints resume in-process; a stop request
      // or spent time budget returns the final checkpoint).
      sim::ExplorationSnapshot Snap;
      bool HaveSnap = false;
      uint64_t LinBase = 0;
      if (Resume && Li == Li0 && I == Sc0 && Resume->HasScenario) {
        Snap = Resume->Scenario;
        HaveSnap = true;
        LinBase = Resume->ScenarioLinAborts;
      }
      sim::Explorer::Summary Sum;
      for (;;) {
        auto LinAborts = std::make_shared<std::atomic<uint64_t>>(0);
        sim::Workload W = makeWorkload(S, Mutation::None, Opts, LinAborts);

        sim::ExploreControl Ec;
        Ec.StopRequested = C.StopRequested;
        uint64_t Base = HaveSnap ? Snap.Partial.Executions : 0;
        if (NextCkptExecs > 0)
          Ec.InterruptAtExecs =
              Base + (NextCkptExecs > SweepExecs ? NextCkptExecs - SweepExecs
                                                 : 0);
        double Deadline = Inf;
        if (C.TimeBudgetSec > 0)
          Deadline = std::min(Deadline, C.TimeBudgetSec - Elapsed());
        if (C.CheckpointEverySec > 0)
          Deadline = std::min(Deadline, NextCkptTime - Elapsed());
        if (Deadline != Inf)
          Ec.DeadlineSec = std::max(Deadline, 1e-3);
        SweepProgress SwP = Progress(St);
        if (C.Telem) {
          Ec.HeartbeatIntervalSec = C.HeartbeatIntervalSec;
          Ec.OnHeartbeat = [&C, L, I,
                            &SwP](const sim::ExploreHeartbeat &Hb) {
            C.Telem->heartbeat(libName(L), I, Hb, SwP);
          };
        }

        sim::ExploreResult ER =
            sim::exploreResumable(W, Ec, HaveSnap ? &Snap : nullptr);
        LinBase += LinAborts->load();
        SweepExecs = DoneExecs + St.Executions + ER.Sum.Executions;
        if (!ER.Interrupted) {
          Sum = std::move(ER.Sum);
          break;
        }
        Snap = std::move(ER.Snapshot);
        HaveSnap = true;
        if (StopAsked() || BudgetSpent()) {
          Res.Interrupted = true;
          Res.Ckpt = BuildCkpt(Li, I, St, true, LinBase, std::move(Snap));
          return Res;
        }
        // Cadence checkpoint: hand out a copy and keep exploring.
        if (NextCkptExecs > 0 && SweepExecs >= NextCkptExecs)
          NextCkptExecs = SweepExecs + C.CheckpointEveryExecs;
        if (C.CheckpointEverySec > 0 && Elapsed() >= NextCkptTime)
          NextCkptTime = Elapsed() + C.CheckpointEverySec;
        if (C.OnCheckpoint)
          C.OnCheckpoint(BuildCkpt(Li, I, St, true, LinBase, Snap));
      }

      ++St.Scenarios;
      St.Executions += Sum.Executions;
      St.Completed += Sum.Completed;
      St.Races += Sum.Races;
      St.Deadlocks += Sum.Deadlocks;
      St.Violations += Sum.Violations;
      St.SleepPruned += Sum.SleepPruned;
      St.RfPruned += Sum.RfPruned;
      St.SourcePruned += Sum.SourcePruned;
      St.CacheHits += Sum.CacheHits;
      St.MaxDepth = std::max(St.MaxDepth, Sum.MaxDepth);
      St.LinAborts += LinBase;
      St.Truncated += !Sum.Exhausted;
      SweepExecs = DoneExecs + St.Executions;
      // Deterministic fingerprint: a truncated tree's explored subset is
      // worker-count dependent, so only exhausted scenarios contribute
      // their counters (see SweepReport::fingerprint).
      Mix(static_cast<uint64_t>(L));
      Mix(I);
      Mix(Sum.Exhausted);
      if (Sum.Exhausted) {
        Mix(Sum.Executions);
        Mix(Sum.Completed);
        Mix(Sum.Races);
        Mix(Sum.Deadlocks);
        Mix(Sum.Violations);
        Mix(Sum.SleepPruned);
        Mix(Sum.RfPruned);
        Mix(Sum.SourcePruned);
        Mix(Sum.CacheHits);
        Mix(Sum.MaxDepth);
      }
      if (Sum.HasViolation && St.FirstBadScenario == ~0u) {
        St.FirstBadScenario = I;
        // Replay the first violation serially for a structured verdict.
        TraceDiagnosis D =
            diagnoseTrace(S, Mutation::None, scenarioOptions(S, 1, 1),
                          Sum.firstViolationDecisions());
        St.FirstBad = S.str() + " | " + D.V.str() + " | " +
                      sim::formatReplayCall(D.Executed);
        if (C.Telem)
          C.Telem->violation(libName(L), I, S.str(), D.V.str(), D.Executed);
      }

      // Scenario-boundary interrupt / cadence checks (catch stop requests
      // and thresholds crossed by the just-finished scenario).
      bool Boundary = I + 1 != O.ScenariosPerLib || Li + 1 != Libs.size();
      if (Boundary && (StopAsked() || BudgetSpent())) {
        Res.Interrupted = true;
        Res.Ckpt = BuildCkpt(Li, I + 1, St, false, 0,
                             sim::ExplorationSnapshot{});
        return Res;
      }
      bool CkptDue = false;
      if (NextCkptExecs > 0 && SweepExecs >= NextCkptExecs) {
        NextCkptExecs = SweepExecs + C.CheckpointEveryExecs;
        CkptDue = true;
      }
      if (C.CheckpointEverySec > 0 && Elapsed() >= NextCkptTime) {
        NextCkptTime = Elapsed() + C.CheckpointEverySec;
        CkptDue = true;
      }
      if (Boundary && CkptDue && C.OnCheckpoint)
        C.OnCheckpoint(BuildCkpt(Li, I + 1, St, false, 0,
                                 sim::ExplorationSnapshot{}));
    }
    DoneExecs += St.Executions;
    Rep.PerLib.push_back(std::move(St));
  }
  return Res;
}

SweepReport check::runSweep(const SweepOptions &O) {
  return runSweepResumable(O, SweepControl{}, nullptr).Rep;
}

uint64_t SweepReport::totalViolations() const {
  uint64_t N = 0;
  for (const LibSweepStats &St : PerLib)
    N += St.Violations + St.Races + St.Deadlocks;
  return N;
}

uint64_t SweepReport::totalExecutions() const {
  uint64_t N = 0;
  for (const LibSweepStats &St : PerLib)
    N += St.Executions;
  return N;
}

std::string SweepReport::str() const {
  std::ostringstream OS;
  OS << "conformance sweep: seed=" << Seed << " workers=" << Workers << "\n";
  OS << std::left << std::setw(14) << "lib" << std::right << std::setw(6)
     << "scen" << std::setw(12) << "execs" << std::setw(10) << "slept"
     << std::setw(7) << "races" << std::setw(7) << "dlock" << std::setw(7)
     << "viols" << std::setw(9) << "linabrt" << std::setw(7) << "trunc"
     << std::setw(9) << "maxdep" << "\n";
  for (const LibSweepStats &St : PerLib) {
    OS << std::left << std::setw(14) << libName(St.L) << std::right
       << std::setw(6) << St.Scenarios << std::setw(12) << St.Executions
       << std::setw(10) << St.SleepPruned << std::setw(7) << St.Races
       << std::setw(7) << St.Deadlocks << std::setw(7) << St.Violations
       << std::setw(9) << St.LinAborts << std::setw(7) << St.Truncated
       << std::setw(9) << St.MaxDepth << "\n";
    if (!St.FirstBad.empty())
      OS << "  first violation (scenario #" << St.FirstBadScenario
         << "): " << St.FirstBad << "\n";
  }
  OS << "fingerprint: 0x" << std::hex << fingerprint() << std::dec
     << (clean() ? "  (clean)" : "  (VIOLATIONS)") << "\n";
  return OS.str();
}

std::string SweepReport::json() const {
  JsonWriter J;
  J.beginObject();
  J.field("seed", Seed);
  J.field("workers", Workers);
  J.field("violations", totalViolations());
  J.field("executions", totalExecutions());
  {
    std::ostringstream FP;
    FP << "0x" << std::hex << fingerprint();
    J.field("fingerprint", FP.str());
  }
  J.key("libs");
  J.beginArray();
  for (const LibSweepStats &St : PerLib) {
    J.beginObject();
    J.field("lib", libName(St.L));
    J.field("scenarios", St.Scenarios);
    J.field("executions", St.Executions);
    J.field("completed", St.Completed);
    J.field("races", St.Races);
    J.field("deadlocks", St.Deadlocks);
    J.field("violations", St.Violations);
    J.field("sleep_pruned", St.SleepPruned);
    J.field("rf_pruned", St.RfPruned);
    J.field("source_pruned", St.SourcePruned);
    J.field("cache_hits", St.CacheHits);
    J.field("lin_aborts", St.LinAborts);
    J.field("truncated", St.Truncated);
    J.field("max_depth", St.MaxDepth);
    if (!St.FirstBad.empty())
      J.field("first_bad", St.FirstBad);
    J.endObject();
  }
  J.endArray();
  J.endObject();
  return J.str();
}

//===----------------------------------------------------------------------===//
// Mutation testing
//===----------------------------------------------------------------------===//

MutantReport check::huntMutant(Mutation Mut, const MutationOptions &O) {
  MutantReport R;
  R.Mut = Mut;
  Lib L = mutationLib(Mut);
  GenOptions Gen = GenOptions::hunting();
  for (unsigned I = 0; I != O.MaxScenarios; ++I) {
    Scenario S = generateScenario(L, scenarioSeed(O.Seed, L, I), Gen);
    ++R.ScenariosTried;
    std::vector<unsigned> Trace;
    if (!scenarioFails(S, Mut, O.MaxExecutionsPerScenario, Trace,
                       O.Reduction))
      continue;
    R.Killed = true;
    R.Killer = S;
    R.KillerDecisions = Trace;
    if (O.Shrink) {
      R.Shrunk = shrinkCounterexample(S, Mut, Trace, O.Shr);
      R.Rule = R.Shrunk.V.Rule;
    } else {
      TraceDiagnosis D = diagnoseTrace(S, Mut, scenarioOptions(S, 1, 1), Trace);
      R.Rule = D.V.Rule;
    }
    break;
  }
  return R;
}

std::vector<MutantReport> check::runMutationTests(const MutationOptions &O) {
  std::vector<Mutation> Muts = O.Muts;
  if (Muts.empty())
    for (unsigned I = 1; I != NumMutations; ++I) // Skip None.
      Muts.push_back(static_cast<Mutation>(I));
  std::vector<MutantReport> Out;
  for (Mutation M : Muts)
    Out.push_back(huntMutant(M, O));
  return Out;
}

std::string MutantReport::str() const {
  std::ostringstream OS;
  OS << mutationName(Mut) << ": ";
  if (!Killed) {
    OS << "SURVIVED after " << ScenariosTried << " scenarios";
    return OS.str();
  }
  OS << "killed (scenario #" << (ScenariosTried - 1) << ", rule "
     << (Rule.empty() ? "?" : Rule) << ")";
  if (Shrunk.OpsBefore)
    OS << "; shrunk " << Shrunk.str() << "; min: " << Shrunk.Min.str();
  return OS.str();
}

CorpusEntry check::corpusEntryFor(const MutantReport &R) {
  CorpusEntry E;
  E.Mut = R.Mut;
  if (R.Shrunk.OpsBefore) { // Shrinking ran.
    E.S = R.Shrunk.Min;
    E.Decisions = R.Shrunk.Decisions;
  } else {
    E.S = R.Killer;
    E.Decisions = R.KillerDecisions;
  }
  E.Note = std::string(mutationDescription(R.Mut)) + "; rule " +
           (R.Rule.empty() ? "?" : R.Rule);
  return E;
}
