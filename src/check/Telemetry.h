//===-- check/Telemetry.h - Structured JSONL run telemetry ------*- C++ -*-===//
//
// Part of compass-cxx. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structured telemetry for long conformance runs (DESIGN.md Section 9):
/// one JSON object per line, appended to a file and flushed per record, so
/// an interrupted or killed run leaves a readable stream. Consumed by
/// scripts/telemetry_report.py.
///
/// Record kinds (every record carries "ts" — wall-clock epoch seconds —
/// and "elapsed" — seconds since the sink was opened):
///
///  * run_start   — sweep configuration (seed, workers, per_lib, libs,
///                  reduction, resumed flag + resumed base executions).
///  * heartbeat   — periodic progress of the in-flight scenario: library,
///                  scenario index, executions + execs/sec, shared-queue
///                  length, busy workers, donation count, per-worker
///                  {execs, donated, frontier, depth}, and the cumulative
///                  sweep verdict counters (executions, completed, races,
///                  deadlocks, violations, sleep_pruned, scenarios).
///  * violation   — a scenario whose exploration found a property
///                  violation: library, scenario index + description,
///                  verdict rule, and the replayable decision trace.
///  * checkpoint  — a checkpoint file was written: path, reason
///                  ("cadence", "signal", "time_budget"), executions.
///  * run_end     — final fingerprint, totals, interrupted flag.
///
//===----------------------------------------------------------------------===//

#ifndef COMPASS_CHECK_TELEMETRY_H
#define COMPASS_CHECK_TELEMETRY_H

#include "check/Conformance.h"
#include "sim/ParallelExplorer.h"

#include <chrono>
#include <fstream>
#include <mutex>
#include <string>
#include <vector>

namespace compass::check {

/// Cumulative sweep counters carried by heartbeat records.
struct SweepProgress {
  unsigned Scenarios = 0; ///< Completed scenarios so far.
  uint64_t Executions = 0;
  uint64_t Completed = 0;
  uint64_t Races = 0;
  uint64_t Deadlocks = 0;
  uint64_t Violations = 0;
  uint64_t SleepPruned = 0;
  uint64_t RfPruned = 0;
  uint64_t SourcePruned = 0;
  uint64_t CacheHits = 0;
};

/// Append-only JSONL sink; see file comment. Thread-safe (heartbeats
/// arrive from the exploration coordinator thread).
class Telemetry {
public:
  /// Opens \p Path for appending. ok() is false when the file could not
  /// be opened; records are then dropped silently.
  explicit Telemetry(const std::string &Path);

  bool ok() const { return static_cast<bool>(Out); }
  const std::string &path() const { return Path; }

  void runStart(const SweepOptions &O, const std::vector<Lib> &Libs,
                bool Resumed, uint64_t BaseExecutions);

  void heartbeat(const char *LibName, unsigned ScenarioIndex,
                 const sim::ExploreHeartbeat &Hb, const SweepProgress &Sweep);

  void violation(const char *LibName, unsigned ScenarioIndex,
                 const std::string &ScenarioStr, const std::string &Verdict,
                 const std::vector<unsigned> &Replay);

  void checkpoint(const std::string &CkptPath, const char *Reason,
                  uint64_t Executions);

  void runEnd(const SweepReport &Rep, bool Interrupted);

private:
  /// Appends one completed record line and flushes.
  void emit(const std::string &Body);
  double elapsed() const;

  std::string Path;
  std::ofstream Out;
  std::mutex Mu;
  std::chrono::steady_clock::time_point Start;
};

} // namespace compass::check

#endif // COMPASS_CHECK_TELEMETRY_H
