//===-- check/Telemetry.cpp - Structured JSONL run telemetry --------------===//

#include "check/Telemetry.h"

#include "support/Json.h"

#include <iomanip>
#include <sstream>

using namespace compass;
using namespace compass::check;

Telemetry::Telemetry(const std::string &P)
    : Path(P), Out(P, std::ios::app),
      Start(std::chrono::steady_clock::now()) {}

double Telemetry::elapsed() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

void Telemetry::emit(const std::string &Body) {
  std::lock_guard<std::mutex> L(Mu);
  if (!Out)
    return;
  Out << Body << '\n';
  Out.flush();
}

namespace {

/// Opens a record with the common envelope; callers add fields and call
/// endObject().
JsonWriter openRecord(const char *Kind, double Elapsed) {
  double Ts = std::chrono::duration<double>(
                  std::chrono::system_clock::now().time_since_epoch())
                  .count();
  JsonWriter J;
  J.beginObject();
  J.field("ts", Ts);
  J.field("elapsed", Elapsed);
  J.field("kind", Kind);
  return J;
}

} // namespace

void Telemetry::runStart(const SweepOptions &O, const std::vector<Lib> &Libs,
                         bool Resumed, uint64_t BaseExecutions) {
  JsonWriter J = openRecord("run_start", elapsed());
  J.field("seed", O.Seed);
  J.field("workers", O.Workers);
  J.field("per_lib", O.ScenariosPerLib);
  J.field("max_execs_per_scenario", O.MaxExecutionsPerScenario);
  J.field("reduction", sim::reductionModeName(O.Reduction));
  J.field("engine", sim::enginePathName(O.Engine));
  J.key("libs");
  J.beginArray();
  for (Lib L : Libs)
    J.value(libName(L));
  J.endArray();
  J.field("resumed", Resumed);
  J.field("base_executions", BaseExecutions);
  J.endObject();
  emit(J.str());
}

void Telemetry::heartbeat(const char *LibName, unsigned ScenarioIndex,
                          const sim::ExploreHeartbeat &Hb,
                          const SweepProgress &Sweep) {
  JsonWriter J = openRecord("heartbeat", elapsed());
  J.field("lib", LibName);
  J.field("scenario", ScenarioIndex);
  J.field("scenario_execs", Hb.Executions);
  J.field("execs_per_sec", Hb.ExecsPerSec);
  J.field("queue", Hb.QueueSize);
  J.field("busy", Hb.BusyWorkers);
  J.field("workers", Hb.Workers);
  J.field("donations", Hb.Donations);
  J.key("per_worker");
  J.beginArray();
  for (const sim::ExploreHeartbeat::WorkerSample &W : Hb.PerWorker) {
    J.beginObject();
    J.field("execs", W.Execs);
    J.field("donated", W.Donated);
    J.field("frontier", W.Frontier);
    J.field("depth", W.Depth);
    J.endObject();
  }
  J.endArray();
  J.key("sweep");
  J.beginObject();
  J.field("scenarios", Sweep.Scenarios);
  J.field("executions", Sweep.Executions);
  J.field("completed", Sweep.Completed);
  J.field("races", Sweep.Races);
  J.field("deadlocks", Sweep.Deadlocks);
  J.field("violations", Sweep.Violations);
  J.field("sleep_pruned", Sweep.SleepPruned);
  J.field("rf_pruned", Sweep.RfPruned);
  J.field("source_pruned", Sweep.SourcePruned);
  J.field("cache_hits", Sweep.CacheHits);
  J.endObject();
  J.endObject();
  emit(J.str());
}

void Telemetry::violation(const char *LibName, unsigned ScenarioIndex,
                          const std::string &ScenarioStr,
                          const std::string &Verdict,
                          const std::vector<unsigned> &Replay) {
  JsonWriter J = openRecord("violation", elapsed());
  J.field("lib", LibName);
  J.field("scenario", ScenarioIndex);
  J.field("scenario_str", ScenarioStr);
  J.field("verdict", Verdict);
  J.key("replay");
  J.beginArray();
  for (unsigned D : Replay)
    J.value(D);
  J.endArray();
  J.endObject();
  emit(J.str());
}

void Telemetry::checkpoint(const std::string &CkptPath, const char *Reason,
                           uint64_t Executions) {
  JsonWriter J = openRecord("checkpoint", elapsed());
  J.field("path", CkptPath);
  J.field("reason", Reason);
  J.field("executions", Executions);
  J.endObject();
  emit(J.str());
}

void Telemetry::runEnd(const SweepReport &Rep, bool Interrupted) {
  JsonWriter J = openRecord("run_end", elapsed());
  {
    std::ostringstream FP;
    FP << "0x" << std::hex << Rep.fingerprint();
    J.field("fingerprint", FP.str());
  }
  J.field("executions", Rep.totalExecutions());
  J.field("violations", Rep.totalViolations());
  J.field("interrupted", Interrupted);
  J.endObject();
  emit(J.str());
}
