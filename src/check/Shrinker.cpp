//===-- check/Shrinker.cpp - Counterexample minimization ------------------===//

#include "check/Shrinker.h"

#include <map>
#include <sstream>

using namespace compass;
using namespace compass::check;

bool check::scenarioFails(const Scenario &S, Mutation Mut,
                          uint64_t MaxExecutions,
                          std::vector<unsigned> &FailingOut,
                          sim::ReductionMode Red) {
  sim::Explorer::Options Opts = scenarioOptions(S, MaxExecutions, 1, Red);
  Opts.StopOnViolation = true; // Hunting, not counting.
  sim::Explorer::Summary Sum = exploreSerial(makeWorkload(S, Mut, Opts));
  if (!Sum.HasViolation)
    return false;
  FailingOut = Sum.firstViolationDecisions();
  return true;
}

namespace {

/// Renumbers producer/exchange payloads to 1,2,3,... in first-appearance
/// order; true when anything changed.
bool renumberValues(Scenario &S) {
  std::map<rmc::Value, rmc::Value> Map;
  bool Changed = false;
  for (auto &T : S.Threads)
    for (Op &O : T) {
      if (O.Code != OpCode::Enq && O.Code != OpCode::Push &&
          O.Code != OpCode::Exchange)
        continue;
      auto It = Map.find(O.Arg);
      if (It == Map.end())
        It = Map.emplace(O.Arg, static_cast<rmc::Value>(Map.size() + 1)).first;
      if (O.Arg != It->second) {
        O.Arg = It->second;
        Changed = true;
      }
    }
  return Changed;
}

struct ShrinkContext {
  Mutation Mut;
  const ShrinkOptions &O;
  uint64_t Tried = 0;

  bool budget() const { return Tried < O.MaxCandidates; }

  /// Explores \p Cand; on failure-found, commits it to \p Cur / \p Trace.
  bool accept(const Scenario &Cand, Scenario &Cur,
              std::vector<unsigned> &Trace) {
    ++Tried;
    std::vector<unsigned> T;
    if (!scenarioFails(Cand, Mut, O.MaxExecutionsPerCandidate, T))
      return false;
    Cur = Cand;
    Trace = std::move(T);
    return true;
  }

  /// Applies the first single-step reduction (drop a thread, then drop an
  /// op) that still fails; false when none does or the budget ran out.
  bool reduceOnce(Scenario &Cur, std::vector<unsigned> &Trace) {
    if (Cur.Threads.size() > 1)
      for (size_t T = 0; T != Cur.Threads.size() && budget(); ++T) {
        Scenario Cand = Cur;
        Cand.Threads.erase(Cand.Threads.begin() + T);
        if (Cand.numOps() && accept(Cand, Cur, Trace))
          return true;
      }
    for (size_t T = 0; T != Cur.Threads.size(); ++T)
      for (size_t I = 0; I != Cur.Threads[T].size(); ++I) {
        if (!budget())
          return false;
        Scenario Cand = Cur;
        Cand.Threads[T].erase(Cand.Threads[T].begin() + I);
        if (Cand.Threads[T].empty())
          Cand.Threads.erase(Cand.Threads.begin() + T);
        if (Cand.numOps() && accept(Cand, Cur, Trace))
          return true;
      }
    return false;
  }
};

} // namespace

ShrinkResult check::shrinkCounterexample(const Scenario &S, Mutation Mut,
                                         const std::vector<unsigned> &Decisions,
                                         const ShrinkOptions &O) {
  ShrinkResult R;
  R.OpsBefore = S.numOps();
  R.DecisionsBefore = Decisions.size();

  ShrinkContext Ctx{Mut, O};
  Scenario Cur = S;
  std::vector<unsigned> Trace = Decisions;

  // Passes 1-2: structural reduction to a fixpoint.
  while (Ctx.budget() && Ctx.reduceOnce(Cur, Trace))
    ;

  // Pass 3: payload renumbering (kept only if the candidate still fails).
  {
    Scenario Cand = Cur;
    if (renumberValues(Cand) && Ctx.budget())
      Ctx.accept(Cand, Cur, Trace);
  }

  // Pass 4: canonicalize the trace, then find the shortest failing prefix
  // (missing decisions replay as alternative 0). The winning prefix's tail
  // is then padded back from its recorded execution — zeroing every
  // decision the prefix left implicit — so the final trace both has a
  // canonical all-zero tail and replays divergence-free (the corpus
  // contract, tests/CorpusTest.cpp).
  sim::Explorer::Options ROpts =
      scenarioOptions(Cur, O.MaxExecutionsPerCandidate, 1);
  TraceDiagnosis Full = diagnoseTrace(Cur, Mut, ROpts, Trace);
  if (Full.failing())
    Trace = Full.Executed;
  TraceDiagnosis Best = Full;
  for (size_t Len = 0; Len < Trace.size(); ++Len) {
    std::vector<unsigned> Prefix(Trace.begin(), Trace.begin() + Len);
    TraceDiagnosis D = diagnoseTrace(Cur, Mut, ROpts, Prefix);
    ++Ctx.Tried;
    if (D.failing()) {
      Best = std::move(D);
      Trace = Best.Executed;
      break;
    }
  }

  R.Min = std::move(Cur);
  R.Decisions = std::move(Trace);
  R.V = Best.V;
  R.OpsAfter = R.Min.numOps();
  R.DecisionsAfter = R.Decisions.size();
  R.CandidatesTried = Ctx.Tried;
  return R;
}

std::string ShrinkResult::str() const {
  std::ostringstream OS;
  OS << "ops " << OpsBefore << " -> " << OpsAfter << ", decisions "
     << DecisionsBefore << " -> " << DecisionsAfter << " ("
     << CandidatesTried << " candidates)";
  return OS.str();
}
