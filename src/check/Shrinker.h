//===-- check/Shrinker.h - Counterexample minimization ----------*- C++ -*-===//
//
// Part of compass-cxx. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Delta-debugging for the conformance harness: given a scenario that
/// fails against a (mutated) library, greedily shrink it to a smallest
/// still-failing reproduction. The passes, each validated by a fresh
/// bounded exploration of the candidate (not a replay — the decision tree
/// changes shape whenever the program does):
///
///  1. drop whole threads;
///  2. drop single operations;
///  3. renumber producer payloads to 1,2,3,... (first-appearance order);
///  4. canonicalize + truncate the decision trace: replay the final
///     scenario's failing trace once to canonicalize it, then repeatedly
///     drop trailing decisions while the truncated trace (with alternative
///     0 filled in past the end) still fails on replay.
///
/// The result carries before/after sizes so callers (and tests) can assert
/// the shrink made actual progress.
///
//===----------------------------------------------------------------------===//

#ifndef COMPASS_CHECK_SHRINKER_H
#define COMPASS_CHECK_SHRINKER_H

#include "check/Harness.h"

namespace compass::check {

struct ShrinkOptions {
  /// Exploration budget per candidate scenario (StopOnViolation is on, so
  /// most failing candidates stop much earlier).
  uint64_t MaxExecutionsPerCandidate = 50000;
  /// Give up after this many candidate explorations.
  uint64_t MaxCandidates = 500;
};

struct ShrinkResult {
  Scenario Min;                    ///< Smallest still-failing scenario.
  std::vector<unsigned> Decisions; ///< Minimal failing replay input for Min.
  Verdict V;                       ///< Verdict of the final failing replay.
  unsigned OpsBefore = 0, OpsAfter = 0;
  size_t DecisionsBefore = 0, DecisionsAfter = 0;
  uint64_t CandidatesTried = 0;

  bool reducedOps() const { return OpsAfter < OpsBefore; }
  bool reducedDecisions() const { return DecisionsAfter < DecisionsBefore; }

  /// `ops 6 -> 3, decisions 41 -> 17`.
  std::string str() const;
};

/// True when exploring \p S against \p Mut finds a violating execution
/// within \p MaxExecutions; on success \p FailingOut receives the first
/// violation's decision trace. \p Red picks the state-space reduction used
/// for the hunt; the trace handed back replays fine under every mode,
/// because sim::replay never enables reduction — and a source-set
/// restricted choice set is a *prefix* of the unrestricted newest-first
/// enumeration, so a restricted run's recorded indices mean the same
/// thing reduction-free.
bool scenarioFails(const Scenario &S, Mutation Mut, uint64_t MaxExecutions,
                   std::vector<unsigned> &FailingOut,
                   sim::ReductionMode Red = sim::ReductionMode::SourceSet);

/// Shrinks \p S (known to fail against \p Mut via \p Decisions) per the
/// file comment. The returned scenario and trace are guaranteed to still
/// fail: the final replay's verdict is in ShrinkResult::V.
ShrinkResult shrinkCounterexample(const Scenario &S, Mutation Mut,
                                  const std::vector<unsigned> &Decisions,
                                  const ShrinkOptions &O = {});

} // namespace compass::check

#endif // COMPASS_CHECK_SHRINKER_H
