//===-- check/Checkpoint.cpp - Resumable conformance sweeps ---------------===//
//
// Text grammar (version "compass sweep-checkpoint v1"; one record per
// line, space-separated fields; free-form strings are %-escaped into
// single tokens, "%" standing in for the empty string):
//
//   compass sweep-checkpoint v1
//   config <Seed> <ScenariosPerLib> <MaxExecsPerScenario>
//          <none|sleep|source> <auto|root>
//   gen <MinThreads> <MaxThreads> <MinOps> <MaxOps> <MinPre> <MaxPre>
//   libs <N>
//   lib <name>                                          (N lines)
//   progress <Fp> <LibIndex> <ScenarioIndex> <NDone> <HasScenario>
//            <ScenarioLinAborts>
//   stat <lib> <Scenarios> <Executions> <Completed> <Races> <Deadlocks>
//        <Violations> <SleepPruned> <RfPruned> <SourcePruned> <CacheHits>
//        <MaxDepth> <LinAborts> <Truncated>
//        <FirstBadScenario> <FirstBad>        (NDone lines, then CurLib)
//
// The config line records the reduction mode and engine path the executed
// share ran under; resuming under a different one would splice
// incompatible exploration states (the caller enforces the match — see
// compass_check sweep --resume).
//   snapshot v1 ... end snapshot              (iff HasScenario; the
//                                              embedded sim grammar)
//   end sweep-checkpoint
//
//===----------------------------------------------------------------------===//

#include "check/Checkpoint.h"

#include <cstdio>
#include <sstream>

using namespace compass;
using namespace compass::check;

namespace {

/// %-escapes \p S into one whitespace-free token ("%" = empty string).
std::string encodeToken(const std::string &S) {
  if (S.empty())
    return "%";
  std::string Out;
  Out.reserve(S.size());
  for (unsigned char C : S) {
    if (C > 0x20 && C < 0x7f && C != '%') {
      Out += static_cast<char>(C);
    } else {
      char Buf[4];
      std::snprintf(Buf, sizeof(Buf), "%%%02X", C);
      Out += Buf;
    }
  }
  return Out;
}

bool decodeToken(const std::string &T, std::string &Out) {
  Out.clear();
  if (T == "%")
    return true;
  for (size_t I = 0; I < T.size();) {
    if (T[I] != '%') {
      Out += T[I++];
      continue;
    }
    if (I + 2 >= T.size())
      return false;
    auto Hex = [](char C) -> int {
      if (C >= '0' && C <= '9')
        return C - '0';
      if (C >= 'A' && C <= 'F')
        return C - 'A' + 10;
      if (C >= 'a' && C <= 'f')
        return C - 'a' + 10;
      return -1;
    };
    int Hi = Hex(T[I + 1]), Lo = Hex(T[I + 2]);
    if (Hi < 0 || Lo < 0)
      return false;
    Out += static_cast<char>(Hi * 16 + Lo);
    I += 3;
  }
  return true;
}

/// Line cursor over the serialized text that can hand the unconsumed
/// remainder to the embedded snapshot parser.
struct Cursor {
  std::string_view Text;
  size_t Pos = 0;
  size_t LineNo = 0;
  std::string Line;
  std::string Err;

  explicit Cursor(std::string_view T) : Text(T) {}

  bool next() {
    while (Pos < Text.size()) {
      size_t E = Text.find('\n', Pos);
      std::string_view L = (E == std::string_view::npos)
                               ? Text.substr(Pos)
                               : Text.substr(Pos, E - Pos);
      Pos = (E == std::string_view::npos) ? Text.size() : E + 1;
      ++LineNo;
      if (!L.empty() && L.back() == '\r')
        L.remove_suffix(1);
      if (!L.empty()) {
        Line.assign(L);
        return true;
      }
    }
    Err = "unexpected end of checkpoint";
    return false;
  }

  bool fail(const std::string &Msg) {
    Err = "line " + std::to_string(LineNo) + ": " + Msg +
          (Line.empty() ? "" : " (got: " + Line + ")");
    return false;
  }

  std::string_view rest() const { return Text.substr(Pos); }
};

/// Splits one line into keyword + fields.
struct Fields {
  std::istringstream In;
  explicit Fields(const std::string &Line) : In(Line) {}

  bool word(std::string &Out) { return static_cast<bool>(In >> Out); }

  template <typename T> bool num(T &Out) {
    uint64_t V = 0;
    if (!(In >> V))
      return false;
    Out = static_cast<T>(V);
    return static_cast<uint64_t>(Out) == V;
  }

  bool flag(bool &Out) {
    unsigned V = 0;
    if (!(In >> V) || V > 1)
      return false;
    Out = V != 0;
    return true;
  }
};

bool expectKeyword(Cursor &C, const char *Kw, Fields &F) {
  std::string W;
  if (!F.word(W) || W != Kw)
    return C.fail(std::string("expected '") + Kw + "'");
  return true;
}

void writeStat(std::ostringstream &OS, const LibSweepStats &St) {
  OS << "stat " << libName(St.L) << ' ' << St.Scenarios << ' '
     << St.Executions << ' ' << St.Completed << ' ' << St.Races << ' '
     << St.Deadlocks << ' ' << St.Violations << ' ' << St.SleepPruned << ' '
     << St.RfPruned << ' ' << St.SourcePruned << ' ' << St.CacheHits << ' '
     << St.MaxDepth << ' ' << St.LinAborts << ' ' << St.Truncated << ' '
     << St.FirstBadScenario << ' ' << encodeToken(St.FirstBad) << '\n';
}

bool parseStat(Cursor &C, LibSweepStats &St) {
  if (!C.next())
    return false;
  Fields F(C.Line);
  if (!expectKeyword(C, "stat", F))
    return false;
  std::string Name, Enc;
  if (!F.word(Name) || !parseLib(Name, St.L))
    return C.fail("bad library in stat record");
  if (!F.num(St.Scenarios) || !F.num(St.Executions) || !F.num(St.Completed) ||
      !F.num(St.Races) || !F.num(St.Deadlocks) || !F.num(St.Violations) ||
      !F.num(St.SleepPruned) || !F.num(St.RfPruned) ||
      !F.num(St.SourcePruned) || !F.num(St.CacheHits) ||
      !F.num(St.MaxDepth) || !F.num(St.LinAborts) ||
      !F.num(St.Truncated) || !F.num(St.FirstBadScenario) || !F.word(Enc) ||
      !decodeToken(Enc, St.FirstBad))
    return C.fail("malformed stat record");
  return true;
}

} // namespace

std::string check::serializeSweepCheckpoint(const SweepCheckpoint &C) {
  std::ostringstream OS;
  OS << "compass sweep-checkpoint v1\n";
  OS << "config " << C.Seed << ' ' << C.ScenariosPerLib << ' '
     << C.MaxExecutionsPerScenario << ' '
     << sim::reductionModeName(C.Reduction) << ' '
     << sim::enginePathName(C.Engine) << '\n';
  OS << "gen " << C.Gen.MinThreads << ' ' << C.Gen.MaxThreads << ' '
     << C.Gen.MinOpsPerThread << ' ' << C.Gen.MaxOpsPerThread << ' '
     << C.Gen.MinPreemptions << ' ' << C.Gen.MaxPreemptions << '\n';
  OS << "libs " << C.Libs.size() << '\n';
  for (Lib L : C.Libs)
    OS << "lib " << libName(L) << '\n';
  OS << "progress " << C.Fp << ' ' << C.LibIndex << ' ' << C.ScenarioIndex
     << ' ' << C.DoneLibs.size() << ' ' << unsigned(C.HasScenario) << ' '
     << C.ScenarioLinAborts << '\n';
  for (const LibSweepStats &St : C.DoneLibs)
    writeStat(OS, St);
  writeStat(OS, C.CurLib);
  if (C.HasScenario)
    OS << sim::serializeSnapshot(C.Scenario);
  OS << "end sweep-checkpoint\n";
  return OS.str();
}

bool check::parseSweepCheckpoint(std::string_view Text, SweepCheckpoint &Out,
                                 std::string &Err) {
  Out = SweepCheckpoint{};
  Cursor C(Text);
  auto Done = [&](bool Ok) {
    if (!Ok)
      Err = C.Err;
    return Ok;
  };

  if (!C.next())
    return Done(false);
  if (C.Line != "compass sweep-checkpoint v1")
    return Done(C.fail("unsupported checkpoint header "
                       "(want 'compass sweep-checkpoint v1')"));

  if (!C.next())
    return Done(false);
  {
    Fields F(C.Line);
    std::string Red, Eng;
    if (!expectKeyword(C, "config", F) || !F.num(Out.Seed) ||
        !F.num(Out.ScenariosPerLib) || !F.num(Out.MaxExecutionsPerScenario) ||
        !F.word(Red) || !F.word(Eng))
      return Done(C.fail("malformed config record"));
    if (!sim::parseReductionMode(Red, Out.Reduction))
      return Done(C.fail("unknown reduction '" + Red + "'"));
    if (!sim::parseEnginePath(Eng, Out.Engine))
      return Done(C.fail("unknown engine path '" + Eng + "'"));
  }

  if (!C.next())
    return Done(false);
  {
    Fields F(C.Line);
    if (!expectKeyword(C, "gen", F) || !F.num(Out.Gen.MinThreads) ||
        !F.num(Out.Gen.MaxThreads) || !F.num(Out.Gen.MinOpsPerThread) ||
        !F.num(Out.Gen.MaxOpsPerThread) || !F.num(Out.Gen.MinPreemptions) ||
        !F.num(Out.Gen.MaxPreemptions))
      return Done(C.fail("malformed gen record"));
  }

  uint64_t NLibs = 0;
  if (!C.next())
    return Done(false);
  {
    Fields F(C.Line);
    if (!expectKeyword(C, "libs", F) || !F.num(NLibs) || NLibs == 0)
      return Done(C.fail("malformed libs record"));
  }
  for (uint64_t I = 0; I != NLibs; ++I) {
    if (!C.next())
      return Done(false);
    Fields F(C.Line);
    std::string Name;
    Lib L;
    if (!expectKeyword(C, "lib", F) || !F.word(Name) || !parseLib(Name, L))
      return Done(C.fail("malformed lib record"));
    Out.Libs.push_back(L);
  }

  uint64_t NDone = 0;
  if (!C.next())
    return Done(false);
  {
    Fields F(C.Line);
    if (!expectKeyword(C, "progress", F) || !F.num(Out.Fp) ||
        !F.num(Out.LibIndex) || !F.num(Out.ScenarioIndex) || !F.num(NDone) ||
        !F.flag(Out.HasScenario) || !F.num(Out.ScenarioLinAborts))
      return Done(C.fail("malformed progress record"));
  }
  if (Out.LibIndex >= Out.Libs.size())
    return Done(C.fail("library position beyond library list"));
  if (Out.ScenarioIndex > Out.ScenariosPerLib)
    return Done(C.fail("scenario position beyond per-lib count"));
  if (NDone != Out.LibIndex)
    return Done(C.fail("completed-library count does not match position"));

  for (uint64_t I = 0; I != NDone; ++I) {
    LibSweepStats St;
    if (!parseStat(C, St))
      return Done(false);
    Out.DoneLibs.push_back(std::move(St));
  }
  if (!parseStat(C, Out.CurLib))
    return Done(false);
  if (Out.CurLib.L != Out.Libs[Out.LibIndex])
    return Done(C.fail("current-library stat does not match position"));

  if (Out.HasScenario) {
    // The embedded snapshot starts at the next line; its parser validates
    // its own header/footer and ignores our trailing records.
    if (!sim::parseSnapshot(C.rest(), Out.Scenario, Err)) {
      Err = "embedded snapshot: " + Err;
      return false;
    }
    // Skip past the embedded block in our cursor.
    for (;;) {
      if (!C.next())
        return Done(false);
      if (C.Line == "end snapshot")
        break;
    }
  }

  if (!C.next())
    return Done(false);
  if (C.Line != "end sweep-checkpoint")
    return Done(C.fail("expected 'end sweep-checkpoint'"));
  return true;
}
