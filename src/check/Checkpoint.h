//===-- check/Checkpoint.h - Resumable conformance sweeps -------*- C++ -*-===//
//
// Part of compass-cxx. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Crash-resilient checkpoint/resume for the conformance sweep (DESIGN.md
/// Section 9). A SweepCheckpoint freezes an in-flight runSweep at a
/// scenario-segment boundary:
///
///  * the full sweep configuration (seed, bounds, libraries, reduction) so
///    a resumed run regenerates the identical scenario stream — only the
///    worker count may change between segments;
///  * the deterministic progress so far: the FNV fingerprint accumulator,
///    per-library aggregates, and the position (library, scenario) of the
///    next unit of work;
///  * when the interrupt landed mid-scenario, the embedded
///    sim::ExplorationSnapshot of that scenario's unexplored frontier plus
///    its executed partial core and linearization-abort count.
///
/// Because the exploration snapshot's frontier partitions the scenario's
/// decision tree and every fingerprint contribution is a function of
/// complete scenario summaries, finishing a checkpoint — at any worker
/// count, interrupted any number of times — produces the bit-identical
/// SweepReport fingerprint of an uninterrupted run.
///
/// runSweepResumable drives the machinery: cooperative interruption from a
/// signal flag, a wall-clock time budget, and periodic checkpoint cadences
/// (by executions or seconds; cadence checkpoints are written via callback
/// and the sweep continues in-process). serializeSweepCheckpoint /
/// parseSweepCheckpoint give checkpoints a versioned line-oriented text
/// form ("compass sweep-checkpoint v1") embedding the snapshot grammar of
/// sim/Checkpoint.cpp.
///
//===----------------------------------------------------------------------===//

#ifndef COMPASS_CHECK_CHECKPOINT_H
#define COMPASS_CHECK_CHECKPOINT_H

#include "check/Conformance.h"
#include "sim/Checkpoint.h"

#include <atomic>
#include <functional>
#include <string>
#include <string_view>

namespace compass::check {

class Telemetry;

/// The resumable state of one interrupted conformance sweep; see file
/// comment. Produced by runSweepResumable, persisted with
/// serializeSweepCheckpoint.
struct SweepCheckpoint {
  // -- Configuration (restored on resume; Workers free to change) -------
  uint64_t Seed = 1;
  unsigned ScenariosPerLib = 50;
  uint64_t MaxExecutionsPerScenario = 200000;
  sim::ReductionMode Reduction = sim::ReductionMode::SourceSet;
  /// Engine path the sweep ran under. Recorded (like Reduction) so a
  /// resume cannot silently continue under a different configuration than
  /// the one that produced the executed share.
  sim::EnginePath Engine = sim::EnginePath::Auto;
  std::vector<Lib> Libs; ///< Resolved library list (never empty).
  GenOptions Gen;

  // -- Progress ---------------------------------------------------------
  uint64_t Fp = 0;            ///< SweepReport fingerprint accumulator.
  size_t LibIndex = 0;        ///< Position: current library in Libs.
  unsigned ScenarioIndex = 0; ///< Position: current scenario in LibIndex.
  std::vector<LibSweepStats> DoneLibs; ///< Completed libraries, in order.
  LibSweepStats CurLib; ///< Partial aggregate of Libs[LibIndex].

  // -- In-flight scenario (when the interrupt landed mid-exploration) ---
  bool HasScenario = false;
  uint64_t ScenarioLinAborts = 0; ///< Lin aborts of the executed share.
  sim::ExplorationSnapshot Scenario;
};

/// Serializes \p C in a versioned line-oriented text format (grammar in
/// Checkpoint.cpp; embeds sim::serializeSnapshot output).
std::string serializeSweepCheckpoint(const SweepCheckpoint &C);

/// Parses serializeSweepCheckpoint output. On failure returns false and
/// sets \p Err; \p Out is left in an unspecified state.
bool parseSweepCheckpoint(std::string_view Text, SweepCheckpoint &Out,
                          std::string &Err);

/// External control over a resumable sweep. Default-constructed =
/// uninterruptible (plain runSweep behavior).
struct SweepControl {
  /// Cooperative interrupt, typically set from a SIGINT/SIGTERM handler.
  /// Once true, the in-flight scenario drains into a checkpoint and
  /// runSweepResumable returns with Interrupted set.
  const std::atomic<bool> *StopRequested = nullptr;

  /// >0: graceful cutoff — checkpoint and return once this much wall time
  /// (seconds) has elapsed.
  double TimeBudgetSec = 0;

  /// >0: invoke OnCheckpoint roughly every N sweep executions; the sweep
  /// then continues in-process. Approximate trip points, exact state.
  uint64_t CheckpointEveryExecs = 0;

  /// >0: invoke OnCheckpoint roughly every interval (seconds).
  double CheckpointEverySec = 0;

  /// Cadence sink (required for the cadences to be useful; the *final*
  /// state of an interrupted run is returned in SweepResult::Ckpt, not
  /// passed here).
  std::function<void(const SweepCheckpoint &)> OnCheckpoint;

  /// Optional JSONL telemetry sink (heartbeats + violation records).
  Telemetry *Telem = nullptr;
  double HeartbeatIntervalSec = 1.0;
};

/// Result of one (possibly interrupted) sweep run.
struct SweepResult {
  SweepReport Rep;         ///< Final report; meaningful when !Interrupted.
  bool Interrupted = false;
  SweepCheckpoint Ckpt;    ///< Resumable state; valid when Interrupted.
};

/// runSweep with cooperative interruption and resume. Pass \p Resume to
/// continue a previous checkpoint (its configuration wins over \p O except
/// for Workers). The completed report's fingerprint is bit-identical to an
/// uninterrupted runSweep(O) at any worker count and any interrupt/resume
/// segmentation.
SweepResult runSweepResumable(const SweepOptions &O, const SweepControl &C,
                              const SweepCheckpoint *Resume = nullptr);

} // namespace compass::check

#endif // COMPASS_CHECK_CHECKPOINT_H
