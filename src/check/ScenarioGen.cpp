//===-- check/ScenarioGen.cpp - Seeded scenario sampling -------------------===//

#include "check/ScenarioGen.h"

#include "support/Rng.h"

#include <algorithm>

using namespace compass;
using namespace compass::check;

uint64_t check::scenarioSeed(uint64_t SweepSeed, Lib L, unsigned Index) {
  // Mix sweep seed, library, and index through SplitMix64 so per-scenario
  // streams are independent; +1 keeps a 0 sweep seed from collapsing.
  uint64_t State = SweepSeed + 1;
  splitMix64(State);
  State ^= (static_cast<uint64_t>(L) + 1) * 0x9e3779b97f4a7c15ull;
  splitMix64(State);
  State ^= (static_cast<uint64_t>(Index) + 1) * 0xbf58476d1ce4e5b9ull;
  return splitMix64(State);
}

namespace {

/// Emits a fresh producer value: distinct small integers 1, 2, 3, ...
struct ValuePool {
  rmc::Value Next = 1;
  rmc::Value fresh() { return Next++; }
};

void genQueueLike(Scenario &S, Rng &R, const GenOptions &O, bool Stack) {
  ValuePool Vals;
  unsigned Threads =
      static_cast<unsigned>(R.range(O.MinThreads, O.MaxThreads));
  S.Threads.resize(Threads);
  unsigned Producers = 0;
  for (auto &T : S.Threads) {
    unsigned Ops =
        static_cast<unsigned>(R.range(O.MinOpsPerThread, O.MaxOpsPerThread));
    for (unsigned I = 0; I != Ops; ++I) {
      if (R.chance(1, 2)) {
        T.push_back({Stack ? OpCode::Push : OpCode::Enq, Vals.fresh()});
        ++Producers;
      } else {
        T.push_back({Stack ? OpCode::Pop : OpCode::Deq, 0});
      }
    }
  }
  // A scenario with no producer exercises only empty paths; promote the
  // first op so most scenarios move data.
  if (Producers == 0)
    S.Threads[0][0] = {Stack ? OpCode::Push : OpCode::Enq, Vals.fresh()};
  // HwQueue capacity bounds lifetime enqueues.
  S.Capacity = S.numOps() + 1;
}

void genExchanger(Scenario &S, Rng &R, const GenOptions &O) {
  ValuePool Vals;
  unsigned Threads =
      static_cast<unsigned>(R.range(O.MinThreads, O.MaxThreads));
  S.Threads.resize(Threads);
  for (auto &T : S.Threads) {
    unsigned Ops = static_cast<unsigned>(
        R.range(std::min(O.MinOpsPerThread, 2u), 2)); // Keep rounds small.
    if (Ops == 0)
      Ops = 1;
    for (unsigned I = 0; I != Ops; ++I)
      T.push_back({OpCode::Exchange, Vals.fresh()});
  }
}

void genSpscRing(Scenario &S, Rng &R, const GenOptions &O) {
  ValuePool Vals;
  S.Threads.resize(2); // Thread 0 produces, thread 1 consumes.
  unsigned Enqs =
      static_cast<unsigned>(R.range(O.MinOpsPerThread, O.MaxOpsPerThread));
  unsigned Deqs =
      static_cast<unsigned>(R.range(O.MinOpsPerThread, O.MaxOpsPerThread));
  for (unsigned I = 0; I != Enqs; ++I)
    S.Threads[0].push_back({OpCode::Enq, Vals.fresh()});
  for (unsigned I = 0; I != Deqs; ++I)
    S.Threads[1].push_back({OpCode::Deq, 0});
  S.Capacity = static_cast<unsigned>(R.range(1, 3));
}

void genWsDeque(Scenario &S, Rng &R, const GenOptions &O) {
  ValuePool Vals;
  unsigned Thieves = static_cast<unsigned>(
      R.range(std::max(1u, O.MinThreads - 1), std::max(1u, O.MaxThreads - 1)));
  S.Threads.resize(1 + Thieves);
  unsigned Pushes = 0;
  if (R.chance(1, 2)) {
    // Phased owner: all pushes, then takes — the classic usage pattern,
    // and the shape where take's fence against concurrent steals matters
    // (a take over a multi-element deque whose top moved underneath it).
    Pushes =
        static_cast<unsigned>(R.range(1, std::max(2u, O.MaxOpsPerThread - 1)));
    unsigned Takes =
        static_cast<unsigned>(R.range(1, std::max(1u, O.MaxOpsPerThread - 1)));
    for (unsigned I = 0; I != Pushes; ++I)
      S.Threads[0].push_back({OpCode::Push, Vals.fresh()});
    for (unsigned I = 0; I != Takes; ++I)
      S.Threads[0].push_back({OpCode::Take, 0});
  } else {
    // Mixed owner: random push/take interleaving.
    unsigned OwnerOps =
        static_cast<unsigned>(R.range(O.MinOpsPerThread, O.MaxOpsPerThread));
    for (unsigned I = 0; I != OwnerOps; ++I) {
      if (R.chance(3, 5)) {
        S.Threads[0].push_back({OpCode::Push, Vals.fresh()});
        ++Pushes;
      } else {
        S.Threads[0].push_back({OpCode::Take, 0});
      }
    }
    if (Pushes == 0) {
      S.Threads[0].insert(S.Threads[0].begin(), {OpCode::Push, Vals.fresh()});
      ++Pushes;
    }
  }
  for (unsigned T = 1; T != S.Threads.size(); ++T) {
    unsigned Steals = static_cast<unsigned>(
        R.range(1, std::max(1u, O.MaxOpsPerThread - 1)));
    for (unsigned I = 0; I != Steals; ++I)
      S.Threads[T].push_back({OpCode::Steal, 0});
  }
  S.Capacity = Pushes + 1;
}

} // namespace

Scenario check::generateScenario(Lib L, uint64_t Seed, const GenOptions &O) {
  Rng R(Seed);
  Scenario S;
  S.L = L;
  S.Seed = Seed;
  S.PreemptionBound =
      static_cast<unsigned>(R.range(O.MinPreemptions, O.MaxPreemptions));
  switch (L) {
  case Lib::MsQueue:
  case Lib::HwQueue:
    genQueueLike(S, R, O, /*Stack=*/false);
    break;
  case Lib::TreiberStack:
  case Lib::ElimStack:
  case Lib::TreiberEbr:
    genQueueLike(S, R, O, /*Stack=*/true);
    break;
  case Lib::Exchanger:
    genExchanger(S, R, O);
    break;
  case Lib::SpscRing:
    genSpscRing(S, R, O);
    break;
  case Lib::WsDeque:
    genWsDeque(S, R, O);
    break;
  }
  return S;
}
