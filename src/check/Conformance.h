//===-- check/Conformance.h - Sweep + mutation-test drivers -----*- C++ -*-===//
//
// Part of compass-cxx. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The two top-level conformance campaigns (DESIGN.md §7), shared by the
/// compass_check CLI, tests/ConformanceTest.cpp, and bench_conformance:
///
///  * runSweep — explore N generated scenarios per library against the
///    *pristine* implementations; every execution's event graph must be
///    explained by the reference model. The report's deterministic
///    fingerprint is worker-count independent (StopOnViolation stays off),
///    which tests/ParallelTest.cpp checks across 1/2/4 workers.
///
///  * runMutationTests — for each seeded Mutation, hunt generated
///    scenarios until one kills the mutant (exploration finds a violating
///    execution), then shrink the counterexample. A surviving mutant
///    means the oracle has a blind spot, and fails the campaign.
///
//===----------------------------------------------------------------------===//

#ifndef COMPASS_CHECK_CONFORMANCE_H
#define COMPASS_CHECK_CONFORMANCE_H

#include "check/ScenarioGen.h"
#include "check/Shrinker.h"

namespace compass::check {

//===----------------------------------------------------------------------===//
// Pristine-library sweep
//===----------------------------------------------------------------------===//

struct SweepOptions {
  uint64_t Seed = 1;
  unsigned ScenariosPerLib = 50;
  unsigned Workers = 1;
  uint64_t MaxExecutionsPerScenario = 200000;
  std::vector<Lib> Libs; ///< Empty = all libraries.
  GenOptions Gen;
  /// State-space reduction used per scenario (None = unreduced baseline;
  /// changes the fingerprint, since exhausted scenarios then fold
  /// different execution counts). Source sets are the default: the
  /// strongest reduction with identical verdicts (DESIGN.md §12).
  sim::ReductionMode Reduction = sim::ReductionMode::SourceSet;
  /// Execution engine path per scenario. Functionally invisible (summaries
  /// are bit-identical across paths), but recorded in checkpoints so a
  /// resume cannot silently flip the engine under a comparison run.
  sim::EnginePath Engine = sim::EnginePath::Auto;
};

/// Deterministic per-library aggregate (sum of Summary cores).
struct LibSweepStats {
  Lib L = Lib::MsQueue;
  unsigned Scenarios = 0;
  uint64_t Executions = 0;
  uint64_t Completed = 0;
  uint64_t Races = 0;
  uint64_t Deadlocks = 0;
  uint64_t Violations = 0;
  uint64_t SleepPruned = 0; ///< Branches cut by the sleep/source reduction.
  uint64_t RfPruned = 0;    ///< Restricted re-runs with no fresh reads-from
                            ///< options (source-set mode).
  uint64_t SourcePruned = 0; ///< Covered sched siblings skipped without an
                             ///< execution (source-set mode).
  uint64_t CacheHits = 0; ///< Reads-from duplicate subtrees skipped without
                          ///< an execution (source-set mode).
  uint64_t MaxDepth = 0; ///< Max over the library's scenarios.
  uint64_t LinAborts = 0; ///< Executions whose witness search hit budget.
  unsigned Truncated = 0; ///< Scenarios whose tree hit the execution cap.
  unsigned FirstBadScenario = ~0u; ///< Generator index; ~0u when clean.
  std::string FirstBad; ///< Scenario + verdict of the first violation.
};

struct SweepReport {
  uint64_t Seed = 0;
  unsigned Workers = 1;
  std::vector<LibSweepStats> PerLib;

  uint64_t totalViolations() const;
  uint64_t totalExecutions() const;
  bool clean() const { return totalViolations() == 0; }

  /// FNV-1a folded per scenario during the sweep: every scenario mixes in
  /// its library, index, and exhaustion flag; scenarios whose decision
  /// tree was *exhausted* additionally mix their full Summary core
  /// (executions, completed, races, deadlocks, violations, max depth). A
  /// truncated tree's DFS subset depends on the worker count, so its
  /// counters are deliberately left out. Equal across worker counts for a
  /// fixed seed, provided the budget is not within the parallel explorer's
  /// overshoot margin of a tree's exact size.
  uint64_t fingerprint() const { return Fp; }
  uint64_t Fp = 1469598103934665603ull; ///< Written by runSweep.

  std::string str() const;  ///< Human-readable table.
  std::string json() const; ///< Single JSON object.
};

SweepReport runSweep(const SweepOptions &O);

//===----------------------------------------------------------------------===//
// Mutation testing
//===----------------------------------------------------------------------===//

struct MutationOptions {
  uint64_t Seed = 1;
  unsigned MaxScenarios = 200; ///< Hunt budget per mutant.
  uint64_t MaxExecutionsPerScenario = 100000;
  bool Shrink = true;
  ShrinkOptions Shr;
  std::vector<Mutation> Muts; ///< Empty = all mutations (excluding None).
  /// State-space reduction used while hunting (replay/shrink verification
  /// of the final counterexample always runs unreduced).
  sim::ReductionMode Reduction = sim::ReductionMode::SourceSet;
};

struct MutantReport {
  Mutation Mut = Mutation::None;
  bool Killed = false;
  unsigned ScenariosTried = 0;
  Scenario Killer; ///< First failing scenario (pre-shrink).
  std::vector<unsigned> KillerDecisions;
  ShrinkResult Shrunk; ///< Valid when Killed and shrinking was on.
  std::string Rule;    ///< Verdict rule of the final failing replay.

  std::string str() const;
};

/// Hunts one mutant; see file comment.
MutantReport huntMutant(Mutation Mut, const MutationOptions &O);

/// Runs every requested mutation; order follows MutationOptions::Muts.
std::vector<MutantReport> runMutationTests(const MutationOptions &O);

/// A corpus entry (scenario + decisions + provenance note) for a killed
/// mutant's shrunk counterexample, ready for tests/corpus/.
CorpusEntry corpusEntryFor(const MutantReport &R);

} // namespace compass::check

#endif // COMPASS_CHECK_CONFORMANCE_H
