//===-- check/RefModel.cpp - Sequential reference oracles ------------------===//

#include "check/RefModel.h"

#include "spec/Consistency.h"

#include <sstream>

using namespace compass;
using namespace compass::check;
using namespace compass::graph;

namespace {

bool isProducerKind(OpKind K) {
  return K == OpKind::Enq || K == OpKind::Push;
}

bool isConsumerKind(OpKind K) {
  return K == OpKind::DeqOk || K == OpKind::PopOk || K == OpKind::Steal;
}

/// Step 1: injectivity prescan. The axiom checkers (and
/// EventGraph::matchOfProducer) assume at most one match per event;
/// duplication mutants violate exactly that, so report it first.
Verdict injPrescan(const EventGraph &G, unsigned ObjId) {
  std::vector<EventId> Evs = G.objectEvents(ObjId);
  for (EventId E : Evs) {
    const Event &Ev = G.event(E);
    if (isProducerKind(Ev.Kind)) {
      std::vector<EventId> Succ = G.soSuccessors(E);
      unsigned Consumers = 0;
      for (EventId S : Succ)
        if (G.event(S).ObjId == ObjId && isConsumerKind(G.event(S).Kind))
          ++Consumers;
      if (Consumers > 1) {
        std::ostringstream OS;
        OS << "producer " << Ev.str(E) << " consumed " << Consumers
           << " times:";
        for (EventId S : Succ)
          OS << ' ' << G.event(S).str(S);
        return Verdict::fail("INJ", OS.str());
      }
    }
    if (isConsumerKind(Ev.Kind)) {
      unsigned Producers = 0;
      for (EventId P : G.soPredecessors(E))
        if (G.event(P).ObjId == ObjId && isProducerKind(G.event(P).Kind))
          ++Producers;
      if (Producers > 1)
        return Verdict::fail("INJ", "consumer " + Ev.str(E) +
                                        " matched to multiple producers");
    }
  }
  return {};
}

/// Independent sequential oracle used to re-validate linearization
/// witnesses (step 4): a deque of values interpreted per SeqSpec, written
/// without reference to the search in spec/Linearization.cpp.
struct SeqOracle {
  spec::SeqSpec Spec;
  std::vector<rmc::Value> State; ///< Index 0 = FIFO head / steal end.

  explicit SeqOracle(spec::SeqSpec Spec) : Spec(Spec) {}

  std::string stateStr() const {
    std::ostringstream OS;
    OS << '[';
    for (size_t I = 0; I != State.size(); ++I)
      OS << (I ? "," : "") << State[I];
    OS << ']';
    return OS.str();
  }

  /// Applies \p E; false (with \p Why set) when the event is not legal in
  /// the current state.
  bool apply(const Event &E, std::string &Why) {
    auto Illegal = [&](const char *What) {
      Why = std::string(What) + " at state " + stateStr();
      return false;
    };
    switch (E.Kind) {
    case OpKind::Enq:
      if (Spec != spec::SeqSpec::Queue)
        return Illegal("Enq against non-queue oracle");
      State.push_back(E.V1);
      return true;
    case OpKind::Push:
      if (Spec == spec::SeqSpec::Queue)
        return Illegal("Push against queue oracle");
      State.push_back(E.V1);
      return true;
    case OpKind::DeqOk:
      if (Spec != spec::SeqSpec::Queue || State.empty() ||
          State.front() != E.V1)
        return Illegal("DeqOk of non-head value");
      State.erase(State.begin());
      return true;
    case OpKind::PopOk:
      if (Spec == spec::SeqSpec::Queue || State.empty() ||
          State.back() != E.V1)
        return Illegal("PopOk of non-top value");
      State.pop_back();
      return true;
    case OpKind::Steal:
      if (Spec != spec::SeqSpec::WsDeque || State.empty() ||
          State.front() != E.V1)
        return Illegal("Steal of non-top value");
      State.erase(State.begin());
      return true;
    case OpKind::DeqEmpty:
      if (Spec != spec::SeqSpec::Queue || !State.empty())
        return Illegal("DeqEmpty at non-empty state");
      return true;
    case OpKind::PopEmpty:
      if (Spec == spec::SeqSpec::Queue || !State.empty())
        return Illegal("PopEmpty at non-empty state");
      return true;
    case OpKind::StealEmpty:
      if (Spec != spec::SeqSpec::WsDeque || !State.empty())
        return Illegal("StealEmpty at non-empty state");
      return true;
    default:
      return Illegal("foreign event kind");
    }
  }
};

/// Steps 3-4: witness search plus independent oracle replay.
Verdict checkWitness(const EventGraph &G, unsigned ObjId,
                     spec::SeqSpec Spec, spec::LinearizeLimits Limits,
                     Verdict &Out) {
  spec::LinearizationResult R =
      spec::findLinearization(G, ObjId, Spec, Limits);
  Out.LinStates = R.StatesExplored;
  Out.LinAborted = R.Aborted;
  if (R.Aborted)
    return {}; // Unknown: budget ran out; the driver counts these.
  if (!R.Found) {
    std::ostringstream OS;
    OS << "no total order ⊇ lhb is explained by the sequential spec ("
       << R.StatesExplored << " states searched); history:";
    for (EventId E : G.objectEvents(ObjId))
      OS << ' ' << G.event(E).str(E);
    return Verdict::fail("WITNESS", OS.str());
  }
  // Re-validate the witness against the independent oracle.
  SeqOracle O(Spec);
  for (size_t I = 0; I != R.Order.size(); ++I) {
    std::string Why;
    if (!O.apply(G.event(R.Order[I]), Why)) {
      std::ostringstream OS;
      OS << "witness step " << I << " (" << G.event(R.Order[I]).str(R.Order[I])
         << ") rejected by reference oracle: " << Why;
      return Verdict::fail("ORACLE", OS.str());
    }
  }
  if (R.Order.size() != G.objectEvents(ObjId).size())
    return Verdict::fail("ORACLE", "witness is not a permutation of the "
                                   "object's history");
  return {};
}

/// The expected committed event for one observed op, or "skip" when the op
/// legitimately committed nothing.
struct Expect {
  bool Skip = false;
  OpKind Kind = OpKind::Invalid;
  rmc::Value V1 = 0;
  bool CheckV2 = false;
  rmc::Value V2 = 0;
};

Expect expectFor(const Observed &O, lib::ContainerFamily F) {
  Expect X;
  switch (O.Code) {
  case OpCode::Enq:
    if (O.Result == 0) { // SpscRing tryEnqueue found the ring full.
      X.Skip = true;
      return X;
    }
    X.Kind = OpKind::Enq;
    X.V1 = O.Arg;
    return X;
  case OpCode::Push:
    if (O.Result == FailRaceVal) { // ElimStack rounds exhausted.
      X.Skip = true;
      return X;
    }
    X.Kind = OpKind::Push;
    X.V1 = O.Arg;
    return X;
  case OpCode::Deq:
    X.Kind = O.Result == EmptyVal ? OpKind::DeqEmpty : OpKind::DeqOk;
    X.V1 = O.Result;
    return X;
  case OpCode::Pop:
  case OpCode::Take:
    if (O.Result == FailRaceVal) {
      X.Skip = true;
      return X;
    }
    X.Kind = O.Result == EmptyVal ? OpKind::PopEmpty : OpKind::PopOk;
    X.V1 = O.Result;
    return X;
  case OpCode::Steal:
    if (O.Result == FailRaceVal) {
      X.Skip = true;
      return X;
    }
    X.Kind = O.Result == EmptyVal ? OpKind::StealEmpty : OpKind::Steal;
    X.V1 = O.Result;
    return X;
  case OpCode::Exchange:
    X.Kind = OpKind::Exchange;
    X.V1 = O.Arg;
    X.CheckV2 = true;
    X.V2 = O.Result; // BottomVal on failure.
    return X;
  }
  (void)F;
  X.Skip = true;
  return X;
}

/// Step 5: per-thread observed results vs committed events in program
/// order. Catches mutants whose graphs are consistent but whose return
/// values lie (e.g. ExchangerEchoValue).
Verdict obsCheck(const EventGraph &G, unsigned ObjId,
                 const std::vector<std::vector<Observed>> &PerThread) {
  // Events per thread, commit order (== program order within a thread).
  std::vector<std::vector<EventId>> ByThread(PerThread.size());
  for (EventId E : G.objectEvents(ObjId)) {
    unsigned T = G.event(E).Thread;
    if (T < ByThread.size())
      ByThread[T].push_back(E);
  }
  for (unsigned T = 0; T != PerThread.size(); ++T) {
    size_t Pos = 0;
    for (size_t I = 0; I != PerThread[T].size(); ++I) {
      const Observed &O = PerThread[T][I];
      Expect X = expectFor(O, lib::ContainerFamily::Queue);
      if (X.Skip)
        continue;
      if (Pos >= ByThread[T].size()) {
        std::ostringstream OS;
        OS << "thread " << T << " op #" << I << " (" << opCodeName(O.Code)
           << " -> " << O.Result
           << ") has no committed event (expected " << opKindName(X.Kind)
           << ")";
        return Verdict::fail("OBS", OS.str());
      }
      const Event &Ev = G.event(ByThread[T][Pos]);
      ++Pos;
      bool KindOk = Ev.Kind == X.Kind;
      bool V1Ok = !KindOk || Ev.Kind == OpKind::DeqEmpty ||
                  Ev.Kind == OpKind::PopEmpty ||
                  Ev.Kind == OpKind::StealEmpty || Ev.V1 == X.V1;
      bool V2Ok = !X.CheckV2 || Ev.V2 == X.V2;
      if (!KindOk || !V1Ok || !V2Ok) {
        std::ostringstream OS;
        OS << "thread " << T << " op #" << I << " (" << opCodeName(O.Code);
        if (O.Arg)
          OS << ':' << O.Arg;
        OS << ") observed result " << O.Result
           << " but committed event is " << Ev.str(ByThread[T][Pos - 1]);
        return Verdict::fail("OBS", OS.str());
      }
    }
    if (Pos != ByThread[T].size()) {
      std::ostringstream OS;
      OS << "thread " << T << " committed " << ByThread[T].size()
         << " events for " << Pos << " observed-op expectations";
      return Verdict::fail("OBS", OS.str());
    }
  }
  return {};
}

} // namespace

Verdict check::checkExecution(
    const EventGraph &G, unsigned ObjId, lib::ContainerFamily Family,
    const std::vector<std::vector<Observed>> &PerThread,
    spec::LinearizeLimits Limits, SpecStrength Strength) {
  Verdict Out;

  // Exchangers: pairing axioms + OBS; no linearization spec.
  if (Family == lib::ContainerFamily::Exchanger) {
    spec::CheckResult C = spec::checkExchangerConsistent(G, ObjId);
    if (!C.ok())
      return Verdict::fail("CONSISTENCY", C.str());
    return obsCheck(G, ObjId, PerThread);
  }

  Verdict V = injPrescan(G, ObjId);
  if (!V.Ok)
    return V;

  spec::CheckResult C;
  spec::SeqSpec Spec;
  switch (Family) {
  case lib::ContainerFamily::Queue:
  case lib::ContainerFamily::SpscRing:
    C = spec::checkQueueConsistent(G, ObjId);
    Spec = spec::SeqSpec::Queue;
    break;
  case lib::ContainerFamily::Stack:
    C = spec::checkStackConsistent(G, ObjId);
    Spec = spec::SeqSpec::Stack;
    break;
  case lib::ContainerFamily::WsDeque:
    C = spec::checkWsDequeConsistent(G, ObjId);
    Spec = spec::SeqSpec::WsDeque;
    break;
  default:
    return Verdict::fail("INTERNAL", "unhandled family");
  }
  if (!C.ok())
    return Verdict::fail("CONSISTENCY", C.str());

  // Steps 3-4 only at LAT_hist_hb strength: an HbOnly library (the relaxed
  // HW queue) is *specified* to admit witness-less executions (§3.2).
  if (Strength == SpecStrength::Linearizable) {
    V = checkWitness(G, ObjId, Spec, Limits, Out);
    if (!V.Ok) {
      V.LinStates = Out.LinStates;
      V.LinAborted = Out.LinAborted;
      return V;
    }
  }

  V = obsCheck(G, ObjId, PerThread);
  V.LinStates = Out.LinStates;
  V.LinAborted = Out.LinAborted;
  return V;
}
