//===-- check/RefModel.h - Sequential reference oracles ---------*- C++ -*-===//
//
// Part of compass-cxx. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The reference side of the conformance harness: given one execution's
/// recorded event graph and the per-thread observed results, decide whether
/// the execution is explained by the library's sequential specification.
/// The pipeline per execution (DESIGN.md §7):
///
///  1. INJ prescan — duplicated/multi-matched so edges are reported before
///     any axiom checker runs (those assume injectivity);
///  2. graph consistency — the Yacovet-style axioms of spec/Consistency.h;
///  3. linearization witness — spec::findLinearization searches for a total
///     order `to ⊇ lhb` interpretable by the sequential spec (the paper's
///     LAT_hist_hb reduction, §3.3), under a state budget. Run only for
///     libraries *specified* at that strength (libStrength): the relaxed
///     Herlihy-Wing queue is checked at LAT_hb only, since the paper's
///     §3.2 separation means a witness need not exist for it;
///  4. oracle replay — the witness is re-executed against an *independent*
///     sequential oracle (FIFO queue / LIFO stack / deque), so a bug in the
///     search itself cannot certify a bogus witness;
///  5. OBS — each thread's observed results must match its committed
///     events in program order (catches mutants that corrupt return values
///     while leaving the graph consistent).
///
/// Exchangers have no linearization spec; steps 3-4 are replaced by the
/// pairing oracle inside checkExchangerConsistent.
///
//===----------------------------------------------------------------------===//

#ifndef COMPASS_CHECK_REFMODEL_H
#define COMPASS_CHECK_REFMODEL_H

#include "check/Scenario.h"
#include "graph/EventGraph.h"
#include "spec/Linearization.h"

#include <string>
#include <vector>

namespace compass::check {

/// One op as the harness observed it at runtime.
struct Observed {
  OpCode Code;
  rmc::Value Arg = 0;    ///< Producer/exchange payload.
  rmc::Value Result = 0; ///< What the op returned (see Harness.h mapping).
};

/// Structured conformance verdict for one execution.
struct Verdict {
  bool Ok = true;
  std::string Rule;   ///< Violated rule ("INJ", "QUEUE-FIFO", "WITNESS",
                      ///< "ORACLE", "OBS", "RACE", ...). Empty when Ok.
  std::string Detail; ///< Human-readable mismatch diagnostics.
  uint64_t LinStates = 0; ///< Linearization search effort.
  bool LinAborted = false; ///< The state budget ran out (result unknown;
                           ///< treated as pass, counted by the driver).

  std::string str() const {
    return Ok ? std::string("ok") : Rule + ": " + Detail;
  }

  static Verdict fail(std::string Rule, std::string Detail) {
    Verdict V;
    V.Ok = false;
    V.Rule = std::move(Rule);
    V.Detail = std::move(Detail);
    return V;
  }
};

/// Checks one execution of object \p ObjId in \p G against \p Family's
/// reference model; see the file comment for the pipeline. \p PerThread
/// holds each scenario thread's observed ops in program order (indexed by
/// *scenario* thread id == rmc thread id). \p Strength selects how much of
/// the pipeline applies: HbOnly skips steps 3-4 (no linearization witness
/// is demanded — the LAT_hb-only libraries legitimately lack one).
Verdict checkExecution(const graph::EventGraph &G, unsigned ObjId,
                       lib::ContainerFamily Family,
                       const std::vector<std::vector<Observed>> &PerThread,
                       spec::LinearizeLimits Limits = {200000},
                       SpecStrength Strength = SpecStrength::Linearizable);

} // namespace compass::check

#endif // COMPASS_CHECK_REFMODEL_H
