//===-- spec/Linearization.h - LAT_hist linearization search ----*- C++ -*-===//
//
// Part of compass-cxx. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The LAT_hist_hb check of Section 3.3 / Figure 4: a recorded history H
/// satisfies the linearizable-history spec iff there exists a total order
/// `to` that (a) is a permutation of H's events, (b) *respects* lhb
/// (H.lhb ⊆ to), and (c) is interpretable by the sequential semantics
/// (`interp(to, vs)`): pushes push, successful pops pop the top, and empty
/// pops occur only at truly-empty states. The search is a memoized DFS over
/// lhb-downward-closed prefixes (Wing-Gong style), feasible because model-
/// checked workloads are small.
///
//===----------------------------------------------------------------------===//

#ifndef COMPASS_SPEC_LINEARIZATION_H
#define COMPASS_SPEC_LINEARIZATION_H

#include "graph/EventGraph.h"

#include <cstdint>
#include <vector>

namespace compass::spec {

/// The sequential specification interpreting the total order.
enum class SeqSpec {
  Stack,  ///< LIFO with Push/PopOk/PopEmpty.
  Queue,  ///< FIFO with Enq/DeqOk/DeqEmpty.
  WsDeque ///< Work-stealing deque: Push/PopOk at the bottom, Steal at
          ///< the top, PopEmpty/StealEmpty only on empty states.
};

struct LinearizationResult {
  bool Found = false;
  /// A witnessing total order (event ids), when Found.
  std::vector<graph::EventId> Order;
  /// Search effort, for reporting.
  uint64_t StatesExplored = 0;
  /// The state budget (LinearizeLimits::MaxStates) was exhausted before the
  /// search concluded; Found=false then means "unknown", not "no witness".
  bool Aborted = false;
};

/// Resource bounds for the linearization search, so machine-generated
/// scenario sweeps (src/check/) cannot wedge on a pathological history.
struct LinearizeLimits {
  /// Maximum DFS states to explore; 0 = unlimited.
  uint64_t MaxStates = 0;
};

/// Searches for a linearization of object \p ObjId's committed events.
/// Supports histories of up to 64 events (model-checked workloads are far
/// smaller).
LinearizationResult findLinearization(const graph::EventGraph &G,
                                      unsigned ObjId, SeqSpec Spec,
                                      LinearizeLimits Limits = {});

} // namespace compass::spec

#endif // COMPASS_SPEC_LINEARIZATION_H
