//===-- spec/SpecMonitor.cpp - Commit-point event recording ----------------===//

#include "spec/SpecMonitor.h"

#include "support/Error.h"

#include <cassert>

using namespace compass;
using namespace compass::spec;
using namespace compass::graph;

unsigned SpecMonitor::registerObject(std::string Name) {
  if (ReplayPrefix && RegCursor < ObjectNames.size()) {
    // Copy-on-write fast-forward over a reused monitor: Setup re-registers
    // the same objects in the same order; re-yield their existing ids.
    assert(ObjectNames[RegCursor] == Name && "divergent replay Setup");
    return RegCursor++;
  }
  ObjectNames.push_back(std::move(Name));
  return static_cast<unsigned>(ObjectNames.size()) - 1;
}

const std::string &SpecMonitor::objectName(unsigned ObjId) const {
  if (ObjId >= ObjectNames.size())
    fatalError("unknown object id");
  return ObjectNames[ObjId];
}

EventId SpecMonitor::reserve(rmc::Machine &M, unsigned T) {
  // Ids are allocated densely from 0 in reservation order each execution,
  // so the machine's reservation sequence number mirrors the graph's id
  // allocation exactly. During a copy-on-write fast-forward the graph is
  // not touched at all: the counter reproduces the exact ids the original
  // prefix handed to coroutine locals (whether the monitor was reset,
  // reallocated, or — under beginExecution — left at the previous
  // execution's state to be epoch-trimmed afterwards), and the scheduler
  // can skip-jump it over whole steps of finished threads. Knowledge
  // injection and every other monitor mutation is restored from the
  // snapshot, so both are skipped during replay.
  EventId Seq = M.bumpReserveSeq();
  if (M.replaying())
    return Seq;
  EventId Id = G.reserve();
  assert(Id == Seq && "reservation sequence diverged from graph ids");
  (void)Seq;
  M.threadCur(T).Events.insert(Id);
  M.threadAcq(T).Events.insert(Id);
  return Id;
}

void SpecMonitor::retract(rmc::Machine &M, unsigned T, EventId Id) {
  if (M.replaying())
    return;
  G.retract(Id);
  M.threadCur(T).Events.erase(Id);
  M.threadAcq(T).Events.erase(Id);
}

IdSet SpecMonitor::committedKnown(rmc::Machine &M, unsigned T) const {
  IdSet Out;
  M.threadCur(T).Events.forEach([&](uint32_t Id) {
    if (G.isCommitted(Id))
      Out.insert(Id);
  });
  return Out;
}

void SpecMonitor::commit(rmc::Machine &M, unsigned T, EventId Id,
                         unsigned ObjId, OpKind Kind, rmc::Value V1,
                         rmc::Value V2, std::optional<EventId> SoFrom) {
  if (M.replaying())
    return; // Fast-forward: graph state restores from the snapshot.
  Event E;
  E.Kind = Kind;
  E.V1 = V1;
  E.V2 = V2;
  E.ObjId = ObjId;
  E.Thread = T;
  E.PhysView = M.threadCur(T).Phys;
  E.LogView = committedKnown(M, T);
  E.LogView.insert(Id);
  G.commit(Id, std::move(E));
  if (SoFrom)
    G.addSo(*SoFrom, Id);
}

void SpecMonitor::commitExchangePair(rmc::Machine &M, unsigned HelperT,
                                     EventId HelperId, rmc::Value HelperVal,
                                     unsigned HelpeeT, EventId HelpeeId,
                                     rmc::Value HelpeeVal,
                                     const rmc::View &HelpeePhys,
                                     unsigned ObjId) {
  if (M.replaying())
    return; // Fast-forward: graph state restores from the snapshot.
  // Helpee first (the paper's commit order e2 < e1 when e1 helps). Its
  // logical view is the helper's, which cannot yet contain the helper's
  // own event (not committed), realizing footnote 7: the helpee does not
  // happen-after the helper.
  Event E2;
  E2.Kind = OpKind::Exchange;
  E2.V1 = HelpeeVal;
  E2.V2 = HelperVal;
  E2.ObjId = ObjId;
  E2.Thread = HelpeeT;
  E2.PhysView = HelpeePhys;
  E2.LogView = committedKnown(M, HelperT);
  E2.LogView.insert(HelpeeId);
  G.commit(HelpeeId, std::move(E2));

  Event E1;
  E1.Kind = OpKind::Exchange;
  E1.V1 = HelperVal;
  E1.V2 = HelpeeVal;
  E1.ObjId = ObjId;
  E1.Thread = HelperT;
  E1.PhysView = M.threadCur(HelperT).Phys;
  E1.LogView = committedKnown(M, HelperT); // Now includes HelpeeId.
  E1.LogView.insert(HelperId);
  G.commit(HelperId, std::move(E1));

  G.addSo(HelperId, HelpeeId);
  G.addSo(HelpeeId, HelperId);
}
