//===-- spec/Linearization.cpp - LAT_hist linearization search -------------===//

#include "spec/Linearization.h"

#include "support/Error.h"

#include <algorithm>
#include <deque>
#include <set>

using namespace compass;
using namespace compass::spec;
using namespace compass::graph;

namespace {

/// DFS state for the search over one object's history.
struct Search {
  const EventGraph &G;
  SeqSpec Spec;
  std::vector<EventId> Evs;            ///< The history, commit order.
  std::vector<uint64_t> LhbPredMask;   ///< Per event: mask of lhb preds.
  std::set<std::pair<uint64_t, std::deque<rmc::Value>>> Visited;
  std::vector<EventId> Order;
  uint64_t States = 0;
  uint64_t MaxStates = 0; ///< 0 = unlimited.
  bool Aborted = false;

  Search(const EventGraph &G, SeqSpec Spec) : G(G), Spec(Spec) {}

  bool isProduce(const Event &E) const {
    if (Spec == SeqSpec::Queue)
      return E.Kind == OpKind::Enq;
    return E.Kind == OpKind::Push; // Stack and WsDeque.
  }

  /// Whether event \p I can extend a prefix whose abstract state is
  /// \p State; applies the transition when legal. The state is a deque:
  /// front = FIFO head / steal end, back = LIFO top / owner end.
  bool step(unsigned I, std::deque<rmc::Value> &State) const {
    const Event &E = G.event(Evs[I]);
    if (isProduce(E)) {
      State.push_back(E.V1);
      return true;
    }
    auto popBack = [&] {
      if (State.empty() || State.back() != E.V1)
        return false;
      State.pop_back();
      return true;
    };
    auto popFront = [&] {
      if (State.empty() || State.front() != E.V1)
        return false;
      State.pop_front();
      return true;
    };
    switch (E.Kind) {
    case OpKind::DeqOk:
      return Spec == SeqSpec::Queue && popFront();
    case OpKind::PopOk:
      return Spec != SeqSpec::Queue && popBack();
    case OpKind::Steal:
      return Spec == SeqSpec::WsDeque && popFront();
    case OpKind::DeqEmpty:
      return Spec == SeqSpec::Queue && State.empty();
    case OpKind::PopEmpty:
      return Spec != SeqSpec::Queue && State.empty();
    case OpKind::StealEmpty:
      return Spec == SeqSpec::WsDeque && State.empty();
    default:
      return false; // Foreign kind: no linearization.
    }
  }

  bool dfs(uint64_t Chosen, const std::deque<rmc::Value> &State) {
    ++States;
    if (MaxStates && States > MaxStates) {
      Aborted = true;
      return false;
    }
    unsigned N = static_cast<unsigned>(Evs.size());
    if (Chosen == (N == 64 ? ~0ull : (1ull << N) - 1))
      return true;
    if (!Visited.insert({Chosen, State}).second)
      return false;
    for (unsigned I = 0; I != N; ++I) {
      if (Chosen & (1ull << I))
        continue;
      // Respect lhb: all lhb-predecessors already placed.
      if ((LhbPredMask[I] & Chosen) != LhbPredMask[I])
        continue;
      std::deque<rmc::Value> Next = State;
      if (!step(I, Next))
        continue;
      Order.push_back(Evs[I]);
      if (dfs(Chosen | (1ull << I), Next))
        return true;
      Order.pop_back();
    }
    return false;
  }
};

} // namespace

LinearizationResult spec::findLinearization(const EventGraph &G,
                                            unsigned ObjId, SeqSpec Spec,
                                            LinearizeLimits Limits) {
  Search S(G, Spec);
  S.MaxStates = Limits.MaxStates;
  S.Evs = G.objectEvents(ObjId);
  unsigned N = static_cast<unsigned>(S.Evs.size());
  if (N > 64)
    fatalError("linearization search limited to 64 events");

  S.LhbPredMask.assign(N, 0);
  for (unsigned I = 0; I != N; ++I)
    for (unsigned J = 0; J != N; ++J)
      if (I != J && G.lhb(S.Evs[J], S.Evs[I]))
        S.LhbPredMask[I] |= 1ull << J;

  LinearizationResult R;
  R.Found = S.dfs(0, {});
  R.Order = std::move(S.Order);
  R.StatesExplored = S.States;
  R.Aborted = S.Aborted;
  return R;
}
