//===-- spec/Consistency.cpp - Library consistency conditions --------------===//

#include "spec/Consistency.h"

#include <deque>
#include <map>

using namespace compass;
using namespace compass::spec;
using namespace compass::graph;

std::string CheckResult::str() const {
  if (ok())
    return "consistent";
  std::string Out;
  for (const std::string &V : Violations) {
    Out += V;
    Out += "\n";
  }
  return Out;
}

namespace {

/// Shared machinery for queue and stack graph checks: the two containers
/// differ only in event kinds and in the ordering axiom (FIFO vs LIFO).
struct ContainerShape {
  OpKind Produce;    ///< Enq / Push.
  OpKind ConsumeOk;  ///< DeqOk / PopOk.
  OpKind ConsumeEmp; ///< DeqEmpty / PopEmpty.
  bool Lifo;         ///< false: FIFO (queue); true: LIFO (stack).
  const char *Name;  ///< "queue" / "stack".
};

std::string evStr(const EventGraph &G, EventId Id) {
  return G.event(Id).str(Id);
}

/// The common structural conditions: kinds are legal for the container,
/// so edges go producer -> consumer with matching values (MATCHES),
/// matching is injective, every successful consume has a producer, and
/// so ⊆ lhb.
void checkContainerStructure(const EventGraph &G, unsigned ObjId,
                             const ContainerShape &S, CheckResult &R) {
  std::vector<EventId> Evs = G.objectEvents(ObjId);
  std::map<EventId, unsigned> ProducerMatches, ConsumerMatches;

  for (EventId Id : Evs) {
    const Event &E = G.event(Id);
    if (E.Kind != S.Produce && E.Kind != S.ConsumeOk &&
        E.Kind != S.ConsumeEmp)
      R.add("KINDS", std::string("foreign event in ") + S.Name + " graph: " +
                         evStr(G, Id));
  }

  for (const SoEdge &Edge : G.so()) {
    if (!G.isCommitted(Edge.From) || !G.isCommitted(Edge.To))
      continue;
    const Event &From = G.event(Edge.From);
    const Event &To = G.event(Edge.To);
    if (From.ObjId != ObjId && To.ObjId != ObjId)
      continue;
    if (From.ObjId != To.ObjId) {
      R.add("SO-OBJ", "so edge across objects: " + evStr(G, Edge.From) +
                          " -> " + evStr(G, Edge.To));
      continue;
    }
    if (From.Kind != S.Produce || To.Kind != S.ConsumeOk) {
      R.add("SO-KINDS", "so edge with wrong kinds: " + evStr(G, Edge.From) +
                            " -> " + evStr(G, Edge.To));
      continue;
    }
    // MATCHES: the consumed value is the produced one.
    if (From.V1 != To.V1)
      R.add("MATCHES", "value mismatch: " + evStr(G, Edge.From) + " -> " +
                           evStr(G, Edge.To));
    // so ⊆ lhb: the consumer synchronized with the producer.
    if (!G.lhb(Edge.From, Edge.To))
      R.add("SO-LHB", "consumer does not observe its producer: " +
                          evStr(G, Edge.From) + " -> " + evStr(G, Edge.To));
    ++ProducerMatches[Edge.From];
    ++ConsumerMatches[Edge.To];
  }

  for (auto &[Id, N] : ProducerMatches)
    if (N > 1)
      R.add("INJ", "produced element consumed more than once: " +
                       evStr(G, Id));
  for (auto &[Id, N] : ConsumerMatches)
    if (N > 1)
      R.add("INJ", "consumer matched more than once: " + evStr(G, Id));
  for (EventId Id : Evs)
    if (G.event(Id).Kind == S.ConsumeOk && !ConsumerMatches.count(Id))
      R.add("UNMATCHED", "successful consume without a producer: " +
                             evStr(G, Id));
}

/// The ordering axiom.
///
/// FIFO (paper QUEUE-FIFO): for enqueues e' lhb e with (e, d) ∈ so, e' must
/// be dequeued by some d' with (d, d') ∉ lhb.
///
/// LIFO (stack analog, Section 4.1): for (e1, d1) ∈ so and a push e2 with
/// (e1, e2) ∈ lhb and (e2, d1) ∈ lhb, e2 must be popped by some d2 with
/// (d1, d2) ∉ lhb — an element pushed on top of e1 and visible to e1's pop
/// must be gone by then.
void checkOrderingAxiom(const EventGraph &G, unsigned ObjId,
                        const ContainerShape &S, CheckResult &R) {
  std::vector<EventId> Evs = G.objectEvents(ObjId);
  for (const SoEdge &Edge : G.so()) {
    if (!G.isCommitted(Edge.From) || G.event(Edge.From).ObjId != ObjId)
      continue;
    if (G.event(Edge.From).Kind != S.Produce)
      continue;
    EventId E = Edge.From, D = Edge.To;
    for (EventId E2 : Evs) {
      if (E2 == E || G.event(E2).Kind != S.Produce)
        continue;
      bool Covered = S.Lifo ? (G.lhb(E, E2) && G.lhb(E2, D))
                            : G.lhb(E2, E);
      if (!Covered)
        continue;
      std::optional<EventId> D2 = G.matchOfProducer(E2);
      const char *Rule = S.Lifo ? "LIFO" : "FIFO";
      if (!D2) {
        R.add(Rule, "unconsumed " + evStr(G, E2) + " should precede " +
                        evStr(G, E) + " consumed by " + evStr(G, D));
        continue;
      }
      if (G.lhb(D, *D2))
        R.add(Rule, "consume " + evStr(G, D) + " happens before " +
                        evStr(G, *D2) + " violating order of " +
                        evStr(G, E) + " / " + evStr(G, E2));
    }
  }
}

/// Empty-consume axiom (paper QUEUE-EMPDEQ): for every empty consume d and
/// every produce e with (e, d) ∈ lhb, e must be consumed by a d' with
/// (d, d') ∉ lhb — if something the empty consume knew about were still
/// present, the consume could not have failed. StrictEmpty additionally
/// requires d' to have committed before d.
void checkEmptyAxiom(const EventGraph &G, unsigned ObjId,
                     const ContainerShape &S, ContainerCheckOptions Opts,
                     CheckResult &R) {
  std::vector<EventId> Evs = G.objectEvents(ObjId);
  for (EventId D : Evs) {
    if (G.event(D).Kind != S.ConsumeEmp)
      continue;
    for (EventId E : Evs) {
      if (G.event(E).Kind != S.Produce || !G.lhb(E, D))
        continue;
      std::optional<EventId> D2 = G.matchOfProducer(E);
      if (!D2) {
        R.add("EMPTY", "empty consume " + evStr(G, D) +
                           " despite knowing unconsumed " + evStr(G, E));
        continue;
      }
      if (G.lhb(D, *D2))
        R.add("EMPTY", "empty consume " + evStr(G, D) + " happens before " +
                           evStr(G, *D2) + " consuming known " +
                           evStr(G, E));
      if (Opts.StrictEmpty &&
          G.event(*D2).CommitIdx >= G.event(D).CommitIdx)
        R.add("EMPTY-STRICT", "known " + evStr(G, E) +
                                  " consumed only after empty consume " +
                                  evStr(G, D));
    }
  }
}

CheckResult checkContainer(const EventGraph &G, unsigned ObjId,
                           const ContainerShape &S,
                           ContainerCheckOptions Opts) {
  CheckResult R;
  std::string WF = G.checkWellFormed();
  if (!WF.empty())
    R.add("WELLFORMED", WF);
  checkContainerStructure(G, ObjId, S, R);
  checkOrderingAxiom(G, ObjId, S, R);
  checkEmptyAxiom(G, ObjId, S, Opts, R);
  return R;
}

} // namespace

CheckResult spec::checkQueueConsistent(const EventGraph &G, unsigned ObjId,
                                       ContainerCheckOptions Opts) {
  ContainerShape S{OpKind::Enq, OpKind::DeqOk, OpKind::DeqEmpty,
                   /*Lifo=*/false, "queue"};
  return checkContainer(G, ObjId, S, Opts);
}

CheckResult spec::checkStackConsistent(const EventGraph &G, unsigned ObjId,
                                       ContainerCheckOptions Opts) {
  ContainerShape S{OpKind::Push, OpKind::PopOk, OpKind::PopEmpty,
                   /*Lifo=*/true, "stack"};
  return checkContainer(G, ObjId, S, Opts);
}

CheckResult spec::checkExchangerConsistent(const EventGraph &G,
                                           unsigned ObjId) {
  CheckResult R;
  std::string WF = G.checkWellFormed();
  if (!WF.empty())
    R.add("WELLFORMED", WF);

  std::vector<EventId> Evs = G.objectEvents(ObjId);
  for (EventId Id : Evs) {
    const Event &E = G.event(Id);
    if (E.Kind != OpKind::Exchange) {
      R.add("KINDS", "foreign event in exchanger graph: " + evStr(G, Id));
      continue;
    }
    if (E.V1 == BottomVal)
      R.add("ARG", "exchange of ⊥: " + evStr(G, Id));

    std::vector<EventId> Succ = G.soSuccessors(Id);
    std::vector<EventId> Pred = G.soPredecessors(Id);

    if (E.V2 == BottomVal) {
      // Failed exchange: unmatched.
      if (!Succ.empty() || !Pred.empty())
        R.add("FAIL-MATCHED", "failed exchange has so edges: " +
                                  evStr(G, Id));
      continue;
    }

    // Successful exchange: exactly one partner, symmetric edges.
    if (Succ.size() != 1 || Pred.size() != 1 || Succ[0] != Pred[0]) {
      R.add("PAIR", "successful exchange not uniquely paired: " +
                        evStr(G, Id));
      continue;
    }
    EventId P = Succ[0];
    const Event &Partner = G.event(P);
    if (Partner.Kind != OpKind::Exchange || Partner.ObjId != ObjId) {
      R.add("PAIR", "partner is not an exchange on this object: " +
                        evStr(G, P));
      continue;
    }
    if (Partner.V1 != E.V2 || Partner.V2 != E.V1)
      R.add("CROSS", "values do not cross: " + evStr(G, Id) + " / " +
                         evStr(G, P));
    if (Partner.Thread == E.Thread)
      R.add("SELF", "thread exchanged with itself: " + evStr(G, Id));

    // Atomic pairing (Section 4.2): the two commits are adjacent, and the
    // later commit (the helper) observes the earlier (the helpee).
    uint32_t CA = E.CommitIdx, CB = Partner.CommitIdx;
    if (CA + 1 != CB && CB + 1 != CA)
      R.add("ATOMIC-PAIR", "pair not committed atomically: " +
                               evStr(G, Id) + " / " + evStr(G, P));
    EventId Helpee = CA < CB ? Id : P;
    EventId Helper = CA < CB ? P : Id;
    if (!G.lhb(Helpee, Helper))
      R.add("HELPER-LHB", "helper does not observe helpee: " +
                              evStr(G, Helper));
  }
  return R;
}

namespace {

CheckResult checkAbsState(const EventGraph &G, unsigned ObjId, bool Lifo,
                          AbsStateOptions Opts) {
  CheckResult R;
  ContainerShape S = Lifo ? ContainerShape{OpKind::Push, OpKind::PopOk,
                                           OpKind::PopEmpty, true, "stack"}
                          : ContainerShape{OpKind::Enq, OpKind::DeqOk,
                                           OpKind::DeqEmpty, false, "queue"};
  std::deque<rmc::Value> State;
  for (EventId Id : G.objectEvents(ObjId)) {
    const Event &E = G.event(Id);
    if (E.Kind == S.Produce) {
      State.push_back(E.V1);
      continue;
    }
    if (E.Kind == S.ConsumeOk) {
      if (State.empty()) {
        R.add("ABS", "consume from empty abstract state: " + evStr(G, Id));
        continue;
      }
      rmc::Value Expect = Lifo ? State.back() : State.front();
      if (Expect != E.V1)
        R.add("ABS", "abstract state yields " + std::to_string(Expect) +
                         " but operation returned: " + evStr(G, Id));
      if (Lifo)
        State.pop_back();
      else
        State.pop_front();
      continue;
    }
    if (E.Kind == S.ConsumeEmp) {
      if (Opts.RequireTrueEmpty && !State.empty())
        R.add("ABS-EMPTY", "empty consume while abstract state holds " +
                               std::to_string(State.size()) +
                               " elements: " + evStr(G, Id));
      continue;
    }
    R.add("ABS-KIND", "foreign event kind: " + evStr(G, Id));
  }
  return R;
}

} // namespace

CheckResult spec::checkQueueAbsState(const EventGraph &G, unsigned ObjId,
                                     AbsStateOptions Opts) {
  return checkAbsState(G, ObjId, /*Lifo=*/false, Opts);
}

CheckResult spec::checkStackAbsState(const EventGraph &G, unsigned ObjId,
                                     AbsStateOptions Opts) {
  return checkAbsState(G, ObjId, /*Lifo=*/true, Opts);
}

CheckResult spec::checkWsDequeConsistent(const EventGraph &G,
                                         unsigned ObjId,
                                         ContainerCheckOptions Opts) {
  CheckResult R;
  std::string WF = G.checkWellFormed();
  if (!WF.empty())
    R.add("WELLFORMED", WF);

  std::vector<EventId> Evs = G.objectEvents(ObjId);

  // Single-owner discipline: all Push/PopOk/PopEmpty come from one
  // thread; every Steal/StealEmpty from a different thread.
  unsigned OwnerThread = ~0u;
  for (EventId Id : Evs) {
    const Event &E = G.event(Id);
    switch (E.Kind) {
    case OpKind::Push:
    case OpKind::PopOk:
    case OpKind::PopEmpty:
      if (OwnerThread == ~0u)
        OwnerThread = E.Thread;
      else if (E.Thread != OwnerThread)
        R.add("OWNER", "owner operations from two threads: " +
                           evStr(G, Id));
      break;
    case OpKind::Steal:
    case OpKind::StealEmpty:
      break;
    default:
      R.add("KINDS", "foreign event in deque graph: " + evStr(G, Id));
    }
  }
  for (EventId Id : Evs) {
    const Event &E = G.event(Id);
    if ((E.Kind == OpKind::Steal || E.Kind == OpKind::StealEmpty) &&
        E.Thread == OwnerThread)
      R.add("OWNER", "owner stealing from its own deque: " + evStr(G, Id));
  }

  // Matching: so edges are Push -> (PopOk | Steal), values agree, each
  // element consumed at most once, every consume matched, consumers
  // observe their producer.
  std::map<EventId, unsigned> ProducerMatches, ConsumerMatches;
  for (const SoEdge &Edge : G.so()) {
    if (!G.isCommitted(Edge.From) || !G.isCommitted(Edge.To))
      continue;
    const Event &From = G.event(Edge.From);
    const Event &To = G.event(Edge.To);
    if (From.ObjId != ObjId && To.ObjId != ObjId)
      continue;
    if (From.ObjId != To.ObjId) {
      R.add("SO-OBJ", "so edge across objects: " + evStr(G, Edge.From));
      continue;
    }
    if (From.Kind != OpKind::Push ||
        (To.Kind != OpKind::PopOk && To.Kind != OpKind::Steal)) {
      R.add("SO-KINDS", "so edge with wrong kinds: " +
                            evStr(G, Edge.From) + " -> " +
                            evStr(G, Edge.To));
      continue;
    }
    if (From.V1 != To.V1)
      R.add("MATCHES", "value mismatch: " + evStr(G, Edge.From) + " -> " +
                           evStr(G, Edge.To));
    if (!G.lhb(Edge.From, Edge.To))
      R.add("SO-LHB", "consumer does not observe its producer: " +
                          evStr(G, Edge.From) + " -> " +
                          evStr(G, Edge.To));
    ++ProducerMatches[Edge.From];
    ++ConsumerMatches[Edge.To];
  }
  for (auto &[Id, N] : ProducerMatches)
    if (N > 1)
      R.add("INJ", "element consumed more than once: " + evStr(G, Id));
  for (EventId Id : Evs) {
    const Event &E = G.event(Id);
    if ((E.Kind == OpKind::PopOk || E.Kind == OpKind::Steal) &&
        !ConsumerMatches.count(Id))
      R.add("UNMATCHED", "consume without a producer: " + evStr(G, Id));
  }

  // Empty axioms (the QUEUE-EMPDEQ analog): an empty take/steal that
  // happens-after an unconsumed push is impossible.
  for (EventId D : Evs) {
    const Event &ED = G.event(D);
    if (ED.Kind != OpKind::PopEmpty && ED.Kind != OpKind::StealEmpty)
      continue;
    for (EventId E : Evs) {
      if (G.event(E).Kind != OpKind::Push || !G.lhb(E, D))
        continue;
      std::optional<EventId> D2 = G.matchOfProducer(E);
      if (!D2) {
        R.add("EMPTY", "empty consume " + evStr(G, D) +
                           " despite knowing unconsumed " + evStr(G, E));
        continue;
      }
      if (G.lhb(D, *D2))
        R.add("EMPTY", "empty consume " + evStr(G, D) +
                           " happens before the consumption of known " +
                           evStr(G, E));
      if (Opts.StrictEmpty &&
          G.event(*D2).CommitIdx >= G.event(D).CommitIdx)
        R.add("EMPTY-STRICT", "known " + evStr(G, E) +
                                  " consumed only after empty consume " +
                                  evStr(G, D));
    }
  }
  return R;
}

CheckResult spec::checkWsDequeAbsState(const EventGraph &G, unsigned ObjId,
                                       AbsStateOptions Opts) {
  CheckResult R;
  std::deque<rmc::Value> State; // Front = top (steal end), back = bottom.
  for (EventId Id : G.objectEvents(ObjId)) {
    const Event &E = G.event(Id);
    switch (E.Kind) {
    case OpKind::Push:
      State.push_back(E.V1);
      break;
    case OpKind::PopOk:
      if (State.empty() || State.back() != E.V1)
        R.add("ABS", "owner take does not match the bottom: " +
                         evStr(G, Id));
      else
        State.pop_back();
      break;
    case OpKind::Steal:
      if (State.empty() || State.front() != E.V1)
        R.add("ABS", "steal does not match the top: " + evStr(G, Id));
      else
        State.pop_front();
      break;
    case OpKind::PopEmpty:
    case OpKind::StealEmpty:
      if (Opts.RequireTrueEmpty && !State.empty())
        R.add("ABS-EMPTY", "empty consume on non-empty abstract state: " +
                               evStr(G, Id));
      break;
    default:
      R.add("ABS-KIND", "foreign event kind: " + evStr(G, Id));
    }
  }
  return R;
}
