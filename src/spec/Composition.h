//===-- spec/Composition.h - Elimination-stack graph composition -*- C++ -*-===//
//
// Part of compass-cxx. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The simulation relation of Section 4.1, as a graph transformation: the
/// elimination stack's event graph is *derived* from its base stack's and
/// exchanger's graphs —
///
///  * base-stack Push/Pop/Pop(ε) events become ES events unchanged;
///  * a matched exchange pair between a value v (a pusher) and SENTINEL
///    (a popper) becomes an ES Push(v) immediately followed by an ES
///    Pop(v) at the pair's two adjacent commit indices, with an so edge —
///    the atomicity of the paired commits is exactly what makes the
///    eliminated pair LIFO-invisible to concurrent operations;
///  * failed exchanges, and pairs between two pushers or two poppers
///    (which both report failure to their callers), vanish.
///
/// Checking StackConsistent on the derived graph is experiment E6's
/// compositional verification: it uses only the component graphs, never
/// the implementations' memory operations.
///
//===----------------------------------------------------------------------===//

#ifndef COMPASS_SPEC_COMPOSITION_H
#define COMPASS_SPEC_COMPOSITION_H

#include "graph/EventGraph.h"

namespace compass::spec {

/// Builds the elimination stack's derived event graph from the base
/// stack's (\p BaseObj) and exchanger's (\p ExObj) events in \p G. All
/// derived events carry \p EsObj as their object id; ids and commit
/// indices are inherited (within an eliminated pair, the push always takes
/// the smaller index and the pop's logical view is the pair's shared
/// one).
graph::EventGraph buildElimStackGraph(const graph::EventGraph &G,
                                      unsigned BaseObj, unsigned ExObj,
                                      unsigned EsObj);

} // namespace compass::spec

#endif // COMPASS_SPEC_COMPOSITION_H
