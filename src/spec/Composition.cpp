//===-- spec/Composition.cpp - Elimination-stack graph composition ---------===//

#include "spec/Composition.h"

using namespace compass;
using namespace compass::spec;
using namespace compass::graph;

EventGraph spec::buildElimStackGraph(const EventGraph &G, unsigned BaseObj,
                                     unsigned ExObj, unsigned EsObj) {
  EventGraph Out;

  // Base-stack events carry over unchanged (modulo the object id).
  for (EventId Id : G.objectEvents(BaseObj)) {
    Event E = G.event(Id);
    E.ObjId = EsObj;
    Out.addRaw(Id, std::move(E));
  }
  for (const SoEdge &Edge : G.so()) {
    if (!G.isCommitted(Edge.From) || !G.isCommitted(Edge.To))
      continue;
    if (G.event(Edge.From).ObjId == BaseObj &&
        G.event(Edge.To).ObjId == BaseObj)
      Out.addSo(Edge.From, Edge.To);
  }

  // Eliminated pairs: visit each exchanger so pair once, via the edge
  // whose source committed first (the helpee -> helper direction).
  for (const SoEdge &Edge : G.so()) {
    if (!G.isCommitted(Edge.From) || !G.isCommitted(Edge.To))
      continue;
    const Event &A = G.event(Edge.From);
    const Event &B = G.event(Edge.To);
    if (A.ObjId != ExObj || B.ObjId != ExObj)
      continue;
    if (A.CommitIdx > B.CommitIdx)
      continue; // The symmetric edge handles this pair.

    bool AIsPop = A.V1 == SentinelVal;
    bool BIsPop = B.V1 == SentinelVal;
    if (AIsPop == BIsPop)
      continue; // push/push or pop/pop: both callers report failure.

    EventId PushId = AIsPop ? Edge.To : Edge.From;
    EventId PopId = AIsPop ? Edge.From : Edge.To;
    const Event &Pusher = G.event(PushId);
    const Event &Popper = G.event(PopId);
    // The helper's logical view is the pair's shared one; it contains
    // both ids whichever side helped.
    const Event &Helper = A.CommitIdx < B.CommitIdx ? B : A;
    uint32_t C1 = A.CommitIdx;

    Event PushE;
    PushE.Kind = OpKind::Push;
    PushE.V1 = Pusher.V1;
    PushE.ObjId = EsObj;
    PushE.Thread = Pusher.Thread;
    PushE.CommitIdx = C1;
    PushE.PhysView = Pusher.PhysView;
    PushE.LogView = Helper.LogView;
    PushE.LogView.erase(PopId);
    Out.addRaw(PushId, std::move(PushE));

    Event PopE;
    PopE.Kind = OpKind::PopOk;
    PopE.V1 = Pusher.V1;
    PopE.ObjId = EsObj;
    PopE.Thread = Popper.Thread;
    PopE.CommitIdx = C1 + 1;
    PopE.PhysView = Popper.PhysView;
    PopE.LogView = Helper.LogView;
    Out.addRaw(PopId, std::move(PopE));

    Out.addSo(PushId, PopId);
  }
  return Out;
}
