//===-- spec/Consistency.h - Library consistency conditions -----*- C++ -*-===//
//
// Part of compass-cxx. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Yacovet-style consistency conditions of the paper, as runtime checks
/// over a recorded event graph:
///
///  * QueueConsistent (Figure 2): QUEUE-MATCHES, injectivity, so ⊆ lhb,
///    QUEUE-FIFO, QUEUE-EMPDEQ;
///  * StackConsistent (Sections 3.3/4.1): the LIFO analog;
///  * ExchangerConsistent (Figure 5 / Section 4.2): matched pairs carry
///    crossed values, symmetric so edges, and are committed atomically
///    (adjacent commit indices); failed exchanges return ⊥.
///
/// Together with the abstract-state checkers (LAT_abs_hb style: replay the
/// commit order against a FIFO/LIFO abstract state) and the linearization
/// search (LAT_hist_hb style, Linearization.h), these realize the paper's
/// three spec strengths as checkable predicates.
///
//===----------------------------------------------------------------------===//

#ifndef COMPASS_SPEC_CONSISTENCY_H
#define COMPASS_SPEC_CONSISTENCY_H

#include "graph/EventGraph.h"

#include <string>
#include <vector>

namespace compass::spec {

/// The outcome of a consistency check: a (possibly empty) list of violated
/// conditions with human-readable details.
struct CheckResult {
  std::vector<std::string> Violations;

  bool ok() const { return Violations.empty(); }
  void add(std::string Rule, std::string Detail) {
    Violations.push_back(std::move(Rule) + ": " + std::move(Detail));
  }
  std::string str() const;
};

/// Options for the queue/stack graph checks.
struct ContainerCheckOptions {
  /// When true, empty-dequeue/pop checks additionally require the matching
  /// consumer to have *committed before* the empty operation (a strict,
  /// commit-prefix reading of QUEUE-EMPDEQ; the paper's condition only
  /// forbids the consumer from happening-after). Our implementations
  /// satisfy the strict version too; see DESIGN.md.
  bool StrictEmpty = false;
};

/// Checks QueueConsistent(G) restricted to object \p ObjId.
CheckResult checkQueueConsistent(const graph::EventGraph &G, unsigned ObjId,
                                 ContainerCheckOptions Opts = {});

/// Checks StackConsistent(G) restricted to object \p ObjId.
CheckResult checkStackConsistent(const graph::EventGraph &G, unsigned ObjId,
                                 ContainerCheckOptions Opts = {});

/// Checks ExchangerConsistent(G) restricted to object \p ObjId.
CheckResult checkExchangerConsistent(const graph::EventGraph &G,
                                     unsigned ObjId);

/// Options for abstract-state (LAT_abs_hb) replay checks.
struct AbsStateOptions {
  /// Require the abstract state to be empty at DeqEmpty/PopEmpty commits.
  /// Only SC-strength (lock-based) implementations satisfy this; relaxed
  /// ones legitimately fail it (Section 2.3's "Abstract state and
  /// read-only operations" discussion).
  bool RequireTrueEmpty = false;
};

/// LAT_abs_hb for queues: replays object \p ObjId's commits in commit order
/// against a FIFO list, checking every successful dequeue pops the head.
CheckResult checkQueueAbsState(const graph::EventGraph &G, unsigned ObjId,
                               AbsStateOptions Opts = {});

/// LAT_abs_hb for stacks: LIFO replay.
CheckResult checkStackAbsState(const graph::EventGraph &G, unsigned ObjId,
                               AbsStateOptions Opts = {});

/// Consistency conditions for work-stealing deques (the paper's Section 6
/// future work, realized): the owner pushes and takes at the bottom
/// (Push / PopOk / PopEmpty, all by one thread), thieves steal from the
/// top (Steal / StealEmpty). Checks MATCHES, injectivity, so ⊆ lhb for
/// steals, single-owner discipline, and the empty axioms over lhb.
CheckResult checkWsDequeConsistent(const graph::EventGraph &G,
                                   unsigned ObjId,
                                   ContainerCheckOptions Opts = {});

/// LAT_abs_hb for work-stealing deques: replays the commit order against
/// a double-ended abstract state — pushes append at the bottom, owner
/// takes remove from the bottom, steals remove from the top.
CheckResult checkWsDequeAbsState(const graph::EventGraph &G, unsigned ObjId,
                                 AbsStateOptions Opts = {});

} // namespace compass::spec

#endif // COMPASS_SPEC_CONSISTENCY_H
