//===-- spec/SpecMonitor.h - Commit-point event recording -------*- C++ -*-===//
//
// Part of compass-cxx. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The runtime realization of the paper's logically atomic specifications:
/// library implementations drive this monitor at their commit points,
/// extending the shared event graph exactly as the LAT postconditions of
/// Figures 2, 4 and 5 describe — a fresh event with the commit point's
/// physical and logical views, so edges to matched events, and (for
/// exchangers) *paired* commits performed atomically by the helper
/// (Section 4.2's helping pattern).
///
/// Protocol:
///  * `reserve(M, T)` allocates an event id and injects it into thread T's
///    knowledge, so that the upcoming commit instruction's message carries
///    the id (the paper's `e ∈ M'` flowing through view transfer). Between
///    reserve and commit/retract the thread must not perform release
///    writes other than the commit instruction itself.
///  * `commit(...)` — in the same scheduler step as the successful commit
///    instruction — fills in the event. The recorded logical view is the
///    thread's known event ids restricted to *committed* events (observing
///    a reserved id carries no information) plus the event itself.
///  * `retract(...)` abandons a reservation when the would-be commit
///    instruction failed (e.g. a lost CAS).
///  * `commitExchangePair(...)` performs the helpee-then-helper double
///    commit with adjacent commit indices and symmetric so edges; the
///    helpee's event records the helpee's physical view at its offer while
///    both events share the helper's logical view (paper Figure 5, with
///    the footnote-7 refinement that the helpee's logical view does not
///    contain the helper's event).
///
//===----------------------------------------------------------------------===//

#ifndef COMPASS_SPEC_SPECMONITOR_H
#define COMPASS_SPEC_SPECMONITOR_H

#include "graph/EventGraph.h"
#include "rmc/Machine.h"

#include <optional>
#include <string>
#include <vector>

namespace compass::spec {

/// Records library events at commit points; see file comment.
class SpecMonitor {
public:
  /// Rewinds to the freshly constructed state, keeping heap storage for
  /// reuse. A monitor reused across the explorer's executions (the arena
  /// pattern) reaches steady-state capacity once.
  void reset() {
    G.reset();
    ObjectNames.clear();
    ReplayPrefix = false;
    RegCursor = 0;
  }

  /// Per-execution entry point for monitors reused across the explorer's
  /// executions. On a normal (root) execution this is reset(). During a
  /// copy-on-write fast-forward (M.replaying()) the graph is left at the
  /// previous execution's state — the engine trims it to the snapshot
  /// epoch afterwards — and the monitor switches to replay mode:
  /// registerObject re-yields existing ids and reserve counts ids without
  /// touching the graph (the id sequence is deterministic per prefix).
  void beginExecution(const rmc::Machine &M) {
    if (M.replaying()) {
      ReplayPrefix = true;
      RegCursor = 0;
    } else {
      reset();
    }
  }

  /// A point in the monitor's mutation history; O(1) to capture, O(delta)
  /// to rewind to. The copy-on-write engine stores these in its snapshot
  /// slots instead of deep-copying the monitor.
  struct Epoch {
    graph::EventGraph::Epoch G;
    unsigned NumObjects = 0;
  };

  Epoch epoch() const {
    return {G.epoch(), static_cast<unsigned>(ObjectNames.size())};
  }

  void trimToEpoch(const Epoch &E) {
    G.trimToEpoch(E.G);
    ObjectNames.resize(E.NumObjects);
    ReplayPrefix = false;
  }

  /// Registers a library object; returns its ObjId.
  unsigned registerObject(std::string Name);

  const std::string &objectName(unsigned ObjId) const;
  unsigned numObjects() const {
    return static_cast<unsigned>(ObjectNames.size());
  }

  /// Allocates an event id and injects it into thread \p T's knowledge.
  graph::EventId reserve(rmc::Machine &M, unsigned T);

  /// Abandons a reservation (failed commit instruction).
  void retract(rmc::Machine &M, unsigned T, graph::EventId Id);

  /// Commits event \p Id for thread \p T with the given payload; records
  /// the so edge \p SoFrom -> Id when present (matched producer).
  void commit(rmc::Machine &M, unsigned T, graph::EventId Id,
              unsigned ObjId, graph::OpKind Kind, rmc::Value V1,
              rmc::Value V2 = 0,
              std::optional<graph::EventId> SoFrom = std::nullopt);

  /// Commits a matched exchange pair atomically: first the helpee's event
  /// \p HelpeeId (performed on behalf of thread \p HelpeeT, physical view
  /// \p HelpeePhys from its offer message), then the helper's \p HelperId
  /// (thread \p HelperT). Values cross: helpee exchanged \p HelpeeVal for
  /// \p HelperVal.
  void commitExchangePair(rmc::Machine &M, unsigned HelperT,
                          graph::EventId HelperId, rmc::Value HelperVal,
                          unsigned HelpeeT, graph::EventId HelpeeId,
                          rmc::Value HelpeeVal, const rmc::View &HelpeePhys,
                          unsigned ObjId);

  const graph::EventGraph &graph() const { return G; }

private:
  /// The thread's known ids restricted to committed events.
  IdSet committedKnown(rmc::Machine &M, unsigned T) const;

  graph::EventGraph G;
  std::vector<std::string> ObjectNames;

  /// Copy-on-write replay state (see beginExecution). Reservation ids come
  /// from the machine's sequence counter (Machine::bumpReserveSeq), which
  /// the scheduler's fast-forward can skip-jump per step.
  bool ReplayPrefix = false;
  unsigned RegCursor = 0; ///< Next object id to re-yield.
};

} // namespace compass::spec

#endif // COMPASS_SPEC_SPECMONITOR_H
