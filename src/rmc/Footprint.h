//===-- rmc/Footprint.h - Per-step access footprints ------------*- C++ -*-===//
//
// Part of compass-cxx. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The access footprint of one machine step: which location it touches and
/// in which capacity (read / write / update / fence). Footprints are the
/// interface between the view machine and the sleep-set partial-order
/// reduction (sim/Reduction.h): the Machine reports the footprint of every
/// executed operation, the Scheduler tracks the *pending* footprint of each
/// parked thread, and the reduction layer derives an independence relation
/// from them.
///
/// Independence over view-based steps (DESIGN.md Section 8): a non-SC step
/// by thread t mutates only t's own view state, plus — for writes/updates —
/// the history of the single touched cell. Hence two steps by *different*
/// threads commute whenever
///  * either is a thread-start step or a non-SC fence (purely thread-local),
///  * they touch different locations, or
///  * they touch the same location but both only read (a read never changes
///    the cell history nor another thread's readable set).
/// SC accesses and SC fences additionally join/update the machine's global
/// SC view, so two SC-tagged steps never commute. Kind::None (unknown) is
/// conservatively dependent on everything.
///
/// The commutation is exact modulo allocation renaming: a step may allocate
/// fresh cells, and swapping two allocating steps renumbers the fresh Locs.
/// The renamed states are isomorphic, and every property the framework
/// checks is invariant under that isomorphism, so allocation is treated as
/// footprint-free.
///
//===----------------------------------------------------------------------===//

#ifndef COMPASS_RMC_FOOTPRINT_H
#define COMPASS_RMC_FOOTPRINT_H

#include "rmc/View.h"

#include <cstdint>

namespace compass::rmc {

/// The access footprint of one machine step; see file comment.
struct Footprint {
  /// What the step does to its location.
  enum class Kind : uint8_t {
    None,   ///< Unknown / not a memory step: dependent on everything.
    Start,  ///< Thread-start step (no memory access yet).
    Read,   ///< Load (including failed-CAS reads and spin-wait loads).
    Write,  ///< Plain store.
    Update, ///< RMW: successful CAS or fetch-add (read + write).
    Fence,  ///< Memory fence (no location).
    Reclaim, ///< Reclamation ghost step (pin / unpin / retire): touches the
             ///< global reclamation ghost state, not any cell history.
    Free     ///< Reclamation free step: invalidates cells for every thread.
  };

  Loc L = 0;            ///< Touched location (meaningless for Start/Fence).
  Kind K = Kind::None;  ///< Access kind.
  bool Sc = false;      ///< Step joins/updates the global SC view.
  /// Whether the access is atomic. Non-atomic accesses are excluded from
  /// the source-set refinement below: the machine's race detector is
  /// read-side asymmetric (the accessor must have observed the whole
  /// history), so both access orders of a non-atomic/atomic pair must be
  /// explored for the complementary race direction to surface. Excluded
  /// from operator== so sleep snapshots written before the flag existed
  /// still validate (the flag is derived, never free).
  bool Atomic = false;

  bool isRead() const { return K == Kind::Read; }

  bool operator==(const Footprint &O) const {
    return L == O.L && K == O.K && Sc == O.Sc;
  }
};

/// True when steps with footprints \p A and \p B (by different threads)
/// commute; see file comment for the derivation.
inline bool independent(const Footprint &A, const Footprint &B) {
  if (A.K == Footprint::Kind::None || B.K == Footprint::Kind::None)
    return false; // Unknown steps are dependent on everything.
  if (A.Sc && B.Sc)
    return false; // Both touch the global SC view.
  if (A.K == Footprint::Kind::Start || B.K == Footprint::Kind::Start)
    return true; // Thread start touches no memory.
  if (A.K == Footprint::Kind::Free || B.K == Footprint::Kind::Free)
    return false; // Freeing invalidates cells for everyone: a plain access
                  // before vs. after a free is the use-after-free verdict
                  // itself, so frees commute with nothing (but Start).
  if (A.K == Footprint::Kind::Reclaim || B.K == Footprint::Kind::Reclaim) {
    // Pin/unpin/retire ghost steps all read-modify the shared reclamation
    // ghost state (pin sessions, retire snapshots, client retire bins), so
    // two of them never commute. Client bookkeeping may also ride on SC
    // steps (sim::Ebr claims a retire bin atomically with its epoch-advance
    // CAS), so Reclaim is additionally dependent on every SC step. Against
    // plain non-SC accesses and fences it is independent — it touches no
    // cell history and no thread view.
    if (A.K == Footprint::Kind::Reclaim &&
        B.K == Footprint::Kind::Reclaim)
      return false;
    return !A.Sc && !B.Sc;
  }
  if (A.K == Footprint::Kind::Fence || B.K == Footprint::Kind::Fence)
    return true; // Non-SC fences are thread-local (SC pairs handled above).
  if (A.L != B.L)
    return true; // Distinct cells: view effects are thread-local.
  return A.isRead() && B.isRead(); // Same cell: only read/read commutes.
}

/// Source-set refinement (DESIGN.md Section 12): whether a *sleeping* move
/// with footprint \p Asleep may stay asleep after a step with footprint
/// \p Done executed — even though the pair is dependent in the classic
/// independence relation — because every execution that delays the sleeping
/// move past the executed step and resolves its reads-from below the
/// sleeping move's history watermark commutes, state-exactly, back to the
/// already-explored sibling that ran the sleeping move first:
///  * executed Read vs sleeping Write/Update: reads never grow the history,
///    so the delayed write/update appends at the identical timestamp and
///    the read's view raise touches only its own thread — exact commute;
///  * executed Write/Update vs sleeping Read, and executed Write vs
///    sleeping Update: a read of a message *below* the watermark commutes
///    with the later append; only reads of messages appended since the
///    sleep are genuinely new, and the watermark (SleepMove::Ver) restricts
///    the delayed operation to exactly those.
/// Write/Write and Update-vs-sleeping-Write/Update pairs reverse the
/// modification order itself and must wake classically. The refinement
/// requires both footprints atomic (see Footprint::Atomic) and non-SC
/// (SC steps join the global SC view, which never commutes).
inline bool sourceKeepsAsleep(const Footprint &Done, const Footprint &Asleep) {
  if (independent(Done, Asleep))
    return true;
  if (Done.L != Asleep.L || !Done.Atomic || !Asleep.Atomic || Done.Sc ||
      Asleep.Sc)
    return false;
  using K = Footprint::Kind;
  const bool DoneRw = Done.K == K::Read || Done.K == K::Write ||
                      Done.K == K::Update;
  const bool AsleepRw = Asleep.K == K::Read || Asleep.K == K::Write ||
                        Asleep.K == K::Update;
  if (!DoneRw || !AsleepRw)
    return false;
  if (Done.K == K::Read)
    return true; // Read keeps Write and Update asleep (reads grow nothing).
  if (Asleep.K == K::Read)
    return true; // Write/Update keep Read asleep under the watermark.
  // Done is Write or Update, Asleep is Write or Update.
  return Done.K == K::Write && Asleep.K == K::Update;
}

} // namespace compass::rmc

#endif // COMPASS_RMC_FOOTPRINT_H
