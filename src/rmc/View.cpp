//===-- rmc/View.cpp - Per-location timestamp views ----------------------===//

#include "rmc/View.h"

using namespace compass::rmc;

bool View::includedIn(const View &Other) const {
  for (size_t I = 0, E = Entries.size(); I != E; ++I) {
    Timestamp Theirs = I < Other.Entries.size() ? Other.Entries[I] : 0;
    if (Entries[I] > Theirs)
      return false;
  }
  return true;
}

unsigned View::countNonZero() const {
  unsigned N = 0;
  for (Timestamp T : Entries)
    if (T)
      ++N;
  return N;
}

bool View::operator==(const View &Other) const {
  return includedIn(Other) && Other.includedIn(*this);
}

std::string View::str() const {
  std::string Out = "{";
  bool First = true;
  for (size_t I = 0, E = Entries.size(); I != E; ++I) {
    if (!Entries[I])
      continue;
    if (!First)
      Out += ", ";
    First = false;
    Out += "l" + std::to_string(I) + "@" + std::to_string(Entries[I]);
  }
  Out += "}";
  return Out;
}

View compass::rmc::join(const View &A, const View &B) {
  View Out = A;
  Out.joinWith(B);
  return Out;
}
