//===-- rmc/Machine.cpp - Operational RC11 view machine -------------------===//

#include "rmc/Machine.h"

#include "support/Error.h"

#include <cassert>

using namespace compass;
using namespace compass::rmc;

Knowledge &Machine::ThreadState::relSlot(Loc L) {
  for (size_t I = 0; I != RelLive; ++I)
    if (Rel[I].L == L)
      return Rel[I].K;
  if (RelLive < Rel.size()) {
    // Recycle a retained entry (keeps its Knowledge capacity).
    Rel[RelLive].L = L;
    Rel[RelLive].K.clear();
  } else {
    Rel.push_back(RelEntry{L, Knowledge()});
  }
  return Rel[RelLive++].K;
}

void Machine::ThreadState::clear() {
  Cur.clear();
  Acq.clear();
  RelFence.clear();
  RelLive = 0;
  HasRead = false;
  LastReadLoc = 0;
  LastReadTs = 0;
  Pinned = false;
  PinSession = 0;
}

unsigned Machine::addThread() {
  if (LiveThreads < Threads.size())
    Threads[LiveThreads].clear();
  else
    Threads.emplace_back();
  return static_cast<unsigned>(LiveThreads++);
}

void Machine::reset() {
  Mem.reset();
  LiveThreads = 0;
  ScPhys.clear();
  Raced = false;
  RaceMsg.clear();
  FaultRule = "RACE";
  Trace.clear();
  LastFp = Footprint();
  // Counters and OpSeqN are monotonic across resets by design; Tracing is
  // sticky (the caller that enabled it keeps it).
}

Machine::ThreadState &Machine::thread(unsigned T) {
  if (T >= LiveThreads)
    fatalError("unknown thread id");
  return Threads[T];
}

const Machine::ThreadState &Machine::thread(unsigned T) const {
  if (T >= LiveThreads)
    fatalError("unknown thread id");
  return Threads[T];
}

Knowledge &Machine::threadCur(unsigned T) { return thread(T).Cur; }

const Knowledge &Machine::threadCur(unsigned T) const {
  return thread(T).Cur;
}

Knowledge &Machine::threadAcq(unsigned T) { return thread(T).Acq; }

const Knowledge &Machine::lastReadKnowledge(unsigned T) const {
  const ThreadState &TS = thread(T);
  if (!TS.HasRead)
    fatalError("lastReadKnowledge: thread has not performed a read");
  return Mem.cell(TS.LastReadLoc).History[TS.LastReadTs].Know;
}

Timestamp Machine::lastReadTs(unsigned T) const {
  const ThreadState &TS = thread(T);
  if (!TS.HasRead)
    fatalError("lastReadTs: thread has not performed a read");
  return TS.LastReadTs;
}

void Machine::reportFault(const char *Rule, std::string Msg) {
  if (Raced)
    return; // First fault wins; the scheduler stops at the next step.
  Raced = true;
  FaultRule = Rule;
  RaceMsg = std::move(Msg);
}

void Machine::reportRace(unsigned T, Loc L, const char *What) {
  reportFault("RACE", "data race: thread " + std::to_string(T) + " " +
                          What + " on '" + Mem.cell(L).Name +
                          "' without having observed all writes to it");
}

void Machine::checkNotFreed(unsigned T, Loc L, const char *What) {
  const Cell &C = Mem.cell(L);
  if (C.Life == CellLife::Freed)
    reportFault("USE_AFTER_RETIRE",
                "use after retire: thread " + std::to_string(T) + " " +
                    What + " on '" + C.Name +
                    "', which was retired and freed before the access");
}

void Machine::traceOp(unsigned T, const std::string &Line) {
  if (Tracing)
    Trace.push_back("T" + std::to_string(T) + ": " + Line);
}

void Machine::applyRead(ThreadState &TS, Loc L, const Message &M,
                        MemOrder O) {
  // Every atomic read raises the per-location component of cur and folds
  // the message into acq; acquire reads fold it into cur as well
  // (ACQ-READ, Section 2.3).
  TS.Cur.Phys.raise(L, M.Ts);
  TS.Acq.Phys.raise(L, M.Ts);
  TS.Acq.joinWith(M.Know);
  if (isAcquire(O))
    TS.Cur.joinWith(M.Know);
  TS.HasRead = true;
  TS.LastReadLoc = L;
  TS.LastReadTs = M.Ts;
}

const Knowledge &Machine::relView(const ThreadState &TS, Loc L) {
  RelScratch = TS.RelFence; // Capacity-reusing copy into the scratch.
  if (const Knowledge *K = TS.findRel(L))
    RelScratch.joinWith(*K);
  return RelScratch;
}

Timestamp Machine::applyWrite(unsigned T, ThreadState &TS, Loc L, Value V,
                              Knowledge MsgK, bool Release) {
  const Message &M = Mem.append(L, V, std::move(MsgK), T);
  // The message's view includes the write itself (REL-WRITE's
  // `h[t ↦ (v, V')]` with `t ∈ V'`).
  Mem.cell(L).History.back().Know.Phys.raise(L, M.Ts);
  Timestamp Ts = M.Ts;
  TS.Cur.Phys.raise(L, Ts);
  TS.Acq.Phys.raise(L, Ts);
  if (Release)
    TS.relSlot(L) = Mem.cell(L).History.back().Know;
  return Ts;
}

Value Machine::load(unsigned T, Loc L, MemOrder O) {
  ++Counters.Loads;
  noteOp(L, Footprint::Kind::Read, O == MemOrder::SeqCst);
  ThreadState &TS = thread(T);
  const Cell &C = Mem.cell(L);
  checkNotFreed(T, L, "load");

  if (O == MemOrder::NonAtomic) {
    if (TS.Cur.Phys.get(L) != C.latestTs())
      reportRace(T, L, "non-atomic read");
    traceOp(T, "ld.na " + C.Name + " -> " +
                   std::to_string(C.latest().Val));
    return C.latest().Val;
  }

  if (O == MemOrder::SeqCst) {
    TS.Cur.Phys.joinWith(ScPhys);
    TS.Acq.Phys.joinWith(ScPhys);
  }

  Timestamp From = TS.Cur.Phys.get(L);
  unsigned N = Mem.countReadableFrom(L, From);
  unsigned Pick = N == 1 ? 0 : Choices.choose(N, "load");
  // Choice 0 reads the newest message; choice N-1 the oldest readable.
  const Message &M = C.History[C.latestTs() - Pick];
  applyRead(TS, L, M, O);
  if (O == MemOrder::SeqCst)
    ScPhys.joinWith(TS.Cur.Phys);
  traceOp(T, std::string("ld.") + memOrderName(O) + " " + C.Name + " -> " +
                 std::to_string(M.Val) + " @t" + std::to_string(M.Ts));
  return M.Val;
}

Value Machine::loadWhere(unsigned T, Loc L, MemOrder O,
                         const ValuePred &Pred) {
  ++Counters.Loads;
  noteOp(L, Footprint::Kind::Read, O == MemOrder::SeqCst);
  ThreadState &TS = thread(T);
  const Cell &C = Mem.cell(L);
  checkNotFreed(T, L, "conditional load");
  assert(O != MemOrder::NonAtomic && "conditional loads must be atomic");

  if (O == MemOrder::SeqCst) {
    TS.Cur.Phys.joinWith(ScPhys);
    TS.Acq.Phys.joinWith(ScPhys);
  }

  Timestamp From = TS.Cur.Phys.get(L);
  // Collect readable messages satisfying the predicate, newest first.
  SmallVec<Timestamp, 16> &Candidates = CandScratch;
  Candidates.clear();
  for (Timestamp Ts = C.latestTs() + 1; Ts-- > From;)
    if (Pred(C.History[Ts].Val))
      Candidates.push_back(Ts);
  if (Candidates.empty())
    fatalError("loadWhere: no readable message satisfies the predicate");
  unsigned Pick = Candidates.size() == 1
                      ? 0
                      : Choices.choose(
                            static_cast<unsigned>(Candidates.size()),
                            "load-where");
  const Message &M = C.History[Candidates[Pick]];
  applyRead(TS, L, M, O);
  if (O == MemOrder::SeqCst)
    ScPhys.joinWith(TS.Cur.Phys);
  traceOp(T, std::string("ld-wait.") + memOrderName(O) + " " + C.Name +
                 " -> " + std::to_string(M.Val) + " @t" +
                 std::to_string(M.Ts));
  return M.Val;
}

bool Machine::anyReadableSatisfies(unsigned T, Loc L,
                                   const ValuePred &Pred) const {
  const ThreadState &TS = thread(T);
  const Cell &C = Mem.cell(L);
  for (Timestamp Ts = TS.Cur.Phys.get(L); Ts <= C.latestTs(); ++Ts)
    if (Pred(C.History[Ts].Val))
      return true;
  return false;
}

void Machine::store(unsigned T, Loc L, Value V, MemOrder O) {
  ++Counters.Stores;
  noteOp(L, Footprint::Kind::Write, O == MemOrder::SeqCst);
  ThreadState &TS = thread(T);
  const Cell &C = Mem.cell(L);
  checkNotFreed(T, L, "store");

  if (O == MemOrder::NonAtomic) {
    if (TS.Cur.Phys.get(L) != C.latestTs())
      reportRace(T, L, "non-atomic write");
    // Non-atomic messages transfer no knowledge.
    applyWrite(T, TS, L, V, Knowledge(), /*Release=*/false);
    traceOp(T, "st.na " + C.Name + " := " + std::to_string(V));
    return;
  }

  bool Release = isRelease(O);
  Knowledge MsgK = Release ? TS.Cur : relView(TS, L);
  applyWrite(T, TS, L, V, std::move(MsgK), Release);
  if (O == MemOrder::SeqCst)
    ScPhys.joinWith(TS.Cur.Phys);
  traceOp(T, std::string("st.") + memOrderName(O) + " " + C.Name + " := " +
                 std::to_string(V));
}

Machine::CasResult Machine::cas(unsigned T, Loc L, Value Expected,
                                Value Desired, MemOrder SuccO,
                                MemOrder FailO) {
  ++Counters.Rmws;
  const bool Sc = SuccO == MemOrder::SeqCst || FailO == MemOrder::SeqCst;
  ThreadState &TS = thread(T);
  const Cell &C = Mem.cell(L);
  checkNotFreed(T, L, "compare-and-swap");
  assert(SuccO != MemOrder::NonAtomic && FailO != MemOrder::NonAtomic &&
         "CAS must be atomic");

  if (Sc) {
    TS.Cur.Phys.joinWith(ScPhys);
    TS.Acq.Phys.joinWith(ScPhys);
  }

  Timestamp From = TS.Cur.Phys.get(L);
  Timestamp Latest = C.latestTs();

  // Alternative 0 (when available): succeed against the mo-maximal message.
  // Remaining alternatives: fail by reading any readable message with a
  // different value, newest first. A readable non-maximal message carrying
  // the expected value is not a legal read for a strong CAS (atomicity
  // would be violated), so it is simply not offered.
  bool CanSucceed = C.latest().Val == Expected;
  SmallVec<Timestamp, 16> &FailTs = FailScratch;
  FailTs.clear();
  for (Timestamp Ts = Latest + 1; Ts-- > From;)
    if (C.History[Ts].Val != Expected)
      FailTs.push_back(Ts);

  unsigned NumAlternatives =
      (CanSucceed ? 1 : 0) + static_cast<unsigned>(FailTs.size());
  if (NumAlternatives == 0)
    fatalError("CAS has no legal read; history corrupt");
  unsigned Pick = NumAlternatives == 1
                      ? 0
                      : Choices.choose(NumAlternatives, "cas");

  if (CanSucceed && Pick == 0) {
    noteOp(L, Footprint::Kind::Update, Sc);
    const Message &R = C.latest();
    applyRead(TS, L, R, SuccO);
    // Release-sequence behaviour: the new message carries the read
    // message's view, so a chain of RMWs forwards earlier releases.
    Knowledge MsgK = R.Know;
    MsgK.joinWith(isRelease(SuccO) ? TS.Cur : relView(TS, L));
    applyWrite(T, TS, L, Desired, std::move(MsgK), isRelease(SuccO));
    if (SuccO == MemOrder::SeqCst)
      ScPhys.joinWith(TS.Cur.Phys);
    traceOp(T, std::string("cas.") + memOrderName(SuccO) + " " + C.Name +
                   " " + std::to_string(Expected) + " -> " +
                   std::to_string(Desired) + " ok");
    return {true, Expected};
  }

  // A failed CAS only reads.
  noteOp(L, Footprint::Kind::Read, Sc);
  const Message &R = C.History[FailTs[Pick - (CanSucceed ? 1 : 0)]];
  applyRead(TS, L, R, FailO);
  if (FailO == MemOrder::SeqCst)
    ScPhys.joinWith(TS.Cur.Phys);
  traceOp(T, std::string("cas.") + memOrderName(FailO) + " " + C.Name +
                 " exp " + std::to_string(Expected) + " saw " +
                 std::to_string(R.Val) + " fail");
  return {false, R.Val};
}

Value Machine::fetchAdd(unsigned T, Loc L, Value Add, MemOrder O) {
  ++Counters.Rmws;
  noteOp(L, Footprint::Kind::Update, O == MemOrder::SeqCst);
  ThreadState &TS = thread(T);
  const Cell &C = Mem.cell(L);
  checkNotFreed(T, L, "fetch-add");
  assert(O != MemOrder::NonAtomic && "RMW must be atomic");

  if (O == MemOrder::SeqCst) {
    TS.Cur.Phys.joinWith(ScPhys);
    TS.Acq.Phys.joinWith(ScPhys);
  }

  // An RMW reads the mo-maximal message (DESIGN.md Section 4).
  const Message &R = C.latest();
  Value Old = R.Val;
  applyRead(TS, L, R, O);
  Knowledge MsgK = R.Know;
  MsgK.joinWith(isRelease(O) ? TS.Cur : relView(TS, L));
  applyWrite(T, TS, L, Old + Add, std::move(MsgK), isRelease(O));
  if (O == MemOrder::SeqCst)
    ScPhys.joinWith(TS.Cur.Phys);
  traceOp(T, std::string("faa.") + memOrderName(O) + " " + C.Name + " " +
                 std::to_string(Old) + " += " + std::to_string(Add));
  return Old;
}

void Machine::fence(unsigned T, MemOrder O) {
  ++Counters.Fences;
  noteOp(0, Footprint::Kind::Fence, O == MemOrder::SeqCst);
  ThreadState &TS = thread(T);
  switch (O) {
  case MemOrder::Acquire:
    TS.Cur.joinWith(TS.Acq);
    break;
  case MemOrder::Release:
    TS.RelFence = TS.Cur;
    break;
  case MemOrder::AcqRel:
    TS.Cur.joinWith(TS.Acq);
    TS.RelFence = TS.Cur;
    break;
  case MemOrder::SeqCst:
    TS.Cur.joinWith(TS.Acq);
    TS.Cur.Phys.joinWith(ScPhys);
    TS.Acq.Phys.joinWith(ScPhys);
    ScPhys = TS.Cur.Phys;
    TS.RelFence = TS.Cur;
    break;
  default:
    fatalError("invalid fence order");
  }
  traceOp(T, std::string("fence.") + memOrderName(O));
}

void Machine::pinEnter(unsigned T) {
  noteOp(0, Footprint::Kind::Reclaim, /*Sc=*/false);
  ThreadState &TS = thread(T);
  if (TS.Pinned)
    fatalError("pinEnter: thread already pinned");
  TS.Pinned = true;
  ++TS.PinSession;
  traceOp(T, "ebr.pin #" + std::to_string(TS.PinSession));
}

void Machine::pinExit(unsigned T) {
  noteOp(0, Footprint::Kind::Reclaim, /*Sc=*/false);
  ThreadState &TS = thread(T);
  if (!TS.Pinned)
    fatalError("pinExit: thread not pinned");
  TS.Pinned = false;
  traceOp(T, "ebr.unpin #" + std::to_string(TS.PinSession));
}

void Machine::retire(unsigned T, Loc L, unsigned Count) {
  noteOp(L, Footprint::Kind::Reclaim, /*Sc=*/false);
  for (unsigned I = 0; I != Count; ++I) {
    Cell &C = Mem.cell(L + I);
    if (C.Life != CellLife::Live)
      fatalError("retire: cell retired twice");
    C.Life = CellLife::Retired;
    C.RetirePins.clear();
    for (size_t P = 0; P != LiveThreads; ++P)
      if (Threads[P].Pinned)
        C.RetirePins.push_back(
            {static_cast<unsigned>(P), Threads[P].PinSession});
  }
  traceOp(T, "ebr.retire " + Mem.cell(L).Name + "×" +
                 std::to_string(Count));
}

void Machine::freeCells(unsigned T, Loc L, unsigned Count) {
  noteOp(L, Footprint::Kind::Free, /*Sc=*/false);
  for (unsigned I = 0; I != Count; ++I) {
    Cell &C = Mem.cell(L + I);
    if (C.Life != CellLife::Retired)
      fatalError("freeCells: cell not retired (double free or free of a "
                 "live cell)");
    for (const PinRef &P : C.RetirePins)
      if (Threads[P.Tid].Pinned && Threads[P.Tid].PinSession == P.Session) {
        reportFault("PREMATURE_FREE",
                    "premature free: thread " + std::to_string(T) +
                        " frees '" + C.Name + "' while thread " +
                        std::to_string(P.Tid) +
                        " is still pinned in the critical section that "
                        "overlapped the retire");
        break;
      }
    C.Life = CellLife::Freed;
  }
  traceOp(T, "ebr.free " + Mem.cell(L).Name + "×" + std::to_string(Count));
}
