//===-- rmc/Machine.cpp - Operational RC11 view machine -------------------===//

#include "rmc/Machine.h"

#include "support/Error.h"

#include <cassert>

using namespace compass;
using namespace compass::rmc;

// Trace lines are assembled from std::string temporaries; guard every call
// site so the untraced hot path (the explorer runs millions of executions
// with tracing off) never materializes them.
#define COMPASS_TRACE(T, Expr)                                                 \
  do {                                                                         \
    if (Tracing)                                                               \
      traceOp((T), (Expr));                                                    \
  } while (0)

Knowledge &Machine::ThreadState::relSlot(Loc L) {
  for (size_t I = 0; I != RelLive; ++I)
    if (Rel[I].L == L)
      return Rel[I].K;
  if (RelLive < Rel.size()) {
    // Recycle a retained entry (keeps its Knowledge capacity).
    Rel[RelLive].L = L;
    Rel[RelLive].K.clear();
  } else {
    Rel.push_back(RelEntry{L, Knowledge()});
  }
  return Rel[RelLive++].K;
}

void Machine::ThreadState::clear() {
  Cur.clear();
  Acq.clear();
  RelFence.clear();
  RelLive = 0;
  HasRead = false;
  LastReadLoc = 0;
  LastReadTs = 0;
  Pinned = false;
  PinSession = 0;
}

unsigned Machine::addThread() {
  if (LiveThreads < Threads.size())
    Threads[LiveThreads].clear();
  else
    Threads.emplace_back();
  return static_cast<unsigned>(LiveThreads++);
}

void Machine::reset() {
  Mem.reset();
  LiveThreads = 0;
  ScPhys.clear();
  Raced = false;
  RaceMsg.clear();
  FaultRule = "RACE";
  Trace.clear();
  LastFp = Footprint();
  Replaying = false;
  ReadTsLog.clear();
  ReadTsCursor = 0;
  ReadKnowLog.clear();
  ReadKnowCursor = 0;
  ReserveSeq = 0;
  RfFloorOn = false;
  RfFloorEmpty = false;
  // Counters and OpSeqN are monotonic across resets by design; Tracing and
  // DupDetectOn are sticky (their enablers re-assert them per run).
}

//===----------------------------------------------------------------------===//
// Copy-on-write support
//===----------------------------------------------------------------------===//

void Machine::beginReplay() {
  Replaying = true;
  ReadTsCursor = 0;
  ReadKnowCursor = 0;
  ReserveSeq = 0;
  Mem.beginReplayAlloc();
  // Threads re-register densely during Setup; their retained states are
  // garbage until restoreSnapshot overwrites them.
  LiveThreads = 0;
}

void Machine::endReplay(const AuxMark &Boundary) {
  if (ReadTsCursor != Boundary.ReadTs ||
      ReadKnowCursor != Boundary.ReadKnow ||
      ReserveSeq != Boundary.Reserves)
    fatalError("copy-on-write fast-forward diverged: last-read query "
               "journals out of sync with the snapshot boundary");
  ReadTsLog.resize(Boundary.ReadTs);
  ReadKnowLog.resize(Boundary.ReadKnow);
  Replaying = false;
  Mem.setReplayAlloc(false);
}

void Machine::saveSnapshot(Snap &S, unsigned FixTid, const View *FixCur,
                           const View *FixAcq) const {
  S.LiveThreads = LiveThreads;
  if (S.Threads.size() < LiveThreads)
    S.Threads.resize(LiveThreads);
  for (size_t T = 0; T != LiveThreads; ++T) {
    const ThreadState &TS = Threads[T];
    ThreadSnap &Out = S.Threads[T];
    Out.Cur = TS.Cur;
    Out.Acq = TS.Acq;
    Out.RelFence = TS.RelFence;
    if (Out.Rel.size() < TS.RelLive)
      Out.Rel.resize(TS.RelLive);
    for (size_t I = 0; I != TS.RelLive; ++I) {
      Out.Rel[I].first = TS.Rel[I].L;
      Out.Rel[I].second = TS.Rel[I].K;
    }
    Out.RelLive = TS.RelLive;
    Out.HasRead = TS.HasRead;
    Out.LastReadLoc = TS.LastReadLoc;
    Out.LastReadTs = TS.LastReadTs;
    Out.Pinned = TS.Pinned;
    Out.PinSession = TS.PinSession;
    if (T == FixTid) {
      // Mid-operation snapshot: undo this step's SC pre-join (the only
      // pre-choice mutation) so the snapshot is boundary-exact.
      if (FixCur)
        Out.Cur.Phys = *FixCur;
      if (FixAcq)
        Out.Acq.Phys = *FixAcq;
    }
  }
  S.ScPhys = ScPhys;
  S.MemEpoch = Mem.epoch();
  S.Aux = auxMark();
}

void Machine::restoreSnapshot(const Snap &S) {
  if (LiveThreads != S.LiveThreads)
    fatalError("copy-on-write restore: thread count diverged from snapshot");
  for (size_t T = 0; T != LiveThreads; ++T) {
    const ThreadSnap &In = S.Threads[T];
    ThreadState &TS = Threads[T];
    TS.Cur = In.Cur;
    TS.Acq = In.Acq;
    TS.RelFence = In.RelFence;
    if (TS.Rel.size() < In.RelLive)
      TS.Rel.resize(In.RelLive);
    for (size_t I = 0; I != In.RelLive; ++I) {
      TS.Rel[I].L = In.Rel[I].first;
      TS.Rel[I].K = In.Rel[I].second;
    }
    TS.RelLive = In.RelLive;
    TS.HasRead = In.HasRead;
    TS.LastReadLoc = In.LastReadLoc;
    TS.LastReadTs = In.LastReadTs;
    TS.Pinned = In.Pinned;
    TS.PinSession = In.PinSession;
  }
  ScPhys = S.ScPhys;
  // A snapshot boundary is a step the execution passed without a pending
  // fault, so fault state restores to the constant no-fault value.
  Raced = false;
  RaceMsg.clear();
  FaultRule = "RACE";
}

Machine::ThreadState &Machine::thread(unsigned T) {
  if (T >= LiveThreads)
    fatalError("unknown thread id");
  return Threads[T];
}

const Machine::ThreadState &Machine::thread(unsigned T) const {
  if (T >= LiveThreads)
    fatalError("unknown thread id");
  return Threads[T];
}

Knowledge &Machine::threadCur(unsigned T) { return thread(T).Cur; }

const Knowledge &Machine::threadCur(unsigned T) const {
  return thread(T).Cur;
}

Knowledge &Machine::threadAcq(unsigned T) { return thread(T).Acq; }

const Knowledge &Machine::lastReadKnowledge(unsigned T) const {
  if (Replaying) {
    if (ReadKnowCursor >= ReadKnowLog.size())
      fatalError("lastReadKnowledge journal underrun during fast-forward");
    auto [L, Ts] = ReadKnowLog[ReadKnowCursor++];
    // The prefix's messages are still in memory (replay-alloc preserves
    // histories), so the journaled coordinates resolve to the same view.
    return Mem.cell(L).know(Ts);
  }
  const ThreadState &TS = thread(T);
  if (!TS.HasRead)
    fatalError("lastReadKnowledge: thread has not performed a read");
  ReadKnowLog.push_back({TS.LastReadLoc, TS.LastReadTs});
  return Mem.cell(TS.LastReadLoc).know(TS.LastReadTs);
}

Timestamp Machine::lastReadTs(unsigned T) const {
  if (Replaying) {
    if (ReadTsCursor >= ReadTsLog.size())
      fatalError("lastReadTs journal underrun during fast-forward");
    return ReadTsLog[ReadTsCursor++];
  }
  const ThreadState &TS = thread(T);
  if (!TS.HasRead)
    fatalError("lastReadTs: thread has not performed a read");
  ReadTsLog.push_back(TS.LastReadTs);
  return TS.LastReadTs;
}

void Machine::reportFault(const char *Rule, std::string Msg) {
  if (Raced)
    return; // First fault wins; the scheduler stops at the next step.
  Raced = true;
  FaultRule = Rule;
  RaceMsg = std::move(Msg);
}

void Machine::reportRace(unsigned T, Loc L, const char *What) {
  reportFault("RACE", "data race: thread " + std::to_string(T) + " " +
                          What + " on '" + Mem.cellName(L) +
                          "' without having observed all writes to it");
}

void Machine::checkNotFreed(unsigned T, Loc L, const char *What) {
  const Cell &C = Mem.cell(L);
  if (C.Life == CellLife::Freed)
    reportFault("USE_AFTER_RETIRE",
                "use after retire: thread " + std::to_string(T) + " " +
                    What + " on '" + Mem.cellName(L) +
                    "', which was retired and freed before the access");
}

void Machine::traceOp(unsigned T, const std::string &Line) {
  Trace.push_back("T" + std::to_string(T) + ": " + Line);
}

void Machine::applyRead(ThreadState &TS, Loc L, const Cell &C,
                        Timestamp Ts, MemOrder O) {
  // Every atomic read raises the per-location component of cur and folds
  // the message into acq; acquire reads fold it into cur as well
  // (ACQ-READ, Section 2.3).
  TS.Cur.Phys.raise(L, Ts);
  TS.Acq.Phys.raise(L, Ts);
  TS.Acq.joinWith(C.know(Ts));
  if (isAcquire(O))
    TS.Cur.joinWith(C.know(Ts));
  TS.HasRead = true;
  TS.LastReadLoc = L;
  TS.LastReadTs = Ts;
}

const Knowledge &Machine::relView(const ThreadState &TS, Loc L) {
  RelScratch = TS.RelFence; // Capacity-reusing copy into the scratch.
  if (const Knowledge *K = TS.findRel(L))
    RelScratch.joinWith(*K);
  return RelScratch;
}

Timestamp Machine::applyWrite(unsigned T, ThreadState &TS, Loc L, Value V,
                              Knowledge MsgK, bool Release) {
  Timestamp Ts = Mem.append(L, V, MsgK, T);
  // The message's view includes the write itself (REL-WRITE's
  // `h[t ↦ (v, V')]` with `t ∈ V'`).
  Knowledge &K = Mem.knowRef(L, Ts);
  K.Phys.raise(L, Ts);
  TS.Cur.Phys.raise(L, Ts);
  TS.Acq.Phys.raise(L, Ts);
  if (Release)
    TS.relSlot(L) = K;
  return Ts;
}

// Reads-from duplicate equivalence (see Machine::enableDupDetect): two
// messages are interchangeable when they carry the same value and the same
// knowledge — every future read of one bisimulates a read of the other, so
// verdicts cannot depend on which was read (the only residual difference,
// the reader's per-location view component, only selects between more
// equal-message reads; both stay strictly below the mo-maximum, so the
// non-atomic race check is unaffected).
static bool knowledgeEqual(const Knowledge &A, const Knowledge &B) {
  return A.includedIn(B) && B.includedIn(A);
}

Value Machine::load(unsigned T, Loc L, MemOrder O) {
  ++Counters.Loads;
  noteOp(L, Footprint::Kind::Read, O == MemOrder::SeqCst,
         O != MemOrder::NonAtomic);
  ThreadState &TS = thread(T);
  const Cell &C = Mem.cell(L);
  checkNotFreed(T, L, "load");

  if (O == MemOrder::NonAtomic) {
    if (TS.Cur.Phys.get(L) != C.latestTs())
      reportRace(T, L, "non-atomic read");
    COMPASS_TRACE(T, "ld.na " + Mem.cellName(L) + " -> " +
                         std::to_string(C.latestVal()));
    return C.latestVal();
  }

  if (ScratchOn) {
    // Boundary scratch for a mid-operation snapshot (see Machine.h): the
    // SC pre-join below is the only pre-choice thread-view mutation.
    PickCurScratch = TS.Cur.Phys;
    PickAcqScratch = TS.Acq.Phys;
  }
  if (O == MemOrder::SeqCst) {
    TS.Cur.Phys.joinWith(ScPhys);
    TS.Acq.Phys.joinWith(ScPhys);
  }

  Timestamp From = TS.Cur.Phys.get(L);
  const unsigned NFull = Mem.countReadableFrom(L, From);
  unsigned N = NFull;
  // A pending reads-from floor (source-set restricted re-run) cuts the old
  // tail of the newest-first choice set; the restricted set is non-empty
  // by construction (the floor is only installed when newer messages
  // exist) and a prefix of the unrestricted enumeration. The decision is
  // still recorded at the *unrestricted* arity, with the restricted count
  // as its enumeration limit — so the trace replays unchanged through a
  // reduction-free re-run, which sees the full choice set here.
  if (const uint32_t Floor = takeRfFloor(L))
    if (static_cast<Timestamp>(Floor) > From)
      N = Mem.countReadableFrom(L, static_cast<Timestamp>(Floor));
  if (DupDetectOn && N > 2) {
    // Bit k: alternative k's message duplicates alternative k-1's. Both
    // must sit strictly below the mo-maximum (k-1 >= 1, hence k >= 2).
    uint64_t Mask = 0;
    for (unsigned K = 2; K < N && K < 64; ++K) {
      const Timestamp A = C.latestTs() - K;
      const Timestamp B = C.latestTs() - (K - 1);
      if (C.val(A) == C.val(B) && knowledgeEqual(C.know(A), C.know(B)))
        Mask |= uint64_t{1} << K;
    }
    if (Mask)
      Choices.noteChoiceDup(Mask);
  }
  unsigned Pick = NFull == 1 ? 0
                  : N < NFull ? Choices.chooseLimited(NFull, N, "load")
                              : Choices.choose(NFull, "load");
  // Choice 0 reads the newest message; choice N-1 the oldest readable.
  Timestamp Ts = C.latestTs() - Pick;
  applyRead(TS, L, C, Ts, O);
  if (O == MemOrder::SeqCst)
    ScPhys.joinWith(TS.Cur.Phys);
  COMPASS_TRACE(T, std::string("ld.") + memOrderName(O) + " " +
                       Mem.cellName(L) + " -> " +
                       std::to_string(C.val(Ts)) + " @t" +
                       std::to_string(Ts));
  return C.val(Ts);
}

Value Machine::loadWhere(unsigned T, Loc L, MemOrder O,
                         const ValuePred &Pred) {
  ++Counters.Loads;
  noteOp(L, Footprint::Kind::Read, O == MemOrder::SeqCst,
         O != MemOrder::NonAtomic);
  ThreadState &TS = thread(T);
  const Cell &C = Mem.cell(L);
  checkNotFreed(T, L, "conditional load");
  assert(O != MemOrder::NonAtomic && "conditional loads must be atomic");

  if (ScratchOn) {
    PickCurScratch = TS.Cur.Phys;
    PickAcqScratch = TS.Acq.Phys;
  }
  if (O == MemOrder::SeqCst) {
    TS.Cur.Phys.joinWith(ScPhys);
    TS.Acq.Phys.joinWith(ScPhys);
  }

  Timestamp From = TS.Cur.Phys.get(L);
  // Collect readable messages satisfying the predicate, newest first.
  SmallVec<Timestamp, 16> &Candidates = CandScratch;
  Candidates.clear();
  for (Timestamp Ts = C.latestTs() + 1; Ts-- > From;)
    if (Pred(C.val(Ts)))
      Candidates.push_back(Ts);
  if (Candidates.empty())
    fatalError("loadWhere: no readable message satisfies the predicate");
  // A pending reads-from floor keeps only the candidates at or past it — a
  // prefix of the newest-first enumeration, so the choice is recorded at
  // the unrestricted arity with the restricted count as its enumeration
  // limit (replay-compatible with a reduction-free re-run). Unlike a plain
  // load the restricted set can be empty (no *new* message satisfies the
  // predicate): the step then reads the newest unrestricted candidate
  // without recording a choice — the execution is already fully covered
  // and the scheduler abandons it as RfPruned right after the step, so no
  // trace of it survives to be replayed.
  const unsigned NumFull = static_cast<unsigned>(Candidates.size());
  unsigned NumChoices = NumFull;
  bool RestrictedEmpty = false;
  if (const uint32_t Floor = takeRfFloor(L)) {
    unsigned Kept = 0;
    while (Kept != NumChoices &&
           Candidates[Kept] >= static_cast<Timestamp>(Floor))
      ++Kept;
    if (Kept == 0) {
      RestrictedEmpty = true;
      RfFloorEmpty = true;
    } else {
      NumChoices = Kept;
    }
  }
  unsigned Pick = 0;
  if (!RestrictedEmpty) {
    if (DupDetectOn && NumChoices > 1) {
      // Bit k: candidate k duplicates candidate k-1 — value- and
      // knowledge-equal is not enough here, the two must also be
      // timestamp-adjacent (an intervening non-satisfying message would
      // sit between the reader's view positions) and strictly below the
      // mo-maximum.
      uint64_t Mask = 0;
      for (unsigned K = 1; K < NumChoices && K < 64; ++K) {
        const Timestamp A = Candidates[K];
        const Timestamp B = Candidates[K - 1];
        if (A + 1 == B && B < C.latestTs() && C.val(A) == C.val(B) &&
            knowledgeEqual(C.know(A), C.know(B)))
          Mask |= uint64_t{1} << K;
      }
      if (Mask)
        Choices.noteChoiceDup(Mask);
    }
    if (NumFull > 1)
      Pick = NumChoices < NumFull
                 ? Choices.chooseLimited(NumFull, NumChoices, "load-where")
                 : Choices.choose(NumFull, "load-where");
  }
  Timestamp Ts = Candidates[Pick];
  applyRead(TS, L, C, Ts, O);
  if (O == MemOrder::SeqCst)
    ScPhys.joinWith(TS.Cur.Phys);
  COMPASS_TRACE(T, std::string("ld-wait.") + memOrderName(O) + " " +
                       Mem.cellName(L) + " -> " +
                       std::to_string(C.val(Ts)) + " @t" +
                       std::to_string(Ts));
  return C.val(Ts);
}

bool Machine::anyReadableSatisfies(unsigned T, Loc L,
                                   const ValuePred &Pred) const {
  const ThreadState &TS = thread(T);
  const Cell &C = Mem.cell(L);
  for (Timestamp Ts = TS.Cur.Phys.get(L); Ts <= C.latestTs(); ++Ts)
    if (Pred(C.val(Ts)))
      return true;
  return false;
}

void Machine::store(unsigned T, Loc L, Value V, MemOrder O) {
  ++Counters.Stores;
  noteOp(L, Footprint::Kind::Write, O == MemOrder::SeqCst,
         O != MemOrder::NonAtomic);
  ThreadState &TS = thread(T);
  const Cell &C = Mem.cell(L);
  checkNotFreed(T, L, "store");

  if (O == MemOrder::NonAtomic) {
    if (TS.Cur.Phys.get(L) != C.latestTs())
      reportRace(T, L, "non-atomic write");
    // Non-atomic messages transfer no knowledge.
    applyWrite(T, TS, L, V, Knowledge(), /*Release=*/false);
    COMPASS_TRACE(T, "st.na " + Mem.cellName(L) + " := " +
                         std::to_string(V));
    return;
  }

  bool Release = isRelease(O);
  Knowledge MsgK = Release ? TS.Cur : relView(TS, L);
  applyWrite(T, TS, L, V, std::move(MsgK), Release);
  if (O == MemOrder::SeqCst)
    ScPhys.joinWith(TS.Cur.Phys);
  COMPASS_TRACE(T, std::string("st.") + memOrderName(O) + " " +
                       Mem.cellName(L) + " := " + std::to_string(V));
}

Machine::CasResult Machine::cas(unsigned T, Loc L, Value Expected,
                                Value Desired, MemOrder SuccO,
                                MemOrder FailO) {
  ++Counters.Rmws;
  const bool Sc = SuccO == MemOrder::SeqCst || FailO == MemOrder::SeqCst;
  ThreadState &TS = thread(T);
  const Cell &C = Mem.cell(L);
  checkNotFreed(T, L, "compare-and-swap");
  assert(SuccO != MemOrder::NonAtomic && FailO != MemOrder::NonAtomic &&
         "CAS must be atomic");

  if (ScratchOn) {
    PickCurScratch = TS.Cur.Phys;
    PickAcqScratch = TS.Acq.Phys;
  }
  if (Sc) {
    TS.Cur.Phys.joinWith(ScPhys);
    TS.Acq.Phys.joinWith(ScPhys);
  }

  Timestamp From = TS.Cur.Phys.get(L);
  Timestamp Latest = C.latestTs();

  // Alternative 0 (when available): succeed against the mo-maximal message.
  // Remaining alternatives: fail by reading any readable message with a
  // different value, newest first. A readable non-maximal message carrying
  // the expected value is not a legal read for a strong CAS (atomicity
  // would be violated), so it is simply not offered.
  bool CanSucceed = C.latestVal() == Expected;
  SmallVec<Timestamp, 16> &FailTs = FailScratch;
  FailTs.clear();
  for (Timestamp Ts = Latest + 1; Ts-- > From;)
    if (C.val(Ts) != Expected)
      FailTs.push_back(Ts);

  const unsigned NumFailsFull = static_cast<unsigned>(FailTs.size());
  unsigned NumFails = NumFailsFull;
  // A pending reads-from floor cuts the old tail of the newest-first fail
  // reads (the success alternative reads the mo-maximum, which is always
  // at or past the floor); as with loads, the choice is recorded at the
  // unrestricted arity with the restricted count as its enumeration limit
  // so replay stays decision-compatible. Never empty: either the
  // mo-maximum carries the expected value (success is offered) or it is
  // itself a fail candidate at or past the floor.
  if (const uint32_t Floor = takeRfFloor(L)) {
    unsigned Kept = 0;
    while (Kept != NumFails &&
           FailTs[Kept] >= static_cast<Timestamp>(Floor))
      ++Kept;
    NumFails = Kept;
  }

  const unsigned NumAllFull = (CanSucceed ? 1 : 0) + NumFailsFull;
  unsigned NumAlternatives = (CanSucceed ? 1 : 0) + NumFails;
  if (NumAlternatives == 0)
    fatalError("CAS has no legal read; history corrupt");
  if (DupDetectOn && NumFails > 1) {
    // Bit k (as an overall-alternative index): fail read k duplicates fail
    // read k-1 — timestamp-adjacent, value- and knowledge-equal, and the
    // newer of the two strictly below the mo-maximum.
    const unsigned Base = CanSucceed ? 1 : 0;
    uint64_t Mask = 0;
    for (unsigned K = 1; K < NumFails && Base + K < 64; ++K) {
      const Timestamp A = FailTs[K];
      const Timestamp B = FailTs[K - 1];
      if (A + 1 == B && B < Latest && C.val(A) == C.val(B) &&
          knowledgeEqual(C.know(A), C.know(B)))
        Mask |= uint64_t{1} << (Base + K);
    }
    if (Mask)
      Choices.noteChoiceDup(Mask);
  }
  unsigned Pick =
      NumAllFull == 1 ? 0
      : NumAlternatives < NumAllFull
          ? Choices.chooseLimited(NumAllFull, NumAlternatives, "cas")
          : Choices.choose(NumAllFull, "cas");

  if (CanSucceed && Pick == 0) {
    noteOp(L, Footprint::Kind::Update, Sc, /*Atomic=*/true);
    applyRead(TS, L, C, Latest, SuccO);
    // Release-sequence behaviour: the new message carries the read
    // message's view, so a chain of RMWs forwards earlier releases.
    Knowledge MsgK = C.know(Latest);
    MsgK.joinWith(isRelease(SuccO) ? TS.Cur : relView(TS, L));
    applyWrite(T, TS, L, Desired, std::move(MsgK), isRelease(SuccO));
    if (SuccO == MemOrder::SeqCst)
      ScPhys.joinWith(TS.Cur.Phys);
    COMPASS_TRACE(T, std::string("cas.") + memOrderName(SuccO) + " " +
                         Mem.cellName(L) + " " + std::to_string(Expected) +
                         " -> " + std::to_string(Desired) + " ok");
    return {true, Expected};
  }

  // A failed CAS only reads.
  noteOp(L, Footprint::Kind::Read, Sc, /*Atomic=*/true);
  Timestamp RTs = FailTs[Pick - (CanSucceed ? 1 : 0)];
  applyRead(TS, L, C, RTs, FailO);
  if (FailO == MemOrder::SeqCst)
    ScPhys.joinWith(TS.Cur.Phys);
  COMPASS_TRACE(T, std::string("cas.") + memOrderName(FailO) + " " +
                       Mem.cellName(L) + " exp " +
                       std::to_string(Expected) + " saw " +
                       std::to_string(C.val(RTs)) + " fail");
  return {false, C.val(RTs)};
}

Value Machine::fetchAdd(unsigned T, Loc L, Value Add, MemOrder O) {
  ++Counters.Rmws;
  noteOp(L, Footprint::Kind::Update, O == MemOrder::SeqCst,
         /*Atomic=*/true);
  ThreadState &TS = thread(T);
  const Cell &C = Mem.cell(L);
  checkNotFreed(T, L, "fetch-add");
  assert(O != MemOrder::NonAtomic && "RMW must be atomic");
  // A fetch-add has no reads-from choice (it reads the mo-maximum, which
  // is always at or past any pending floor); just consume the floor.
  (void)takeRfFloor(L);

  if (O == MemOrder::SeqCst) {
    TS.Cur.Phys.joinWith(ScPhys);
    TS.Acq.Phys.joinWith(ScPhys);
  }

  // An RMW reads the mo-maximal message (DESIGN.md Section 4).
  Timestamp RTs = C.latestTs();
  Value Old = C.val(RTs);
  applyRead(TS, L, C, RTs, O);
  Knowledge MsgK = C.know(RTs);
  MsgK.joinWith(isRelease(O) ? TS.Cur : relView(TS, L));
  applyWrite(T, TS, L, Old + Add, std::move(MsgK), isRelease(O));
  if (O == MemOrder::SeqCst)
    ScPhys.joinWith(TS.Cur.Phys);
  COMPASS_TRACE(T, std::string("faa.") + memOrderName(O) + " " +
                       Mem.cellName(L) + " " + std::to_string(Old) +
                       " += " + std::to_string(Add));
  return Old;
}

void Machine::fence(unsigned T, MemOrder O) {
  ++Counters.Fences;
  noteOp(0, Footprint::Kind::Fence, O == MemOrder::SeqCst);
  ThreadState &TS = thread(T);
  switch (O) {
  case MemOrder::Acquire:
    TS.Cur.joinWith(TS.Acq);
    break;
  case MemOrder::Release:
    TS.RelFence = TS.Cur;
    break;
  case MemOrder::AcqRel:
    TS.Cur.joinWith(TS.Acq);
    TS.RelFence = TS.Cur;
    break;
  case MemOrder::SeqCst:
    TS.Cur.joinWith(TS.Acq);
    TS.Cur.Phys.joinWith(ScPhys);
    TS.Acq.Phys.joinWith(ScPhys);
    ScPhys = TS.Cur.Phys;
    TS.RelFence = TS.Cur;
    break;
  default:
    fatalError("invalid fence order");
  }
  COMPASS_TRACE(T, std::string("fence.") + memOrderName(O));
}

void Machine::pinEnter(unsigned T) {
  noteOp(0, Footprint::Kind::Reclaim, /*Sc=*/false);
  ThreadState &TS = thread(T);
  if (TS.Pinned)
    fatalError("pinEnter: thread already pinned");
  TS.Pinned = true;
  ++TS.PinSession;
  COMPASS_TRACE(T, "ebr.pin #" + std::to_string(TS.PinSession));
}

void Machine::pinExit(unsigned T) {
  noteOp(0, Footprint::Kind::Reclaim, /*Sc=*/false);
  ThreadState &TS = thread(T);
  if (!TS.Pinned)
    fatalError("pinExit: thread not pinned");
  TS.Pinned = false;
  COMPASS_TRACE(T, "ebr.unpin #" + std::to_string(TS.PinSession));
}

void Machine::retire(unsigned T, Loc L, unsigned Count) {
  noteOp(L, Footprint::Kind::Reclaim, /*Sc=*/false);
  for (unsigned I = 0; I != Count; ++I) {
    Cell &C = Mem.cell(L + I);
    if (C.Life != CellLife::Live)
      fatalError("retire: cell retired twice");
    Mem.setLife(L + I, CellLife::Retired); // Logs prev life + pins.
    C.RetirePins.clear();
    for (size_t P = 0; P != LiveThreads; ++P)
      if (Threads[P].Pinned)
        C.RetirePins.push_back(
            {static_cast<unsigned>(P), Threads[P].PinSession});
  }
  COMPASS_TRACE(T, "ebr.retire " + Mem.cellName(L) + "×" +
                       std::to_string(Count));
}

void Machine::freeCells(unsigned T, Loc L, unsigned Count) {
  noteOp(L, Footprint::Kind::Free, /*Sc=*/false);
  for (unsigned I = 0; I != Count; ++I) {
    Cell &C = Mem.cell(L + I);
    if (C.Life != CellLife::Retired)
      fatalError("freeCells: cell not retired (double free or free of a "
                 "live cell)");
    for (const PinRef &P : C.RetirePins)
      if (Threads[P.Tid].Pinned && Threads[P.Tid].PinSession == P.Session) {
        reportFault("PREMATURE_FREE",
                    "premature free: thread " + std::to_string(T) +
                        " frees '" + Mem.cellName(L + I) +
                        "' while thread " + std::to_string(P.Tid) +
                        " is still pinned in the critical section that "
                        "overlapped the retire");
        break;
      }
    Mem.setLife(L + I, CellLife::Freed);
  }
  COMPASS_TRACE(T, "ebr.free " + Mem.cellName(L) + "×" +
                       std::to_string(Count));
}
