//===-- rmc/Memory.cpp - Per-location write histories ---------------------===//

#include "rmc/Memory.h"

#include "support/Error.h"

#include <cassert>

using namespace compass;
using namespace compass::rmc;

Loc Memory::alloc(std::string Name, unsigned Count, Value Init) {
  assert(Count >= 1 && "allocating zero cells");
  Loc Base = static_cast<Loc>(Live);
  for (unsigned I = 0; I != Count; ++I) {
    std::string N = Count == 1 ? Name : Name + "+" + std::to_string(I);
    if (Live < Cells.size()) {
      // Reuse a retained cell from an earlier execution: reset the history
      // to the single initial message in place. Allocation order replays
      // deterministically per decision path, so the retained name usually
      // matches and the compare avoids a string assignment.
      Cell &C = Cells[Live];
      if (C.Name != N)
        C.Name = N;
      C.Life = CellLife::Live;
      C.RetirePins.clear();
      C.History.resize(1);
      Message &M0 = C.History.front();
      M0.Ts = 0;
      M0.Val = Init;
      M0.Know.clear();
      M0.Writer = ~0u;
    } else {
      Cell C;
      C.Name = std::move(N);
      Message Init0;
      Init0.Ts = 0;
      Init0.Val = Init;
      C.History.push_back(std::move(Init0));
      Cells.push_back(std::move(C));
    }
    ++Live;
  }
  return Base;
}

const Cell &Memory::cell(Loc L) const {
  if (L >= Live)
    fatalError("memory access to unallocated location");
  return Cells[L];
}

Cell &Memory::cell(Loc L) {
  if (L >= Live)
    fatalError("memory access to unallocated location");
  return Cells[L];
}

const Message &Memory::append(Loc L, Value V, Knowledge Know,
                              unsigned Writer) {
  Cell &C = cell(L);
  Message M;
  M.Ts = C.latestTs() + 1;
  M.Val = V;
  M.Know = std::move(Know);
  M.Writer = Writer;
  C.History.push_back(std::move(M));
  return C.History.back();
}

unsigned Memory::countReadableFrom(Loc L, Timestamp From) const {
  const Cell &C = cell(L);
  Timestamp Latest = C.latestTs();
  assert(From <= Latest && "thread view ahead of the history");
  return Latest - From + 1;
}
