//===-- rmc/Memory.cpp - Per-location write histories ---------------------===//

#include "rmc/Memory.h"

#include "support/Error.h"

#include <cassert>

using namespace compass;
using namespace compass::rmc;

Loc Memory::alloc(const std::string &Name, unsigned Count, Value Init) {
  assert(Count >= 1 && "allocating zero cells");
  Loc Base = static_cast<Loc>(Live);
  if (ReplayAlloc) {
    // Copy-on-write fast-forward: the same allocation sequence replays over
    // cells whose histories still hold the prefix's messages. Only the
    // watermark moves; a cheap shape check guards against divergence.
    if (Live + Count > Cells.size())
      fatalError("replay-alloc beyond retained cells (divergent prefix?)");
    for (unsigned I = 0; I != Count; ++I) {
      Cell &C = Cells[Live + I];
      assert(C.Len >= 1 && "replay-alloc over an uninitialized cell");
      assert(C.Name == Name && "replay-alloc name mismatch");
      (void)C;
    }
    Live += Count;
    return Base;
  }
  for (unsigned I = 0; I != Count; ++I) {
    if (Live < Cells.size()) {
      // Reuse a retained cell from an earlier execution: rewind the history
      // watermark to the single initial message in place. Allocation order
      // replays deterministically per decision path, so the retained name
      // usually matches and the compare avoids a string assignment.
      Cell &C = Cells[Live];
      if (C.Name != Name)
        C.Name = Name;
      C.Off = Count == 1 ? ~0u : I;
      C.Life = CellLife::Live;
      C.RetirePins.clear();
      C.Len = 1;
      if (C.Vals.empty()) {
        C.Vals.push_back(Init);
        C.Knows.emplace_back();
        C.Writers.push_back(~0u);
      } else {
        C.Vals[0] = Init;
        C.Knows[0].clear();
        C.Writers[0] = ~0u;
      }
    } else {
      Cell C;
      C.Name = Name;
      C.Off = Count == 1 ? ~0u : I;
      C.Vals.push_back(Init);
      C.Knows.emplace_back();
      C.Writers.push_back(~0u);
      C.Len = 1;
      Cells.push_back(std::move(C));
    }
    ++Live;
  }
  return Base;
}

const Cell &Memory::cell(Loc L) const {
  if (L >= Live)
    fatalError("memory access to unallocated location");
  return Cells[L];
}

Cell &Memory::cell(Loc L) {
  if (L >= Live)
    fatalError("memory access to unallocated location");
  return Cells[L];
}

std::string Memory::cellName(Loc L) const {
  const Cell &C = cell(L);
  if (C.Off == ~0u)
    return C.Name;
  return C.Name + "+" + std::to_string(C.Off);
}

Timestamp Memory::append(Loc L, Value V, const Knowledge &Know,
                         unsigned Writer) {
  Cell &C = cell(L);
  Timestamp Ts = static_cast<Timestamp>(C.Len);
  if (C.Len < C.Vals.size()) {
    // Overwrite a retained slot in place; the Knowledge assignment reuses
    // the slot's view/id-set heap storage.
    C.Vals[Ts] = V;
    C.Knows[Ts] = Know;
    C.Writers[Ts] = Writer;
  } else {
    C.Vals.push_back(V);
    C.Knows.push_back(Know);
    C.Writers.push_back(Writer);
  }
  ++C.Len;
  AppendLog.push_back(L);
  return Ts;
}

unsigned Memory::countReadableFrom(Loc L, Timestamp From) const {
  const Cell &C = cell(L);
  Timestamp Latest = C.latestTs();
  assert(From <= Latest && "thread view ahead of the history");
  return Latest - From + 1;
}

void Memory::setLife(Loc L, CellLife NewLife) {
  Cell &C = cell(L);
  LifeEvent E;
  E.L = L;
  E.PrevLife = C.Life;
  E.PrevPins = C.RetirePins;
  LifeLog.push_back(std::move(E));
  C.Life = NewLife;
}

void Memory::reset() {
  Live = 0;
  AppendLog.clear();
  LifeLog.clear();
}

void Memory::trimToEpoch(const Epoch &E) {
  assert(E.Appends <= AppendLog.size() && "epoch from the future");
  assert(E.LifeEvents <= LifeLog.size() && "epoch from the future");
  while (AppendLog.size() > E.Appends) {
    Loc L = AppendLog.back();
    AppendLog.pop_back();
    Cell &C = Cells[L];
    assert(C.Len > 1 && "append undo would drop the init message");
    --C.Len;
  }
  while (LifeLog.size() > E.LifeEvents) {
    LifeEvent &Ev = LifeLog.back();
    Cell &C = Cells[Ev.L];
    C.Life = Ev.PrevLife;
    C.RetirePins = std::move(Ev.PrevPins);
    LifeLog.pop_back();
  }
  assert(E.Live <= Live && "epoch allocated more than the present");
  Live = E.Live;
}
