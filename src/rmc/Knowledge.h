//===-- rmc/Knowledge.h - Physical + logical view pairs --------*- C++ -*-===//
//
// Part of compass-cxx. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A `Knowledge` bundles a *physical view* (Loc -> Timestamp, Section 2.3)
/// with a *logical view* (a set of library-event ids, Section 3.1). Both
/// components are transferred by exactly the same release/acquire rules, so
/// the machine manipulates them together: messages carry Knowledge, threads
/// accumulate Knowledge, and joining a message's Knowledge into a thread's
/// models synchronization. The logical half is the runtime realization of
/// the paper's `SeenQueue`/`SeenStack` ghost assertions: committing an
/// operation inserts its event id into the committing thread's Knowledge,
/// and any thread that later synchronizes with that commit observes the id.
///
//===----------------------------------------------------------------------===//

#ifndef COMPASS_RMC_KNOWLEDGE_H
#define COMPASS_RMC_KNOWLEDGE_H

#include "rmc/View.h"
#include "support/IdSet.h"

namespace compass::rmc {

/// What a thread or a message "knows": observed writes plus observed
/// library events.
struct Knowledge {
  /// Physical view: observed write timestamps per location.
  View Phys;

  /// Logical view: observed library-event ids (the paper's logview).
  IdSet Events;

  /// Joins \p Other into this (pointwise max / set union).
  void joinWith(const Knowledge &Other) {
    Phys.joinWith(Other.Phys);
    Events.joinWith(Other.Events);
  }

  /// Empties both components while keeping their backing storage (the
  /// machine-arena reset path; see View::clear).
  void clear() {
    Phys.clear();
    Events.clear();
  }

  /// Knowledge-inclusion: both components included.
  bool includedIn(const Knowledge &Other) const {
    return Phys.includedIn(Other.Phys) && Events.subsetOf(Other.Events);
  }
};

} // namespace compass::rmc

#endif // COMPASS_RMC_KNOWLEDGE_H
