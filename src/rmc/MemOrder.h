//===-- rmc/MemOrder.h - Access modes of the ORC11 fragment ----*- C++ -*-===//
//
// Part of compass-cxx. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The access modes of the memory model fragment we simulate: non-atomic,
/// relaxed, acquire, release, acquire-release and SC, mirroring the ORC11
/// model (RC11 with non-atomics, rel/acq, relaxed accesses and fences, and
/// no load buffering).
///
//===----------------------------------------------------------------------===//

#ifndef COMPASS_RMC_MEMORDER_H
#define COMPASS_RMC_MEMORDER_H

namespace compass::rmc {

/// Memory access / fence ordering modes.
enum class MemOrder {
  NonAtomic, ///< Plain access; racy use is flagged by the machine.
  Relaxed,   ///< Atomic, no synchronization.
  Acquire,   ///< Loads / fences / RMW read side.
  Release,   ///< Stores / fences / RMW write side.
  AcqRel,    ///< RMWs and fences combining both.
  SeqCst     ///< Sequentially consistent accesses and fences.
};

/// True if \p O has acquire semantics on the read side.
inline bool isAcquire(MemOrder O) {
  return O == MemOrder::Acquire || O == MemOrder::AcqRel ||
         O == MemOrder::SeqCst;
}

/// True if \p O has release semantics on the write side.
inline bool isRelease(MemOrder O) {
  return O == MemOrder::Release || O == MemOrder::AcqRel ||
         O == MemOrder::SeqCst;
}

/// Printable name of \p O.
inline const char *memOrderName(MemOrder O) {
  switch (O) {
  case MemOrder::NonAtomic:
    return "na";
  case MemOrder::Relaxed:
    return "rlx";
  case MemOrder::Acquire:
    return "acq";
  case MemOrder::Release:
    return "rel";
  case MemOrder::AcqRel:
    return "acq_rel";
  case MemOrder::SeqCst:
    return "sc";
  }
  return "?";
}

} // namespace compass::rmc

#endif // COMPASS_RMC_MEMORDER_H
