//===-- rmc/Machine.h - Operational RC11 view machine -----------*- C++ -*-===//
//
// Part of compass-cxx. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The operational, view-based memory machine for the ORC11 fragment
/// (Section 2.3 of the paper): per-thread views with current / acquire /
/// per-location-release / fence-release components, per-location write
/// histories, and the release/acquire view-transfer rules REL-WRITE and
/// ACQ-READ. Load buffering is impossible by construction (reads never
/// observe program-order-later writes; there are no promises), matching
/// ORC11's `po ∪ rf` acyclicity requirement.
///
/// Every nondeterministic step (which readable message a load reads, CAS
/// success vs. failure alternatives) is resolved through a ChoiceSource,
/// which the model checker implements to enumerate all executions.
///
/// Deviations from the full model, documented in DESIGN.md Section 4:
///  * writes append at the end of modification order (no in-middle
///    insertion), and RMWs read the mo-maximal message;
///  * SC accesses are approximated by rel/acq accesses joined with a global
///    SC view (sound for the safety properties we check);
///  * non-atomic race detection requires the accessor to have observed the
///    whole history of the cell — the complementary read/write race
///    direction is caught in a sibling interleaving by exhaustive
///    exploration.
///
//===----------------------------------------------------------------------===//

#ifndef COMPASS_RMC_MACHINE_H
#define COMPASS_RMC_MACHINE_H

#include "rmc/Footprint.h"
#include "rmc/Knowledge.h"
#include "rmc/MemOrder.h"
#include "rmc/Memory.h"
#include "support/Choice.h"
#include "support/SmallVec.h"

#include <cstdint>
#include <functional>
#include <new>
#include <string>
#include <type_traits>
#include <vector>

namespace compass::rmc {

/// Predicate over message values, for conditional (spin-wait) loads.
///
/// A flattened, trivially-copyable small-buffer functor instead of
/// std::function: the scheduler evaluates wait predicates for every
/// blocked thread on every step, so the double indirection and potential
/// heap state of std::function were measurable on the stepping hot path.
/// Captures must be trivially copyable and fit the inline buffer (spin
/// predicates capture at most a couple of word-sized values).
class ValuePred {
  using Invoke = bool (*)(const void *, Value);
  alignas(8) unsigned char Buf[24];
  Invoke Call = nullptr;

public:
  ValuePred() = default;
  ValuePred(std::nullptr_t) {}
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, ValuePred>>>
  ValuePred(F Fn) {
    static_assert(sizeof(F) <= sizeof(Buf),
                  "spin predicate captures too much state");
    static_assert(std::is_trivially_copyable_v<F>,
                  "spin predicate captures must be trivially copyable");
    new (Buf) F(Fn);
    Call = [](const void *B, Value V) {
      return (*static_cast<const F *>(B))(V);
    };
  }
  ValuePred &operator=(std::nullptr_t) {
    Call = nullptr;
    return *this;
  }
  explicit operator bool() const { return Call != nullptr; }
  bool operator()(Value V) const { return Call(Buf, V); }
};

/// The view-based operational machine.
class Machine {
public:
  /// Result of a compare-and-swap.
  struct CasResult {
    bool Success = false;
    Value Old = 0; ///< The value read (== expected iff Success).
  };

  /// Operation counters for the simulator microbenchmarks.
  struct Stats {
    uint64_t Loads = 0;
    uint64_t Stores = 0;
    uint64_t Rmws = 0;
    uint64_t Fences = 0;
  };

  explicit Machine(ChoiceSource &Choices) : Choices(Choices) {}

  /// Registers a new thread; returns its id. Thread ids are dense from 0.
  unsigned addThread();

  unsigned numThreads() const {
    return static_cast<unsigned>(LiveThreads);
  }

  /// Rewinds the machine to its freshly constructed logical state while
  /// retaining all heap storage (memory cells, thread view vectors, release
  /// maps, scratch buffers). A Machine reused across the explorer's replays
  /// reaches steady-state capacity once and stops allocating. Stats and the
  /// operation sequence number are monotonic across resets.
  void reset();

  /// The footprint of the most recently executed operation (load / store /
  /// RMW / fence), for the partial-order-reduction layer. Kind::None until
  /// the first operation after construction/reset.
  const Footprint &lastFootprint() const { return LastFp; }

  /// Monotonic count of executed operations (never reset). A caller that
  /// snapshots opSeq() around a step can tell whether the step performed a
  /// machine operation at all, and hence whether lastFootprint() is fresh.
  uint64_t opSeq() const { return OpSeqN; }

  /// Allocates \p Count cells initialized to \p Init; see Memory::alloc.
  Loc alloc(const std::string &Name, unsigned Count = 1, Value Init = 0) {
    return Mem.alloc(Name, Count, Init);
  }

  /// Loads from \p L with order \p O (NonAtomic / Relaxed / Acquire /
  /// SeqCst), choosing among readable messages.
  Value load(unsigned T, Loc L, MemOrder O);

  /// Loads from \p L, restricted to readable messages whose value satisfies
  /// \p Pred. The caller must ensure one exists (see anyReadableSatisfies);
  /// used to model fair spin-waits.
  Value loadWhere(unsigned T, Loc L, MemOrder O, const ValuePred &Pred);

  /// True if thread \p T could currently read a message of \p L whose value
  /// satisfies \p Pred. Does not modify any state.
  bool anyReadableSatisfies(unsigned T, Loc L, const ValuePred &Pred) const;

  /// Stores \p V to \p L with order \p O (NonAtomic / Relaxed / Release /
  /// SeqCst).
  void store(unsigned T, Loc L, Value V, MemOrder O);

  /// Atomic compare-and-swap: succeeds only against the mo-maximal message.
  /// \p SuccO applies read+write sides on success; \p FailO the read side
  /// on failure.
  CasResult cas(unsigned T, Loc L, Value Expected, Value Desired,
                MemOrder SuccO, MemOrder FailO = MemOrder::Relaxed);

  /// Atomic fetch-and-add; returns the old value.
  Value fetchAdd(unsigned T, Loc L, Value Add, MemOrder O);

  /// Memory fence with order Acquire / Release / AcqRel / SeqCst.
  void fence(unsigned T, MemOrder O);

  /// Reclamation ghost operations (simulated EBR, DESIGN.md Section 10).
  /// These are scheduler-visible steps of their own (Footprint::Kind
  /// Reclaim / Free) but touch only the reclamation ghost state — pin
  /// sessions and cell lifecycles — never cell histories or views.

  /// Enters a pinned (epoch-protected) critical section for thread \p T,
  /// starting a fresh pin session. Fatal if already pinned.
  void pinEnter(unsigned T);

  /// Leaves the pinned critical section. Fatal if not pinned.
  void pinExit(unsigned T);

  /// Whether thread \p T is currently inside a pinned critical section.
  bool pinned(unsigned T) const { return thread(T).Pinned; }

  /// Retires cells [L, L+Count): marks them Retired and snapshots every
  /// currently pinned (thread, session) pair — the readers whose critical
  /// sections must end before the cells may be freed.
  void retire(unsigned T, Loc L, unsigned Count = 1);

  /// Frees retired cells [L, L+Count). Reports a PREMATURE_FREE fault if
  /// any reader pinned at retire time is still in the same pin session;
  /// marks the cells Freed so later accesses fault as USE_AFTER_RETIRE.
  void freeCells(unsigned T, Loc L, unsigned Count = 1);

  /// The thread's current knowledge; the spec monitor reads it to snapshot
  /// physical/logical views at commit points and extends its logical half
  /// with freshly committed event ids.
  Knowledge &threadCur(unsigned T);
  const Knowledge &threadCur(unsigned T) const;

  /// The thread's acquire knowledge (joined by relaxed reads, folded into
  /// cur by acquire fences). Exposed for the spec monitor's event-id
  /// bookkeeping.
  Knowledge &threadAcq(unsigned T);

  /// The knowledge of the message the thread read most recently (via any
  /// load or RMW). Used by the exchanger monitor to record the helpee's
  /// view at its offer (Section 4.2). Fatal if the thread never read.
  const Knowledge &lastReadKnowledge(unsigned T) const;

  /// Timestamp of the thread's most recent read. Retry loops use it as a
  /// stutter fingerprint: re-reading the same *message* (not merely the
  /// same value) is a no-progress iteration.
  Timestamp lastReadTs(unsigned T) const;

  const Memory &memory() const { return Mem; }

  /// True once a machine-level fault has been detected — a data race on a
  /// non-atomic access, a use-after-retire, or a premature free; the
  /// scheduler aborts the execution and reports \p raceMessage. (The name
  /// predates the reclamation faults; all faults surface through it.)
  bool raceDetected() const { return Raced; }
  const std::string &raceMessage() const { return RaceMsg; }

  /// Structured verdict rule for the detected fault: "RACE",
  /// "USE_AFTER_RETIRE", or "PREMATURE_FREE". Meaningful only when
  /// raceDetected().
  const char *faultRule() const { return FaultRule; }

  const Stats &stats() const { return Counters; }

  /// When enabled, every memory operation appends a human-readable line to
  /// trace(); used to print counterexample executions.
  void enableTrace(bool On) { Tracing = On; }
  const std::vector<std::string> &trace() const { return Trace; }

  //===--------------------------------------------------------------------===//
  // Copy-on-write execution support (DESIGN.md Section 11). The engine
  // snapshots the machine at decision boundaries and, on backtrack,
  // fast-forwards client coroutines through the shared prefix with all
  // machine operations elided: awaiters return journaled values instead of
  // calling into the machine, and the direct last-read queries below are
  // served from their own journals.
  //===--------------------------------------------------------------------===//

  /// True while an execution prefix is being fast-forwarded. Machine
  /// operations must not be invoked in this mode (awaiters consult the
  /// scheduler's journal instead); the spec monitor uses it to suppress
  /// knowledge injection and event commits during the replay.
  bool replaying() const { return Replaying; }

  /// Journal cursors/lengths for the last-read query journals plus the
  /// event-reservation sequence number; captured in snapshots, recorded
  /// per step by the scheduler, and validated after a fast-forward.
  struct AuxMark {
    size_t ReadTs = 0;
    size_t ReadKnow = 0;
    size_t MemLive = 0; ///< Allocation watermark (allocs are per-step too).
    uint32_t Reserves = 0;
  };
  AuxMark auxMark() const {
    return {ReadTsLog.size(), ReadKnowLog.size(), Mem.epoch().Live,
            ReserveSeq};
  }

  /// Advances the event-reservation sequence. Event ids are allocated
  /// densely from 0 in reservation order each execution, so this counter
  /// mirrors the graph's id allocation exactly; during a fast-forward it
  /// *is* the id source (the graph is not touched), and routing it through
  /// the machine lets the scheduler skip-jump it per step.
  uint32_t bumpReserveSeq() { return ReserveSeq++; }

  /// Jumps every replay journal cursor to \p A — used by the scheduler's
  /// fast-forward to elide a whole step of a thread that is finished at
  /// the snapshot boundary.
  void setReplayAux(const AuxMark &A) {
    ReadTsCursor = A.ReadTs;
    ReadKnowCursor = A.ReadKnow;
    ReserveSeq = A.Reserves;
    Mem.setReplayWatermark(A.MemLive);
  }

  /// Enters replay mode: query journals replay from the start, allocation
  /// becomes watermark-only (Memory::setReplayAlloc). Thread registration
  /// restarts (addThread re-registers the same dense ids over retained
  /// state; the states are overwritten wholesale by restoreSnapshot).
  void beginReplay();

  /// Leaves replay mode after a fast-forward that must have consumed the
  /// journals exactly up to \p Boundary; truncates them there so the live
  /// suffix records fresh entries.
  void endReplay(const AuxMark &Boundary);

  /// Deep snapshot of one thread's view state (storage recycled across
  /// snapshots via capacity-reusing assignment).
  struct ThreadSnap {
    Knowledge Cur, Acq, RelFence;
    std::vector<std::pair<Loc, Knowledge>> Rel;
    size_t RelLive = 0;
    bool HasRead = false;
    Loc LastReadLoc = 0;
    Timestamp LastReadTs = 0;
    bool Pinned = false;
    uint64_t PinSession = 0;
  };

  /// Snapshot of the whole machine at a step boundary. Memory is captured
  /// as an O(1) epoch (undo-log marks), not a copy.
  struct Snap {
    std::vector<ThreadSnap> Threads;
    size_t LiveThreads = 0;
    View ScPhys;
    Memory::Epoch MemEpoch;
    AuxMark Aux;
  };

  /// Captures the machine into \p S, reusing its storage. When \p FixTid is
  /// valid (not ~0u), that thread's physical cur/acq views are substituted
  /// from \p FixCur / \p FixAcq — the scheduler's pick-time scratch — so a
  /// snapshot taken mid-operation (at an op-level choice point) still
  /// represents the exact step-boundary state (the only pre-choice view
  /// mutation an operation performs is the SC pre-join into those two).
  void saveSnapshot(Snap &S, unsigned FixTid = ~0u,
                    const View *FixCur = nullptr,
                    const View *FixAcq = nullptr) const;

  /// Restores thread/SC state from \p S (memory is rewound separately via
  /// Memory::trimToEpoch) and clears the fault flags — a snapshot is only
  /// ever taken at a boundary the execution passed, where no fault was
  /// pending.
  void restoreSnapshot(const Snap &S);

  Memory &memoryMut() { return Mem; }

  /// Whether per-operation tracing is on. The copy-on-write engine falls
  /// back to full root-replay while tracing: an elided prefix would emit no
  /// trace lines.
  bool tracingEnabled() const { return Tracing; }

  /// Live history length of \p L, for the scheduler's memoized wait scans:
  /// within one execution a cell's history only grows, so a blocked
  /// thread's wait predicate cannot change verdict until the length does.
  size_t historyLen(Loc L) const { return Mem.cell(L).Len; }

  /// When enabled, load/loadWhere/cas copy the choosing thread's physical
  /// cur/acq views into the pick scratch right before the SC pre-join —
  /// the only thread-view mutation that precedes the operation's choice
  /// point. A snapshot hook firing at that choice passes the scratch to
  /// saveSnapshot (FixCur/FixAcq) to reconstruct the step-boundary state.
  void enableBoundaryScratch(bool On) { ScratchOn = On; }
  const View &pickCurScratch() const { return PickCurScratch; }
  const View &pickAcqScratch() const { return PickAcqScratch; }

  //===--------------------------------------------------------------------===//
  // Source-set reduction support (sim/Reduction.h). Both hooks are driven
  // by the scheduler; with no reduction attached they are never touched.
  //===--------------------------------------------------------------------===//

  /// Installs a reads-from floor for the next operation on \p L: its
  /// reads-from choice set is restricted to messages with timestamp
  /// >= \p Floor — the ones appended after the restricted move went to
  /// sleep (older choices commute back to the already-explored sibling).
  /// Because every choice set is enumerated newest-first, the restricted
  /// set is a *prefix* of the unrestricted one: the recorded decision
  /// index denotes the same message either way, so corpus traces recorded
  /// from restricted executions replay reduction-free. Consumed by the
  /// first load / loadWhere / cas / fetchAdd on \p L.
  void setRfFloor(Loc L, uint32_t Floor) {
    RfFloorLoc = L;
    RfFloorTs = Floor;
    RfFloorOn = true;
    RfFloorEmpty = false;
  }

  /// Clears any pending floor; returns whether a restricted choice set
  /// came up empty (only possible for a predicated loadWhere — the step
  /// then read an already-covered message and the scheduler abandons the
  /// execution as RfPruned, with no choice node recorded).
  bool clearRfFloor() {
    RfFloorOn = false;
    const bool E = RfFloorEmpty;
    RfFloorEmpty = false;
    return E;
  }

  /// When enabled, load/loadWhere/cas announce a reads-from duplicate mask
  /// to the ChoiceSource right before each multi-way choice
  /// (ChoiceSource::noteChoiceDup): bit k marks an alternative whose
  /// message is value- and knowledge-identical to alternative k-1's,
  /// timestamp-adjacent, and strictly below the modification-order maximum
  /// — the two post-states are bisimilar for every verdict we check, so
  /// the explorer may skip alternative k's subtree. The mask is a pure
  /// function of the decision prefix, so replayed paths recompute it
  /// identically. Enabled by the scheduler under source-set reduction.
  void enableDupDetect(bool On) { DupDetectOn = On; }

private:
  /// One entry of a thread's per-location release map. The map is a flat
  /// vector with a live watermark: threads release through a handful of
  /// locations, so a linear scan beats hashing, and retained entries past
  /// the watermark keep their Knowledge capacity across executions.
  struct RelEntry {
    Loc L = 0;
    Knowledge K;
  };

  /// Per-thread view state (cur / acq / rel, Section 2.3 and the promising
  /// semantics it references).
  struct ThreadState {
    Knowledge Cur;      ///< Everything po-or-sync before now.
    Knowledge Acq;      ///< Additionally, relaxed-read acquisitions.
    Knowledge RelFence; ///< Released by the last release fence.
    std::vector<RelEntry> Rel; ///< Per-loc release views; [0, RelLive) live.
    size_t RelLive = 0;
    bool HasRead = false; ///< Whether LastRead{Loc,Ts} are valid.
    Loc LastReadLoc = 0;
    Timestamp LastReadTs = 0;
    bool Pinned = false;     ///< Inside an EBR-pinned critical section.
    uint64_t PinSession = 0; ///< Per-execution pin-session counter.

    const Knowledge *findRel(Loc L) const {
      for (size_t I = 0; I != RelLive; ++I)
        if (Rel[I].L == L)
          return &Rel[I].K;
      return nullptr;
    }

    /// The release-view slot for \p L, created (or recycled) if absent.
    Knowledge &relSlot(Loc L);

    /// Empties the state while keeping all backing storage.
    void clear();
  };

  ThreadState &thread(unsigned T);
  const ThreadState &thread(unsigned T) const;

  /// Applies the read-side view effects of reading the message at \p Ts
  /// from cell \p C (location \p L).
  void applyRead(ThreadState &TS, Loc L, const Cell &C, Timestamp Ts,
                 MemOrder O);

  /// The view a relaxed write to \p L releases (rel(l) ⊔ fence-release).
  /// Returns a reference to the member scratch buffer RelScratch; valid
  /// until the next relView call.
  const Knowledge &relView(const ThreadState &TS, Loc L);

  /// Appends a write and applies writer-side effects. Returns new ts.
  Timestamp applyWrite(unsigned T, ThreadState &TS, Loc L, Value V,
                       Knowledge MsgK, bool Release);

  void reportRace(unsigned T, Loc L, const char *What);
  void reportFault(const char *Rule, std::string Msg);
  /// Faults if \p L is a freed cell (use-after-retire detection); called on
  /// every access path.
  void checkNotFreed(unsigned T, Loc L, const char *What);
  void traceOp(unsigned T, const std::string &Line);

  /// Records the footprint of the operation just executed.
  void noteOp(Loc L, Footprint::Kind K, bool Sc, bool Atomic = false) {
    LastFp.L = L;
    LastFp.K = K;
    LastFp.Sc = Sc;
    LastFp.Atomic = Atomic;
    ++OpSeqN;
  }

  /// Consumes the pending reads-from floor if it targets \p L; returns the
  /// floor timestamp, or 0 when none applies (timestamp 0 — the initial
  /// message — is never a real floor: a sleeping move's watermark is the
  /// history length at sleep time, which is at least 1).
  uint32_t takeRfFloor(Loc L) {
    if (!RfFloorOn || RfFloorLoc != L)
      return 0;
    RfFloorOn = false;
    return RfFloorTs;
  }

  ChoiceSource &Choices;
  Memory Mem;
  std::vector<ThreadState> Threads; ///< [0, LiveThreads) are registered;
                                    ///< the rest is retained storage.
  size_t LiveThreads = 0;

  /// Global SC view (fences and SeqCst accesses) — *physical only*.
  /// RC11's happens-before orders two SC fences' surroundings only when a
  /// reads-from edge connects them (which the RelFence/Acq machinery
  /// models); transferring logical event views through the SC order
  /// itself would over-approximate lhb and make the empty-consume axioms
  /// spuriously demanding (observed on the Chase-Lev deque).
  View ScPhys;
  bool Raced = false;
  std::string RaceMsg;
  const char *FaultRule = "RACE"; ///< Rule of the recorded fault.
  Stats Counters;
  bool Tracing = false;
  std::vector<std::string> Trace;

  Footprint LastFp;   ///< Footprint of the most recent operation.
  uint64_t OpSeqN = 0; ///< Monotonic operation counter (never reset).

  /// Scratch buffers reused across operations so the hot paths allocate
  /// nothing at steady state (SmallVec keeps the common case inline; the
  /// Knowledge keeps its capacity across relView calls).
  Knowledge RelScratch;
  SmallVec<Timestamp, 16> CandScratch; ///< loadWhere candidate timestamps.
  SmallVec<Timestamp, 16> FailScratch; ///< CAS failure-read timestamps.

  // Copy-on-write journals (see the COW section above). Record mode
  // appends on every lastReadTs/lastReadKnowledge query; replay mode
  // serves queries from the cursors (client retry loops call these between
  // awaits, in an order the fast-forward reproduces exactly).
  bool Replaying = false;
  bool ScratchOn = false; ///< Boundary scratch copies enabled (COW engine).
  // Source-set reduction state (see the section above). All of it is
  // step-scoped: a floor is installed right before the restricted step and
  // cleared right after it, never across snapshots or executions.
  bool RfFloorOn = false;
  bool RfFloorEmpty = false;
  bool DupDetectOn = false;
  Loc RfFloorLoc = 0;
  uint32_t RfFloorTs = 0;
  View PickCurScratch;    ///< Choosing thread's Cur.Phys before SC pre-join.
  View PickAcqScratch;    ///< Choosing thread's Acq.Phys before SC pre-join.
  mutable std::vector<Timestamp> ReadTsLog;
  mutable size_t ReadTsCursor = 0;
  mutable std::vector<std::pair<Loc, Timestamp>> ReadKnowLog;
  mutable size_t ReadKnowCursor = 0;
  uint32_t ReserveSeq = 0; ///< Event reservations this execution.
};

} // namespace compass::rmc

#endif // COMPASS_RMC_MACHINE_H
