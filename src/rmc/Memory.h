//===-- rmc/Memory.h - Per-location write histories ------------*- C++ -*-===//
//
// Part of compass-cxx. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The simulated memory: each location holds its full *history* of write
/// messages, ordered by timestamp — the `ℓ ↦ h` atomic points-to of the
/// paper's Section 2.3, where `h ∈ Time --fin--> Val × View`. Messages
/// additionally carry logical views (see Knowledge.h). Histories are
/// append-only: a relaxed write is placed at the end of the modification
/// order (a documented strengthening over insertion-based semantics; see
/// DESIGN.md Section 4).
///
//===----------------------------------------------------------------------===//

#ifndef COMPASS_RMC_MEMORY_H
#define COMPASS_RMC_MEMORY_H

#include "rmc/Knowledge.h"
#include "rmc/View.h"

#include <cstdint>
#include <string>
#include <vector>

namespace compass::rmc {

/// Values stored in simulated memory. Pointers into simulated memory are
/// represented as `Loc` values; 0 conventionally encodes null.
using Value = uint64_t;

/// One write event in a location's history.
struct Message {
  Timestamp Ts = 0;      ///< Position in the location's modification order.
  Value Val = 0;         ///< The written value.
  Knowledge Know;        ///< View released with the write (Section 2.3).
  unsigned Writer = ~0u; ///< Thread id of the writer (~0u for init).
};

/// Reclamation lifecycle of a cell. Allocation never reuses locations
/// within one simulation, so the lifecycle is monotonic: Live → Retired →
/// Freed. Accesses to Retired cells are still legal (a pinned reader may
/// hold the node); accesses to Freed cells are use-after-free faults.
enum class CellLife : uint8_t { Live, Retired, Freed };

/// A reader pinned at the moment a cell was retired: thread id plus that
/// thread's pin-session number (so a later re-pin of the same thread is
/// not mistaken for the protected critical section).
struct PinRef {
  unsigned Tid = 0;
  uint64_t Session = 0;
};

/// A single memory cell and its complete write history.
struct Cell {
  std::vector<Message> History; ///< Indexed by timestamp (dense, from 0).
  std::string Name;             ///< Debug name ("q.head", "node3.next"...).
  CellLife Life = CellLife::Live; ///< Reclamation lifecycle state.
  std::vector<PinRef> RetirePins; ///< Readers pinned when it was retired.

  const Message &latest() const { return History.back(); }
  Timestamp latestTs() const { return History.back().Ts; }
};

/// The machine's memory: an array of cells with allocation.
///
/// Allocation never reuses locations within one simulation, so simulated
/// ABA through reallocation cannot occur; simulated data structures that
/// want to exercise reuse must model it explicitly.
///
/// The store is an *arena*: reset() rewinds the allocation watermark
/// without freeing cell storage, so a Memory reused across the explorer's
/// millions of replays reaches steady-state capacity once and stops
/// allocating (cell vector, history vectors, and name strings are all
/// recycled in allocation order, which replays deterministically).
class Memory {
public:
  /// Allocates \p Count fresh cells, named Name, Name+1, ... Each starts
  /// with an initial message at timestamp 0 holding \p Init and empty
  /// knowledge (everyone can read it). Returns the first location.
  Loc alloc(std::string Name, unsigned Count = 1, Value Init = 0);

  /// Number of allocated (live) cells.
  unsigned size() const { return static_cast<unsigned>(Live); }

  const Cell &cell(Loc L) const;
  Cell &cell(Loc L);

  /// Appends a message with the next timestamp to \p L and returns it.
  const Message &append(Loc L, Value V, Knowledge Know, unsigned Writer);

  /// Messages of \p L readable by a thread whose view holds \p From:
  /// all timestamps in [From, latest]. Returns the count; the i-th
  /// readable message has timestamp From + i.
  unsigned countReadableFrom(Loc L, Timestamp From) const;

  /// Rewinds the allocation watermark to empty while keeping all cell
  /// storage for reuse (see class comment).
  void reset() { Live = 0; }

private:
  std::vector<Cell> Cells; ///< Cells[0..Live) are allocated; the rest is
                           ///< retained storage from earlier executions.
  size_t Live = 0;
};

} // namespace compass::rmc

#endif // COMPASS_RMC_MEMORY_H
