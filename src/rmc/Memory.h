//===-- rmc/Memory.h - Per-location write histories ------------*- C++ -*-===//
//
// Part of compass-cxx. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The simulated memory: each location holds its full *history* of write
/// messages, ordered by timestamp — the `ℓ ↦ h` atomic points-to of the
/// paper's Section 2.3, where `h ∈ Time --fin--> Val × View`. Messages
/// additionally carry logical views (see Knowledge.h). Histories are
/// append-only: a relaxed write is placed at the end of the modification
/// order (a documented strengthening over insertion-based semantics; see
/// DESIGN.md Section 4).
///
/// Histories are stored structure-of-arrays (DESIGN.md Section 11): a cell
/// keeps parallel Vals/Knows/Writers arrays plus a length watermark, and a
/// message's timestamp *is* its index. Appends overwrite retained slots in
/// place, so the per-message Knowledge heap reaches steady state once and
/// is never freed between executions. Two undo logs (appends and lifecycle
/// transitions) make any earlier memory state reachable by popping — the
/// epoch-indexed trimming that the copy-on-write execution engine uses to
/// rewind memory to a decision boundary without replaying the prefix.
///
//===----------------------------------------------------------------------===//

#ifndef COMPASS_RMC_MEMORY_H
#define COMPASS_RMC_MEMORY_H

#include "rmc/Knowledge.h"
#include "rmc/View.h"
#include "support/Error.h"

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace compass::rmc {

/// Values stored in simulated memory. Pointers into simulated memory are
/// represented as `Loc` values; 0 conventionally encodes null.
using Value = uint64_t;

/// Reclamation lifecycle of a cell. Allocation never reuses locations
/// within one simulation, so the lifecycle is monotonic: Live → Retired →
/// Freed. Accesses to Retired cells are still legal (a pinned reader may
/// hold the node); accesses to Freed cells are use-after-free faults.
enum class CellLife : uint8_t { Live, Retired, Freed };

/// A reader pinned at the moment a cell was retired: thread id plus that
/// thread's pin-session number (so a later re-pin of the same thread is
/// not mistaken for the protected critical section).
struct PinRef {
  unsigned Tid = 0;
  uint64_t Session = 0;
};

/// A single memory cell and its complete write history, structure-of-arrays
/// with a length watermark. The message at timestamp Ts lives at index Ts
/// in each array; slots beyond Len are retained storage whose Knowledge
/// heaps are reused by later appends.
struct Cell {
  std::vector<Value> Vals;
  std::vector<Knowledge> Knows;
  std::vector<unsigned> Writers; ///< Writer tid; ~0u for the init message.
  size_t Len = 0;                ///< Messages [0, Len) are live.

  std::string Name;  ///< Base debug name ("q.head", "s.slot", ...).
  unsigned Off = ~0u; ///< Batch offset for multi-cell allocs (~0u: none).
  CellLife Life = CellLife::Live; ///< Reclamation lifecycle state.
  std::vector<PinRef> RetirePins; ///< Readers pinned when it was retired.

  Timestamp latestTs() const { return static_cast<Timestamp>(Len - 1); }
  Value latestVal() const { return Vals[Len - 1]; }
  Value val(Timestamp Ts) const { return Vals[Ts]; }
  const Knowledge &know(Timestamp Ts) const { return Knows[Ts]; }
  unsigned writer(Timestamp Ts) const { return Writers[Ts]; }
};

/// The machine's memory: an array of cells with allocation.
///
/// Allocation never reuses locations within one simulation, so simulated
/// ABA through reallocation cannot occur; simulated data structures that
/// want to exercise reuse must model it explicitly.
///
/// The store is an *arena*: reset() rewinds the allocation watermark
/// without freeing cell storage, so a Memory reused across the explorer's
/// millions of replays reaches steady-state capacity once and stops
/// allocating (cell vector, history arrays, and name strings are all
/// recycled in allocation order, which replays deterministically).
class Memory {
public:
  /// Allocates \p Count fresh cells, named Name, Name+1, ... Each starts
  /// with an initial message at timestamp 0 holding \p Init and empty
  /// knowledge (everyone can read it). Returns the first location.
  ///
  /// In replay-alloc mode (copy-on-write fast-forward of an execution
  /// prefix) the call only re-advances the allocation watermark over cells
  /// that still hold the prefix's messages; histories are untouched.
  Loc alloc(const std::string &Name, unsigned Count = 1, Value Init = 0);

  /// Number of allocated (live) cells.
  unsigned size() const { return static_cast<unsigned>(Live); }

  const Cell &cell(Loc L) const;
  Cell &cell(Loc L);

  /// Debug name of \p L, built on demand ("slot+3" for batch cells). Only
  /// trace/diagnostic paths pay for the string.
  std::string cellName(Loc L) const;

  /// Appends a message with the next timestamp to \p L and returns that
  /// timestamp. The slot's retained Knowledge is overwritten in place.
  Timestamp append(Loc L, Value V, const Knowledge &Know, unsigned Writer);

  /// Mutable Knowledge of the message at \p Ts (the writer raises the
  /// message view with its own new timestamp right after appending).
  Knowledge &knowRef(Loc L, Timestamp Ts) { return cell(L).Knows[Ts]; }

  /// Messages of \p L readable by a thread whose view holds \p From:
  /// all timestamps in [From, latest]. Returns the count; the i-th
  /// readable message has timestamp From + i.
  unsigned countReadableFrom(Loc L, Timestamp From) const;

  /// Records a lifecycle transition of \p L in the undo log, then applies
  /// it. Called by the machine's retire/free ghost steps.
  void setLife(Loc L, CellLife NewLife);

  /// Rewinds the allocation watermark to empty while keeping all cell
  /// storage for reuse (see class comment), and clears the undo logs.
  void reset();

  //===--------------------------------------------------------------------===//
  // Copy-on-write support: epochs, trimming, replay-alloc.
  //===--------------------------------------------------------------------===//

  /// A point in this memory's mutation history. Capturing one is O(1);
  /// trimToEpoch pops the undo logs back to it, touching only state the
  /// divergent suffix created.
  struct Epoch {
    size_t Live = 0;       ///< Allocation watermark.
    size_t Appends = 0;    ///< AppendLog length.
    size_t LifeEvents = 0; ///< LifeLog length.
  };

  Epoch epoch() const { return {Live, AppendLog.size(), LifeLog.size()}; }

  /// Rewinds to \p E: pops appends (decrementing cell watermarks) and
  /// lifecycle transitions (restoring Life + RetirePins) recorded after
  /// the epoch, then rewinds the allocation watermark.
  void trimToEpoch(const Epoch &E);

  /// Replay-alloc mode: alloc() only re-advances the watermark (see
  /// alloc()). Entered for the Setup + fast-forward phase of a
  /// copy-on-write execution, left before the live suffix runs.
  void setReplayAlloc(bool On) { ReplayAlloc = On; }

  /// Enters replay-alloc mode *and* rewinds the allocation watermark to
  /// zero, so the replayed Setup + prefix re-cover exactly the locations
  /// they allocated originally. Histories and undo logs are untouched;
  /// the fast-forward re-advances the watermark to the snapshot epoch.
  void beginReplayAlloc() {
    ReplayAlloc = true;
    Live = 0;
  }

  /// Jumps the allocation watermark during replay-alloc mode. Fast-forward
  /// uses this to elide a whole step of a finished thread: the step's
  /// allocations never re-run, so the cursor jumps to its recorded end
  /// mark instead, keeping every later allocation's address aligned.
  void setReplayWatermark(size_t N) {
    assert(ReplayAlloc && "watermark jump outside replay-alloc mode");
    if (N > Cells.size())
      fatalError("replay watermark beyond retained cells");
    Live = N;
  }

private:
  std::vector<Cell> Cells; ///< Cells[0..Live) are allocated; the rest is
                           ///< retained storage from earlier executions.
  size_t Live = 0;
  bool ReplayAlloc = false;

  /// Undo log of appends: one Loc per append, in order. Popping one
  /// decrements that cell's watermark (slot contents stay for reuse).
  std::vector<Loc> AppendLog;

  /// Undo log of lifecycle transitions.
  struct LifeEvent {
    Loc L = 0;
    CellLife PrevLife = CellLife::Live;
    std::vector<PinRef> PrevPins;
  };
  std::vector<LifeEvent> LifeLog;
};

} // namespace compass::rmc

#endif // COMPASS_RMC_MEMORY_H
