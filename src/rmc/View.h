//===-- rmc/View.h - Per-location timestamp views --------------*- C++ -*-===//
//
// Part of compass-cxx. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Views in the sense of the paper's Section 2.3: maps from memory locations
/// to timestamps, recording which writes a thread (or a message) has
/// observed. Timestamps index the modification order of each location. The
/// view-inclusion partial order `V1 ⊑ V2 ::= ∀l. V1(l) <= V2(l)` is the
/// physical approximation of happens-before used throughout the framework.
///
//===----------------------------------------------------------------------===//

#ifndef COMPASS_RMC_VIEW_H
#define COMPASS_RMC_VIEW_H

#include <cstdint>
#include <string>
#include <vector>

namespace compass::rmc {

/// Index of a memory cell in the simulated machine's memory.
using Loc = uint32_t;

/// Index into a location's modification order. Timestamp 0 is the initial
/// write created at allocation time; every thread can always read it.
using Timestamp = uint32_t;

/// A map Loc -> Timestamp with join (pointwise max) and inclusion
/// (pointwise <=). Stored densely: absent locations implicitly map to 0,
/// which is always satisfied since every location's initial write has
/// timestamp 0.
class View {
public:
  View() = default;

  /// The timestamp this view holds for \p L (0 if never raised).
  Timestamp get(Loc L) const {
    return L < Entries.size() ? Entries[L] : 0;
  }

  /// Raises the view's entry for \p L to at least \p T. Inline: raise and
  /// joinWith run on every machine operation (the interpreter hot path).
  void raise(Loc L, Timestamp T) {
    if (L >= Entries.size()) {
      if (T == 0)
        return;
      Entries.resize(L + 1, 0);
    }
    if (Entries[L] < T)
      Entries[L] = T;
  }

  /// Pointwise maximum in place: this := this ⊔ Other.
  void joinWith(const View &Other) {
    const size_t OtherSize = Other.Entries.size();
    if (OtherSize == 0)
      return; // Joining bottom: common for fresh messages/threads.
    if (OtherSize > Entries.size())
      Entries.resize(OtherSize, 0);
    // The common case grows nothing; help the optimizer vectorize the
    // pointwise max by working through raw pointers.
    Timestamp *__restrict__ Dst = Entries.data();
    const Timestamp *__restrict__ Src = Other.Entries.data();
    for (size_t I = 0; I != OtherSize; ++I)
      if (Dst[I] < Src[I])
        Dst[I] = Src[I];
  }

  /// Drops all entries but keeps the backing storage, so a reused view
  /// reaches its steady-state capacity once and never reallocates again
  /// (the machine-arena reset path).
  void clear() { Entries.clear(); }

  /// Returns true if this ⊑ Other (pointwise <=).
  bool includedIn(const View &Other) const;

  /// Number of locations with a non-zero entry.
  unsigned countNonZero() const;

  bool operator==(const View &Other) const;

  /// Renders the view as "{l0@t0, l3@t7}" for diagnostics.
  std::string str() const;

private:
  std::vector<Timestamp> Entries;
};

/// Convenience: the join of two views as a fresh value.
View join(const View &A, const View &B);

} // namespace compass::rmc

#endif // COMPASS_RMC_VIEW_H
