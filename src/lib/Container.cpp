//===-- lib/Container.cpp - Simulated container interfaces -----------------===//

#include "lib/Container.h"

using namespace compass::lib;

// Out-of-line anchors for the interface vtables.
SimQueue::~SimQueue() = default;
SimStack::~SimStack() = default;
