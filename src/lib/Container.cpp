//===-- lib/Container.cpp - Simulated container interfaces -----------------===//

#include "lib/Container.h"

using namespace compass::lib;

const char *compass::lib::containerFamilyName(ContainerFamily F) {
  switch (F) {
  case ContainerFamily::Queue:
    return "queue";
  case ContainerFamily::Stack:
    return "stack";
  case ContainerFamily::Exchanger:
    return "exchanger";
  case ContainerFamily::SpscRing:
    return "spsc_ring";
  case ContainerFamily::WsDeque:
    return "ws_deque";
  }
  return "?";
}

// Out-of-line anchors for the interface vtables.
SimQueue::~SimQueue() = default;
SimStack::~SimStack() = default;
