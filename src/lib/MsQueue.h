//===-- lib/MsQueue.h - Michael-Scott queue (release/acquire) ---*- C++ -*-===//
//
// Part of compass-cxx. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Michael-Scott non-blocking queue [Michael & Scott, PODC'96] on the
/// simulated machine, using only release/acquire atomics — the
/// implementation the paper verifies against the LAT_abs_hb queue spec
/// (Section 3.2: "a purely release-acquire implementation of the
/// Michael-Scott queue satisfies the LAT_abs_hb specs").
///
/// Commit points:
///  * enqueue: the release CAS linking the new node into tail->next;
///  * successful dequeue: the CAS advancing head;
///  * empty dequeue: the acquire read of head->next returning null.
///
/// Nodes carry a ghost field holding the enqueue's event id (the runtime
/// analog of the proof's ghost state), which the dequeuer reads to record
/// the so edge.
///
//===----------------------------------------------------------------------===//

#ifndef COMPASS_LIB_MSQUEUE_H
#define COMPASS_LIB_MSQUEUE_H

#include "lib/Container.h"
#include "spec/SpecMonitor.h"

#include <string>

namespace compass::lib {

class MsQueue final : public SimQueue {
public:
  /// How the implementation synchronizes; the checkers tell the profiles
  /// apart (experiment E2's ablations).
  enum class SyncProfile {
    /// Release/acquire accesses — the implementation the paper verifies.
    RelAcq,
    /// All-relaxed accesses with explicit release/acquire *fences* at the
    /// same points: equivalent synchronization via the fence rules, so
    /// every spec still holds.
    Fenced,
    /// All-relaxed accesses and no fences: deliberately broken. The
    /// machine's race detector fires on the node payload handoff (the
    /// verification framework catching a real bug).
    BrokenRelaxed
  };

  /// Allocates the queue's cells (head, tail, sentinel node) in \p M and
  /// registers it with \p Mon under \p Name.
  MsQueue(rmc::Machine &M, spec::SpecMonitor &Mon, std::string Name,
          SyncProfile Profile = SyncProfile::RelAcq);

  sim::Task<void> enqueue(sim::Env &E, rmc::Value V) override;
  sim::Task<rmc::Value> dequeue(sim::Env &E) override;

  /// Dequeues, waiting (fairly) for an element instead of returning empty.
  /// Never commits Deq(ε).
  sim::Task<rmc::Value> dequeueBlocking(sim::Env &E);

  unsigned objId() const override { return Obj; }

private:
  // Node layout: [value (na), ghost enq-event id (na), next (atomic)].
  static constexpr unsigned ValOff = 0;
  static constexpr unsigned EidOff = 1;
  static constexpr unsigned NextOff = 2;

  sim::Task<rmc::Value> dequeueImpl(sim::Env &E, bool Blocking);

  /// The load ordering for pointer chasing under the profile.
  rmc::MemOrder ptrLoadOrder() const;
  /// The ordering of publishing CASes under the profile.
  rmc::MemOrder publishCasOrder() const;
  /// Whether the profile uses explicit fences.
  bool fenced() const { return Profile == SyncProfile::Fenced; }

  spec::SpecMonitor &Mon;
  unsigned Obj;
  SyncProfile Profile;
  rmc::Loc Head;
  rmc::Loc Tail;
};

} // namespace compass::lib

#endif // COMPASS_LIB_MSQUEUE_H
