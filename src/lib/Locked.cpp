//===-- lib/Locked.cpp - Lock-based SC baseline containers ------------------===//

#include "lib/Locked.h"

#include "support/Error.h"

using namespace compass;
using namespace compass::lib;
using namespace compass::rmc;
using namespace compass::sim;
using compass::graph::EmptyVal;
using compass::graph::EventId;
using compass::graph::OpKind;

SpinLock::SpinLock(Machine &M, std::string Name) {
  L = M.alloc(Name + ".lock"); // 0 = free, 1 = held.
}

Task<void> SpinLock::lock(Env &E) {
  Timestamp PrevTs = ~0u;
  bool First = true;
  for (;;) {
    auto R = co_await E.cas(L, 0, 1, MemOrder::AcqRel);
    if (R.Success)
      co_return;
    // Fair wait until the lock is observably free, then race for it
    // again. Prune if we keep acting on the same stale free message.
    co_await E.spinUntil(
        L, [](Value V) { return V == 0; }, MemOrder::Relaxed);
    Timestamp Ts = E.M.lastReadTs(E.Tid);
    if (!First && Ts == PrevTs)
      co_await E.prune();
    First = false;
    PrevTs = Ts;
  }
}

Task<void> SpinLock::unlock(Env &E) {
  co_await E.store(L, 0, MemOrder::Release);
}

LockedQueue::LockedQueue(Machine &M, spec::SpecMonitor &Mon,
                         std::string Name, unsigned Capacity)
    : Mon(Mon), Capacity(Capacity), Lock(M, Name) {
  Obj = Mon.registerObject(Name);
  Buf = M.alloc(Name + ".buf", Capacity);
  EidBuf = M.alloc(Name + ".eids", Capacity);
  HeadIdx = M.alloc(Name + ".headidx");
  Count = M.alloc(Name + ".count");
}

Task<void> LockedQueue::enqueue(Env &E, Value V) {
  auto Acq = Lock.lock(E);
  co_await Acq;
  Value H = co_await E.load(HeadIdx, MemOrder::NonAtomic);
  Value C = co_await E.load(Count, MemOrder::NonAtomic);
  if (C >= Capacity)
    fatalError("LockedQueue capacity exceeded; size the workload");
  Loc SlotIdx = static_cast<Loc>((H + C) % Capacity);
  co_await E.store(Buf + SlotIdx, V, MemOrder::NonAtomic);
  EventId Ev = Mon.reserve(E.M, E.Tid);
  co_await E.store(EidBuf + SlotIdx, Ev, MemOrder::NonAtomic);
  co_await E.store(Count, C + 1, MemOrder::NonAtomic);
  auto Rel1 = Lock.unlock(E);
  co_await Rel1;
  // Commit point: the critical section, linearized at the unlock whose
  // release message carries the event to the next lock holder.
  Mon.commit(E.M, E.Tid, Ev, Obj, OpKind::Enq, V);
  co_return;
}

Task<Value> LockedQueue::dequeue(Env &E) {
  auto Acq = Lock.lock(E);
  co_await Acq;
  Value C = co_await E.load(Count, MemOrder::NonAtomic);
  if (C == 0) {
    EventId Ev = Mon.reserve(E.M, E.Tid);
    auto Rel2 = Lock.unlock(E);
    co_await Rel2;
    Mon.commit(E.M, E.Tid, Ev, Obj, OpKind::DeqEmpty, EmptyVal);
    co_return EmptyVal;
  }
  Value H = co_await E.load(HeadIdx, MemOrder::NonAtomic);
  Loc SlotIdx = static_cast<Loc>(H);
  Value V = co_await E.load(Buf + SlotIdx, MemOrder::NonAtomic);
  Value EnqEv = co_await E.load(EidBuf + SlotIdx, MemOrder::NonAtomic);
  co_await E.store(HeadIdx, (H + 1) % Capacity, MemOrder::NonAtomic);
  co_await E.store(Count, C - 1, MemOrder::NonAtomic);
  EventId Ev = Mon.reserve(E.M, E.Tid);
  auto Rel3 = Lock.unlock(E);
  co_await Rel3;
  Mon.commit(E.M, E.Tid, Ev, Obj, OpKind::DeqOk, V, 0,
             static_cast<EventId>(EnqEv));
  co_return V;
}

LockedStack::LockedStack(Machine &M, spec::SpecMonitor &Mon,
                         std::string Name, unsigned Capacity)
    : Mon(Mon), Capacity(Capacity), Lock(M, Name) {
  Obj = Mon.registerObject(Name);
  Buf = M.alloc(Name + ".buf", Capacity);
  EidBuf = M.alloc(Name + ".eids", Capacity);
  Count = M.alloc(Name + ".count");
}

Task<void> LockedStack::push(Env &E, Value V) {
  auto Acq = Lock.lock(E);
  co_await Acq;
  Value C = co_await E.load(Count, MemOrder::NonAtomic);
  if (C >= Capacity)
    fatalError("LockedStack capacity exceeded; size the workload");
  Loc SlotIdx = static_cast<Loc>(C);
  co_await E.store(Buf + SlotIdx, V, MemOrder::NonAtomic);
  EventId Ev = Mon.reserve(E.M, E.Tid);
  co_await E.store(EidBuf + SlotIdx, Ev, MemOrder::NonAtomic);
  co_await E.store(Count, C + 1, MemOrder::NonAtomic);
  auto Rel4 = Lock.unlock(E);
  co_await Rel4;
  Mon.commit(E.M, E.Tid, Ev, Obj, OpKind::Push, V);
  co_return;
}

Task<Value> LockedStack::pop(Env &E) {
  auto Acq = Lock.lock(E);
  co_await Acq;
  Value C = co_await E.load(Count, MemOrder::NonAtomic);
  if (C == 0) {
    EventId Ev = Mon.reserve(E.M, E.Tid);
    auto Rel5 = Lock.unlock(E);
    co_await Rel5;
    Mon.commit(E.M, E.Tid, Ev, Obj, OpKind::PopEmpty, EmptyVal);
    co_return EmptyVal;
  }
  Loc SlotIdx = static_cast<Loc>(C - 1);
  Value V = co_await E.load(Buf + SlotIdx, MemOrder::NonAtomic);
  Value PushEv = co_await E.load(EidBuf + SlotIdx, MemOrder::NonAtomic);
  co_await E.store(Count, C - 1, MemOrder::NonAtomic);
  EventId Ev = Mon.reserve(E.M, E.Tid);
  auto Rel6 = Lock.unlock(E);
  co_await Rel6;
  Mon.commit(E.M, E.Tid, Ev, Obj, OpKind::PopOk, V, 0,
             static_cast<EventId>(PushEv));
  co_return V;
}

Task<bool> LockedStack::tryPush(Env &E, Value V) {
  auto P = push(E, V);
  co_await P;
  co_return true;
}

Task<Value> LockedStack::tryPop(Env &E) { return pop(E); }
