//===-- lib/SpscRing.cpp - Lock-free SPSC ring buffer ----------------------===//

#include "lib/SpscRing.h"

#include "support/Error.h"

using namespace compass;
using namespace compass::lib;
using namespace compass::rmc;
using namespace compass::sim;
using compass::graph::EmptyVal;
using compass::graph::EventId;
using compass::graph::OpKind;

SpscRing::SpscRing(Machine &M, spec::SpecMonitor &Mon, std::string Name,
                   unsigned Capacity)
    : Mon(Mon), Capacity(Capacity) {
  Obj = Mon.registerObject(Name);
  HeadIdx = M.alloc(Name + ".head");
  TailIdx = M.alloc(Name + ".tail");
  Buf = M.alloc(Name + ".buf", Capacity);
  Eids = M.alloc(Name + ".eids", Capacity);
}

void SpscRing::checkRole(unsigned &Role, unsigned Tid, const char *What) {
  if (Role == ~0u)
    Role = Tid;
  else if (Role != Tid)
    fatalError(std::string("SpscRing: second thread acting as ") + What);
}

Task<bool> SpscRing::tryEnqueue(Env &E, Value V) {
  checkRole(ProducerTid, E.Tid, "producer");
  Value T = co_await E.load(TailIdx, MemOrder::Relaxed); // Own writes.
  Value H = co_await E.load(HeadIdx, MemOrder::Acquire);
  if (T - H == Capacity)
    co_return false; // Full (as far as the producer can see).
  Loc Slot = Buf + static_cast<Loc>(T % Capacity);
  // The slot is producer-owned: the consumer released indices < H + Cap
  // back to us through its head store, which the acquire above joined.
  co_await E.store(Slot, V, MemOrder::NonAtomic);
  EventId Ev = Mon.reserve(E.M, E.Tid);
  co_await E.store(Eids + static_cast<Loc>(T % Capacity), Ev,
                   MemOrder::NonAtomic);
  co_await E.store(TailIdx, T + 1, MemOrder::Release);
  // Commit point: the tail release publishing the slot.
  Mon.commit(E.M, E.Tid, Ev, Obj, OpKind::Enq, V);
  co_return true;
}

Task<void> SpscRing::enqueueBlocking(Env &E, Value V) {
  for (;;) {
    auto Try = tryEnqueue(E, V);
    bool Ok = co_await Try;
    if (Ok)
      co_return;
    // Fair wait until the consumer frees a slot.
    Value T = co_await E.load(TailIdx, MemOrder::Relaxed);
    co_await E.spinUntil(
        HeadIdx,
        [T, Cap = Capacity](Value H) { return T - H < Cap; },
        MemOrder::Acquire);
  }
}

Task<Value> SpscRing::dequeue(Env &E) {
  checkRole(ConsumerTid, E.Tid, "consumer");
  Value H = co_await E.load(HeadIdx, MemOrder::Relaxed); // Own writes.
  Value T = co_await E.load(TailIdx, MemOrder::Acquire);
  if (H == T) {
    // Commit point (empty): the acquire read of tail.
    EventId Ev = Mon.reserve(E.M, E.Tid);
    Mon.commit(E.M, E.Tid, Ev, Obj, OpKind::DeqEmpty, EmptyVal);
    co_return EmptyVal;
  }
  Loc Slot = Buf + static_cast<Loc>(H % Capacity);
  Value V = co_await E.load(Slot, MemOrder::NonAtomic);
  Value EnqEv = co_await E.load(Eids + static_cast<Loc>(H % Capacity),
                                MemOrder::NonAtomic);
  EventId Ev = Mon.reserve(E.M, E.Tid);
  co_await E.store(HeadIdx, H + 1, MemOrder::Release);
  // Commit point: the head release (which also hands the slot back).
  Mon.commit(E.M, E.Tid, Ev, Obj, OpKind::DeqOk, V, 0,
             static_cast<EventId>(EnqEv));
  co_return V;
}

Task<Value> SpscRing::dequeueBlocking(Env &E) {
  checkRole(ConsumerTid, E.Tid, "consumer");
  Value H = co_await E.load(HeadIdx, MemOrder::Relaxed);
  co_await E.spinUntil(
      TailIdx, [H](Value T) { return T != H; }, MemOrder::Acquire);
  Loc Slot = Buf + static_cast<Loc>(H % Capacity);
  Value V = co_await E.load(Slot, MemOrder::NonAtomic);
  Value EnqEv = co_await E.load(Eids + static_cast<Loc>(H % Capacity),
                                MemOrder::NonAtomic);
  EventId Ev = Mon.reserve(E.M, E.Tid);
  co_await E.store(HeadIdx, H + 1, MemOrder::Release);
  Mon.commit(E.M, E.Tid, Ev, Obj, OpKind::DeqOk, V, 0,
             static_cast<EventId>(EnqEv));
  co_return V;
}
