//===-- lib/ElimStack.h - Elimination stack (Section 4) ---------*- C++ -*-===//
//
// Part of compass-cxx. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Hendler-Shavit-Yerushalmi elimination stack, composed *exactly* as
/// Section 4.1 writes it: each operation first tries the base stack's
/// single-attempt operation, and on contention tries to eliminate against
/// a concurrent dual operation through the exchanger — a push exchanges
/// its value hoping for SENTINEL (a popper), a pop exchanges SENTINEL
/// hoping for a value:
///
///   try_push(s, v) ::= if try_push'(s.base, v) then true
///                      else exchange(s.ex, v) == SENTINEL
///   try_pop(s)     ::= let v = try_pop'(s.base) in
///                      if v != FAIL_RACE then v
///                      else let v' = exchange(s.ex, SENTINEL) in
///                           if v' ∉ {SENTINEL, ⊥} then v' else FAIL_RACE
///
/// The implementation adds no atomic instructions of its own; its event
/// graph is *derived* from the base stack's and the exchanger's graphs by
/// the simulation relation of Section 4.1 (see spec/Composition.h), and
/// experiment E6 checks StackConsistent on the derived graph.
///
//===----------------------------------------------------------------------===//

#ifndef COMPASS_LIB_ELIMSTACK_H
#define COMPASS_LIB_ELIMSTACK_H

#include "lib/Exchanger.h"
#include "lib/TreiberStack.h"

namespace compass::lib {

class ElimStack {
public:
  ElimStack(rmc::Machine &M, spec::SpecMonitor &Mon, std::string Name);

  /// One elimination round; true if the push took effect (via the base
  /// stack or elimination).
  sim::Task<bool> tryPush(sim::Env &E, rmc::Value V);

  /// One elimination round; the popped value, graph::EmptyVal, or
  /// graph::FailRaceVal when the round failed.
  sim::Task<rmc::Value> tryPop(sim::Env &E);

  /// Bounded retry wrappers for workloads; false / FailRaceVal when all
  /// \p Rounds fail (model-checked workloads keep bounds small so the
  /// search stays finite).
  sim::Task<bool> push(sim::Env &E, rmc::Value V, unsigned Rounds = 4);
  sim::Task<rmc::Value> pop(sim::Env &E, unsigned Rounds = 4);

  unsigned baseObjId() const { return Base.objId(); }
  unsigned exchangerObjId() const { return Ex.objId(); }

private:
  TreiberStack Base;
  Exchanger Ex;
};

} // namespace compass::lib

#endif // COMPASS_LIB_ELIMSTACK_H
