//===-- lib/Container.h - Simulated container interfaces --------*- C++ -*-===//
//
// Part of compass-cxx. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Abstract interfaces for the simulated concurrent containers, so clients
/// (Message-Passing, SPSC, ...) and experiment drivers can be written once
/// and instantiated with every implementation — mirroring how the paper's
/// clients are verified against specs rather than implementations.
///
/// Conventions: values are nonzero and below the distinguished range (see
/// graph/Event.h); `dequeue`/`pop` return graph::EmptyVal when the
/// container appears empty. Every operation commits its event(s) to the
/// SpecMonitor passed at construction.
///
//===----------------------------------------------------------------------===//

#ifndef COMPASS_LIB_CONTAINER_H
#define COMPASS_LIB_CONTAINER_H

#include "graph/Event.h"
#include "sim/Scheduler.h"
#include "sim/Task.h"

namespace compass::lib {

/// The behavioural family a container belongs to. The conformance harness
/// (src/check/) keys its sequential reference oracle and scenario shapes on
/// this, so every adapter over a library names its family explicitly.
enum class ContainerFamily : uint8_t {
  Queue,     ///< FIFO: MsQueue, HwQueue (LAT_hb), LockedQueue.
  Stack,     ///< LIFO: TreiberStack, ElimStack, LockedStack.
  Exchanger, ///< Pairwise value crossing.
  SpscRing,  ///< Single-producer single-consumer FIFO ring.
  WsDeque    ///< Owner push/take at the bottom, thieves steal at the top.
};

/// Stable lower-case name for \p F ("queue", "stack", ...), used in
/// diagnostics and corpus files.
const char *containerFamilyName(ContainerFamily F);

/// A multi-producer multi-consumer queue on the simulated machine.
class SimQueue {
public:
  virtual ~SimQueue();

  /// Enqueues \p V (always succeeds; lock-free implementations retry).
  virtual sim::Task<void> enqueue(sim::Env &E, rmc::Value V) = 0;

  /// Dequeues one element, or returns graph::EmptyVal if the queue appears
  /// empty (commits a Deq(ε) event in that case).
  virtual sim::Task<rmc::Value> dequeue(sim::Env &E) = 0;

  /// The object id under which events are committed.
  virtual unsigned objId() const = 0;
};

/// A concurrent stack on the simulated machine.
class SimStack {
public:
  virtual ~SimStack();

  virtual sim::Task<void> push(sim::Env &E, rmc::Value V) = 0;

  /// Pops one element, or returns graph::EmptyVal when the stack appears
  /// empty (commits Pop(ε)).
  virtual sim::Task<rmc::Value> pop(sim::Env &E) = 0;

  /// Single-attempt push; returns false on CAS contention without
  /// committing an event (the elimination stack's try_push', Section 4.1).
  virtual sim::Task<bool> tryPush(sim::Env &E, rmc::Value V) = 0;

  /// Single-attempt pop; returns the value, graph::EmptyVal (committing
  /// Pop(ε)), or graph::FailRaceVal on contention (no event).
  virtual sim::Task<rmc::Value> tryPop(sim::Env &E) = 0;

  virtual unsigned objId() const = 0;
};

} // namespace compass::lib

#endif // COMPASS_LIB_CONTAINER_H
