//===-- lib/HwQueue.cpp - Relaxed Herlihy-Wing queue ------------------------===//

#include "lib/HwQueue.h"

#include "support/Error.h"

using namespace compass;
using namespace compass::lib;
using namespace compass::rmc;
using namespace compass::sim;
using compass::graph::EmptyVal;
using compass::graph::EventId;
using compass::graph::OpKind;

HwQueue::HwQueue(Machine &M, spec::SpecMonitor &Mon, std::string Name,
                 unsigned Capacity)
    : Mon(Mon), Capacity(Capacity) {
  Obj = Mon.registerObject(Name);
  Back = M.alloc(Name + ".back");
  Items = M.alloc(Name + ".items", Capacity);
  Eids = M.alloc(Name + ".eids", Capacity);
}

Task<void> HwQueue::enqueue(Env &E, Value V) {
  // The release FAA (together with the dequeuer's acquire read of back and
  // RMW release sequences) is what orders a thread's *own* earlier
  // enqueues before any dequeuer's scan — without it, a dequeuer could
  // skip a stale-empty slot 0 while taking the same thread's later slot 1,
  // violating QUEUE-FIFO for program-order-related enqueues.
  Value I = co_await E.fetchAdd(Back, 1, MemOrder::Release);
  if (I >= Capacity)
    fatalError("HwQueue capacity exceeded; size the workload");
  EventId Ev = Mon.reserve(E.M, E.Tid);
  co_await E.store(Eids + static_cast<Loc>(I), Ev, MemOrder::NonAtomic);
  // Commit point: the release store publishing the element.
  co_await E.store(Items + static_cast<Loc>(I), V, MemOrder::Release);
  Mon.commit(E.M, E.Tid, Ev, Obj, OpKind::Enq, V);
  co_return;
}

Task<Value> HwQueue::dequeue(Env &E) {
  Value N = co_await E.load(Back, MemOrder::Acquire);
  for (Value I = 0; I < N; ++I) {
    Loc Slot = Items + static_cast<Loc>(I);
    // The scan read may be stale (observe an empty slot that has been
    // filled) — this is what makes the implementation weak.
    Value V = co_await E.load(Slot, MemOrder::Acquire);
    if (V == 0 || V == TakenVal)
      continue;
    // The ghost read is na and race-free: the acquire load above read the
    // publisher's release store, which carries the ghost write.
    Value EnqEv =
        co_await E.load(Eids + static_cast<Loc>(I), MemOrder::NonAtomic);
    EventId Ev = Mon.reserve(E.M, E.Tid);
    // Acquire, not acq-rel: "dequeues use acquire ones" (Section 3.1). A
    // releasing claim would publish the *dequeuer's* logical view through
    // the Taken message, making later scanners "know" enqueues they never
    // synchronized with and flagging spurious QUEUE-EMPDEQ violations.
    auto R = co_await E.cas(Slot, V, TakenVal, MemOrder::Acquire);
    if (R.Success) {
      // Commit point: the claiming CAS (same scheduler step).
      Mon.commit(E.M, E.Tid, Ev, Obj, OpKind::DeqOk, V, 0,
                 static_cast<EventId>(EnqEv));
      co_return V;
    }
    Mon.retract(E.M, E.Tid, Ev);
  }
  EventId Ev = Mon.reserve(E.M, E.Tid);
  Mon.commit(E.M, E.Tid, Ev, Obj, OpKind::DeqEmpty, EmptyVal);
  co_return EmptyVal;
}
