//===-- lib/Exchanger.h - Elimination exchanger with helping ----*- C++ -*-===//
//
// Part of compass-cxx. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A slot exchanger in the style of Scherer-Lea-Scott's exchange channel,
/// the library for which the paper gives the first RMC exchanger spec
/// (Section 4.2). A thread either installs an *offer* (value + pending
/// hole) with a release CAS on the slot, or — finding an offer — *helps*:
/// it claims the hole with a CAS, which is the commit point of *both*
/// exchanges. The helper commits the helpee's event and then its own,
/// atomically (adjacent commit indices, symmetric so edges), realizing
/// Figure 5's helping pattern. An installed offer that finds no partner is
/// cancelled by CASing the hole, and the exchange fails with ⊥.
///
/// Exchanged values must be distinct from HolePending/HoleCancel and ⊥.
///
//===----------------------------------------------------------------------===//

#ifndef COMPASS_LIB_EXCHANGER_H
#define COMPASS_LIB_EXCHANGER_H

#include "lib/Container.h"
#include "spec/SpecMonitor.h"

#include <string>

namespace compass::lib {

class Exchanger {
public:
  Exchanger(rmc::Machine &M, spec::SpecMonitor &Mon, std::string Name);

  /// Attempts to exchange \p V (which must not be ⊥) with another thread.
  /// Returns the partner's value on success, graph::BottomVal on failure.
  /// \p Attempts bounds the install/match rounds before giving up; model-
  /// checked workloads keep it small.
  sim::Task<rmc::Value> exchange(sim::Env &E, rmc::Value V,
                                 unsigned Attempts = 1);

  unsigned objId() const { return Obj; }

private:
  // Offer layout: [value (na), offering thread id (na), hole (atomic)].
  static constexpr unsigned ValOff = 0;
  static constexpr unsigned TidOff = 1;
  static constexpr unsigned HoleOff = 2;

  /// Hole states: 0 = pending; HoleCancel = offer withdrawn; any other
  /// value = the partner's exchanged value.
  static constexpr rmc::Value HoleCancel = graph::BottomVal;

  spec::SpecMonitor &Mon;
  unsigned Obj;
  rmc::Loc Slot; ///< 0 = no offer, else the offer's location.
};

} // namespace compass::lib

#endif // COMPASS_LIB_EXCHANGER_H
