//===-- lib/SpscRing.h - Lock-free SPSC ring buffer -------------*- C++ -*-===//
//
// Part of compass-cxx. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A single-producer single-consumer ring buffer — the Lamport-style
/// queue behind Section 3.2's SPSC discussion, interesting to verify
/// because it contains *no* RMWs at all: correctness rests entirely on
/// release/acquire index handoff. Slots are plain non-atomic cells that
/// alternate ownership between producer and consumer; the machine's race
/// detector is the oracle that the handoff is airtight (weaken either
/// index access and some interleaving races).
///
/// Commit points: enqueue = the release store of tail; successful dequeue
/// = the release store of head; empty dequeue = the acquire read of tail.
///
//===----------------------------------------------------------------------===//

#ifndef COMPASS_LIB_SPSCRING_H
#define COMPASS_LIB_SPSCRING_H

#include "lib/Container.h"
#include "spec/SpecMonitor.h"

#include <string>

namespace compass::lib {

class SpscRing {
public:
  SpscRing(rmc::Machine &M, spec::SpecMonitor &Mon, std::string Name,
           unsigned Capacity);

  /// Producer only: enqueues \p V; false when the ring is full. The first
  /// caller pins the producer thread.
  sim::Task<bool> tryEnqueue(sim::Env &E, rmc::Value V);

  /// Producer only: enqueues \p V, waiting (fairly) while full.
  sim::Task<void> enqueueBlocking(sim::Env &E, rmc::Value V);

  /// Consumer only: dequeues; graph::EmptyVal when the ring appears
  /// empty. The first caller pins the consumer thread.
  sim::Task<rmc::Value> dequeue(sim::Env &E);

  /// Consumer only: dequeues, waiting (fairly) while empty. Never
  /// commits Deq(ε).
  sim::Task<rmc::Value> dequeueBlocking(sim::Env &E);

  unsigned objId() const { return Obj; }

private:
  void checkRole(unsigned &Role, unsigned Tid, const char *What);

  spec::SpecMonitor &Mon;
  unsigned Obj;
  unsigned Capacity;
  unsigned ProducerTid = ~0u;
  unsigned ConsumerTid = ~0u;
  rmc::Loc HeadIdx; ///< Next index to dequeue (consumer-owned, released).
  rmc::Loc TailIdx; ///< Next index to enqueue (producer-owned, released).
  rmc::Loc Buf;     ///< Capacity na cells, ownership alternating.
  rmc::Loc Eids;    ///< Ghost enqueue-event ids, parallel to Buf.
};

} // namespace compass::lib

#endif // COMPASS_LIB_SPSCRING_H
