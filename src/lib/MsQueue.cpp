//===-- lib/MsQueue.cpp - Michael-Scott queue (release/acquire) ------------===//

#include "lib/MsQueue.h"

using namespace compass;
using namespace compass::lib;
using namespace compass::rmc;
using namespace compass::sim;
using compass::graph::EmptyVal;
using compass::graph::EventId;
using compass::graph::OpKind;

MsQueue::MsQueue(Machine &M, spec::SpecMonitor &Mon, std::string Name,
                 SyncProfile Profile)
    : Mon(Mon), Profile(Profile) {
  Obj = Mon.registerObject(Name);
  Loc Sentinel = M.alloc(Name + ".sentinel", 3);
  Head = M.alloc(Name + ".head", 1, Sentinel);
  Tail = M.alloc(Name + ".tail", 1, Sentinel);
}

MemOrder MsQueue::ptrLoadOrder() const {
  return Profile == SyncProfile::RelAcq ? MemOrder::Acquire
                                        : MemOrder::Relaxed;
}

MemOrder MsQueue::publishCasOrder() const {
  return Profile == SyncProfile::RelAcq ? MemOrder::Release
                                        : MemOrder::Relaxed;
}

Task<void> MsQueue::enqueue(Env &E, Value V) {
  Loc N = E.M.alloc("msq.node", 3);
  co_await E.store(N + ValOff, V, MemOrder::NonAtomic);

  // Stutter detection: an iteration that observes the same (tail, next)
  // pair as the previous failed one made no progress (see Env::prune).
  Value PrevTail = ~0ull, PrevNext = ~0ull;
  for (;;) {
    Value TailPtr = co_await E.load(Tail, ptrLoadOrder());
    if (fenced())
      co_await E.fence(MemOrder::Acquire);
    Loc Last = static_cast<Loc>(TailPtr);
    Value Next = co_await E.load(Last + NextOff, ptrLoadOrder());
    if (fenced())
      co_await E.fence(MemOrder::Acquire);
    if (TailPtr == PrevTail && Next == PrevNext)
      co_await E.prune();
    PrevTail = TailPtr;
    PrevNext = Next;

    if (Next != 0) {
      // Tail is lagging; help advance it and retry. The helping CAS
      // publishes an existing node, so the fenced profile needs a
      // release fence before it too.
      if (fenced())
        co_await E.fence(MemOrder::Release);
      co_await E.cas(Tail, TailPtr, Next, publishCasOrder());
      continue;
    }
    EventId Ev = Mon.reserve(E.M, E.Tid);
    co_await E.store(N + EidOff, Ev, MemOrder::NonAtomic);
    if (fenced())
      co_await E.fence(MemOrder::Release);
    auto R = co_await E.cas(Last + NextOff, 0, N, publishCasOrder());
    if (R.Success) {
      // Commit point: the CAS linking the node (made releasing either by
      // its own ordering or by the preceding release fence).
      Mon.commit(E.M, E.Tid, Ev, Obj, OpKind::Enq, V);
      if (fenced())
        co_await E.fence(MemOrder::Release);
      co_await E.cas(Tail, TailPtr, N, publishCasOrder());
      co_return;
    }
    Mon.retract(E.M, E.Tid, Ev);
  }
}

Task<Value> MsQueue::dequeue(Env &E) { return dequeueImpl(E, false); }

Task<Value> MsQueue::dequeueBlocking(Env &E) { return dequeueImpl(E, true); }

Task<Value> MsQueue::dequeueImpl(Env &E, bool Blocking) {
  Value PrevHead = ~0ull, PrevNext = ~0ull;
  for (;;) {
    Value HeadPtr = co_await E.load(Head, ptrLoadOrder());
    if (fenced())
      co_await E.fence(MemOrder::Acquire);
    Loc First = static_cast<Loc>(HeadPtr);
    Value Next;
    if (Blocking) {
      // Fair wait for a successor instead of an empty answer. If other
      // dequeuers advance head meanwhile, our CAS below fails and we
      // retry against the new head.
      Next = co_await E.spinUntil(
          First + NextOff, [](Value V) { return V != 0; },
          ptrLoadOrder() == MemOrder::Relaxed ? MemOrder::Relaxed
                                              : MemOrder::Acquire);
      if (fenced())
        co_await E.fence(MemOrder::Acquire);
    } else {
      Next = co_await E.load(First + NextOff, ptrLoadOrder());
      if (fenced())
        co_await E.fence(MemOrder::Acquire);
      if (Next == 0) {
        // Commit point (empty): the read of a null next.
        EventId Ev = Mon.reserve(E.M, E.Tid);
        Mon.commit(E.M, E.Tid, Ev, Obj, OpKind::DeqEmpty, EmptyVal);
        co_return EmptyVal;
      }
    }
    if (HeadPtr == PrevHead && Next == PrevNext)
      co_await E.prune();
    PrevHead = HeadPtr;
    PrevNext = Next;

    Loc Node = static_cast<Loc>(Next);
    Value V = co_await E.load(Node + ValOff, MemOrder::NonAtomic);
    Value EnqEv = co_await E.load(Node + EidOff, MemOrder::NonAtomic);
    EventId Ev = Mon.reserve(E.M, E.Tid);
    if (fenced())
      co_await E.fence(MemOrder::Release);
    auto R = co_await E.cas(Head, HeadPtr, Next,
                            Profile == SyncProfile::RelAcq
                                ? MemOrder::AcqRel
                                : MemOrder::Relaxed);
    if (R.Success) {
      // Commit point: the CAS advancing head; so edge to the enqueue
      // whose ghost id the node carries.
      Mon.commit(E.M, E.Tid, Ev, Obj, OpKind::DeqOk, V, 0,
                 static_cast<EventId>(EnqEv));
      co_return V;
    }
    Mon.retract(E.M, E.Tid, Ev);
  }
}
