//===-- lib/TreiberStackEbr.cpp - Treiber stack with simulated EBR --------===//

#include "lib/TreiberStackEbr.h"

using namespace compass;
using namespace compass::lib;
using namespace compass::rmc;
using namespace compass::sim;
using compass::graph::EmptyVal;
using compass::graph::EventId;
using compass::graph::FailRaceVal;
using compass::graph::OpKind;

TreiberStackEbr::TreiberStackEbr(Machine &M, spec::SpecMonitor &Mon,
                                 std::string Name, unsigned NumThreads)
    : Mon(Mon), Dom(M, Name + ".ebr", NumThreads) {
  Obj = Mon.registerObject(Name);
  HeadLoc = M.alloc(Name + ".head"); // 0 = empty stack.
}

Task<bool> TreiberStackEbr::pushAttempt(Env &E, Value HeadPtr, Loc N,
                                        Value V) {
  co_await E.store(N + NextOff, HeadPtr, MemOrder::NonAtomic);
  EventId Ev = Mon.reserve(E.M, E.Tid);
  co_await E.store(N + EidOff, Ev, MemOrder::NonAtomic);
  auto R = co_await E.cas(HeadLoc, HeadPtr, N, MemOrder::Release);
  if (R.Success) {
    // Commit point: the release CAS installing the node.
    Mon.commit(E.M, E.Tid, Ev, Obj, OpKind::Push, V);
    co_return true;
  }
  Mon.retract(E.M, E.Tid, Ev);
  co_return false;
}

Task<void> TreiberStackEbr::push(Env &E, Value V) {
  Loc N = E.M.alloc("estk.node", NodeCells);
  co_await E.store(N + ValOff, V, MemOrder::NonAtomic);
  // Pin around the whole operation (native Guard discipline); the push
  // never dereferences the head node, but pinning keeps the protocol
  // uniform and exercises the announcement scan from both operations.
  auto Pin = Dom.pin(E);
  co_await Pin;
  Timestamp PrevTs = ~0u;
  bool First = true;
  for (;;) {
    Value HeadPtr = co_await E.load(HeadLoc, MemOrder::Relaxed);
    Timestamp Ts = E.M.lastReadTs(E.Tid);
    if (!First && Ts == PrevTs)
      co_await E.prune();
    First = false;
    PrevTs = Ts;
    auto Attempt = pushAttempt(E, HeadPtr, N, V);
    bool Ok = co_await Attempt;
    if (Ok)
      break;
  }
  auto Unpin = Dom.unpin(E);
  co_await Unpin;
}

Task<bool> TreiberStackEbr::tryPush(Env &E, Value V) {
  Loc N = E.M.alloc("estk.node", NodeCells);
  co_await E.store(N + ValOff, V, MemOrder::NonAtomic);
  auto Pin = Dom.pin(E);
  co_await Pin;
  Value HeadPtr = co_await E.load(HeadLoc, MemOrder::Relaxed);
  auto Attempt = pushAttempt(E, HeadPtr, N, V);
  bool Ok = co_await Attempt;
  auto Unpin = Dom.unpin(E);
  co_await Unpin;
  co_return Ok;
}

Task<Value> TreiberStackEbr::popAttempt(Env &E, Timestamp *HeadTsOut) {
  Value HeadPtr = co_await E.load(HeadLoc, MemOrder::Acquire);
  if (HeadTsOut)
    *HeadTsOut = E.M.lastReadTs(E.Tid);
  if (HeadPtr == 0) {
    // Commit point (empty): the acquire read of a null head.
    EventId Ev = Mon.reserve(E.M, E.Tid);
    Mon.commit(E.M, E.Tid, Ev, Obj, OpKind::PopEmpty, EmptyVal);
    co_return EmptyVal;
  }
  Loc Node = static_cast<Loc>(HeadPtr);
  Value Next = co_await E.load(Node + NextOff, MemOrder::NonAtomic);
  Value V = co_await E.load(Node + ValOff, MemOrder::NonAtomic);
  Value PushEv = co_await E.load(Node + EidOff, MemOrder::NonAtomic);
  EventId Ev = Mon.reserve(E.M, E.Tid);
  auto R = co_await E.cas(HeadLoc, HeadPtr, Next, MemOrder::Acquire);
  if (R.Success) {
    // Commit point: the acquire CAS removing the node. The node is now
    // unlinked; retire it (still pinned) so the domain frees it after a
    // full grace period.
    Mon.commit(E.M, E.Tid, Ev, Obj, OpKind::PopOk, V, 0,
               static_cast<EventId>(PushEv));
    auto Ret = Dom.retire(E, Node, NodeCells);
    co_await Ret;
    co_return V;
  }
  Mon.retract(E.M, E.Tid, Ev);
  co_return FailRaceVal;
}

Task<Value> TreiberStackEbr::tryPop(Env &E) {
  auto Pin = Dom.pin(E);
  co_await Pin;
  auto Attempt = popAttempt(E);
  Value V = co_await Attempt;
  auto Unpin = Dom.unpin(E);
  co_await Unpin;
  co_return V;
}

Task<Value> TreiberStackEbr::pop(Env &E) {
  auto Pin = Dom.pin(E);
  co_await Pin;
  Timestamp PrevTs = ~0u;
  bool First = true;
  Value Out = FailRaceVal;
  for (;;) {
    Timestamp Ts = 0;
    auto Attempt = popAttempt(E, &Ts);
    Value V = co_await Attempt;
    if (V != FailRaceVal) {
      Out = V;
      break;
    }
    // Stutter fingerprint: the head message the failed attempt was based
    // on; re-observing the same message cannot make progress.
    if (!First && Ts == PrevTs)
      co_await E.prune();
    First = false;
    PrevTs = Ts;
  }
  auto Unpin = Dom.unpin(E);
  co_await Unpin;
  co_return Out;
}
