//===-- lib/Exchanger.cpp - Elimination exchanger with helping -------------===//

#include "lib/Exchanger.h"

#include "support/Error.h"

using namespace compass;
using namespace compass::lib;
using namespace compass::rmc;
using namespace compass::sim;
using compass::graph::BottomVal;
using compass::graph::EventId;
using compass::graph::OpKind;

Exchanger::Exchanger(Machine &M, spec::SpecMonitor &Mon, std::string Name)
    : Mon(Mon) {
  Obj = Mon.registerObject(Name);
  Slot = M.alloc(Name + ".slot");
}

Task<Value> Exchanger::exchange(Env &E, Value V, unsigned Attempts) {
  if (V == BottomVal || V == 0)
    fatalError("exchanged values must be nonzero and not ⊥");

  for (unsigned Round = 0; Round != Attempts; ++Round) {
    Value SlotVal = co_await E.load(Slot, MemOrder::Acquire);
    if (SlotVal == 0) {
      // No offer present: install our own.
      Loc Off = E.M.alloc("xchg.offer", 3);
      co_await E.store(Off + ValOff, V, MemOrder::NonAtomic);
      co_await E.store(Off + TidOff, E.Tid, MemOrder::NonAtomic);
      auto Install = co_await E.cas(Slot, 0, Off, MemOrder::Release);
      if (!Install.Success)
        continue; // Someone else installed; retry the round.

      // Withdraw the offer; failure means a partner committed us.
      auto Cancel = co_await E.cas(Off + HoleOff, 0, HoleCancel,
                                   MemOrder::Relaxed, MemOrder::Acquire);
      if (Cancel.Success) {
        co_await E.cas(Slot, Off, 0, MemOrder::Relaxed); // Uninstall.
        continue;
      }
      // Matched: the failing acquire CAS read the helper's release CAS,
      // acquiring both events (the local postcondition of Figure 5).
      co_await E.cas(Slot, Off, 0, MemOrder::Relaxed); // Cleanup.
      co_return Cancel.Old;
    }

    // An offer is present: try to be the helper.
    Loc Off = static_cast<Loc>(SlotVal);
    // The offer message's view is the helpee's view at its offer — the
    // physical view its event records (Figure 5's V2).
    rmc::View OfferPhys = E.M.lastReadKnowledge(E.Tid).Phys;
    Value PartnerVal = co_await E.load(Off + ValOff, MemOrder::NonAtomic);
    Value PartnerTid = co_await E.load(Off + TidOff, MemOrder::NonAtomic);
    EventId HelpeeEv = Mon.reserve(E.M, E.Tid);
    EventId MyEv = Mon.reserve(E.M, E.Tid);
    auto R = co_await E.cas(Off + HoleOff, 0, V, MemOrder::AcqRel);
    if (R.Success) {
      // Commit point of BOTH exchanges: helpee first, then us, in one
      // scheduler step (Section 4.2's atomic pairing).
      Mon.commitExchangePair(E.M, E.Tid, MyEv, V,
                             static_cast<unsigned>(PartnerTid), HelpeeEv,
                             PartnerVal, OfferPhys, Obj);
      co_await E.cas(Slot, Off, 0, MemOrder::Relaxed); // Cleanup.
      co_return PartnerVal;
    }
    Mon.retract(E.M, E.Tid, HelpeeEv);
    Mon.retract(E.M, E.Tid, MyEv);
    co_await E.cas(Slot, Off, 0, MemOrder::Relaxed); // Help clear.
  }

  // Give up: a failed exchange, committed with ⊥ (Figure 5's failure
  // disjunct). Its commit point is here; the logical view is whatever the
  // thread has synchronized with.
  EventId Ev = Mon.reserve(E.M, E.Tid);
  Mon.commit(E.M, E.Tid, Ev, Obj, OpKind::Exchange, V, BottomVal);
  co_return BottomVal;
}
