//===-- lib/HwQueue.h - Relaxed Herlihy-Wing queue --------------*- C++ -*-===//
//
// Part of compass-cxx. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The relaxed Herlihy-Wing queue [Herlihy & Wing, TOPLAS'90] variant the
/// paper verifies against the graph-only LAT_hb spec (Section 3.2): "the
/// implementation ensures lhb only between matching enqueue-dequeue pairs,
/// but not among enqueues or among dequeues. Enqueues use release
/// operations, and dequeues use acquire ones."
///
/// An enqueue grabs a slot with a relaxed fetch-add on `back` and publishes
/// the element with a release store (the commit point). A dequeue reads a
/// snapshot of `back` (relaxed), then scans the slots with acquire loads —
/// which may observe stale empties — claiming the first element it sees
/// with a CAS to Taken; after a full fruitless scan it returns empty.
///
/// The paper's point, which experiment E2 reproduces: this implementation
/// satisfies QueueConsistent (LAT_hb) but *not* the abstract-state
/// (LAT_abs_hb) spec — commit points cannot be chosen to maintain a FIFO
/// abstract state without prophecy.
///
//===----------------------------------------------------------------------===//

#ifndef COMPASS_LIB_HWQUEUE_H
#define COMPASS_LIB_HWQUEUE_H

#include "lib/Container.h"
#include "spec/SpecMonitor.h"

#include <string>

namespace compass::lib {

class HwQueue final : public SimQueue {
public:
  /// \p Capacity bounds the number of enqueues over the queue's lifetime
  /// (the array variant of the algorithm); exceeding it is fatal.
  HwQueue(rmc::Machine &M, spec::SpecMonitor &Mon, std::string Name,
          unsigned Capacity);

  sim::Task<void> enqueue(sim::Env &E, rmc::Value V) override;
  sim::Task<rmc::Value> dequeue(sim::Env &E) override;

  unsigned objId() const override { return Obj; }

private:
  /// Marks a slot whose element was taken (distinct from 0 = never
  /// written, so a claiming CAS has a unique expected value).
  static constexpr rmc::Value TakenVal = graph::BottomVal;

  spec::SpecMonitor &Mon;
  unsigned Obj;
  unsigned Capacity;
  rmc::Loc Back;  ///< Next free slot index.
  rmc::Loc Items; ///< Items + i: slot i's element (0 empty, TakenVal).
  rmc::Loc Eids;  ///< Ghost: enqueue event id per slot.
};

} // namespace compass::lib

#endif // COMPASS_LIB_HWQUEUE_H
