//===-- lib/WsDeque.h - Chase-Lev work-stealing deque -----------*- C++ -*-===//
//
// Part of compass-cxx. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Chase-Lev work-stealing deque with the C11 access modes of Lê,
/// Pop, Cohen & Zappa Nardelli [PPoPP'13] — the library the paper's
/// Section 6 names as future work for the Compass approach. One *owner*
/// thread pushes and takes at the bottom; any number of *thieves* steal
/// from the top:
///
///  * push: relaxed buffer store, release fence, relaxed bottom store
///    (the commit point — the fence makes the bottom message carry the
///    element and the event);
///  * take: relaxed bottom decrement, SC fence, relaxed top read; the
///    last-element race is resolved by an SC CAS on top;
///  * steal: acquire top, SC fence, acquire bottom, relaxed buffer read,
///    SC CAS on top (the commit point).
///
/// The buffer is sized for the workload's lifetime pushes (no resizing,
/// hence no index wrap-around and no buffer reuse races — the simulated
/// twin of a sufficiently large ring).
///
/// Events: Push / PopOk / PopEmpty (owner), Steal / StealEmpty (thieves),
/// checked by spec::checkWsDequeConsistent, the abstract double-ended
/// replay, and the SeqSpec::WsDeque linearization search.
///
//===----------------------------------------------------------------------===//

#ifndef COMPASS_LIB_WSDEQUE_H
#define COMPASS_LIB_WSDEQUE_H

#include "lib/Container.h"
#include "spec/SpecMonitor.h"

#include <map>
#include <string>

namespace compass::lib {

class WsDeque {
public:
  /// \p Capacity bounds lifetime pushes.
  WsDeque(rmc::Machine &M, spec::SpecMonitor &Mon, std::string Name,
          unsigned Capacity);

  /// Owner: pushes \p V at the bottom. The first owner operation pins the
  /// owner thread; calling from another thread is fatal.
  sim::Task<void> push(sim::Env &E, rmc::Value V);

  /// Owner: takes from the bottom; graph::EmptyVal when empty.
  sim::Task<rmc::Value> take(sim::Env &E);

  /// Thief: steals from the top; graph::EmptyVal when observably empty,
  /// graph::FailRaceVal when it lost the race for the top element.
  sim::Task<rmc::Value> steal(sim::Env &E);

  unsigned objId() const { return Obj; }

private:
  void checkOwner(unsigned Tid);

  spec::SpecMonitor &Mon;
  unsigned Obj;
  unsigned Capacity;
  unsigned OwnerTid = ~0u;
  rmc::Loc Top;    ///< Next index to steal.
  rmc::Loc Bottom; ///< Next index to push.
  rmc::Loc Buf;    ///< Capacity cells, one per lifetime index.
  rmc::Loc Eids;   ///< Ghost push-event ids, parallel to Buf.

  /// Owner-side shadow of its own pushes (index -> value and event id),
  /// used to keep the take commit in the same scheduler step as its
  /// decisive instruction. Plain ghost state; the simulated reads still
  /// happen and are asserted against it.
  struct ShadowEntry {
    rmc::Value Val;
    graph::EventId Ev;
  };
  std::map<uint64_t, ShadowEntry> OwnerShadow;
};

} // namespace compass::lib

#endif // COMPASS_LIB_WSDEQUE_H
