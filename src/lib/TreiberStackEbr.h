//===-- lib/TreiberStackEbr.h - Treiber stack with simulated EBR -*- C++ -*-===//
//
// Part of compass-cxx. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Treiber stack of TreiberStack.h augmented with simulated
/// epoch-based reclamation (sim/Ebr.h), mirroring native/TreiberStackEbr.h:
/// every operation runs inside a pinned critical section, and a successful
/// pop retires its unlinked node into the EBR domain, whose grace-period
/// protocol eventually frees it. The commit points, SpecMonitor protocol,
/// and node layout are identical to the plain stack, so the same LAT stack
/// spec and sequential reference model apply unchanged — what the checker
/// additionally verifies is reclamation safety: no execution may touch a
/// freed node (USE_AFTER_RETIRE) or free one under a pinned reader
/// (PREMATURE_FREE); see rmc::Machine's ghost operations.
///
//===----------------------------------------------------------------------===//

#ifndef COMPASS_LIB_TREIBERSTACKEBR_H
#define COMPASS_LIB_TREIBERSTACKEBR_H

#include "lib/Container.h"
#include "sim/Ebr.h"
#include "spec/SpecMonitor.h"

#include <string>

namespace compass::lib {

class TreiberStackEbr final : public SimStack {
public:
  /// \p NumThreads sizes the EBR domain's announcement-slot array (one
  /// slot per simulated thread).
  TreiberStackEbr(rmc::Machine &M, spec::SpecMonitor &Mon, std::string Name,
                  unsigned NumThreads);

  sim::Task<void> push(sim::Env &E, rmc::Value V) override;
  sim::Task<rmc::Value> pop(sim::Env &E) override;
  sim::Task<bool> tryPush(sim::Env &E, rmc::Value V) override;
  sim::Task<rmc::Value> tryPop(sim::Env &E) override;

  unsigned objId() const override { return Obj; }

private:
  // Node layout: [value (na), ghost push-event id (na), next (na)].
  static constexpr unsigned ValOff = 0;
  static constexpr unsigned EidOff = 1;
  static constexpr unsigned NextOff = 2;
  static constexpr unsigned NodeCells = 3;

  sim::Task<bool> pushAttempt(sim::Env &E, rmc::Value HeadPtr, rmc::Loc N,
                              rmc::Value V);

  /// One pop attempt (caller pinned); on success the unlinked node is
  /// retired before returning.
  sim::Task<rmc::Value> popAttempt(sim::Env &E,
                                   rmc::Timestamp *HeadTsOut = nullptr);

  spec::SpecMonitor &Mon;
  unsigned Obj;
  rmc::Loc HeadLoc;
  sim::Ebr Dom;
};

} // namespace compass::lib

#endif // COMPASS_LIB_TREIBERSTACKEBR_H
