//===-- lib/Locked.h - Lock-based SC baseline containers --------*- C++ -*-===//
//
// Part of compass-cxx. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Coarse-grained lock-based queue and stack: the sequentially consistent
/// baselines. A test-and-set spinlock (acquire-release CAS, fair waiting
/// via spinUntil) protects plain *non-atomic* data — which doubles as an
/// end-to-end exercise of the machine's race detection: the lock's
/// synchronization is exactly what makes the na accesses race-free.
///
/// These implementations satisfy every spec strength including the strict
/// variants (StrictEmpty, RequireTrueEmpty): commit points are inside the
/// critical section, so the commit order is a linearization.
///
//===----------------------------------------------------------------------===//

#ifndef COMPASS_LIB_LOCKED_H
#define COMPASS_LIB_LOCKED_H

#include "lib/Container.h"
#include "spec/SpecMonitor.h"

#include <string>

namespace compass::lib {

/// Test-and-set spinlock on the simulated machine.
class SpinLock {
public:
  explicit SpinLock(rmc::Machine &M, std::string Name);

  /// Acquires the lock (fair wait while held).
  sim::Task<void> lock(sim::Env &E);

  /// Releases the lock. The release store is the synchronization edge that
  /// transfers the critical section's knowledge (and committed event ids)
  /// to the next owner.
  sim::Task<void> unlock(sim::Env &E);

private:
  rmc::Loc L;
};

/// Bounded circular-buffer queue under a spinlock.
class LockedQueue final : public SimQueue {
public:
  LockedQueue(rmc::Machine &M, spec::SpecMonitor &Mon, std::string Name,
              unsigned Capacity);

  sim::Task<void> enqueue(sim::Env &E, rmc::Value V) override;
  sim::Task<rmc::Value> dequeue(sim::Env &E) override;

  unsigned objId() const override { return Obj; }

private:
  spec::SpecMonitor &Mon;
  unsigned Obj;
  unsigned Capacity;
  SpinLock Lock;
  rmc::Loc Buf;   ///< Capacity value cells (na).
  rmc::Loc EidBuf;///< Ghost enqueue event ids (na).
  rmc::Loc HeadIdx; ///< na, guarded by Lock.
  rmc::Loc Count;   ///< na, guarded by Lock.
};

/// Bounded vector stack under a spinlock.
class LockedStack final : public SimStack {
public:
  LockedStack(rmc::Machine &M, spec::SpecMonitor &Mon, std::string Name,
              unsigned Capacity);

  sim::Task<void> push(sim::Env &E, rmc::Value V) override;
  sim::Task<rmc::Value> pop(sim::Env &E) override;
  sim::Task<bool> tryPush(sim::Env &E, rmc::Value V) override;
  sim::Task<rmc::Value> tryPop(sim::Env &E) override;

  unsigned objId() const override { return Obj; }

private:
  spec::SpecMonitor &Mon;
  unsigned Obj;
  unsigned Capacity;
  SpinLock Lock;
  rmc::Loc Buf;
  rmc::Loc EidBuf;
  rmc::Loc Count;
};

} // namespace compass::lib

#endif // COMPASS_LIB_LOCKED_H
