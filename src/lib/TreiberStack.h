//===-- lib/TreiberStack.h - Relaxed Treiber stack --------------*- C++ -*-===//
//
// Part of compass-cxx. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Treiber's stack [Treiber '86] on the simulated machine, with the
/// paper's relaxed access modes (Section 3.3): pushes use release CASes
/// and successful pops use acquire CASes, so lhb edges exist only between
/// matching push-pop pairs. The paper verifies it against the strong
/// LAT_hist_hb spec (Figure 4) by constructing a linearization from the
/// modification order of the head pointer; our experiment E4 searches for
/// the same witness on every recorded history.
///
/// Commit points: push = the successful head CAS; pop = the successful
/// head CAS; empty pop = the acquire read of a null head. `tryPush` /
/// `tryPop` are the single-attempt variants the elimination stack builds
/// on (Section 4.1).
///
//===----------------------------------------------------------------------===//

#ifndef COMPASS_LIB_TREIBERSTACK_H
#define COMPASS_LIB_TREIBERSTACK_H

#include "lib/Container.h"
#include "spec/SpecMonitor.h"

#include <string>

namespace compass::lib {

class TreiberStack final : public SimStack {
public:
  TreiberStack(rmc::Machine &M, spec::SpecMonitor &Mon, std::string Name);

  sim::Task<void> push(sim::Env &E, rmc::Value V) override;
  sim::Task<rmc::Value> pop(sim::Env &E) override;
  sim::Task<bool> tryPush(sim::Env &E, rmc::Value V) override;
  sim::Task<rmc::Value> tryPop(sim::Env &E) override;

  unsigned objId() const override { return Obj; }

private:
  // Node layout: [value (na), ghost push-event id (na), next (na)].
  static constexpr unsigned ValOff = 0;
  static constexpr unsigned EidOff = 1;
  static constexpr unsigned NextOff = 2;

  /// One push attempt against head value \p HeadPtr with prepared node
  /// \p N; true on success (event committed).
  sim::Task<bool> pushAttempt(sim::Env &E, rmc::Value HeadPtr, rmc::Loc N,
                              rmc::Value V);

  /// One pop attempt; returns the value, EmptyVal (committed), or
  /// FailRaceVal (no event). When \p HeadTsOut is non-null, receives the
  /// timestamp of the head message the attempt observed (the stutter
  /// fingerprint for pop's retry loop).
  sim::Task<rmc::Value> popAttempt(sim::Env &E,
                                   rmc::Timestamp *HeadTsOut = nullptr);

  spec::SpecMonitor &Mon;
  unsigned Obj;
  rmc::Loc HeadLoc;
};

} // namespace compass::lib

#endif // COMPASS_LIB_TREIBERSTACK_H
