//===-- lib/ElimStack.cpp - Elimination stack (Section 4) ------------------===//

#include "lib/ElimStack.h"

using namespace compass;
using namespace compass::lib;
using namespace compass::rmc;
using namespace compass::sim;
using compass::graph::BottomVal;
using compass::graph::EmptyVal;
using compass::graph::FailRaceVal;
using compass::graph::SentinelVal;

ElimStack::ElimStack(Machine &M, spec::SpecMonitor &Mon, std::string Name)
    : Base(M, Mon, Name + ".base"), Ex(M, Mon, Name + ".ex") {}

Task<bool> ElimStack::tryPush(Env &E, Value V) {
  auto BaseTry = Base.tryPush(E, V);
  bool BaseOk = co_await BaseTry;
  if (BaseOk)
    co_return true;
  auto Xchg = Ex.exchange(E, V);
  Value Got = co_await Xchg;
  co_return Got == SentinelVal;
}

Task<Value> ElimStack::tryPop(Env &E) {
  auto BaseTry = Base.tryPop(E);
  Value V = co_await BaseTry;
  if (V != FailRaceVal)
    co_return V;
  auto Xchg = Ex.exchange(E, SentinelVal);
  Value V2 = co_await Xchg;
  if (V2 != SentinelVal && V2 != BottomVal)
    co_return V2;
  co_return FailRaceVal;
}

Task<bool> ElimStack::push(Env &E, Value V, unsigned Rounds) {
  for (unsigned I = 0; I != Rounds; ++I) {
    auto Try = tryPush(E, V);
    bool Ok = co_await Try;
    if (Ok)
      co_return true;
  }
  co_return false;
}

Task<Value> ElimStack::pop(Env &E, unsigned Rounds) {
  for (unsigned I = 0; I != Rounds; ++I) {
    auto Try = tryPop(E);
    Value V = co_await Try;
    if (V != FailRaceVal)
      co_return V;
  }
  co_return FailRaceVal;
}
