//===-- lib/TreiberStack.cpp - Relaxed Treiber stack ------------------------===//

#include "lib/TreiberStack.h"

using namespace compass;
using namespace compass::lib;
using namespace compass::rmc;
using namespace compass::sim;
using compass::graph::EmptyVal;
using compass::graph::EventId;
using compass::graph::FailRaceVal;
using compass::graph::OpKind;

TreiberStack::TreiberStack(Machine &M, spec::SpecMonitor &Mon,
                           std::string Name)
    : Mon(Mon) {
  Obj = Mon.registerObject(Name);
  HeadLoc = M.alloc(Name + ".head"); // 0 = empty stack.
}

Task<bool> TreiberStack::pushAttempt(Env &E, Value HeadPtr, Loc N,
                                     Value V) {
  co_await E.store(N + NextOff, HeadPtr, MemOrder::NonAtomic);
  EventId Ev = Mon.reserve(E.M, E.Tid);
  co_await E.store(N + EidOff, Ev, MemOrder::NonAtomic);
  auto R = co_await E.cas(HeadLoc, HeadPtr, N, MemOrder::Release);
  if (R.Success) {
    // Commit point: the release CAS installing the node.
    Mon.commit(E.M, E.Tid, Ev, Obj, OpKind::Push, V);
    co_return true;
  }
  Mon.retract(E.M, E.Tid, Ev);
  co_return false;
}

Task<void> TreiberStack::push(Env &E, Value V) {
  Loc N = E.M.alloc("stk.node", 3);
  co_await E.store(N + ValOff, V, MemOrder::NonAtomic);
  // Stutter fingerprint: the head *message* (timestamp) we based the
  // failed attempt on. Head values can recur (S, A, B, A, ...), so values
  // alone would not distinguish a stale re-read from genuine progress.
  Timestamp PrevTs = ~0u;
  bool First = true;
  for (;;) {
    Value HeadPtr = co_await E.load(HeadLoc, MemOrder::Relaxed);
    Timestamp Ts = E.M.lastReadTs(E.Tid);
    if (!First && Ts == PrevTs)
      co_await E.prune();
    First = false;
    PrevTs = Ts;
    auto Attempt = pushAttempt(E, HeadPtr, N, V);
    bool Ok = co_await Attempt;
    if (Ok)
      co_return;
  }
}

Task<bool> TreiberStack::tryPush(Env &E, Value V) {
  Loc N = E.M.alloc("stk.node", 3);
  co_await E.store(N + ValOff, V, MemOrder::NonAtomic);
  Value HeadPtr = co_await E.load(HeadLoc, MemOrder::Relaxed);
  auto Attempt = pushAttempt(E, HeadPtr, N, V);
  bool Ok = co_await Attempt;
  co_return Ok;
}

Task<Value> TreiberStack::popAttempt(Env &E, Timestamp *HeadTsOut) {
  Value HeadPtr = co_await E.load(HeadLoc, MemOrder::Acquire);
  if (HeadTsOut)
    *HeadTsOut = E.M.lastReadTs(E.Tid);
  if (HeadPtr == 0) {
    // Commit point (empty): the acquire read of a null head.
    EventId Ev = Mon.reserve(E.M, E.Tid);
    Mon.commit(E.M, E.Tid, Ev, Obj, OpKind::PopEmpty, EmptyVal);
    co_return EmptyVal;
  }
  Loc Node = static_cast<Loc>(HeadPtr);
  Value Next = co_await E.load(Node + NextOff, MemOrder::NonAtomic);
  Value V = co_await E.load(Node + ValOff, MemOrder::NonAtomic);
  Value PushEv = co_await E.load(Node + EidOff, MemOrder::NonAtomic);
  EventId Ev = Mon.reserve(E.M, E.Tid);
  auto R = co_await E.cas(HeadLoc, HeadPtr, Next, MemOrder::Acquire);
  if (R.Success) {
    // Commit point: the acquire CAS removing the node.
    Mon.commit(E.M, E.Tid, Ev, Obj, OpKind::PopOk, V, 0,
               static_cast<EventId>(PushEv));
    co_return V;
  }
  Mon.retract(E.M, E.Tid, Ev);
  co_return FailRaceVal;
}

Task<Value> TreiberStack::tryPop(Env &E) { return popAttempt(E); }

Task<Value> TreiberStack::pop(Env &E) {
  Timestamp PrevTs = ~0u;
  bool First = true;
  for (;;) {
    Timestamp Ts = 0;
    auto Attempt = popAttempt(E, &Ts);
    Value V = co_await Attempt;
    if (V != FailRaceVal)
      co_return V;
    // Stutter fingerprint: the head message the failed attempt was based
    // on; re-observing the same message cannot make progress.
    if (!First && Ts == PrevTs)
      co_await E.prune();
    First = false;
    PrevTs = Ts;
  }
}
