//===-- lib/WsDeque.cpp - Chase-Lev work-stealing deque --------------------===//

#include "lib/WsDeque.h"

#include "support/Error.h"

#include <cassert>

using namespace compass;
using namespace compass::lib;
using namespace compass::rmc;
using namespace compass::sim;
using compass::graph::EmptyVal;
using compass::graph::EventId;
using compass::graph::FailRaceVal;
using compass::graph::OpKind;

WsDeque::WsDeque(Machine &M, spec::SpecMonitor &Mon, std::string Name,
                 unsigned Capacity)
    : Mon(Mon), Capacity(Capacity) {
  Obj = Mon.registerObject(Name);
  Top = M.alloc(Name + ".top");
  Bottom = M.alloc(Name + ".bottom");
  Buf = M.alloc(Name + ".buf", Capacity);
  Eids = M.alloc(Name + ".eids", Capacity);
}

void WsDeque::checkOwner(unsigned Tid) {
  if (OwnerTid == ~0u)
    OwnerTid = Tid;
  else if (OwnerTid != Tid)
    fatalError("WsDeque owner operations must come from one thread");
}

Task<void> WsDeque::push(Env &E, Value V) {
  checkOwner(E.Tid);
  Value B = co_await E.load(Bottom, MemOrder::Relaxed);
  Value T = co_await E.load(Top, MemOrder::Acquire);
  if (B >= Capacity || static_cast<int64_t>(B) - static_cast<int64_t>(T) >=
                           static_cast<int64_t>(Capacity))
    fatalError("WsDeque capacity exceeded; size the workload");

  co_await E.store(Buf + static_cast<Loc>(B), V, MemOrder::Relaxed);
  EventId Ev = Mon.reserve(E.M, E.Tid);
  co_await E.store(Eids + static_cast<Loc>(B), Ev, MemOrder::Relaxed);
  // The release fence makes the (relaxed) bottom store below publish the
  // element and the event id.
  co_await E.fence(MemOrder::Release);
  co_await E.store(Bottom, B + 1, MemOrder::Relaxed);
  // Commit point: the bottom store.
  Mon.commit(E.M, E.Tid, Ev, Obj, OpKind::Push, V);
  OwnerShadow[B] = {V, Ev};
  co_return;
}

Task<Value> WsDeque::take(Env &E) {
  checkOwner(E.Tid);
  Value B = co_await E.load(Bottom, MemOrder::Relaxed);
  int64_t BI = static_cast<int64_t>(B) - 1;
  co_await E.store(Bottom, static_cast<Value>(BI), MemOrder::Relaxed);
  co_await E.fence(MemOrder::SeqCst);
  Value T = co_await E.load(Top, MemOrder::Relaxed);
  int64_t TI = static_cast<int64_t>(T);

  if (TI > BI) {
    // Empty. Commit point: the top read just performed.
    EventId Ev = Mon.reserve(E.M, E.Tid);
    Mon.commit(E.M, E.Tid, Ev, Obj, OpKind::PopEmpty, EmptyVal);
    co_await E.store(Bottom, static_cast<Value>(BI + 1),
                     MemOrder::Relaxed);
    co_return EmptyVal;
  }

  auto ShadowIt = OwnerShadow.find(static_cast<uint64_t>(BI));
  if (ShadowIt == OwnerShadow.end())
    fatalError("WsDeque owner shadow out of sync");
  ShadowEntry Shadow = ShadowIt->second;

  if (TI != BI) {
    // More than one element: the bottom one is owner-exclusive. Commit
    // point: the top read (the decisive instruction of this take).
    EventId Ev = Mon.reserve(E.M, E.Tid);
    Mon.commit(E.M, E.Tid, Ev, Obj, OpKind::PopOk, Shadow.Val, 0,
               Shadow.Ev);
    OwnerShadow.erase(static_cast<uint64_t>(BI));
    // Fidelity: the algorithm reads the buffer; assert against the
    // shadow.
    Value V = co_await E.load(Buf + static_cast<Loc>(BI),
                              MemOrder::Relaxed);
    assert(V == Shadow.Val && "owner read its own slot inconsistently");
    co_return V;
  }

  // Last element: race a concurrent steal with an SC CAS on top.
  EventId Ev = Mon.reserve(E.M, E.Tid);
  auto R = co_await E.cas(Top, T, T + 1, MemOrder::SeqCst,
                          MemOrder::Relaxed);
  if (R.Success) {
    Mon.commit(E.M, E.Tid, Ev, Obj, OpKind::PopOk, Shadow.Val, 0,
               Shadow.Ev);
    OwnerShadow.erase(static_cast<uint64_t>(BI));
    co_await E.store(Bottom, static_cast<Value>(BI + 1),
                     MemOrder::Relaxed);
    co_return Shadow.Val;
  }
  // Lost to a thief: the deque is now empty. Commit point: the failed
  // CAS.
  Mon.retract(E.M, E.Tid, Ev);
  EventId EmpEv = Mon.reserve(E.M, E.Tid);
  Mon.commit(E.M, E.Tid, EmpEv, Obj, OpKind::PopEmpty, EmptyVal);
  co_await E.store(Bottom, static_cast<Value>(BI + 1), MemOrder::Relaxed);
  co_return EmptyVal;
}

Task<Value> WsDeque::steal(Env &E) {
  Value T = co_await E.load(Top, MemOrder::Acquire);
  co_await E.fence(MemOrder::SeqCst);
  Value B = co_await E.load(Bottom, MemOrder::Acquire);
  if (static_cast<int64_t>(T) >= static_cast<int64_t>(B)) {
    // Observably empty. Commit point: the bottom read.
    EventId Ev = Mon.reserve(E.M, E.Tid);
    Mon.commit(E.M, E.Tid, Ev, Obj, OpKind::StealEmpty, EmptyVal);
    co_return EmptyVal;
  }
  Value V = co_await E.load(Buf + static_cast<Loc>(T), MemOrder::Relaxed);
  Value PushEv =
      co_await E.load(Eids + static_cast<Loc>(T), MemOrder::Relaxed);
  EventId Ev = Mon.reserve(E.M, E.Tid);
  auto R = co_await E.cas(Top, T, T + 1, MemOrder::SeqCst,
                          MemOrder::Relaxed);
  if (R.Success) {
    // Commit point: the SC CAS claiming the top element.
    Mon.commit(E.M, E.Tid, Ev, Obj, OpKind::Steal, V, 0,
               static_cast<EventId>(PushEv));
    co_return V;
  }
  Mon.retract(E.M, E.Tid, Ev);
  co_return FailRaceVal;
}
