//===-- support/Choice.cpp - Nondeterminism resolution interface ---------===//

#include "support/Choice.h"

#include <cassert>

using namespace compass;

ChoiceSource::~ChoiceSource() = default;

unsigned FirstChoice::choose(unsigned Count, const char *Tag) {
  (void)Tag;
  (void)Count;
  assert(Count >= 1 && "choice with no alternatives");
  return 0;
}
