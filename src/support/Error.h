//===-- support/Error.h - Fatal errors and checked assertions --*- C++ -*-===//
//
// Part of compass-cxx, a C++ reproduction of the PLDI'22 paper "Compass:
// Strong and Compositional Library Specifications in Relaxed Memory
// Separation Logic". Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fatal-error reporting used for programmatic errors (invariant violations)
/// throughout the library. The simulator and checkers never throw; broken
/// invariants abort with a message, in the spirit of llvm_unreachable.
///
//===----------------------------------------------------------------------===//

#ifndef COMPASS_SUPPORT_ERROR_H
#define COMPASS_SUPPORT_ERROR_H

#include <string_view>

namespace compass {

/// Prints \p Msg to stderr and aborts. Never returns.
[[noreturn]] void fatalError(std::string_view Msg);

/// Marks a point in the code that must be unreachable if the program
/// invariants hold. Aborts with \p Msg when reached.
[[noreturn]] inline void unreachable(std::string_view Msg) {
  fatalError(Msg);
}

} // namespace compass

#endif // COMPASS_SUPPORT_ERROR_H
