//===-- support/Json.h - Minimal JSON writer -------------------*- C++ -*-===//
//
// Part of compass-cxx. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny append-only JSON writer used for machine-readable dumps of
/// exploration summaries and benchmark tables (BENCH_*.json). It supports
/// exactly what those need — objects, arrays, strings, integers, doubles,
/// booleans — with deterministic field order (insertion order) so dumps are
/// diffable across runs. No parsing, no external dependencies.
///
//===----------------------------------------------------------------------===//

#ifndef COMPASS_SUPPORT_JSON_H
#define COMPASS_SUPPORT_JSON_H

#include <cstdint>
#include <string>
#include <string_view>

namespace compass {

/// Streaming JSON writer with explicit begin/end nesting.
///
/// \code
///   JsonWriter J;
///   J.beginObject();
///   J.field("executions", 42u);
///   J.key("tags"); J.beginObject(); ... J.endObject();
///   J.endObject();
///   std::string Out = J.str();
/// \endcode
class JsonWriter {
public:
  void beginObject() { open('{'); }
  void endObject() { close('}'); }
  void beginArray() { open('['); }
  void endArray() { close(']'); }

  /// Emits an object key; must be followed by exactly one value.
  void key(std::string_view K) {
    comma();
    appendString(K);
    Out += ':';
    JustWroteKey = true;
  }

  void value(std::string_view V) {
    comma();
    appendString(V);
  }
  void value(const char *V) { value(std::string_view(V)); }
  void value(bool V) {
    comma();
    Out += V ? "true" : "false";
  }
  void value(uint64_t V) {
    comma();
    Out += std::to_string(V);
  }
  void value(int64_t V) {
    comma();
    Out += std::to_string(V);
  }
  void value(unsigned V) { value(static_cast<uint64_t>(V)); }
  void value(int V) { value(static_cast<int64_t>(V)); }
  void value(double V);

  /// key() + value() in one call.
  template <typename T> void field(std::string_view K, T V) {
    key(K);
    value(V);
  }

  /// Embeds an already-serialized JSON value verbatim (e.g. the output of
  /// another JsonWriter). The caller is responsible for its validity.
  void raw(std::string_view Json) {
    comma();
    Out += Json;
  }

  const std::string &str() const { return Out; }

private:
  void open(char C) {
    comma();
    Out += C;
    AtStart = true;
  }
  void close(char C) {
    Out += C;
    AtStart = false;
  }
  void comma() {
    if (JustWroteKey) {
      JustWroteKey = false;
      return;
    }
    if (!AtStart && !Out.empty())
      Out += ',';
    AtStart = false;
  }
  void appendString(std::string_view S);

  std::string Out;
  bool AtStart = true;
  bool JustWroteKey = false;
};

} // namespace compass

#endif // COMPASS_SUPPORT_JSON_H
