//===-- support/Error.cpp - Fatal errors ---------------------------------===//

#include "support/Error.h"

#include <cstdio>
#include <cstdlib>

void compass::fatalError(std::string_view Msg) {
  std::fprintf(stderr, "compass fatal error: %.*s\n",
               static_cast<int>(Msg.size()), Msg.data());
  std::abort();
}
