//===-- support/SmallVec.h - Small-buffer vector ---------------*- C++ -*-===//
//
// Part of compass-cxx. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal small-buffer-optimized vector for trivially copyable element
/// types: the first \p N elements live inline (no heap allocation), growth
/// beyond that spills to the heap. Used on the machine's hot paths for
/// readable-message candidate sets, where the common case is a handful of
/// timestamps and the container is rebuilt on every operation — inline
/// storage makes that rebuild allocation-free even on a freshly constructed
/// Machine (replay and shrinking construct machines constantly).
///
/// Deliberately tiny: push_back / clear / indexing / iteration only, and
/// only for trivially copyable T (elements are memcpy-moved on spill).
///
//===----------------------------------------------------------------------===//

#ifndef COMPASS_SUPPORT_SMALLVEC_H
#define COMPASS_SUPPORT_SMALLVEC_H

#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <type_traits>

namespace compass {

/// Small-buffer vector; see file comment.
template <typename T, size_t N> class SmallVec {
  static_assert(std::is_trivially_copyable_v<T>,
                "SmallVec only supports trivially copyable types");

public:
  SmallVec() : Data(Inline), Cap(N) {}
  SmallVec(const SmallVec &) = delete;
  SmallVec &operator=(const SmallVec &) = delete;
  ~SmallVec() {
    if (Data != Inline)
      std::free(Data);
  }

  void push_back(const T &V) {
    if (Len == Cap)
      grow();
    Data[Len++] = V;
  }

  void clear() { Len = 0; }

  size_t size() const { return Len; }
  bool empty() const { return Len == 0; }

  T &operator[](size_t I) { return Data[I]; }
  const T &operator[](size_t I) const { return Data[I]; }

  T *begin() { return Data; }
  T *end() { return Data + Len; }
  const T *begin() const { return Data; }
  const T *end() const { return Data + Len; }

private:
  void grow() {
    size_t NewCap = Cap * 2;
    T *NewData = static_cast<T *>(std::malloc(NewCap * sizeof(T)));
    std::memcpy(NewData, Data, Len * sizeof(T));
    if (Data != Inline)
      std::free(Data);
    Data = NewData;
    Cap = NewCap;
  }

  T *Data;
  size_t Len = 0;
  size_t Cap;
  T Inline[N];
};

} // namespace compass

#endif // COMPASS_SUPPORT_SMALLVEC_H
