//===-- support/Rng.cpp - Deterministic pseudo-random numbers ------------===//

#include "support/Rng.h"

#include <cassert>

using namespace compass;

uint64_t compass::splitMix64(uint64_t &State) {
  uint64_t Z = (State += 0x9e3779b97f4a7c15ull);
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
  return Z ^ (Z >> 31);
}

static uint64_t rotl(uint64_t X, int K) { return (X << K) | (X >> (64 - K)); }

void Rng::reseed(uint64_t Seed) {
  uint64_t Sm = Seed;
  for (auto &Word : S)
    Word = splitMix64(Sm);
}

uint64_t Rng::next() {
  uint64_t Result = rotl(S[1] * 5, 7) * 9;
  uint64_t T = S[1] << 17;
  S[2] ^= S[0];
  S[3] ^= S[1];
  S[1] ^= S[2];
  S[0] ^= S[3];
  S[2] ^= T;
  S[3] = rotl(S[3], 45);
  return Result;
}

uint64_t Rng::below(uint64_t Bound) {
  assert(Bound > 0 && "below() requires a positive bound");
  // Rejection sampling to avoid modulo bias.
  uint64_t Threshold = (0 - Bound) % Bound;
  for (;;) {
    uint64_t R = next();
    if (R >= Threshold)
      return R % Bound;
  }
}

uint64_t Rng::range(uint64_t Lo, uint64_t Hi) {
  assert(Lo <= Hi && "range() requires Lo <= Hi");
  return Lo + below(Hi - Lo + 1);
}

bool Rng::chance(uint64_t Num, uint64_t Den) {
  assert(Den > 0 && "chance() requires a positive denominator");
  return below(Den) < Num;
}
