//===-- support/Rng.h - Deterministic pseudo-random numbers ----*- C++ -*-===//
//
// Part of compass-cxx. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, fast, deterministic RNG (SplitMix64 seeding a xoshiro256**
/// generator). Used by the random-exploration mode of the model checker and
/// by workload generators in tests and benches. Determinism given a seed is
/// a requirement: explored counterexamples must be replayable.
///
//===----------------------------------------------------------------------===//

#ifndef COMPASS_SUPPORT_RNG_H
#define COMPASS_SUPPORT_RNG_H

#include <cstdint>

namespace compass {

/// SplitMix64 step; used for seeding and as a cheap standalone mixer.
uint64_t splitMix64(uint64_t &State);

/// xoshiro256** pseudo-random generator with a 64-bit seed interface.
///
/// Satisfies the UniformRandomBitGenerator requirements so it can be used
/// with <random> distributions if needed, but most callers use the bounded
/// helpers below which avoid modulo bias for small bounds well enough for
/// schedule sampling.
class Rng {
public:
  using result_type = uint64_t;

  explicit Rng(uint64_t Seed = 0x9e3779b97f4a7c15ull) { reseed(Seed); }

  /// Re-initializes the full 256-bit state from a 64-bit seed.
  void reseed(uint64_t Seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }

  result_type operator()() { return next(); }

  /// Returns the next 64 random bits.
  uint64_t next();

  /// Returns a uniformly distributed value in [0, Bound). \p Bound > 0.
  uint64_t below(uint64_t Bound);

  /// Returns a uniformly distributed value in [Lo, Hi] inclusive.
  uint64_t range(uint64_t Lo, uint64_t Hi);

  /// Returns true with probability Num/Den.
  bool chance(uint64_t Num, uint64_t Den);

private:
  uint64_t S[4];
};

} // namespace compass

#endif // COMPASS_SUPPORT_RNG_H
