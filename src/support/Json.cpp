//===-- support/Json.cpp - Minimal JSON writer ----------------------------===//

#include "support/Json.h"

#include <cmath>
#include <cstdio>

using namespace compass;

void JsonWriter::value(double V) {
  comma();
  if (!std::isfinite(V)) {
    // JSON has no Inf/NaN; emit null so dumps stay parseable.
    Out += "null";
    return;
  }
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.6g", V);
  Out += Buf;
}

void JsonWriter::appendString(std::string_view S) {
  Out += '"';
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  Out += '"';
}
