//===-- support/Json.cpp - Minimal JSON writer ----------------------------===//

#include "support/Json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

using namespace compass;

void JsonWriter::value(double V) {
  comma();
  if (!std::isfinite(V)) {
    // JSON has no Inf/NaN; emit null so dumps stay parseable.
    Out += "null";
    return;
  }
  // Shortest representation that round-trips: try %.15g first (enough for
  // most values and much shorter), fall back to %.17g which is always
  // exact for IEEE-754 doubles. Without this, second-resolution epoch
  // timestamps were truncated to "1.786e+09" in telemetry records.
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.15g", V);
  if (std::strtod(Buf, nullptr) != V)
    std::snprintf(Buf, sizeof(Buf), "%.17g", V);
  Out += Buf;
}

void JsonWriter::appendString(std::string_view S) {
  Out += '"';
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        // Promote through unsigned char: a raw (signed) char would
        // sign-extend bytes >= 0x80, making %04x print eight hex digits
        // ("ffffffXX") instead of a valid four-digit escape if this path
        // ever admits them.
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x",
                      static_cast<unsigned>(static_cast<unsigned char>(C)));
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  Out += '"';
}
