//===-- support/Choice.h - Nondeterminism resolution interface -*- C++ -*-===//
//
// Part of compass-cxx. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The single funnel through which every source of nondeterminism in a
/// simulated execution is resolved: scheduler picks, which message a relaxed
/// or acquire load reads from, and CAS success/failure alternatives. The
/// model checker's Explorer implements this interface to enumerate all
/// decision sequences (stateless DFS) or to sample them randomly.
///
//===----------------------------------------------------------------------===//

#ifndef COMPASS_SUPPORT_CHOICE_H
#define COMPASS_SUPPORT_CHOICE_H

#include <cstddef>

namespace compass {

/// Resolves one bounded nondeterministic choice at a time.
class ChoiceSource {
public:
  virtual ~ChoiceSource();

  /// Returns a value in [0, Count). \p Count must be at least 1. \p Tag is a
  /// static string naming the decision kind, for diagnostics and traces.
  virtual unsigned choose(unsigned Count, const char *Tag) = 0;

  /// Number of decisions this source has resolved in the current execution.
  /// Exhaustive sources (the explorer's decision tree) report their position
  /// so the copy-on-write engine can mark decision boundaries; sources with
  /// no such notion return 0.
  virtual size_t decisionPosition() const { return 0; }
};

/// A trivial source that always picks alternative 0 (the newest message, the
/// first enabled thread). Useful for smoke tests and sequential examples.
class FirstChoice final : public ChoiceSource {
public:
  unsigned choose(unsigned Count, const char *Tag) override;
};

} // namespace compass

#endif // COMPASS_SUPPORT_CHOICE_H
