//===-- support/Choice.h - Nondeterminism resolution interface -*- C++ -*-===//
//
// Part of compass-cxx. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The single funnel through which every source of nondeterminism in a
/// simulated execution is resolved: scheduler picks, which message a relaxed
/// or acquire load reads from, and CAS success/failure alternatives. The
/// model checker's Explorer implements this interface to enumerate all
/// decision sequences (stateless DFS) or to sample them randomly.
///
//===----------------------------------------------------------------------===//

#ifndef COMPASS_SUPPORT_CHOICE_H
#define COMPASS_SUPPORT_CHOICE_H

#include <cstddef>
#include <cstdint>

namespace compass {

/// Resolves one bounded nondeterministic choice at a time.
class ChoiceSource {
public:
  virtual ~ChoiceSource();

  /// Returns a value in [0, Count). \p Count must be at least 1. \p Tag is a
  /// static string naming the decision kind, for diagnostics and traces.
  virtual unsigned choose(unsigned Count, const char *Tag) = 0;

  /// choose() with a restricted enumeration: the decision is *recorded* at
  /// arity \p Count (so a reduction-free replay of the trace sees the same
  /// decision stream — restricted sets are prefixes of the unrestricted
  /// newest-first enumeration, indices mean the same thing), but only
  /// alternatives in [0, Limit) are enumerated. Requires 1 <= Limit <=
  /// Count. Used by the machine when a source-set reads-from floor cuts a
  /// load/CAS choice set; must be called even when the restricted set
  /// collapses to a single alternative, precisely so the recorded stream
  /// keeps one decision per unrestricted multi-alternative site. Sources
  /// without an enumeration notion resolve it like a plain choose().
  virtual unsigned chooseLimited(unsigned Count, unsigned Limit,
                                 const char *Tag) {
    (void)Limit;
    return choose(Count, Tag);
  }

  /// Number of decisions this source has resolved in the current execution.
  /// Exhaustive sources (the explorer's decision tree) report their position
  /// so the copy-on-write engine can mark decision boundaries; sources with
  /// no such notion return 0.
  virtual size_t decisionPosition() const { return 0; }

  /// Announces, for the *next* choose() call, which alternatives are
  /// reads-from duplicates of their immediate predecessor (bit k set:
  /// alternative k reads a message with the same value and knowledge as
  /// alternative k-1, timestamp-adjacent and strictly below the
  /// modification-order maximum — so the two post-states canonicalize to
  /// the same execution-state fingerprint). The machine reports the mask
  /// right before the choice when duplicate detection is enabled; the
  /// explorer's source-set mode uses it to skip the duplicate subtrees
  /// (Summary::CacheHits). Default: ignore.
  virtual void noteChoiceDup(uint64_t Mask) { (void)Mask; }
};

/// A trivial source that always picks alternative 0 (the newest message, the
/// first enabled thread). Useful for smoke tests and sequential examples.
class FirstChoice final : public ChoiceSource {
public:
  unsigned choose(unsigned Count, const char *Tag) override;
};

} // namespace compass

#endif // COMPASS_SUPPORT_CHOICE_H
