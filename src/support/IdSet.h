//===-- support/IdSet.h - Dynamic bitset over small integer ids -*- C++ -*-===//
//
// Part of compass-cxx. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A grow-on-demand bitset keyed by dense small ids. Used pervasively for
/// *logical views*: the sets of library-event ids that happen-before a point
/// of execution (the paper's `logview`, Section 3.1). Join is bitwise-or and
/// the logical-view inclusion order is subset inclusion.
///
//===----------------------------------------------------------------------===//

#ifndef COMPASS_SUPPORT_IDSET_H
#define COMPASS_SUPPORT_IDSET_H

#include <cstdint>
#include <vector>

namespace compass {

/// A set of dense non-negative ids, stored as a bitset.
///
/// All mutating operations grow the backing storage on demand; trailing zero
/// words are semantically irrelevant (equality and subset tests ignore them).
class IdSet {
public:
  IdSet() = default;

  /// Inserts \p Id into the set.
  void insert(uint32_t Id) {
    std::size_t Word = Id / 64;
    if (Word >= Words.size())
      Words.resize(Word + 1, 0);
    Words[Word] |= 1ull << (Id % 64);
  }

  /// Removes \p Id from the set if present.
  void erase(uint32_t Id) {
    std::size_t Word = Id / 64;
    if (Word < Words.size())
      Words[Word] &= ~(1ull << (Id % 64));
  }

  /// Returns true if \p Id is in the set.
  bool contains(uint32_t Id) const {
    std::size_t Word = Id / 64;
    return Word < Words.size() && (Words[Word] >> (Id % 64)) & 1;
  }

  /// Set union in place: this := this ∪ Other.
  void joinWith(const IdSet &Other) {
    if (Other.Words.size() > Words.size())
      Words.resize(Other.Words.size(), 0);
    for (std::size_t I = 0, E = Other.Words.size(); I != E; ++I)
      Words[I] |= Other.Words[I];
  }

  /// Returns true if this is a subset of \p Other.
  bool subsetOf(const IdSet &Other) const {
    for (std::size_t I = 0, E = Words.size(); I != E; ++I) {
      uint64_t Theirs = I < Other.Words.size() ? Other.Words[I] : 0;
      if (Words[I] & ~Theirs)
        return false;
    }
    return true;
  }

  /// Number of ids in the set.
  unsigned count() const {
    unsigned N = 0;
    for (uint64_t W : Words)
      N += __builtin_popcountll(W);
    return N;
  }

  bool empty() const {
    for (uint64_t W : Words)
      if (W)
        return false;
    return true;
  }

  void clear() { Words.clear(); }

  /// Calls \p Fn for each id in the set, in increasing order.
  template <typename FnT> void forEach(FnT Fn) const {
    for (std::size_t I = 0, E = Words.size(); I != E; ++I) {
      uint64_t W = Words[I];
      while (W) {
        unsigned Bit = __builtin_ctzll(W);
        Fn(static_cast<uint32_t>(I * 64 + Bit));
        W &= W - 1;
      }
    }
  }

  /// Materializes the set as a sorted vector of ids.
  std::vector<uint32_t> toVector() const {
    std::vector<uint32_t> Out;
    Out.reserve(count());
    forEach([&](uint32_t Id) { Out.push_back(Id); });
    return Out;
  }

  friend bool operator==(const IdSet &A, const IdSet &B) {
    std::size_t N = A.Words.size() > B.Words.size() ? A.Words.size()
                                               : B.Words.size();
    for (std::size_t I = 0; I != N; ++I) {
      uint64_t Wa = I < A.Words.size() ? A.Words[I] : 0;
      uint64_t Wb = I < B.Words.size() ? B.Words[I] : 0;
      if (Wa != Wb)
        return false;
    }
    return true;
  }

private:
  std::vector<uint64_t> Words;
};

} // namespace compass

#endif // COMPASS_SUPPORT_IDSET_H
