//===-- clients/Pipeline.cpp - Two-queue protocol client -------------------===//

#include "clients/Pipeline.h"

using namespace compass;
using namespace compass::clients;
using namespace compass::rmc;
using namespace compass::sim;

namespace {

Task<void> producer(Env &E, lib::MsQueue &Q1, std::vector<Value> Odds) {
  for (Value V : Odds) {
    auto T = Q1.enqueue(E, V);
    co_await T;
  }
}

Task<void> relay(Env &E, lib::MsQueue &Q1, lib::MsQueue &Q2, size_t N,
                 PipelineOutcome &Out) {
  for (size_t I = 0; I != N; ++I) {
    auto TakeT = Q1.dequeueBlocking(E);
    Value V = co_await TakeT;
    Value Even = V + 1;
    Out.Relayed.push_back(Even);
    auto PutT = Q2.enqueue(E, Even);
    co_await PutT;
  }
}

Task<void> consumer(Env &E, lib::MsQueue &Q2, size_t N,
                    PipelineOutcome &Out) {
  for (size_t I = 0; I != N; ++I) {
    auto T = Q2.dequeueBlocking(E);
    Out.Consumed.push_back(co_await T);
  }
}

} // namespace

void clients::setupPipeline(Machine &M, Scheduler &S, lib::MsQueue &Q1,
                            lib::MsQueue &Q2, std::vector<Value> Odds,
                            PipelineOutcome &Out) {
  (void)M;
  size_t N = Odds.size();
  Env &E0 = S.newThread();
  S.start(E0, producer(E0, Q1, std::move(Odds)));
  Env &E1 = S.newThread();
  S.start(E1, relay(E1, Q1, Q2, N, Out));
  Env &E2 = S.newThread();
  S.start(E2, consumer(E2, Q2, N, Out));
}
