//===-- clients/Spsc.h - The SPSC client of Section 3.2 ---------*- C++ -*-===//
//
// Part of compass-cxx. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The single-producer single-consumer client of Section 3.2: the producer
/// enqueues the elements of an input array in order, the consumer keeps
/// dequeueing (blocking) and records what it gets. The expected end-to-end
/// behaviour — derivable from the LAT_hb queue spec by building an SPSC
/// protocol, as the paper does — is FIFO: the consumer's array equals the
/// producer's.
///
//===----------------------------------------------------------------------===//

#ifndef COMPASS_CLIENTS_SPSC_H
#define COMPASS_CLIENTS_SPSC_H

#include "lib/MsQueue.h"
#include "sim/Scheduler.h"

#include <vector>

namespace compass::clients {

struct SpscOutcome {
  std::vector<rmc::Value> Consumed;
};

/// Creates the producer and consumer threads on \p Q. The consumer blocks
/// for exactly Items.size() elements. \p Out must outlive the run.
void setupSpsc(rmc::Machine &M, sim::Scheduler &S, lib::MsQueue &Q,
               std::vector<rmc::Value> Items, SpscOutcome &Out);

} // namespace compass::clients

#endif // COMPASS_CLIENTS_SPSC_H
