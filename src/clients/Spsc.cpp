//===-- clients/Spsc.cpp - The SPSC client of Section 3.2 ------------------===//

#include "clients/Spsc.h"

using namespace compass;
using namespace compass::clients;
using namespace compass::rmc;
using namespace compass::sim;

namespace {

Task<void> producer(Env &E, lib::MsQueue &Q, std::vector<Value> Items) {
  for (Value V : Items) {
    auto T = Q.enqueue(E, V);
    co_await T;
  }
}

Task<void> consumer(Env &E, lib::MsQueue &Q, size_t N, SpscOutcome &Out) {
  for (size_t I = 0; I != N; ++I) {
    auto T = Q.dequeueBlocking(E);
    Out.Consumed.push_back(co_await T);
  }
}

} // namespace

void clients::setupSpsc(Machine &M, Scheduler &S, lib::MsQueue &Q,
                        std::vector<Value> Items, SpscOutcome &Out) {
  (void)M;
  size_t N = Items.size();
  Env &E0 = S.newThread();
  S.start(E0, producer(E0, Q, std::move(Items)));
  Env &E1 = S.newThread();
  S.start(E1, consumer(E1, Q, N, Out));
}
