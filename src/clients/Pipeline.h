//===-- clients/Pipeline.h - Two-queue protocol client ----------*- C++ -*-===//
//
// Part of compass-cxx. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Section 2.2 pattern, made executable: a client invariant ties two
/// queues together ("with an invariant that ties together two queues by a
/// relation R ... one queue contains only odd numbers and the other only
/// even numbers"). A producer enqueues odd values into the first queue; a
/// relay dequeues from the first and enqueues each value + 1 (even) into
/// the second; a consumer dequeues from the second. The protocol facts —
/// parity per queue, order preservation end-to-end, conservation — are
/// checked on every explored execution, demonstrating client reasoning
/// that spans multiple objects' logically atomic specs.
///
//===----------------------------------------------------------------------===//

#ifndef COMPASS_CLIENTS_PIPELINE_H
#define COMPASS_CLIENTS_PIPELINE_H

#include "lib/MsQueue.h"
#include "sim/Scheduler.h"

#include <vector>

namespace compass::clients {

struct PipelineOutcome {
  /// Values the relay moved (in relay order, post-increment).
  std::vector<rmc::Value> Relayed;
  /// Values the consumer received from the second queue.
  std::vector<rmc::Value> Consumed;
};

/// Creates producer, relay and consumer threads over \p Q1 and \p Q2.
/// \p Odds must contain odd values; the relay moves Odds.size() values
/// (blocking), the consumer takes the same count (blocking).
void setupPipeline(rmc::Machine &M, sim::Scheduler &S, lib::MsQueue &Q1,
                   lib::MsQueue &Q2, std::vector<rmc::Value> Odds,
                   PipelineOutcome &Out);

} // namespace compass::clients

#endif // COMPASS_CLIENTS_PIPELINE_H
