//===-- clients/MpClient.cpp - The Message-Passing client (Fig. 1) ---------===//

#include "clients/MpClient.h"

using namespace compass;
using namespace compass::clients;
using namespace compass::rmc;
using namespace compass::sim;

namespace {

Task<void> leftThread(Env &E, lib::SimQueue &Q, Loc Flag, MpConfig Cfg) {
  auto T1 = Q.enqueue(E, Cfg.A);
  co_await T1;
  auto T2 = Q.enqueue(E, Cfg.B);
  co_await T2;
  co_await E.store(Flag, 1, Cfg.FlagStore);
}

Task<void> middleThread(Env &E, lib::SimQueue &Q, MpOutcome &Out) {
  auto T3 = Q.dequeue(E);
  Out.Middle = co_await T3;
}

Task<void> rightThread(Env &E, lib::SimQueue &Q, Loc Flag, MpConfig Cfg,
                       MpOutcome &Out) {
  co_await E.spinUntil(
      Flag, [](Value V) { return V != 0; }, Cfg.FlagRead);
  auto T4 = Q.dequeue(E);
  Out.Right = co_await T4;
}

} // namespace

void clients::setupMpClient(Machine &M, Scheduler &S, lib::SimQueue &Q,
                            const MpConfig &Cfg, MpOutcome &Out) {
  Loc Flag = M.alloc("mp.flag");
  Env &E0 = S.newThread();
  S.start(E0, leftThread(E0, Q, Flag, Cfg));
  Env &E1 = S.newThread();
  S.start(E1, middleThread(E1, Q, Out));
  Env &E2 = S.newThread();
  S.start(E2, rightThread(E2, Q, Flag, Cfg, Out));
}
