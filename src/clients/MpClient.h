//===-- clients/MpClient.h - The Message-Passing client (Fig. 1) -*- C++ -*-===//
//
// Part of compass-cxx. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's motivating client (Figure 1): three threads share a queue;
/// the left thread enqueues 41 and 42 and raises a flag with a release
/// write; the middle thread dequeues; the right thread acquire-spins on
/// the flag and then dequeues. The paper proves (Figure 3) that the right
/// thread's dequeue can never be empty: it has synchronized with both
/// enqueues *externally* (through the flag), and at most one of them can
/// have been consumed.
///
/// The access modes of the flag are configurable so experiment E1 can run
/// the ablation: with a relaxed flag there is no external synchronization
/// and empty dequeues on the right become observable.
///
//===----------------------------------------------------------------------===//

#ifndef COMPASS_CLIENTS_MPCLIENT_H
#define COMPASS_CLIENTS_MPCLIENT_H

#include "lib/Container.h"
#include "sim/Scheduler.h"

namespace compass::clients {

struct MpConfig {
  rmc::MemOrder FlagStore = rmc::MemOrder::Release;
  rmc::MemOrder FlagRead = rmc::MemOrder::Acquire;
  rmc::Value A = 41;
  rmc::Value B = 42;
};

/// Filled in by the client threads; inspect after the scheduler runs.
struct MpOutcome {
  rmc::Value Middle = 0; ///< Middle thread's dequeue (may be EmptyVal).
  rmc::Value Right = 0;  ///< Right thread's dequeue.
};

/// Creates the three MP threads of Figure 1 on \p Q. \p Out must outlive
/// the run.
void setupMpClient(rmc::Machine &M, sim::Scheduler &S, lib::SimQueue &Q,
                   const MpConfig &Cfg, MpOutcome &Out);

} // namespace compass::clients

#endif // COMPASS_CLIENTS_MPCLIENT_H
