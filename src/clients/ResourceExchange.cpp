//===-- clients/ResourceExchange.cpp - Resource-exchange client ------------===//

#include "clients/ResourceExchange.h"

#include "graph/Event.h"

using namespace compass;
using namespace compass::clients;
using namespace compass::rmc;
using namespace compass::sim;

namespace {

Task<void> participant(Env &E, lib::Exchanger &X, unsigned Idx,
                       unsigned Rounds, ResourceExchangeOutcome &Out) {
  // Write the payload we are giving away, then publish its location only
  // through the exchanger.
  Loc Payload = E.M.alloc("resx.payload");
  co_await E.store(Payload, 100 + E.Tid, MemOrder::NonAtomic);
  auto T1 = X.exchange(E, Payload, Rounds);
  Value Partner = co_await T1;
  if (Partner == graph::BottomVal)
    co_return;
  Out.Succeeded[Idx] = true;
  // Reading the partner's payload non-atomically is race-free iff the
  // exchange synchronized us with the partner.
  Out.Received[Idx] = co_await E.load(static_cast<Loc>(Partner),
                                      MemOrder::NonAtomic);
}

} // namespace

void clients::setupResourceExchange(Machine &M, Scheduler &S,
                                    lib::Exchanger &X, unsigned Rounds,
                                    ResourceExchangeOutcome &Out) {
  (void)M;
  for (unsigned I = 0; I != 2; ++I) {
    Env &E = S.newThread();
    S.start(E, participant(E, X, I, Rounds, Out));
  }
}
