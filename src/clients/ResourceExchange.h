//===-- clients/ResourceExchange.h - Resource-exchange client ---*- C++ -*-===//
//
// Part of compass-cxx. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The resource-exchange client of Section 4.2: each thread owns a payload
/// (a non-atomically written cell) and offers its *location* through the
/// exchanger. A successful exchange transfers ownership both ways: each
/// thread reads the partner's payload non-atomically. This is race-free
/// exactly because the exchanger's spec synchronizes the matched pair in
/// both directions — if the implementation dropped either synchronization
/// edge, the machine's race detector would fire.
///
//===----------------------------------------------------------------------===//

#ifndef COMPASS_CLIENTS_RESOURCEEXCHANGE_H
#define COMPASS_CLIENTS_RESOURCEEXCHANGE_H

#include "lib/Exchanger.h"
#include "sim/Scheduler.h"

namespace compass::clients {

struct ResourceExchangeOutcome {
  /// Per thread: the payload read from the partner (0 when the exchange
  /// failed).
  rmc::Value Received[2] = {0, 0};
  bool Succeeded[2] = {false, false};
};

/// Two threads, each writing payload 100+tid to its own cell and
/// exchanging the cell's location; \p Rounds bounds exchange attempts.
void setupResourceExchange(rmc::Machine &M, sim::Scheduler &S,
                           lib::Exchanger &X, unsigned Rounds,
                           ResourceExchangeOutcome &Out);

} // namespace compass::clients

#endif // COMPASS_CLIENTS_RESOURCEEXCHANGE_H
