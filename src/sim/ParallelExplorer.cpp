//===-- sim/ParallelExplorer.cpp - Multi-worker DFS exploration -----------===//

#include "sim/ParallelExplorer.h"

#include <atomic>
#include <cassert>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

using namespace compass;
using namespace compass::sim;

namespace {

/// State shared by all workers of one parallel exploration.
struct SharedState {
  std::mutex Mu;
  std::condition_variable Cv;
  std::deque<DecisionTree::Prefix> Queue; // guarded by Mu
  unsigned Busy = 0;                      // workers holding a subtree
  bool Done = false;                      // no more work will appear
  uint64_t PeakQueue = 0;

  /// Global execution budget (Options::MaxExecutions), claimed one ticket
  /// per execution so the parallel run performs exactly as many executions
  /// as the serial one would.
  std::atomic<uint64_t> Tickets{0};
  /// Abort flag (StopOnViolation).
  std::atomic<bool> Stop{false};
  /// Number of workers currently starved; a positive value asks busy
  /// workers to donate subtrees.
  std::atomic<unsigned> Hungry{0};

  bool pop(DecisionTree::Prefix &Out) {
    std::unique_lock<std::mutex> L(Mu);
    for (;;) {
      if (Done)
        return false;
      if (Stop.load(std::memory_order_relaxed)) {
        Done = true;
        Cv.notify_all();
        return false;
      }
      if (!Queue.empty()) {
        Out = std::move(Queue.front());
        Queue.pop_front();
        ++Busy;
        return true;
      }
      if (Busy == 0) {
        // Queue empty and nobody can produce more work: terminate.
        Done = true;
        Cv.notify_all();
        return false;
      }
      Hungry.fetch_add(1, std::memory_order_relaxed);
      Cv.wait(L);
      Hungry.fetch_sub(1, std::memory_order_relaxed);
    }
  }

  void donate(std::vector<DecisionTree::Prefix> Prefixes) {
    if (Prefixes.empty())
      return;
    std::lock_guard<std::mutex> L(Mu);
    for (DecisionTree::Prefix &P : Prefixes)
      Queue.push_back(std::move(P));
    PeakQueue = std::max<uint64_t>(PeakQueue, Queue.size());
    Cv.notify_all();
  }

  void finishSubtree() {
    std::lock_guard<std::mutex> L(Mu);
    --Busy;
    Cv.notify_all();
  }
};

} // namespace

Explorer::Summary ParallelExplorer::run() {
  const Explorer::Options &Opts = W.options();
  if (Opts.ExploreMode == Explorer::Mode::Random)
    return exploreSerial(W); // Sampling has no tree to partition.

  unsigned N = std::max(1u, Opts.Workers);
  auto Start = std::chrono::steady_clock::now();

  SharedState Sh;
  Sh.Queue.push_back(DecisionTree::Prefix{}); // the root subtree
  Sh.PeakQueue = 1;

  // Per-worker partial summaries, merged in worker order at the end (all
  // core fields merge commutatively, so the order is immaterial — it just
  // keeps the aggregation obviously deterministic).
  std::vector<Explorer::Summary> Partials(N);
  std::vector<uint64_t> PeakFrontiers(N, 0);

  auto WorkerMain = [&](unsigned Wid) {
    Workload::Body Body = W.makeBody();
    Explorer::Options WOpts = Opts;
    WOpts.MaxExecutions = ~0ull; // budget enforced via shared tickets
    WOpts.ProgressIntervalSec = 0;

    Explorer::Summary &Local = Partials[Wid];
    Local.Exhausted = true; // AND-folded over the worker's subtrees

    DecisionTree::Prefix Prefix;
    while (Sh.pop(Prefix)) {
      Explorer Ex(WOpts, std::move(Prefix));
      // One machine/scheduler pair per subtree, reset between executions
      // (the arena pattern; see rmc::Machine::reset).
      rmc::Machine M(Ex);
      Scheduler S(M, Ex);
      S.setPreemptionBound(Opts.PreemptionBound);
      S.setReduction(Ex.reduction());
      for (;;) {
        if (Sh.Stop.load(std::memory_order_relaxed))
          break;
        if (!Ex.hasWork())
          break;
        // Claim a budget ticket before committing to the execution so the
        // global execution count matches the serial explorer's.
        uint64_t T = Sh.Tickets.fetch_add(1, std::memory_order_relaxed);
        if (T >= Opts.MaxExecutions)
          break;
        bool Began = Ex.beginExecution();
        (void)Began;
        assert(Began && "hasWork() promised an execution");

        M.reset();
        S.reset();
        Body.Setup(M, S);
        Scheduler::RunResult R = S.run(Opts.MaxStepsPerExec);
        bool Ok = Body.Check ? Body.Check(M, S, R) : true;
        Ex.recordCheck(Ok);
        Ex.endExecution(R);
        if (!Ok && Opts.StopOnViolation) {
          Sh.Stop.store(true, std::memory_order_relaxed);
          Sh.Cv.notify_all();
          break;
        }

        // Work sharing: when other workers are starved, donate the
        // shallowest untried alternatives (the largest subtrees).
        unsigned Starved = Sh.Hungry.load(std::memory_order_relaxed);
        if (Starved > 0 && Ex.splittable())
          Sh.donate(Ex.split(Starved));
      }
      PeakFrontiers[Wid] =
          std::max(PeakFrontiers[Wid], Ex.summary().Perf.PeakFrontier);
      Local.mergeCore(Ex.summary()); // AND-folds the subtree's Exhausted bit
      Sh.finishSubtree();
    }
  };

  std::vector<std::thread> Workers;
  Workers.reserve(N);
  for (unsigned I = 0; I != N; ++I)
    Workers.emplace_back(WorkerMain, I);

  // Optional progress reporting from the coordinating thread.
  if (Opts.ProgressIntervalSec > 0) {
    std::unique_lock<std::mutex> L(Sh.Mu);
    while (!Sh.Done) {
      Sh.Cv.wait_for(L, std::chrono::duration<double>(
                            Opts.ProgressIntervalSec));
      double Wall = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - Start)
                        .count();
      uint64_t Execs = Sh.Tickets.load(std::memory_order_relaxed);
      std::fprintf(stderr,
                   "[explore x%u] ~%llu execs, %.0f execs/s, queue=%zu, "
                   "busy=%u\n",
                   N, static_cast<unsigned long long>(Execs),
                   Wall > 0 ? Execs / Wall : 0.0, Sh.Queue.size(), Sh.Busy);
    }
  }

  for (std::thread &Th : Workers)
    Th.join();

  Explorer::Summary Agg;
  Agg.Exhausted = true;
  for (const Explorer::Summary &P : Partials)
    Agg.mergeCore(P);

  double Wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();
  Agg.Perf.WallSeconds = Wall;
  Agg.Perf.ExecsPerSec =
      Wall > 0 ? static_cast<double>(Agg.Executions) / Wall : 0.0;
  for (uint64_t Pf : PeakFrontiers)
    Agg.Perf.PeakFrontier = std::max(Agg.Perf.PeakFrontier, Pf);
  Agg.Perf.PeakQueue = Sh.PeakQueue;
  Agg.Perf.Workers = N;
  return Agg;
}

Explorer::Summary compass::sim::explore(const Workload &W) {
  if (W.options().Workers > 1 &&
      W.options().ExploreMode == Explorer::Mode::Exhaustive)
    return ParallelExplorer(W).run();
  return exploreSerial(W);
}
