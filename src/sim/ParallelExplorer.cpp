//===-- sim/ParallelExplorer.cpp - Multi-worker DFS exploration -----------===//

#include "sim/ParallelExplorer.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <limits>
#include <mutex>
#include <thread>
#include <vector>

using namespace compass;
using namespace compass::sim;

namespace {

/// True iff the decision path \p Path is lexicographically below the full
/// sequence \p Best (proper prefixes count as below). A prefix that is NOT
/// below Best cannot contain a violating sequence smaller than Best: every
/// extension of it is lex >= Best.
bool pathLexBelow(const std::vector<DecisionTree::Decision> &Path,
                  const std::vector<unsigned> &Best) {
  size_t N = std::min(Path.size(), Best.size());
  for (size_t I = 0; I != N; ++I)
    if (Path[I].Chosen != Best[I])
      return Path[I].Chosen < Best[I];
  return Path.size() < Best.size();
}

bool seqLexLess(const std::vector<unsigned> &A,
                const std::vector<unsigned> &B) {
  return std::lexicographical_compare(A.begin(), A.end(), B.begin(),
                                      B.end());
}

/// Per-worker observability counters, sampled by the coordinator for
/// heartbeats. Cache-line padded; all accesses relaxed — these are
/// telemetry, not synchronization.
struct alignas(64) WorkerStats {
  std::atomic<uint64_t> Execs{0};
  std::atomic<uint64_t> Donated{0};
  std::atomic<uint64_t> Frontier{0};
  std::atomic<uint64_t> Depth{0};
};

/// State shared by all workers of one parallel exploration.
struct SharedState {
  std::mutex Mu;
  std::condition_variable Cv;
  std::deque<DecisionTree::Prefix> Queue; // guarded by Mu
  unsigned Busy = 0;                      // workers holding a subtree
  bool Done = false;                      // no more work will appear
  uint64_t PeakQueue = 0;
  uint64_t Donations = 0; // guarded by Mu

  /// Global execution budget (Options::MaxExecutions), claimed one ticket
  /// per execution so the parallel run performs exactly as many executions
  /// as the serial one would. Seeded with the resumed snapshot's executed
  /// base so the budget (and InterruptAtExecs) stay global across
  /// segments.
  std::atomic<uint64_t> Tickets{0};

  /// Cooperative interrupt: workers finish their in-flight execution,
  /// drain their tree's unexplored remainder into Drained, and exit.
  std::atomic<bool> Interrupt{false};

  /// Number of workers currently starved; a positive value asks busy
  /// workers to donate subtrees.
  std::atomic<unsigned> Hungry{0};

  // -- StopOnViolation: shared lex-min violation -----------------------
  /// Cheap pre-check before taking BestMu; set once any violation exists.
  std::atomic<bool> HaveViolation{false};
  std::mutex BestMu;
  std::vector<unsigned> Best; // lex-min violating sequence so far

  // -- Checkpoint drain -------------------------------------------------
  std::mutex DrainMu;
  std::vector<DecisionTree::Prefix> Drained;

  /// Lowers the shared best violation to \p Seq if it is lex-smaller.
  void offerViolation(std::vector<unsigned> Seq) {
    std::lock_guard<std::mutex> L(BestMu);
    if (!HaveViolation.load(std::memory_order_relaxed) ||
        seqLexLess(Seq, Best))
      Best = std::move(Seq);
    HaveViolation.store(true, std::memory_order_relaxed);
  }

  /// True while work whose decision path starts with \p Path could still
  /// contain a violation lex-smaller than the current best (or no
  /// violation exists yet). Callers pre-check HaveViolation.
  bool mayImprove(const std::vector<DecisionTree::Decision> &Path) {
    std::lock_guard<std::mutex> L(BestMu);
    return pathLexBelow(Path, Best);
  }

  void addDrained(std::vector<DecisionTree::Prefix> Prefixes) {
    if (Prefixes.empty())
      return;
    std::lock_guard<std::mutex> L(DrainMu);
    for (DecisionTree::Prefix &P : Prefixes)
      Drained.push_back(std::move(P));
  }

  bool pop(DecisionTree::Prefix &Out, bool StopOnViolation) {
    std::unique_lock<std::mutex> L(Mu);
    for (;;) {
      if (Done)
        return false;
      if (Interrupt.load(std::memory_order_relaxed)) {
        // Leave the queued prefixes in place: the coordinator collects
        // them into the snapshot frontier after the workers exit.
        Done = true;
        Cv.notify_all();
        return false;
      }
      if (!Queue.empty()) {
        Out = std::move(Queue.front());
        Queue.pop_front();
        // Lex-min StopOnViolation: discard prefixes that cannot contain a
        // violation below the current best (lock order Mu -> BestMu).
        if (StopOnViolation &&
            HaveViolation.load(std::memory_order_relaxed) &&
            !mayImprove(Out.Path))
          continue;
        ++Busy;
        return true;
      }
      if (Busy == 0) {
        // Queue empty and nobody can produce more work: terminate.
        Done = true;
        Cv.notify_all();
        return false;
      }
      Hungry.fetch_add(1, std::memory_order_relaxed);
      Cv.wait(L);
      Hungry.fetch_sub(1, std::memory_order_relaxed);
    }
  }

  void donate(std::vector<DecisionTree::Prefix> Prefixes) {
    if (Prefixes.empty())
      return;
    std::lock_guard<std::mutex> L(Mu);
    Donations += Prefixes.size();
    for (DecisionTree::Prefix &P : Prefixes)
      Queue.push_back(std::move(P));
    PeakQueue = std::max<uint64_t>(PeakQueue, Queue.size());
    Cv.notify_all();
  }

  void finishSubtree() {
    std::lock_guard<std::mutex> L(Mu);
    --Busy;
    Cv.notify_all();
  }
};

} // namespace

ExploreResult compass::sim::exploreResumable(const Workload &W,
                                             const ExploreControl &Ctl,
                                             const ExplorationSnapshot *Resume) {
  const Explorer::Options &Opts = W.options();
  if (Opts.ExploreMode == Explorer::Mode::Random) {
    // Sampling has no tree to partition or checkpoint.
    ExploreResult R;
    R.Sum = exploreSerial(W);
    return R;
  }

  unsigned N = std::max(1u, Opts.Workers);
  auto Start = std::chrono::steady_clock::now();

  SharedState Sh;
  if (Resume && !Resume->Frontier.empty()) {
    for (const DecisionTree::Prefix &P : Resume->Frontier)
      Sh.Queue.push_back(P);
    Sh.Tickets.store(Resume->Partial.Executions,
                     std::memory_order_relaxed);
  } else {
    Sh.Queue.push_back(DecisionTree::Prefix{}); // the root subtree
  }
  Sh.PeakQueue = Sh.Queue.size();
  if (Resume && Resume->Partial.HasViolation)
    Sh.offerViolation(Resume->Partial.firstViolationDecisions());

  // Per-worker partial summaries, merged in worker order at the end (all
  // core fields merge commutatively, so the order is immaterial — it just
  // keeps the aggregation obviously deterministic).
  std::vector<Explorer::Summary> Partials(N);
  std::vector<uint64_t> PeakFrontiers(N, 0);
  std::vector<WorkerStats> Stats(N);

  auto WorkerMain = [&](unsigned Wid) {
    Workload::Body Body = W.makeBody();
    Explorer::Options WOpts = Opts;
    WOpts.MaxExecutions = ~0ull; // budget enforced via shared tickets
    WOpts.ProgressIntervalSec = 0;

    Explorer::Summary &Local = Partials[Wid];
    Local.Exhausted = true; // AND-folded over the worker's subtrees
    WorkerStats &St = Stats[Wid];

    DecisionTree::Prefix Prefix;
    while (Sh.pop(Prefix, Opts.StopOnViolation)) {
      Explorer Ex(WOpts, std::move(Prefix));
      // One machine/scheduler pair per subtree, reset between executions
      // (the arena pattern; see rmc::Machine::reset).
      rmc::Machine M(Ex);
      Scheduler S(M, Ex);
      S.setPreemptionBound(Opts.PreemptionBound);
      S.setReduction(Ex.reduction());
      for (;;) {
        // The execution-count tripwire is checked worker-side (not only in
        // the coordinator's 50ms poll) so it lands precisely even on trees
        // that finish faster than a poll interval.
        if (Ctl.InterruptAtExecs > 0 &&
            !Sh.Interrupt.load(std::memory_order_relaxed) &&
            Sh.Tickets.load(std::memory_order_relaxed) >=
                Ctl.InterruptAtExecs) {
          Sh.Interrupt.store(true, std::memory_order_relaxed);
          Sh.Cv.notify_all();
        }
        if (Sh.Interrupt.load(std::memory_order_relaxed)) {
          // Cooperative checkpoint: convert this subtree's unexplored
          // remainder into pinned prefixes for the snapshot frontier.
          // The executed share stays in Ex's summary (Exhausted set).
          Sh.addDrained(Ex.drainFrontier());
          break;
        }
        if (Opts.StopOnViolation &&
            Sh.HaveViolation.load(std::memory_order_relaxed) &&
            !Sh.mayImprove(Ex.currentTrace()))
          break; // pending path lex >= best violation: nothing to gain
        if (!Ex.hasWork())
          break;
        // Claim a budget ticket before committing to the execution so the
        // global execution count matches the serial explorer's.
        uint64_t T = Sh.Tickets.fetch_add(1, std::memory_order_relaxed);
        if (T >= Opts.MaxExecutions)
          break;
        bool Began = Ex.beginExecution();
        (void)Began;
        assert(Began && "hasWork() promised an execution");

        M.reset();
        S.reset();
        Body.Setup(M, S);
        Scheduler::RunResult R = S.run(Opts.MaxStepsPerExec);
        bool Ok = Body.Check ? Body.Check(M, S, R) : true;
        Ex.recordCheck(Ok);
        Ex.endExecution(R);
        St.Execs.fetch_add(1, std::memory_order_relaxed);
        St.Frontier.store(Ex.frontierSize(), std::memory_order_relaxed);
        St.Depth.store(Ex.currentDepth(), std::memory_order_relaxed);
        if (!Ok && Opts.StopOnViolation) {
          // DFS yields each subtree's lex-least violation first, so this
          // subtree is finished; publish the find and let the search
          // continue only where a lex-smaller violation could hide.
          Sh.offerViolation(Ex.summary().firstViolationDecisions());
          Sh.Cv.notify_all();
          break;
        }

        // Work sharing: when other workers are starved, donate the
        // shallowest untried alternatives (the largest subtrees).
        unsigned Starved = Sh.Hungry.load(std::memory_order_relaxed);
        if (Starved > 0 && Ex.splittable()) {
          std::vector<DecisionTree::Prefix> Don = Ex.split(Starved);
          St.Donated.fetch_add(Don.size(), std::memory_order_relaxed);
          Sh.donate(std::move(Don));
        }
      }
      PeakFrontiers[Wid] =
          std::max(PeakFrontiers[Wid], Ex.summary().Perf.PeakFrontier);
      Local.mergeCore(Ex.summary()); // AND-folds the subtree's Exhausted bit
      Sh.finishSubtree();
    }
  };

  std::vector<std::thread> Workers;
  Workers.reserve(N);
  for (unsigned I = 0; I != N; ++I)
    Workers.emplace_back(WorkerMain, I);

  // Coordinator loop: polls the external controls and emits heartbeats /
  // progress lines until the workers are done.
  {
    const bool NeedPoll =
        Ctl.StopRequested || Ctl.DeadlineSec > 0 || Ctl.InterruptAtExecs > 0;
    const bool NeedHeartbeat =
        Ctl.HeartbeatIntervalSec > 0 && static_cast<bool>(Ctl.OnHeartbeat);
    const bool NeedProgress = Opts.ProgressIntervalSec > 0;
    double WaitSec = std::numeric_limits<double>::infinity();
    if (NeedPoll)
      WaitSec = 0.05;
    if (NeedHeartbeat)
      WaitSec = std::min(WaitSec, Ctl.HeartbeatIntervalSec);
    if (NeedProgress)
      WaitSec = std::min(WaitSec, Opts.ProgressIntervalSec);

    double LastHeartbeat = 0, LastProgress = 0;
    std::unique_lock<std::mutex> L(Sh.Mu);
    while (!Sh.Done) {
      if (WaitSec == std::numeric_limits<double>::infinity())
        Sh.Cv.wait(L);
      else
        Sh.Cv.wait_for(L, std::chrono::duration<double>(WaitSec));
      if (Sh.Done)
        break;
      double Wall = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - Start)
                        .count();
      uint64_t Execs = std::min<uint64_t>(
          Sh.Tickets.load(std::memory_order_relaxed), Opts.MaxExecutions);
      if (!Sh.Interrupt.load(std::memory_order_relaxed)) {
        bool Trip =
            (Ctl.StopRequested &&
             Ctl.StopRequested->load(std::memory_order_relaxed)) ||
            (Ctl.DeadlineSec > 0 && Wall >= Ctl.DeadlineSec) ||
            (Ctl.InterruptAtExecs > 0 && Execs >= Ctl.InterruptAtExecs);
        if (Trip) {
          Sh.Interrupt.store(true, std::memory_order_relaxed);
          Sh.Cv.notify_all();
        }
      }
      if (NeedHeartbeat && Wall - LastHeartbeat >= Ctl.HeartbeatIntervalSec) {
        LastHeartbeat = Wall;
        ExploreHeartbeat Hb;
        Hb.WallSeconds = Wall;
        Hb.Executions = Execs;
        Hb.ExecsPerSec = Wall > 0 ? Execs / Wall : 0.0;
        Hb.QueueSize = Sh.Queue.size();
        Hb.BusyWorkers = Sh.Busy;
        Hb.Workers = N;
        Hb.Donations = Sh.Donations;
        Hb.PerWorker.resize(N);
        for (unsigned I = 0; I != N; ++I) {
          Hb.PerWorker[I].Execs =
              Stats[I].Execs.load(std::memory_order_relaxed);
          Hb.PerWorker[I].Donated =
              Stats[I].Donated.load(std::memory_order_relaxed);
          Hb.PerWorker[I].Frontier =
              Stats[I].Frontier.load(std::memory_order_relaxed);
          Hb.PerWorker[I].Depth =
              Stats[I].Depth.load(std::memory_order_relaxed);
        }
        L.unlock();
        Ctl.OnHeartbeat(Hb); // user callback runs outside the lock
        L.lock();
      }
      if (NeedProgress && Wall - LastProgress >= Opts.ProgressIntervalSec) {
        LastProgress = Wall;
        std::fprintf(stderr,
                     "[explore x%u] ~%llu execs, %.0f execs/s, queue=%zu, "
                     "busy=%u\n",
                     N, static_cast<unsigned long long>(Execs),
                     Wall > 0 ? Execs / Wall : 0.0, Sh.Queue.size(), Sh.Busy);
      }
    }
  }

  for (std::thread &Th : Workers)
    Th.join();

  ExploreResult Res;

  Explorer::Summary Agg;
  Agg.Exhausted = true;
  if (Resume)
    Agg.mergeCore(Resume->Partial);
  for (const Explorer::Summary &P : Partials)
    Agg.mergeCore(P);

  double Wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();
  Agg.Perf.WallSeconds = Wall;
  Agg.Perf.ExecsPerSec =
      Wall > 0 ? static_cast<double>(Agg.Executions) / Wall : 0.0;
  for (uint64_t Pf : PeakFrontiers)
    Agg.Perf.PeakFrontier = std::max(Agg.Perf.PeakFrontier, Pf);
  Agg.Perf.PeakQueue = Sh.PeakQueue;
  Agg.Perf.Donations = Sh.Donations;
  Agg.Perf.Workers = N;

  if (Sh.Interrupt.load(std::memory_order_relaxed)) {
    // Frontier = every worker's drained remainder plus the prefixes still
    // sitting in the queue. Empty means the interrupt raced with natural
    // completion: the run actually finished.
    Res.Snapshot.Frontier = std::move(Sh.Drained);
    for (DecisionTree::Prefix &P : Sh.Queue)
      Res.Snapshot.Frontier.push_back(std::move(P));
    Res.Interrupted = !Res.Snapshot.Frontier.empty();
    if (Res.Interrupted)
      Res.Snapshot.Partial = Agg;
    else
      Res.Snapshot = ExplorationSnapshot{};
  }
  Res.Sum = std::move(Agg);
  return Res;
}

Explorer::Summary ParallelExplorer::run() {
  return exploreResumable(W, ExploreControl{}).Sum;
}

Explorer::Summary compass::sim::explore(const Workload &W) {
  if (W.options().Workers > 1 &&
      W.options().ExploreMode == Explorer::Mode::Exhaustive)
    return ParallelExplorer(W).run();
  return exploreSerial(W);
}
