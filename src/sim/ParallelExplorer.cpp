//===-- sim/ParallelExplorer.cpp - Multi-worker DFS exploration -----------===//

#include "sim/ParallelExplorer.h"

#include "sim/Engine.h"
#include "support/Choice.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <limits>
#include <mutex>
#include <thread>
#include <vector>

using namespace compass;
using namespace compass::sim;

namespace {

/// True iff the decision path \p Path is lexicographically below the full
/// sequence \p Best (proper prefixes count as below). A prefix that is NOT
/// below Best cannot contain a violating sequence smaller than Best: every
/// extension of it is lex >= Best.
bool pathLexBelow(const std::vector<DecisionTree::Decision> &Path,
                  const std::vector<unsigned> &Best) {
  size_t N = std::min(Path.size(), Best.size());
  for (size_t I = 0; I != N; ++I)
    if (Path[I].Chosen != Best[I])
      return Path[I].Chosen < Best[I];
  return Path.size() < Best.size();
}

bool seqLexLess(const std::vector<unsigned> &A,
                const std::vector<unsigned> &B) {
  return std::lexicographical_compare(A.begin(), A.end(), B.begin(),
                                      B.end());
}

/// A stable ChoiceSource facade over a worker's *current* Explorer. The
/// machine and scheduler bind their ChoiceSource by reference once at
/// construction, but a worker explores many donated subtrees, each with a
/// fresh Explorer (the decision tree is per-subtree state). The slot lets
/// one persistent machine/scheduler arena serve them all: each subtree
/// re-points the slot and the simulation never re-allocates.
class ChoiceSlot : public ChoiceSource {
public:
  void bind(ChoiceSource &S) { Cur = &S; }
  unsigned choose(unsigned Count, const char *Tag) override {
    return Cur->choose(Count, Tag);
  }
  // Every ChoiceSource entry point must forward, or the facade silently
  // changes semantics: the base-class chooseLimited fallback would erase
  // the source-set restriction (full-arity enumeration), and a swallowed
  // duplicate mask would disable reads-from caching — both only for
  // worker explorers, breaking worker-count determinism.
  unsigned chooseLimited(unsigned Count, unsigned Limit,
                         const char *Tag) override {
    return Cur->chooseLimited(Count, Limit, Tag);
  }
  void noteChoiceDup(uint64_t Mask) override { Cur->noteChoiceDup(Mask); }
  size_t decisionPosition() const override {
    return Cur->decisionPosition();
  }

private:
  ChoiceSource *Cur = nullptr;
};

/// Per-worker observability counters, sampled by the coordinator for
/// heartbeats. Cache-line padded; all accesses relaxed — these are
/// telemetry, not synchronization.
struct alignas(64) WorkerStats {
  std::atomic<uint64_t> Execs{0};
  std::atomic<uint64_t> Donated{0};
  std::atomic<uint64_t> Frontier{0};
  std::atomic<uint64_t> Depth{0};
};

/// One worker's stealable prefix deque. The owner pushes donation batches
/// to the back and pops from the back (deepest donations first — smallest
/// subtrees, warmest caches); thieves pop from the front, where the
/// shallowest — and hence largest — subtrees sit. A plain mutex per deque
/// is enough: all touches are batched and the common case is uncontended.
struct alignas(64) WorkerDeque {
  std::mutex Mu;
  std::deque<DecisionTree::Prefix> Dq;
};

/// State shared by all workers of one parallel exploration.
///
/// Work distribution is decentralized: each worker owns a deque seeded /
/// refilled by its own donations, and steals from other deques only when
/// its own is empty. Termination is unit-counted: Outstanding tracks
/// prefixes that are queued or in progress; the worker that retires the
/// last unit flips Done.
struct SharedState {
  std::mutex Mu; ///< Guards Done and the sleep/wake protocol only.
  std::condition_variable Cv;
  bool Done = false;

  std::vector<WorkerDeque> Deques;
  std::atomic<uint64_t> Outstanding{0}; ///< Queued + in-progress prefixes.
  std::atomic<uint64_t> QueuedTotal{0}; ///< Prefixes sitting in deques.
  std::atomic<unsigned> Busy{0};        ///< Workers holding a subtree.
  std::atomic<uint64_t> PeakQueue{0};
  std::atomic<uint64_t> Donations{0};

  /// Global execution budget (Options::MaxExecutions), claimed one ticket
  /// per execution so the parallel run performs exactly as many executions
  /// as the serial one would. Seeded with the resumed snapshot's executed
  /// base so the budget (and InterruptAtExecs) stay global across
  /// segments.
  std::atomic<uint64_t> Tickets{0};

  /// Cooperative interrupt: workers finish their in-flight execution,
  /// drain their tree's unexplored remainder into Drained, and exit.
  std::atomic<bool> Interrupt{false};

  // -- StopOnViolation: shared lex-min violation -----------------------
  /// Cheap pre-check before taking BestMu; set once any violation exists.
  std::atomic<bool> HaveViolation{false};
  std::mutex BestMu;
  std::vector<unsigned> Best; // lex-min violating sequence so far

  // -- Checkpoint drain -------------------------------------------------
  std::mutex DrainMu;
  std::vector<DecisionTree::Prefix> Drained;

  explicit SharedState(unsigned Workers) : Deques(Workers) {}

  /// Lowers the shared best violation to \p Seq if it is lex-smaller.
  void offerViolation(std::vector<unsigned> Seq) {
    std::lock_guard<std::mutex> L(BestMu);
    if (!HaveViolation.load(std::memory_order_relaxed) ||
        seqLexLess(Seq, Best))
      Best = std::move(Seq);
    HaveViolation.store(true, std::memory_order_relaxed);
  }

  /// True while work whose decision path starts with \p Path could still
  /// contain a violation lex-smaller than the current best (or no
  /// violation exists yet). Callers pre-check HaveViolation.
  bool mayImprove(const std::vector<DecisionTree::Decision> &Path) {
    std::lock_guard<std::mutex> L(BestMu);
    return pathLexBelow(Path, Best);
  }

  void addDrained(std::vector<DecisionTree::Prefix> Prefixes) {
    if (Prefixes.empty())
      return;
    std::lock_guard<std::mutex> L(DrainMu);
    for (DecisionTree::Prefix &P : Prefixes)
      Drained.push_back(std::move(P));
  }

  /// Appends \p Prefixes to worker \p Wid's deque and wakes sleepers. The
  /// notify is taken under Mu unconditionally, which makes the sleep/wake
  /// race-free: a would-be sleeper re-checks QueuedTotal under Mu before
  /// waiting, so it either sees this batch or receives this notify.
  void pushBatch(unsigned Wid, std::vector<DecisionTree::Prefix> Prefixes,
                 bool CountAsDonation) {
    if (Prefixes.empty())
      return;
    uint64_t K = Prefixes.size();
    Outstanding.fetch_add(K, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> L(Deques[Wid].Mu);
      for (DecisionTree::Prefix &P : Prefixes)
        Deques[Wid].Dq.push_back(std::move(P));
    }
    uint64_t Q = QueuedTotal.fetch_add(K, std::memory_order_relaxed) + K;
    uint64_t Pk = PeakQueue.load(std::memory_order_relaxed);
    while (Q > Pk &&
           !PeakQueue.compare_exchange_weak(Pk, Q,
                                            std::memory_order_relaxed))
      ;
    if (CountAsDonation)
      Donations.fetch_add(K, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> L(Mu);
      Cv.notify_all();
    }
  }

  /// Retires one work unit (finished subtree or discarded prefix); the
  /// last retirement terminates the exploration.
  void retireUnit() {
    if (Outstanding.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> L(Mu);
      Done = true;
      Cv.notify_all();
    }
  }

  enum class Take { Got, Retry, None };

  /// One scan over the deques: the worker's own back first (LIFO keeps it
  /// on the deepest, cache-warmest donation), then other workers' fronts
  /// (FIFO steals the shallowest = largest subtree). Lex-dead prefixes
  /// are retired on the spot.
  Take tryTakeOne(unsigned Wid, DecisionTree::Prefix &Out,
                  bool StopOnViolation) {
    unsigned N = static_cast<unsigned>(Deques.size());
    for (unsigned K = 0; K != N; ++K) {
      unsigned V = (Wid + K) % N;
      WorkerDeque &D = Deques[V];
      {
        std::lock_guard<std::mutex> L(D.Mu);
        if (D.Dq.empty())
          continue;
        if (V == Wid) {
          Out = std::move(D.Dq.back());
          D.Dq.pop_back();
        } else {
          Out = std::move(D.Dq.front());
          D.Dq.pop_front();
        }
      }
      QueuedTotal.fetch_sub(1, std::memory_order_relaxed);
      if (StopOnViolation &&
          HaveViolation.load(std::memory_order_relaxed) &&
          !mayImprove(Out.Path)) {
        retireUnit(); // cannot contain a violation below the best: dead
        return Take::Retry;
      }
      Busy.fetch_add(1, std::memory_order_relaxed);
      return Take::Got;
    }
    return Take::None;
  }

  /// Blocks until a prefix is available (true) or the exploration is over
  /// (false) — either all units retired or an interrupt was raised.
  bool acquire(unsigned Wid, DecisionTree::Prefix &Out,
               bool StopOnViolation) {
    for (;;) {
      if (!Interrupt.load(std::memory_order_relaxed)) {
        Take T = tryTakeOne(Wid, Out, StopOnViolation);
        if (T == Take::Got)
          return true;
        if (T == Take::Retry)
          continue;
      }
      std::unique_lock<std::mutex> L(Mu);
      if (Done)
        return false;
      if (Interrupt.load(std::memory_order_relaxed)) {
        // Leave the queued prefixes in place: the coordinator collects
        // them into the snapshot frontier after the workers exit.
        Done = true;
        Cv.notify_all();
        return false;
      }
      if (QueuedTotal.load(std::memory_order_relaxed) > 0)
        continue; // a batch landed between the scan and the lock
      Cv.wait(L);
    }
  }

  /// Marks the worker's current subtree finished and retires its unit.
  void finishSubtree() {
    Busy.fetch_sub(1, std::memory_order_relaxed);
    retireUnit();
  }
};

} // namespace

ExploreResult compass::sim::exploreResumable(const Workload &W,
                                             const ExploreControl &Ctl,
                                             const ExplorationSnapshot *Resume) {
  const Explorer::Options &Opts = W.options();
  if (Opts.ExploreMode == Explorer::Mode::Random) {
    // Sampling has no tree to partition or checkpoint.
    ExploreResult R;
    R.Sum = exploreSerial(W);
    return R;
  }

  unsigned N = std::max(1u, Opts.Workers);
  auto Start = std::chrono::steady_clock::now();

  SharedState Sh(N);
  {
    // Seed the deques round-robin with the initial frontier: the root
    // prefix, or a resumed snapshot's pinned subtrees.
    std::vector<std::vector<DecisionTree::Prefix>> Seed(N);
    if (Resume && !Resume->Frontier.empty()) {
      for (size_t I = 0; I != Resume->Frontier.size(); ++I)
        Seed[I % N].push_back(Resume->Frontier[I]);
      Sh.Tickets.store(Resume->Partial.Executions,
                       std::memory_order_relaxed);
    } else {
      Seed[0].push_back(DecisionTree::Prefix{}); // the root subtree
    }
    for (unsigned I = 0; I != N; ++I)
      Sh.pushBatch(I, std::move(Seed[I]), /*CountAsDonation=*/false);
  }
  if (Resume && Resume->Partial.HasViolation)
    Sh.offerViolation(Resume->Partial.firstViolationDecisions());

  // Per-worker partial summaries, merged in worker order at the end (all
  // core fields merge commutatively, so the order is immaterial — it just
  // keeps the aggregation obviously deterministic).
  std::vector<Explorer::Summary> Partials(N);
  std::vector<uint64_t> PeakFrontiers(N, 0);
  std::vector<WorkerStats> Stats(N);

  // Donation policy: proactive, batched, and gated. A worker refills the
  // shared pool after an execution only when the pool is below the
  // low-water mark (fewer queued prefixes than idle mouths to feed) AND
  // its own tree still has enough open alternatives that sharing leaves
  // the local DFS with real work. DecisionTree::split donates from the
  // shallowest open depth, so each donated prefix is a maximal subtree.
  const uint64_t DonateLowWater = N;        // pool "starved" below this
  const size_t DonateBatch = 2 * N;         // prefixes per refill
  const uint64_t DonateMinFrontier = 2 * DonateBatch; // size threshold

  auto WorkerMain = [&](unsigned Wid) {
    Workload::Body Body = W.makeBody();
    Explorer::Options WOpts = Opts;
    WOpts.MaxExecutions = ~0ull; // budget enforced via shared tickets
    WOpts.ProgressIntervalSec = 0;

    Explorer::Summary &Local = Partials[Wid];
    Local.Exhausted = true; // AND-folded over the worker's subtrees
    WorkerStats &St = Stats[Wid];

    // One persistent simulation arena per worker: machine and scheduler
    // outlive the subtrees (reset() rewinds watermarks without freeing),
    // so steady-state allocation happens once per worker, not once per
    // donated prefix — and the per-subtree Engine gives every worker the
    // same copy-on-write fast path as the serial explorer.
    ChoiceSlot Choices;
    rmc::Machine M(Choices);
    Scheduler S(M, Choices);
    S.setPreemptionBound(Opts.PreemptionBound);

    DecisionTree::Prefix Prefix;
    while (Sh.acquire(Wid, Prefix, Opts.StopOnViolation)) {
      Explorer Ex(WOpts, std::move(Prefix));
      Choices.bind(Ex);
      S.setReduction(Ex.reduction());
      Engine Eng(Ex, M, S, Body);
      for (;;) {
        // The execution-count tripwire is checked worker-side (not only in
        // the coordinator's 50ms poll) so it lands precisely even on trees
        // that finish faster than a poll interval.
        if (Ctl.InterruptAtExecs > 0 &&
            !Sh.Interrupt.load(std::memory_order_relaxed) &&
            Sh.Tickets.load(std::memory_order_relaxed) >=
                Ctl.InterruptAtExecs) {
          Sh.Interrupt.store(true, std::memory_order_relaxed);
          std::lock_guard<std::mutex> L(Sh.Mu);
          Sh.Cv.notify_all();
        }
        if (Sh.Interrupt.load(std::memory_order_relaxed)) {
          // Cooperative checkpoint: convert this subtree's unexplored
          // remainder into pinned prefixes for the snapshot frontier.
          // The executed share stays in Ex's summary (Exhausted set).
          Sh.addDrained(Ex.drainFrontier());
          break;
        }
        if (Opts.StopOnViolation &&
            Sh.HaveViolation.load(std::memory_order_relaxed) &&
            !Sh.mayImprove(Ex.currentTrace()))
          break; // pending path lex >= best violation: nothing to gain
        if (!Ex.hasWork())
          break;
        // Claim a budget ticket before committing to the execution so the
        // global execution count matches the serial explorer's.
        uint64_t T = Sh.Tickets.fetch_add(1, std::memory_order_relaxed);
        if (T >= Opts.MaxExecutions)
          break;
        bool Began = Ex.beginExecution();
        (void)Began;
        assert(Began && "hasWork() promised an execution");

        Engine::ExecResult R = Eng.runOne();
        Ex.recordCheck(R.CheckOk);
        Ex.endExecution(R.Run);
        St.Execs.fetch_add(1, std::memory_order_relaxed);
        St.Frontier.store(Ex.frontierSize(), std::memory_order_relaxed);
        St.Depth.store(Ex.currentDepth(), std::memory_order_relaxed);
        if (!R.CheckOk && Opts.StopOnViolation) {
          // DFS yields each subtree's lex-least violation first, so this
          // subtree is finished; publish the find and let the search
          // continue only where a lex-smaller violation could hide.
          Sh.offerViolation(Ex.summary().firstViolationDecisions());
          std::lock_guard<std::mutex> L(Sh.Mu);
          Sh.Cv.notify_all();
          break;
        }

        // Work sharing (see the donation-policy comment above).
        if (N > 1 &&
            Sh.QueuedTotal.load(std::memory_order_relaxed) <
                DonateLowWater &&
            Ex.frontierSize() >= DonateMinFrontier && Ex.splittable()) {
          std::vector<DecisionTree::Prefix> Don = Ex.split(DonateBatch);
          St.Donated.fetch_add(Don.size(), std::memory_order_relaxed);
          Sh.pushBatch(Wid, std::move(Don), /*CountAsDonation=*/true);
        }
      }
      PeakFrontiers[Wid] =
          std::max(PeakFrontiers[Wid], Ex.summary().Perf.PeakFrontier);
      Local.mergeCore(Ex.summary()); // AND-folds the subtree's Exhausted bit
      Local.Perf.StepsExecuted += Eng.stepsExecuted();
      Local.Perf.StepsLogical += Eng.stepsLogical();
      Local.Perf.CowResumes += Eng.cowResumes();
      Local.Perf.RootRuns += Eng.rootRuns();
      Sh.finishSubtree();
    }
  };

  std::vector<std::thread> Workers;
  Workers.reserve(N);
  for (unsigned I = 0; I != N; ++I)
    Workers.emplace_back(WorkerMain, I);

  // Coordinator loop: polls the external controls and emits heartbeats /
  // progress lines until the workers are done.
  {
    const bool NeedPoll =
        Ctl.StopRequested || Ctl.DeadlineSec > 0 || Ctl.InterruptAtExecs > 0;
    const bool NeedHeartbeat =
        Ctl.HeartbeatIntervalSec > 0 && static_cast<bool>(Ctl.OnHeartbeat);
    const bool NeedProgress = Opts.ProgressIntervalSec > 0;
    double WaitSec = std::numeric_limits<double>::infinity();
    if (NeedPoll)
      WaitSec = 0.05;
    if (NeedHeartbeat)
      WaitSec = std::min(WaitSec, Ctl.HeartbeatIntervalSec);
    if (NeedProgress)
      WaitSec = std::min(WaitSec, Opts.ProgressIntervalSec);

    double LastHeartbeat = 0, LastProgress = 0;
    std::unique_lock<std::mutex> L(Sh.Mu);
    while (!Sh.Done) {
      if (WaitSec == std::numeric_limits<double>::infinity())
        Sh.Cv.wait(L);
      else
        Sh.Cv.wait_for(L, std::chrono::duration<double>(WaitSec));
      if (Sh.Done)
        break;
      double Wall = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - Start)
                        .count();
      uint64_t Execs = std::min<uint64_t>(
          Sh.Tickets.load(std::memory_order_relaxed), Opts.MaxExecutions);
      if (!Sh.Interrupt.load(std::memory_order_relaxed)) {
        bool Trip =
            (Ctl.StopRequested &&
             Ctl.StopRequested->load(std::memory_order_relaxed)) ||
            (Ctl.DeadlineSec > 0 && Wall >= Ctl.DeadlineSec) ||
            (Ctl.InterruptAtExecs > 0 && Execs >= Ctl.InterruptAtExecs);
        if (Trip) {
          Sh.Interrupt.store(true, std::memory_order_relaxed);
          Sh.Cv.notify_all();
        }
      }
      if (NeedHeartbeat && Wall - LastHeartbeat >= Ctl.HeartbeatIntervalSec) {
        LastHeartbeat = Wall;
        ExploreHeartbeat Hb;
        Hb.WallSeconds = Wall;
        Hb.Executions = Execs;
        Hb.ExecsPerSec = Wall > 0 ? Execs / Wall : 0.0;
        Hb.QueueSize = Sh.QueuedTotal.load(std::memory_order_relaxed);
        Hb.BusyWorkers = Sh.Busy.load(std::memory_order_relaxed);
        Hb.Workers = N;
        Hb.Donations = Sh.Donations.load(std::memory_order_relaxed);
        Hb.PerWorker.resize(N);
        for (unsigned I = 0; I != N; ++I) {
          Hb.PerWorker[I].Execs =
              Stats[I].Execs.load(std::memory_order_relaxed);
          Hb.PerWorker[I].Donated =
              Stats[I].Donated.load(std::memory_order_relaxed);
          Hb.PerWorker[I].Frontier =
              Stats[I].Frontier.load(std::memory_order_relaxed);
          Hb.PerWorker[I].Depth =
              Stats[I].Depth.load(std::memory_order_relaxed);
        }
        L.unlock();
        Ctl.OnHeartbeat(Hb); // user callback runs outside the lock
        L.lock();
      }
      if (NeedProgress && Wall - LastProgress >= Opts.ProgressIntervalSec) {
        LastProgress = Wall;
        std::fprintf(
            stderr,
            "[explore x%u] ~%llu execs, %.0f execs/s, queue=%llu, "
            "busy=%u\n",
            N, static_cast<unsigned long long>(Execs),
            Wall > 0 ? Execs / Wall : 0.0,
            static_cast<unsigned long long>(
                Sh.QueuedTotal.load(std::memory_order_relaxed)),
            Sh.Busy.load(std::memory_order_relaxed));
      }
    }
  }

  for (std::thread &Th : Workers)
    Th.join();

  ExploreResult Res;

  Explorer::Summary Agg;
  Agg.Exhausted = true;
  if (Resume)
    Agg.mergeCore(Resume->Partial);
  for (const Explorer::Summary &P : Partials) {
    Agg.mergeCore(P);
    Agg.Perf.StepsExecuted += P.Perf.StepsExecuted;
    Agg.Perf.StepsLogical += P.Perf.StepsLogical;
    Agg.Perf.CowResumes += P.Perf.CowResumes;
    Agg.Perf.RootRuns += P.Perf.RootRuns;
  }

  double Wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();
  Agg.Perf.WallSeconds = Wall;
  Agg.Perf.ExecsPerSec =
      Wall > 0 ? static_cast<double>(Agg.Executions) / Wall : 0.0;
  for (uint64_t Pf : PeakFrontiers)
    Agg.Perf.PeakFrontier = std::max(Agg.Perf.PeakFrontier, Pf);
  Agg.Perf.PeakQueue = Sh.PeakQueue.load(std::memory_order_relaxed);
  Agg.Perf.Donations = Sh.Donations.load(std::memory_order_relaxed);
  Agg.Perf.Workers = N;

  if (Sh.Interrupt.load(std::memory_order_relaxed)) {
    // Frontier = every worker's drained remainder plus the prefixes still
    // sitting in the deques. Empty means the interrupt raced with natural
    // completion: the run actually finished.
    Res.Snapshot.Frontier = std::move(Sh.Drained);
    for (WorkerDeque &D : Sh.Deques)
      for (DecisionTree::Prefix &P : D.Dq)
        Res.Snapshot.Frontier.push_back(std::move(P));
    Res.Interrupted = !Res.Snapshot.Frontier.empty();
    if (Res.Interrupted)
      Res.Snapshot.Partial = Agg;
    else
      Res.Snapshot = ExplorationSnapshot{};
  }
  Res.Sum = std::move(Agg);
  return Res;
}

Explorer::Summary ParallelExplorer::run() {
  return exploreResumable(W, ExploreControl{}).Sum;
}

Explorer::Summary compass::sim::explore(const Workload &W) {
  if (W.options().Workers > 1 &&
      W.options().ExploreMode == Explorer::Mode::Exhaustive)
    return ParallelExplorer(W).run();
  return exploreSerial(W);
}
