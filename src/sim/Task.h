//===-- sim/Task.h - Coroutine tasks for simulated threads -----*- C++ -*-===//
//
// Part of compass-cxx. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal coroutine task type used to express simulated threads. Library
/// operations (enqueue, pop, exchange, ...) are coroutines returning
/// Task<T>; every simulated memory access is a `co_await` that suspends to
/// the scheduler, making memory accesses the only preemption points — the
/// granularity at which the model checker interleaves threads.
///
/// Tasks are lazy (started when first awaited/resumed) and owning
/// (destroying a Task destroys its coroutine frame and, transitively, the
/// frames of the child tasks held in its locals). Continuations are chained
/// by *explicit* resumption from void-returning await_suspend rather than
/// symmetric transfer: GCC 12's codegen for handle-returning await_suspend
/// miscompiles conditional awaits of tasks that themselves contain
/// conditional awaits (the suspended chain loses its pending leaf). The
/// explicit form costs one native stack frame per nesting level, which is
/// bounded by the library call depth (< 10).
///
//===----------------------------------------------------------------------===//

#ifndef COMPASS_SIM_TASK_H
#define COMPASS_SIM_TASK_H

#include <cassert>
#include <coroutine>
#include <cstdlib>
#include <optional>
#include <utility>

namespace compass::sim {

namespace detail {

/// State shared by all task promises: the continuation to resume when the
/// task completes (the awaiting parent coroutine, if any).
struct PromiseBase {
  std::coroutine_handle<> Continuation;

  struct FinalAwaiter {
    bool await_ready() noexcept { return false; }

    template <typename PromiseT>
    void await_suspend(std::coroutine_handle<PromiseT> H) noexcept {
      // Copy out of the frame: resuming the continuation may destroy this
      // task's frame (the parent's co_await full-expression ends); nothing
      // frame-resident is touched afterwards.
      std::coroutine_handle<> C = H.promise().Continuation;
      if (C)
        C.resume();
    }

    void await_resume() noexcept {}
  };

  std::suspend_always initial_suspend() noexcept { return {}; }
  FinalAwaiter final_suspend() noexcept { return {}; }
  void unhandled_exception() noexcept { std::abort(); }
};

} // namespace detail

/// An owning, lazily-started coroutine task producing a T.
template <typename T> class [[nodiscard]] Task {
public:
  struct promise_type : detail::PromiseBase {
    std::optional<T> Result;

    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_value(T V) { Result.emplace(std::move(V)); }
  };

  Task() = default;
  Task(Task &&Other) noexcept : Handle(Other.Handle) {
    Other.Handle = nullptr;
  }
  Task &operator=(Task &&Other) noexcept {
    if (this != &Other) {
      if (Handle)
        Handle.destroy();
      Handle = Other.Handle;
      Other.Handle = nullptr;
    }
    return *this;
  }
  Task(const Task &) = delete;
  Task &operator=(const Task &) = delete;
  ~Task() {
    if (Handle)
      Handle.destroy();
  }

  /// Awaiting a task runs it inside await_ready until it parks with the
  /// scheduler or completes; the continuation is recorded only after the
  /// parent has actually suspended. This is race-free because the child,
  /// once parked, can only be resumed by the (single-threaded) scheduler,
  /// which runs strictly after the parent's suspension unwinds.
  struct Awaiter {
    std::coroutine_handle<promise_type> H;
    bool await_ready() {
      H.resume();
      return H.done();
    }
    void await_suspend(std::coroutine_handle<> Parent) {
      H.promise().Continuation = Parent;
    }
    T await_resume() {
      assert(H.promise().Result && "task finished without a value");
      return std::move(*H.promise().Result);
    }
  };

  /// Awaiting is restricted to *named* (lvalue) tasks: GCC 12 miscompiles
  /// `co_await <temporary Task>` inside branch contexts (the temporary's
  /// frame-resident lifetime management corrupts the enclosing frame's
  /// resume point). Bind the task to a local first:
  /// \code
  ///   auto T = stack.push(E, V);
  ///   co_await T;
  /// \endcode
  Awaiter operator co_await() & { return Awaiter{Handle}; }
  Awaiter operator co_await() && = delete;

  std::coroutine_handle<> handle() const { return Handle; }
  bool done() const { return !Handle || Handle.done(); }

private:
  explicit Task(std::coroutine_handle<promise_type> H) : Handle(H) {}
  std::coroutine_handle<promise_type> Handle;
};

/// Specialization for tasks producing no value.
template <> class [[nodiscard]] Task<void> {
public:
  struct promise_type : detail::PromiseBase {
    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_void() {}
  };

  Task() = default;
  Task(Task &&Other) noexcept : Handle(Other.Handle) {
    Other.Handle = nullptr;
  }
  Task &operator=(Task &&Other) noexcept {
    if (this != &Other) {
      if (Handle)
        Handle.destroy();
      Handle = Other.Handle;
      Other.Handle = nullptr;
    }
    return *this;
  }
  Task(const Task &) = delete;
  Task &operator=(const Task &) = delete;
  ~Task() {
    if (Handle)
      Handle.destroy();
  }

  struct Awaiter {
    std::coroutine_handle<promise_type> H;
    bool await_ready() {
      H.resume();
      return H.done();
    }
    void await_suspend(std::coroutine_handle<> Parent) {
      H.promise().Continuation = Parent;
    }
    void await_resume() {}
  };

  /// See Task<T>::operator co_await: awaiting temporaries is disabled.
  Awaiter operator co_await() & { return Awaiter{Handle}; }
  Awaiter operator co_await() && = delete;

  std::coroutine_handle<> handle() const { return Handle; }
  bool done() const { return !Handle || Handle.done(); }

private:
  explicit Task(std::coroutine_handle<promise_type> H) : Handle(H) {}
  std::coroutine_handle<promise_type> Handle;
};

} // namespace compass::sim

#endif // COMPASS_SIM_TASK_H
