//===-- sim/Engine.h - Copy-on-write execution engine -----------*- C++ -*-===//
//
// Part of compass-cxx. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The execution engine behind exploreSerial and the parallel workers: it
/// owns the per-execution state-reset protocol between an Explorer and a
/// Machine/Scheduler pair (DESIGN.md Section 11).
///
/// Classic stateless model checking re-executes every explored execution
/// from the root, so an execution at depth d costs O(d) machine operations
/// even when it shares a d-1 prefix with its predecessor. This engine
/// instead snapshots the simulation at every fresh multi-alternative
/// decision node (a Machine::Snap of thread views + an O(1) memory epoch, a
/// Scheduler::Boundary, the reduction's sleep state, and the body's
/// client-state slot) and keeps the snapshots on a stack mirroring the DFS
/// path. When the explorer backtracks to a node, the engine rewinds: memory
/// is trimmed to the node's epoch via the undo logs, views are restored
/// from the snapshot, and — since C++20 coroutine frames cannot be copied —
/// the client coroutines are *fast-forwarded*: re-created by Setup and
/// resumed through the journaled step sequence with every machine operation
/// elided (awaiters return journaled values). Only the divergent suffix
/// executes machine operations for real.
///
/// The engine is observationally identical to root replay: summaries,
/// per-tag statistics, sweep fingerprints and first-violation traces are
/// bit-identical (tests pin this via Options::Engine = RootReplay A/B
/// runs). Any stack/trace mismatch falls back to a root execution, so the
/// copy-on-write path is a pure optimization, never a correctness
/// dependency.
///
//===----------------------------------------------------------------------===//

#ifndef COMPASS_SIM_ENGINE_H
#define COMPASS_SIM_ENGINE_H

#include "sim/Explorer.h"
#include "sim/Workload.h"

#include <cstdint>
#include <memory>
#include <vector>

namespace compass::sim {

/// Drives executions of one explorer subtree over a Machine/Scheduler
/// pair; see file comment. The caller owns the begin/record/end explorer
/// protocol and loops:
///
/// \code
///   Engine Eng(Ex, M, S, Body, Opts);
///   while (Ex.beginExecution()) {
///     Engine::ExecResult R = Eng.runOne();
///     Ex.recordCheck(R.CheckOk);
///     Ex.endExecution(R.Run);
///   }
/// \endcode
class Engine {
public:
  struct ExecResult {
    Scheduler::RunResult Run = Scheduler::RunResult::Done;
    bool CheckOk = true;
  };

  /// Binds the engine to one explorer/machine/scheduler/body quadruple.
  /// Installs the explorer's snapshot hook; uninstalls it on destruction.
  /// The referenced objects must outlive the engine.
  Engine(Explorer &Ex, rmc::Machine &M, Scheduler &S, Workload::Body &Body);
  ~Engine();

  Engine(const Engine &) = delete;
  Engine &operator=(const Engine &) = delete;

  /// Runs one execution (the caller's beginExecution() must have returned
  /// true): resumes from the deepest matching snapshot when possible,
  /// otherwise executes from the root.
  ExecResult runOne();

  /// Whether the copy-on-write path is in use (workload eligible, engine
  /// path not forced to RootReplay, tracing off).
  bool cowActive() const { return CowEligible; }

  /// Executions resumed from a snapshot vs. executed from the root, for
  /// diagnostics and the interpreter microbenchmark.
  uint64_t cowResumes() const { return Resumes; }
  uint64_t rootRuns() const { return Roots; }

  /// Scheduler steps actually executed vs. the logical total a root-replay
  /// engine would have run (see Explorer::Summary::Perf).
  uint64_t stepsExecuted() const { return StepsExecuted; }
  uint64_t stepsLogical() const { return StepsLogical; }

private:
  /// One snapshot on the DFS-path stack: everything needed to resume the
  /// simulation right before the decision at NodeIndex. Slots are pooled
  /// in a watermarked vector so steady-state exploration reuses their
  /// heap storage (views, journals, client state) instead of reallocating.
  struct SnapSlot {
    size_t NodeIndex = 0;
    rmc::Machine::Snap MSnap;
    Scheduler::Boundary SBound;
    Reduction::Boundary RBound;
    std::shared_ptr<void> Client; ///< Body.CowSave state (e.g. monitor).
  };

  void onSnapshot(size_t NodeIndex, const char *Tag);
  void resumeFrom(const SnapSlot &Slot);
  void rootSetup();

  Explorer &Ex;
  rmc::Machine &M;
  Scheduler &S;
  Workload::Body &Body;
  Reduction *Red = nullptr;
  uint64_t MaxSteps = 0;
  bool CowEligible = false;

  std::vector<SnapSlot> Slots; ///< [0, Depth) live; rest retained storage.
  size_t Depth = 0;

  uint64_t Resumes = 0;
  uint64_t Roots = 0;
  uint64_t StepsExecuted = 0;
  uint64_t StepsLogical = 0;
};

} // namespace compass::sim

#endif // COMPASS_SIM_ENGINE_H
