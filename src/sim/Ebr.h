//===-- sim/Ebr.h - Simulated epoch-based reclamation -----------*- C++ -*-===//
//
// Part of compass-cxx. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Epoch-based reclamation on the simulated machine, mirroring the native
/// domain (native/Ebr.h, Fraser '04's three-epoch scheme) so reclamation
/// protocols can be model-checked instead of only stress-tested: readers
/// pin the domain (announcing the global epoch, SC so the advance scan
/// cannot miss an announcement), writers retire unlinked cells into the
/// current epoch's bin, and the epoch advances when every pinned reader
/// announces the current epoch — at which point the bin the *new* epoch
/// retires into holds only cells two full grace periods old, and they are
/// freed through rmc::Machine::freeCells.
///
/// The ghost side (rmc::Machine::pinEnter/pinExit/retire/freeCells) turns
/// protocol violations into machine faults: a free while a retire-time
/// reader is still pinned is PREMATURE_FREE; any later access to a freed
/// cell is USE_AFTER_RETIRE. Pristine runs are fault-free (DESIGN.md
/// Section 10 gives the argument); the SkipGracePeriod option disables the
/// announcement scan for mutation testing.
///
/// Deviations from native/Ebr.h, chosen to keep exploration tractable and
/// the sleep-set reduction sound:
///  * retire() does not opportunistically advance (a pinned retirer would
///    only ever observe itself blocking the scan); unpin() drains instead,
///    running up to three advance rounds when retired cells are pending;
///  * the retire-bin bookkeeping is ghost state mutated only on Reclaim
///    ghost steps and — for the bin claim — atomically on the successful
///    epoch-advance CAS, pairings rmc::independent declares dependent.
///
//===----------------------------------------------------------------------===//

#ifndef COMPASS_SIM_EBR_H
#define COMPASS_SIM_EBR_H

#include "sim/Scheduler.h"

#include <string>
#include <vector>

namespace compass::sim {

/// A simulated EBR domain; see file comment. One instance per container
/// per execution (allocation state is per-execution, like the container's).
class Ebr {
public:
  struct Options {
    /// Mutation hook: advance without scanning announcements, breaking the
    /// grace period. Pristine code never sets this.
    bool SkipGracePeriod;
    // Out-of-line defaults (not member initializers): GCC rejects a nested
    // class with default member initializers as a default argument below.
    Options() : SkipGracePeriod(false) {}
    explicit Options(bool Skip) : SkipGracePeriod(Skip) {}
  };

  /// Allocates the epoch cell and one announcement slot per thread.
  Ebr(rmc::Machine &M, const std::string &Name, unsigned NumThreads,
      Options O = Options());

  /// Pins the calling thread: announce the global epoch (SC), fence (SC,
  /// pairing with the advance scan), and enter the ghost critical section.
  Task<void> pin(Env &E);

  /// Unpins the calling thread and, when retired cells are pending, runs
  /// up to three epoch-advance rounds to drain them.
  Task<void> unpin(Env &E);

  /// Retires cells [L, L+Count) (already unlinked; caller pinned) into the
  /// current epoch's bin.
  Task<void> retire(Env &E, rmc::Loc L, unsigned Count);

private:
  /// A retired allocation awaiting its grace period.
  struct Batch {
    rmc::Loc L = 0;
    unsigned Count = 0;
  };

  /// One advance attempt: scan announcements (unless SkipGracePeriod),
  /// CAS the epoch forward, and free the bin the new epoch retires into.
  /// Returns false when blocked by a pinned reader or a lost CAS.
  Task<bool> advanceOnce(Env &E);

  unsigned NumThreads;
  Options Opts;
  rmc::Loc EpochLoc; ///< Global epoch counter (starts at 0).
  rmc::Loc SlotLoc;  ///< NumThreads announcement slots: 0 = unpinned,
                     ///< else announced epoch + 1.
  std::vector<Batch> Bins[3]; ///< Ghost retire bins, indexed by epoch % 3;
                              ///< mutated only on Reclaim/SC steps.
};

} // namespace compass::sim

#endif // COMPASS_SIM_EBR_H
