//===-- sim/DecisionTree.cpp - DFS frontier over decision sequences -------===//

#include "sim/DecisionTree.h"

#include "support/Error.h"

#include <cassert>

using namespace compass;
using namespace compass::sim;

DecisionTree::DecisionTree(Prefix Seed)
    : Trace(std::move(Seed.Path)), SeedLen(Trace.size()) {
#ifndef NDEBUG
  for (const Decision &D : Trace) {
    assert(D.Chosen < D.Count && "seed decision out of range");
    assert(D.Limit == D.Chosen + 1 && "seed decisions must be pinned");
  }
#endif
}

unsigned DecisionTree::next(unsigned Count, const char *Tag) {
  return next(Count, Count, Tag);
}

unsigned DecisionTree::next(unsigned Count, unsigned Limit, const char *Tag) {
  assert(Count >= 1 && "choice with no alternatives");
  assert(Limit >= 1 && Limit <= Count && "enumeration limit out of range");
  if (Pos < Trace.size()) {
    // Replaying the backtracked prefix; the program must be deterministic
    // given the decision sequence. Only the recorded arity is validated:
    // the node's Limit was fixed (from the restriction state, itself a pure
    // function of the prefix) when the node was created, and may since have
    // been lowered by split()-time donation.
    if (Trace[Pos].Count != Count)
      fatalError("nondeterministic replay: decision arity changed");
    return Trace[Pos++].Chosen;
  }
  Trace.push_back({0, Limit, Count, Tag});
  ++Pos;
  return 0;
}

bool DecisionTree::advance() {
  assert(Pos == Trace.size() && "execution ended mid-replay");
  // Depth-first backtracking: advance the deepest decision that still has
  // an untried alternative this tree owns, discarding everything below it.
  // Seed decisions are pinned (Limit == Chosen + 1), so the loop never
  // advances past the seed prefix.
  while (Trace.size() > SeedLen) {
    Decision &D = Trace.back();
    if (D.Chosen + 1 < D.Limit) {
      ++D.Chosen;
      return true;
    }
    Trace.pop_back();
  }
  Exhausted = true;
  return false;
}

std::vector<unsigned> DecisionTree::decisions() const {
  std::vector<unsigned> Out;
  Out.reserve(Trace.size());
  for (const Decision &D : Trace)
    Out.push_back(D.Chosen);
  return Out;
}

uint64_t DecisionTree::frontierSize() const {
  uint64_t N = 0;
  for (const Decision &D : Trace)
    N += D.Limit - D.Chosen - 1;
  return N;
}

bool DecisionTree::splittable() const {
  if (Exhausted)
    return false;
  for (size_t I = SeedLen, E = Trace.size(); I != E; ++I)
    if (Trace[I].Chosen + 1 < Trace[I].Limit)
      return true;
  return false;
}

std::vector<DecisionTree::Prefix> DecisionTree::frontierPrefixes() const {
  std::vector<Prefix> Out;
  if (Exhausted)
    return Out;
  // Valid between executions (Pos == Trace.size()) and on a fresh tree
  // that has not begun its first execution yet (Pos == 0, Trace == seed).
  assert((Pos == Trace.size() || Pos == 0) && "frontier snapshot mid-replay");
  auto PinnedPrefix = [this](size_t Len) {
    Prefix P;
    P.Path.assign(Trace.begin(), Trace.begin() + Len);
    for (Decision &Pd : P.Path)
      Pd.Limit = Pd.Chosen + 1;
    return P;
  };
  // One pinned prefix per untried alternative hanging off the current
  // path (shallowest first — the largest subtrees, mirroring split()).
  for (size_t I = SeedLen, E = Trace.size(); I != E; ++I) {
    const Decision &D = Trace[I];
    for (unsigned A = D.Chosen + 1; A < D.Limit; ++A) {
      Prefix P = PinnedPrefix(I + 1);
      P.Path.back().Chosen = A;
      P.Path.back().Limit = A + 1;
      Out.push_back(std::move(P));
    }
  }
  // The current path itself: between executions it is the next pending
  // decision sequence, and pinning every decision yields exactly the
  // subtree below it. (For a fresh tree this is the bare seed — i.e. the
  // whole subtree the tree was charged with.)
  Out.push_back(PinnedPrefix(Trace.size()));
  return Out;
}

std::vector<DecisionTree::Prefix> DecisionTree::split(size_t MaxDonations) {
  std::vector<Prefix> Out;
  if (Exhausted || MaxDonations == 0)
    return Out;
  // Find the shallowest open choice point: donating there hands off the
  // largest subtrees, which keeps the shared queue coarse-grained.
  for (size_t I = SeedLen, E = Trace.size(); I != E; ++I) {
    Decision &D = Trace[I];
    unsigned Open = D.Limit - D.Chosen - 1;
    if (Open == 0)
      continue;
    unsigned Donate =
        static_cast<unsigned>(std::min<size_t>(Open, MaxDonations));
    // Donate the *highest* alternatives so the donor's remaining range
    // [Chosen, Limit) stays contiguous.
    for (unsigned A = D.Limit - Donate; A != D.Limit; ++A) {
      Prefix P;
      P.Path.assign(Trace.begin(), Trace.begin() + I + 1);
      // Pin every decision of the donated prefix: the recipient owns
      // exactly the subtree below it.
      for (Decision &Pd : P.Path)
        Pd.Limit = Pd.Chosen + 1;
      P.Path.back().Chosen = A;
      P.Path.back().Limit = A + 1;
      Out.push_back(std::move(P));
    }
    D.Limit -= Donate;
    return Out;
  }
  return Out;
}
