//===-- sim/Checkpoint.cpp - Exploration frontier snapshots ---------------===//
//
// Text grammar (version "snapshot v2"; one record per line, space-
// separated fields, tags are identifier-like and never contain spaces):
//
//   snapshot v2
//   summary <Executions> <Completed> <Deadlocks> <Races> <Diverged>
//           <Pruned> <SleepPruned> <RfPruned> <SourcePruned> <CacheHits>
//           <Violations> <Exhausted> <MaxDepth> <HasViolation>
//   tags <N>
//   tag <name> <Choices> <AltSum> <MaxArity>            (N lines)
//   violation <N>
//   fv <Chosen> <Count> <Tag>                           (N lines)
//   prefixes <N>
//   prefix <NDecisions> <HasSleep> <SleepOrdinal> <NSleep>
//   d <Chosen> <Limit> <Count> <Tag>                    (NDecisions lines)
//   s <Tid> <Loc> <Kind> <Sc> <Atomic> <Ver>            (NSleep lines)
//   end snapshot
//
// "snapshot v1" (pre-source-set) is still accepted on read: its summary
// lacks the three source-set counters (default 0) and its sleep records
// lack the Atomic flag and reads-from watermark (defaults false / 0 —
// sound, because v1 snapshots can only come from sleep-mode runs, which
// never consult either field). Writes always emit v2.
//
//===----------------------------------------------------------------------===//

#include "sim/Checkpoint.h"

#include <cassert>
#include <mutex>
#include <set>
#include <sstream>

using namespace compass;
using namespace compass::sim;

const char *sim::internTag(std::string_view Tag) {
  static std::mutex Mu;
  static std::set<std::string, std::less<>> Table; // node-based: stable c_str
  std::lock_guard<std::mutex> L(Mu);
  auto It = Table.find(Tag);
  if (It == Table.end())
    It = Table.emplace(Tag).first;
  return It->c_str();
}

namespace {

const char *tagOrDash(const char *Tag) {
  // Tags are static identifiers; "-" stands in for a null tag.
  return Tag && *Tag ? Tag : "-";
}

const char *internOrNull(const std::string &S) {
  return S == "-" ? nullptr : internTag(S);
}

void writeDecision(std::ostringstream &OS, const char *Kind,
                   const DecisionTree::Decision &D) {
  OS << Kind << ' ' << D.Chosen << ' ' << D.Limit << ' ' << D.Count << ' '
     << tagOrDash(D.Tag) << '\n';
}

/// Line-cursor over the serialized text.
struct Reader {
  std::istringstream In;
  std::string Line;
  size_t LineNo = 0;
  std::string Err;

  explicit Reader(std::string_view Text) : In(std::string(Text)) {}

  bool next() {
    while (std::getline(In, Line)) {
      ++LineNo;
      if (!Line.empty() && Line.back() == '\r')
        Line.pop_back();
      if (!Line.empty())
        return true;
    }
    Err = "unexpected end of snapshot";
    return false;
  }

  bool fail(const std::string &Msg) {
    Err = "line " + std::to_string(LineNo) + ": " + Msg +
          (Line.empty() ? "" : " (got: " + Line + ")");
    return false;
  }
};

/// Parses one line into `Keyword` + numeric/string fields.
struct Fields {
  std::istringstream In;
  explicit Fields(const std::string &Line) : In(Line) {}

  bool word(std::string &Out) { return static_cast<bool>(In >> Out); }

  template <typename T> bool num(T &Out) {
    uint64_t V = 0;
    if (!(In >> V))
      return false;
    Out = static_cast<T>(V);
    // Round-trip check: reject values that do not fit the target type.
    return static_cast<uint64_t>(Out) == V;
  }

  bool flag(bool &Out) {
    unsigned V = 0;
    if (!(In >> V) || V > 1)
      return false;
    Out = V != 0;
    return true;
  }
};

bool expectKeyword(Reader &R, const char *Kw, Fields &F) {
  std::string W;
  if (!F.word(W) || W != Kw)
    return R.fail(std::string("expected '") + Kw + "'");
  return true;
}

} // namespace

std::string sim::serializeSnapshot(const ExplorationSnapshot &S) {
  std::ostringstream OS;
  OS << "snapshot v2\n";
  const Explorer::Summary &P = S.Partial;
  OS << "summary " << P.Executions << ' ' << P.Completed << ' '
     << P.Deadlocks << ' ' << P.Races << ' ' << P.Diverged << ' ' << P.Pruned
     << ' ' << P.SleepPruned << ' ' << P.RfPruned << ' ' << P.SourcePruned
     << ' ' << P.CacheHits << ' ' << P.Violations << ' '
     << unsigned(P.Exhausted) << ' ' << P.MaxDepth << ' '
     << unsigned(P.HasViolation) << '\n';
  OS << "tags " << P.Tags.size() << '\n';
  for (const auto &[Name, St] : P.Tags)
    OS << "tag " << (Name.empty() ? "-" : Name.c_str()) << ' ' << St.Choices
       << ' ' << St.AltSum << ' ' << St.MaxArity << '\n';
  OS << "violation " << (P.HasViolation ? P.FirstViolation.size() : 0)
     << '\n';
  if (P.HasViolation)
    for (const DecisionTree::Decision &D : P.FirstViolation)
      writeDecision(OS, "fv", D);
  OS << "prefixes " << S.Frontier.size() << '\n';
  for (const DecisionTree::Prefix &Pf : S.Frontier) {
    OS << "prefix " << Pf.Path.size() << ' ' << unsigned(Pf.HasSleep) << ' '
       << Pf.SleepOrdinal << ' ' << (Pf.HasSleep ? Pf.Sleep.size() : 0)
       << '\n';
    for (const DecisionTree::Decision &D : Pf.Path)
      writeDecision(OS, "d", D);
    if (Pf.HasSleep)
      for (const SleepMove &Mv : Pf.Sleep)
        OS << "s " << Mv.Tid << ' ' << static_cast<uint64_t>(Mv.Fp.L) << ' '
           << unsigned(static_cast<uint8_t>(Mv.Fp.K)) << ' '
           << unsigned(Mv.Fp.Sc) << ' ' << unsigned(Mv.Fp.Atomic) << ' '
           << Mv.Ver << '\n';
  }
  OS << "end snapshot\n";
  return OS.str();
}

namespace {

bool parseDecision(Reader &R, const char *Kind, DecisionTree::Decision &D) {
  if (!R.next())
    return false;
  Fields F(R.Line);
  if (!expectKeyword(R, Kind, F))
    return false;
  std::string Tag;
  if (!F.num(D.Chosen) || !F.num(D.Limit) || !F.num(D.Count) ||
      !F.word(Tag))
    return R.fail("malformed decision");
  if (D.Count == 0 || D.Chosen >= D.Count || D.Limit > D.Count ||
      D.Limit <= D.Chosen)
    return R.fail("decision fields out of range");
  D.Tag = internOrNull(Tag);
  return true;
}

} // namespace

bool sim::parseSnapshot(std::string_view Text, ExplorationSnapshot &Out,
                        std::string &Err) {
  Out = ExplorationSnapshot{};
  Reader R(Text);
  auto Done = [&](bool Ok) {
    if (!Ok)
      Err = R.Err;
    return Ok;
  };

  if (!R.next())
    return Done(false);
  unsigned Version = 0;
  if (R.Line == "snapshot v2")
    Version = 2;
  else if (R.Line == "snapshot v1")
    Version = 1; // Pre-source-set grammar; see file comment.
  else
    return Done(R.fail("unsupported snapshot header (want 'snapshot v2')"));

  Explorer::Summary &P = Out.Partial;
  if (!R.next())
    return Done(false);
  {
    Fields F(R.Line);
    if (!expectKeyword(R, "summary", F))
      return Done(false);
    if (!F.num(P.Executions) || !F.num(P.Completed) || !F.num(P.Deadlocks) ||
        !F.num(P.Races) || !F.num(P.Diverged) || !F.num(P.Pruned) ||
        !F.num(P.SleepPruned))
      return Done(R.fail("malformed summary record"));
    if (Version >= 2 && (!F.num(P.RfPruned) || !F.num(P.SourcePruned) ||
                         !F.num(P.CacheHits)))
      return Done(R.fail("malformed summary record"));
    if (!F.num(P.Violations) || !F.flag(P.Exhausted) || !F.num(P.MaxDepth) ||
        !F.flag(P.HasViolation))
      return Done(R.fail("malformed summary record"));
  }

  uint64_t NTags = 0;
  if (!R.next())
    return Done(false);
  {
    Fields F(R.Line);
    if (!expectKeyword(R, "tags", F) || !F.num(NTags))
      return Done(R.fail("malformed tags record"));
  }
  for (uint64_t I = 0; I != NTags; ++I) {
    if (!R.next())
      return Done(false);
    Fields F(R.Line);
    std::string Name;
    Explorer::TagStat St;
    if (!expectKeyword(R, "tag", F) || !F.word(Name) || !F.num(St.Choices) ||
        !F.num(St.AltSum) || !F.num(St.MaxArity))
      return Done(R.fail("malformed tag record"));
    P.Tags[Name == "-" ? "" : Name] = St;
  }

  uint64_t NViol = 0;
  if (!R.next())
    return Done(false);
  {
    Fields F(R.Line);
    if (!expectKeyword(R, "violation", F) || !F.num(NViol))
      return Done(R.fail("malformed violation record"));
  }
  for (uint64_t I = 0; I != NViol; ++I) {
    DecisionTree::Decision D;
    if (!parseDecision(R, "fv", D))
      return Done(false);
    P.FirstViolation.push_back(D);
  }
  if (P.HasViolation && P.FirstViolation.empty())
    return Done(R.fail("violation flagged but trace missing"));

  uint64_t NPrefixes = 0;
  if (!R.next())
    return Done(false);
  {
    Fields F(R.Line);
    if (!expectKeyword(R, "prefixes", F) || !F.num(NPrefixes))
      return Done(R.fail("malformed prefixes record"));
  }
  for (uint64_t I = 0; I != NPrefixes; ++I) {
    if (!R.next())
      return Done(false);
    Fields F(R.Line);
    uint64_t NDec = 0, NSleep = 0;
    DecisionTree::Prefix Pf;
    if (!expectKeyword(R, "prefix", F) || !F.num(NDec) ||
        !F.flag(Pf.HasSleep) || !F.num(Pf.SleepOrdinal) || !F.num(NSleep))
      return Done(R.fail("malformed prefix record"));
    for (uint64_t J = 0; J != NDec; ++J) {
      DecisionTree::Decision D;
      if (!parseDecision(R, "d", D))
        return Done(false);
      if (D.Limit != D.Chosen + 1)
        return Done(R.fail("checkpoint prefix decision is not pinned"));
      Pf.Path.push_back(D);
    }
    for (uint64_t J = 0; J != NSleep; ++J) {
      if (!R.next())
        return Done(false);
      Fields FS(R.Line);
      SleepMove Mv;
      uint64_t L = 0;
      unsigned Kind = 0;
      if (!expectKeyword(R, "s", FS) || !FS.num(Mv.Tid) || !FS.num(L) ||
          !FS.num(Kind) || !FS.flag(Mv.Fp.Sc))
        return Done(R.fail("malformed sleep record"));
      if (Version >= 2 && (!FS.flag(Mv.Fp.Atomic) || !FS.num(Mv.Ver)))
        return Done(R.fail("malformed sleep record"));
      if (Kind > static_cast<unsigned>(rmc::Footprint::Kind::Free))
        return Done(R.fail("sleep footprint kind out of range"));
      Mv.Fp.L = static_cast<rmc::Loc>(L);
      Mv.Fp.K = static_cast<rmc::Footprint::Kind>(Kind);
      Pf.Sleep.push_back(Mv);
    }
    if (Pf.HasSleep && !Pf.Path.empty() &&
        Pf.SleepOrdinal >= Pf.Path.size())
      return Done(R.fail("sleep ordinal beyond prefix depth"));
    Out.Frontier.push_back(std::move(Pf));
  }

  if (!R.next())
    return Done(false);
  if (R.Line != "end snapshot")
    return Done(R.fail("expected 'end snapshot'"));
  return true;
}
