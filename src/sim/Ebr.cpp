//===-- sim/Ebr.cpp - Simulated epoch-based reclamation -------------------===//

#include "sim/Ebr.h"

#include <utility>

using namespace compass;
using namespace compass::sim;
using namespace compass::rmc;

Ebr::Ebr(Machine &M, const std::string &Name, unsigned NumThreads,
         Options O)
    : NumThreads(NumThreads), Opts(O) {
  EpochLoc = M.alloc(Name + ".epoch");
  SlotLoc = M.alloc(Name + ".slot", NumThreads);
}

Task<void> Ebr::pin(Env &E) {
  Value Ep = co_await E.load(EpochLoc, MemOrder::Acquire);
  // Announce epoch Ep (slot value Ep+1; 0 means unpinned). SC, so an
  // advance scan that runs after this step cannot read a staler slot
  // message and miss the announcement.
  co_await E.store(SlotLoc + E.Tid, Ep + 1, MemOrder::SeqCst);
  // Pairs with the fence in advanceOnce (native Guard does the same): the
  // join with the global SC view is what guarantees a freshly pinned
  // reader cannot read a head pointer unlinked before an already-freed
  // cell's grace period elapsed.
  co_await E.fence(MemOrder::SeqCst);
  co_await E.pinEnter();
}

Task<void> Ebr::unpin(Env &E) {
  co_await E.pinExit();
  // Reading the bins rides on the pinExit ghost step (Kind::Reclaim),
  // which is dependent with every other bin mutation.
  bool Work =
      !Bins[0].empty() || !Bins[1].empty() || !Bins[2].empty();
  co_await E.store(SlotLoc + E.Tid, 0, MemOrder::Release);
  if (!Work)
    co_return;
  // Three rounds drain everything when the domain is quiescent: each
  // round frees one bin.
  for (int Round = 0; Round != 3; ++Round) {
    auto A = advanceOnce(E);
    bool Advanced = co_await A;
    if (!Advanced)
      co_return;
  }
}

Task<void> Ebr::retire(Env &E, Loc L, unsigned Count) {
  Value Ep = co_await E.load(EpochLoc, MemOrder::Acquire);
  // The ghost retire step marks the cells Retired and snapshots the pinned
  // readers; the bin push rides on the same step.
  co_await E.retire(L, Count);
  Bins[Ep % 3].push_back({L, Count});
}

Task<bool> Ebr::advanceOnce(Env &E) {
  Value Ep = co_await E.load(EpochLoc, MemOrder::Acquire);
  // Pairs with the fence in pin(): order the scan after any announcement
  // published before this step (native tryAdvance does the same).
  co_await E.fence(MemOrder::SeqCst);
  if (!Opts.SkipGracePeriod) {
    for (unsigned T = 0; T != NumThreads; ++T) {
      Value S = co_await E.load(SlotLoc + T, MemOrder::SeqCst);
      if (S != 0 && S != Ep + 1)
        co_return false; // A reader is still pinned in an older epoch.
    }
  }
  auto R = co_await E.cas(EpochLoc, Ep, Ep + 1, MemOrder::SeqCst);
  if (!R.Success)
    co_return false; // Someone else advanced; they claimed their bin.
  // Claim the bin epoch Ep+1 retires into — its contents are two full
  // grace periods old. The claim must ride on the successful CAS step
  // itself: a retire tagged Ep+1 can only exist after this CAS, so
  // claiming atomically with it keeps such cells out of this free. (The
  // Reclaim-vs-SC dependence in rmc::independent makes this pairing
  // visible to the sleep-set reduction.) The claim is a local snapshot: a
  // concurrent advancer must never see these entries again.
  std::vector<Batch> Claimed = std::move(Bins[(Ep + 1) % 3]);
  Bins[(Ep + 1) % 3].clear();
  for (const Batch &B : Claimed)
    co_await E.freeCells(B.L, B.Count);
  co_return true;
}
