//===-- sim/Engine.cpp - Copy-on-write execution engine -------------------===//

#include "sim/Engine.h"

#include <cassert>
#include <cstring>

using namespace compass;
using namespace compass::sim;

Engine::Engine(Explorer &Ex, rmc::Machine &M, Scheduler &S,
               Workload::Body &Body)
    : Ex(Ex), M(M), S(S), Body(Body), Red(Ex.reduction()),
      MaxSteps(Ex.options().MaxStepsPerExec) {
  const Explorer::Options &Opts = Ex.options();
  CowEligible = Opts.ExploreMode == Explorer::Mode::Exhaustive &&
                Opts.Engine != EnginePath::RootReplay &&
                (Body.CowSafe || (Body.CowSave && Body.CowRestore)) &&
                !M.tracingEnabled();
  M.enableBoundaryScratch(CowEligible);
  if (CowEligible)
    Ex.setSnapshotHook([this](size_t NodeIndex, const char *Tag) {
      onSnapshot(NodeIndex, Tag);
    });
  else
    S.stopJournal();
}

Engine::~Engine() {
  Ex.setSnapshotHook(nullptr);
  M.enableBoundaryScratch(false);
  S.stopJournal();
}

void Engine::onSnapshot(size_t NodeIndex, const char *Tag) {
  if (S.journalMode() != Scheduler::JournalMode::Record)
    return; // Decision outside a journaled run (defensive; not expected).
  if (Depth == Slots.size())
    Slots.emplace_back();
  SnapSlot &Slot = Slots[Depth++];
  Slot.NodeIndex = NodeIndex;
  if (std::strcmp(Tag, "sched") == 0) {
    // Scheduler pick: nothing has mutated since the loop top.
    M.saveSnapshot(Slot.MSnap);
  } else {
    // Operation-level choice (load / load-where / cas) inside a step: the
    // only pre-choice mutation is the choosing thread's SC pre-join, which
    // the machine stashed in the pick scratch; substitute it back so the
    // snapshot is loop-top exact. The divergent sibling re-executes the
    // whole step, re-applying the pre-join itself.
    M.saveSnapshot(Slot.MSnap, S.currentStepThread(), &M.pickCurScratch(),
                   &M.pickAcqScratch());
  }
  Slot.SBound = S.captureBoundary();
  if (Red)
    Slot.RBound = Red->boundary();
  if (Body.CowSave)
    Body.CowSave(Slot.Client);
}

void Engine::rootSetup() {
  M.reset();
  S.reset();
  if (CowEligible)
    S.beginJournal();
  Body.Setup(M, S);
  ++Roots;
}

void Engine::resumeFrom(const SnapSlot &Slot) {
  // Coroutine frames cannot be copied, so client state is re-established
  // by re-running Setup and fast-forwarding the journaled step sequence
  // with machine operations elided; machine state is restored from the
  // snapshot and the memory undo logs.
  S.beginFastForward();
  M.beginReplay();
  S.reset();
  Body.Setup(M, S);
  S.fastForward(Slot.SBound.Steps,
                Body.CowSkipFinished ? Slot.SBound.FinishedMask : 0);
  M.memoryMut().trimToEpoch(Slot.MSnap.MemEpoch);
  M.endReplay(Slot.MSnap.Aux);
  M.restoreSnapshot(Slot.MSnap);
  if (Red)
    Red->restore(Slot.RBound);
  if (Body.CowRestore)
    Body.CowRestore(Slot.Client);
  S.endFastForward(Slot.SBound);
  // The decisions before the boundary are already on the tree path; skip
  // their replay but credit their per-tag statistics so the summary core
  // stays engine-path independent.
  Ex.resumeReplayAt(Slot.SBound.TreePos);
  Ex.creditReplayedPrefix(Slot.SBound.TreePos);
  ++Resumes;
}

Engine::ExecResult Engine::runOne() {
  bool Resumed = false;
  uint64_t BaseSteps = 0;
  if (CowEligible) {
    const auto &Trace = Ex.currentTrace();
    if (!Trace.empty()) {
      // The DFS just advanced the decision at the path's tail; pop the
      // snapshots of the discarded deeper subtree back into the pool.
      const size_t DivIdx = Trace.size() - 1;
      while (Depth != 0 && Slots[Depth - 1].NodeIndex > DivIdx)
        --Depth;
      if (Depth != 0 && Slots[Depth - 1].NodeIndex == DivIdx) {
        resumeFrom(Slots[Depth - 1]);
        BaseSteps = Slots[Depth - 1].SBound.Steps;
        Resumed = true;
      }
      // else: no snapshot for the divergence node (e.g. the previous
      // execution ran under a fallback) — execute from the root below.
    }
  }
  if (!Resumed)
    rootSetup();

  ExecResult Out;
  Out.Run = S.run(MaxSteps);
  StepsLogical += S.steps();
  StepsExecuted += S.steps() - BaseSteps;
  if (Body.Check)
    Out.CheckOk = Body.Check(M, S, Out.Run);
  return Out;
}

//===----------------------------------------------------------------------===//
// Serial driver (declared in Workload.h)
//===----------------------------------------------------------------------===//

Explorer::Summary compass::sim::exploreSerial(const Workload &W) {
  Explorer Ex(W.options());
  Workload::Body Body = W.makeBody();
  // One machine/scheduler pair serves every execution (the arena pattern;
  // see rmc::Machine::reset): steady-state replays allocate nothing.
  rmc::Machine M(Ex);
  Scheduler S(M, Ex);
  S.setPreemptionBound(W.options().PreemptionBound);
  S.setReduction(Ex.reduction());
  Engine Eng(Ex, M, S, Body);
  while (Ex.beginExecution()) {
    Engine::ExecResult R = Eng.runOne();
    Ex.recordCheck(R.CheckOk);
    Ex.endExecution(R.Run);
    if (!R.CheckOk && W.options().StopOnViolation)
      break;
  }
  Explorer::Summary Sum = Ex.summary();
  Sum.Perf.StepsExecuted = Eng.stepsExecuted();
  Sum.Perf.StepsLogical = Eng.stepsLogical();
  Sum.Perf.CowResumes = Eng.cowResumes();
  Sum.Perf.RootRuns = Eng.rootRuns();
  return Sum;
}
