//===-- sim/Scheduler.cpp - Cooperative simulated-thread scheduler --------===//


#include "sim/Scheduler.h"

#include "support/Error.h"

#include <cassert>

using namespace compass;
using namespace compass::sim;

Env &Scheduler::newThread() {
  unsigned Tid = M.addThread();
  auto Rec = std::make_unique<ThreadRec>();
  Rec->E = std::make_unique<Env>(Env{M, *this, Tid});
  Env &Out = *Rec->E;
  Threads.push_back(std::move(Rec));
  assert(Threads.size() == M.numThreads() &&
         "threads must be created through the scheduler");
  return Out;
}

void Scheduler::start(Env &E, Task<void> Root) {
  ThreadRec &Rec = *Threads[E.Tid];
  assert(!Rec.Started && "thread already started");
  assert(Rec.E.get() == &E && "start() must use the thread's own Env");
  Rec.Root = std::move(Root);
  Rec.Pending = Rec.Root.handle();
  Rec.Started = true;
}

void Scheduler::park(unsigned Tid, std::coroutine_handle<> H) {
  ThreadRec &Rec = *Threads[Tid];
  assert(!Rec.Pending && "thread parked twice without being scheduled");
  Rec.Pending = H;
  Rec.Blocked = false;
}

void Scheduler::parkBlocked(unsigned Tid, std::coroutine_handle<> H,
                            rmc::Loc L, rmc::ValuePred Pred) {
  ThreadRec &Rec = *Threads[Tid];
  assert(!Rec.Pending && "thread parked twice without being scheduled");
  Rec.Pending = H;
  Rec.Blocked = true;
  Rec.WaitLoc = L;
  Rec.WaitPred = std::move(Pred);
}

Scheduler::RunResult Scheduler::run(uint64_t MaxSteps) {
  for (auto &Rec : Threads)
    if (!Rec->Started)
      fatalError("scheduler run() with an unstarted thread");

  std::vector<unsigned> Enabled;
  for (;;) {
    if (M.raceDetected())
      return RunResult::Race;
    if (PruneRequested)
      return RunResult::Pruned;

    Enabled.clear();
    bool AnyUnfinished = false;
    for (unsigned Tid = 0, E = static_cast<unsigned>(Threads.size());
         Tid != E; ++Tid) {
      ThreadRec &Rec = *Threads[Tid];
      if (Rec.Done)
        continue;
      AnyUnfinished = true;
      if (!Rec.Blocked ||
          M.anyReadableSatisfies(Tid, Rec.WaitLoc, Rec.WaitPred))
        Enabled.push_back(Tid);
    }

    if (!AnyUnfinished)
      return RunResult::Done;
    if (Enabled.empty())
      return RunResult::Deadlock;
    if (Steps >= MaxSteps)
      return RunResult::StepLimit;

    // Preemption bounding (CHESS): once the budget is spent, a thread that
    // is still enabled keeps running; switches are only explored when the
    // current thread blocked or finished, or while budget remains.
    bool LastEnabled = false;
    for (unsigned Tid : Enabled)
      LastEnabled |= Tid == LastRun;
    unsigned Pick;
    if (LastEnabled && Preemptions >= PreemptionBound) {
      Pick = 0;
      while (Enabled[Pick] != LastRun)
        ++Pick;
    } else {
      Pick = Enabled.size() == 1
                 ? 0
                 : Choices.choose(static_cast<unsigned>(Enabled.size()),
                                  "sched");
      if (LastEnabled && Enabled[Pick] != LastRun)
        ++Preemptions;
    }
    LastRun = Enabled[Pick];
    ThreadRec &Rec = *Threads[Enabled[Pick]];
    Rec.Blocked = false;
    std::coroutine_handle<> H = Rec.Pending;
    Rec.Pending = nullptr;
    H.resume();
    ++Steps;

    // The thread either parked a new pending handle (at its next memory
    // operation) or ran to completion.
    if (!Rec.Pending) {
      if (!Rec.Root.done())
        fatalError("thread stopped without parking or ending");
      Rec.Done = true;
    }
  }
}
