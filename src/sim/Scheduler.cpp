//===-- sim/Scheduler.cpp - Cooperative simulated-thread scheduler --------===//


#include "sim/Scheduler.h"

#include "sim/Reduction.h"
#include "support/Error.h"

#include <cassert>

using namespace compass;
using namespace compass::sim;

Env &Scheduler::newThread() {
  unsigned Tid = M.addThread();
  if (LiveThreads < Threads.size()) {
    // Recycle a retained record from an earlier execution. Executions
    // re-create threads in the same order, so the recycled Env (whose M,
    // S and Tid are immutable) is exactly the one this thread needs.
    ThreadRec &Rec = *Threads[LiveThreads];
    assert(Rec.E && Rec.E->Tid == Tid &&
           "thread records must be recycled in creation order");
    Rec.Root = Task<void>(); // Destroys any leftover coroutine frame.
    Rec.Pending = nullptr;
    Rec.NextFp = rmc::Footprint();
    Rec.Started = false;
    Rec.Done = false;
    Rec.Blocked = false;
    Rec.WaitLoc = 0;
    Rec.WaitPred = nullptr;
    Rec.CacheValid = false;
    ++LiveThreads;
    return *Rec.E;
  }
  auto Rec = std::make_unique<ThreadRec>();
  Rec->E = std::make_unique<Env>(Env{M, *this, Tid});
  Env &Out = *Rec->E;
  Threads.push_back(std::move(Rec));
  ++LiveThreads;
  assert(LiveThreads == M.numThreads() &&
         "threads must be created through the scheduler");
  return Out;
}

void Scheduler::reset() {
  LiveThreads = 0;
  Steps = 0;
  Preemptions = 0;
  LastRun = ~0u;
  PruneRequested = false;
  DoneMask = 0;
  // Thread records, PreemptionBound and the reduction hook persist; the
  // caller resets the machine and (for reduced runs) the Reduction
  // separately.
}

void Scheduler::start(Env &E, Task<void> Root) {
  ThreadRec &Rec = *Threads[E.Tid];
  assert(!Rec.Started && "thread already started");
  assert(Rec.E.get() == &E && "start() must use the thread's own Env");
  Rec.Root = std::move(Root);
  Rec.Pending = Rec.Root.handle();
  Rec.Started = true;
  // The first resume runs thread-local setup up to the first memory
  // operation; it touches no shared state.
  Rec.NextFp = rmc::Footprint{0, rmc::Footprint::Kind::Start, false};
}

void Scheduler::park(unsigned Tid, std::coroutine_handle<> H,
                     rmc::Footprint Fp) {
  ThreadRec &Rec = *Threads[Tid];
  assert(!Rec.Pending && "thread parked twice without being scheduled");
  Rec.Pending = H;
  Rec.NextFp = Fp;
  Rec.Blocked = false;
}

void Scheduler::parkBlocked(unsigned Tid, std::coroutine_handle<> H,
                            rmc::Loc L, rmc::ValuePred Pred,
                            rmc::Footprint Fp) {
  ThreadRec &Rec = *Threads[Tid];
  assert(!Rec.Pending && "thread parked twice without being scheduled");
  Rec.Pending = H;
  Rec.NextFp = Fp;
  Rec.Blocked = true;
  Rec.WaitLoc = L;
  Rec.WaitPred = std::move(Pred);
  // The thread just ran (its view may have risen), so any memoized wait
  // verdict is stale.
  Rec.CacheValid = false;
}

Scheduler::RunResult Scheduler::run(uint64_t MaxSteps) {
  for (size_t I = 0; I != LiveThreads; ++I)
    if (!Threads[I]->Started)
      fatalError("scheduler run() with an unstarted thread");

  // Reads-from duplicate detection rides on source-set reduction only; the
  // masks are pure functions of the decision prefix, so enabling is a
  // per-mode constant, re-asserted here for machines shared across modes.
  M.enableDupDetect(Red && Red->sourceSets());

  for (;;) {
    if (M.raceDetected())
      return RunResult::Race;
    if (PruneRequested)
      return RunResult::Pruned;

    Enabled.clear();
    bool AnyUnfinished = false;
    for (unsigned Tid = 0, E = static_cast<unsigned>(LiveThreads); Tid != E;
         ++Tid) {
      ThreadRec &Rec = *Threads[Tid];
      if (Rec.Done)
        continue;
      AnyUnfinished = true;
      if (!Rec.Blocked) {
        Enabled.push_back(Tid);
        continue;
      }
      // Memoized wait scan: a blocked thread's verdict can only change
      // when the awaited cell's history grows (its own view is frozen).
      const size_t Len = M.historyLen(Rec.WaitLoc);
      bool Ready;
      if (Rec.CacheValid && Rec.CacheLoc == Rec.WaitLoc &&
          Rec.CacheLen == Len) {
        Ready = Rec.CacheResult;
      } else {
        Ready = M.anyReadableSatisfies(Tid, Rec.WaitLoc, Rec.WaitPred);
        Rec.CacheLoc = Rec.WaitLoc;
        Rec.CacheLen = Len;
        Rec.CacheResult = Ready;
        Rec.CacheValid = true;
      }
      if (Ready)
        Enabled.push_back(Tid);
    }

    if (!AnyUnfinished)
      return RunResult::Done;
    if (Enabled.empty())
      return RunResult::Deadlock;
    if (Steps >= MaxSteps)
      return RunResult::StepLimit;

    if (Mode == JournalMode::Record) {
      // Loop-top boundary of the step about to execute: the state a
      // snapshot taken at any choice inside it must rewind to. Captured
      // before the scheduler pick below mutates Preemptions/LastRun.
      LoopTop.Steps = Steps;
      LoopTop.Preemptions = Preemptions;
      LoopTop.LastRun = LastRun;
      LoopTop.OpEntries = OpLog.size();
      LoopTop.TreePos = Choices.decisionPosition();
      LoopTop.FinishedMask = DoneMask;
      if (Red)
        Red->saveBoundary();
    }

    // Preemption bounding (CHESS): once the budget is spent, a thread that
    // is still enabled keeps running; switches are only explored when the
    // current thread blocked or finished, or while budget remains.
    bool LastEnabled = false;
    for (unsigned Tid : Enabled)
      LastEnabled |= Tid == LastRun;
    unsigned Pick;
    bool Chose = false; // Whether a real "sched" decision was recorded.
    if (LastEnabled && Preemptions >= PreemptionBound) {
      Pick = 0;
      while (Enabled[Pick] != LastRun)
        ++Pick;
    } else {
      if (Enabled.size() == 1) {
        Pick = 0;
      } else {
        Pick = Choices.choose(static_cast<unsigned>(Enabled.size()),
                              "sched");
        Chose = true;
      }
      if (LastEnabled && Enabled[Pick] != LastRun)
        ++Preemptions;
    }

    bool RestrictedStep = false;
    if (Red) {
      // History length of a pending footprint's location — the reads-from
      // watermark material for the source-set refinement. Only read/write/
      // update footprints carry a meaningful location.
      auto HistOf = [this](const rmc::Footprint &Fp) -> uint32_t {
        using K = rmc::Footprint::Kind;
        if (Fp.K != K::Read && Fp.K != K::Write && Fp.K != K::Update)
          return 0;
        return static_cast<uint32_t>(M.historyLen(Fp.L));
      };
      Reduction::Verdict V;
      if (Chose) {
        // A real choice point: siblings exist, so alternatives before the
        // pick go to sleep and the pick itself is prune-checked.
        EnabledFps.clear();
        EnabledHist.clear();
        for (unsigned Tid : Enabled) {
          EnabledFps.push_back(Threads[Tid]->NextFp);
          EnabledHist.push_back(HistOf(EnabledFps.back()));
        }
        V = Red->onSchedChoice(Enabled, EnabledFps, EnabledHist, Pick);
      } else {
        // Forced or singleton pick: no sibling branch covers a delayed
        // version of a sleeping move here, so only prune-check.
        V = Red->onSchedule(Enabled[Pick],
                            HistOf(Threads[Enabled[Pick]]->NextFp));
      }
      if (V == Reduction::Verdict::Prune)
        return RunResult::SleepPruned;
      if (V == Reduction::Verdict::Restricted) {
        // Source-set restricted re-run of a sleeping read/update: only the
        // reads-from options at or past the watermark are new; the machine
        // filters the step's choice set accordingly.
        M.setRfFloor(Red->restrictLoc(), Red->restrictVer());
        RestrictedStep = true;
      }
    }

    LastRun = Enabled[Pick];
    ThreadRec &Rec = *Threads[Enabled[Pick]];
    Rec.Blocked = false;
    std::coroutine_handle<> H = Rec.Pending;
    Rec.Pending = nullptr;
    if (Mode == JournalMode::Record)
      StepLog.push_back({LastRun, 0, {}});
    const uint64_t Seq0 = M.opSeq();
    H.resume();
    ++Steps;
    if (Mode == JournalMode::Record) {
      // End-of-step cursor marks, so a fast-forward can skip the whole
      // step (finished thread) by jumping the cursors here.
      StepEnt &Ent = StepLog.back();
      Ent.OpEnd = static_cast<uint32_t>(OpLog.size());
      Ent.AuxEnd = M.auxMark();
    }

    if (RestrictedStep) {
      // The restricted choice set can come up empty only for a predicated
      // spin read (loadWhere): no new message satisfies the predicate, so
      // every reads-from option was covered by the sibling that ran the
      // move before the intervening writes.
      const bool Empty = M.clearRfFloor();
      if (Empty)
        return RunResult::RfPruned;
    }

    if (Red) {
      // Report the executed step so dependent sleeping moves wake. A
      // resume normally performs exactly one machine operation (the parked
      // awaiter's); the start resume and Env::prune perform none. Anything
      // else (client code invoking the machine directly mid-step) is
      // reported with an unknown footprint, which wakes everyone —
      // conservative but sound.
      const uint64_t Delta = M.opSeq() - Seq0;
      if (Delta == 1)
        Red->onStepExecuted(LastRun, M.lastFootprint());
      else if (Delta > 1)
        Red->onStepExecuted(LastRun, rmc::Footprint());
    }

    // The thread either parked a new pending handle (at its next memory
    // operation) or ran to completion.
    if (!Rec.Pending) {
      if (!Rec.Root.done())
        fatalError("thread stopped without parking or ending");
      Rec.Done = true;
      if (LastRun < 64)
        DoneMask |= uint64_t{1} << LastRun;
    }
  }
}

void Scheduler::journalUnderrun() const {
  fatalError("copy-on-write fast-forward diverged: operation journal "
             "exhausted before the snapshot boundary");
}

void Scheduler::fastForward(uint64_t NSteps, uint64_t SkipMask) {
  assert(Mode == JournalMode::Replay &&
         "fastForward requires beginFastForward");
  if (NSteps > StepLog.size())
    fatalError("fast-forward past the recorded prefix");
  for (uint64_t I = 0; I != NSteps; ++I) {
    const StepEnt &Ent = StepLog[I];
    if (Ent.Tid < 64 && (SkipMask >> Ent.Tid & 1)) {
      // The thread is finished at the target boundary, so its recomputed
      // coroutine frame is never resumed in the subtree: skip the resume
      // entirely and jump every journal cursor over the step's entries.
      OpCursor = Ent.OpEnd;
      M.setReplayAux(Ent.AuxEnd);
      continue;
    }
    ThreadRec &Rec = *Threads[Ent.Tid];
    if (!Rec.Pending)
      fatalError("fast-forward scheduled a thread with no pending step");
    Rec.Blocked = false;
    std::coroutine_handle<> H = Rec.Pending;
    Rec.Pending = nullptr;
    H.resume();
    if (!Rec.Pending) {
      if (!Rec.Root.done())
        fatalError("thread stopped without parking or ending");
      Rec.Done = true;
      if (Ent.Tid < 64)
        DoneMask |= uint64_t{1} << Ent.Tid;
    }
  }
  // Mark the skipped threads finished; their never-resumed start frames
  // are destroyed by the next Setup's start().
  for (unsigned Tid = 0; Tid < LiveThreads && Tid < 64; ++Tid)
    if (SkipMask >> Tid & 1) {
      ThreadRec &Rec = *Threads[Tid];
      Rec.Pending = nullptr;
      Rec.Done = true;
      DoneMask |= uint64_t{1} << Tid;
    }
}

void Scheduler::endFastForward(const Boundary &B) {
  if (OpCursor != B.OpEntries)
    fatalError("copy-on-write fast-forward diverged: operation journal "
               "out of sync with the snapshot boundary");
  StepLog.resize(B.Steps);
  OpLog.resize(B.OpEntries);
  OpCursor = 0;
  Steps = B.Steps;
  Preemptions = B.Preemptions;
  LastRun = B.LastRun;
  PruneRequested = false;
  Mode = JournalMode::Record;
  LoopTop = B;
  DoneMask = B.FinishedMask;
  // The rewind may have changed slot contents under unchanged history
  // lengths; every memoized wait verdict is suspect.
  for (size_t I = 0; I != LiveThreads; ++I)
    Threads[I]->CacheValid = false;
}
