//===-- sim/DecisionTree.h - DFS frontier over decision sequences -*- C++ -*-===//
//
// Part of compass-cxx. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pure search-state half of the model checker: a depth-first frontier
/// over the tree formed by every nondeterministic decision of an execution.
/// It owns no I/O and drives no machine — it only answers "which alternative
/// next?" (replaying a backtracked prefix, then extending with first-choice
/// defaults), backtracks between executions, and can *split* its frontier
/// into independently explorable subtree prefixes for work sharing between
/// parallel workers.
///
/// A tree may be *seeded* with a fixed prefix of decisions: the prefix is
/// replayed at the start of every execution and is never backtracked past,
/// so a seeded tree enumerates exactly the subtree rooted at that prefix.
/// Splitting donates the untried alternatives of the shallowest still-open
/// choice point as seeded prefixes; the donor keeps the alternatives below.
/// Together these give the invariant the parallel explorer relies on: the
/// set of decision sequences enumerated by a tree equals the disjoint union
/// of the sequences enumerated after any series of splits.
///
//===----------------------------------------------------------------------===//

#ifndef COMPASS_SIM_DECISIONTREE_H
#define COMPASS_SIM_DECISIONTREE_H

#include "rmc/Footprint.h"

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace compass::sim {

/// One sleeping scheduler move: a thread together with the footprint of its
/// pending operation at the time it was put to sleep. Used by the sleep-set
/// partial-order reduction (sim/Reduction.h) and carried inside donated
/// DecisionTree prefixes so parallel work donation can cross-check the
/// reduction state a recipient worker recomputes.
struct SleepMove {
  unsigned Tid = 0;
  rmc::Footprint Fp;
  /// Reads-from watermark: the length of Fp.L's write history when the move
  /// was put to sleep. Used by the source-set reduction (Reduction.h): a
  /// sleeping read/update scheduled later may only read messages appended
  /// at or after this length (older reads-from choices commute back to the
  /// already-explored sibling that ran the move first). Always 0 under the
  /// plain sleep-set reduction, so sleep-mode snapshots are unchanged.
  uint32_t Ver = 0;

  bool operator==(const SleepMove &O) const {
    return Tid == O.Tid && Fp == O.Fp && Ver == O.Ver;
  }
};

/// Depth-first frontier over the decision tree of a bounded program.
class DecisionTree {
public:
  /// One node on the current path.
  struct Decision {
    unsigned Chosen; ///< Alternative taken on the current path.
    unsigned Limit;  ///< Exclusive bound of alternatives this tree owns.
    unsigned Count;  ///< Total arity observed at this choice point.
    const char *Tag; ///< Static name of the decision kind ("sched", ...).
  };

  /// An unexplored subtree, produced by split(): a decision prefix that a
  /// fresh DecisionTree can be seeded with, plus an optional snapshot of
  /// the sleep-set reduction state at the prefix's final decision.
  ///
  /// The sleep snapshot is *redundant* for correctness — sleep state is a
  /// pure function of the decision path, so a recipient worker recomputes
  /// it while replaying the seed — but carrying it lets the recipient
  /// validate its recomputation against the donor's (fatal on divergence),
  /// which pins down the worker-count independence of reduced exploration.
  struct Prefix {
    std::vector<Decision> Path;

    /// Sleep set in force immediately after the final decision of Path was
    /// taken (sorted by Tid). Valid only when HasSleep.
    std::vector<SleepMove> Sleep;
    /// Which sched choice point the snapshot belongs to: the ordinal of
    /// the final decision among the "sched"-tagged decisions of Path.
    size_t SleepOrdinal = 0;
    /// Set when the final decision of Path is a sched choice and the donor
    /// ran with the sleep-set reduction enabled.
    bool HasSleep = false;
  };

  DecisionTree() = default;

  /// Seeds the tree with a fixed \p Seed prefix; enumeration covers exactly
  /// the subtree below it.
  explicit DecisionTree(Prefix Seed);

  /// Resets the replay cursor; call before each execution.
  void beginExecution() { Pos = 0; }

  /// Replay-cursor position: the number of decisions resolved so far in
  /// the current execution.
  size_t position() const { return Pos; }

  /// Jumps the replay cursor to \p P, for a copy-on-write resume that
  /// skipped the decisions before a snapshot boundary. The cursor then
  /// re-consumes the recorded path from \p P (through the advanced
  /// divergence decision) before extending; advance()'s path-consumed
  /// invariant still checks the execution reached the end of the trace.
  void resumeAt(size_t P) {
    if (P > Trace.size())
      P = Trace.size();
    Pos = P;
  }

  /// Resolves the next decision of the current execution: replays the
  /// backtracked prefix (enforcing that \p Count matches the recorded
  /// arity), then extends the path with alternative 0.
  unsigned next(unsigned Count, const char *Tag);

  /// Like next(), but a fresh node enumerates only alternatives in
  /// [0, Limit) while still recording arity \p Count — the source-set
  /// restricted form of a choice whose unrestricted arity is Count.
  /// Replay of existing nodes validates Count only (see the impl).
  unsigned next(unsigned Count, unsigned Limit, const char *Tag);

  /// True while the replay cursor is inside the recorded path (the program
  /// is deterministic up to here).
  bool replaying() const { return Pos < Trace.size(); }

  /// Backtracks after a finished execution: advances the deepest decision
  /// with an untried alternative, discarding everything below it. Returns
  /// false when the (sub)tree is exhausted.
  bool advance();

  bool exhausted() const { return Exhausted; }

  /// Depth of the current path (including any seed prefix).
  size_t depth() const { return Trace.size(); }

  /// Length of the immutable seed prefix.
  size_t seedLength() const { return SeedLen; }

  const std::vector<Decision> &trace() const { return Trace; }

  /// The decision sequence of the current path, as plain indices.
  std::vector<unsigned> decisions() const;

  /// Number of untried alternatives hanging off the current path — the DFS
  /// frontier size.
  uint64_t frontierSize() const;

  /// True if split() would produce at least one donation.
  bool splittable() const;

  /// Converts the *entire* remaining subtree into a disjoint set of pinned
  /// prefixes: one per untried alternative along the current path plus the
  /// (fully pinned) current path itself — which, between executions, is
  /// exactly the next execution's decision sequence. Seeding fresh
  /// DecisionTrees with the returned prefixes enumerates precisely the
  /// decision sequences this tree would still enumerate, so the frontier
  /// can be checkpointed and resumed with a bit-identical aggregate
  /// summary (sim/Checkpoint.h). Must only be called between executions;
  /// returns an empty vector when the tree is exhausted. The tree itself
  /// is left untouched — callers that persist the result must stop using
  /// the tree afterwards (see Explorer::drainFrontier).
  std::vector<Prefix> frontierPrefixes() const;

  /// Donates up to \p MaxDonations untried alternatives from the
  /// *shallowest* open choice point (largest subtrees first, preserving
  /// load balance), removing them from this tree's frontier. Each returned
  /// prefix seeds a DecisionTree that enumerates a disjoint subtree. Must
  /// only be called between executions (after advance(), before the next
  /// beginExecution()).
  std::vector<Prefix> split(size_t MaxDonations);

private:
  std::vector<Decision> Trace;
  size_t Pos = 0;
  size_t SeedLen = 0;
  bool Exhausted = false;
};

} // namespace compass::sim

#endif // COMPASS_SIM_DECISIONTREE_H
