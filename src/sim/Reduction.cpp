//===-- sim/Reduction.cpp - Sleep-set partial-order reduction -------------===//

#include "sim/Reduction.h"

#include "support/Error.h"

#include <cassert>
#include <cstring>

using namespace compass;
using namespace compass::sim;

void Reduction::beginExecution() {
  Cur.clear();
  NumPoints = 0; // Points are recycled in order; their vectors keep
                 // capacity across executions.
}

bool Reduction::isAsleep(unsigned Tid) const {
  // A sleeping entry refers to its thread's pending operation; the thread
  // has not run since it was put to sleep, so matching by Tid suffices.
  for (const SleepMove &Mv : Cur)
    if (Mv.Tid == Tid)
      return true;
  return false;
}

void Reduction::insertMove(std::vector<SleepMove> &S, unsigned Tid,
                           const rmc::Footprint &Fp) {
  // Insert sorted by Tid, deduplicating: a thread has one pending move.
  size_t I = 0;
  for (size_t E = S.size(); I != E; ++I) {
    if (S[I].Tid == Tid)
      return;
    if (S[I].Tid > Tid)
      break;
  }
  S.insert(S.begin() + I, SleepMove{Tid, Fp});
}

bool Reduction::onSchedChoice(const std::vector<unsigned> &Enabled,
                              const std::vector<rmc::Footprint> &Fps,
                              unsigned Pick) {
  assert(Enabled.size() == Fps.size() && Pick < Enabled.size());
  const size_t Ord = NumPoints;

  // Record the point so split()-time annotation can reconstruct the sleep
  // state of any alternative at it.
  if (NumPoints == Points.size())
    Points.emplace_back();
  SchedPoint &Pt = Points[NumPoints++];
  Pt.Entry = Cur; // Capacity-reusing copy.
  Pt.Alts.clear();
  for (size_t I = 0, E = Enabled.size(); I != E; ++I)
    Pt.Alts.push_back(SleepMove{Enabled[I], Fps[I]});

  // DFS order: alternatives j < Pick were fully explored in sibling
  // branches (by this worker or, for donated prefixes, by the donor side),
  // so delaying them past independent steps is redundant.
  for (unsigned J = 0; J != Pick; ++J)
    insertMove(Cur, Enabled[J], Fps[J]);

  // Cross-worker validation: when replaying a donated seed, the state we
  // just recomputed must match the donor's snapshot exactly.
  if (HasSeed && Ord == SeedOrdinal && !(Cur == Seed))
    fatalError("sleep-set state diverged from the donated prefix snapshot; "
               "reduced exploration would depend on work distribution");

  return isAsleep(Enabled[Pick]);
}

void Reduction::onStepExecuted(unsigned Tid, const rmc::Footprint &F) {
  // Wake (erase) every sleeping move dependent on the executed step. The
  // executing thread's own entry is always dropped: consecutive steps of
  // one thread are program-ordered and never commute.
  size_t Out = 0;
  for (size_t I = 0, E = Cur.size(); I != E; ++I) {
    const SleepMove &Mv = Cur[I];
    assert(Mv.Tid != Tid && "scheduler executed a sleeping move");
    if (Mv.Tid != Tid && rmc::independent(F, Mv.Fp)) {
      if (Out != I)
        Cur[Out] = Mv;
      ++Out;
    }
  }
  Cur.resize(Out);
}

void Reduction::setSeed(std::vector<SleepMove> Sleep, size_t Ordinal) {
  Seed = std::move(Sleep);
  SeedOrdinal = Ordinal;
  HasSeed = true;
}

void Reduction::annotate(DecisionTree::Prefix &P) const {
  P.HasSleep = false;
  P.Sleep.clear();
  if (P.Path.empty())
    return;
  const DecisionTree::Decision &Last = P.Path.back();
  if (!Last.Tag || std::strcmp(Last.Tag, "sched") != 0)
    return;

  // The ordinal of the final decision among the sched-tagged decisions of
  // the path; sched decisions correspond 1:1, in order, to the recorded
  // SchedPoints of the execution the path was split from (annotation runs
  // between executions, when the donor's trace prefix up to the split node
  // still matches the last executed path).
  size_t K = 0;
  for (size_t I = 0, E = P.Path.size() - 1; I != E; ++I)
    if (P.Path[I].Tag && std::strcmp(P.Path[I].Tag, "sched") == 0)
      ++K;
  if (K >= NumPoints)
    return; // No execution has reached this point yet; leave unannotated.

  const SchedPoint &Pt = Points[K];
  P.Sleep = Pt.Entry;
  for (unsigned J = 0; J < Last.Chosen && J < Pt.Alts.size(); ++J)
    insertMove(P.Sleep, Pt.Alts[J].Tid, Pt.Alts[J].Fp);
  P.SleepOrdinal = K;
  P.HasSleep = true;
}
