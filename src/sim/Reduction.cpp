//===-- sim/Reduction.cpp - Sleep-set / source-set POR --------------------===//

#include "sim/Reduction.h"

#include "support/Error.h"

#include <cassert>
#include <cstring>

using namespace compass;
using namespace compass::sim;

void Reduction::beginExecution() {
  Cur.clear();
  NumPoints = 0; // Points are recycled in order; their vectors keep
                 // capacity across executions.
}

const SleepMove *Reduction::findAsleep(unsigned Tid) const {
  // A sleeping entry refers to its thread's pending operation; the thread
  // has not run since it was put to sleep, so matching by Tid suffices.
  for (const SleepMove &Mv : Cur)
    if (Mv.Tid == Tid)
      return &Mv;
  return nullptr;
}

Reduction::Verdict Reduction::verdictFor(const SleepMove *E,
                                         uint32_t HistLen) const {
  if (!E)
    return Verdict::Run;
  if (!SourceMode)
    return Verdict::Prune;
  // Source mode. A sleeping move was kept asleep only through exact
  // commutes (classic independence, or reads that grow no history) plus —
  // for reads/updates — same-location writes covered by the watermark
  // (rmc::sourceKeepsAsleep). A sleeping write's delays are therefore all
  // exact commutes back to the explored sibling: full prune. A sleeping
  // read/update is fully covered exactly when no message was appended to
  // its location since it went to sleep; otherwise only the reads-from
  // options below the watermark are covered, and the move must run
  // restricted to the new ones.
  using K = rmc::Footprint::Kind;
  const rmc::Footprint &Fp = E->Fp;
  const bool Refinable =
      Fp.Atomic && !Fp.Sc && (Fp.K == K::Read || Fp.K == K::Update);
  if (Refinable && HistLen > E->Ver)
    return Verdict::Restricted;
  return Verdict::Prune;
}

void Reduction::insertMove(std::vector<SleepMove> &S, unsigned Tid,
                           const rmc::Footprint &Fp, uint32_t Ver) {
  // Insert sorted by Tid, deduplicating: a thread has one pending move.
  // On dedup the watermark is *raised* to the incoming one: re-sleeping at
  // a later choice point means the sibling branch explored there already
  // covered the move's reads-from options up to the history length recorded
  // at that point (restricted to [old Ver, new Ver) — or trivially, when
  // the point saw no new messages, new Ver == old Ver). Keeping the stale
  // low watermark instead would re-run the same restricted subtree once
  // per delay depth — the delayed copies are Mazurkiewicz-equivalent and
  // must prune, exactly like classic sleep sets prune delayed moves.
  size_t I = 0;
  for (size_t E = S.size(); I != E; ++I) {
    if (S[I].Tid == Tid) {
      if (Ver > S[I].Ver)
        S[I].Ver = Ver;
      return;
    }
    if (S[I].Tid > Tid)
      break;
  }
  S.insert(S.begin() + I, SleepMove{Tid, Fp, Ver});
}

Reduction::Verdict
Reduction::onSchedChoice(const std::vector<unsigned> &Enabled,
                         const std::vector<rmc::Footprint> &Fps,
                         const std::vector<uint32_t> &HistLens,
                         unsigned Pick) {
  assert(Enabled.size() == Fps.size() && Enabled.size() == HistLens.size() &&
         Pick < Enabled.size());
  const size_t Ord = NumPoints;

  // Record the point so split()-time annotation can reconstruct the sleep
  // state of any alternative at it, and so the explorer can consult the
  // per-alternative verdicts at advance time.
  if (NumPoints == Points.size())
    Points.emplace_back();
  SchedPoint &Pt = Points[NumPoints++];
  Pt.Entry = Cur; // Capacity-reusing copy.
  Pt.Alts.clear();
  Pt.Skip.clear();
  for (size_t I = 0, E = Enabled.size(); I != E; ++I)
    Pt.Alts.push_back(
        SleepMove{Enabled[I], Fps[I], SourceMode ? HistLens[I] : 0});

  // Per-alternative verdicts, against the *entry* sleep set. Both the sleep
  // set and the history lengths at this point are pure functions of the
  // decision prefix above it, so the verdict recorded for alternative A now
  // equals the verdict a later execution choosing A here would compute —
  // which is what lets the explorer skip Prune-marked siblings at advance
  // time without running them.
  Verdict PickV;
  if (SourceMode) {
    for (size_t I = 0, E = Enabled.size(); I != E; ++I)
      Pt.Skip.push_back(static_cast<uint8_t>(
          verdictFor(findAsleep(Enabled[I]), HistLens[I])));
    PickV = static_cast<Verdict>(Pt.Skip[Pick]);
    if (PickV == Verdict::Restricted) {
      const SleepMove *E = findAsleep(Enabled[Pick]);
      RestrictL = E->Fp.L;
      RestrictVer = E->Ver;
    }
  } else {
    PickV = findAsleep(Enabled[Pick]) ? Verdict::Prune : Verdict::Run;
  }

  // DFS order: alternatives j < Pick were fully explored in sibling
  // branches (by this worker or, for donated prefixes, by the donor side),
  // so delaying them past covered steps is redundant.
  for (unsigned J = 0; J != Pick; ++J)
    insertMove(Cur, Enabled[J], Fps[J], SourceMode ? HistLens[J] : 0);

  // Cross-worker validation: when replaying a donated seed, the state we
  // just recomputed must match the donor's snapshot exactly.
  if (HasSeed && Ord == SeedOrdinal && !(Cur == Seed))
    fatalError("sleep-set state diverged from the donated prefix snapshot; "
               "reduced exploration would depend on work distribution");

  return PickV;
}

Reduction::Verdict Reduction::onSchedule(unsigned Tid, uint32_t HistLen) {
  const SleepMove *E = findAsleep(Tid);
  Verdict V = verdictFor(E, HistLen);
  if (V == Verdict::Restricted) {
    RestrictL = E->Fp.L;
    RestrictVer = E->Ver;
  }
  return V;
}

bool Reduction::skipAlternative(size_t Ordinal, unsigned Alt) const {
  if (!SourceMode || Ordinal >= NumPoints)
    return false;
  const SchedPoint &Pt = Points[Ordinal];
  return Alt < Pt.Skip.size() &&
         Pt.Skip[Alt] == static_cast<uint8_t>(Verdict::Prune);
}

void Reduction::onStepExecuted(unsigned Tid, const rmc::Footprint &F) {
  // Wake (erase) every sleeping move the keep-asleep relation cannot hold.
  // The executing thread's own entry is always dropped: consecutive steps
  // of one thread are program-ordered and never commute. In sleep mode the
  // scheduler never executes a sleeping move (it prunes instead); in source
  // mode it deliberately does, for restricted re-runs.
  size_t Out = 0;
  for (size_t I = 0, E = Cur.size(); I != E; ++I) {
    const SleepMove &Mv = Cur[I];
    assert((SourceMode || Mv.Tid != Tid) &&
           "scheduler executed a sleeping move");
    const bool Keep = Mv.Tid != Tid && (SourceMode
                                            ? rmc::sourceKeepsAsleep(F, Mv.Fp)
                                            : rmc::independent(F, Mv.Fp));
    if (Keep) {
      if (Out != I)
        Cur[Out] = Mv;
      ++Out;
    }
  }
  Cur.resize(Out);
}

void Reduction::setSeed(std::vector<SleepMove> Sleep, size_t Ordinal) {
  Seed = std::move(Sleep);
  SeedOrdinal = Ordinal;
  HasSeed = true;
}

void Reduction::annotate(DecisionTree::Prefix &P) const {
  P.HasSleep = false;
  P.Sleep.clear();
  if (P.Path.empty())
    return;
  const DecisionTree::Decision &Last = P.Path.back();
  if (!Last.Tag || std::strcmp(Last.Tag, "sched") != 0)
    return;

  // The ordinal of the final decision among the sched-tagged decisions of
  // the path; sched decisions correspond 1:1, in order, to the recorded
  // SchedPoints of the execution the path was split from (annotation runs
  // between executions, when the donor's trace prefix up to the split node
  // still matches the last executed path).
  size_t K = 0;
  for (size_t I = 0, E = P.Path.size() - 1; I != E; ++I)
    if (P.Path[I].Tag && std::strcmp(P.Path[I].Tag, "sched") == 0)
      ++K;
  if (K >= NumPoints)
    return; // No execution has reached this point yet; leave unannotated.

  const SchedPoint &Pt = Points[K];
  P.Sleep = Pt.Entry;
  for (unsigned J = 0; J < Last.Chosen && J < Pt.Alts.size(); ++J)
    insertMove(P.Sleep, Pt.Alts[J].Tid, Pt.Alts[J].Fp, Pt.Alts[J].Ver);
  P.SleepOrdinal = K;
  P.HasSleep = true;
}
