//===-- sim/Explorer.cpp - Stateless model-checking driver ----------------===//

#include "sim/Explorer.h"

#include "support/Error.h"

#include <cassert>

using namespace compass;
using namespace compass::sim;

Explorer::Explorer(Options O) : Opts(O), Rand(O.Seed) {}

Explorer::Explorer() : Explorer(Options{}) {}

bool Explorer::beginExecution() {
  assert(!InExecution && "beginExecution without matching endExecution");
  if (Opts.ExploreMode == Mode::Random) {
    if (Sum.Executions >= Opts.RandomRuns)
      return false;
  } else {
    if (TreeExhausted && !Trace.empty())
      fatalError("explorer state corrupt");
    if (TreeExhausted)
      return false;
    if (Sum.Executions >= Opts.MaxExecutions)
      return false;
  }
  Pos = 0;
  InExecution = true;
  return true;
}

unsigned Explorer::choose(unsigned Count, const char *Tag) {
  (void)Tag;
  assert(InExecution && "choice outside an execution");
  assert(Count >= 1 && "choice with no alternatives");
  if (Opts.ExploreMode == Mode::Random)
    return static_cast<unsigned>(Rand.below(Count));

  if (Pos < Trace.size()) {
    // Replaying the backtracked prefix; the program must be deterministic
    // given the decision sequence.
    if (Trace[Pos].Count != Count)
      fatalError("nondeterministic replay: decision arity changed");
    return Trace[Pos++].Chosen;
  }
  Trace.push_back({0, Count});
  ++Pos;
  return 0;
}

void Explorer::endExecution(Scheduler::RunResult R) {
  assert(InExecution && "endExecution without beginExecution");
  InExecution = false;
  ++Sum.Executions;
  switch (R) {
  case Scheduler::RunResult::Done:
    ++Sum.Completed;
    break;
  case Scheduler::RunResult::Deadlock:
    ++Sum.Deadlocks;
    break;
  case Scheduler::RunResult::Race:
    ++Sum.Races;
    break;
  case Scheduler::RunResult::StepLimit:
    ++Sum.Diverged;
    break;
  case Scheduler::RunResult::Pruned:
    ++Sum.Pruned;
    break;
  }

  if (Opts.ExploreMode == Mode::Random)
    return;

  if (Trace.size() > Sum.MaxDepth)
    Sum.MaxDepth = Trace.size();
  assert(Pos == Trace.size() && "execution ended mid-replay");

  // Depth-first backtracking: advance the deepest decision that still has
  // an untried alternative, discarding everything below it.
  while (!Trace.empty() && Trace.back().Chosen + 1 >= Trace.back().Count)
    Trace.pop_back();
  if (Trace.empty()) {
    TreeExhausted = true;
    Sum.Exhausted = true;
    return;
  }
  ++Trace.back().Chosen;
}

std::vector<unsigned> Explorer::currentDecisions() const {
  std::vector<unsigned> Out;
  Out.reserve(Trace.size());
  for (const Decision &D : Trace)
    Out.push_back(D.Chosen);
  return Out;
}

std::string Explorer::Summary::str() const {
  std::string Out;
  Out += "executions=" + std::to_string(Executions);
  Out += " completed=" + std::to_string(Completed);
  Out += " deadlocks=" + std::to_string(Deadlocks);
  Out += " races=" + std::to_string(Races);
  Out += " diverged=" + std::to_string(Diverged);
  Out += " pruned=" + std::to_string(Pruned);
  Out += Exhausted ? " (exhaustive)" : " (truncated)";
  return Out;
}
