//===-- sim/Explorer.cpp - Stateless model-checking driver ----------------===//

#include "sim/Explorer.h"

#include "support/Error.h"
#include "support/Json.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstring>

using namespace compass;
using namespace compass::sim;

const char *sim::reductionModeName(ReductionMode M) {
  switch (M) {
  case ReductionMode::None:
    return "none";
  case ReductionMode::SleepSet:
    return "sleep";
  case ReductionMode::SourceSet:
    return "source";
  }
  return "none";
}

bool sim::parseReductionMode(const std::string &S, ReductionMode &Out) {
  if (S == "none")
    Out = ReductionMode::None;
  else if (S == "sleep")
    Out = ReductionMode::SleepSet;
  else if (S == "source")
    Out = ReductionMode::SourceSet;
  else
    return false;
  return true;
}

const char *sim::enginePathName(EnginePath P) {
  return P == EnginePath::RootReplay ? "root" : "auto";
}

bool sim::parseEnginePath(const std::string &S, EnginePath &Out) {
  if (S == "auto")
    Out = EnginePath::Auto;
  else if (S == "root")
    Out = EnginePath::RootReplay;
  else
    return false;
  return true;
}

Explorer::Explorer(Options O)
    : Opts(O), Rand(O.Seed), Start(std::chrono::steady_clock::now()),
      LastProgress(Start) {
  RedEnabled = (Opts.Reduction == ReductionMode::SleepSet ||
                Opts.Reduction == ReductionMode::SourceSet) &&
               Opts.ExploreMode == Mode::Exhaustive;
  Red.enableSourceSets(Opts.Reduction == ReductionMode::SourceSet);
}

Explorer::Explorer() : Explorer(Options{}) {}

Explorer::Explorer(Options O, DecisionTree::Prefix Seed)
    : Opts(O), Rand(O.Seed), Start(std::chrono::steady_clock::now()),
      LastProgress(Start) {
  RedEnabled = (Opts.Reduction == ReductionMode::SleepSet ||
                Opts.Reduction == ReductionMode::SourceSet) &&
               Opts.ExploreMode == Mode::Exhaustive;
  Red.enableSourceSets(Opts.Reduction == ReductionMode::SourceSet);
  // Consume the donor's sleep snapshot before the path moves into the
  // tree; the reduction validates its recomputed state against it when
  // replay reaches the seeded ordinal.
  if (RedEnabled && Seed.HasSleep)
    Red.setSeed(std::move(Seed.Sleep), Seed.SleepOrdinal);
  Tree = DecisionTree(std::move(Seed));
}

bool Explorer::hasWork() const {
  if (Opts.ExploreMode == Mode::Random)
    return Sum.Executions < Opts.RandomRuns;
  return HasWork && !Tree.exhausted() && Sum.Executions < Opts.MaxExecutions;
}

bool Explorer::beginExecution() {
  assert(!InExecution && "beginExecution without matching endExecution");
  if (!hasWork())
    return false;
  if (Opts.ExploreMode == Mode::Random)
    RandTrace.clear();
  else
    Tree.beginExecution();
  if (RedEnabled)
    Red.beginExecution();
  PendingDupMask = 0;
  InExecution = true;
  return true;
}

Explorer::TagStat &Explorer::tagStat(const char *Tag) {
  // Per-tag statistics, keyed by pointer identity of the static string
  // (merged by name into Summary.Tags). A linear scan beats hashing for the
  // handful of distinct tags in play.
  for (auto &Entry : TagStats)
    if (Entry.first == Tag || std::strcmp(Entry.first, Tag) == 0)
      return Entry.second;
  TagStats.push_back({Tag, TagStat{}});
  return TagStats.back().second;
}

unsigned Explorer::choose(unsigned Count, const char *Tag) {
  return chooseLimited(Count, Count, Tag);
}

unsigned Explorer::chooseLimited(unsigned Count, unsigned Limit,
                                 const char *Tag) {
  assert(InExecution && "choice outside an execution");
  assert(Count >= 1 && "choice with no alternatives");
  assert(Limit >= 1 && Limit <= Count && "enumeration limit out of range");

  TagStat &Stat = tagStat(Tag);
  ++Stat.Choices;
  Stat.AltSum += Count;
  Stat.MaxArity = std::max(Stat.MaxArity, Count);

  if (Opts.ExploreMode == Mode::Random) {
    // Record the decision even in random mode: a failing sampled run must
    // be reproducible via replay() from currentDecisions(). (Reduction —
    // and with it restricted choice sets — only exists in exhaustive mode,
    // so Limit == Count here; sample within the limit regardless.)
    unsigned Pick = static_cast<unsigned>(Rand.below(Limit));
    RandTrace.push_back({Pick, Count, Count, Tag});
    return Pick;
  }

  // Record the machine-announced reads-from duplicate mask for this node
  // (source-set mode). Masks are pure functions of the decision prefix:
  // replayed nodes recompute the identical mask, and nodes skipped by a
  // copy-on-write resume keep the entry their recording execution wrote.
  if (RedEnabled && Red.sourceSets()) {
    const size_t Pos = Tree.position();
    if (DupMasks.size() <= Pos)
      DupMasks.resize(Pos + 1, 0);
    DupMasks[Pos] = PendingDupMask;
    PendingDupMask = 0;
  }

  // A fresh multi-enumerable node is a potential backtrack target: let
  // the copy-on-write engine snapshot the pre-decision state so sibling
  // alternatives resume here. Replayed nodes (including the pinned seed)
  // already have their snapshots from the execution that created them.
  // Limit == 1 nodes (a restricted set collapsed to one alternative) are
  // never advance()/split() targets, so they need no snapshot.
  if (SnapHook && Limit > 1 && !Tree.replaying())
    SnapHook(Tree.position(), Tag);

  return Tree.next(Count, Limit, Tag);
}

size_t Explorer::decisionPosition() const {
  return Opts.ExploreMode == Mode::Random ? RandTrace.size()
                                          : Tree.position();
}

void Explorer::resumeReplayAt(size_t Pos) {
  assert(InExecution && "resumeReplayAt outside an execution");
  assert(Opts.ExploreMode == Mode::Exhaustive);
  Tree.resumeAt(Pos);
}

void Explorer::creditReplayedPrefix(size_t Pos) {
  // The skipped prefix's decisions still exist on the tree path; account
  // for the choose() calls a root replay would have made for them, so the
  // deterministic core (per-tag totals) is engine-path independent.
  const auto &Trace = Tree.trace();
  assert(Pos <= Trace.size());
  for (size_t I = 0; I != Pos; ++I) {
    const DecisionTree::Decision &D = Trace[I];
    // Count==1 decisions never reach choose(); the tree records only real
    // alternatives, so every entry counts.
    TagStat &Stat = tagStat(D.Tag);
    ++Stat.Choices;
    Stat.AltSum += D.Count;
    Stat.MaxArity = std::max(Stat.MaxArity, D.Count);
  }
}

const std::vector<DecisionTree::Decision> &Explorer::currentTrace() const {
  return Opts.ExploreMode == Mode::Random ? RandTrace : Tree.trace();
}

std::vector<unsigned> Explorer::currentDecisions() const {
  const auto &Trace = currentTrace();
  std::vector<unsigned> Out;
  Out.reserve(Trace.size());
  for (const DecisionTree::Decision &D : Trace)
    Out.push_back(D.Chosen);
  return Out;
}

namespace {

bool traceLexLess(const std::vector<DecisionTree::Decision> &A,
                  const std::vector<DecisionTree::Decision> &B) {
  return std::lexicographical_compare(
      A.begin(), A.end(), B.begin(), B.end(),
      [](const DecisionTree::Decision &X, const DecisionTree::Decision &Y) {
        return X.Chosen < Y.Chosen;
      });
}

} // namespace

void Explorer::recordCheck(bool Ok) {
  assert(InExecution && "recordCheck outside an execution");
  if (Ok)
    return;
  ++Sum.Violations;
  const auto &Trace = currentTrace();
  // Keep the lexicographically least violating trace: DFS visits decision
  // sequences in lexicographic order, so this is exactly the first
  // violation serial exploration encounters — worker-count independent.
  if (!Sum.HasViolation || traceLexLess(Trace, Sum.FirstViolation)) {
    Sum.HasViolation = true;
    Sum.FirstViolation = Trace;
  }
}

void Explorer::endExecution(Scheduler::RunResult R) {
  assert(InExecution && "endExecution without beginExecution");
  InExecution = false;
  ++Sum.Executions;
  switch (R) {
  case Scheduler::RunResult::Done:
    ++Sum.Completed;
    break;
  case Scheduler::RunResult::Deadlock:
    ++Sum.Deadlocks;
    break;
  case Scheduler::RunResult::Race:
    ++Sum.Races;
    break;
  case Scheduler::RunResult::StepLimit:
    ++Sum.Diverged;
    break;
  case Scheduler::RunResult::Pruned:
    ++Sum.Pruned;
    break;
  case Scheduler::RunResult::SleepPruned:
    ++Sum.SleepPruned;
    break;
  case Scheduler::RunResult::RfPruned:
    ++Sum.RfPruned;
    break;
  }

  Sum.MaxDepth = std::max<uint64_t>(Sum.MaxDepth, currentTrace().size());

  if (Opts.ExploreMode == Mode::Exhaustive) {
    Sum.Perf.PeakFrontier =
        std::max(Sum.Perf.PeakFrontier, Tree.frontierSize());
    HasWork = Tree.advance();
    // Source-set advance-time skipping: after each backtrack the path's
    // final decision is the freshly advanced alternative. If the reduction
    // proved that sibling fully covered (Prune verdict recorded at its
    // choice point) or the machine flagged it as a reads-from duplicate of
    // the alternative just explored, discard the subtree without running an
    // execution and advance again. The per-alternative verdicts and dup
    // masks are pure functions of the (unchanged) prefix above the node, so
    // this is exactly the verdict an execution taking the alternative would
    // have received.
    while (HasWork) {
      const auto &Trace = Tree.trace();
      if (Trace.empty())
        break;
      const DecisionTree::Decision &D = Trace.back();
      const SkipKind SK = skipKindAt(Trace.size() - 1, D.Tag, D.Chosen);
      if (SK == SkipKind::None)
        break;
      if (SK == SkipKind::Source)
        ++Sum.SourcePruned;
      else
        ++Sum.CacheHits;
      HasWork = Tree.advance();
    }
    if (!HasWork)
      Sum.Exhausted = true;
  }

  finalizePerf();

  if (Opts.ProgressIntervalSec > 0) {
    auto Now = std::chrono::steady_clock::now();
    double Since =
        std::chrono::duration<double>(Now - LastProgress).count();
    if (Since >= Opts.ProgressIntervalSec) {
      LastProgress = Now;
      std::fprintf(stderr,
                   "[explore] %llu execs, %.0f execs/s, depth<=%llu, "
                   "frontier~%llu\n",
                   static_cast<unsigned long long>(Sum.Executions),
                   Sum.Perf.ExecsPerSec,
                   static_cast<unsigned long long>(Sum.MaxDepth),
                   static_cast<unsigned long long>(Tree.frontierSize()));
    }
  }
}

void Explorer::finalizePerf() {
  double Wall = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - Start)
                    .count();
  Sum.Perf.WallSeconds = Wall;
  Sum.Perf.ExecsPerSec =
      Wall > 0 ? static_cast<double>(Sum.Executions) / Wall : 0.0;
  Sum.Tags.clear();
  for (const auto &[Tag, Stat] : TagStats) {
    TagStat &Dst = Sum.Tags[Tag];
    Dst.Choices += Stat.Choices;
    Dst.AltSum += Stat.AltSum;
    Dst.MaxArity = std::max(Dst.MaxArity, Stat.MaxArity);
  }
}

Explorer::SkipKind Explorer::skipKindAt(size_t Pos, const char *Tag,
                                        unsigned Alt) const {
  if (!RedEnabled || !Red.sourceSets() || !Tag)
    return SkipKind::None;
  if (std::strcmp(Tag, "sched") == 0) {
    // The decision's sched ordinal: sched-tagged decisions correspond 1:1,
    // in order, to the reduction's recorded choice points. Counting over
    // the live trace is valid for donated prefixes too — a donation's path
    // matches the live trace on every position before its final decision.
    const auto &Trace = Tree.trace();
    size_t K = 0;
    for (size_t I = 0, E = std::min(Pos, Trace.size()); I != E; ++I)
      if (Trace[I].Tag && std::strcmp(Trace[I].Tag, "sched") == 0)
        ++K;
    return Red.skipAlternative(K, Alt) ? SkipKind::Source : SkipKind::None;
  }
  if (std::strcmp(Tag, "load") != 0 && std::strcmp(Tag, "load-where") != 0 &&
      std::strcmp(Tag, "cas") != 0)
    return SkipKind::None;
  // Mask bit k set = alternative k reads the same value with the same
  // knowledge as alternative k-1 (rmc::Machine's duplicate detection);
  // exploring it cannot change any verdict, so the whole sibling subtree
  // is a cache hit. Masks cover the first 64 alternatives only.
  if (Alt < 64 && Pos < DupMasks.size() && ((DupMasks[Pos] >> Alt) & 1))
    return SkipKind::RfDup;
  return SkipKind::None;
}

void Explorer::dropSkippedDonations(std::vector<DecisionTree::Prefix> &Out,
                                    bool KeepLast) {
  if (!RedEnabled || !Red.sourceSets() || Out.empty())
    return;
  const size_t Limit = Out.size() - (KeepLast ? 1 : 0);
  size_t W = 0;
  for (size_t I = 0, E = Out.size(); I != E; ++I) {
    SkipKind SK = SkipKind::None;
    if (I < Limit && !Out[I].Path.empty()) {
      const DecisionTree::Decision &D = Out[I].Path.back();
      SK = skipKindAt(Out[I].Path.size() - 1, D.Tag, D.Chosen);
    }
    if (SK == SkipKind::Source) {
      ++Sum.SourcePruned;
      continue;
    }
    if (SK == SkipKind::RfDup) {
      ++Sum.CacheHits;
      continue;
    }
    if (W != I)
      Out[W] = std::move(Out[I]);
    ++W;
  }
  Out.resize(W);
}

bool Explorer::splittable() const {
  return !InExecution && Opts.ExploreMode == Mode::Exhaustive &&
         HasWork && Tree.splittable();
}

std::vector<DecisionTree::Prefix> Explorer::split(size_t MaxDonations) {
  assert(!InExecution && "split mid-execution");
  std::vector<DecisionTree::Prefix> Out = Tree.split(MaxDonations);
  // Donations the serial advance loop would have skipped are counted here
  // (on the donor) instead of shipped — a recipient would run an execution
  // on them, and the fingerprint would depend on the work distribution.
  dropSkippedDonations(Out, /*KeepLast=*/false);
  if (RedEnabled)
    for (DecisionTree::Prefix &P : Out)
      Red.annotate(P);
  return Out;
}

std::vector<DecisionTree::Prefix> Explorer::drainFrontier() {
  assert(!InExecution && "drainFrontier mid-execution");
  assert(Opts.ExploreMode == Mode::Exhaustive &&
         "only exhaustive exploration has a frontier to drain");
  std::vector<DecisionTree::Prefix> Out;
  if (HasWork && !Tree.exhausted()) {
    Out = Tree.frontierPrefixes();
    // The final element is the pinned current path — advance-vetted, never
    // filtered; the alternative prefixes before it get the same skip test
    // as split() donations.
    dropSkippedDonations(Out, /*KeepLast=*/true);
    // Like split(): carry the sleep state so recipients can cross-check
    // their recomputation (annotation is validation only — the state is a
    // pure function of the path).
    if (RedEnabled)
      for (DecisionTree::Prefix &P : Out)
        Red.annotate(P);
  }
  // The executed share of this subtree is complete; its unexplored
  // remainder now lives in Out and carries its own exhaustion accounting.
  HasWork = false;
  Sum.Exhausted = true;
  finalizePerf();
  return Out;
}

std::string
Explorer::formatTrace(const std::vector<DecisionTree::Decision> &Trace) {
  std::string Out;
  if (Trace.empty())
    return "<empty decision trace>\n";
  for (size_t I = 0, E = Trace.size(); I != E; ++I) {
    const DecisionTree::Decision &D = Trace[I];
    Out += "#" + std::to_string(I) + " ";
    Out += D.Tag ? D.Tag : "?";
    Out += " (" + std::to_string(D.Count) + " alts) -> " +
           std::to_string(D.Chosen) + "\n";
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Summary
//===----------------------------------------------------------------------===//

std::vector<unsigned> Explorer::Summary::firstViolationDecisions() const {
  std::vector<unsigned> Out;
  Out.reserve(FirstViolation.size());
  for (const DecisionTree::Decision &D : FirstViolation)
    Out.push_back(D.Chosen);
  return Out;
}

bool Explorer::Summary::coreEquals(const Summary &O) const {
  auto SameTrace = [](const std::vector<DecisionTree::Decision> &A,
                      const std::vector<DecisionTree::Decision> &B) {
    if (A.size() != B.size())
      return false;
    for (size_t I = 0, E = A.size(); I != E; ++I) {
      if (A[I].Chosen != B[I].Chosen || A[I].Count != B[I].Count)
        return false;
      const char *Ta = A[I].Tag ? A[I].Tag : "";
      const char *Tb = B[I].Tag ? B[I].Tag : "";
      if (std::strcmp(Ta, Tb) != 0)
        return false;
    }
    return true;
  };
  auto SameTags = [](const std::map<std::string, TagStat> &A,
                     const std::map<std::string, TagStat> &B) {
    if (A.size() != B.size())
      return false;
    for (auto ItA = A.begin(), ItB = B.begin(); ItA != A.end();
         ++ItA, ++ItB) {
      if (ItA->first != ItB->first ||
          ItA->second.Choices != ItB->second.Choices ||
          ItA->second.AltSum != ItB->second.AltSum ||
          ItA->second.MaxArity != ItB->second.MaxArity)
        return false;
    }
    return true;
  };
  return Executions == O.Executions && Completed == O.Completed &&
         Deadlocks == O.Deadlocks && Races == O.Races &&
         Diverged == O.Diverged && Pruned == O.Pruned &&
         SleepPruned == O.SleepPruned && RfPruned == O.RfPruned &&
         SourcePruned == O.SourcePruned && CacheHits == O.CacheHits &&
         Violations == O.Violations && Exhausted == O.Exhausted &&
         MaxDepth == O.MaxDepth && HasViolation == O.HasViolation &&
         SameTrace(FirstViolation, O.FirstViolation) &&
         SameTags(Tags, O.Tags);
}

void Explorer::Summary::mergeCore(const Summary &O) {
  Executions += O.Executions;
  Completed += O.Completed;
  Deadlocks += O.Deadlocks;
  Races += O.Races;
  Diverged += O.Diverged;
  Pruned += O.Pruned;
  SleepPruned += O.SleepPruned;
  RfPruned += O.RfPruned;
  SourcePruned += O.SourcePruned;
  CacheHits += O.CacheHits;
  Violations += O.Violations;
  Exhausted = Exhausted && O.Exhausted;
  MaxDepth = std::max(MaxDepth, O.MaxDepth);
  if (O.HasViolation &&
      (!HasViolation || traceLexLess(O.FirstViolation, FirstViolation))) {
    HasViolation = true;
    FirstViolation = O.FirstViolation;
  }
  for (const auto &[Name, Stat] : O.Tags) {
    TagStat &Dst = Tags[Name];
    Dst.Choices += Stat.Choices;
    Dst.AltSum += Stat.AltSum;
    Dst.MaxArity = std::max(Dst.MaxArity, Stat.MaxArity);
  }
}

std::string Explorer::Summary::str() const {
  std::string Out;
  Out += "executions=" + std::to_string(Executions);
  Out += " completed=" + std::to_string(Completed);
  Out += " deadlocks=" + std::to_string(Deadlocks);
  Out += " races=" + std::to_string(Races);
  Out += " diverged=" + std::to_string(Diverged);
  Out += " pruned=" + std::to_string(Pruned);
  Out += " sleep_pruned=" + std::to_string(SleepPruned);
  Out += " rf_pruned=" + std::to_string(RfPruned);
  Out += " source_pruned=" + std::to_string(SourcePruned);
  Out += " cache_hits=" + std::to_string(CacheHits);
  Out += " violations=" + std::to_string(Violations);
  Out += Exhausted ? " (exhaustive)" : " (truncated)";
  return Out;
}

std::string Explorer::Summary::json() const {
  JsonWriter J;
  J.beginObject();
  J.field("executions", Executions);
  J.field("completed", Completed);
  J.field("deadlocks", Deadlocks);
  J.field("races", Races);
  J.field("diverged", Diverged);
  J.field("pruned", Pruned);
  J.field("sleep_pruned", SleepPruned);
  J.field("rf_pruned", RfPruned);
  J.field("source_pruned", SourcePruned);
  J.field("cache_hits", CacheHits);
  J.field("violations", Violations);
  J.field("exhausted", Exhausted);
  J.field("max_depth", MaxDepth);
  J.field("wall_seconds", Perf.WallSeconds);
  J.field("execs_per_sec", Perf.ExecsPerSec);
  J.field("peak_frontier", Perf.PeakFrontier);
  J.field("peak_queue", Perf.PeakQueue);
  J.field("workers", Perf.Workers);
  J.key("tags");
  J.beginObject();
  for (const auto &[Name, Stat] : Tags) {
    J.key(Name);
    J.beginObject();
    J.field("choices", Stat.Choices);
    J.field("alt_sum", Stat.AltSum);
    J.field("max_arity", Stat.MaxArity);
    J.field("avg_arity", Stat.avgArity());
    J.endObject();
  }
  J.endObject();
  J.key("first_violation");
  J.beginArray();
  if (HasViolation)
    for (const DecisionTree::Decision &D : FirstViolation)
      J.value(D.Chosen);
  J.endArray();
  J.endObject();
  return J.str();
}
