//===-- sim/Explorer.cpp - Stateless model-checking driver ----------------===//

#include "sim/Explorer.h"

#include "support/Error.h"
#include "support/Json.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstring>

using namespace compass;
using namespace compass::sim;

Explorer::Explorer(Options O)
    : Opts(O), Rand(O.Seed), Start(std::chrono::steady_clock::now()),
      LastProgress(Start) {
  RedEnabled = Opts.Reduction == ReductionMode::SleepSet &&
               Opts.ExploreMode == Mode::Exhaustive;
}

Explorer::Explorer() : Explorer(Options{}) {}

Explorer::Explorer(Options O, DecisionTree::Prefix Seed)
    : Opts(O), Rand(O.Seed), Start(std::chrono::steady_clock::now()),
      LastProgress(Start) {
  RedEnabled = Opts.Reduction == ReductionMode::SleepSet &&
               Opts.ExploreMode == Mode::Exhaustive;
  // Consume the donor's sleep snapshot before the path moves into the
  // tree; the reduction validates its recomputed state against it when
  // replay reaches the seeded ordinal.
  if (RedEnabled && Seed.HasSleep)
    Red.setSeed(std::move(Seed.Sleep), Seed.SleepOrdinal);
  Tree = DecisionTree(std::move(Seed));
}

bool Explorer::hasWork() const {
  if (Opts.ExploreMode == Mode::Random)
    return Sum.Executions < Opts.RandomRuns;
  return HasWork && !Tree.exhausted() && Sum.Executions < Opts.MaxExecutions;
}

bool Explorer::beginExecution() {
  assert(!InExecution && "beginExecution without matching endExecution");
  if (!hasWork())
    return false;
  if (Opts.ExploreMode == Mode::Random)
    RandTrace.clear();
  else
    Tree.beginExecution();
  if (RedEnabled)
    Red.beginExecution();
  InExecution = true;
  return true;
}

Explorer::TagStat &Explorer::tagStat(const char *Tag) {
  // Per-tag statistics, keyed by pointer identity of the static string
  // (merged by name into Summary.Tags). A linear scan beats hashing for the
  // handful of distinct tags in play.
  for (auto &Entry : TagStats)
    if (Entry.first == Tag || std::strcmp(Entry.first, Tag) == 0)
      return Entry.second;
  TagStats.push_back({Tag, TagStat{}});
  return TagStats.back().second;
}

unsigned Explorer::choose(unsigned Count, const char *Tag) {
  assert(InExecution && "choice outside an execution");
  assert(Count >= 1 && "choice with no alternatives");

  TagStat &Stat = tagStat(Tag);
  ++Stat.Choices;
  Stat.AltSum += Count;
  Stat.MaxArity = std::max(Stat.MaxArity, Count);

  if (Opts.ExploreMode == Mode::Random) {
    // Record the decision even in random mode: a failing sampled run must
    // be reproducible via replay() from currentDecisions().
    unsigned Pick = static_cast<unsigned>(Rand.below(Count));
    RandTrace.push_back({Pick, Count, Count, Tag});
    return Pick;
  }

  // A fresh multi-alternative node is a potential backtrack target: let
  // the copy-on-write engine snapshot the pre-decision state so sibling
  // alternatives resume here. Replayed nodes (including the pinned seed)
  // already have their snapshots from the execution that created them.
  if (SnapHook && Count > 1 && !Tree.replaying())
    SnapHook(Tree.position(), Tag);

  return Tree.next(Count, Tag);
}

size_t Explorer::decisionPosition() const {
  return Opts.ExploreMode == Mode::Random ? RandTrace.size()
                                          : Tree.position();
}

void Explorer::resumeReplayAt(size_t Pos) {
  assert(InExecution && "resumeReplayAt outside an execution");
  assert(Opts.ExploreMode == Mode::Exhaustive);
  Tree.resumeAt(Pos);
}

void Explorer::creditReplayedPrefix(size_t Pos) {
  // The skipped prefix's decisions still exist on the tree path; account
  // for the choose() calls a root replay would have made for them, so the
  // deterministic core (per-tag totals) is engine-path independent.
  const auto &Trace = Tree.trace();
  assert(Pos <= Trace.size());
  for (size_t I = 0; I != Pos; ++I) {
    const DecisionTree::Decision &D = Trace[I];
    // Count==1 decisions never reach choose(); the tree records only real
    // alternatives, so every entry counts.
    TagStat &Stat = tagStat(D.Tag);
    ++Stat.Choices;
    Stat.AltSum += D.Count;
    Stat.MaxArity = std::max(Stat.MaxArity, D.Count);
  }
}

const std::vector<DecisionTree::Decision> &Explorer::currentTrace() const {
  return Opts.ExploreMode == Mode::Random ? RandTrace : Tree.trace();
}

std::vector<unsigned> Explorer::currentDecisions() const {
  const auto &Trace = currentTrace();
  std::vector<unsigned> Out;
  Out.reserve(Trace.size());
  for (const DecisionTree::Decision &D : Trace)
    Out.push_back(D.Chosen);
  return Out;
}

namespace {

bool traceLexLess(const std::vector<DecisionTree::Decision> &A,
                  const std::vector<DecisionTree::Decision> &B) {
  return std::lexicographical_compare(
      A.begin(), A.end(), B.begin(), B.end(),
      [](const DecisionTree::Decision &X, const DecisionTree::Decision &Y) {
        return X.Chosen < Y.Chosen;
      });
}

} // namespace

void Explorer::recordCheck(bool Ok) {
  assert(InExecution && "recordCheck outside an execution");
  if (Ok)
    return;
  ++Sum.Violations;
  const auto &Trace = currentTrace();
  // Keep the lexicographically least violating trace: DFS visits decision
  // sequences in lexicographic order, so this is exactly the first
  // violation serial exploration encounters — worker-count independent.
  if (!Sum.HasViolation || traceLexLess(Trace, Sum.FirstViolation)) {
    Sum.HasViolation = true;
    Sum.FirstViolation = Trace;
  }
}

void Explorer::endExecution(Scheduler::RunResult R) {
  assert(InExecution && "endExecution without beginExecution");
  InExecution = false;
  ++Sum.Executions;
  switch (R) {
  case Scheduler::RunResult::Done:
    ++Sum.Completed;
    break;
  case Scheduler::RunResult::Deadlock:
    ++Sum.Deadlocks;
    break;
  case Scheduler::RunResult::Race:
    ++Sum.Races;
    break;
  case Scheduler::RunResult::StepLimit:
    ++Sum.Diverged;
    break;
  case Scheduler::RunResult::Pruned:
    ++Sum.Pruned;
    break;
  case Scheduler::RunResult::SleepPruned:
    ++Sum.SleepPruned;
    break;
  }

  Sum.MaxDepth = std::max<uint64_t>(Sum.MaxDepth, currentTrace().size());

  if (Opts.ExploreMode == Mode::Exhaustive) {
    Sum.Perf.PeakFrontier =
        std::max(Sum.Perf.PeakFrontier, Tree.frontierSize());
    HasWork = Tree.advance();
    if (!HasWork)
      Sum.Exhausted = true;
  }

  finalizePerf();

  if (Opts.ProgressIntervalSec > 0) {
    auto Now = std::chrono::steady_clock::now();
    double Since =
        std::chrono::duration<double>(Now - LastProgress).count();
    if (Since >= Opts.ProgressIntervalSec) {
      LastProgress = Now;
      std::fprintf(stderr,
                   "[explore] %llu execs, %.0f execs/s, depth<=%llu, "
                   "frontier~%llu\n",
                   static_cast<unsigned long long>(Sum.Executions),
                   Sum.Perf.ExecsPerSec,
                   static_cast<unsigned long long>(Sum.MaxDepth),
                   static_cast<unsigned long long>(Tree.frontierSize()));
    }
  }
}

void Explorer::finalizePerf() {
  double Wall = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - Start)
                    .count();
  Sum.Perf.WallSeconds = Wall;
  Sum.Perf.ExecsPerSec =
      Wall > 0 ? static_cast<double>(Sum.Executions) / Wall : 0.0;
  Sum.Tags.clear();
  for (const auto &[Tag, Stat] : TagStats) {
    TagStat &Dst = Sum.Tags[Tag];
    Dst.Choices += Stat.Choices;
    Dst.AltSum += Stat.AltSum;
    Dst.MaxArity = std::max(Dst.MaxArity, Stat.MaxArity);
  }
}

bool Explorer::splittable() const {
  return !InExecution && Opts.ExploreMode == Mode::Exhaustive &&
         HasWork && Tree.splittable();
}

std::vector<DecisionTree::Prefix> Explorer::split(size_t MaxDonations) {
  assert(!InExecution && "split mid-execution");
  std::vector<DecisionTree::Prefix> Out = Tree.split(MaxDonations);
  if (RedEnabled)
    for (DecisionTree::Prefix &P : Out)
      Red.annotate(P);
  return Out;
}

std::vector<DecisionTree::Prefix> Explorer::drainFrontier() {
  assert(!InExecution && "drainFrontier mid-execution");
  assert(Opts.ExploreMode == Mode::Exhaustive &&
         "only exhaustive exploration has a frontier to drain");
  std::vector<DecisionTree::Prefix> Out;
  if (HasWork && !Tree.exhausted()) {
    Out = Tree.frontierPrefixes();
    // Like split(): carry the sleep state so recipients can cross-check
    // their recomputation (annotation is validation only — the state is a
    // pure function of the path).
    if (RedEnabled)
      for (DecisionTree::Prefix &P : Out)
        Red.annotate(P);
  }
  // The executed share of this subtree is complete; its unexplored
  // remainder now lives in Out and carries its own exhaustion accounting.
  HasWork = false;
  Sum.Exhausted = true;
  finalizePerf();
  return Out;
}

std::string
Explorer::formatTrace(const std::vector<DecisionTree::Decision> &Trace) {
  std::string Out;
  if (Trace.empty())
    return "<empty decision trace>\n";
  for (size_t I = 0, E = Trace.size(); I != E; ++I) {
    const DecisionTree::Decision &D = Trace[I];
    Out += "#" + std::to_string(I) + " ";
    Out += D.Tag ? D.Tag : "?";
    Out += " (" + std::to_string(D.Count) + " alts) -> " +
           std::to_string(D.Chosen) + "\n";
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Summary
//===----------------------------------------------------------------------===//

std::vector<unsigned> Explorer::Summary::firstViolationDecisions() const {
  std::vector<unsigned> Out;
  Out.reserve(FirstViolation.size());
  for (const DecisionTree::Decision &D : FirstViolation)
    Out.push_back(D.Chosen);
  return Out;
}

bool Explorer::Summary::coreEquals(const Summary &O) const {
  auto SameTrace = [](const std::vector<DecisionTree::Decision> &A,
                      const std::vector<DecisionTree::Decision> &B) {
    if (A.size() != B.size())
      return false;
    for (size_t I = 0, E = A.size(); I != E; ++I) {
      if (A[I].Chosen != B[I].Chosen || A[I].Count != B[I].Count)
        return false;
      const char *Ta = A[I].Tag ? A[I].Tag : "";
      const char *Tb = B[I].Tag ? B[I].Tag : "";
      if (std::strcmp(Ta, Tb) != 0)
        return false;
    }
    return true;
  };
  auto SameTags = [](const std::map<std::string, TagStat> &A,
                     const std::map<std::string, TagStat> &B) {
    if (A.size() != B.size())
      return false;
    for (auto ItA = A.begin(), ItB = B.begin(); ItA != A.end();
         ++ItA, ++ItB) {
      if (ItA->first != ItB->first ||
          ItA->second.Choices != ItB->second.Choices ||
          ItA->second.AltSum != ItB->second.AltSum ||
          ItA->second.MaxArity != ItB->second.MaxArity)
        return false;
    }
    return true;
  };
  return Executions == O.Executions && Completed == O.Completed &&
         Deadlocks == O.Deadlocks && Races == O.Races &&
         Diverged == O.Diverged && Pruned == O.Pruned &&
         SleepPruned == O.SleepPruned &&
         Violations == O.Violations && Exhausted == O.Exhausted &&
         MaxDepth == O.MaxDepth && HasViolation == O.HasViolation &&
         SameTrace(FirstViolation, O.FirstViolation) &&
         SameTags(Tags, O.Tags);
}

void Explorer::Summary::mergeCore(const Summary &O) {
  Executions += O.Executions;
  Completed += O.Completed;
  Deadlocks += O.Deadlocks;
  Races += O.Races;
  Diverged += O.Diverged;
  Pruned += O.Pruned;
  SleepPruned += O.SleepPruned;
  Violations += O.Violations;
  Exhausted = Exhausted && O.Exhausted;
  MaxDepth = std::max(MaxDepth, O.MaxDepth);
  if (O.HasViolation &&
      (!HasViolation || traceLexLess(O.FirstViolation, FirstViolation))) {
    HasViolation = true;
    FirstViolation = O.FirstViolation;
  }
  for (const auto &[Name, Stat] : O.Tags) {
    TagStat &Dst = Tags[Name];
    Dst.Choices += Stat.Choices;
    Dst.AltSum += Stat.AltSum;
    Dst.MaxArity = std::max(Dst.MaxArity, Stat.MaxArity);
  }
}

std::string Explorer::Summary::str() const {
  std::string Out;
  Out += "executions=" + std::to_string(Executions);
  Out += " completed=" + std::to_string(Completed);
  Out += " deadlocks=" + std::to_string(Deadlocks);
  Out += " races=" + std::to_string(Races);
  Out += " diverged=" + std::to_string(Diverged);
  Out += " pruned=" + std::to_string(Pruned);
  Out += " sleep_pruned=" + std::to_string(SleepPruned);
  Out += " violations=" + std::to_string(Violations);
  Out += Exhausted ? " (exhaustive)" : " (truncated)";
  return Out;
}

std::string Explorer::Summary::json() const {
  JsonWriter J;
  J.beginObject();
  J.field("executions", Executions);
  J.field("completed", Completed);
  J.field("deadlocks", Deadlocks);
  J.field("races", Races);
  J.field("diverged", Diverged);
  J.field("pruned", Pruned);
  J.field("sleep_pruned", SleepPruned);
  J.field("violations", Violations);
  J.field("exhausted", Exhausted);
  J.field("max_depth", MaxDepth);
  J.field("wall_seconds", Perf.WallSeconds);
  J.field("execs_per_sec", Perf.ExecsPerSec);
  J.field("peak_frontier", Perf.PeakFrontier);
  J.field("peak_queue", Perf.PeakQueue);
  J.field("workers", Perf.Workers);
  J.key("tags");
  J.beginObject();
  for (const auto &[Name, Stat] : Tags) {
    J.key(Name);
    J.beginObject();
    J.field("choices", Stat.Choices);
    J.field("alt_sum", Stat.AltSum);
    J.field("max_arity", Stat.MaxArity);
    J.field("avg_arity", Stat.avgArity());
    J.endObject();
  }
  J.endObject();
  J.key("first_violation");
  J.beginArray();
  if (HasViolation)
    for (const DecisionTree::Decision &D : FirstViolation)
      J.value(D.Chosen);
  J.endArray();
  J.endObject();
  return J.str();
}
