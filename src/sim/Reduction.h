//===-- sim/Reduction.h - Sleep-set / source-set POR ------------*- C++ -*-===//
//
// Part of compass-cxx. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Partial-order reduction over the scheduler's thread-choice points,
/// specialized to the view-based RMC machine. Two modes share one state
/// machine (DESIGN.md Sections 8 and 12):
///
/// *Sleep sets* [Godefroid]: after the explorer finishes the branch that
/// schedules thread t at a choice point, the sibling branches need not
/// re-explore interleavings that merely *delay* t past steps independent of
/// t's pending operation — swapping adjacent independent steps yields the
/// identical machine state. When the DFS takes alternative `Pick` at a
/// `sched` choice point, every alternative j < Pick (already fully explored
/// in sibling branches, in DFS order) is put to *sleep*. A sleeping move
/// wakes as soon as any executed step is dependent on it; if the scheduler
/// is about to run a move that is still asleep, the branch is pruned.
///
/// *Source sets* (the default): the same bookkeeping with three upgrades.
/// (1) A refined wake relation (rmc::sourceKeepsAsleep): same-location
/// atomic non-SC read/write pairs keep each other asleep, because the
/// commutation is exact for reads-from choices below the sleeping move's
/// history watermark (SleepMove::Ver, stamped at sleep-insert time).
/// (2) A sleeping read/update that *is* eventually scheduled while new
/// messages exist past its watermark executes with a reads-from floor
/// installed on the machine — it enumerates only the genuinely new
/// reads-from options; the stale ones commute back to the explored sibling
/// (Scheduler reports an execution whose restricted option set came up
/// empty as RunResult::RfPruned). (3) Every sched point records a per-
/// alternative skip verdict so the explorer can discard fully-covered
/// sibling subtrees at *advance time*, without burning an execution
/// (Summary::SourcePruned).
///
/// Only `sched`-tagged decisions participate; read-from and CAS-outcome
/// choice points are never pruned by this layer (the explorer's duplicate-
/// rf cache handles those; see ChoiceSource::noteChoiceDup). All state is
/// recomputed online from the decision path on every execution (it is a
/// pure function of the path), so replayed prefixes — including seeded
/// prefixes adopted from another worker — deterministically reconstruct
/// the donor's state; donated prefixes carry a snapshot
/// (DecisionTree::Prefix::Sleep) that the recipient validates against its
/// recomputation.
///
//===----------------------------------------------------------------------===//

#ifndef COMPASS_SIM_REDUCTION_H
#define COMPASS_SIM_REDUCTION_H

#include "rmc/Footprint.h"
#include "sim/DecisionTree.h"

#include <cstddef>
#include <cstdint>
#include <vector>

namespace compass::sim {

/// Online sleep-set / source-set state for one explorer (one worker); see
/// file comment. All containers are watermarked/recycled so steady-state
/// executions do not allocate.
class Reduction {
public:
  /// What the scheduler must do with the move it just picked.
  enum class Verdict : uint8_t {
    Run,       ///< Not asleep: execute normally.
    Prune,     ///< Asleep, fully covered: abandon the execution.
    Restricted ///< Asleep with fresh messages past the watermark: execute
               ///< with the reads-from floor restrictLoc()/restrictVer().
  };

  /// Switches between plain sleep sets (off) and source sets (on). Must be
  /// set before the first execution and never changed mid-exploration.
  void enableSourceSets(bool On) { SourceMode = On; }
  bool sourceSets() const { return SourceMode; }

  /// Clears the per-execution state; call before each execution.
  void beginExecution();

  /// Hook for a real `sched` choice (arity > 1, not preemption-forced):
  /// records the choice point, puts alternatives j < \p Pick to sleep
  /// (stamping their history watermarks from \p HistLens in source mode),
  /// validates against the donated seed snapshot when this is the seeded
  /// ordinal, and returns the verdict for the picked move.
  ///
  /// \p Enabled are the schedulable threads, \p Fps their pending-operation
  /// footprints, \p HistLens the current history length of each pending
  /// footprint's location (parallel arrays), \p Pick the index chosen by
  /// the decision tree.
  Verdict onSchedChoice(const std::vector<unsigned> &Enabled,
                        const std::vector<rmc::Footprint> &Fps,
                        const std::vector<uint32_t> &HistLens, unsigned Pick);

  /// Hook for a forced or singleton schedule (no tree decision recorded):
  /// verdict only — never adds sleeps, because no sibling branch exists at
  /// such a point. \p HistLen is the current history length of the picked
  /// thread's pending location.
  Verdict onSchedule(unsigned Tid, uint32_t HistLen);

  /// Valid right after a Restricted verdict: the reads-from floor the
  /// scheduler must install on the machine for the restricted step.
  rmc::Loc restrictLoc() const { return RestrictL; }
  uint32_t restrictVer() const { return RestrictVer; }

  /// Hook after a machine step by \p Tid with executed footprint \p F:
  /// wakes every sleeping move the refinement cannot keep asleep (classic
  /// independence in sleep mode, rmc::sourceKeepsAsleep in source mode; the
  /// stepping thread's own entry is always dropped — consecutive steps of
  /// one thread never commute).
  void onStepExecuted(unsigned Tid, const rmc::Footprint &F);

  /// Advance-time skip test (source mode): true when alternative \p Alt of
  /// the \p Ordinal-th sched point of the last executed path is fully
  /// covered by explored siblings, so the explorer may skip the subtree
  /// without executing it (counted as Summary::SourcePruned). False for
  /// unknown ordinals/alternatives and in sleep mode.
  bool skipAlternative(size_t Ordinal, unsigned Alt) const;

  /// Installs the donor's sleep snapshot for a seeded (donated) prefix:
  /// when the recomputed state reaches sched ordinal \p Ordinal, it is
  /// compared against \p Sleep; divergence is fatal (it would mean reduced
  /// exploration depends on the work distribution).
  void setSeed(std::vector<SleepMove> Sleep, size_t Ordinal);

  /// Annotates a donated prefix with the sleep state in force after its
  /// final decision. Only prefixes ending in a `sched` decision are
  /// annotated (P.HasSleep is cleared otherwise); recipients of
  /// unannotated prefixes still recompute the correct state, they just
  /// skip the cross-worker validation.
  void annotate(DecisionTree::Prefix &P) const;

  /// The current sleep set (sorted by Tid); exposed for tests.
  const std::vector<SleepMove> &current() const { return Cur; }

  //===--------------------------------------------------------------------===//
  // Copy-on-write boundaries. The scheduler calls saveBoundary() at the
  // top of every recorded step; the engine copies the saved state into its
  // snapshot and hands it back through restore() when rewinding. Only Cur
  // and the point count need capturing: Points entries are written once at
  // their sched choice and never mutated afterwards, so a rewind that
  // re-runs the divergent step recycles the next Points slot naturally.
  //===--------------------------------------------------------------------===//

  /// Sleep-set state at a step boundary (storage recycled across saves).
  struct Boundary {
    std::vector<SleepMove> Cur;
    size_t NumPoints = 0;
  };

  /// Records the current state into the loop-top scratch (capacity-reusing
  /// assignment; allocation-free at steady state).
  void saveBoundary() {
    LoopTop.Cur = Cur;
    LoopTop.NumPoints = NumPoints;
  }

  const Boundary &boundary() const { return LoopTop; }

  /// Rewinds to \p B (capacity-reusing assignment).
  void restore(const Boundary &B) {
    Cur = B.Cur;
    NumPoints = B.NumPoints;
  }

private:
  const SleepMove *findAsleep(unsigned Tid) const;
  /// The verdict for scheduling the move of sleeping entry \p E while its
  /// location's history is \p HistLen long; Run when E is null. Pure — the
  /// caller publishes the restriction fields for the picked move only.
  Verdict verdictFor(const SleepMove *E, uint32_t HistLen) const;
  static void insertMove(std::vector<SleepMove> &S, unsigned Tid,
                         const rmc::Footprint &Fp, uint32_t Ver);

  /// Snapshot of one sched choice point of the current execution, kept so
  /// split() can annotate donated prefixes ending at any such point and so
  /// the explorer can skip covered alternatives at advance time.
  struct SchedPoint {
    std::vector<SleepMove> Entry; ///< Sleep set before this point's adds.
    std::vector<SleepMove> Alts;  ///< Enabled moves, in choice order.
    std::vector<uint8_t> Skip;    ///< Verdict per alternative (source mode).
  };

  std::vector<SleepMove> Cur;     ///< Current sleep set, sorted by Tid.
  std::vector<SchedPoint> Points; ///< [0, NumPoints) valid this execution.
  size_t NumPoints = 0;

  std::vector<SleepMove> Seed; ///< Donor snapshot (sorted by Tid).
  size_t SeedOrdinal = 0;
  bool HasSeed = false;
  bool SourceMode = false;

  rmc::Loc RestrictL = 0;    ///< Floor location of the last Restricted.
  uint32_t RestrictVer = 0;  ///< Floor watermark of the last Restricted.

  Boundary LoopTop; ///< saveBoundary() scratch (see the COW section).
};

} // namespace compass::sim

#endif // COMPASS_SIM_REDUCTION_H
