//===-- sim/Reduction.h - Sleep-set partial-order reduction -----*- C++ -*-===//
//
// Part of compass-cxx. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Sleep-set partial-order reduction [Godefroid] over the scheduler's
/// thread-choice points, specialized to the view-based RMC machine
/// (DESIGN.md Section 8).
///
/// The idea: after the explorer finishes the branch that schedules thread t
/// at a choice point, the sibling branches need not re-explore interleavings
/// that merely *delay* t past steps independent of t's pending operation —
/// swapping adjacent independent steps yields the identical machine state,
/// so every execution reachable that way was already covered. Concretely,
/// when the DFS takes alternative `Pick` at a `sched` choice point, every
/// alternative j < Pick (already fully explored in sibling branches, in DFS
/// order) is put to *sleep*. A sleeping move wakes as soon as any executed
/// step is dependent on it (rmc::independent over footprints); if the
/// scheduler is about to run a move that is still asleep, the whole branch
/// is pruned — every execution below it is equivalent to one in an explored
/// sibling.
///
/// Only `sched`-tagged decisions participate: read-from and CAS-outcome
/// choice points are never pruned, so the reduction is transparent to the
/// memory model's nondeterminism. Sleep state is recomputed online from the
/// decision path on every execution (it is a pure function of the path), so
/// replayed prefixes — including seeded prefixes adopted from another
/// worker — deterministically reconstruct the donor's state; donated
/// prefixes carry a snapshot (DecisionTree::Prefix::Sleep) that the
/// recipient validates against its recomputation.
///
//===----------------------------------------------------------------------===//

#ifndef COMPASS_SIM_REDUCTION_H
#define COMPASS_SIM_REDUCTION_H

#include "rmc/Footprint.h"
#include "sim/DecisionTree.h"

#include <cstddef>
#include <vector>

namespace compass::sim {

/// Online sleep-set state for one explorer (one worker); see file comment.
/// All containers are watermarked/recycled so steady-state executions do
/// not allocate.
class Reduction {
public:
  /// Clears the per-execution state; call before each execution.
  void beginExecution();

  /// Hook for a real `sched` choice (arity > 1, not preemption-forced):
  /// records the choice point, puts alternatives j < \p Pick to sleep,
  /// validates against the donated seed snapshot when this is the seeded
  /// ordinal, and reports whether the picked move is asleep (in which case
  /// the scheduler must abandon the execution as SleepPruned).
  ///
  /// \p Enabled are the schedulable threads, \p Fps their pending-operation
  /// footprints (parallel arrays), \p Pick the index chosen by the
  /// decision tree.
  bool onSchedChoice(const std::vector<unsigned> &Enabled,
                     const std::vector<rmc::Footprint> &Fps, unsigned Pick);

  /// Hook for a forced or singleton schedule (no tree decision recorded):
  /// prune-check only — never adds sleeps, because no sibling branch
  /// exists at such a point.
  bool onSchedule(unsigned Tid) const { return isAsleep(Tid); }

  /// Hook after a machine step by \p Tid with executed footprint \p F:
  /// wakes every sleeping move dependent on the step (and drops \p Tid's
  /// own entry if present — a thread's consecutive steps never commute).
  void onStepExecuted(unsigned Tid, const rmc::Footprint &F);

  /// Installs the donor's sleep snapshot for a seeded (donated) prefix:
  /// when the recomputed state reaches sched ordinal \p Ordinal, it is
  /// compared against \p Sleep; divergence is fatal (it would mean reduced
  /// exploration depends on the work distribution).
  void setSeed(std::vector<SleepMove> Sleep, size_t Ordinal);

  /// Annotates a donated prefix with the sleep state in force after its
  /// final decision. Only prefixes ending in a `sched` decision are
  /// annotated (P.HasSleep is cleared otherwise); recipients of
  /// unannotated prefixes still recompute the correct state, they just
  /// skip the cross-worker validation.
  void annotate(DecisionTree::Prefix &P) const;

  /// The current sleep set (sorted by Tid); exposed for tests.
  const std::vector<SleepMove> &current() const { return Cur; }

  //===--------------------------------------------------------------------===//
  // Copy-on-write boundaries. The scheduler calls saveBoundary() at the
  // top of every recorded step; the engine copies the saved state into its
  // snapshot and hands it back through restore() when rewinding. Only Cur
  // and the point count need capturing: Points entries are written once at
  // their sched choice and never mutated afterwards, so a rewind that
  // re-runs the divergent step recycles the next Points slot naturally.
  //===--------------------------------------------------------------------===//

  /// Sleep-set state at a step boundary (storage recycled across saves).
  struct Boundary {
    std::vector<SleepMove> Cur;
    size_t NumPoints = 0;
  };

  /// Records the current state into the loop-top scratch (capacity-reusing
  /// assignment; allocation-free at steady state).
  void saveBoundary() {
    LoopTop.Cur = Cur;
    LoopTop.NumPoints = NumPoints;
  }

  const Boundary &boundary() const { return LoopTop; }

  /// Rewinds to \p B (capacity-reusing assignment).
  void restore(const Boundary &B) {
    Cur = B.Cur;
    NumPoints = B.NumPoints;
  }

private:
  bool isAsleep(unsigned Tid) const;
  static void insertMove(std::vector<SleepMove> &S, unsigned Tid,
                         const rmc::Footprint &Fp);

  /// Snapshot of one sched choice point of the current execution, kept so
  /// split() can annotate donated prefixes ending at any such point.
  struct SchedPoint {
    std::vector<SleepMove> Entry; ///< Sleep set before this point's adds.
    std::vector<SleepMove> Alts;  ///< Enabled moves, in choice order.
  };

  std::vector<SleepMove> Cur;     ///< Current sleep set, sorted by Tid.
  std::vector<SchedPoint> Points; ///< [0, NumPoints) valid this execution.
  size_t NumPoints = 0;

  std::vector<SleepMove> Seed; ///< Donor snapshot (sorted by Tid).
  size_t SeedOrdinal = 0;
  bool HasSeed = false;

  Boundary LoopTop; ///< saveBoundary() scratch (see the COW section).
};

} // namespace compass::sim

#endif // COMPASS_SIM_REDUCTION_H
