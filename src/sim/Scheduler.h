//===-- sim/Scheduler.h - Cooperative simulated-thread scheduler -*- C++ -*-===//
//
// Part of compass-cxx. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The cooperative scheduler driving simulated threads over the RMC
/// machine. Threads are coroutines (see Task.h); each simulated memory
/// operation suspends the thread and registers it with the scheduler, so
/// the interleaving of memory operations — the only events visible to the
/// memory model — is fully controlled by a ChoiceSource.
///
/// Threads may also *block* on a predicate over a location's readable
/// messages (`spinUntil`), modelling fair spin loops: a blocked thread is
/// scheduled only when a satisfying message is readable. Unbounded spinning
/// that cannot be expressed this way is handled by the per-execution step
/// budget (executions exceeding it are reported as StepLimit and counted as
/// diverged by the explorer; safety checking remains sound).
///
//===----------------------------------------------------------------------===//

#ifndef COMPASS_SIM_SCHEDULER_H
#define COMPASS_SIM_SCHEDULER_H

#include "rmc/Machine.h"
#include "sim/Task.h"
#include "support/Choice.h"

#include <coroutine>
#include <memory>
#include <vector>

namespace compass::sim {

class Reduction;
class Scheduler;

/// Per-thread execution environment handed to simulated-thread coroutines.
/// Provides awaitable factories for every memory operation; `co_await
/// E.load(L, O)` suspends to the scheduler and performs the access when the
/// thread is next scheduled.
struct Env {
  rmc::Machine &M;
  Scheduler &S;
  unsigned Tid;

  // Awaitable factories; definitions follow the Scheduler class.
  auto load(rmc::Loc L, rmc::MemOrder O);
  auto store(rmc::Loc L, rmc::Value V, rmc::MemOrder O);
  auto cas(rmc::Loc L, rmc::Value Expected, rmc::Value Desired,
           rmc::MemOrder SuccO,
           rmc::MemOrder FailO = rmc::MemOrder::Relaxed);
  auto fetchAdd(rmc::Loc L, rmc::Value Add, rmc::MemOrder O);
  auto fence(rmc::MemOrder O);

  /// Blocks until a readable message of \p L satisfies \p Pred, then reads
  /// one such message with order \p O. Models a fair spin loop.
  auto spinUntil(rmc::Loc L, rmc::ValuePred Pred, rmc::MemOrder O);

  // Reclamation ghost steps (simulated EBR; see rmc::Machine::pinEnter
  // and friends). Each is a scheduler-visible step of its own so the
  // sleep-set reduction sees its Reclaim/Free footprint.
  auto pinEnter();
  auto pinExit();
  auto retire(rmc::Loc L, unsigned Count = 1);
  auto freeCells(rmc::Loc L, unsigned Count = 1);

  /// Abandons this execution as a stutter (an identical retry-loop
  /// iteration that made no progress). Sound for safety checking: a
  /// stuttering iteration performs only reads and failed CASes, so every
  /// state it can reach is reached by the sibling execution that read
  /// fresher values. The awaited expression never resumes.
  auto prune();
};

/// Cooperative scheduler; see file comment.
class Scheduler {
public:
  /// Why a run ended.
  enum class RunResult {
    Done,       ///< All threads finished.
    Deadlock,   ///< Unfinished threads, none enabled.
    Race,       ///< The machine flagged a non-atomic data race.
    StepLimit,  ///< The step budget was exhausted (diverged/unfair run).
    Pruned,     ///< A thread flagged a stutter iteration (Env::prune).
    SleepPruned, ///< The sleep/source-set reduction cut this branch
                 ///< (Reduction.h).
    RfPruned ///< A source-set restricted re-run found its reads-from
             ///< option set empty: every reads-from choice of the step was
             ///< already covered by the sibling that ran the move earlier
             ///< (Reduction.h; only under source-set mode).
  };

  Scheduler(rmc::Machine &M, ChoiceSource &Choices)
      : M(M), Choices(Choices) {}

  /// Bounds the number of *preemptive* context switches (switching away
  /// from a thread that is still enabled), CHESS-style [Musuvathi &
  /// Qadeer]. Unlimited by default; small bounds make exhaustive
  /// exploration of 3+-thread clients tractable while covering all
  /// low-preemption interleavings. Non-preemptive switches (after a thread
  /// blocks or finishes) are always explored fully.
  void setPreemptionBound(unsigned Bound) { PreemptionBound = Bound; }

  unsigned preemptionsUsed() const { return Preemptions; }

  /// Attaches a sleep-set reduction (or nullptr to disable). The scheduler
  /// feeds it every thread-choice point and every executed step; when it
  /// reports the picked move asleep, run() ends with SleepPruned. The
  /// pointer must stay valid for the scheduler's lifetime. Persists across
  /// reset().
  void setReduction(Reduction *R) { Red = R; }

  /// Rewinds the scheduler to its pre-newThread() state while retaining
  /// thread records (Env objects, coroutine task slots, scratch vectors)
  /// for reuse by the next execution's newThread() calls, which must
  /// re-create threads in the same order. PreemptionBound and the
  /// reduction hook persist.
  void reset();

  /// Creates a new simulated thread and returns its environment. The
  /// returned reference is stable for the scheduler's lifetime. Pass it to
  /// a coroutine function and attach the resulting task with start().
  Env &newThread();

  /// Attaches \p Root as the body of \p E's thread. Must be called exactly
  /// once per newThread(), before run(). \p Root must be a coroutine that
  /// received this thread's Env (threads must not share an Env).
  void start(Env &E, Task<void> Root);

  /// Runs until completion, deadlock, race, or the step budget.
  RunResult run(uint64_t MaxSteps = 1 << 20);

  uint64_t steps() const { return Steps; }

  /// True if the thread \p Tid has finished. Valid after run().
  bool finished(unsigned Tid) const { return Threads[Tid]->Done; }

  //===--------------------------------------------------------------------===//
  // Copy-on-write journaling (sim/Engine.h). In Record mode run() logs
  // every scheduled thread (StepLog) and every value a memory operation
  // returned (OpLog). A later fast-forward re-resumes the same threads in
  // the same order while the awaiters serve results from the journal
  // instead of re-executing machine operations — client coroutine state is
  // recomputed, machine state is restored from a snapshot.
  //===--------------------------------------------------------------------===//

  enum class JournalMode : uint8_t { Off, Record, Replay };

  /// One journaled operation result: the returned value (for a CAS, the
  /// observed old value) plus a CAS's success flag.
  struct OpEntry {
    rmc::Value Val = 0;
    bool Flag = false;
  };

  /// One journaled step: the scheduled thread plus every journal cursor's
  /// position right *after* the step (operation journal and the machine's
  /// aux journals). Fast-forward can skip a whole step of a thread that is
  /// finished at the snapshot boundary by jumping the cursors to these
  /// marks instead of re-resuming the coroutine.
  struct StepEnt {
    unsigned Tid = 0;
    uint32_t OpEnd = 0;
    rmc::Machine::AuxMark AuxEnd;
  };

  /// The scheduler's loop-top state right before a step — a decision
  /// boundary the copy-on-write engine can rewind to. TreePos is the
  /// ChoiceSource's decision count at the loop top, i.e. before this
  /// step's scheduler pick and any operation-level choices it leads to.
  struct Boundary {
    uint64_t Steps = 0;
    unsigned Preemptions = 0;
    unsigned LastRun = ~0u;
    size_t OpEntries = 0;
    size_t TreePos = 0;
    /// Bitmask of threads (tid < 64) already finished at the boundary.
    /// A fast-forward targeting this boundary may skip their steps when
    /// the workload declares that sound (Workload::Body::CowSkipFinished):
    /// a finished thread never runs in the subtree, so its recomputed
    /// coroutine frame is never needed again.
    uint64_t FinishedMask = 0;
  };

  JournalMode journalMode() const { return Mode; }

  /// Starts a recorded execution: clears both journals, enters Record mode.
  void beginJournal() {
    StepLog.clear();
    OpLog.clear();
    OpCursor = 0;
    Mode = JournalMode::Record;
    LoopTop = Boundary();
  }

  /// Leaves journaling entirely (classic exploration / replay() paths).
  void stopJournal() {
    StepLog.clear();
    OpLog.clear();
    OpCursor = 0;
    Mode = JournalMode::Off;
  }

  /// The loop-top boundary of the step currently executing (Record mode).
  /// A snapshot hook firing at a choice inside the step reads it to mark
  /// the rewind point.
  const Boundary &captureBoundary() const { return LoopTop; }

  /// Thread id of the step currently executing (valid during a resume).
  unsigned currentStepThread() const { return LastRun; }

  // Journal access for the awaiters (hot path).
  void recordOp(rmc::Value V, bool Flag = false) {
    OpLog.push_back({V, Flag});
  }
  const OpEntry &nextOp() {
    if (OpCursor >= OpLog.size())
      journalUnderrun();
    return OpLog[OpCursor++];
  }

  /// Enters Replay mode: fastForward() resumes serve journaled results.
  void beginFastForward() {
    Mode = JournalMode::Replay;
    OpCursor = 0;
  }

  /// Re-resumes the first \p NSteps journaled steps with machine operations
  /// elided. The caller must have reset the scheduler and re-run Setup (so
  /// the coroutines exist afresh) and put the machine in replay mode.
  /// Steps of threads in \p SkipMask (the boundary's FinishedMask, when
  /// the workload allows skipping) are not re-resumed at all: the journal
  /// cursors jump over them and the threads are marked finished afterwards.
  void fastForward(uint64_t NSteps, uint64_t SkipMask = 0);

  /// Leaves Replay at boundary \p B: validates the journal cursor,
  /// truncates both journals to the boundary, restores the step/preemption
  /// counters, and resumes Record mode for the live suffix.
  void endFastForward(const Boundary &B);

  // Internal API used by the awaitables. \p Fp is the footprint of the
  // operation the thread will perform when next scheduled, for the
  // reduction layer's independence checks.
  void park(unsigned Tid, std::coroutine_handle<> H, rmc::Footprint Fp);
  void parkBlocked(unsigned Tid, std::coroutine_handle<> H, rmc::Loc L,
                   rmc::ValuePred Pred, rmc::Footprint Fp);
  void requestPrune() { PruneRequested = true; }

private:
  struct ThreadRec {
    std::unique_ptr<Env> E;
    Task<void> Root;
    std::coroutine_handle<> Pending;
    rmc::Footprint NextFp; ///< Footprint of the pending operation.
    bool Started = false;
    bool Done = false;
    bool Blocked = false;
    rmc::Loc WaitLoc = 0;
    rmc::ValuePred WaitPred;
    // Memoized wait-scan verdict: within one execution a cell's history
    // only grows and a blocked thread's own view is frozen, so the scan
    // result holds until the history length changes. Invalidated on
    // (re)parking and across execution/rewind boundaries, where the same
    // length can denote different slot contents.
    rmc::Loc CacheLoc = 0;
    size_t CacheLen = 0;
    bool CacheResult = false;
    bool CacheValid = false;
  };

  [[noreturn]] void journalUnderrun() const;

  rmc::Machine &M;
  ChoiceSource &Choices;
  std::vector<std::unique_ptr<ThreadRec>> Threads; ///< [0, LiveThreads)
                                                   ///< live; rest retained.
  size_t LiveThreads = 0;
  uint64_t Steps = 0;
  unsigned PreemptionBound = ~0u;
  unsigned Preemptions = 0;
  unsigned LastRun = ~0u;
  bool PruneRequested = false;
  Reduction *Red = nullptr;

  // Copy-on-write journals (see the COW section above). Persist across
  // reset(): the engine controls their lifetime via beginJournal /
  // beginFastForward / endFastForward.
  JournalMode Mode = JournalMode::Off;
  std::vector<StepEnt> StepLog; ///< Executed steps with cursor end marks.
  std::vector<OpEntry> OpLog;   ///< Results of value-returning ops.
  size_t OpCursor = 0;
  Boundary LoopTop; ///< Loop-top scratch, updated per step in Record mode.
  uint64_t DoneMask = 0; ///< Finished threads with tid < 64 (live mirror).

  /// Scratch for run()'s per-step enabled-thread scan (allocation-free at
  /// steady state). EnabledHist carries, per enabled thread, the current
  /// history length of its pending footprint's location — the reads-from
  /// watermark material for the source-set reduction.
  std::vector<unsigned> Enabled;
  std::vector<rmc::Footprint> EnabledFps;
  std::vector<uint32_t> EnabledHist;
};

namespace detail {

/// Base for one-shot memory-operation awaitables: suspend to the scheduler
/// (announcing the pending operation's footprint), perform the access on
/// resume. During a copy-on-write fast-forward (JournalMode::Replay) the
/// machine call is elided: value-returning operations serve the journaled
/// result, void operations do nothing — the machine's state is restored
/// from a snapshot instead.
struct OpAwaiterBase {
  Env &E;
  rmc::Footprint Fp;
  OpAwaiterBase(Env &E, rmc::Footprint Fp) : E(E), Fp(Fp) {}
  bool await_ready() const { return false; }
  void await_suspend(std::coroutine_handle<> H) { E.S.park(E.Tid, H, Fp); }
};

struct LoadAwaiter : OpAwaiterBase {
  rmc::Loc L;
  rmc::MemOrder O;
  LoadAwaiter(Env &E, rmc::Loc L, rmc::MemOrder O)
      : OpAwaiterBase(E, {L, rmc::Footprint::Kind::Read,
                          O == rmc::MemOrder::SeqCst,
                          O != rmc::MemOrder::NonAtomic}),
        L(L), O(O) {}
  rmc::Value await_resume() {
    Scheduler &S = E.S;
    if (S.journalMode() == Scheduler::JournalMode::Replay)
      return S.nextOp().Val;
    rmc::Value V = E.M.load(E.Tid, L, O);
    if (S.journalMode() == Scheduler::JournalMode::Record)
      S.recordOp(V);
    return V;
  }
};

struct StoreAwaiter : OpAwaiterBase {
  rmc::Loc L;
  rmc::Value V;
  rmc::MemOrder O;
  StoreAwaiter(Env &E, rmc::Loc L, rmc::Value V, rmc::MemOrder O)
      : OpAwaiterBase(E, {L, rmc::Footprint::Kind::Write,
                          O == rmc::MemOrder::SeqCst,
                          O != rmc::MemOrder::NonAtomic}),
        L(L), V(V), O(O) {}
  void await_resume() {
    if (E.S.journalMode() == Scheduler::JournalMode::Replay)
      return;
    E.M.store(E.Tid, L, V, O);
  }
};

struct CasAwaiter : OpAwaiterBase {
  rmc::Loc L;
  rmc::Value Expected, Desired;
  rmc::MemOrder SuccO, FailO;
  // The pending footprint is the pessimistic Update: whether the CAS will
  // succeed depends on the state at execution time. The machine reports
  // the precise executed footprint (Read on failure) afterwards.
  CasAwaiter(Env &E, rmc::Loc L, rmc::Value Expected, rmc::Value Desired,
             rmc::MemOrder SuccO, rmc::MemOrder FailO)
      : OpAwaiterBase(E, {L, rmc::Footprint::Kind::Update,
                          SuccO == rmc::MemOrder::SeqCst ||
                              FailO == rmc::MemOrder::SeqCst,
                          /*Atomic=*/true}),
        L(L), Expected(Expected), Desired(Desired), SuccO(SuccO),
        FailO(FailO) {}
  rmc::Machine::CasResult await_resume() {
    Scheduler &S = E.S;
    if (S.journalMode() == Scheduler::JournalMode::Replay) {
      const Scheduler::OpEntry &En = S.nextOp();
      return {En.Flag, En.Val};
    }
    rmc::Machine::CasResult R =
        E.M.cas(E.Tid, L, Expected, Desired, SuccO, FailO);
    if (S.journalMode() == Scheduler::JournalMode::Record)
      S.recordOp(R.Old, R.Success);
    return R;
  }
};

struct FaaAwaiter : OpAwaiterBase {
  rmc::Loc L;
  rmc::Value Add;
  rmc::MemOrder O;
  FaaAwaiter(Env &E, rmc::Loc L, rmc::Value Add, rmc::MemOrder O)
      : OpAwaiterBase(E, {L, rmc::Footprint::Kind::Update,
                          O == rmc::MemOrder::SeqCst, /*Atomic=*/true}),
        L(L), Add(Add), O(O) {}
  rmc::Value await_resume() {
    Scheduler &S = E.S;
    if (S.journalMode() == Scheduler::JournalMode::Replay)
      return S.nextOp().Val;
    rmc::Value V = E.M.fetchAdd(E.Tid, L, Add, O);
    if (S.journalMode() == Scheduler::JournalMode::Record)
      S.recordOp(V);
    return V;
  }
};

struct FenceAwaiter : OpAwaiterBase {
  rmc::MemOrder O;
  FenceAwaiter(Env &E, rmc::MemOrder O)
      : OpAwaiterBase(E, {0, rmc::Footprint::Kind::Fence,
                          O == rmc::MemOrder::SeqCst}),
        O(O) {}
  void await_resume() {
    if (E.S.journalMode() == Scheduler::JournalMode::Replay)
      return;
    E.M.fence(E.Tid, O);
  }
};

struct PinAwaiter : OpAwaiterBase {
  bool Enter;
  PinAwaiter(Env &E, bool Enter)
      : OpAwaiterBase(E, {0, rmc::Footprint::Kind::Reclaim, false}),
        Enter(Enter) {}
  void await_resume() {
    if (E.S.journalMode() == Scheduler::JournalMode::Replay)
      return;
    if (Enter)
      E.M.pinEnter(E.Tid);
    else
      E.M.pinExit(E.Tid);
  }
};

struct RetireAwaiter : OpAwaiterBase {
  rmc::Loc L;
  unsigned Count;
  RetireAwaiter(Env &E, rmc::Loc L, unsigned Count)
      : OpAwaiterBase(E, {L, rmc::Footprint::Kind::Reclaim, false}), L(L),
        Count(Count) {}
  void await_resume() {
    if (E.S.journalMode() == Scheduler::JournalMode::Replay)
      return;
    E.M.retire(E.Tid, L, Count);
  }
};

struct FreeAwaiter : OpAwaiterBase {
  rmc::Loc L;
  unsigned Count;
  FreeAwaiter(Env &E, rmc::Loc L, unsigned Count)
      : OpAwaiterBase(E, {L, rmc::Footprint::Kind::Free, false}), L(L),
        Count(Count) {}
  void await_resume() {
    if (E.S.journalMode() == Scheduler::JournalMode::Replay)
      return;
    E.M.freeCells(E.Tid, L, Count);
  }
};

struct PruneAwaiter {
  Env &E;
  explicit PruneAwaiter(Env &E) : E(E) {}
  bool await_ready() const { return false; }
  void await_suspend(std::coroutine_handle<> H) {
    // Re-park so coroutine teardown stays uniform; the scheduler stops
    // before ever resuming this thread again. Kind::None: dependent on
    // everything (irrelevant in practice — the run ends here).
    E.S.park(E.Tid, H, rmc::Footprint());
    E.S.requestPrune();
  }
  void await_resume() {}
};

struct SpinAwaiter {
  Env &E;
  rmc::Loc L;
  rmc::ValuePred Pred;
  rmc::MemOrder O;
  SpinAwaiter(Env &E, rmc::Loc L, rmc::ValuePred Pred, rmc::MemOrder O)
      : E(E), L(L), Pred(std::move(Pred)), O(O) {}
  bool await_ready() const { return false; }
  void await_suspend(std::coroutine_handle<> H) {
    E.S.parkBlocked(E.Tid, H, L, Pred,
                    {L, rmc::Footprint::Kind::Read,
                     O == rmc::MemOrder::SeqCst,
                     O != rmc::MemOrder::NonAtomic});
  }
  rmc::Value await_resume() {
    Scheduler &S = E.S;
    if (S.journalMode() == Scheduler::JournalMode::Replay)
      return S.nextOp().Val;
    rmc::Value V = E.M.loadWhere(E.Tid, L, O, Pred);
    if (S.journalMode() == Scheduler::JournalMode::Record)
      S.recordOp(V);
    return V;
  }
};

} // namespace detail

inline auto Env::load(rmc::Loc L, rmc::MemOrder O) {
  return detail::LoadAwaiter(*this, L, O);
}
inline auto Env::store(rmc::Loc L, rmc::Value V, rmc::MemOrder O) {
  return detail::StoreAwaiter(*this, L, V, O);
}
inline auto Env::cas(rmc::Loc L, rmc::Value Expected, rmc::Value Desired,
                     rmc::MemOrder SuccO, rmc::MemOrder FailO) {
  return detail::CasAwaiter(*this, L, Expected, Desired, SuccO, FailO);
}
inline auto Env::fetchAdd(rmc::Loc L, rmc::Value Add, rmc::MemOrder O) {
  return detail::FaaAwaiter(*this, L, Add, O);
}
inline auto Env::fence(rmc::MemOrder O) {
  return detail::FenceAwaiter(*this, O);
}
inline auto Env::spinUntil(rmc::Loc L, rmc::ValuePred Pred, rmc::MemOrder O) {
  return detail::SpinAwaiter(*this, L, std::move(Pred), O);
}
inline auto Env::prune() { return detail::PruneAwaiter(*this); }
inline auto Env::pinEnter() { return detail::PinAwaiter(*this, true); }
inline auto Env::pinExit() { return detail::PinAwaiter(*this, false); }
inline auto Env::retire(rmc::Loc L, unsigned Count) {
  return detail::RetireAwaiter(*this, L, Count);
}
inline auto Env::freeCells(rmc::Loc L, unsigned Count) {
  return detail::FreeAwaiter(*this, L, Count);
}

} // namespace compass::sim

#endif // COMPASS_SIM_SCHEDULER_H
