//===-- sim/Workload.h - Bounded programs as first-class values -*- C++ -*-===//
//
// Part of compass-cxx. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Workload bundles everything needed to model-check a bounded concurrent
/// program — the setup closure that allocates state and starts threads, the
/// per-execution property check, and the exploration options — into one
/// re-runnable value. This makes three things first-class:
///
///  - exploreSerial(W) / explore(W): run the workload to completion under
///    the serial or (Options::Workers > 1) parallel explorer;
///  - replay(W, Decisions): deterministically re-execute ONE decision
///    sequence — the counterexample-reproduction entry point. Feed it
///    Summary::firstViolationDecisions() or Explorer::currentDecisions();
///  - per-worker instantiation: a Workload built from a BodyFactory gives
///    every parallel worker its own Setup/Check closures (and thus its own
///    captured state), so existing single-threaded harness code parallelizes
///    without locking.
///
/// The Check closure returns true when the execution satisfies the property;
/// false increments Summary::Violations and records the decision trace.
///
//===----------------------------------------------------------------------===//

#ifndef COMPASS_SIM_WORKLOAD_H
#define COMPASS_SIM_WORKLOAD_H

#include "sim/Explorer.h"

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace compass::sim {

/// A bounded concurrent program plus exploration options; see file comment.
class Workload {
public:
  using SetupFn = std::function<void(rmc::Machine &, Scheduler &)>;
  /// Returns true when the execution satisfies the property.
  using CheckFn =
      std::function<bool(rmc::Machine &, Scheduler &, Scheduler::RunResult)>;

  /// Saves the body's non-machine state (e.g. a spec monitor) into the
  /// engine-owned slot, reusing its storage across saves. Called when the
  /// copy-on-write engine snapshots a decision boundary.
  using CowSaveFn = std::function<void(std::shared_ptr<void> &)>;
  /// Restores the state saved by CowSaveFn after a fast-forward.
  using CowRestoreFn = std::function<void(const std::shared_ptr<void> &)>;

  /// One instantiation of the program body. Parallel workers each hold
  /// their own Body, so closures built by a factory may freely mutate the
  /// state they capture.
  ///
  /// Copy-on-write eligibility (sim/Engine.h): a body that keeps NO state
  /// across scheduler steps outside (a) the machine, (b) coroutine locals
  /// recomputed from journaled operation results, may set CowSafe. A body
  /// with extra cross-step state (the harness's spec monitor) instead
  /// provides CowSave/CowRestore; the engine then snapshots/restores that
  /// state at decision boundaries. Bodies with neither run under the
  /// classic root-replay engine.
  struct Body {
    SetupFn Setup;
    CheckFn Check; ///< May be empty: every execution passes.
    bool CowSafe = false;
    CowSaveFn CowSave;
    CowRestoreFn CowRestore;
    /// Allows fast-forward to skip re-running steps of threads already
    /// finished at the snapshot boundary (their coroutine frames are never
    /// resumed in the subtree). Sound only when no live code reads a
    /// finished thread's client-side effects outside the machine, the
    /// monitor, and state covered by CowSave/CowRestore — e.g. the EBR
    /// wrapper's ghost retire bins (sim/Ebr.h) live in the shared library
    /// object and are recomputed by thread code, so EBR workloads must
    /// leave this off.
    bool CowSkipFinished = false;

    Body() = default;
    Body(SetupFn Setup, CheckFn Check = nullptr)
        : Setup(std::move(Setup)), Check(std::move(Check)) {}
  };

  /// Produces a fresh Body; invoked once per worker.
  using BodyFactory = std::function<Body()>;

  /// A workload with a single shared body. Safe for serial exploration and
  /// replay; for parallel exploration the closures must be thread-safe
  /// (prefer the BodyFactory constructor).
  Workload(Explorer::Options Opts, Body B)
      : Opts(Opts), Shared(std::move(B)) {}

  Workload(Explorer::Options Opts, SetupFn Setup, CheckFn Check = nullptr)
      : Workload(Opts, Body{std::move(Setup), std::move(Check)}) {}

  /// A workload whose body is instantiated per worker.
  Workload(Explorer::Options Opts, BodyFactory F)
      : Opts(Opts), Factory(std::move(F)) {}

  Explorer::Options &options() { return Opts; }
  const Explorer::Options &options() const { return Opts; }

  /// Instantiates a body for one worker (or for serial/replay use).
  Body makeBody() const { return Factory ? Factory() : Shared; }

  bool hasFactory() const { return static_cast<bool>(Factory); }

private:
  Explorer::Options Opts;
  Body Shared;
  BodyFactory Factory;
};

/// Outcome of replaying one decision sequence.
struct ReplayResult {
  Scheduler::RunResult Run = Scheduler::RunResult::Done;
  bool CheckOk = true; ///< Result of the workload's Check (true if none).
  uint64_t Steps = 0;  ///< Scheduler steps taken.
  bool Diverged = false; ///< The program requested decisions beyond the
                         ///< supplied trace (nondeterministic replay).
};

namespace detail {

/// ChoiceSource that replays a fixed decision sequence. Decisions past the
/// end of the trace fall back to alternative 0 and set the divergence flag.
/// Every decision actually taken (including fallbacks and clamps) is
/// recorded, so callers can canonicalize a stale or truncated trace into
/// one that replays divergence-free.
class ReplayChoice final : public ChoiceSource {
public:
  explicit ReplayChoice(std::vector<unsigned> Decisions)
      : Decisions(std::move(Decisions)) {}

  unsigned choose(unsigned Count, const char *) override {
    unsigned Pick = 0;
    if (Pos >= Decisions.size()) {
      DivergedPastEnd = true;
    } else {
      Pick = Decisions[Pos++];
      if (Pick >= Count) {
        // The trace does not fit this program (arity shrank); clamp rather
        // than crash so replays of slightly stale traces still run.
        DivergedPastEnd = true;
        Pick = Count - 1;
      }
    }
    Recorded.push_back(Pick);
    return Pick;
  }

  bool diverged() const { return DivergedPastEnd; }

  /// The decisions actually taken during the run, in order.
  const std::vector<unsigned> &recorded() const { return Recorded; }

private:
  std::vector<unsigned> Decisions;
  std::vector<unsigned> Recorded;
  size_t Pos = 0;
  bool DivergedPastEnd = false;
};

} // namespace detail

/// Deterministically re-executes the single decision sequence \p Decisions
/// of \p W — the counterexample reproduction entry point. The sequence is
/// the plain-index form produced by Explorer::currentDecisions() or
/// Summary::firstViolationDecisions(). When \p ExecutedOut is non-null it
/// receives the decisions actually taken (fallbacks/clamps included), a
/// canonical trace that replays the same execution divergence-free.
inline ReplayResult replay(const Workload &W,
                           const std::vector<unsigned> &Decisions,
                           std::vector<unsigned> *ExecutedOut = nullptr) {
  detail::ReplayChoice Choice(Decisions);
  Workload::Body Body = W.makeBody();
  rmc::Machine M(Choice);
  Scheduler S(M, Choice);
  S.setPreemptionBound(W.options().PreemptionBound);
  Body.Setup(M, S);
  ReplayResult Out;
  Out.Run = S.run(W.options().MaxStepsPerExec);
  Out.Steps = S.steps();
  if (Body.Check)
    Out.CheckOk = Body.Check(M, S, Out.Run);
  Out.Diverged = Choice.diverged();
  if (ExecutedOut)
    *ExecutedOut = Choice.recorded();
  return Out;
}

/// Renders \p Decisions as a copy-pasteable C++ call — paste it next to the
/// workload definition to re-execute a reported counterexample:
///   sim::replay(W, {0,1,2});
inline std::string formatReplayCall(const std::vector<unsigned> &Decisions,
                                    const char *WorkloadName = "W") {
  std::string Out = "sim::replay(";
  Out += WorkloadName;
  Out += ", {";
  for (size_t I = 0; I != Decisions.size(); ++I) {
    if (I)
      Out += ',';
    Out += std::to_string(Decisions[I]);
  }
  Out += "});";
  return Out;
}

/// Runs \p W to completion under the serial explorer, re-establishing
/// state between executions through the copy-on-write engine when the
/// workload is eligible (see Body and sim/Engine.h). Defined in Engine.cpp.
Explorer::Summary exploreSerial(const Workload &W);

/// Runs \p W under the serial explorer, or under ParallelExplorer when
/// Options::Workers > 1. Defined in ParallelExplorer.cpp.
Explorer::Summary explore(const Workload &W);

} // namespace compass::sim

#endif // COMPASS_SIM_WORKLOAD_H
