//===-- sim/Explorer.h - Stateless model-checking driver --------*- C++ -*-===//
//
// Part of compass-cxx. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The model checker: a stateless (replay-based) explorer of the decision
/// tree formed by every nondeterministic choice of an execution — scheduler
/// picks, load read-from choices, and CAS alternatives. In exhaustive mode
/// it performs a depth-first enumeration of all decision sequences (up to
/// an execution cap); in random mode it samples seeded random decision
/// sequences. This is the framework's replacement for the paper's deductive
/// proofs: a property checked over *all* executions of a bounded workload.
///
/// Usage:
/// \code
///   Explorer Ex(Opts);
///   while (Ex.beginExecution()) {
///     rmc::Machine M(Ex);
///     Scheduler S(M, Ex);
///     ... allocate, create monitors, start threads ...
///     auto R = S.run(Ex.options().MaxStepsPerExec);
///     ... per-execution checks ...
///     Ex.endExecution(R);
///   }
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef COMPASS_SIM_EXPLORER_H
#define COMPASS_SIM_EXPLORER_H

#include "sim/Scheduler.h"
#include "support/Choice.h"
#include "support/Rng.h"

#include <cstdint>
#include <string>
#include <vector>

namespace compass::sim {

/// Explores the decision tree of a bounded concurrent program.
class Explorer : public ChoiceSource {
public:
  enum class Mode {
    Exhaustive, ///< DFS over all decision sequences.
    Random      ///< Seeded random sampling.
  };

  struct Options {
    Mode ExploreMode = Mode::Exhaustive;
    uint64_t MaxExecutions = 2'000'000; ///< Cap for exhaustive mode.
    uint64_t RandomRuns = 1000;         ///< Runs in random mode.
    uint64_t Seed = 1;                  ///< Random-mode seed.
    uint64_t MaxStepsPerExec = 100'000; ///< Scheduler step budget.
    unsigned PreemptionBound = ~0u;     ///< Scheduler preemption budget.
  };

  struct Summary {
    uint64_t Executions = 0; ///< Total runs performed.
    uint64_t Completed = 0;  ///< Runs where all threads finished.
    uint64_t Deadlocks = 0;
    uint64_t Races = 0;
    uint64_t Diverged = 0;  ///< Runs cut off by the step budget.
    uint64_t Pruned = 0;    ///< Stutter iterations cut by Env::prune.
    bool Exhausted = false; ///< Whole tree covered (exhaustive mode).
    uint64_t MaxDepth = 0;  ///< Deepest decision sequence seen.

    std::string str() const;
  };

  explicit Explorer(Options O);
  Explorer();

  /// Prepares the next execution; false when exploration is finished.
  bool beginExecution();

  /// Reports the result of the current execution and backtracks.
  void endExecution(Scheduler::RunResult R);

  unsigned choose(unsigned Count, const char *Tag) override;

  const Options &options() const { return Opts; }
  const Summary &summary() const { return Sum; }

  /// The decision sequence of the current (or last) execution; useful for
  /// reporting reproducible counterexamples.
  std::vector<unsigned> currentDecisions() const;

private:
  struct Decision {
    unsigned Chosen;
    unsigned Count;
  };

  Options Opts;
  Summary Sum;
  std::vector<Decision> Trace;
  size_t Pos = 0;
  bool InExecution = false;
  bool TreeExhausted = false;
  Rng Rand;
};

/// Convenience driver: runs \p Setup then the scheduler for every explored
/// execution, invoking \p Check afterwards. \p Setup receives the fresh
/// machine and scheduler and must allocate state and start threads;
/// \p Check receives them after the run together with the run result.
template <typename SetupT, typename CheckT>
Explorer::Summary explore(Explorer::Options Opts, SetupT Setup,
                          CheckT Check) {
  Explorer Ex(Opts);
  while (Ex.beginExecution()) {
    rmc::Machine M(Ex);
    Scheduler S(M, Ex);
    S.setPreemptionBound(Opts.PreemptionBound);
    Setup(M, S);
    Scheduler::RunResult R = S.run(Opts.MaxStepsPerExec);
    Check(M, S, R);
    Ex.endExecution(R);
  }
  return Ex.summary();
}

} // namespace compass::sim

#endif // COMPASS_SIM_EXPLORER_H
