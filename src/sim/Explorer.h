//===-- sim/Explorer.h - Stateless model-checking driver --------*- C++ -*-===//
//
// Part of compass-cxx. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The model checker: a stateless (replay-based) explorer of the decision
/// tree formed by every nondeterministic choice of an execution — scheduler
/// picks, load read-from choices, and CAS alternatives. In exhaustive mode
/// it performs a depth-first enumeration of all decision sequences (up to
/// an execution cap); in random mode it samples seeded random decision
/// sequences. This is the framework's replacement for the paper's deductive
/// proofs: a property checked over *all* executions of a bounded workload.
///
/// The exploration stack is layered:
///  - DecisionTree (DecisionTree.h): the pure DFS frontier — trace
///    bookkeeping, backtracking, subtree splitting. No I/O; unit-testable.
///  - Explorer (this file): one search worker — binds a DecisionTree (or a
///    random sampler) to the ChoiceSource interface the Machine/Scheduler
///    consume, and accumulates the Summary (counters, per-tag choice
///    statistics, throughput, first-violation trace).
///  - Workload / explore / replay (Workload.h): a bounded program as a
///    first-class value, the serial driver, and deterministic single-trace
///    replay for counterexample reproduction.
///  - ParallelExplorer (ParallelExplorer.h): N workers over a shared queue
///    of unexplored subtree prefixes; its Summary's deterministic core is
///    bit-identical to the serial explorer's regardless of worker count.
///
/// Usage (manual driving; prefer explore()/Workload for the common case):
/// \code
///   Explorer Ex(Opts);
///   while (Ex.beginExecution()) {
///     rmc::Machine M(Ex);
///     Scheduler S(M, Ex);
///     ... allocate, create monitors, start threads ...
///     auto R = S.run(Ex.options().MaxStepsPerExec);
///     Ex.recordCheck(/*Ok=*/...);   // optional: per-execution property
///     Ex.endExecution(R);
///   }
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef COMPASS_SIM_EXPLORER_H
#define COMPASS_SIM_EXPLORER_H

#include "sim/DecisionTree.h"
#include "sim/Reduction.h"
#include "sim/Scheduler.h"
#include "support/Choice.h"
#include "support/Rng.h"

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace compass::sim {

/// Which state-space reduction the explorer applies (DESIGN.md Sections 8
/// and 12).
enum class ReductionMode {
  None,     ///< Plain exhaustive DFS (baseline; fingerprint-stable).
  SleepSet, ///< Sleep-set partial-order reduction over sched choices.
  SourceSet ///< Source-set DPOR: sleep sets upgraded with the watermark-
            ///< refined wake relation, restricted re-runs of sleeping
            ///< reads/updates, advance-time skipping of covered sched
            ///< siblings, and reads-from duplicate pruning at load/CAS
            ///< choice nodes (sim/Reduction.h).
};

/// How the exploration engine re-establishes state between executions
/// (DESIGN.md Section 11). Functionally invisible: summaries, fingerprints
/// and violation traces are bit-identical across paths.
enum class EnginePath {
  Auto,      ///< Copy-on-write prefix resumption when the workload allows.
  RootReplay ///< Always re-execute from the root (the classic engine; the
             ///< A/B reference for the copy-on-write path).
};

/// Canonical spelling of a ReductionMode ("none" | "sleep" | "source");
/// one vocabulary across the CLI, checkpoints, telemetry, and benchmarks.
const char *reductionModeName(ReductionMode M);
/// Inverse of reductionModeName; false on an unknown spelling.
bool parseReductionMode(const std::string &S, ReductionMode &Out);

/// Canonical spelling of an EnginePath ("auto" | "root").
const char *enginePathName(EnginePath P);
/// Inverse of enginePathName; false on an unknown spelling.
bool parseEnginePath(const std::string &S, EnginePath &Out);

/// Explores the decision tree of a bounded concurrent program.
class Explorer : public ChoiceSource {
public:
  enum class Mode {
    Exhaustive, ///< DFS over all decision sequences.
    Random      ///< Seeded random sampling.
  };

  struct Options {
    Mode ExploreMode = Mode::Exhaustive;
    uint64_t MaxExecutions = 2'000'000; ///< Cap for exhaustive mode.
    uint64_t RandomRuns = 1000;         ///< Runs in random mode.
    uint64_t Seed = 1;                  ///< Random-mode seed.
    uint64_t MaxStepsPerExec = 100'000; ///< Scheduler step budget.
    unsigned PreemptionBound = ~0u;     ///< Scheduler preemption budget.
    unsigned Workers = 1;      ///< Worker threads; >1 selects the parallel
                               ///< explorer in explore(Workload).
    bool StopOnViolation = false; ///< Stop at the first failed check. Note:
                                  ///< truncates the run, so counters are no
                                  ///< longer worker-count independent.
    double ProgressIntervalSec = 0; ///< >0: periodic stderr progress lines.
    /// State-space reduction. Only effective in exhaustive mode; replay
    /// and random sampling always run unreduced. Keep None when an
    /// execution-count baseline (e.g. a pinned fingerprint comparison
    /// against unreduced exploration) is required.
    ReductionMode Reduction = ReductionMode::None;
    /// Execution engine path; see EnginePath. RootReplay is the A/B
    /// reference used by tests to pin down that copy-on-write resumption
    /// is observationally identical.
    EnginePath Engine = EnginePath::Auto;
  };

  /// Per-tag statistics over the choice points of all explored executions.
  /// Every choose() call (including replays of backtracked prefixes) is
  /// counted, so totals are a worker-count-independent measure of search
  /// effort per decision kind.
  struct TagStat {
    uint64_t Choices = 0; ///< choose() calls carrying this tag.
    uint64_t AltSum = 0;  ///< Sum of arities over those calls.
    unsigned MaxArity = 0;

    double avgArity() const {
      return Choices ? static_cast<double>(AltSum) / Choices : 0.0;
    }
  };

  struct Summary {
    // -- Deterministic core -------------------------------------------
    // Identical for serial and parallel exploration of the same workload
    // (any worker count), provided the run was not truncated by
    // StopOnViolation. Compared by coreEquals().
    uint64_t Executions = 0; ///< Total runs performed.
    uint64_t Completed = 0;  ///< Runs where all threads finished.
    uint64_t Deadlocks = 0;
    uint64_t Races = 0;
    uint64_t Diverged = 0;   ///< Runs cut off by the step budget.
    uint64_t Pruned = 0;     ///< Stutter iterations cut by Env::prune.
    uint64_t SleepPruned = 0; ///< Executions cut by the sleep/source-set
                              ///< reduction at an asleep pick.
    uint64_t RfPruned = 0;    ///< Executions cut because a restricted
                              ///< re-run's reads-from set was empty
                              ///< (source-set mode only).
    uint64_t SourcePruned = 0; ///< Covered sched siblings skipped at
                               ///< advance time — no execution was run
                               ///< (source-set mode only).
    uint64_t CacheHits = 0;  ///< Reads-from duplicate subtrees skipped at
                             ///< advance time — no execution was run
                             ///< (source-set mode only).
    uint64_t Violations = 0; ///< Executions whose check failed.
    bool Exhausted = false;  ///< Whole tree covered (exhaustive mode).
    uint64_t MaxDepth = 0;   ///< Deepest decision sequence seen.
    bool HasViolation = false;
    /// Decision trace of the lexicographically least violating execution —
    /// which is exactly the first one serial DFS encounters. Feed its
    /// decisions() to replay() to reproduce the failure.
    std::vector<DecisionTree::Decision> FirstViolation;
    /// Per-tag choice-point statistics, keyed by the Tag of choose().
    std::map<std::string, TagStat> Tags;

    // -- Observability (timing-dependent; excluded from coreEquals) ----
    struct Perf {
      double WallSeconds = 0;
      double ExecsPerSec = 0;
      uint64_t PeakFrontier = 0; ///< Largest DFS frontier seen (per worker).
      uint64_t PeakQueue = 0;    ///< Largest shared work queue (parallel).
      uint64_t Donations = 0;    ///< Prefixes donated between workers.
      unsigned Workers = 1;
      // Copy-on-write engine effectiveness (sim/Engine.h). StepsLogical
      // counts every scheduler step of every execution (what root replay
      // would run); StepsExecuted counts the steps actually performed —
      // the gap is the work the snapshot/fast-forward path avoided.
      uint64_t StepsExecuted = 0;
      uint64_t StepsLogical = 0;
      uint64_t CowResumes = 0; ///< Executions resumed from a snapshot.
      uint64_t RootRuns = 0;   ///< Executions run from the root.
    } Perf;

    /// The first violation's decisions as plain indices (replay() input).
    std::vector<unsigned> firstViolationDecisions() const;

    /// True iff the deterministic cores match (all counters, Exhausted,
    /// MaxDepth, tag stats, and the first-violation trace).
    bool coreEquals(const Summary &O) const;

    /// Folds \p O's deterministic core into this one (used by the parallel
    /// explorer to aggregate per-worker summaries).
    void mergeCore(const Summary &O);

    std::string str() const;

    /// Machine-readable dump (single JSON object) of the full summary;
    /// consumed by bench/bench_simulator and bench_verification_summary.
    std::string json() const;
  };

  explicit Explorer(Options O);
  Explorer();

  /// Constructs a worker explorer that enumerates exactly the subtree below
  /// \p Seed (see DecisionTree splitting). Used by ParallelExplorer.
  Explorer(Options O, DecisionTree::Prefix Seed);

  /// Prepares the next execution; false when exploration is finished.
  bool beginExecution();

  /// True while beginExecution() would succeed (frontier nonempty and the
  /// local budget not exhausted). Lets the parallel explorer consult the
  /// global execution budget before committing to an execution.
  bool hasWork() const;

  /// Records the outcome of the current execution's property check. Call
  /// between the scheduler run and endExecution(); without a call the
  /// execution counts as passing.
  void recordCheck(bool Ok);

  /// Reports the result of the current execution and backtracks.
  void endExecution(Scheduler::RunResult R);

  unsigned choose(unsigned Count, const char *Tag) override;

  /// Source-set restricted choice: enumerates [0, Limit) but records the
  /// decision at the full unrestricted arity \p Count, keeping the trace
  /// replay-compatible with a reduction-free re-run (sim::replay, the
  /// conformance diagnosis pipeline, corpus traces).
  unsigned chooseLimited(unsigned Count, unsigned Limit,
                         const char *Tag) override;

  size_t decisionPosition() const override;

  /// Reads-from duplicate mask for the next choose() (source-set mode);
  /// announced by the machine, recorded per tree node so advance() can
  /// skip duplicate subtrees (Summary::CacheHits).
  void noteChoiceDup(uint64_t Mask) override { PendingDupMask = Mask; }

  const Options &options() const { return Opts; }
  const Summary &summary() const { return Sum; }

  // -- Copy-on-write engine hooks (sim/Engine.h) -----------------------

  /// Called from choose() right before a *fresh* multi-alternative decision
  /// is appended to the tree (exhaustive mode, not replaying). NodeIndex is
  /// the decision's index on the path; the engine snapshots machine /
  /// scheduler / reduction state so sibling alternatives of this node can
  /// resume here instead of replaying from the root.
  using SnapshotHook = std::function<void(size_t NodeIndex, const char *Tag)>;
  void setSnapshotHook(SnapshotHook H) { SnapHook = std::move(H); }

  /// Jumps the decision-tree replay cursor to \p Pos for an execution
  /// resumed from a snapshot (the skipped decisions were validated when
  /// the snapshot's execution recorded them).
  void resumeReplayAt(size_t Pos);

  /// Adds the per-tag statistics the skipped prefix [0, \p Pos) would have
  /// contributed had it been replayed through choose(), keeping the
  /// summary's deterministic core independent of the engine path.
  void creditReplayedPrefix(size_t Pos);

  /// The decision sequence of the current (or last) execution; useful for
  /// reporting reproducible counterexamples. Recorded in both exhaustive
  /// and random modes.
  std::vector<unsigned> currentDecisions() const;

  /// The current decision sequence with tags and arities.
  const std::vector<DecisionTree::Decision> &currentTrace() const;

  /// Pretty-prints the current decision sequence, one line per decision:
  /// `#3 sched (4 alts) -> 2`.
  std::string formatTrace() const { return formatTrace(currentTrace()); }

  /// Pretty-prints \p Trace (e.g. a Summary's FirstViolation).
  static std::string formatTrace(const std::vector<DecisionTree::Decision> &Trace);

  // -- Work sharing (ParallelExplorer) --------------------------------

  /// True if split() would donate at least one subtree. Only meaningful
  /// between executions in exhaustive mode.
  bool splittable() const;

  /// Donates up to \p MaxDonations unexplored subtree prefixes from the
  /// shallowest open choice point; see DecisionTree::split(). When the
  /// sleep-set reduction is active, each donated prefix is annotated with
  /// the donor's sleep state so the recipient can cross-check its own.
  std::vector<DecisionTree::Prefix> split(size_t MaxDonations);

  // -- Checkpointing (sim/Checkpoint.h) -------------------------------

  /// Hands the *entire* unexplored remainder of this explorer's subtree
  /// back as pinned prefixes (DecisionTree::frontierPrefixes, sleep-
  /// annotated like split()'s donations) and marks the explorer finished:
  /// hasWork() turns false and the summary's Exhausted bit is set, because
  /// the executed share is complete — the donated remainder carries its
  /// own exhaustion bit once explored. Exploring the returned prefixes
  /// (in any partition, at any worker count) and merging the cores into
  /// this explorer's summary core reproduces the bit-identical summary of
  /// an uninterrupted run. Must be called between executions; exhaustive
  /// mode only.
  std::vector<DecisionTree::Prefix> drainFrontier();

  /// Untried alternatives hanging off the current path (the live DFS
  /// frontier size; exhaustive mode).
  uint64_t frontierSize() const { return Tree.frontierSize(); }

  /// Depth of the current decision path.
  uint64_t currentDepth() const { return Tree.depth(); }

  /// The sleep/source-set reduction driving this explorer, or nullptr when
  /// reduction is off. Hand it to Scheduler::setReduction().
  Reduction *reduction() { return RedEnabled ? &Red : nullptr; }

private:
  Options Opts;
  Summary Sum;
  DecisionTree Tree;
  Reduction Red;
  bool RedEnabled = false;
  /// Whether a donated/advanced alternative is skippable without running
  /// it. Position/tag/alternative identify the decision; returns which
  /// counter to bump (or None). Used by endExecution's advance loop and by
  /// split()/drainFrontier() donation filtering — both must agree with the
  /// serial skip decision for cross-worker fingerprint parity.
  enum class SkipKind { None, Source, RfDup };
  SkipKind skipKindAt(size_t Pos, const char *Tag, unsigned Alt) const;
  /// Removes skip-marked prefixes from a donation batch, counting them into
  /// this (the donor's) summary — a recipient would otherwise burn an
  /// execution on a subtree serial exploration skips without one. KeepLast
  /// protects the pinned current-path prefix of drainFrontier(), which was
  /// already vetted by the advance loop.
  void dropSkippedDonations(std::vector<DecisionTree::Prefix> &Out,
                            bool KeepLast);
  /// Reads-from duplicate masks per tree-node position, recorded at
  /// choose() time (source-set mode). Entries for positions skipped by a
  /// copy-on-write resume persist from the execution that recorded them;
  /// replayed positions are overwritten with identically recomputed masks
  /// (they are pure functions of the decision prefix).
  std::vector<uint64_t> DupMasks;
  uint64_t PendingDupMask = 0;
  /// Random-mode decision log (the DFS tree is unused in random mode, but
  /// failures must still be replayable — see currentDecisions()).
  std::vector<DecisionTree::Decision> RandTrace;
  bool InExecution = false;
  bool HasWork = true;
  Rng Rand;
  /// Per-tag stats keyed by pointer identity of the static tag string
  /// (folded into Summary.Tags by name on finalize). Linear scan: there are
  /// only a handful of distinct tags ("sched", "load", "cas", ...).
  std::vector<std::pair<const char *, TagStat>> TagStats;
  SnapshotHook SnapHook;
  std::chrono::steady_clock::time_point Start;
  std::chrono::steady_clock::time_point LastProgress;

  TagStat &tagStat(const char *Tag);
  void finalizePerf();
};

/// Convenience driver: runs \p Setup then the scheduler for every explored
/// execution, invoking \p Check afterwards. \p Setup receives the fresh
/// machine and scheduler and must allocate state and start threads;
/// \p Check receives them after the run together with the run result and
/// may return void (informational) or bool (false = property violation,
/// counted in Summary::Violations with the trace captured).
///
/// This template remains strictly serial; parallel exploration needs a
/// Workload with a per-worker body factory (see Workload.h and
/// ParallelExplorer.h).
template <typename SetupT, typename CheckT>
Explorer::Summary explore(Explorer::Options Opts, SetupT Setup,
                          CheckT Check) {
  Explorer Ex(Opts);
  // One machine/scheduler pair serves every execution: reset() rewinds
  // their logical state while retaining heap storage, so steady-state
  // replays allocate nothing (the arena pattern; see rmc::Machine::reset).
  rmc::Machine M(Ex);
  Scheduler S(M, Ex);
  S.setPreemptionBound(Opts.PreemptionBound);
  S.setReduction(Ex.reduction());
  while (Ex.beginExecution()) {
    M.reset();
    S.reset();
    Setup(M, S);
    Scheduler::RunResult R = S.run(Opts.MaxStepsPerExec);
    if constexpr (std::is_same_v<decltype(Check(M, S, R)), bool>) {
      bool Ok = Check(M, S, R);
      Ex.recordCheck(Ok);
      Ex.endExecution(R);
      if (!Ok && Opts.StopOnViolation)
        break;
    } else {
      Check(M, S, R);
      Ex.endExecution(R);
    }
  }
  return Ex.summary();
}

} // namespace compass::sim

#endif // COMPASS_SIM_EXPLORER_H
